// Package dnstrust reproduces "Perils of Transitive Trust in the Domain
// Name System" (Ramasubramanian & Sirer, IMC 2005) as a library: it
// generates a synthetic Internet calibrated to the paper's July-2004
// survey, crawls the delegation dependencies of a web-directory-style
// corpus, and reproduces every figure and headline statistic of the
// paper's evaluation — trusted-computing-base sizes, BIND-exploit
// poisoning, min-cut bottlenecks, and nameserver control rankings.
//
// The quickest start:
//
//	study, err := dnstrust.NewStudy(ctx, dnstrust.Options{Names: 20000})
//	...
//	comparisons, err := dnstrust.RunAll(ctx, study, os.Stdout)
//
// Individual subsystems (wire codec, authoritative server, iterative
// resolver, vulnerability matrix, attack simulator) live in internal
// packages; this package wires them together.
package dnstrust

import (
	"context"

	"dnstrust/internal/analysis"
	"dnstrust/internal/audit"
	"dnstrust/internal/crawler"
	"dnstrust/internal/hijack"
	"dnstrust/internal/mincut"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

// Options configures a study.
type Options struct {
	// Seed drives world generation; equal seeds give identical studies.
	// Zero means seed 1.
	Seed int64
	// Names is the survey corpus size. Zero means 20000; the paper's
	// full scale is 593160.
	Names int
	// Workers is the crawl parallelism (0 = GOMAXPROCS).
	Workers int
	// WireFramed routes every query through the full DNS wire codec
	// (pack + unpack both ways) instead of in-memory message passing.
	WireFramed bool
	// MemoFile, when non-empty, persists the crawl's query memo to disk
	// and reloads it on the next run, resuming an interrupted survey
	// without re-asking answered questions.
	MemoFile string
	// Progress receives crawl progress callbacks when non-nil.
	Progress func(done, total int)
}

// Study is a generated world plus its completed survey.
type Study struct {
	// World is the synthetic Internet and its corpus.
	World *topology.World
	// Survey is the crawl dataset (graph, banners, vulnerabilities).
	Survey *crawler.Survey
}

// NewStudy generates a world and surveys it end to end.
func NewStudy(ctx context.Context, opts Options) (*Study, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Names == 0 {
		opts.Names = 20000
	}
	world, err := topology.Generate(topology.GenParams{Seed: opts.Seed, Names: opts.Names})
	if err != nil {
		return nil, err
	}
	return SurveyWorld(ctx, world, opts)
}

// SurveyWorld crawls an existing world (hand-built or generated).
func SurveyWorld(ctx context.Context, world *topology.World, opts Options) (*Study, error) {
	direct := topology.NewDirectTransport(world.Registry)
	var tr resolver.Transport = direct
	if opts.WireFramed {
		tr = topology.NewWireTransport(world.Registry)
	}
	r, err := world.Registry.Resolver(tr)
	if err != nil {
		return nil, err
	}
	survey, err := crawler.Run(ctx, r, world.Corpus, world.Registry.ProbeFunc(direct), crawler.Config{
		Workers:  opts.Workers,
		MemoFile: opts.MemoFile,
		Progress: opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	return &Study{World: world, Survey: survey}, nil
}

// TCB returns the trusted computing base of a surveyed name.
func (s *Study) TCB(name string) ([]string, error) {
	return s.Survey.Graph.TCB(name)
}

// DOT renders a surveyed name's delegation graph in Graphviz format.
func (s *Study) DOT(name string) (string, error) {
	return s.Survey.Graph.DOT(name)
}

// Summary computes the headline statistics over the whole corpus.
func (s *Study) Summary() *analysis.Summary {
	return analysis.Summarize(s.Survey, s.Survey.Names)
}

// Bottleneck runs the §3.2 min-cut analysis for one name.
func (s *Study) Bottleneck(name string) (*mincut.Result, error) {
	return analysis.BottleneckOf(s.Survey, name)
}

// Attack builds a hijack scenario with the given compromised and downed
// servers against this study's dependency graph.
func (s *Study) Attack(compromised, downed []string) (*hijack.Attack, error) {
	return hijack.New(s.Survey.Graph, compromised, downed)
}

// Audit runs the §5 diligence check on a surveyed name: where its trust
// goes and which dependencies are dangerous.
func (s *Study) Audit(name string) ([]audit.Finding, error) {
	return audit.Name(s.Survey, name, audit.Policy{})
}
