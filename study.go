// Package dnstrust reproduces "Perils of Transitive Trust in the Domain
// Name System" (Ramasubramanian & Sirer, IMC 2005) as a library: it
// generates a synthetic Internet calibrated to the paper's July-2004
// survey, crawls the delegation dependencies of a web-directory-style
// corpus, and reproduces every figure and headline statistic of the
// paper's evaluation — trusted-computing-base sizes, BIND-exploit
// poisoning, min-cut bottlenecks, and nameserver control rankings.
//
// The primary surface is the long-lived Monitor: a resident survey that
// grows incrementally and is queried through immutable Views while
// crawls advance —
//
//	m, err := dnstrust.Open(ctx, dnstrust.Options{Names: 20000})
//	v, err := m.Add(ctx, m.World().Corpus...)
//	sum := m.At().Summary()
//
// The one-shot Study API remains as a thin wrapper for batch
// reproductions:
//
//	study, err := dnstrust.NewStudy(ctx, dnstrust.Options{Names: 20000})
//	comparisons, err := dnstrust.RunAll(ctx, study.View(), os.Stdout)
//
// Individual subsystems (wire codec, authoritative server, iterative
// resolver, vulnerability matrix, attack simulator) live in internal
// packages; this package wires them together.
package dnstrust

import (
	"context"
	"errors"

	"dnstrust/internal/analysis"
	"dnstrust/internal/audit"
	"dnstrust/internal/crawler"
	"dnstrust/internal/hijack"
	"dnstrust/internal/mincut"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

// Options configures a study or monitoring session.
type Options struct {
	// Seed drives world generation; equal seeds give identical studies.
	// Zero means seed 1.
	Seed int64
	// Names is the survey corpus size. Zero means 20000; the paper's
	// full scale is 593160.
	Names int
	// Workers is the crawl parallelism (0 = GOMAXPROCS).
	Workers int
	// Retain bounds the Monitor's timeline: the number of most recent
	// committed generations kept live for Timeline, Between, and Diff.
	// Retained generations share the survey's append-only storage
	// copy-on-write, so holding many live is cheap — array headers per
	// generation, not full table clones. 0 (or 1) keeps only the latest
	// view, the pre-timeline behavior.
	Retain int
	// Corpus overrides the surveyed name list for DiffLogs: the two
	// recordings are replayed over exactly these names. When it is set
	// together with Roots, DiffLogs skips world generation entirely
	// (recordings of hand-built worlds carry their own corpus). Ignored
	// by Open/OpenWorld, which crawl nothing until Add.
	Corpus []string
	// WireFramed routes every query through the full DNS wire codec
	// (pack + unpack both ways) instead of in-memory message passing.
	WireFramed bool
	// MemoFile, when non-empty, persists the crawl's query memo to disk
	// and reloads it on the next run, resuming an interrupted survey
	// without re-asking answered questions.
	MemoFile string
	// SnapshotFile, when non-empty, makes session state durable as a
	// binary epoch-store snapshot: OpenWorld restores the last committed
	// generation from the file when it exists (missing is a fresh start),
	// Monitor.Snapshot saves the current generation back to it, and Close
	// saves it one last time. Restoring reproduces the saved generation's
	// entire read surface — graph, banners, vulnerability scoring,
	// Summary — with zero transport queries, in load time rather than
	// re-crawl time. Unlike MemoFile (a query-level memo that still
	// replays the walk) the snapshot is the walked result itself; see the
	// README's "Snapshots vs. memo files vs. query logs".
	SnapshotFile string
	// Progress receives crawl progress callbacks when non-nil.
	Progress func(done, total int)
	// ShardName, when non-empty, labels this session as one shard of a
	// monitor fleet: every snapshot it writes (SnapshotFile, Monitor
	// snapshot saves, and the dnsmonitord GET /snapshot endpoint)
	// carries a shard/meta section naming the shard, its committed
	// generation, and a hash of its resolved corpus, which the fleet
	// coordinator (internal/fleet) reads back when merging shard epochs.
	// Empty keeps snapshots byte-identical to pre-fleet output.
	ShardName string

	// Source, when non-nil, replaces the world's in-memory direct
	// transport as the terminal the crawl queries: any transport.Source
	// or middleware chain — a topology.StartLive loopback fleet (via
	// transport.From), transport.Live against the real Internet, or a
	// hand-composed transport.Chain with latency/fault/trace layers.
	// The session takes ownership and closes it on Close.
	Source transport.Source
	// Roots overrides the resolver's root hints. Required when Source
	// is not backed by the generated world's registry (a real-network
	// crawl); defaults to the world registry's root servers.
	Roots []resolver.ServerAddr
	// RecordLog, when non-nil, records every successful transport
	// exchange of the session into it (outermost in the chain, so
	// fingerprint probes are captured too). Save the log afterwards to
	// get a byte-stable, replayable recording of the crawl.
	RecordLog *transport.Log
	// ReplayLog, when non-nil, serves the session from the recorded log
	// instead of the terminal source: strict mode (ReplayFallthrough
	// false) errors on any query the log cannot answer, proving the
	// crawl never touched another Internet; fallthrough mode delegates
	// misses to the terminal (Source or the world's direct transport)
	// and records the delta back into the log.
	ReplayLog *transport.Log
	// ReplayFallthrough selects the fallthrough replay mode above.
	ReplayFallthrough bool
}

// Study is a generated world plus its completed survey: the one-shot
// compatibility wrapper over a Monitor session that crawled the whole
// corpus in one Add and closed. Its read methods delegate to the final
// View, so they share the View's memoized analyses.
type Study struct {
	// World is the synthetic Internet and its corpus.
	World *topology.World
	// Survey is the crawl dataset (graph, banners, vulnerabilities).
	Survey *crawler.Survey

	view *View
}

// NewStudy generates a world and surveys it end to end.
func NewStudy(ctx context.Context, opts Options) (*Study, error) {
	m, err := Open(ctx, opts)
	if err != nil {
		return nil, err
	}
	return studyFromMonitor(ctx, m)
}

// SurveyWorld crawls an existing world (hand-built or generated).
func SurveyWorld(ctx context.Context, world *topology.World, opts Options) (*Study, error) {
	m, err := OpenWorld(ctx, world, opts)
	if err != nil {
		return nil, err
	}
	return studyFromMonitor(ctx, m)
}

// studyFromMonitor crawls the monitor's whole corpus as one batch and
// freezes the session, preserving the old Run semantics: the query memo
// is saved even when the crawl aborts, and a memo-save failure does not
// discard a completed survey (it surfaces via Survey.Stats.MemoSaveErr).
func studyFromMonitor(ctx context.Context, m *Monitor) (*Study, error) {
	v, addErr := m.Add(ctx, m.World().Corpus...)
	memoErr := m.Close()
	if addErr != nil {
		return nil, errors.Join(addErr, memoErr)
	}
	v.survey.Stats.MemoSaveErr = memoErr
	return &Study{World: m.World(), Survey: v.Survey(), view: v}, nil
}

// View returns the study's completed survey as a View — the read surface
// shared with Monitor sessions, with memoized whole-survey analyses.
func (s *Study) View() *View { return s.view }

// TCB returns the trusted computing base of a surveyed name.
func (s *Study) TCB(name string) ([]string, error) { return s.view.TCB(name) }

// DOT renders a surveyed name's delegation graph in Graphviz format.
func (s *Study) DOT(name string) (string, error) { return s.view.DOT(name) }

// Summary computes the headline statistics over the whole corpus.
func (s *Study) Summary() *analysis.Summary { return s.view.Summary() }

// Bottleneck runs the §3.2 min-cut analysis for one name.
func (s *Study) Bottleneck(name string) (*mincut.Result, error) {
	return s.view.Bottleneck(name)
}

// Attack builds a hijack scenario with the given compromised and downed
// servers against this study's dependency graph.
func (s *Study) Attack(compromised, downed []string) (*hijack.Attack, error) {
	return s.view.Attack(compromised, downed)
}

// Audit runs the §5 diligence check on a surveyed name: where its trust
// goes and which dependencies are dangerous.
func (s *Study) Audit(name string) ([]audit.Finding, error) {
	return s.view.Audit(name)
}
