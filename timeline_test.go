package dnstrust

import (
	"context"
	"errors"
	"net/netip"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"dnstrust/internal/dnswire"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

// TestMonitorTimelineRetention checks the bounded history: Retain
// generations stay queryable and diffable, older ones are evicted, and
// Between names what is still available.
func TestMonitorTimelineRetention(t *testing.T) {
	m := openTestMonitor(t, Options{Seed: 7, Names: 200, Retain: 3})
	ctx := context.Background()
	corpus := m.World().Corpus

	third := len(corpus) / 3
	batches := [][]string{corpus[:third], corpus[third : 2*third], corpus[2*third:]}
	for _, b := range batches {
		if _, err := m.Add(ctx, b...); err != nil {
			t.Fatal(err)
		}
	}

	tl := m.Timeline()
	gens := make([]int64, len(tl))
	for i, v := range tl {
		gens[i] = v.Generation()
	}
	if !reflect.DeepEqual(gens, []int64{1, 2, 3}) {
		t.Fatalf("timeline generations = %v, want [1 2 3] (gen 0 evicted by Retain=3)", gens)
	}
	if m.At() != tl[len(tl)-1] {
		t.Error("newest timeline entry must be At()'s view")
	}

	// Between across retained generations reports exactly the names the
	// later batches added.
	d, err := m.Between(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, v := range tl[2].Names() {
		want[v] = true
	}
	for _, v := range tl[0].Names() {
		delete(want, v)
	}
	if len(d.NamesAdded) != len(want) {
		t.Errorf("Between(1,3).NamesAdded = %d names, want %d", len(d.NamesAdded), len(want))
	}
	if len(d.NamesRemoved) != 0 {
		t.Errorf("NamesRemoved = %v, want none", d.NamesRemoved)
	}
	if d.FromGen != 1 || d.ToGen != 3 {
		t.Errorf("delta generations = %d..%d, want 1..3", d.FromGen, d.ToGen)
	}

	// Self-diff is empty; evicted and reversed ranges error.
	if d, err := m.Between(2, 2); err != nil || !d.Empty() {
		t.Errorf("Between(2,2) = %+v, %v; want empty delta", d, err)
	}
	if _, err := m.Between(0, 3); err == nil {
		t.Error("Between on the evicted generation 0 must error")
	}
	if _, err := m.Between(3, 1); err == nil {
		t.Error("Between(3,1) must reject from > to")
	}
}

// TestDiffFromEvictedGeneration checks journal pruning: once a
// generation falls off the retention window its change journals are
// discarded, and a caller still holding that evicted View must get a
// correct diff through the by-name fallback (never a silently
// incomplete incremental one).
func TestDiffFromEvictedGeneration(t *testing.T) {
	m := openTestMonitor(t, Options{Seed: 7, Names: 200, Retain: 2})
	ctx := context.Background()
	corpus := m.World().Corpus

	v1, err := m.Add(ctx, corpus[:50]...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(ctx, corpus[:120]...); err != nil {
		t.Fatal(err)
	}
	v3, err := m.Add(ctx, corpus...)
	if err != nil {
		t.Fatal(err)
	}
	if tl := m.Timeline(); len(tl) != 2 || tl[0].Generation() != 2 {
		t.Fatalf("timeline = %v gens, want [2 3]", len(tl))
	}

	// v1 is evicted and its journal range pruned; the diff must still be
	// exact: every name v3 has beyond v1's set, nothing removed.
	d, err := v3.Diff(v1)
	if err != nil {
		t.Fatal(err)
	}
	if want := v3.NumNames() - v1.NumNames(); len(d.NamesAdded) != want || len(d.NamesRemoved) != 0 {
		t.Errorf("evicted diff: +%d -%d names, want +%d -0",
			len(d.NamesAdded), len(d.NamesRemoved), want)
	}
	if d.FromGen != 1 || d.ToGen != 3 {
		t.Errorf("delta generations = %d..%d, want 1..3", d.FromGen, d.ToGen)
	}
	if d.Compared != v3.NumNames() {
		t.Errorf("Compared = %d, want %d", d.Compared, v3.NumNames())
	}
}

// TestViewDiffForeignMonitors checks the by-name path: two independent
// sessions over identical worlds diff to nothing, and the result is
// identical no matter which monitor's view is newer.
func TestViewDiffForeignMonitors(t *testing.T) {
	ctx := context.Background()
	mA := openTestMonitor(t, Options{Seed: 11, Names: 150})
	mB := openTestMonitor(t, Options{Seed: 11, Names: 150})
	vA, err := mA.Add(ctx, mA.World().Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	vB, err := mB.Add(ctx, mB.World().Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	d, err := vB.Diff(vA)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("identical worlds diffed to %+v, want empty", d)
	}
	if _, err := vB.Diff(nil); err == nil {
		t.Error("Diff(nil) must error")
	}
}

// TestMonitorGenerationMatchesCommittedView is the regression test for
// Monitor.Generation reading the engine counter directly: with the
// engine advanced past the monitor's committed view (exactly the state
// mid-Add, between the engine's commit and the monitor's), Generation
// must keep reporting what At() serves.
func TestMonitorGenerationMatchesCommittedView(t *testing.T) {
	m := openTestMonitor(t, Options{Seed: 7, Names: 100})
	ctx := context.Background()

	// Drive the engine directly, bypassing the monitor's commit: the
	// engine is now at generation 1 while the monitor still serves 0.
	if _, err := m.eng.Add(ctx, m.World().Corpus[:10]...); err != nil {
		t.Fatal(err)
	}
	if g := m.eng.Generation(); g != 1 {
		t.Fatalf("engine generation = %d, want 1", g)
	}
	if got, at := m.Generation(), m.At().Generation(); got != at || got != 0 {
		t.Fatalf("Generation() = %d with At() at %d; an uncommitted engine generation leaked", got, at)
	}
}

// gateSource blocks every query until released, so a test can hold an
// Add in flight at a deterministic point.
type gateSource struct {
	inner transport.Source
	gate  chan struct{}
}

func (g *gateSource) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.inner.Query(ctx, server, name, qtype, class)
}

func (g *gateSource) Close() error { return g.inner.Close() }

// TestMonitorGenerationDuringBlockedAdd holds a crawl mid-flight on a
// gated transport and checks Generation/At agree throughout.
func TestMonitorGenerationDuringBlockedAdd(t *testing.T) {
	ctx := context.Background()
	world, err := NewWorld(Options{Seed: 7, Names: 100})
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateSource{inner: world.Registry.Source(), gate: make(chan struct{})}
	m, err := OpenWorld(ctx, world, Options{Source: gate, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })

	done := make(chan error, 1)
	go func() {
		_, err := m.Add(ctx, world.Corpus...)
		done <- err
	}()

	// The Add is blocked on the first transport query: nothing is
	// committed, and Generation must agree with At.
	if got, at := m.Generation(), m.At().Generation(); got != 0 || at != 0 {
		t.Errorf("blocked Add: Generation() = %d, At() = %d, want 0, 0", got, at)
	}
	close(gate.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got, at := m.Generation(), m.At().Generation(); got != 1 || at != 1 {
		t.Errorf("after Add: Generation() = %d, At() = %d, want 1, 1", got, at)
	}
}

// TestViewNamesDefensiveCopies checks the View accessors hand out
// caller-owned slices: mutating a result must not corrupt the view.
func TestViewNamesDefensiveCopies(t *testing.T) {
	m := openTestMonitor(t, Options{Seed: 7, Names: 100})
	v, err := m.Add(context.Background(), m.World().Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	names := v.Names()
	if len(names) == 0 {
		t.Fatal("no names surveyed")
	}
	if v.NumNames() != len(names) {
		t.Errorf("NumNames = %d, Names has %d", v.NumNames(), len(names))
	}
	orig0 := names[0]
	names[0] = "clobbered.example"
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	if got := v.Names(); got[0] != orig0 {
		t.Errorf("mutating Names() result leaked into the view: Names()[0] = %q, want %q", got[0], orig0)
	}
	if v.Survey().Names[0] != orig0 {
		t.Errorf("mutation reached the survey's shared slice")
	}

	pop := v.Popular()
	if len(pop) > 0 {
		pop[0] = "clobbered.example"
		if got := v.Popular(); got[0] == "clobbered.example" {
			t.Error("mutating Popular() result leaked into the world")
		}
	}
}

// fakeSource counts Close calls and fails them with a fixed error.
type fakeSource struct {
	closes atomic.Int32
	err    error
}

func (f *fakeSource) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	return nil, errors.New("fakeSource: not reachable")
}

func (f *fakeSource) Close() error {
	f.closes.Add(1)
	return f.err
}

// errSource fails Close with a distinct error, for join assertions.
type errSource struct {
	fakeSource
}

// TestOwnedReplayClose checks the strict-replay ownership wrapper: both
// the replay source and the displaced terminal close exactly once, and
// both close errors surface joined.
func TestOwnedReplayClose(t *testing.T) {
	errA, errB := errors.New("replay close failed"), errors.New("terminal close failed")
	replay := &fakeSource{err: errA}
	terminal := &fakeSource{err: errB}
	o := ownedReplay{Source: replay, displaced: terminal}
	err := o.Close()
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Errorf("Close error = %v, want both %v and %v joined", err, errA, errB)
	}
	if replay.closes.Load() != 1 || terminal.closes.Load() != 1 {
		t.Errorf("closes = %d/%d, want exactly once each", replay.closes.Load(), terminal.closes.Load())
	}
}

// TestMonitorCloseReleasesDisplacedSource checks the integration path: a
// session opened with both a caller Source and a strict ReplayLog closes
// the displaced source exactly once, and a second Close is an idempotent
// no-op.
func TestMonitorCloseReleasesDisplacedSource(t *testing.T) {
	world, err := NewWorld(Options{Seed: 7, Names: 50})
	if err != nil {
		t.Fatal(err)
	}
	terminal := &fakeSource{}
	m, err := OpenWorld(context.Background(), world, Options{
		Source:    terminal,
		ReplayLog: transport.NewLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if got := terminal.closes.Load(); got != 1 {
		t.Fatalf("displaced terminal closed %d times, want 1", got)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close = %v, want idempotent nil", err)
	}
	if got := terminal.closes.Load(); got != 1 {
		t.Errorf("second Close re-closed the source (%d closes)", got)
	}
}

// diffWorlds builds the hand-made pair of worlds for the injected
// delegation change: zone corp.com drops nsz.legacy.net between the
// recordings, while other.com keeps delegating through it.
func diffWorlds() (older, newer *topology.World, corpus []string) {
	build := func(dropNSZ bool) *topology.World {
		b := topology.NewWorld()
		gtld := []string{"a.gtld-servers.net", "b.gtld-servers.net"}
		b.Zone("com", gtld...)
		b.Zone("net", gtld...)
		b.Zone("gtld-servers.net", gtld...)
		corpNS := []string{"ns1.host.net", "nsz.legacy.net"}
		if dropNSZ {
			corpNS = corpNS[:1]
		}
		b.Zone("corp.com", corpNS...)
		b.Zone("host.net", "ns1.host.net")
		b.Zone("legacy.net", "nsz.legacy.net")
		b.Zone("other.com", "nsz.legacy.net")
		b.Host("www.corp.com")
		b.Host("www.other.com")
		return &topology.World{Registry: b.Finalize(), Corpus: []string{"www.corp.com", "www.other.com"}}
	}
	older, newer = build(false), build(true)
	return older, newer, older.Corpus
}

// recordCrawl crawls a world once with recording on and returns the log.
func recordCrawl(t *testing.T, world *topology.World, corpus []string) *QueryLog {
	t.Helper()
	lg := transport.NewLog()
	m, err := OpenWorld(context.Background(), world, Options{RecordLog: lg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(context.Background(), corpus...); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return lg
}

// TestDiffLogsReportsInjectedChange is the acceptance test for the
// three-line drift study: two recordings of the same corpus, one
// delegation change injected between them. DiffLogs must report exactly
// that change — the zone's NS drift, the affected name's TCB loss, and
// the dropped host's zombie classification — and the strict replays must
// never touch a terminal transport.
func TestDiffLogsReportsInjectedChange(t *testing.T) {
	older, newer, corpus := diffWorlds()
	logA := recordCrawl(t, older, corpus)
	logB := recordCrawl(t, newer, corpus)

	d, err := DiffLogs(context.Background(), logA, logB, Options{
		Corpus: corpus,
		Roots:  older.Registry.RootServers(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Exactly the injected change, nothing else.
	if len(d.NamesAdded) != 0 || len(d.NamesRemoved) != 0 {
		t.Errorf("spurious name churn: +%v -%v", d.NamesAdded, d.NamesRemoved)
	}
	if len(d.ZonesAdded) != 0 || len(d.ZonesRemoved) != 0 {
		t.Errorf("spurious zone churn: +%v -%v", d.ZonesAdded, d.ZonesRemoved)
	}
	if len(d.ZoneChanges) != 1 || d.ZoneChanges[0].Apex != "corp.com" ||
		!reflect.DeepEqual(d.ZoneChanges[0].NSRemoved, []string{"nsz.legacy.net"}) ||
		len(d.ZoneChanges[0].NSAdded) != 0 {
		t.Errorf("zone changes = %+v, want exactly corp.com -nsz.legacy.net", d.ZoneChanges)
	}
	if len(d.Changed) != 1 || d.Changed[0].Name != "www.corp.com" {
		t.Fatalf("changed names = %+v, want exactly www.corp.com", d.Changed)
	}
	c := d.Changed[0]
	if c.ChainChanged {
		t.Error("delegation chain (zone sequence) did not change; only the NS set did")
	}
	if !contains(c.TCBRemoved, "nsz.legacy.net") || c.Growth() >= 0 {
		t.Errorf("www.corp.com change = %+v, want nsz.legacy.net leaving and the TCB shrinking", c)
	}
	if len(d.Zombies) != 1 {
		t.Fatalf("zombies = %+v, want exactly nsz.legacy.net", d.Zombies)
	}
	z := d.Zombies[0]
	if z.Host != "nsz.legacy.net" || z.Kind != DelegationRemoved ||
		!reflect.DeepEqual(z.Zones, []string{"corp.com"}) || z.Names == 0 {
		t.Errorf("zombie = %+v, want nsz.legacy.net delegation-removed via corp.com, still trusted", z)
	}

	// Zero terminal queries: replay the newer log with a terminal source
	// attached — strict replay must displace it completely. (DiffLogs
	// builds the same strict chains without any terminal at all.)
	terminal := &countingSource{}
	world, err := NewWorld(Options{Seed: 1, Names: 50})
	if err != nil {
		t.Fatal(err)
	}
	world.Corpus = corpus
	m, err := OpenWorld(context.Background(), world, Options{
		Source:    terminal,
		Roots:     older.Registry.RootServers(),
		ReplayLog: logB,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Add(context.Background(), corpus...); err != nil {
		t.Fatal(err)
	}
	if n := terminal.queries.Load(); n != 0 {
		t.Errorf("strict replay issued %d terminal queries, want 0", n)
	}
}

// countingSource counts queries reaching it (a would-be live terminal).
type countingSource struct {
	queries atomic.Int64
}

func (c *countingSource) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	c.queries.Add(1)
	return nil, errors.New("countingSource: terminal must not be queried")
}

func (c *countingSource) Close() error { return nil }

// TestDiffLogsIdenticalRecordings checks the generated-world path: two
// recordings of the same crawl diff to an empty delta.
func TestDiffLogsIdenticalRecordings(t *testing.T) {
	opts := Options{Seed: 7, Names: 120}
	world, err := NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	logA := recordCrawl(t, world, world.Corpus)
	world2, err := NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	logB := recordCrawl(t, world2, world2.Corpus)

	d, err := DiffLogs(context.Background(), logA, logB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("identical recordings diffed to %+v, want empty", d)
	}
}
