module dnstrust

go 1.24
