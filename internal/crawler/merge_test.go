package crawler

import (
	"reflect"
	"testing"
)

func TestMergeSorted(t *testing.T) {
	cases := []struct{ a, b, want []int32 }{
		{nil, nil, nil},
		{[]int32{1, 3}, nil, []int32{1, 3}},
		{nil, []int32{2}, []int32{2}},
		{[]int32{1, 3, 5}, []int32{2, 3, 6}, []int32{1, 2, 3, 5, 6}},
		{[]int32{1, 1, 2}, []int32{1, 2}, []int32{1, 2}},
	}
	for _, c := range cases {
		if got := mergeSorted(c.a, c.b); !reflect.DeepEqual(got, c.want) {
			t.Errorf("mergeSorted(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
