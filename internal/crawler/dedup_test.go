package crawler_test

import (
	"context"
	"net/netip"
	"sync"
	"testing"

	"dnstrust/internal/crawler"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

// crawlWith crawls a world with the given parallelism on a fresh
// source chain and returns the survey plus the chain's query count.
func crawlWith(t *testing.T, world *topology.World, workers int, trace transport.TraceFunc) (*crawler.Survey, int64) {
	t.Helper()
	counter := transport.NewCounter()
	mws := []transport.Middleware{counter.Middleware()}
	if trace != nil {
		mws = append(mws, transport.Trace(trace))
	}
	tr := transport.Chain(world.Registry.Source(), mws...)
	r, err := world.Registry.Resolver(tr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := crawler.Run(context.Background(), r, world.Corpus, nil,
		crawler.Config{Workers: workers, SkipVersionProbe: true})
	if err != nil {
		t.Fatal(err)
	}
	return s, counter.Queries()
}

// TestSurveyQueryCountInvariance is the single-flight proof: crawling
// the same world with 1 worker and with 16 workers must cross the
// transport exactly the same number of times — and with exactly the same
// multiset of queries. Any duplicated walk (two workers re-discovering
// one zone) would show up as extra transport work at 16 workers.
func TestSurveyQueryCountInvariance(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 11, Names: 600})
	if err != nil {
		t.Fatal(err)
	}

	// Queries are compared as (name, qtype): that is the walker's memo
	// key, so each logical question crosses the transport exactly once
	// regardless of schedule. Which authoritative server answers it may
	// differ between schedules (the first walker to need the question
	// asks it with its own candidate list) — the answer is the same.
	type q struct {
		name  string
		qtype dnswire.Type
	}
	record := func(dst map[q]int, mu *sync.Mutex) transport.TraceFunc {
		return func(server netip.Addr, name string, qtype dnswire.Type) {
			mu.Lock()
			dst[q{name, qtype}]++
			mu.Unlock()
		}
	}

	var mu1, mu16 sync.Mutex
	qs1 := map[q]int{}
	qs16 := map[q]int{}
	s1, n1 := crawlWith(t, world, 1, record(qs1, &mu1))
	s16, n16 := crawlWith(t, world, 16, record(qs16, &mu16))

	if n1 != n16 {
		t.Errorf("transport queries: workers=1 issued %d, workers=16 issued %d — duplicated walks", n1, n16)
	}
	if len(s1.Names) != len(s16.Names) || s1.Graph.NumHosts() != s16.Graph.NumHosts() {
		t.Errorf("survey shape differs: %d/%d names, %d/%d hosts",
			len(s1.Names), len(s16.Names), s1.Graph.NumHosts(), s16.Graph.NumHosts())
	}

	// Same multiset of (name, qtype) questions, not just same total.
	for k, c1 := range qs1 {
		if c16 := qs16[k]; c16 != c1 {
			t.Errorf("query %v/%v: %d times at workers=1, %d at workers=16", k.name, k.qtype, c1, c16)
		}
	}
	for k := range qs16 {
		if _, ok := qs1[k]; !ok {
			t.Errorf("query %v/%v issued only at workers=16", k.name, k.qtype)
		}
	}

	// The parallel crawl must actually have exercised the dedup layers.
	if s16.Stats.Walker.MemoHits == 0 && s16.Stats.Walker.SharedWalks == 0 {
		t.Error("16-worker crawl reports no memo hits and no shared walks")
	}
}

// TestSurveyRaceStress drives the full pipeline at high parallelism on a
// shared-heavy corpus; its value is under `go test -race`, where any
// unsynchronized access in the walker shards, flight group, registry
// view, or streaming assembler fails the run.
func TestSurveyRaceStress(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 13, Names: 900})
	if err != nil {
		t.Fatal(err)
	}
	tr := world.Registry.Source()
	r, err := world.Registry.Resolver(tr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := crawler.Run(context.Background(), r, world.Corpus,
		world.Registry.ProbeFunc(tr), crawler.Config{Workers: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Names)+len(s.Failed) != len(world.Corpus) {
		t.Errorf("lost results: %d walked + %d failed of %d", len(s.Names), len(s.Failed), len(world.Corpus))
	}
	for n, err := range s.Failed {
		t.Errorf("failed %s: %v", n, err)
	}
}
