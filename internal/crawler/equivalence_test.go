package crawler_test

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"dnstrust/internal/core"
	"dnstrust/internal/crawler"
	"dnstrust/internal/mincut"
	"dnstrust/internal/topology"
)

// TestIncrementalBuildMatchesLegacy is the equivalence property test for
// the streaming graph pipeline: on randomized generator worlds, the
// graph assembled incrementally during a parallel crawl must be
// semantically identical — same names, same host/zone sets, same zone
// closures, same TCBs, same min-cuts — to the legacy batch Build over
// the reconstructed snapshot. Intern ids may differ (arrival order vs
// sorted order); everything observable through names must not.
func TestIncrementalBuildMatchesLegacy(t *testing.T) {
	for _, seed := range []int64{7, 21, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			world, err := topology.Generate(topology.GenParams{Seed: seed, Names: 500})
			if err != nil {
				t.Fatal(err)
			}
			tr := world.Registry.Source()
			r, err := world.Registry.Resolver(tr)
			if err != nil {
				t.Fatal(err)
			}
			s, err := crawler.Run(context.Background(), r, world.Corpus,
				world.Registry.ProbeFunc(tr), crawler.Config{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			streamed := s.Graph
			legacy := core.Build(s.Snapshot())

			// Same surveyed names.
			if got, want := streamed.Names(), legacy.Names(); !reflect.DeepEqual(got, want) {
				t.Fatalf("name sets differ: %d vs %d names", len(got), len(want))
			}
			// Same host and zone sets (ids may differ; sets must not).
			if got, want := sortedCopy(streamed.Hosts()), sortedCopy(legacy.Hosts()); !reflect.DeepEqual(got, want) {
				t.Fatalf("host sets differ: %d vs %d hosts", len(got), len(want))
			}
			if got, want := sortedCopy(streamed.Zones()), sortedCopy(legacy.Zones()); !reflect.DeepEqual(got, want) {
				t.Fatalf("zone sets differ: %d vs %d zones", len(got), len(want))
			}

			// Same closure per zone.
			for _, apex := range legacy.Zones() {
				if got, want := closureSet(streamed, apex), closureSet(legacy, apex); !reflect.DeepEqual(got, want) {
					t.Fatalf("closure(%s) differs:\nstreamed %v\nlegacy   %v", apex, got, want)
				}
			}

			// Same TCB per name (TCB() returns sorted host names).
			for _, n := range legacy.Names() {
				st, err1 := streamed.TCB(n)
				lt, err2 := legacy.TCB(n)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("TCB(%s) error mismatch: %v vs %v", n, err1, err2)
				}
				if !reflect.DeepEqual(st, lt) {
					t.Fatalf("TCB(%s) differs:\nstreamed %v\nlegacy   %v", n, st, lt)
				}
			}

			// Same min-cuts on a sample of names (min-cut size and the
			// minimized safe count are graph invariants).
			vuln := func(h string) bool { return s.Vulnerable(h) }
			names := legacy.Names()
			step := len(names)/40 + 1
			for i := 0; i < len(names); i += step {
				n := names[i]
				sd, err1 := streamed.Digraph(n)
				ld, err2 := legacy.Digraph(n)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("Digraph(%s) error mismatch: %v vs %v", n, err1, err2)
				}
				if err1 != nil {
					continue
				}
				sres, err := mincut.Analyze(sd, vuln)
				if err != nil {
					t.Fatal(err)
				}
				lres, err := mincut.Analyze(ld, vuln)
				if err != nil {
					t.Fatal(err)
				}
				if sres.Size != lres.Size || sres.SafeInCut != lres.SafeInCut {
					t.Fatalf("min-cut(%s) differs: size %d/%d, safe %d/%d",
						n, sres.Size, lres.Size, sres.SafeInCut, lres.SafeInCut)
				}
			}
		})
	}
}

func sortedCopy(s []string) []string {
	cp := append([]string(nil), s...)
	sort.Strings(cp)
	return cp
}

func closureSet(g *core.Graph, apex string) []string {
	ids := g.ZoneClosure(apex)
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.Host(id))
	}
	sort.Strings(out)
	return out
}
