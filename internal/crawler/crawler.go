// Package crawler implements the survey engine: it walks the delegation
// dependencies of a whole corpus of names concurrently, probes every
// discovered nameserver's version.bind banner, and produces the survey
// dataset the paper's analyses run on.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dnstrust/internal/core"
	"dnstrust/internal/dnsname"
	"dnstrust/internal/resolver"
	"dnstrust/internal/vulndb"
)

// Config tunes a survey run.
type Config struct {
	// Workers is the walk parallelism; 0 means GOMAXPROCS.
	Workers int
	// SkipVersionProbe disables banner collection (banners come back
	// empty, i.e. optimistically safe).
	SkipVersionProbe bool
	// Progress, when non-nil, receives the number of names completed so
	// far at coarse intervals.
	Progress func(done, total int)
}

// CrawlStats summarizes the engine's work for one crawl: scale, the
// parallelism used, and how much of the walk load was absorbed by the
// walker's dedup layers instead of crossing the transport.
type CrawlStats struct {
	// Workers is the parallelism the crawl ran with.
	Workers int
	// Walker carries the walker's query/memo/single-flight counters.
	Walker resolver.Stats
}

// Survey is the complete dataset of one crawl: the dependency snapshot,
// the banner of every discovered server, and the vulnerability analysis
// against the BIND matrix.
type Survey struct {
	// Graph is the dependency graph built from the crawl.
	Graph *core.Graph
	// Snapshot is the raw walker output.
	Snapshot *resolver.Snapshot
	// Names lists the successfully surveyed names.
	Names []string
	// Failed maps names that could not be walked to their errors.
	Failed map[string]error
	// Banner maps every discovered nameserver host to its version.bind
	// answer ("" when hidden or unreachable).
	Banner map[string]string
	// Vulns maps hosts to their known exploits (absent = none known).
	Vulns map[string][]vulndb.Vuln
	// DB is the vulnerability matrix the survey was scored against.
	DB *vulndb.DB
	// Stats summarizes the crawl engine's work (zero for surveys built
	// from a snapshot rather than crawled).
	Stats CrawlStats
}

// Vulnerable reports whether a host has at least one known exploit.
func (s *Survey) Vulnerable(host string) bool {
	return len(s.Vulns[dnsname.Canonical(host)]) > 0
}

// Compromisable reports whether a host has an exploit yielding control
// (code execution or cache poisoning), not just denial of service.
func (s *Survey) Compromisable(host string) bool {
	for _, v := range s.Vulns[dnsname.Canonical(host)] {
		if v.Class == vulndb.ClassExec || v.Class == vulndb.ClassPoison {
			return true
		}
	}
	return false
}

// VulnerableHosts returns the number of discovered hosts with known
// exploits (the paper's 27141-of-166771).
func (s *Survey) VulnerableHosts() int {
	n := 0
	for _, host := range s.Graph.Hosts() {
		if s.Vulnerable(host) {
			n++
		}
	}
	return n
}

// FromSnapshot packages an existing walker snapshot as a Survey with no
// fingerprinting performed (callers may fill Banner/Vulns themselves).
// Useful for hand-built scenario worlds.
func FromSnapshot(snap *resolver.Snapshot) *Survey {
	s := &Survey{
		Graph:    core.Build(snap),
		Snapshot: snap,
		Failed:   snap.Failed,
		Banner:   make(map[string]string),
		Vulns:    make(map[string][]vulndb.Vuln),
		DB:       vulndb.Default(),
	}
	for name := range snap.NameChain {
		s.Names = append(s.Names, name)
	}
	sort.Strings(s.Names)
	return s
}

// Run crawls the corpus over the given resolver and version prober.
// probe fetches the version.bind banner of a nameserver host; pass nil to
// skip fingerprinting.
//
// The crawl is a streaming pipeline: a feeder pushes corpus names into a
// bounded channel, the worker pool walks them over a shared (sharded,
// single-flight) Walker, and completed results flow straight into the
// snapshot assembler as each name finishes — there is no end-of-crawl
// barrier between walking and assembly. Cancellation drains the
// pipeline; worker-level failures are aggregated per worker and joined
// into the returned error.
func Run(ctx context.Context, r *resolver.Resolver, corpus []string, probe func(ctx context.Context, host string) (string, error), cfg Config) (*Survey, error) {
	if len(corpus) == 0 {
		return nil, fmt.Errorf("crawler: empty corpus")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	w := resolver.NewWalker(r)

	type walkOut struct {
		name  string
		chain []string
		err   error
	}
	// Bounded channels keep memory flat at any corpus size: the feeder
	// stays a few names ahead, and results are absorbed as they complete.
	in := make(chan string, workers*2)
	out := make(chan walkOut, workers*2)
	workerErrs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for name := range in {
				chain, err := w.WalkName(ctx, name)
				if err != nil && ctx.Err() != nil {
					// The crawl is being torn down: record the abort for
					// this worker and stop draining.
					workerErrs[id] = fmt.Errorf("crawler: worker %d aborted: %w", id, err)
					return
				}
				select {
				case out <- walkOut{name: name, chain: chain, err: err}:
				case <-ctx.Done():
					workerErrs[id] = fmt.Errorf("crawler: worker %d aborted: %w", id, ctx.Err())
					return
				}
			}
		}(i)
	}
	go func() {
		defer close(in)
		for _, name := range corpus {
			select {
			case in <- name:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	// Snapshot assembler: absorbs results as names complete.
	asm := core.NewBuilder(len(corpus))
	for res := range out {
		if res.err != nil {
			asm.Fail(res.name, res.err)
		} else {
			asm.Complete(res.name, res.chain)
		}
		if cfg.Progress != nil && asm.Done()%1000 == 0 {
			cfg.Progress(asm.Done(), len(corpus))
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, errors.Join(append([]error{err}, workerErrs...)...)
	}
	if err := errors.Join(workerErrs...); err != nil {
		return nil, err
	}

	// Extract the walker's sharded discovery state and fold the streamed
	// name results into it.
	snap := w.Snapshot(nil, nil)
	graph := asm.Finish(snap)

	s := &Survey{
		Graph:    graph,
		Snapshot: snap,
		Names:    asm.Names(),
		Failed:   asm.Failed(),
		Banner:   make(map[string]string),
		Vulns:    make(map[string][]vulndb.Vuln),
		DB:       vulndb.Default(),
		Stats:    CrawlStats{Workers: workers, Walker: w.Stats()},
	}

	// Fingerprint every discovered nameserver.
	if probe != nil && !cfg.SkipVersionProbe {
		if err := s.probeAll(ctx, probe, workers); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Survey) probeAll(ctx context.Context, probe func(ctx context.Context, host string) (string, error), workers int) error {
	hosts := s.Graph.Hosts()
	type probeOut struct {
		host   string
		banner string
	}
	in := make(chan string, workers*2)
	out := make(chan probeOut, workers*2)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for host := range in {
				banner, err := probe(ctx, host)
				if err != nil {
					banner = "" // unreachable: optimistically safe
				}
				out <- probeOut{host: host, banner: banner}
			}
		}()
	}
	go func() {
		defer close(in)
		for _, h := range hosts {
			select {
			case in <- h:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	for po := range out {
		s.Banner[po.host] = po.banner
		if vulns := s.DB.VulnsForBanner(po.banner); len(vulns) > 0 {
			s.Vulns[po.host] = vulns
		}
	}
	return ctx.Err()
}
