// Package crawler implements the survey engine: it walks the delegation
// dependencies of a whole corpus of names concurrently, probes every
// discovered nameserver's version.bind banner, and produces the survey
// dataset the paper's analyses run on.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"dnstrust/internal/core"
	"dnstrust/internal/dnsname"
	"dnstrust/internal/resolver"
	"dnstrust/internal/vulndb"
)

// Config tunes a survey run.
type Config struct {
	// Workers is the walk parallelism; 0 means GOMAXPROCS.
	Workers int
	// SkipVersionProbe disables banner collection (banners come back
	// empty, i.e. optimistically safe).
	SkipVersionProbe bool
	// MemoFile, when non-empty, persists the walker's (name, qtype)
	// query memo: an existing file is loaded before the crawl (resuming
	// an interrupted run without re-asking answered questions) and the
	// memo is saved back after the walk phase, even when the crawl is
	// cancelled partway.
	MemoFile string
	// Progress, when non-nil, receives the number of names completed so
	// far at coarse intervals.
	Progress func(done, total int)
}

// CrawlStats summarizes the engine's work for one crawl: scale, the
// parallelism used, how much of the walk load was absorbed by the
// walker's dedup layers instead of crossing the transport, and where the
// wall time went between the streaming walk and the closure build.
type CrawlStats struct {
	// Workers is the parallelism the crawl ran with.
	Workers int
	// Walker carries the walker's query/memo/single-flight counters.
	Walker resolver.Stats
	// MemoLoaded is the number of query-memo entries resumed from
	// Config.MemoFile (0 when persistence is off or the file was absent).
	MemoLoaded int
	// MemoSaveErr records a failure to persist the query memo after an
	// otherwise successful crawl (the survey is still returned; only the
	// resume state was lost).
	MemoSaveErr error
	// WalkTime is the wall time of the streaming phase: corpus walk plus
	// incremental graph assembly, which overlap completely.
	WalkTime time.Duration
	// BuildTime is the wall time of Builder.Finish — the Tarjan
	// condensation, closure, and per-chain TCB pass over the already
	// compact arrays. This is the only post-crawl barrier left.
	BuildTime time.Duration
}

// Survey is the complete dataset of one crawl: the dependency graph, the
// banner of every discovered server, and the vulnerability analysis
// against the BIND matrix.
type Survey struct {
	// Graph is the dependency graph built incrementally during the crawl.
	Graph *core.Graph
	// Names lists the successfully surveyed names.
	Names []string
	// Failed maps names that could not be walked to their errors.
	Failed map[string]error
	// Banner maps every discovered nameserver host to its version.bind
	// answer ("" when hidden or unreachable).
	Banner map[string]string
	// Vulns maps hosts to their known exploits (absent = none known).
	Vulns map[string][]vulndb.Vuln
	// DB is the vulnerability matrix the survey was scored against.
	DB *vulndb.DB
	// Stats summarizes the crawl engine's work (zero for surveys built
	// from a snapshot rather than crawled).
	Stats CrawlStats

	// walker backs the lazy Snapshot reconstruction for crawled surveys.
	walker   *resolver.Walker
	snapOnce sync.Once
	snap     *resolver.Snapshot
}

// Snapshot returns the legacy string-keyed view of the survey's
// dependency structure. Crawled surveys no longer materialize it during
// the crawl — it is reconstructed on first use from the walker's caches
// and the graph (an O(corpus) string conversion; analyses should prefer
// the Graph's interned ids).
func (s *Survey) Snapshot() *resolver.Snapshot {
	s.snapOnce.Do(func() {
		if s.snap != nil || s.walker == nil {
			return
		}
		nameChains := make(map[string][]string, len(s.Names))
		for _, n := range s.Names {
			nameChains[n] = s.Graph.NameChainZones(n)
		}
		s.snap = s.walker.Snapshot(nameChains, s.Failed)
	})
	return s.snap
}

// Vulnerable reports whether a host has at least one known exploit.
func (s *Survey) Vulnerable(host string) bool {
	return len(s.Vulns[dnsname.Canonical(host)]) > 0
}

// Compromisable reports whether a host has an exploit yielding control
// (code execution or cache poisoning), not just denial of service.
func (s *Survey) Compromisable(host string) bool {
	for _, v := range s.Vulns[dnsname.Canonical(host)] {
		if v.Class == vulndb.ClassExec || v.Class == vulndb.ClassPoison {
			return true
		}
	}
	return false
}

// VulnerableHosts returns the number of discovered hosts with known
// exploits (the paper's 27141-of-166771).
func (s *Survey) VulnerableHosts() int {
	n := 0
	for _, host := range s.Graph.Hosts() {
		if s.Vulnerable(host) {
			n++
		}
	}
	return n
}

// FromSnapshot packages an existing walker snapshot as a Survey with no
// fingerprinting performed (callers may fill Banner/Vulns themselves).
// Useful for hand-built scenario worlds.
func FromSnapshot(snap *resolver.Snapshot) *Survey {
	s := &Survey{
		Graph:  core.Build(snap),
		snap:   snap,
		Failed: snap.Failed,
		Banner: make(map[string]string),
		Vulns:  make(map[string][]vulndb.Vuln),
		DB:     vulndb.Default(),
	}
	for name := range snap.NameChain {
		s.Names = append(s.Names, name)
	}
	sort.Strings(s.Names)
	return s
}

// eventKind tags one entry of the crawl's unified event stream.
type eventKind uint8

const (
	evZone eventKind = iota
	evChain
	evResult
)

// event is one unit of the crawl stream: a walker discovery (zone or
// chain) or a finished per-name walk result. Everything flows through
// one FIFO channel, so the assembler observes zones before the chains
// that traverse them and chains before the results that depend on them.
type event struct {
	kind  eventKind
	key   string
	hosts []string
	chain []string
	err   error
}

// chanObserver forwards walker discovery events into the crawl stream.
// Sends are unconditional: the assembler drains the channel until every
// worker has exited, so a send can never block indefinitely.
type chanObserver chan<- event

func (c chanObserver) ZoneDiscovered(apex, _ string, nsHosts []string) {
	c <- event{kind: evZone, key: apex, hosts: nsHosts}
}

func (c chanObserver) ChainResolved(key string, chain []string) {
	c <- event{kind: evChain, key: key, chain: chain}
}

// Run crawls the corpus over the given resolver and version prober.
// probe fetches the version.bind banner of a nameserver host; pass nil to
// skip fingerprinting.
//
// The crawl is a streaming pipeline with incremental graph assembly: a
// feeder pushes corpus names into a bounded channel, the worker pool
// walks them over a shared (sharded, single-flight) Walker, and every
// discovery — zone cut, delegation chain, finished name — flows through
// one event stream into the core.Builder, which interns it into compact
// int32 ids on arrival. There is no end-of-crawl re-walk of the
// dependency state and no string-keyed corpus buffer; Finish only runs
// the closure pass. Cancellation drains the pipeline; worker-level
// failures are aggregated per worker and joined into the returned error.
func Run(ctx context.Context, r *resolver.Resolver, corpus []string, probe func(ctx context.Context, host string) (string, error), cfg Config) (*Survey, error) {
	if len(corpus) == 0 {
		return nil, fmt.Errorf("crawler: empty corpus")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	w := resolver.NewWalker(r)

	memoLoaded := 0
	if cfg.MemoFile != "" {
		n, err := loadMemoFile(w, cfg.MemoFile)
		if err != nil {
			return nil, err
		}
		memoLoaded = n
	}

	// One unified event stream: walker discoveries and walk results share
	// a FIFO channel, preserving the causal order the builder relies on.
	events := make(chan event, workers*4)
	w.SetObserver(chanObserver(events))

	in := make(chan string, workers*2)
	workerErrs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for name := range in {
				chain, err := w.WalkName(ctx, name)
				if err != nil && ctx.Err() != nil {
					// The crawl is being torn down: record the abort for
					// this worker and stop draining.
					workerErrs[id] = fmt.Errorf("crawler: worker %d aborted: %w", id, err)
					return
				}
				events <- event{kind: evResult, key: name, chain: chain, err: err}
			}
		}(i)
	}
	go func() {
		defer close(in)
		for _, name := range corpus {
			select {
			case in <- name:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(events)
	}()

	// Incremental assembler: absorbs discoveries and results into the
	// graph's intern tables as they stream in.
	walkStart := time.Now()
	asm := core.NewBuilder(len(corpus))
	for ev := range events {
		switch ev.kind {
		case evZone:
			asm.ObserveZone(ev.key, ev.hosts)
		case evChain:
			asm.ObserveChain(ev.key, ev.chain)
		case evResult:
			if ev.err != nil {
				asm.Fail(ev.key, ev.err)
			} else {
				asm.Complete(ev.key, ev.chain)
			}
			if cfg.Progress != nil && asm.Done()%1000 == 0 {
				cfg.Progress(asm.Done(), len(corpus))
			}
		}
	}
	walkTime := time.Since(walkStart)

	// Persist the query memo before reporting any error: resuming an
	// interrupted crawl is exactly the point of the memo file. A save
	// failure must not discard a completed survey (the memo is
	// best-effort resume state) — it is joined onto abort errors and
	// otherwise surfaced through Stats.MemoSaveErr. Either way the memo
	// is released afterwards — the Survey keeps the walker alive for
	// lazy Snapshot reconstruction, and the O(queries) memo of cached
	// responses must not ride along.
	var memoErr error
	if cfg.MemoFile != "" {
		memoErr = saveMemoFile(w, cfg.MemoFile)
	}
	w.ReleaseQueryMemo()
	if err := ctx.Err(); err != nil {
		return nil, errors.Join(append([]error{err, memoErr}, workerErrs...)...)
	}
	if err := errors.Join(workerErrs...); err != nil {
		return nil, errors.Join(err, memoErr)
	}

	buildStart := time.Now()
	graph := asm.Finish()
	buildTime := time.Since(buildStart)

	s := &Survey{
		Graph:  graph,
		Names:  asm.Names(),
		Failed: asm.Failed(),
		Banner: make(map[string]string),
		Vulns:  make(map[string][]vulndb.Vuln),
		DB:     vulndb.Default(),
		Stats: CrawlStats{
			Workers:     workers,
			Walker:      w.Stats(),
			MemoLoaded:  memoLoaded,
			MemoSaveErr: memoErr,
			WalkTime:    walkTime,
			BuildTime:   buildTime,
		},
		walker: w,
	}

	// Fingerprint every discovered nameserver.
	if probe != nil && !cfg.SkipVersionProbe {
		if err := s.probeAll(ctx, probe, workers); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// loadMemoFile resumes the walker's query memo from path; a missing file
// is a fresh start, not an error.
func loadMemoFile(w *resolver.Walker, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("crawler: memo file: %w", err)
	}
	defer f.Close()
	n, err := w.LoadMemo(f)
	if err != nil {
		return n, fmt.Errorf("crawler: memo file %s: %w", path, err)
	}
	return n, nil
}

// saveMemoFile persists the walker's query memo to path atomically
// (write to a temp file, then rename), so an interrupt during save never
// corrupts an earlier memo.
func saveMemoFile(w *resolver.Walker, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("crawler: memo file: %w", err)
	}
	if _, err := w.SaveMemo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("crawler: memo file %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("crawler: memo file %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("crawler: memo file: %w", err)
	}
	return nil
}

func (s *Survey) probeAll(ctx context.Context, probe func(ctx context.Context, host string) (string, error), workers int) error {
	hosts := s.Graph.Hosts()
	type probeOut struct {
		host   string
		banner string
	}
	in := make(chan string, workers*2)
	out := make(chan probeOut, workers*2)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for host := range in {
				banner, err := probe(ctx, host)
				if err != nil {
					banner = "" // unreachable: optimistically safe
				}
				out <- probeOut{host: host, banner: banner}
			}
		}()
	}
	go func() {
		defer close(in)
		for _, h := range hosts {
			select {
			case in <- h:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	for po := range out {
		s.Banner[po.host] = po.banner
		if vulns := s.DB.VulnsForBanner(po.banner); len(vulns) > 0 {
			s.Vulns[po.host] = vulns
		}
	}
	return ctx.Err()
}
