// Package crawler implements the survey engine: it walks the delegation
// dependencies of a whole corpus of names concurrently, probes every
// discovered nameserver's version.bind banner, and produces the survey
// dataset the paper's analyses run on.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"dnstrust/internal/atomicio"
	"dnstrust/internal/core"
	"dnstrust/internal/dnsname"
	"dnstrust/internal/resolver"
	"dnstrust/internal/transport"
	"dnstrust/internal/vulndb"
)

// Config tunes a survey run.
type Config struct {
	// Workers is the walk parallelism; 0 means GOMAXPROCS.
	Workers int
	// SkipVersionProbe disables banner collection (banners come back
	// empty, i.e. optimistically safe).
	SkipVersionProbe bool
	// Source, when non-nil, is the composed transport chain backing the
	// engine's resolver. The engine takes ownership: Close closes it
	// after the memo save, flushing stateful middleware (query
	// recording) and releasing whatever the terminal holds (live
	// sockets). The engine never queries it directly — queries flow
	// through the resolver, which was built over the same chain.
	Source transport.Source
	// MemoFile, when non-empty, persists the walker's (name, qtype)
	// query memo: an existing file is loaded before the crawl (resuming
	// an interrupted run without re-asking answered questions) and the
	// memo is saved back after the walk phase, even when the crawl is
	// cancelled partway.
	MemoFile string
	// Progress, when non-nil, receives the number of names completed so
	// far at coarse intervals.
	Progress func(done, total int)
	// ShardName, when non-empty, labels this engine as one shard of a
	// monitor fleet: WriteSnapshot appends a shard/meta section (shard
	// name, committed generation, corpus hash) that the fleet
	// coordinator reads back to identify and validate shard exports.
	// Empty keeps snapshots byte-identical to pre-fleet output.
	ShardName string
}

// CrawlStats summarizes the engine's work for one crawl: scale, the
// parallelism used, how much of the walk load was absorbed by the
// walker's dedup layers instead of crossing the transport, and where the
// wall time went between the streaming walk and the closure build.
type CrawlStats struct {
	// Workers is the parallelism the crawl ran with.
	Workers int
	// Walker carries the walker's query/memo/single-flight counters.
	Walker resolver.Stats
	// MemoLoaded is the number of query-memo entries resumed from
	// Config.MemoFile (0 when persistence is off or the file was absent).
	MemoLoaded int
	// MemoSaveErr records a teardown failure after an otherwise
	// successful crawl — persisting the query memo, or closing the
	// engine-owned transport source (Config.Source). The survey itself
	// is still returned; only resume state or source resources were
	// affected.
	MemoSaveErr error
	// WalkTime is the wall time of the streaming phase: corpus walk plus
	// incremental graph assembly, which overlap completely.
	WalkTime time.Duration
	// BuildTime is the wall time of the epoch finalize — the Tarjan
	// condensation, closure, and per-chain TCB pass over the already
	// compact arrays. This is the only post-crawl barrier left.
	BuildTime time.Duration
	// Generation stamps the Engine generation this survey was committed
	// at: 1 for a one-shot Run (its engine's only batch), increasing per
	// Add on a resident Engine, 0 for snapshot-built surveys.
	Generation int64
	// LateAttachedHosts lists host ids whose address chain attached
	// after the host had already appeared in an earlier generation — the
	// precise set through which earlier generations' analysis results
	// can be invalidated (see core.Builder.TakeLateAttached). Nil for
	// almost every batch.
	LateAttachedHosts []int32
	// FailuresRetried counts the memoized failures evicted at this
	// batch's generation boundary (resolver.Walker.ForgetFailures) — the
	// questions this batch was allowed to re-ask so recovered
	// dependencies become visible.
	FailuresRetried int
}

// Survey is the complete dataset of one crawl: the dependency graph, the
// banner of every discovered server, and the vulnerability analysis
// against the BIND matrix.
type Survey struct {
	// Graph is the dependency graph built incrementally during the crawl.
	Graph *core.Graph
	// Names lists the successfully surveyed names.
	Names []string
	// Failed maps names that could not be walked to their errors.
	Failed map[string]error
	// Banner maps every discovered nameserver host to its version.bind
	// answer ("" when hidden or unreachable).
	Banner map[string]string
	// Vulns maps hosts to their known exploits (absent = none known).
	Vulns map[string][]vulndb.Vuln
	// DB is the vulnerability matrix the survey was scored against.
	DB *vulndb.DB
	// Stats summarizes the crawl engine's work (zero for surveys built
	// from a snapshot rather than crawled).
	Stats CrawlStats

	// walker backs the lazy Snapshot reconstruction for crawled surveys.
	walker   *resolver.Walker
	snapOnce sync.Once
	snap     *resolver.Snapshot
}

// Snapshot returns the legacy string-keyed view of the survey's
// dependency structure. Crawled surveys no longer materialize it during
// the crawl — it is reconstructed on first use from the walker's caches
// and the graph (an O(corpus) string conversion; analyses should prefer
// the Graph's interned ids).
func (s *Survey) Snapshot() *resolver.Snapshot {
	s.snapOnce.Do(func() {
		if s.snap != nil || s.walker == nil {
			return
		}
		nameChains := make(map[string][]string, len(s.Names))
		for _, n := range s.Names {
			nameChains[n] = s.Graph.NameChainZones(n)
		}
		s.snap = s.walker.Snapshot(nameChains, s.Failed)
	})
	return s.snap
}

// Vulnerable reports whether a host has at least one known exploit.
func (s *Survey) Vulnerable(host string) bool {
	return len(s.Vulns[dnsname.Canonical(host)]) > 0
}

// Compromisable reports whether a host has an exploit yielding control
// (code execution or cache poisoning), not just denial of service.
func (s *Survey) Compromisable(host string) bool {
	for _, v := range s.Vulns[dnsname.Canonical(host)] {
		if v.Class == vulndb.ClassExec || v.Class == vulndb.ClassPoison {
			return true
		}
	}
	return false
}

// VulnerableHosts returns the number of discovered hosts with known
// exploits (the paper's 27141-of-166771).
func (s *Survey) VulnerableHosts() int {
	n := 0
	for _, host := range s.Graph.Hosts() {
		if s.Vulnerable(host) {
			n++
		}
	}
	return n
}

// FromSnapshot packages an existing walker snapshot as a Survey with no
// fingerprinting performed (callers may fill Banner/Vulns themselves).
// Useful for hand-built scenario worlds.
func FromSnapshot(snap *resolver.Snapshot) *Survey {
	s := &Survey{
		Graph:  core.Build(snap),
		snap:   snap,
		Failed: snap.Failed,
		Banner: make(map[string]string),
		Vulns:  make(map[string][]vulndb.Vuln),
		DB:     vulndb.Default(),
	}
	for name := range snap.NameChain {
		s.Names = append(s.Names, name)
	}
	sort.Strings(s.Names)
	return s
}

// eventKind tags one entry of the crawl's unified event stream.
type eventKind uint8

const (
	evZone eventKind = iota
	evChain
	evResult
)

// event is one unit of the crawl stream: a walker discovery (zone or
// chain) or a finished per-name walk result. Everything flows through
// one FIFO channel, so the assembler observes zones before the chains
// that traverse them and chains before the results that depend on them.
type event struct {
	kind  eventKind
	key   string
	hosts []string
	chain []string
	err   error
}

// Run crawls the corpus over the given resolver and version prober.
// probe fetches the version.bind banner of a nameserver host; pass nil to
// skip fingerprinting.
//
// Run is the one-shot convenience over the resident Engine: it opens an
// engine, Adds the whole corpus as one batch, and closes the engine
// (saving the query memo when configured — even when the crawl aborts,
// so an interrupted survey resumes without re-asking answered
// questions). The streaming pipeline, worker-pool semantics, and
// incremental graph assembly are the Engine's; see Engine.Add.
func Run(ctx context.Context, r *resolver.Resolver, corpus []string, probe func(ctx context.Context, host string) (string, error), cfg Config) (*Survey, error) {
	if len(corpus) == 0 {
		return nil, fmt.Errorf("crawler: empty corpus")
	}
	e, err := NewEngine(r, probe, cfg)
	if err != nil {
		return nil, err
	}
	s, addErr := e.Add(ctx, corpus...)
	// Close persists the memo before any error is reported: resuming an
	// interrupted crawl is exactly the point of the memo file. A save
	// failure must not discard a completed survey — it is joined onto
	// abort errors and otherwise surfaced through Stats.MemoSaveErr.
	memoErr := e.Close()
	if addErr != nil {
		return nil, errors.Join(addErr, memoErr)
	}
	s.Stats.MemoSaveErr = memoErr
	return s, nil
}

// loadMemoFile resumes the walker's query memo from path; a missing file
// is a fresh start, not an error.
func loadMemoFile(w *resolver.Walker, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("crawler: memo file: %w", err)
	}
	defer f.Close()
	n, err := w.LoadMemo(f)
	if err != nil {
		return n, fmt.Errorf("crawler: memo file %s: %w", path, err)
	}
	return n, nil
}

// saveMemoFile persists the walker's query memo to path atomically, so
// an interrupt during save never corrupts an earlier memo.
func saveMemoFile(w *resolver.Walker, path string) error {
	_, err := atomicio.WriteFile(path, func(f io.Writer) error {
		_, err := w.SaveMemo(f)
		return err
	})
	if err != nil {
		return fmt.Errorf("crawler: memo file %s: %w", path, err)
	}
	return nil
}

// FromGraph packages a finished dependency graph as a Survey with no
// fingerprinting performed: every host reads as banner-hidden, i.e.
// optimistically safe. It is the cheap path from a synthetic
// core.Builder corpus to the analysis layer (benchmarks, memo tests).
func FromGraph(g *core.Graph) *Survey {
	return &Survey{
		Graph:  g,
		Names:  g.Names(),
		Failed: map[string]error{},
		Banner: make(map[string]string),
		Vulns:  make(map[string][]vulndb.Vuln),
		DB:     vulndb.Default(),
	}
}
