package crawler_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"dnstrust/internal/analysis"
	"dnstrust/internal/crawler"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

func openEngine(t *testing.T, world *topology.World, cfg crawler.Config) (*crawler.Engine, *transport.Counter) {
	t.Helper()
	counter := transport.NewCounter()
	tr := transport.Chain(world.Registry.Source(), counter.Middleware())
	cfg.Source = tr
	r, err := world.Registry.Resolver(tr)
	if err != nil {
		t.Fatal(err)
	}
	e, err := crawler.NewEngine(r, world.Registry.ProbeFunc(tr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, counter
}

// TestEngineIncrementalMatchesBatch is the Engine's equivalence gate: a
// corpus fed across three Adds must commit exactly the survey a one-shot
// Run of the whole corpus produces — same names, same graph shape, same
// TCBs, same vulnerability scoring.
func TestEngineIncrementalMatchesBatch(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 21, Names: 400})
	if err != nil {
		t.Fatal(err)
	}

	e, _ := openEngine(t, world, crawler.Config{Workers: 4})
	defer e.Close()
	ctx := context.Background()
	third := len(world.Corpus) / 3
	var inc *crawler.Survey
	for _, batch := range [][]string{
		world.Corpus[:third], world.Corpus[third : 2*third], world.Corpus[2*third:],
	} {
		if inc, err = e.Add(ctx, batch...); err != nil {
			t.Fatal(err)
		}
	}
	if got := inc.Stats.Generation; got != 3 {
		t.Errorf("generation after 3 adds = %d", got)
	}

	tr := world.Registry.Source()
	r, err := world.Registry.Resolver(tr)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := crawler.Run(ctx, r, world.Corpus, world.Registry.ProbeFunc(tr), crawler.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(inc.Names, batch.Names) {
		t.Fatalf("incremental names differ from batch: %d vs %d", len(inc.Names), len(batch.Names))
	}
	if inc.Graph.NumHosts() != batch.Graph.NumHosts() || inc.Graph.NumZones() != batch.Graph.NumZones() {
		t.Fatalf("graph shape differs: %d/%d hosts, %d/%d zones",
			inc.Graph.NumHosts(), batch.Graph.NumHosts(), inc.Graph.NumZones(), batch.Graph.NumZones())
	}
	for _, n := range batch.Names {
		it, err := inc.Graph.TCB(n)
		if err != nil {
			t.Fatal(err)
		}
		bt, err := batch.Graph.TCB(n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(it, bt) {
			t.Fatalf("TCB(%s) differs between incremental and batch", n)
		}
	}
	if inc.VulnerableHosts() != batch.VulnerableHosts() {
		t.Errorf("vulnerable hosts: incremental %d, batch %d", inc.VulnerableHosts(), batch.VulnerableHosts())
	}
}

// TestEngineAddMemoizedIsTransportFree asserts the incremental-reuse
// guarantee at the transport boundary: re-adding names whose dependency
// structure is already walked issues zero queries.
func TestEngineAddMemoizedIsTransportFree(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 23, Names: 200})
	if err != nil {
		t.Fatal(err)
	}
	e, tr := openEngine(t, world, crawler.Config{Workers: 4})
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Add(ctx, world.Corpus...); err != nil {
		t.Fatal(err)
	}
	before := tr.Queries()
	if before == 0 {
		t.Fatal("first add issued no transport queries")
	}
	s, err := e.Add(ctx, world.Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Queries(); got != before {
		t.Errorf("re-add issued %d transport queries, want 0", got-before)
	}
	if int(s.Stats.Generation) != 2 {
		t.Errorf("generation = %d, want 2", s.Stats.Generation)
	}
	if len(s.Names) != len(world.Corpus) {
		t.Errorf("re-add changed the name count: %d", len(s.Names))
	}
}

// TestEngineViewIsolationUnderAdd is the -race contract behind the
// public View API: a committed Survey must stay byte-identical — and be
// freely readable, including lazy Snapshot reconstruction and analysis
// passes — while the next Add streams into the shared walker and
// builder.
func TestEngineViewIsolationUnderAdd(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 29, Names: 500})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := openEngine(t, world, crawler.Config{Workers: 4})
	defer e.Close()
	ctx := context.Background()
	half := len(world.Corpus) / 2
	v1, err := e.Add(ctx, world.Corpus[:half]...)
	if err != nil {
		t.Fatal(err)
	}

	// Record v1's observable state before the concurrent Add.
	wantNames := append([]string(nil), v1.Names...)
	wantTCB := map[string]int{}
	for _, n := range wantNames {
		wantTCB[n] = v1.Graph.TCBSize(n)
	}
	wantSummary := analysis.Summarize(v1, v1.Names)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	readErrs := make(chan string, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Analysis reads over the committed view race the crawl.
				sum := analysis.Summarize(v1, v1.Names)
				if sum.Names != wantSummary.Names || sum.Servers != wantSummary.Servers {
					readErrs <- "summary changed under a concurrent Add"
					return
				}
				for _, n := range wantNames[:20] {
					if v1.Graph.TCBSize(n) != wantTCB[n] {
						readErrs <- "TCB changed under a concurrent Add"
						return
					}
				}
				// The lazy legacy snapshot must also be safe to build
				// while the walker's caches advance.
				if snap := v1.Snapshot(); len(snap.NameChain) != len(wantNames) {
					readErrs <- "snapshot names changed under a concurrent Add"
					return
				}
				if e.View().Stats.Generation < 1 {
					readErrs <- "committed view regressed"
					return
				}
			}
		}()
	}

	v2, err := e.Add(ctx, world.Corpus[half:]...)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-readErrs:
		t.Fatal(msg)
	default:
	}

	// v1 is still exactly what it was; v2 superseded it.
	if !reflect.DeepEqual(v1.Names, wantNames) {
		t.Error("v1 names changed after the second Add")
	}
	for _, n := range wantNames {
		if v1.Graph.TCBSize(n) != wantTCB[n] {
			t.Fatalf("v1 TCB(%s) changed after the second Add", n)
		}
	}
	if len(v2.Names) != len(world.Corpus) {
		t.Errorf("v2 has %d names, want %d", len(v2.Names), len(world.Corpus))
	}
	if e.View() != v2 {
		t.Error("View() is not the latest committed generation")
	}
}

// TestEngineClosedRejectsAdd verifies the write side ends at Close while
// committed views stay readable.
func TestEngineClosedRejectsAdd(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 23, Names: 60})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := openEngine(t, world, crawler.Config{})
	s, err := e.Add(context.Background(), world.Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(context.Background(), "www.late.example"); err == nil {
		t.Error("Add after Close must fail")
	}
	if got := e.View(); got != s {
		t.Error("committed view lost after Close")
	}
	if s.Graph.TCBSize(s.Names[0]) <= 0 {
		t.Error("closed engine's view must stay readable")
	}
}
