package crawler

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dnstrust/internal/core"
	"dnstrust/internal/resolver"
	"dnstrust/internal/vulndb"
)

// Engine is the resident survey service: one walker, one streaming graph
// builder, and a sequence of incremental crawls feeding them. Where Run
// crawls a fixed corpus once and tears everything down, an Engine stays
// open — Add extends the survey with more names, reusing every zone cut,
// delegation chain, and memoized query discovered by earlier batches, so
// adding names whose dependency structure is already walked crosses the
// transport zero times.
//
// Each successful Add commits a new generation: an immutable Survey
// built from an epoch snapshot of the graph (core.Builder.FinishEpoch)
// plus copies of the failure/banner/vulnerability tables. View returns
// the latest committed generation and never blocks; readers may keep
// analyzing an older generation while the next Add streams in — nothing
// a committed Survey references is ever mutated again.
//
// Add and Close serialize on an internal lock; View is lock-free. An
// Engine is therefore "single-writer, many-readers": one crawl advances
// at a time while any number of goroutines query committed generations.
type Engine struct {
	w     *resolver.Walker
	probe func(ctx context.Context, host string) (string, error)
	cfg   Config

	// mu serializes Add and Close and guards the mutable crawl state
	// below. The committed view is published through an atomic pointer
	// so readers never touch the lock.
	mu         sync.Mutex
	b          *core.Builder
	banner     map[string]string
	vulns      map[string][]vulndb.Vuln
	db         *vulndb.DB
	probed     int // prefix of the graph's host table already fingerprinted
	memoLoaded int
	closed     bool
	// pendingLate carries late-attached host ids drained from the
	// builder by an Add that then failed before committing (e.g. probe
	// cancellation): they must surface in the NEXT committed
	// generation's stats or the analysis memo would never invalidate
	// the chains they touched.
	pendingLate []int32

	// events is the active Add's stream; walker observer callbacks
	// forward into it. It is installed before the batch's workers start
	// and fully drained before Add returns, so the observer never sends
	// on a closed or stale channel.
	events chan event

	gen  atomic.Int64
	view atomic.Pointer[Survey]
}

// NewEngine opens a resident survey engine over r. probe fetches
// version.bind banners for newly discovered hosts (nil skips
// fingerprinting). When cfg.MemoFile names an existing file, the query
// memo is resumed from it; Close saves it back. The engine starts at
// generation 0 with an empty committed view.
func NewEngine(r *resolver.Resolver, probe func(ctx context.Context, host string) (string, error), cfg Config) (*Engine, error) {
	w := resolver.NewWalker(r)
	e := &Engine{
		w:      w,
		probe:  probe,
		cfg:    cfg,
		b:      core.NewBuilder(0),
		banner: make(map[string]string),
		vulns:  make(map[string][]vulndb.Vuln),
		db:     vulndb.Default(),
	}
	if cfg.MemoFile != "" {
		n, err := loadMemoFile(w, cfg.MemoFile)
		if err != nil {
			return nil, err
		}
		e.memoLoaded = n
	}
	w.SetObserver(e)
	e.view.Store(&Survey{
		Graph:  e.b.FinishEpoch(),
		Failed: map[string]error{},
		Banner: map[string]string{},
		Vulns:  map[string][]vulndb.Vuln{},
		DB:     e.db,
		Stats:  CrawlStats{MemoLoaded: e.memoLoaded},
		walker: w,
	})
	return e, nil
}

// ZoneDiscovered forwards a walker discovery into the active batch's
// event stream (resolver.WalkObserver).
func (e *Engine) ZoneDiscovered(apex, _ string, nsHosts []string) {
	e.events <- event{kind: evZone, key: apex, hosts: nsHosts}
}

// ChainResolved forwards a walker discovery into the active batch's
// event stream (resolver.WalkObserver).
func (e *Engine) ChainResolved(key string, chain []string) {
	e.events <- event{kind: evChain, key: key, chain: chain}
}

// Generation reports the latest committed generation (0 before the
// first successful Add).
func (e *Engine) Generation() int64 { return e.gen.Load() }

// Queries reports the cumulative transport queries the engine's walker
// has issued across all Adds — the counter behind the "adding memoized
// names is transport-free" guarantee.
func (e *Engine) Queries() int { return e.w.Queries() }

// View returns the latest committed Survey. It never blocks: during an
// in-flight Add it returns the previous generation, whose contents are
// immutable. Generations are stamped in Stats.Generation.
func (e *Engine) View() *Survey { return e.view.Load() }

// Add crawls names into the resident survey and commits a new
// generation. Names whose dependency structure was fully discovered by
// earlier batches are absorbed without any transport traffic (the
// walker's discovery caches answer everything); genuinely new zones are
// walked and streamed into the shared graph builder exactly like a
// first crawl. Re-adding an already-surveyed name is a no-op beyond the
// cache lookups.
//
// On error (cancellation, worker failure, probe failure) no generation
// is committed and the previous view stays valid; the walker keeps
// everything it learned, so a retry resumes where the batch stopped.
func (e *Engine) Add(ctx context.Context, names ...string) (*Survey, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, errors.New("crawler: engine closed")
	}
	if len(names) == 0 {
		return e.view.Load(), nil
	}
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Generation boundary: forget memoized failures so this batch
	// re-asks them — the only way a resident session can observe a
	// dependency that was lame and recovered (TCB drift). Successful
	// discoveries stay memoized, so re-adding a clean corpus still
	// crosses the transport zero times.
	retried := e.w.ForgetFailures()

	// One unified event stream per batch: walker discoveries and walk
	// results share a FIFO channel, preserving the causal order the
	// builder relies on. The walker only fires callbacks from this
	// batch's workers, so installing the channel here is race-free.
	events := make(chan event, workers*4)
	e.events = events

	in := make(chan string, workers*2)
	workerErrs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for name := range in {
				chain, err := e.w.WalkName(ctx, name)
				if err != nil && ctx.Err() != nil {
					// The crawl is being torn down: record the abort for
					// this worker and stop draining.
					workerErrs[id] = fmt.Errorf("crawler: worker %d aborted: %w", id, err)
					return
				}
				events <- event{kind: evResult, key: name, chain: chain, err: err}
			}
		}(i)
	}
	go func() {
		defer close(in)
		for _, name := range names {
			select {
			case in <- name:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(events)
	}()

	// Incremental assembler: absorbs discoveries and results into the
	// shared graph's intern tables as they stream in.
	walkStart := time.Now()
	total := e.b.Done() + len(names)
	//lint:allow locksafety e.mu makes Add the single assembler; draining the bounded worker stream under it is the design (workers close events when done, so this terminates)
	for ev := range events {
		switch ev.kind {
		case evZone:
			e.b.ObserveZone(ev.key, ev.hosts)
		case evChain:
			e.b.ObserveChain(ev.key, ev.chain)
		case evResult:
			if ev.err != nil {
				e.b.Fail(ev.key, ev.err)
			} else {
				e.b.Complete(ev.key, ev.chain)
			}
			if e.cfg.Progress != nil && e.b.Done()%1000 == 0 {
				e.cfg.Progress(e.b.Done(), total)
			}
		}
	}
	walkTime := time.Since(walkStart)

	if err := ctx.Err(); err != nil {
		return nil, errors.Join(append([]error{err}, workerErrs...)...)
	}
	if err := errors.Join(workerErrs...); err != nil {
		return nil, err
	}

	// Commit: finalize the epoch, fingerprint hosts discovered by this
	// batch, and publish the new generation. Late-attached ids drained
	// here are folded into pendingLate first, so an abort below (probe
	// cancellation) cannot lose them — the next committed generation
	// reports them and the analysis memo invalidates correctly.
	buildStart := time.Now()
	g := e.b.FinishEpoch()
	e.pendingLate = mergeSorted(e.pendingLate, e.b.TakeLateAttached())
	buildTime := time.Since(buildStart)

	hosts := g.Hosts()
	if e.probe != nil && !e.cfg.SkipVersionProbe && e.probed < len(hosts) {
		if err := probeHosts(ctx, e.probe, hosts[e.probed:], workers, e.banner, e.vulns, e.db); err != nil {
			return nil, err
		}
	}
	e.probed = len(hosts)
	late := e.pendingLate
	e.pendingLate = nil

	// A batch that touched no name mappings (pure re-adds) shares the
	// previous generation's sorted name list instead of materializing a
	// fresh one — with Monitor retention, unchanged generations cost
	// array headers, not O(corpus) copies.
	var surveyNames []string
	if prev := e.view.Load(); prev != nil && g.SharesStore(prev.Graph) &&
		!g.TouchedSince(prev.Graph.Epoch()) {
		surveyNames = prev.Names
	} else {
		surveyNames = g.Names()
	}

	s := &Survey{
		Graph:  g,
		Names:  surveyNames,
		Failed: maps.Clone(e.b.Failed()),
		Banner: maps.Clone(e.banner),
		Vulns:  maps.Clone(e.vulns),
		DB:     e.db,
		Stats: CrawlStats{
			Workers:           workers,
			Walker:            e.w.Stats(),
			MemoLoaded:        e.memoLoaded,
			WalkTime:          walkTime,
			BuildTime:         buildTime,
			Generation:        e.gen.Add(1),
			LateAttachedHosts: late,
			FailuresRetried:   retried,
		},
		walker: e.w,
	}
	e.view.Store(s)
	return s, nil
}

// PruneJournal discards the graph store's per-epoch change journals at
// and below the given epoch — call it as old generations fall off a
// bounded retention window, so a long-lived engine's history stays
// bounded. Diffs from generations older than the prune point fall back
// to the by-name path.
func (e *Engine) PruneJournal(epoch int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.b.PruneJournal(epoch)
	}
}

// Close saves the query memo (when Config.MemoFile is set), releases the
// memoized responses, closes the engine-owned transport chain (when
// Config.Source is set), and rejects further Adds. Committed views
// remain fully readable — Close only ends the engine's write side. It
// returns the memo-save or source-close failure, if any.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	var memoErr error
	if e.cfg.MemoFile != "" {
		memoErr = saveMemoFile(e.w, e.cfg.MemoFile)
	}
	e.w.ReleaseQueryMemo()
	if e.cfg.Source != nil {
		memoErr = errors.Join(memoErr, e.cfg.Source.Close())
	}
	return memoErr
}

// mergeSorted merges two sorted id slices, deduplicating.
func mergeSorted(a, b []int32) []int32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v int32
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			v = a[i]
			i++
		case i >= len(a) || b[j] < a[i]:
			v = b[j]
			j++
		default: // equal
			v = a[i]
			i++
			j++
		}
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// probeHosts fingerprints hosts over a worker pool, recording banners
// and scoring them against the vulnerability matrix into the given maps.
func probeHosts(ctx context.Context, probe func(ctx context.Context, host string) (string, error), hosts []string, workers int, banner map[string]string, vulns map[string][]vulndb.Vuln, db *vulndb.DB) error {
	type probeOut struct {
		host   string
		banner string
	}
	in := make(chan string, workers*2)
	out := make(chan probeOut, workers*2)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for host := range in {
				b, err := probe(ctx, host)
				if err != nil {
					b = "" // unreachable: optimistically safe
				}
				out <- probeOut{host: host, banner: b}
			}
		}()
	}
	go func() {
		defer close(in)
		for _, h := range hosts {
			select {
			case in <- h:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	for po := range out {
		banner[po.host] = po.banner
		if vs := db.VulnsForBanner(po.banner); len(vs) > 0 {
			vulns[po.host] = vs
		}
	}
	return ctx.Err()
}
