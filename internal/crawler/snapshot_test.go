package crawler_test

import (
	"context"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"dnstrust/internal/analysis"
	"dnstrust/internal/atomicio"
	"dnstrust/internal/crawler"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

// TestEngineSnapshotRoundTrip is the restart contract at the engine
// level: an engine restored from a snapshot reproduces the last
// committed generation's Survey — names, graph reads, banners,
// vulnerability scoring, summary — with zero transport queries, and then
// keeps crawling incrementally like the original would.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 31, Names: 300})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := openEngine(t, world, crawler.Config{Workers: 4})
	defer e.Close()
	ctx := context.Background()
	half := len(world.Corpus) / 2
	if _, err := e.Add(ctx, world.Corpus[:half]...); err != nil {
		t.Fatal(err)
	}
	orig, err := e.Add(ctx, world.Corpus[half:]...)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "engine.snap")
	if _, err := atomicio.WriteFile(path, func(w io.Writer) error {
		return e.WriteSnapshot(w)
	}); err != nil {
		t.Fatal(err)
	}

	// Restore over a fresh transport chain with its own query counter: the
	// restored view must be served entirely from the snapshot.
	counter := transport.NewCounter()
	tr := transport.Chain(world.Registry.Source(), counter.Middleware())
	r, err := world.Registry.Resolver(tr)
	if err != nil {
		t.Fatal(err)
	}
	re, err := crawler.NewEngineFromSnapshot(r, world.Registry.ProbeFunc(tr), crawler.Config{Workers: 4, Source: tr}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := counter.Queries(); got != 0 {
		t.Fatalf("snapshot restore issued %d transport queries, want 0", got)
	}

	v := re.View()
	if v.Stats.Generation != orig.Stats.Generation {
		t.Fatalf("restored generation = %d, want %d", v.Stats.Generation, orig.Stats.Generation)
	}
	if !reflect.DeepEqual(v.Names, orig.Names) {
		t.Fatalf("restored names differ: %d vs %d", len(v.Names), len(orig.Names))
	}
	if !reflect.DeepEqual(v.Banner, orig.Banner) {
		t.Fatal("restored banners differ")
	}
	if !reflect.DeepEqual(v.Vulns, orig.Vulns) {
		t.Fatal("restored vulnerability tables differ")
	}
	if len(v.Failed) != len(orig.Failed) {
		t.Fatalf("restored failures = %d, want %d", len(v.Failed), len(orig.Failed))
	}
	for n, err := range orig.Failed {
		if g, ok := v.Failed[n]; !ok || g.Error() != err.Error() {
			t.Fatalf("Failed[%q] = %v, want %v", n, v.Failed[n], err)
		}
	}
	for _, n := range orig.Names {
		ot, err := orig.Graph.TCB(n)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := v.Graph.TCB(n)
		if err != nil || !reflect.DeepEqual(rt, ot) {
			t.Fatalf("TCB(%s) differs after restore (%v)", n, err)
		}
	}
	want := analysis.Summarize(orig, orig.Names)
	got := analysis.Summarize(v, v.Names)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("summary differs after restore:\n got %+v\nwant %+v", got, want)
	}

	// The restored engine is a live engine: the same post-restart Add on
	// both sides commits equivalent next generations.
	extra := []string{"www.late0.example", "www.late1.example"}
	s1, err1 := e.Add(ctx, extra...)
	s2, err2 := re.Add(ctx, extra...)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if s2.Stats.Generation != s1.Stats.Generation {
		t.Fatalf("post-restart generation = %d, want %d", s2.Stats.Generation, s1.Stats.Generation)
	}
	if !reflect.DeepEqual(s2.Names, s1.Names) {
		t.Fatal("post-restart names diverge")
	}
	if len(s2.Failed) != len(s1.Failed) {
		t.Fatalf("post-restart failures diverge: %d vs %d", len(s2.Failed), len(s1.Failed))
	}
}

// TestEngineSnapshotFreshEngine covers the degenerate save: an engine
// snapshotted before any Add restores to generation zero and accepts its
// first batch normally.
func TestEngineSnapshotFreshEngine(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 37, Names: 50})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := openEngine(t, world, crawler.Config{})
	defer e.Close()
	path := filepath.Join(t.TempDir(), "fresh.snap")
	if _, err := atomicio.WriteFile(path, func(w io.Writer) error {
		return e.WriteSnapshot(w)
	}); err != nil {
		t.Fatal(err)
	}
	tr := world.Registry.Source()
	r, err := world.Registry.Resolver(tr)
	if err != nil {
		t.Fatal(err)
	}
	re, err := crawler.NewEngineFromSnapshot(r, world.Registry.ProbeFunc(tr), crawler.Config{Source: tr}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if g := re.View().Stats.Generation; g != 0 {
		t.Fatalf("fresh snapshot restored at generation %d", g)
	}
	s, err := re.Add(context.Background(), world.Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.Generation != 1 || len(s.Names) != len(world.Corpus) {
		t.Fatalf("first post-restore add: gen %d, %d names", s.Stats.Generation, len(s.Names))
	}
}
