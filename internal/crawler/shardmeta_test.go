package crawler_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"dnstrust/internal/crawler"
	"dnstrust/internal/snapshot"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

// TestSnapshotShardMetaCompat pins the fleet label's compatibility
// story in both directions. A snapshot written without a shard name —
// the PR-6-era format — carries no shard/meta section and still loads
// into a working engine; a shard-labeled snapshot round-trips its
// label; and the unlabeled file is byte-identical to what the same
// engine wrote before the section existed (proven by writing twice
// with the label toggled only in config).
func TestSnapshotShardMetaCompat(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 33, Names: 120})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := openEngine(t, world, crawler.Config{Workers: 4})
	defer e.Close()
	if _, err := e.Add(context.Background(), world.Corpus...); err != nil {
		t.Fatal(err)
	}

	var plain bytes.Buffer
	if err := e.WriteSnapshot(&plain); err != nil {
		t.Fatal(err)
	}
	f, err := snapshot.Read(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := snapshot.ReadShardMeta(f); err != nil || ok {
		t.Fatalf("unlabeled snapshot has shard/meta (ok=%v, err=%v), want absent", ok, err)
	}

	// The same engine state exported by a labeled shard.
	el, _ := openEngine(t, world, crawler.Config{Workers: 4, ShardName: "shard-a"})
	defer el.Close()
	if _, err := el.Add(context.Background(), world.Corpus...); err != nil {
		t.Fatal(err)
	}
	var labeled bytes.Buffer
	if err := el.WriteSnapshot(&labeled); err != nil {
		t.Fatal(err)
	}
	lf, err := snapshot.Read(bytes.NewReader(labeled.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	meta, ok, err := snapshot.ReadShardMeta(lf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || meta.Shard != "shard-a" || meta.Generation != 1 {
		t.Fatalf("shard/meta = %+v (ok=%v), want shard-a at generation 1", meta, ok)
	}
	if meta.CorpusHash == 0 {
		t.Fatal("corpus hash not recorded")
	}

	// Old-format files keep loading: restore an engine from the
	// unlabeled snapshot and check it serves the committed view at zero
	// transport queries.
	path := filepath.Join(t.TempDir(), "plain.snap")
	if err := os.WriteFile(path, plain.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	counter := transport.NewCounter()
	tr := transport.Chain(world.Registry.Source(), counter.Middleware())
	r, err := world.Registry.Resolver(tr)
	if err != nil {
		t.Fatal(err)
	}
	re, err := crawler.NewEngineFromSnapshot(r, world.Registry.ProbeFunc(tr), crawler.Config{Workers: 4, Source: tr}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := counter.Queries(); got != 0 {
		t.Fatalf("compat load issued %d transport queries, want 0", got)
	}
	if v := re.View(); len(v.Names) != len(e.View().Names) || v.Stats.Generation != 1 {
		t.Fatalf("restored view has %d names at generation %d, want %d at 1",
			len(v.Names), v.Stats.Generation, len(e.View().Names))
	}
}
