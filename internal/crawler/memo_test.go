package crawler_test

import (
	"bytes"
	"context"
	"net/netip"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"dnstrust/internal/dnswire"

	"dnstrust/internal/crawler"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

// TestMemoFileResume proves query-memo persistence end to end: a crawl
// with Config.MemoFile saves its (name, qtype) memo, and a second crawl
// of the same world — fresh walker, fresh transport — reloads it and
// crosses the transport zero times while producing the identical survey.
func TestMemoFileResume(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 17, Names: 300})
	if err != nil {
		t.Fatal(err)
	}
	memoFile := filepath.Join(t.TempDir(), "crawl.memo")

	runOnce := func() (*crawler.Survey, int64) {
		counter := transport.NewCounter()
		tr := transport.Chain(world.Registry.Source(), counter.Middleware())
		r, err := world.Registry.Resolver(tr)
		if err != nil {
			t.Fatal(err)
		}
		s, err := crawler.Run(context.Background(), r, world.Corpus, nil,
			crawler.Config{Workers: 4, SkipVersionProbe: true, MemoFile: memoFile})
		if err != nil {
			t.Fatal(err)
		}
		return s, counter.Queries()
	}

	s1, q1 := runOnce()
	if q1 == 0 {
		t.Fatal("first crawl issued no transport queries")
	}
	if s1.Stats.MemoLoaded != 0 {
		t.Fatalf("first crawl loaded %d memo entries from a fresh file", s1.Stats.MemoLoaded)
	}
	if _, err := os.Stat(memoFile); err != nil {
		t.Fatalf("memo file not written: %v", err)
	}

	s2, q2 := runOnce()
	if q2 != 0 {
		t.Errorf("resumed crawl issued %d transport queries, want 0 (all answered from the memo)", q2)
	}
	if s2.Stats.MemoLoaded == 0 {
		t.Error("resumed crawl reports no memo entries loaded")
	}

	// The resumed survey must be identical in shape and content.
	if len(s1.Names) != len(s2.Names) || s1.Graph.NumHosts() != s2.Graph.NumHosts() ||
		s1.Graph.NumZones() != s2.Graph.NumZones() {
		t.Fatalf("resumed survey differs: %d/%d names, %d/%d hosts, %d/%d zones",
			len(s1.Names), len(s2.Names), s1.Graph.NumHosts(), s2.Graph.NumHosts(),
			s1.Graph.NumZones(), s2.Graph.NumZones())
	}
	for i, n := range s1.Names {
		if s2.Names[i] != n {
			t.Fatalf("names differ at %d: %q vs %q", i, n, s2.Names[i])
		}
		if a, b := s1.Graph.TCBSize(n), s2.Graph.TCBSize(n); a != b {
			t.Fatalf("TCB(%s) differs after resume: %d vs %d", n, a, b)
		}
	}
}

// TestMemoFileSaveFailureKeepsSurvey checks that losing the resume
// state (an unwritable memo path) does not discard a completed crawl:
// the survey is returned and the failure is surfaced via Stats.
func TestMemoFileSaveFailureKeepsSurvey(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 17, Names: 50})
	if err != nil {
		t.Fatal(err)
	}
	r, err := world.Registry.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	memoFile := filepath.Join(t.TempDir(), "no", "such", "dir", "crawl.memo")
	s, err := crawler.Run(context.Background(), r, world.Corpus, nil,
		crawler.Config{SkipVersionProbe: true, MemoFile: memoFile})
	if err != nil {
		t.Fatalf("crawl must survive a memo-save failure, got %v", err)
	}
	if s.Stats.MemoSaveErr == nil {
		t.Error("Stats.MemoSaveErr must record the lost resume state")
	}
	if len(s.Names) != len(world.Corpus) {
		t.Errorf("surveyed %d of %d names", len(s.Names), len(world.Corpus))
	}
}

// idJitterSource stamps a fresh, schedule-dependent ID onto every
// response — the behaviour of a live crawl's dnsclient, whose random
// query IDs echo back in the answers.
type idJitterSource struct {
	inner transport.Source
	n     atomic.Uint32
}

func (s *idJitterSource) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	resp, err := s.inner.Query(ctx, server, name, qtype, class)
	if err == nil {
		resp.ID = uint16(s.n.Add(1))
	}
	return resp, err
}

func (s *idJitterSource) Close() error { return s.inner.Close() }

// TestSaveMemoByteStable: two concurrent crawls of the same corpus must
// serialize byte-identical memo files — sorted records plus ID
// normalization make recorded logs diffable between crawls — even when
// the transport stamps schedule-dependent response IDs.
func TestSaveMemoByteStable(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 17, Names: 150})
	if err != nil {
		t.Fatal(err)
	}
	crawlBytes := func() []byte {
		memoFile := filepath.Join(t.TempDir(), "crawl.memo")
		src := &idJitterSource{inner: world.Registry.Source()}
		r, err := world.Registry.Resolver(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := crawler.Run(context.Background(), r, world.Corpus, nil,
			crawler.Config{Workers: 8, SkipVersionProbe: true, MemoFile: memoFile}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(memoFile)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1 := crawlBytes()
	b2 := crawlBytes()
	if len(b1) == 0 {
		t.Fatal("empty memo serialization")
	}
	if !bytes.Equal(b1, b2) {
		t.Error("two crawls of the same corpus serialized different memo bytes")
	}
}

// TestMemoFileRejectsGarbage checks that a corrupt memo file fails the
// crawl loudly instead of silently resuming from nothing.
func TestMemoFileRejectsGarbage(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 17, Names: 50})
	if err != nil {
		t.Fatal(err)
	}
	memoFile := filepath.Join(t.TempDir(), "garbage.memo")
	if err := os.WriteFile(memoFile, []byte("not a memo file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := world.Registry.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crawler.Run(context.Background(), r, world.Corpus, nil,
		crawler.Config{SkipVersionProbe: true, MemoFile: memoFile}); err == nil {
		t.Error("crawl with a corrupt memo file must error")
	}
}
