package crawler_test

import (
	"context"
	"testing"

	"dnstrust/internal/crawler"
	"dnstrust/internal/topology"
)

// runSurvey crawls a generated world end to end.
func runSurvey(t *testing.T, names int, workers int) (*topology.World, *crawler.Survey) {
	t.Helper()
	w, err := topology.Generate(topology.GenParams{Seed: 2, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Registry.Source()
	r, err := w.Registry.Resolver(tr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := crawler.Run(context.Background(), r, w.Corpus,
		w.Registry.ProbeFunc(tr), crawler.Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return w, s
}

func TestSurveyEndToEnd(t *testing.T) {
	w, s := runSurvey(t, 800, 4)
	if len(s.Names) != len(w.Corpus) {
		t.Errorf("surveyed %d of %d names (failed: %d)", len(s.Names), len(w.Corpus), len(s.Failed))
	}
	for n, err := range s.Failed {
		t.Errorf("failed %s: %v", n, err)
	}
	if s.Graph.NumHosts() == 0 {
		t.Fatal("no hosts discovered")
	}
	// Every corpus name must have a TCB.
	for _, n := range s.Names[:50] {
		if s.Graph.TCBSize(n) <= 0 {
			t.Errorf("TCB of %s is %d", n, s.Graph.TCBSize(n))
		}
	}
}

func TestSurveyBanners(t *testing.T) {
	_, s := runSurvey(t, 600, 4)
	// Every discovered host must have a banner entry (possibly hidden).
	hosts := s.Graph.Hosts()
	for _, h := range hosts {
		if _, ok := s.Banner[h]; !ok {
			t.Fatalf("no banner recorded for %s", h)
		}
	}
	// Vulnerable servers exist and are a plausible minority.
	v := s.VulnerableHosts()
	frac := float64(v) / float64(len(hosts))
	if frac < 0.05 || frac > 0.40 {
		t.Errorf("vulnerable fraction = %.2f (%d/%d), outside plausible band", frac, v, len(hosts))
	}
}

func TestSurveyDeterministic(t *testing.T) {
	_, s1 := runSurvey(t, 400, 1)
	_, s2 := runSurvey(t, 400, 8)
	if s1.Graph.NumHosts() != s2.Graph.NumHosts() {
		t.Errorf("host counts differ across parallelism: %d vs %d",
			s1.Graph.NumHosts(), s2.Graph.NumHosts())
	}
	if len(s1.Names) != len(s2.Names) {
		t.Fatalf("name counts differ: %d vs %d", len(s1.Names), len(s2.Names))
	}
	for i := range s1.Names {
		if s1.Names[i] != s2.Names[i] {
			t.Fatalf("names differ at %d", i)
		}
		a, b := s1.Graph.TCBSize(s1.Names[i]), s2.Graph.TCBSize(s2.Names[i])
		if a != b {
			t.Fatalf("TCB(%s) differs: %d vs %d", s1.Names[i], a, b)
		}
	}
}

func TestSurveyCompromisable(t *testing.T) {
	_, s := runSurvey(t, 600, 4)
	// Compromisable implies vulnerable.
	for _, h := range s.Graph.Hosts() {
		if s.Compromisable(h) && !s.Vulnerable(h) {
			t.Fatalf("%s compromisable but not vulnerable", h)
		}
	}
}

func TestSurveySkipProbe(t *testing.T) {
	w, err := topology.Generate(topology.GenParams{Seed: 3, Names: 200})
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Registry.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := crawler.Run(context.Background(), r, w.Corpus, nil, crawler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.VulnerableHosts() != 0 {
		t.Error("without probing, every server must be optimistically safe")
	}
}

func TestSurveyEmptyCorpus(t *testing.T) {
	w, err := topology.Generate(topology.GenParams{Seed: 3, Names: 200})
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Registry.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crawler.Run(context.Background(), r, nil, nil, crawler.Config{}); err == nil {
		t.Error("empty corpus must error")
	}
}

func TestSurveyCancellation(t *testing.T) {
	w, err := topology.Generate(topology.GenParams{Seed: 3, Names: 500})
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Registry.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := crawler.Run(ctx, r, w.Corpus, nil, crawler.Config{}); err == nil {
		t.Error("cancelled crawl must error")
	}
}

func TestSurveyProgressCallback(t *testing.T) {
	w, err := topology.Generate(topology.GenParams{Seed: 4, Names: 2500})
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Registry.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	_, err = crawler.Run(context.Background(), r, w.Corpus, nil, crawler.Config{
		Progress: func(done, total int) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("progress callback never invoked")
	}
}
