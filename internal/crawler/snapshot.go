package crawler

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"maps"
	"sort"

	"dnstrust/internal/core"
	"dnstrust/internal/resolver"
	"dnstrust/internal/snapshot"
	"dnstrust/internal/vulndb"
)

// Engine snapshot sections, appended after the core builder's sections
// in the same container file:
//
//	crawler/meta    generation, probed-host prefix, pending late ids
//	crawler/banner  per-host version.bind banners (sorted host order)
//	shard/meta      optional fleet-shard label (see snapshot.ShardMeta)
//
// Vulnerability tables are not stored: they are a pure function of the
// banners and the vulnerability matrix (vulndb.DB.VulnsForBanner) and
// are recomputed on load, so a snapshot restored against an updated
// matrix is rescored automatically.

// WriteSnapshot serializes the engine's resident state — the graph
// builder's epoch store plus the engine's generation counter and banner
// table — as one snapshot file on w. It takes the engine lock, so it
// runs exactly between Adds; committed views are unaffected. A closed
// engine can still be snapshotted (Close only ends the write side).
func (e *Engine) WriteSnapshot(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	sw := snapshot.NewWriter(w)
	if err := e.b.WriteSections(sw); err != nil {
		return err
	}

	sw.Begin("crawler/meta")
	sw.I64(e.gen.Load())
	sw.I64(int64(e.probed))
	sw.U64(uint64(len(e.pendingLate)))
	sw.I32s(e.pendingLate)
	sw.Pad8()

	sw.Begin("crawler/banner")
	hosts := make([]string, 0, len(e.banner))
	for h := range e.banner {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	banners := make([]string, len(hosts))
	for i, h := range hosts {
		banners[i] = e.banner[h]
	}
	if err := snapshot.WriteStringTable(sw, hosts); err != nil {
		return err
	}
	if err := snapshot.WriteStringTable(sw, banners); err != nil {
		return err
	}

	// Fleet shards label their exports; without a shard name the file
	// stays byte-identical to pre-fleet snapshots.
	if e.cfg.ShardName != "" {
		var names []string
		if v := e.view.Load(); v != nil {
			names = v.Names
		}
		meta := snapshot.ShardMeta{
			Shard:      e.cfg.ShardName,
			Generation: e.gen.Load(),
			CorpusHash: hashNames(names),
		}
		if err := snapshot.WriteShardMeta(sw, meta); err != nil {
			return err
		}
	}

	return sw.Finish()
}

// hashNames fingerprints a sorted name list with FNV-1a, the corpus
// hash carried in shard/meta so a coordinator can tell two shards
// serving the same name partition apart from a repartition.
func hashNames(names []string) uint64 {
	h := fnv.New64a()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// NewEngineFromSnapshot opens a resident survey engine whose graph,
// failure tables, banners, and generation counter are restored from a
// snapshot file instead of crawled: the restart path that reproduces the
// last committed generation's Survey with zero transport queries. The
// walker's discovery caches start cold — they refill lazily (and
// transport-free, when cfg.MemoFile resumes the query memo) as new names
// are added. The snapshot's mapping stays referenced for the life of the
// engine's store.
func NewEngineFromSnapshot(r *resolver.Resolver, probe func(ctx context.Context, host string) (string, error), cfg Config, path string) (*Engine, error) {
	f, err := snapshot.Open(path)
	if err != nil {
		return nil, fmt.Errorf("crawler: snapshot %s: %w", path, err)
	}
	b, err := core.LoadSnapshot(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("crawler: snapshot %s: %w", path, err)
	}

	md := snapshot.NewSectionReader(f, "crawler/meta")
	gen := md.I64()
	probed := md.I64()
	pendingLate := append([]int32(nil), md.I32s(md.Count(4))...)
	bd := snapshot.NewSectionReader(f, "crawler/banner")
	hosts := bd.Strings()
	banners := bd.Strings()
	if err := md.Err(); err != nil {
		return nil, fmt.Errorf("crawler: snapshot %s: %w", path, err)
	}
	if err := bd.Err(); err != nil {
		return nil, fmt.Errorf("crawler: snapshot %s: %w", path, err)
	}
	if len(banners) != len(hosts) {
		return nil, fmt.Errorf("crawler: snapshot %s: %w: %d banners for %d hosts",
			path, snapshot.ErrCorrupt, len(banners), len(hosts))
	}

	w := resolver.NewWalker(r)
	e := &Engine{
		w:           w,
		probe:       probe,
		cfg:         cfg,
		b:           b,
		banner:      make(map[string]string, len(hosts)),
		vulns:       make(map[string][]vulndb.Vuln),
		db:          vulndb.Default(),
		probed:      int(probed),
		pendingLate: pendingLate,
	}
	for i, h := range hosts {
		e.banner[h] = banners[i]
		if vs := e.db.VulnsForBanner(banners[i]); len(vs) > 0 {
			e.vulns[h] = vs
		}
	}
	if cfg.MemoFile != "" {
		n, err := loadMemoFile(w, cfg.MemoFile)
		if err != nil {
			return nil, err
		}
		e.memoLoaded = n
	}
	w.SetObserver(e)
	e.gen.Store(gen)

	g := b.LastGraph()
	if g == nil {
		// The snapshot predates any committed crawl (an engine saved at
		// generation 0): start from a fresh empty view, like NewEngine.
		g = core.NewBuilder(0).FinishEpoch()
	}
	e.view.Store(&Survey{
		Graph:  g,
		Names:  g.Names(),
		Failed: maps.Clone(b.Failed()),
		Banner: maps.Clone(e.banner),
		Vulns:  maps.Clone(e.vulns),
		DB:     e.db,
		Stats:  CrawlStats{Generation: gen, MemoLoaded: e.memoLoaded},
		walker: w,
	})
	return e, nil
}
