package proxy_test

import (
	"context"
	"log"
	"testing"
	"time"

	"dnstrust"
	"dnstrust/internal/dnsclient"
	"dnstrust/internal/dnsserver"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/proxy"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
	"dnstrust/internal/verdict"
)

// policyWorld builds the serving-path scenario: www.fbi.gov rides the
// paper's §3.2 chain through a hijackable BIND 8.2.4 server (refuse),
// www.example.com has a clean chain (allow), and www.solo.com sits on a
// single-server zone (flag: narrow cut).
func policyWorld(t *testing.T) *topology.World {
	t.Helper()
	b := topology.NewWorld()
	gov := []string{"a.gov-servers.net", "b.gov-servers.net"}
	gtld := []string{"a.gtld-servers.net", "b.gtld-servers.net", "c.gtld-servers.net"}
	b.Zone("com", gtld...)
	b.Zone("net", gtld...)
	b.Zone("gov", gov...)
	b.Zone("gov-servers.net", gov...)
	b.Zone("gtld-servers.net", gtld...)

	b.Zone("fbi.gov", "dns.sprintip.com", "dns2.sprintip.com")
	b.Zone("sprintip.com",
		"reston-ns1.telemail.net", "reston-ns2.telemail.net", "reston-ns3.telemail.net")
	b.Zone("telemail.net",
		"reston-ns1.telemail.net", "reston-ns2.telemail.net", "reston-ns3.telemail.net")
	b.SetBanner("dns.sprintip.com", "BIND 9.2.2")
	b.SetBanner("dns2.sprintip.com", "BIND 9.2.2")
	b.SetBanner("reston-ns1.telemail.net", "BIND 9.2.3")
	b.SetBanner("reston-ns2.telemail.net", "BIND 8.2.4") // hijackable
	b.Host("www.fbi.gov")

	b.Zone("example.com", "ns1.example.com", "ns2.example.com")
	b.SetBanner("ns1.example.com", "BIND 9.2.3")
	b.SetBanner("ns2.example.com", "BIND 9.2.3")
	b.Host("www.example.com")

	b.Zone("solo.com", "ns1.solo.com")
	b.SetBanner("ns1.solo.com", "BIND 9.2.3")
	b.Host("www.solo.com")

	return &topology.World{
		Registry: b.Finalize(),
		Corpus:   []string{"www.fbi.gov", "www.example.com", "www.solo.com"},
	}
}

// TestProxyEndToEndReplay is the serving-path acceptance test: a world
// is crawled and resolved once against the in-memory registry with a
// Record middleware; the proxy then serves real UDP clients entirely
// from that recording — the monitor rebuilds from the replay log, the
// upstream resolver reads from it, and a counter on the direct terminal
// proves zero terminal queries. A name whose chain contains the
// hijackable server comes back REFUSED (with no upstream resolution at
// all); a clean name resolves NOERROR with its address; a narrow-cut
// name is answered but flagged.
func TestProxyEndToEndReplay(t *testing.T) {
	ctx := context.Background()
	qlog := transport.NewLog()

	// Record phase: crawl the corpus and resolve the servable names
	// through one recorded chain.
	world := policyWorld(t)
	rec := transport.Chain(world.Registry.Source(), transport.Record(qlog))
	m, err := dnstrust.OpenWorld(ctx, world, dnstrust.Options{Workers: 4, Source: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(ctx, world.Corpus...); err != nil {
		t.Fatal(err)
	}
	r, err := resolver.New(rec, resolver.Config{Roots: world.Registry.RootServers()})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"www.example.com", "www.solo.com"} {
		if _, err := r.Resolve(ctx, n, dnswire.TypeA); err != nil {
			t.Fatalf("record-phase resolve %s: %v", n, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if qlog.Len() == 0 {
		t.Fatal("recording captured nothing")
	}

	// Replay phase: the log is the only Internet. The counter sits on
	// the direct terminal beneath the replay fallthrough, so any query
	// the log cannot answer is counted — the test demands zero. The
	// same world supplies the root addresses (hand-built worlds assign
	// server addresses at Finalize, so a rebuilt world would not share
	// the recorded addressing).
	world2 := world
	m2, err := dnstrust.OpenWorld(ctx, world2, dnstrust.Options{Workers: 4, ReplayLog: qlog})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	cache, err := verdict.NewCache(m2.At().Survey(), verdict.Config{TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	m2.OnCommit(func(v *dnstrust.View) { cache.Advance(v.Survey()) })
	if _, err := m2.Add(ctx, world2.Corpus...); err != nil {
		t.Fatal(err)
	}

	counter := transport.NewCounter()
	upstream := transport.ReplayThrough(qlog,
		transport.Chain(world2.Registry.Source(), counter.Middleware()))
	defer upstream.Close()
	r2, err := resolver.New(upstream, resolver.Config{Roots: world2.Registry.RootServers()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := proxy.New(proxy.Config{Resolver: r2, Cache: cache, Logger: log.New(testWriter{t}, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dnsserver.Start(ctx, "127.0.0.1:0", dnsserver.Config{Handler: p})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := dnsclient.New(dnsclient.Config{Timeout: 2 * time.Second})
	addr := srv.Addr().String()

	// The condemned chain: REFUSED, no answers, no upstream walk.
	resp, err := c.Query(ctx, addr, "www.fbi.gov", dnswire.TypeA, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeRefused || len(resp.Answers) != 0 {
		t.Fatalf("www.fbi.gov: %s, want REFUSED with no answers", resp)
	}

	// The clean chain: NOERROR with the host's address.
	resp, err = c.Query(ctx, addr, "www.example.com", dnswire.TypeA, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("www.example.com: %s, want NOERROR with answers", resp)
	}
	if !resp.RecursionAvailable {
		t.Error("proxy answers must set RA")
	}

	// The narrow-cut chain: answered, but flagged.
	resp, err = c.Query(ctx, addr, "www.solo.com", dnswire.TypeA, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("www.solo.com: %s, want NOERROR with answers", resp)
	}

	if got := counter.Queries(); got != 0 {
		t.Errorf("terminal queries = %d, want 0 (everything from the recording)", got)
	}
	st := p.Stats()
	if st.Served != 3 || st.Refused != 1 || st.Flagged != 1 || st.Failed != 0 {
		t.Errorf("proxy stats = %+v, want served=3 refused=1 flagged=1 failed=0", st)
	}

	ctxSD, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctxSD); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestProxyUnknownNameProvisional checks the serving behavior for a name
// the monitor has never surveyed: the proxy answers immediately (flagged,
// provisional) and the queued crawl turns the verdict real.
func TestProxyUnknownNameProvisional(t *testing.T) {
	ctx := context.Background()
	world := policyWorld(t)
	m, err := dnstrust.OpenWorld(ctx, world, dnstrust.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	cache, err := verdict.NewCache(m.At().Survey(), verdict.Config{
		TTL:       time.Hour,
		AddLinger: time.Millisecond,
		Add: func(ctx context.Context, names ...string) error {
			_, err := m.Add(ctx, names...)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	m.OnCommit(func(v *dnstrust.View) { cache.Advance(v.Survey()) })
	if _, err := m.Add(ctx, "www.fbi.gov"); err != nil {
		t.Fatal(err)
	}

	src := world.Registry.Source()
	defer src.Close()
	r, err := resolver.New(src, resolver.Config{Roots: world.Registry.RootServers()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := proxy.New(proxy.Config{Resolver: r, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	req := dnswire.NewQuery(1, "www.example.com", dnswire.TypeA, dnswire.ClassINET)
	resp := p.ServeDNS(ctx, req)
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
		t.Fatalf("unknown name first answer: %s, want NOERROR with answers", resp)
	}
	if st := p.Stats(); st.Flagged != 1 {
		t.Errorf("first answer should be flagged (provisional), stats %+v", st)
	}

	deadline := time.Now().Add(5 * time.Second)
	for cache.Lookup("www.example.com").Provisional {
		if time.Now().After(deadline) {
			t.Fatalf("queued crawl never landed: %+v", cache.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp = p.ServeDNS(ctx, dnswire.NewQuery(2, "www.example.com", dnswire.TypeA, dnswire.ClassINET))
	if resp.RCode != dnswire.RCodeSuccess {
		t.Fatalf("post-crawl answer: %s", resp)
	}
	if st := p.Stats(); st.Flagged != 1 {
		t.Errorf("post-crawl answer must not be flagged: %+v", st)
	}
}

// replySink forces the alloc-gate baseline reply onto the heap.
var replySink *dnswire.Message

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) { w.t.Logf("%s", p); return len(p), nil }

// TestRefusePathAllocGate is the runtime complement of the
// //lint:hotpath annotation on ServeDNS: with logging disabled, a warm
// refused query — the path an attack hammers — must allocate nothing
// beyond constructing the reply message itself. The baseline is
// measured rather than hard-coded so the gate tracks dnswire's reply
// shape instead of a magic number.
//
// alloc-gate: dnstrust/internal/proxy.(*Proxy).ServeDNS
func TestRefusePathAllocGate(t *testing.T) {
	ctx := context.Background()
	world := policyWorld(t)
	m, err := dnstrust.OpenWorld(ctx, world, dnstrust.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Add(ctx, "www.fbi.gov"); err != nil {
		t.Fatal(err)
	}
	cache, err := verdict.NewCache(m.At().Survey(), verdict.Config{TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	src := world.Registry.Source()
	defer src.Close()
	r, err := resolver.New(src, resolver.Config{Roots: world.Registry.RootServers()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := proxy.New(proxy.Config{Resolver: r, Cache: cache}) // no Logger: the silent path
	if err != nil {
		t.Fatal(err)
	}

	req := dnswire.NewQuery(1, "www.fbi.gov", dnswire.TypeA, dnswire.ClassINET)
	if resp := p.ServeDNS(ctx, req); resp.RCode != dnswire.RCodeRefused {
		t.Fatalf("warm-up: %s, want REFUSED", resp)
	}
	// The reply must escape in the baseline exactly as ServeDNS's does,
	// or the compiler stack-allocates it and the baseline undercounts.
	base := testing.AllocsPerRun(1000, func() { replySink = req.Reply() })
	got := testing.AllocsPerRun(1000, func() {
		if p.ServeDNS(ctx, req).RCode != dnswire.RCodeRefused {
			t.Fatal("not refused")
		}
	})
	if got > base {
		t.Errorf("refuse path allocates %.1f objects per query, want <= %.1f (reply construction only)", got, base)
	}
}
