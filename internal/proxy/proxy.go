// Package proxy implements the trust-aware resolving DNS proxy: a
// dnsserver.Handler that resolves each query iteratively upstream and
// applies the monitor's verdict first — allow serves silently, flag
// serves and logs, refuse answers REFUSED without ever contacting
// upstream. It is the enforcement point the paper's offline measurement
// implies: the place a resolver turns "this chain is too trusting" into
// an answer-path decision.
package proxy

import (
	"context"
	"errors"
	"log"
	"sync/atomic"
	"time"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/resolver"
	"dnstrust/internal/verdict"
)

// Config configures a Proxy.
type Config struct {
	// Resolver performs upstream iterative resolution. Required.
	Resolver *resolver.Resolver
	// Cache serves per-name verdicts. Required; keep it advancing via
	// Monitor.OnCommit.
	Cache *verdict.Cache
	// Logger receives one line per flagged or refused answer; nil
	// disables logging.
	Logger *log.Logger
	// Timeout bounds one upstream resolution. Zero means 5s.
	Timeout time.Duration
}

// Stats counts proxy outcomes.
type Stats struct {
	// Served counts every well-formed query handled.
	Served uint64
	// Refused counts queries answered REFUSED by policy.
	Refused uint64
	// Flagged counts queries answered but logged by policy.
	Flagged uint64
	// Failed counts upstream resolution failures (SERVFAIL answers).
	Failed uint64
}

// Proxy is a dnsserver.Handler; it is safe for concurrent use.
type Proxy struct {
	cfg Config

	served  atomic.Uint64
	refused atomic.Uint64
	flagged atomic.Uint64
	failed  atomic.Uint64
}

// New validates cfg and builds a Proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Resolver == nil {
		return nil, errors.New("proxy: Config.Resolver is required")
	}
	if cfg.Cache == nil {
		return nil, errors.New("proxy: Config.Cache is required")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	return &Proxy{cfg: cfg}, nil
}

// ServeDNS implements dnsserver.Handler. The verdict is consulted
// before resolution, so a refused name costs no upstream traffic — the
// attack the policy blocks is on the answer path, and the proxy never
// walks into a chain the monitor already condemned.
//
// The refuse path is the serving-side hot loop under attack: every
// blocked query pays one cache lookup and one reply header. Varargs box
// their arguments at the call site — before logf's own nil check — so
// each log line sits behind an explicit Logger guard to keep the
// unlogged path allocation-free.
//
//lint:hotpath
func (p *Proxy) ServeDNS(ctx context.Context, req *dnswire.Message) *dnswire.Message {
	q := req.Questions[0]
	resp := req.Reply()
	resp.RecursionAvailable = true
	p.served.Add(1)

	if q.Class != dnswire.ClassINET {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}
	name := dnsname.Canonical(q.Name)

	v := p.cfg.Cache.Lookup(name)
	switch v.Level {
	case verdict.Refuse:
		p.refused.Add(1)
		if p.cfg.Logger != nil {
			//lint:allow hotpathalloc boxing happens only with logging enabled; the guard keeps the silent refuse path allocation-free
			p.logf("refuse %s: %s (tcb=%d cut=%d gen=%d)", name, v.Reasons, v.TCBSize, v.Cut, v.Generation)
		}
		resp.RCode = dnswire.RCodeRefused
		return resp
	case verdict.Flag:
		p.flagged.Add(1)
		if p.cfg.Logger != nil {
			//lint:allow hotpathalloc boxing happens only with logging enabled; flagged answers are logged by contract
			p.logf("flag %s: %s (tcb=%d cut=%d gen=%d provisional=%v)", name, v.Reasons, v.TCBSize, v.Cut, v.Generation, v.Provisional)
		}
	}

	rctx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
	defer cancel()
	res, err := p.cfg.Resolver.Resolve(rctx, name, q.Type)
	switch {
	case err == nil:
		resp.Answers = res.Records
	case errors.Is(err, resolver.ErrNXDomain):
		resp.RCode = dnswire.RCodeNXDomain
	case errors.Is(err, resolver.ErrNoData):
		// NOERROR with an empty answer section.
	default:
		p.failed.Add(1)
		if p.cfg.Logger != nil {
			//lint:allow hotpathalloc upstream failure already allocated; one log line per SERVFAIL is the diagnosis path
			p.logf("servfail %s %s: %v", name, q.Type, err)
		}
		resp.RCode = dnswire.RCodeServFail
	}
	return resp
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Served:  p.served.Load(),
		Refused: p.refused.Load(),
		Flagged: p.flagged.Load(),
		Failed:  p.failed.Load(),
	}
}

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logger != nil {
		p.cfg.Logger.Printf(format, args...)
	}
}
