package hijack_test

import (
	"context"
	"net/netip"
	"testing"

	"dnstrust/internal/core"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/hijack"
	"dnstrust/internal/mincut"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

func fbiGraph(t *testing.T) (*topology.Registry, *core.Graph) {
	t.Helper()
	reg := topology.FBIWorld()
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	w := resolver.NewWalker(r)
	chain, err := w.WalkName(context.Background(), "www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	return reg, core.Build(w.Snapshot(map[string][]string{"www.fbi.gov": chain}, nil))
}

func TestNoAttackUnaffected(t *testing.T) {
	_, g := fbiGraph(t)
	a, err := hijack.New(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.Verdict("www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	if v != hijack.Unaffected {
		t.Errorf("verdict = %v, want unaffected", v)
	}
}

func TestPartialHijack(t *testing.T) {
	_, g := fbiGraph(t)
	// One of two fbi.gov servers compromised: partial.
	a, err := hijack.New(g, []string{"dns.sprintip.com"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := a.Verdict("www.fbi.gov")
	if v != hijack.Partial {
		t.Errorf("verdict = %v, want partial", v)
	}
	frac, err := a.MonteCarlo("www.fbi.gov", 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if frac <= 0 || frac >= 1 {
		t.Errorf("partial hijack trial fraction = %v, want strictly between 0 and 1", frac)
	}
}

func TestCompleteHijackOfAuthZone(t *testing.T) {
	_, g := fbiGraph(t)
	a, err := hijack.New(g, []string{"dns.sprintip.com", "dns2.sprintip.com"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := a.Verdict("www.fbi.gov")
	if v != hijack.Complete {
		t.Errorf("verdict = %v, want complete", v)
	}
	frac, err := a.MonteCarlo("www.fbi.gov", 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Errorf("complete hijack trial fraction = %v, want 1.0", frac)
	}
}

// TestPaperScenario reproduces §3.2: compromising the telemail.net
// servers (which serve sprintip.com) completely hijacks www.fbi.gov
// transitively — the fbi.gov servers' addresses can no longer be
// resolved cleanly.
func TestPaperScenario(t *testing.T) {
	_, g := fbiGraph(t)
	a, err := hijack.New(g, []string{
		"reston-ns1.telemail.net", "reston-ns2.telemail.net", "reston-ns3.telemail.net",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := a.Verdict("www.fbi.gov")
	if v != hijack.Complete {
		t.Errorf("verdict = %v, want complete (transitive hijack)", v)
	}
	if a.CleanlyUsable("dns.sprintip.com") {
		t.Error("dns.sprintip.com should not be cleanly usable: its address chain is owned")
	}
}

// TestDoSPlusCompromise reproduces the paper's combination attack: DoS
// the safe bottleneck server, compromise the vulnerable one.
func TestDoSPlusCompromise(t *testing.T) {
	_, g := fbiGraph(t)
	a, err := hijack.New(g,
		[]string{"dns.sprintip.com"},  // compromised
		[]string{"dns2.sprintip.com"}, // denial-of-serviced
	)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := a.Verdict("www.fbi.gov")
	if v != hijack.Complete {
		t.Errorf("verdict = %v, want complete under DoS+compromise", v)
	}
}

func TestUnknownServerRejected(t *testing.T) {
	_, g := fbiGraph(t)
	if _, err := hijack.New(g, []string{"nonexistent.example.com"}, nil); err == nil {
		t.Error("unknown compromised server must be rejected")
	}
	if _, err := hijack.New(g, nil, []string{"nonexistent.example.com"}); err == nil {
		t.Error("unknown downed server must be rejected")
	}
}

func TestVerdictUnknownName(t *testing.T) {
	_, g := fbiGraph(t)
	a, _ := hijack.New(g, nil, nil)
	if _, err := a.Verdict("not.surveyed.example"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[hijack.Verdict]string{
		hijack.Unaffected: "unaffected",
		hijack.Partial:    "partial",
		hijack.Complete:   "complete",
	} {
		if v.String() != want {
			t.Errorf("Verdict(%d) = %q", v, v.String())
		}
	}
}

// TestMinCutImpliesComplete cross-validates the min-cut analysis: the
// returned cut set, when compromised, must yield a complete hijack.
func TestMinCutImpliesComplete(t *testing.T) {
	_, g := fbiGraph(t)
	d, err := g.Digraph("www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	// Unit min cut via the mincut package, indirectly through analysis is
	// overkill here; build it directly.
	a, err := hijack.New(g, cutHosts(t, d), nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := a.Verdict("www.fbi.gov")
	if v != hijack.Complete {
		t.Errorf("compromising the min-cut gave %v, want complete", v)
	}
}

func cutHosts(t *testing.T, d *core.Digraph) []string {
	t.Helper()
	weights := make([]int64, d.NumNodes())
	for i := range d.Hosts {
		weights[i] = 1
	}
	cut, _, err := vertexCut(d, weights)
	if err != nil {
		t.Fatal(err)
	}
	return cut
}

// vertexCut adapts mincut.VertexCut to host names without importing the
// analysis plumbing.
func vertexCut(d *core.Digraph, weights []int64) ([]string, int64, error) {
	cut, total, err := mincutVertexCut(d.Adj, weights, d.Source, d.Sink)
	if err != nil {
		return nil, 0, err
	}
	var hosts []string
	for _, v := range cut {
		hosts = append(hosts, d.Hosts[v])
	}
	return hosts, total, nil
}

func TestForgingTransportDivertsResolution(t *testing.T) {
	reg := topology.FBIWorld()
	attacker := netip.MustParseAddr("203.0.113.66")

	// Compromise reston-ns2.telemail.net at the wire level.
	comp := reg.Server("reston-ns2.telemail.net")
	if comp == nil {
		t.Fatal("missing server")
	}
	// Take the other two telemail servers down so the resolver must use
	// the compromised one (a targeted link-saturation attack, as the
	// paper puts it).
	reg.SetLame("reston-ns1.telemail.net", true)
	reg.SetLame("reston-ns3.telemail.net", true)

	forged := hijack.NewForgingTransport(
		reg.Source(),
		[]netip.Addr{comp.Addr},
		attacker,
		"evil.attacker.example",
	)
	r, err := reg.Resolver(forged)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Resolve(context.Background(), "www.fbi.gov", dnswire.TypeA)
	if err != nil {
		t.Fatalf("Resolve under attack: %v", err)
	}
	if len(res.Addrs) != 1 || res.Addrs[0] != attacker {
		t.Errorf("resolved to %v, want attacker address %v", res.Addrs, attacker)
	}
	if forged.Diverted() == 0 {
		t.Error("no responses were forged")
	}
}

func TestForgingTransportHonestWithoutAttack(t *testing.T) {
	reg := topology.FBIWorld()
	forged := hijack.NewForgingTransport(
		reg.Source(), nil,
		netip.MustParseAddr("203.0.113.66"), "evil.attacker.example")
	r, err := reg.Resolver(forged)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Resolve(context.Background(), "www.fbi.gov", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if forged.Diverted() != 0 {
		t.Error("forged responses without compromised servers")
	}
	if len(res.Addrs) != 1 || res.Addrs[0].String() == "203.0.113.66" {
		t.Errorf("honest resolution broken: %v", res.Addrs)
	}
}

// mincutVertexCut is a thin indirection to mincut.VertexCut.
func mincutVertexCut(adj [][]int, weights []int64, s, t int) ([]int, int64, error) {
	return mincut.VertexCut(adj, weights, s, t)
}
