// Package hijack simulates attacks on the delegation structure: given a
// set of compromised (and optionally denial-of-serviced) nameservers, it
// decides whether a name's resolution is unaffected, partially
// hijackable, or completely hijacked — and cross-validates the min-cut
// bottleneck predictions of the analysis empirically.
//
// Semantics follow §3.2 of the paper. A resolution strategy picks one
// nameserver per zone on each delegation chain (recursively for
// nameserver addresses). The attacker diverts a strategy when it touches
// any compromised server. A *complete* hijack means every strategy is
// diverted; *partial* means at least one but not all.
package hijack

import (
	"fmt"
	"math/rand"

	"dnstrust/internal/core"
	"dnstrust/internal/dnsname"
)

// Verdict classifies a name under an attack.
type Verdict int

const (
	// Unaffected: no compromised server appears in the name's TCB.
	Unaffected Verdict = iota
	// Partial: some strategies are diverted, but clean ones remain.
	Partial
	// Complete: every resolution strategy is diverted.
	Complete
)

func (v Verdict) String() string {
	switch v {
	case Complete:
		return "complete"
	case Partial:
		return "partial"
	default:
		return "unaffected"
	}
}

// Attack is an immutable attack scenario over a dependency graph.
type Attack struct {
	g *core.Graph
	// compromised servers answer queries with forged data.
	compromised map[int32]bool
	// downed servers are denial-of-serviced: unusable, but not forging.
	downed map[int32]bool

	// usable[h] is the fixpoint: h can be cleanly used by a resolver.
	usable []bool
	// zoneClean[z]: some nameserver of z is cleanly usable.
	zoneClean []bool
	// grounded[h]: h's address comes from root glue (TLD servers) or its
	// chain is unknown (optimistic).
	grounded []bool
	// hostChains[h] holds chain zone indices for non-grounded hosts.
	hostChains [][]int
	// zoneIndex maps apex -> zone index.
	zoneIndex map[string]int
}

// New builds an attack scenario. Unknown host names are rejected: an
// attack against a server the survey never saw is a scenario bug.
func New(g *core.Graph, compromised, downed []string) (*Attack, error) {
	a := &Attack{
		g:           g,
		compromised: make(map[int32]bool, len(compromised)),
		downed:      make(map[int32]bool, len(downed)),
	}
	for _, h := range compromised {
		id, ok := g.HostID(h)
		if !ok {
			return nil, fmt.Errorf("hijack: unknown server %q", h)
		}
		a.compromised[id] = true
	}
	for _, h := range downed {
		id, ok := g.HostID(h)
		if !ok {
			return nil, fmt.Errorf("hijack: unknown server %q", h)
		}
		a.downed[id] = true
	}
	a.fixpoint()
	return a, nil
}

// fixpoint computes clean usability as a least fixpoint:
//
//	usable(h)    = !compromised(h) && !downed(h) &&
//	               (grounded(h) || every zone on chain(h) is clean)
//	zoneClean(z) = some h in NS(z) is usable
//
// Grounded hosts are TLD servers (root-glue bootstrap) and hosts whose
// chains the survey could not resolve (treated optimistically).
func (a *Attack) fixpoint() {
	g := a.g
	zones := g.Zones()
	hosts := g.Hosts()
	a.usable = make([]bool, len(hosts))
	a.zoneClean = make([]bool, len(zones))

	zoneID := make(map[string]int, len(zones))
	for i, apex := range zones {
		zoneID[apex] = i
	}
	a.zoneIndex = zoneID
	grounded := make([]bool, len(hosts))
	for _, apex := range zones {
		if dnsname.CountLabels(apex) == 1 {
			for _, h := range g.ZoneNS(apex) {
				grounded[h] = true
			}
		}
	}
	hostChains := make([][]int, len(hosts))
	for hid, host := range hosts {
		chain := g.HostChainZones(host)
		if len(chain) == 0 {
			grounded[hid] = true
			continue
		}
		// Glue waiver: a server that is an NS of its own authoritative
		// zone is reached through the parent's referral glue, so its own
		// zone is not a dependency of its address (the parent zones on
		// the chain still are).
		az := chain[len(chain)-1]
		for _, ns := range g.ZoneNS(az) {
			if ns == int32(hid) {
				chain = chain[:len(chain)-1]
				break
			}
		}
		if len(chain) == 0 {
			grounded[hid] = true
			continue
		}
		for _, apex := range chain {
			hostChains[hid] = append(hostChains[hid], zoneID[apex])
		}
	}
	a.grounded = grounded
	a.hostChains = hostChains

	// Iterate to fixpoint; each pass only flips false->true, so at most
	// |hosts|+|zones| passes; in practice a handful.
	for changed := true; changed; {
		changed = false
		for hid := range hosts {
			if a.usable[hid] || a.compromised[int32(hid)] || a.downed[int32(hid)] {
				continue
			}
			ok := true
			if !grounded[hid] {
				for _, z := range hostChains[hid] {
					if !a.zoneClean[z] {
						ok = false
						break
					}
				}
			}
			if ok {
				a.usable[hid] = true
				changed = true
			}
		}
		for zi, apex := range zones {
			if a.zoneClean[zi] {
				continue
			}
			for _, h := range g.ZoneNS(apex) {
				if a.usable[h] {
					a.zoneClean[zi] = true
					changed = true
					break
				}
			}
		}
	}
}

// Verdict classifies name under this attack.
func (a *Attack) Verdict(name string) (Verdict, error) {
	chain := a.g.NameChainZones(name)
	if chain == nil {
		return Unaffected, fmt.Errorf("hijack: name %q not in survey", name)
	}
	complete := false
	for _, apex := range chain {
		if !a.zoneClean[a.zoneIndex[apex]] {
			complete = true
			break
		}
	}
	if complete {
		return Complete, nil
	}
	// Partial iff any compromised server sits in the TCB.
	ids, err := a.g.TCBIDs(name)
	if err != nil {
		return Unaffected, err
	}
	for _, id := range ids {
		if a.compromised[id] {
			return Partial, nil
		}
	}
	return Unaffected, nil
}

// CleanlyUsable reports the fixpoint value for one server.
func (a *Attack) CleanlyUsable(host string) bool {
	id, ok := a.g.HostID(host)
	if !ok {
		return false
	}
	return a.usable[id]
}

// TrialDiverted simulates one random resolution strategy for name and
// reports whether the attacker diverted it. It picks one usable-looking
// server per zone uniformly at random (compromised servers answer
// normally from the resolver's perspective, so they are picked too) and
// recurses into the chosen server's address chain.
func (a *Attack) TrialDiverted(name string, rng *rand.Rand) (bool, error) {
	chain := a.g.NameChainZones(name)
	if chain == nil {
		return false, fmt.Errorf("hijack: name %q not in survey", name)
	}
	for _, apex := range chain {
		diverted, err := a.trialZone(apex, rng, 0)
		if err != nil {
			return false, err
		}
		if diverted {
			return true, nil
		}
	}
	return false, nil
}

const maxTrialDepth = 64

// trialZone picks one server of the zone at random and checks whether
// using it gets diverted (it is compromised, or its address resolution
// gets diverted). Denial-of-serviced servers are re-picked, as a real
// resolver retries; if everything is down the strategy fails closed
// (counts as diverted — the attacker has silenced the zone).
func (a *Attack) trialZone(apex string, rng *rand.Rand, depth int) (bool, error) {
	if depth > maxTrialDepth {
		// Resolution too deep to terminate: a degenerate strategy; the
		// resolver would give up, which is a denial, not a clean answer.
		return true, nil
	}
	servers := a.g.ZoneNS(apex)
	if len(servers) == 0 {
		return true, nil
	}
	candidates := make([]int32, 0, len(servers))
	for _, h := range servers {
		if !a.downed[h] {
			candidates = append(candidates, h)
		}
	}
	if len(candidates) == 0 {
		return true, nil
	}
	h := candidates[rng.Intn(len(candidates))]
	if a.compromised[h] {
		return true, nil
	}
	// The server must be contacted by address: resolve its chain unless
	// grounded (root glue).
	if a.grounded[h] {
		return false, nil
	}
	for _, z := range a.hostChains[h] {
		diverted, err := a.trialZoneIdx(z, rng, depth+1)
		if err != nil {
			return false, err
		}
		if diverted {
			return true, nil
		}
	}
	return false, nil
}

// trialZoneIdx is trialZone keyed by zone index.
func (a *Attack) trialZoneIdx(z int, rng *rand.Rand, depth int) (bool, error) {
	return a.trialZone(a.g.Zones()[z], rng, depth)
}

// MonteCarlo runs n random strategies and reports the fraction diverted.
// A complete hijack gives 1.0; a clean name gives 0.0. Deterministic for
// a fixed seed.
func (a *Attack) MonteCarlo(name string, n int, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	diverted := 0
	for i := 0; i < n; i++ {
		d, err := a.TrialDiverted(name, rng)
		if err != nil {
			return 0, err
		}
		if d {
			diverted++
		}
	}
	return float64(diverted) / float64(n), nil
}
