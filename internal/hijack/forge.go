package hijack

import (
	"context"
	"net/netip"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/resolver"
)

// ForgingTransport wraps a resolver transport so that queries reaching a
// compromised server return attacker-controlled answers: every address
// question resolves to the attacker's address, and referrals hand
// authority to the attacker's nameserver. It demonstrates, at the wire
// level, the §3.2 scenario of a crack on reston-ns2.telemail.net
// diverting www.fbi.gov.
type ForgingTransport struct {
	inner resolver.Transport
	// compromised server addresses.
	compromised map[netip.Addr]bool
	// AttackerAddr is where diverted names point.
	AttackerAddr netip.Addr
	// AttackerNS is the nameserver name forged referrals delegate to.
	AttackerNS string

	// Diverted counts forged responses, for assertions and demos.
	diverted int
}

// NewForgingTransport builds the attack transport. compromised lists the
// addresses of servers under attacker control.
func NewForgingTransport(inner resolver.Transport, compromised []netip.Addr, attackerAddr netip.Addr, attackerNS string) *ForgingTransport {
	m := make(map[netip.Addr]bool, len(compromised))
	for _, a := range compromised {
		m[a] = true
	}
	return &ForgingTransport{
		inner:        inner,
		compromised:  m,
		AttackerAddr: attackerAddr,
		AttackerNS:   dnsname.Canonical(attackerNS),
	}
}

// Diverted reports how many responses were forged so far.
func (t *ForgingTransport) Diverted() int { return t.diverted }

// Query implements resolver.Transport.
func (t *ForgingTransport) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	// The attacker's own nameserver answers too: once a forged referral
	// or address points there, every subsequent query is the attacker's.
	if !t.compromised[server] && server != t.AttackerAddr {
		return t.inner.Query(ctx, server, name, qtype, class)
	}
	t.diverted++
	name = dnsname.Canonical(name)
	req := dnswire.NewQuery(1, name, qtype, class)
	resp := req.Reply()
	resp.Authoritative = true
	switch qtype {
	case dnswire.TypeA:
		resp.Answers = []dnswire.RR{{
			Name: name, Class: class, TTL: 3600,
			Data: dnswire.A{Addr: t.AttackerAddr},
		}}
	case dnswire.TypeNS:
		resp.Answers = []dnswire.RR{{
			Name: name, Class: class, TTL: 3600,
			Data: dnswire.NS{Host: t.AttackerNS},
		}}
		resp.Additional = []dnswire.RR{{
			Name: t.AttackerNS, Class: class, TTL: 3600,
			Data: dnswire.A{Addr: t.AttackerAddr},
		}}
	default:
		// Anything else: claim the name exists with no data; keeps the
		// resolver moving toward address queries the attacker answers.
	}
	return resp, nil
}

var _ resolver.Transport = (*ForgingTransport)(nil)
