package a

type T struct {
	name string
	hits int64
	m    map[string]*T
}

// The cache-hit shape: map lookup, counter bump, pointer returns.
//
//lint:hotpath
func lookup(t *T, key string) *T {
	if e := t.m[key]; e != nil {
		t.hits++
		return e
	}
	return nil
}

// make/new/append are deliberate, reviewed allocations — not flagged;
// the AllocsPerRun gates own the runtime budget.
//
//lint:hotpath
func sizedMake(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

//lint:hotpath
func constConcat() string {
	return "a" + "b"
}

//lint:hotpath
func pointerIntoInterface(t *T) any {
	return t
}

//lint:hotpath
func nilIntoInterface() any {
	return nil
}

//lint:hotpath
func nonCapturingClosure() func() int {
	return func() int { return 42 }
}

//lint:hotpath
func byteIndex(s string, i int) byte {
	return s[i]
}
