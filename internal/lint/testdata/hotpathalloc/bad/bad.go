package a

import "fmt"

type T struct {
	name string
	m    map[string]*T
}

//lint:hotpath
func fmtCall(t *T) string {
	return fmt.Sprintf("n=%s", t.name) // want `calls fmt\.Sprintf`
}

//lint:hotpath
func concat(a, b string) string {
	return a + b // want `concatenates strings`
}

//lint:hotpath
func convertToString(b []byte) string {
	return string(b) // want `converts \[\]byte to string`
}

//lint:hotpath
func convertToBytes(s string) []byte {
	return []byte(s) // want `converts string to \[\]byte`
}

//lint:hotpath
func capturingClosure() func() int {
	total := 0
	return func() int { // want `closure capturing "total"`
		total++
		return total
	}
}

//lint:hotpath
func boxesInt(v int) any {
	return v // want `boxes a int into an interface`
}

//lint:hotpath
func boxesIntoCall(v int64, sink func(any)) {
	sink(v) // want `boxes a int64 into an interface`
}

//lint:hotpath
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal`
}

//lint:hotpath
func sliceLit(n int) []int {
	return []int{n} // want `slice literal`
}

//lint:hotpath
func spawns(done chan struct{}) {
	go noop() // want `starts a goroutine`
}

func noop() {}

// Unannotated functions may allocate freely: no findings here.
func notAnnotated() string {
	return fmt.Sprintf("free %d", 1)
}
