package a

import "time"

func spinForever() {
	for {
	}
}

func startSpinner() {
	go spinForever() // want `goroutine can never terminate`
}

func tickLoop(stats func()) {
	go func() { // want `goroutine can never terminate`
		for range time.Tick(time.Second) {
			stats()
		}
	}()
}

func tickerFieldLoop(stats func()) {
	t := time.NewTicker(time.Second)
	go func() { // want `goroutine can never terminate`
		for range t.C {
			stats()
		}
	}()
}

func emptySelect() {
	go func() { // want `goroutine can never terminate`
		select {}
	}()
}

func divergesThroughHelper() {
	go func() { // want `goroutine can never terminate`
		spinForever()
	}()
}

func loopWithWorkButNoExit(work chan int, out chan int) {
	go func() { // want `goroutine can never terminate`
		for {
			v := <-work
			out <- v * v
		}
	}()
}
