package a

import (
	"context"
	"time"
)

func ctxWorker(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

func rangeOverClosableChannel(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

func stopChannelTicker(stop chan struct{}) {
	t := time.NewTicker(time.Second)
	go func() {
		defer t.Stop()
		for {
			select {
			case <-t.C:
			case <-stop:
				return
			}
		}
	}()
}

func tickerRangeWithBreak(t *time.Ticker, limit int) {
	go func() {
		n := 0
		for range t.C {
			n++
			if n == limit {
				break
			}
		}
	}()
}

func oneShot(done chan struct{}) {
	go func() {
		<-done
	}()
}

func namedWorker(in chan int) {
	go drain(in)
}

func drain(in chan int) {
	for range in {
	}
}
