// Conforming code for the replay-deterministic scope: seeded sources,
// injected clocks, and the collect-sort-emit idiom.
package transport

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// seeded uses an explicitly seeded generator, the sanctioned form.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// injectedClock receives time as a value instead of reading the wall.
func injectedClock(now func() time.Time) time.Time {
	return now()
}

// dumpSorted is the collect-sort-emit idiom: the range over the map
// only collects; every write happens in key order.
func dumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// sliceEmit ranges over a slice, whose order is deterministic.
func sliceEmit(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
