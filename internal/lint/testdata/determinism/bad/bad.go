// Seeded determinism violations. The linttest suite loads this fixture
// under the import path dnstrust/internal/transport, putting it in the
// replay-deterministic scope.
package transport

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `time.Now in replay-deterministic package`
}

func clockValue() func() time.Time {
	return time.Now // want `time.Now in replay-deterministic package`
}

func jitter() int {
	return rand.Intn(10) // want `package-level rand.Intn uses the process-global source`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `package-level rand.Shuffle uses the process-global source`
}

func dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want `emits output from inside a range over a map`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

type sb interface {
	WriteString(string) (int, error)
}

func dumpBuilder(b sb, m map[string]bool) {
	for k := range m { // want `emits output from inside a range over a map`
		b.WriteString(k)
	}
}
