// The same constructs that the bad fixture seeds, but loaded under a
// package path outside the replay-deterministic set: the analyzer must
// stay silent here (daemons and examples may read wall clocks freely).
package a

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now()
}

func jitter() int {
	return rand.Intn(10)
}
