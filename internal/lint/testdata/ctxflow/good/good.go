// Conforming context flow: ctx threaded through, root contexts built
// only where no caller context exists.
package a

import "context"

func lookup(ctx context.Context, name string) error {
	_ = ctx
	_ = name
	return nil
}

// threaded passes its ctx on.
func threaded(ctx context.Context, name string) error {
	return lookup(ctx, name)
}

// derived narrows the caller's ctx instead of replacing it.
func derived(ctx context.Context, name string) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return lookup(sub, name)
}

// noCtx has no caller context to thread; a root context is all it can
// build.
func noCtx(name string) error {
	return lookup(context.Background(), name)
}

// detachedWorker spawns a background goroutine whose literal takes no
// ctx: building its own lifecycle context there is the deliberate
// detach pattern (verdict.Cache.runAdder), which stays unflagged.
func detachedWorker(ctx context.Context, done chan struct{}) error {
	go func() {
		_ = lookup(context.Background(), "background")
		close(done)
	}()
	return lookup(ctx, "foreground")
}
