// Seeded cancellation-severing: ctx-taking functions that hand a fresh
// root context onward, cutting their caller out of the cancellation
// tree.
package a

import "context"

func lookup(ctx context.Context, name string) error {
	_ = ctx
	_ = name
	return nil
}

func sever(ctx context.Context, name string) error {
	return lookup(context.Background(), name) // want `sever receives a context.Context but passes context.Background\(\) to lookup`
}

func severTODO(ctx context.Context) {
	ctx2, cancel := context.WithTimeout(context.TODO(), 0) // want `severTODO receives a context.Context but passes context.TODO\(\) to context.WithTimeout`
	defer cancel()
	_ = ctx2
	_ = ctx
}

func severInLiteral() {
	fn := func(ctx context.Context) error {
		return lookup(context.Background(), "x") // want `function literal receives a context.Context but passes context.Background\(\) to lookup`
	}
	_ = fn
}
