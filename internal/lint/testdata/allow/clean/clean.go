// Well-formed //lint:allow suppressions: both placements (standalone
// above the statement and trailing it) silence the finding, so this
// fixture must produce no diagnostics.
package a

import "os"

func standalone(path string, data []byte) error {
	//lint:allow atomicwrite this artifact is advisory; a torn write is acceptable
	return os.WriteFile(path, data, 0o644)
}

func trailing(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) //lint:allow atomicwrite torn writes acceptable here
}

func multi(path string, data []byte) error {
	//lint:allow atomicwrite,errwrapped one reason covering two analyzers
	return os.WriteFile(path, data, 0o644)
}
