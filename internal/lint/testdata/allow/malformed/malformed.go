// Malformed //lint:allow comments: a missing reason or an unknown
// analyzer name is itself reported, and the suppression does not apply
// — the underlying finding surfaces too.
package a

import "os"

func missingReason(path string, data []byte) error {
	//lint:allow atomicwrite
	return os.WriteFile(path, data, 0o644)
}

func unknownAnalyzer(path string, data []byte) error {
	//lint:allow nosuchcheck because reasons
	return os.WriteFile(path, data, 0o644)
}
