// Conforming error construction: sentinels wrapped with %w (including
// multiple per Errorf), non-error operands formatted freely.
package a

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func wrap(err error) error {
	return fmt.Errorf("load failed: %w", err)
}

func wrapBoth(err error) error {
	return fmt.Errorf("%w: %w", errSentinel, err)
}

func textOnly(path string, n int) error {
	return fmt.Errorf("%s: short read of %d bytes (want %d%%)", path, n, 100)
}

func stringified(err error) string {
	// Sprintf has no wrapping contract; only Errorf is checked.
	return fmt.Sprintf("log line: %v", err)
}
