// Seeded sentinel-stringification: each fmt.Errorf here keeps the
// sentinel's text but breaks errors.Is matching on it.
package a

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func stringifyV(err error) error {
	return fmt.Errorf("load failed: %v", err) // want `%v stringifies this error`
}

func stringifyS(err error) error {
	return fmt.Errorf("load failed: %s", err) // want `%s stringifies this error`
}

func stringifyQ(name string, err error) error {
	return fmt.Errorf("%w: %q while loading %s", errSentinel, err, name) // want `%q stringifies this error`
}

func stringifySentinel(path string) error {
	return fmt.Errorf("%s: %v", path, errSentinel) // want `%v stringifies this error`
}

func stringifyIndexed(err error) error {
	return fmt.Errorf("twice: %[1]v and %[1]v", err) // want `%v stringifies this error` `%v stringifies this error`
}
