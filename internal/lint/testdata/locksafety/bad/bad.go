package a

import (
	"os"
	"sync"
)

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
	m  map[string]int
}

func leakOnEarlyReturn(s *S, bad bool) int {
	s.mu.Lock()
	if bad {
		return -1 // want `s\.mu .* is still held when this path leaves the function`
	}
	s.mu.Unlock()
	return s.n
}

func leakOnPanic(s *S) {
	s.mu.Lock()
	if s.n < 0 {
		panic("negative") // want `s\.mu .* is still held`
	}
	s.mu.Unlock()
}

func leakAtEnd(s *S) {
	s.mu.Lock()
	s.n++ // want `s\.mu .* is still held`
}

func doubleLock(s *S) {
	s.mu.Lock()
	s.mu.Lock() // want `second Lock of s\.mu while already held`
	s.mu.Unlock()
	s.mu.Unlock()
}

func upgradeDeadlock(s *S) {
	s.rw.RLock()
	s.rw.Lock() // want `Lock of s\.rw while its RLock .* RWMutex upgrades deadlock`
	s.rw.Unlock()
}

func wrongRelease(s *S) {
	s.rw.RLock()
	s.rw.Unlock() // want `s\.rw was RLocked .* but released with Unlock`
}

func wrongReleaseWrite(s *S) {
	s.rw.Lock()
	s.rw.RUnlock() // want `s\.rw was Locked .* but released with RUnlock`
}

func ioUnderLock(s *S, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.WriteFile(path, nil, 0o644) // want `file I/O \(os\.WriteFile\) while s\.mu is held`
}

func recvUnderLock(s *S, ch chan int) int {
	s.mu.Lock()
	v := <-ch // want `channel receive while s\.mu is held`
	s.mu.Unlock()
	return v
}

func sendUnderLock(s *S, ch chan int) {
	s.mu.Lock()
	ch <- s.n // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

func waitUnderLock(s *S, wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `WaitGroup\.Wait while s\.mu is held`
}

func selectUnderLock(s *S, a, b chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while s\.mu is held`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func rangeChanUnderLock(s *S, ch chan string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range ch { // want `range over channel ch while s\.mu is held`
		s.m[k]++
	}
}

type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

func lockAB(p *Pair) {
	p.a.Lock()
	p.b.Lock() // want `inconsistent lock order`
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *Pair) {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}
