package a

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

func deferred(s *S) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func deferredInLiteral(s *S) {
	s.mu.Lock()
	defer func() {
		s.m["closed"] = 1
		s.mu.Unlock()
	}()
	s.m["x"]++
}

func earlyReturnReleases(s *S, k string) (int, bool) {
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	return 0, false
}

func readThenWrite(s *S, k string) {
	s.rw.RLock()
	_, hit := s.m[k]
	s.rw.RUnlock()
	if !hit {
		s.rw.Lock()
		s.m[k] = 1
		s.rw.Unlock()
	}
}

func lockPerIteration(s *S, keys []string) {
	for _, k := range keys {
		s.mu.Lock()
		s.m[k]++
		s.mu.Unlock()
	}
}

func panicPathDeferred(s *S, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v < 0 {
		panic("bad value")
	}
	s.m["k"] = v
}

func nonBlockingSelectUnderLock(s *S, ch chan string) {
	s.mu.Lock()
	select {
	case k := <-ch:
		s.m[k]++
	default:
	}
	s.mu.Unlock()
}

func blockingAfterUnlock(s *S, wg *sync.WaitGroup, ch chan int) {
	s.mu.Lock()
	s.m["x"]++
	s.mu.Unlock()
	wg.Wait()
	<-ch
}

type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

func orderOnce(p *Pair) {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func orderTwice(p *Pair) {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}
