// Seeded violations of the copy-on-write discipline: every mutation
// here writes a structure that lock-free readers may be traversing.
package a

import "sync/atomic"

type counts = map[string]int

type store struct {
	ptr atomic.Pointer[counts]
}

func badIndexWrite(s *store) {
	m := *s.ptr.Load()
	m["k"] = 1 // want `writes element of a map reached from atomic.Pointer.Load`
}

func badDirectWrite(s *store) {
	(*s.ptr.Load())["k"] = 1 // want `writes element of a map reached from atomic.Pointer.Load`
}

func badDelete(s *store) {
	delete(*s.ptr.Load(), "k") // want `delete\(\) on a map reached from atomic.Pointer.Load`
}

func badIncrement(s *store) {
	m := *s.ptr.Load()
	m["k"]++ // want `increments element of a map reached from atomic.Pointer.Load`
}

type state struct {
	n int
}

type holder struct {
	p atomic.Pointer[state]
}

func badFieldWrite(h *holder) {
	st := h.p.Load()
	st.n = 7 // want `writes field n of a value reached from atomic.Pointer.Load`
}

type entry struct {
	hits int
}

type entries = map[string]*entry

type estore struct {
	p atomic.Pointer[entries]
}

func badRangeElemWrite(s *estore) {
	for _, e := range *s.p.Load() {
		e.hits = 0 // want `writes field hits of a value reached from atomic.Pointer.Load`
	}
}

type ints = []int

type lstore struct {
	p atomic.Pointer[ints]
}

func badSliceWrite(l *lstore) {
	sl := *l.p.Load()
	sl[0] = 1 // want `writes element of a slice reached from atomic.Pointer.Load`
}

func badAppend(l *lstore) []int {
	sl := *l.p.Load()
	return append(sl, 1) // want `append\(\) to a slice reached from atomic.Pointer.Load`
}

type sink struct {
	alias counts
}

func badEscape(s *store, k *sink) {
	k.alias = *s.ptr.Load() // want `stores a map reached from atomic.Pointer.Load into a longer-lived structure`
}
