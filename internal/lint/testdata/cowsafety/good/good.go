// Conforming copy-on-write code: the verdict-cache idiom — load, clone,
// mutate the clone, store the clone — plus ordinary read-only access.
package a

import (
	"maps"
	"sync/atomic"
)

type counts = map[string]int

type store struct {
	ptr atomic.Pointer[counts]
}

// cloneThenStore is the sanctioned write path: maps.Clone is a function
// call, which launders the taint, so mutating the clone is fine.
func cloneThenStore(s *store) {
	old := s.ptr.Load()
	nm := maps.Clone(*old)
	nm["k"] = 1
	delete(nm, "gone")
	s.ptr.Store(&nm)
}

// readOnly may freely read through the loaded snapshot.
func readOnly(s *store) (int, int) {
	m := *s.ptr.Load()
	total := 0
	for _, v := range m {
		total += v
	}
	return m["k"], total
}

// freshMap mutates a map that never came from a Load.
func freshMap() counts {
	m := make(counts)
	m["k"] = 1
	return m
}

// rebuiltCopy appends into a nil slice, not the loaded backing array.
type ints = []int

type lstore struct {
	p atomic.Pointer[ints]
}

func rebuiltCopy(l *lstore) []int {
	var out []int
	out = append(out, (*l.p.Load())...)
	return out
}

// otherLoad: Load on a non-Pointer atomic is not copy-on-write state.
func otherLoad(n *atomic.Int64) int64 {
	return n.Load() + 1
}
