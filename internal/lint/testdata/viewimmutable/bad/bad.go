package a

// View is a generation-stamped read snapshot: frozen at commit.
//
//lint:immutable
type View struct {
	names []string
	stats map[string]int
	memo  *int
}

func (v *View) SetStat(k string, n int) {
	v.stats[k] = n // want `write to v\.stats\[k\] on immutable \*View receiver`
}

func (v *View) AddName(n string) {
	v.names = append(v.names, n) // want `v\.names`
}

func (v *View) Drop(k string) {
	delete(v.stats, k) // want `delete on v\.stats`
}

func (v *View) Bump() {
	*v.memo++ // want `increment of \*v\.memo`
}

func (v *View) WriteThroughAlias() {
	s := v.stats
	s["x"] = 1 // want `write to s\[`
}

func (v *View) Names() []string {
	return v.names // want `returns internal v\.names without a defensive copy`
}

func (v *View) Stats() map[string]int {
	return v.stats // want `returns internal v\.stats`
}

func (v *View) NamesTail() []string {
	return v.names[1:] // want `returns internal v\.names\[1:\]`
}

// Mutating in a closure does not launder the write.
func (v *View) DeferredWrite() {
	func() {
		v.stats["late"] = 1 // want `write to v\.stats`
	}()
}
