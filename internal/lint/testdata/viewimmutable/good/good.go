package a

import "sync"

// Snap is frozen at commit; memoized accessors use the repo's
// Once/mutex idiom, reads copy out defensively.
//
//lint:immutable
type Snap struct {
	once  sync.Once
	botMu sync.Mutex

	names   []string
	stats   map[string]int
	summary string
	bot     []string
}

func (s *Snap) Names() []string {
	return append([]string(nil), s.names...)
}

func (s *Snap) Stats() map[string]int {
	out := make(map[string]int, len(s.stats))
	for k, v := range s.stats {
		out[k] = v
	}
	return out
}

// Once-guarded memoization is the sanctioned write.
func (s *Snap) Summary() string {
	s.once.Do(func() {
		s.summary = "first: " + s.names[0]
	})
	return s.summary
}

// Mutex-guarded memoization: the lock dataflow proves s.botMu is held
// at the write.
func (s *Snap) Bottlenecks() []string {
	s.botMu.Lock()
	defer s.botMu.Unlock()
	if s.bot == nil {
		s.bot = append(s.bot, s.names...)
	}
	return append([]string(nil), s.bot...)
}

func (s *Snap) Count() int {
	return len(s.names)
}

// Unexported methods are build-phase helpers: not checked.
func (s *Snap) push(n string) {
	s.names = append(s.names, n)
}

// Shared is an interned table whose accessors deliberately share
// append-only internal arrays (the core.Graph contract).
//
//lint:immutable shared-returns
type Shared struct {
	hosts []string
	mu    sync.Mutex
	byID  map[int32]string
}

func (g *Shared) Hosts() []string {
	return g.hosts
}

func (g *Shared) Name(id int32) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.byID == nil {
		g.byID = map[int32]string{0: "root"}
	}
	return g.byID[id]
}
