// Conforming persistence: scratch paths are exempt, read-only opens are
// fine, and the real artifact path goes through internal/atomicio.
package a

import (
	"io"
	"os"
	"path/filepath"

	"dnstrust/internal/atomicio"
)

// saveAtomic is the sanctioned durable-write path.
func saveAtomic(path string, data []byte) error {
	_, err := atomicio.WriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	return err
}

// scratch writes under a temp directory: no durability contract.
func scratch(data []byte) error {
	tmp := filepath.Join(os.TempDir(), "scratch.bin")
	return os.WriteFile(tmp, data, 0o600)
}

// createTemp names its destination for what it is.
func createTemp(tmpPath string) (*os.File, error) {
	return os.Create(tmpPath)
}

// openRead has no O_CREATE: it cannot leave a partial file.
func openRead(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDONLY, 0)
}
