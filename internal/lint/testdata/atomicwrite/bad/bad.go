// Seeded durability violations: every call here can leave a partial
// artifact at a durable path if the process dies mid-write.
package a

import "os"

func saveBad(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile truncates in place`
}

func createBad(path string) (*os.File, error) {
	return os.Create(path) // want `os.Create truncates in place`
}

func renameBad(from, to string) error {
	return os.Rename(from, to) // want `bare os.Rename re-implements half of the atomic-write idiom`
}

func openBad(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // want `os.OpenFile with O_CREATE`
}
