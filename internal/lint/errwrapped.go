package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrWrapped guards the fail-closed typed-error contracts: PR 6's
// snapshot loader promises errors.Is(err, snapshot.ErrTruncated/
// ErrChecksum/...) through every wrapping layer, and the resolver/
// transport sentinels (ErrLameDelegation, ErrInjectedTimeout, ...) are
// matched the same way by retry logic and tests. Formatting an error
// operand with %v, %s, or %q in fmt.Errorf flattens it to text: the
// sentinel survives as prose but vanishes from the errors.Is/errors.As
// chain, so a fail-closed check silently stops matching. The analyzer
// reports every fmt.Errorf argument whose static type implements error
// and whose verb stringifies instead of wrapping with %w.
var ErrWrapped = &Analyzer{
	Name: "errwrapped",
	Doc:  "fmt.Errorf stringifies an error operand with %v/%s/%q instead of wrapping with %w, hiding it from errors.Is",
	Run:  runErrWrapped,
}

func runErrWrapped(pass *Pass) error {
	errorType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !pass.isPkgFunc(call, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			tv := pass.TypesInfo.Types[call.Args[0]]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			format := constant.StringVal(tv.Value)
			for _, v := range parseVerbs(format) {
				if v.verb != 'v' && v.verb != 's' && v.verb != 'q' {
					continue
				}
				argIdx := 1 + v.arg
				if argIdx < 1 || argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[argIdx]
				t := pass.TypesInfo.Types[arg].Type
				if t == nil || !types.Implements(t, errorType) {
					continue
				}
				pass.Reportf(arg.Pos(), "%%%c stringifies this error: it stays visible as text but disappears from errors.Is/errors.As; wrap it with %%w", v.verb)
			}
			return true
		})
	}
	return nil
}

// verb is one formatting directive: its verb character and the
// zero-based operand index it consumes.
type verb struct {
	verb byte
	arg  int
}

// parseVerbs extracts the directives of a fmt format string, tracking
// operand indices through flags, *-widths and precisions, and explicit
// [n] argument indexes. It is intentionally tolerant: anything it
// cannot follow precisely it skips rather than misattribute.
func parseVerbs(format string) []verb {
	var out []verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags.
		for i < len(format) {
			switch format[i] {
			case '+', '-', '#', ' ', '0':
				i++
				continue
			}
			break
		}
		consume := func() {
			// * reads its width/precision from the next operand.
			arg++
		}
		// Width.
		if i < len(format) && format[i] == '*' {
			consume()
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				consume()
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		// Explicit argument index: %[n]v.
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(format) {
			break
		}
		c := format[i]
		if c == '%' {
			continue // literal percent, consumes nothing
		}
		out = append(out, verb{verb: c, arg: arg})
		arg++
	}
	return out
}
