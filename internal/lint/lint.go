// Package lint is the project's static-analysis suite: a small,
// dependency-free analysis framework (the container image this repo
// builds in has no network, so golang.org/x/tools/go/analysis is not
// available; the API here mirrors its shape so analyzers could be
// ported verbatim if that dependency ever lands) plus nine analyzers
// that mechanically enforce invariants the earlier PRs established by
// convention:
//
//   - cowsafety: values reached from an atomic.Pointer Load are
//     copy-on-write — never mutated in place (internal/verdict,
//     internal/crawler, internal/topology).
//   - determinism: the replay-deterministic packages
//     (internal/transport, internal/delta, internal/snapshot) must not
//     read wall clocks, the global math/rand source, or emit output in
//     map iteration order.
//   - atomicwrite: persisted artifacts go through internal/atomicio
//     (tmp+fsync+rename), never bare os.WriteFile/os.Create/os.Rename.
//   - ctxflow: a function that receives a context.Context must not
//     sever it by passing context.Background()/context.TODO() onward.
//   - errwrapped: sentinel errors are wrapped with %w, not stringified
//     with %v/%s, so the fail-closed errors.Is checks keep working.
//
// The last four are flow-sensitive: they run over the intra-procedural
// CFG builder (BuildCFG) and worklist dataflow engine
// (ForwardFlow/BackwardFlow) in this package, so they reason about
// execution paths — every return, panic edge, and loop back edge —
// rather than syntax:
//
//   - locksafety: locks released on every exit path, no double-lock or
//     RLock/Unlock mismatch, no blocking calls under a shard lock, and
//     a consistent lock acquisition order.
//   - goroutineleak: every go statement's goroutine can reach its
//     function exit (a ctx/done/stop path), directly or through
//     same-package callees.
//   - hotpathalloc: //lint:hotpath functions stay free of fmt/log,
//     string concat/conversion, capturing closures, interface boxing,
//     map/slice literals, and go statements.
//   - viewimmutable: exported methods of //lint:immutable
//     generation-stamped read types never write receiver-reachable
//     memory (outside Once/mutex-guarded memoization, verified against
//     the locksafety dataflow) and return defensive copies.
//
// Findings are suppressed per line with
//
//	//lint:allow <analyzer>[,<analyzer>] <reason>
//
// where the reason is mandatory and non-empty; the framework itself
// reports malformed allow comments. cmd/dnslint is the multichecker
// driver; linttest runs analyzers against testdata with // want
// expectations, in the style of analysistest.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. Run inspects a single
// type-checked package through its Pass and reports findings via
// Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and
	// what a finding means.
	Doc string
	// Run performs the analysis. A returned error aborts the whole
	// lint run (it means the analyzer itself failed, not that the code
	// has findings).
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// objectOf resolves an identifier to its object via Uses or Defs.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// isPkgFunc reports whether the call's callee is the package-level
// function pkgPath.name (not a method, not a local shadow).
func (p *Pass) isPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.objectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// A Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Check runs the analyzers over one loaded package and returns the
// surviving diagnostics: //lint:allow suppressions are applied, and
// malformed allow comments (no reason, unknown analyzer) are themselves
// reported under the pseudo-analyzer "lint". The result is sorted by
// position.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = suppress(pkg, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}
