package lint

import (
	"reflect"
	"testing"
)

// TestParseVerbs pins the operand-index bookkeeping of the errwrapped
// format scanner: flags, widths, *-operands, %%, and explicit [n]
// indexes all shift (or pin) which argument a verb consumes.
func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verb
	}{
		{"", nil},
		{"plain text", nil},
		{"%v", []verb{{'v', 0}}},
		{"%s=%d", []verb{{'s', 0}, {'d', 1}}},
		{"%w: %v", []verb{{'w', 0}, {'v', 1}}},
		{"100%% done: %v", []verb{{'v', 0}}},
		{"%+v %#x %-8s", []verb{{'v', 0}, {'x', 1}, {'s', 2}}},
		{"%6.2f %v", []verb{{'f', 0}, {'v', 1}}},
		{"%*d %v", []verb{{'d', 1}, {'v', 2}}},   // * consumes the width operand
		{"%.*f %v", []verb{{'f', 1}, {'v', 2}}},  // * consumes the precision operand
		{"%[2]v %v", []verb{{'v', 1}, {'v', 2}}}, // explicit index, then sequential
		{"%[1]v + %[1]v", []verb{{'v', 0}, {'v', 0}}},
		{"%q trailing %", []verb{{'q', 0}}},
	}
	for _, tc := range cases {
		got := parseVerbs(tc.format)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", tc.format, got, tc.want)
		}
	}
}
