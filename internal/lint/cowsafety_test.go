package lint_test

import (
	"testing"

	"dnstrust/internal/lint"
	"dnstrust/internal/lint/linttest"
)

func TestCowSafetySeededViolations(t *testing.T) {
	linttest.Run(t, lint.CowSafety, "testdata/cowsafety/bad")
}

func TestCowSafetyConformingCode(t *testing.T) {
	linttest.Run(t, lint.CowSafety, "testdata/cowsafety/good")
}
