package lint_test

import (
	"testing"

	"dnstrust/internal/lint"
)

// TestRepositoryIsLintClean is the dogfood gate: the entire module must
// pass its own analyzer suite (real findings were fixed, deliberate
// exceptions carry reasoned //lint:allow comments). It is the same
// check CI runs as `go run ./cmd/dnslint ./...`, exercised here so
// `go test ./internal/lint/...` proves it without network access —
// dependency resolution reads build-cache export data only.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles every package in the module; skipped in -short")
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from %s; pattern ./... should cover the whole module", len(pkgs), root)
	}
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg, lint.All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
