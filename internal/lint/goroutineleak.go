package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLeak demands that every `go` statement starts a goroutine
// that can terminate: from the spawned function's entry, the CFG exit
// must be reachable from every reachable point. A goroutine parked in
// `for { select { case <-ctx.Done(): return; ... } }` passes (the
// Done case reaches exit); `for range time.Tick(d)` and bare `for {}`
// loops fail — they are black holes that outlive every generation
// commit of a long-running daemon. Ranging over a channel normally has
// a structural exit (the channel closes), but channels that provably
// never close — time.Tick results and time.Ticker.C — do not, so a
// ticker range needs a break/return inside the body or a select on a
// stop channel.
//
// The check follows `go` calls to function literals and to same-package
// named functions (transitively: a goroutine that calls a diverging
// helper diverges too). Goroutines handed functions from other
// packages or through function values are not analyzable here and are
// skipped. A goroutine that is *meant* to live for the whole process
// carries a reasoned //lint:allow goroutineleak.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc: "every go statement must be able to terminate: a ctx/done/stop exit " +
		"reachable on all paths, no for-range over never-closing channels",
	Run: runGoroutineLeak,
}

type leakResult struct {
	diverges bool
	pos      token.Pos // representative divergence point
	why      string
}

type leakChecker struct {
	pass       *Pass
	declOf     map[*types.Func]*ast.FuncDecl
	memo       map[*ast.BlockStmt]leakResult
	inProgress map[*ast.BlockStmt]bool
}

func runGoroutineLeak(pass *Pass) error {
	lc := &leakChecker{
		pass:       pass,
		declOf:     make(map[*types.Func]*ast.FuncDecl),
		memo:       make(map[*ast.BlockStmt]leakResult),
		inProgress: make(map[*ast.BlockStmt]bool),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					lc.declOf[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := lc.resolve(gs.Call)
			if body == nil {
				return true
			}
			if res := lc.analyze(body); res.diverges {
				pass.Reportf(gs.Pos(),
					"goroutine can never terminate: %s at %s is unable to reach the function's exit; give it a ctx/done/stop path",
					res.why, pass.Fset.Position(res.pos))
			}
			return true
		})
	}
	return nil
}

// resolve finds the body the go statement runs: a literal, or a
// same-package named function.
func (lc *leakChecker) resolve(call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := lc.pass.objectOf(fun).(*types.Func); ok {
			if fd := lc.declOf[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := lc.pass.objectOf(fun.Sel).(*types.Func); ok {
			if fd := lc.declOf[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

func (lc *leakChecker) analyze(body *ast.BlockStmt) leakResult {
	if res, ok := lc.memo[body]; ok {
		return res
	}
	if lc.inProgress[body] {
		// Recursive cycle: assume termination rather than looping; a
		// divergence inside the cycle still surfaces at its own blocks.
		return leakResult{}
	}
	lc.inProgress[body] = true
	defer delete(lc.inProgress, body)

	g := BuildCFG(body)

	// Sever the structural exit edge of ranges over never-closing
	// channels: their loops only terminate via an explicit break or
	// return in the body.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			r, ok := n.(*ast.RangeStmt)
			if !ok || !lc.neverCloses(r.X) {
				continue
			}
			if join := g.RangeExit[r]; join != nil {
				removeEdge(b, join)
			}
		}
	}

	reach := g.Reachable()
	canExit := make(map[*Block]bool)
	var walkBack func(*Block)
	walkBack = func(b *Block) {
		if canExit[b] {
			return
		}
		canExit[b] = true
		for _, p := range b.Preds {
			walkBack(p)
		}
	}
	walkBack(g.Exit)

	res := leakResult{}
	for _, b := range g.Blocks {
		if !reach[b] || canExit[b] {
			continue
		}
		// Blocks are in creation order; the first hit is representative.
		res = leakResult{diverges: true, pos: blockPos(body, b), why: "this point"}
		break
	}

	// A structurally sound function still diverges if some reachable
	// statement calls a same-package function that diverges.
	if !res.diverges {
		for _, b := range g.Blocks {
			if !reach[b] || res.diverges {
				continue
			}
			for _, n := range b.Nodes {
				for _, part := range shallowParts(n) {
					ast.Inspect(part, func(n ast.Node) bool {
						if res.diverges {
							return false
						}
						switch n := n.(type) {
						case *ast.FuncLit:
							return false
						case *ast.GoStmt:
							return false // separate goroutine, reported at its own go stmt
						case *ast.CallExpr:
							if callee := lc.calleeBody(n); callee != nil {
								if sub := lc.analyze(callee); sub.diverges {
									res = leakResult{diverges: true, pos: n.Pos(), why: "the called function"}
									return false
								}
							}
						}
						return true
					})
				}
			}
		}
	}

	lc.memo[body] = res
	return res
}

func (lc *leakChecker) calleeBody(call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := lc.pass.objectOf(fun).(*types.Func); ok {
			return lc.declBody(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := lc.pass.objectOf(fun.Sel).(*types.Func); ok {
			return lc.declBody(fn)
		}
	}
	return nil
}

func (lc *leakChecker) declBody(fn *types.Func) *ast.BlockStmt {
	if fd := lc.declOf[fn]; fd != nil {
		return fd.Body
	}
	return nil
}

// neverCloses reports whether a ranged channel expression provably
// never closes: the result of time.Tick, or the C field of a
// time.Ticker (Ticker.Stop does not close C).
func (lc *leakChecker) neverCloses(x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.CallExpr:
		return lc.pass.isPkgFunc(x, "time", "Tick")
	case *ast.SelectorExpr:
		if x.Sel.Name != "C" {
			return false
		}
		tv, ok := lc.pass.TypesInfo.Types[x.X]
		if !ok {
			return false
		}
		named := namedOf(tv.Type)
		return named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Ticker"
	}
	return false
}

func removeEdge(from, to *Block) {
	for i, s := range from.Succs {
		if s == to {
			from.Succs = append(from.Succs[:i], from.Succs[i+1:]...)
			break
		}
	}
	for i, p := range to.Preds {
		if p == from {
			to.Preds = append(to.Preds[:i], to.Preds[i+1:]...)
			break
		}
	}
}

// blockPos picks a position representing a block: its first node, or
// the body's closing brace for synthetic blocks.
func blockPos(body *ast.BlockStmt, b *Block) token.Pos {
	if len(b.Nodes) > 0 {
		return b.Nodes[0].Pos()
	}
	return body.Rbrace
}
