package lint_test

import (
	"testing"

	"dnstrust/internal/lint"
	"dnstrust/internal/lint/linttest"
)

func TestHotPathAllocSeededViolations(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "testdata/hotpathalloc/bad")
}

func TestHotPathAllocConformingCode(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "testdata/hotpathalloc/good")
}
