package lint_test

import (
	"testing"

	"dnstrust/internal/lint"
	"dnstrust/internal/lint/linttest"
)

func TestGoroutineLeakSeededViolations(t *testing.T) {
	linttest.Run(t, lint.GoroutineLeak, "testdata/goroutineleak/bad")
}

func TestGoroutineLeakConformingCode(t *testing.T) {
	linttest.Run(t, lint.GoroutineLeak, "testdata/goroutineleak/good")
}
