package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CowSafety enforces the copy-on-write discipline around
// atomic.Pointer: a map, slice, or struct reached from a Load() is a
// published snapshot shared with lock-free readers, so mutating it in
// place is a data race even when the mutation itself happens under the
// writer's lock (readers hold no lock). The only legal write path is
// clone → mutate the clone → Store. This is the invariant the verdict
// cache (internal/verdict) and the epoch-store views (internal/crawler,
// internal/topology) are built on.
//
// The analyzer taints every value derived from an
// (*atomic.Pointer[T]).Load() call — through assignments, dereferences,
// field and index selections, and range statements — and reports:
//
//   - index assignment or delete() on a tainted map or slice
//   - field or pointer-dereference assignment through a tainted value
//   - append() whose destination is tainted (may write the shared
//     backing array in place)
//   - storing a tainted map or slice into a field, element, or
//     package-level variable (a mutable alias that outlives the
//     function, hiding later mutation from this analysis)
//
// Passing a tainted value through any other function call (maps.Clone,
// slices.Clone, len, a constructor) launders the taint: clones are the
// sanctioned way to mutate.
var CowSafety = &Analyzer{
	Name: "cowsafety",
	Doc:  "mutation of a map/slice/struct reached from atomic.Pointer.Load (copy-on-write: clone, mutate the clone, Store the clone)",
	Run:  runCowSafety,
}

func runCowSafety(pass *Pass) error {
	for _, file := range pass.Files {
		c := &cowChecker{pass: pass, tainted: make(map[types.Object]bool)}
		c.propagate(file)
		c.report(file)
	}
	return nil
}

type cowChecker struct {
	pass    *Pass
	tainted map[types.Object]bool
}

// isAtomicPointerLoad reports whether e is a call to Load on a
// sync/atomic.Pointer[T] (directly or via an addressable field).
func (c *cowChecker) isAtomicPointerLoad(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	t := c.pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// rooted reports whether e reaches a Load() result without passing
// through another function call: the expression itself is a Load, or it
// dereferences/selects/indexes/slices a tainted identifier.
func (c *cowChecker) rooted(e ast.Expr) bool {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.CallExpr:
			return c.isAtomicPointerLoad(x)
		case *ast.Ident:
			obj := c.pass.objectOf(x)
			return obj != nil && c.tainted[obj]
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return false
		}
	}
}

// propagate computes the tainted identifier set to a fixpoint over the
// file's assignments, declarations, and range statements.
func (c *cowChecker) propagate(file *ast.File) {
	taintIdent := func(e ast.Expr, changed *bool) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := c.pass.objectOf(id)
		if obj != nil && !c.tainted[obj] {
			c.tainted[obj] = true
			*changed = true
		}
	}
	for {
		changed := false
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, rhs := range st.Rhs {
					if c.rooted(rhs) {
						taintIdent(st.Lhs[i], &changed)
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) != len(st.Values) {
					return true
				}
				for i, rhs := range st.Values {
					if c.rooted(rhs) {
						taintIdent(st.Names[i], &changed)
					}
				}
			case *ast.RangeStmt:
				// Keys are fresh copies of comparable values; the
				// aliasing risk is the element (a pointer or nested
				// map/slice into the published structure).
				if st.Value != nil && c.rooted(st.X) {
					taintIdent(st.Value, &changed)
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// mutable reports whether t's underlying type is a map or slice — the
// types whose element writes alias the published snapshot.
func mutable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

func (c *cowChecker) exprType(e ast.Expr) types.Type {
	return c.pass.TypesInfo.Types[e].Type
}

// report walks the file flagging in-place mutations of tainted values.
func (c *cowChecker) report(file *ast.File) {
	pass := c.pass
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr:
					if c.rooted(l.X) && mutable(c.exprType(l.X)) {
						pass.Reportf(l.Pos(), "writes element of a %s reached from atomic.Pointer.Load; clone it (maps.Clone/slices.Clone), mutate the clone, then Store", kindOf(c.exprType(l.X)))
					}
				case *ast.SelectorExpr:
					if c.rooted(l.X) {
						pass.Reportf(l.Pos(), "writes field %s of a value reached from atomic.Pointer.Load; published snapshots are read-only — build a new value and Store it", l.Sel.Name)
					}
				case *ast.StarExpr:
					if c.rooted(l.X) {
						pass.Reportf(l.Pos(), "writes through a pointer reached from atomic.Pointer.Load; published snapshots are read-only — build a new value and Store it")
					}
				}
			}
			// Aliasing escape: a tainted map/slice stored somewhere that
			// outlives the local frame.
			if len(st.Lhs) == len(st.Rhs) {
				for i, rhs := range st.Rhs {
					if !c.rooted(rhs) || !mutable(c.exprType(rhs)) {
						continue
					}
					switch l := ast.Unparen(st.Lhs[i]).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						pass.Reportf(st.Lhs[i].Pos(), "stores a %s reached from atomic.Pointer.Load into a longer-lived structure; the alias hides later in-place mutation — store a clone", kindOf(c.exprType(rhs)))
					case *ast.Ident:
						if obj := c.pass.objectOf(l); obj != nil && obj.Parent() == pass.Pkg.Scope() {
							pass.Reportf(st.Lhs[i].Pos(), "stores a %s reached from atomic.Pointer.Load into package-level variable %s; the alias hides later in-place mutation — store a clone", kindOf(c.exprType(rhs)), l.Name)
						}
					}
				}
			}
		case *ast.IncDecStmt:
			switch l := ast.Unparen(st.X).(type) {
			case *ast.IndexExpr:
				if c.rooted(l.X) && mutable(c.exprType(l.X)) {
					pass.Reportf(st.Pos(), "increments element of a %s reached from atomic.Pointer.Load; clone before mutating", kindOf(c.exprType(l.X)))
				}
			case *ast.SelectorExpr:
				if c.rooted(l.X) {
					pass.Reportf(st.Pos(), "increments field %s of a value reached from atomic.Pointer.Load; published snapshots are read-only", l.Sel.Name)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && len(st.Args) > 0 {
				if b, ok := c.pass.objectOf(id).(*types.Builtin); ok {
					switch b.Name() {
					case "delete":
						if c.rooted(st.Args[0]) {
							pass.Reportf(st.Pos(), "delete() on a map reached from atomic.Pointer.Load; clone it, delete from the clone, then Store")
						}
					case "append":
						if c.rooted(st.Args[0]) {
							pass.Reportf(st.Pos(), "append() to a slice reached from atomic.Pointer.Load may write its shared backing array; append to a clone (or to a nil slice) instead")
						}
					case "clear":
						if c.rooted(st.Args[0]) {
							pass.Reportf(st.Pos(), "clear() on a value reached from atomic.Pointer.Load; clone it instead")
						}
					}
				}
			}
		}
		return true
	})
}

func kindOf(t types.Type) string {
	if t == nil {
		return "value"
	}
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return "value"
}
