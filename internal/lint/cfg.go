package lint

// Intra-procedural control-flow graphs for the flow-sensitive analyzers
// (locksafety, goroutineleak, viewimmutable). The builder is pure
// go/ast — no type information — so it can be exercised on parsed
// snippets in tests; analyzers layer go/types on top when they walk
// block nodes.
//
// Granularity: a Block holds the statements (and branch-condition
// expressions) that execute unconditionally once the block is entered.
// Compound statements are never stored whole; instead the block
// receives their "head" parts:
//
//   - if/for:        the condition expression
//   - switch:        the tag expression
//   - type switch:   the assign statement
//   - range:         the *ast.RangeStmt itself (X, Key, Value matter;
//     the body is in successor blocks — analyzers must treat the node
//     shallowly, see shallowParts)
//   - select:        the *ast.SelectStmt itself (shallow: its presence
//     marks a potential blocking point; each comm statement is the
//     first node of its clause's block and is recorded in
//     CFG.SelectComm so analyzers can tell it apart from a bare
//     channel operation)
//
// defer and go statements are ordinary nodes: they do not alter
// intra-procedural control flow (defers run at function exit whatever
// path is taken; analyzers that care — locksafety — interpret them
// semantically). Function literals are opaque: control never flows
// into them at the point of creation.
//
// Calls that provably never return (panic, os.Exit, log.Fatal*,
// log.Panic*, runtime.Goexit) terminate their block with an edge
// straight to Exit, which is what lets locksafety demand "Unlock on
// all exit paths *including panics* unless deferred" and lets
// goroutineleak treat a guaranteed os.Exit as termination.

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// A Block is a basic block: nodes execute in order, then control moves
// to one of Succs. A block with no successors that is not the Exit
// block diverges (e.g. `select {}` or a call chain into panic-free
// infinite loops keeps no such block; an empty Succs means "control
// never leaves").
type Block struct {
	Index int
	Kind  string // entry, exit, body, if.then, for.head, select.case, ...
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// A CFG is the control-flow graph of one function body. Entry and Exit
// are synthetic: Entry has no nodes and one successor; every return
// path (explicit return, fall off the end, no-return call) has an edge
// to Exit.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block // in creation order; Blocks[0] == Entry, Blocks[1] == Exit

	// SelectComm marks statements that appear as the communication
	// clause of a select case. Channel operations inside them never
	// block on their own — the select head is the blocking point (and
	// a select with a default clause does not block at all).
	SelectComm map[ast.Stmt]bool

	// RangeExit maps a range statement to the block control reaches
	// when the range terminates structurally (iterator exhausted /
	// channel closed). Analyzers that know a ranged channel never
	// closes (time.Tick) can treat that edge as dead.
	RangeExit map[*ast.RangeStmt]*Block
}

// BuildCFG constructs the CFG of one function body. It accepts the
// *ast.BlockStmt of a FuncDecl or FuncLit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg: &CFG{
			SelectComm: make(map[ast.Stmt]bool),
			RangeExit:  make(map[*ast.RangeStmt]*Block),
		},
		labels: make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	first := b.newBlock("body")
	b.link(b.cfg.Entry, first)
	b.cur = first
	b.stmts(body.List)
	b.jump(b.cfg.Exit) // falling off the end reaches Exit
	return b.cfg
}

type loopCtx struct {
	label    string
	brk      *Block // break target (loop/switch/select join)
	cont     *Block // continue target (loop head or post), nil for switch/select
	fallthru *Block // next case body inside a switch, nil elsewhere
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil when the current point is unreachable
	stack  []loopCtx
	labels map[string]*Block // goto / labeled-statement targets
	pend   string            // label awaiting its loop/switch/select statement
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, materializing a dead block
// for statements that follow a terminator (so their nodes still exist
// for position lookups, while staying unreachable from Entry).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump wires the current block to target and leaves the current point
// unreachable; a no-op when the current point already is.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.link(b.cur, target)
	}
	b.cur = nil
}

// moveTo is jump followed by continuing construction inside target.
func (b *cfgBuilder) moveTo(target *Block) {
	b.jump(target)
	b.cur = target
}

// takeLabel consumes the pending label set by a LabeledStmt wrapping
// this loop/switch/select.
func (b *cfgBuilder) takeLabel() string {
	l := b.pend
	b.pend = ""
	return l
}

// findCtx locates the loop/switch context a break or continue targets.
func (b *cfgBuilder) findCtx(label string, needCont bool) *loopCtx {
	for i := len(b.stack) - 1; i >= 0; i-- {
		c := &b.stack[i]
		if needCont && c.cont == nil {
			continue // break-only contexts (switch/select) are invisible to continue
		}
		if label == "" || c.label == label {
			return c
		}
	}
	return nil
}

// labelBlock returns (creating on demand) the block a label names, for
// goto and labeled statements.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.moveTo(lb)
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pend = s.Label.Name
		}
		b.stmt(s.Stmt)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ExprStmt:
		b.add(s)
		if callNeverReturns(s.X) {
			b.jump(b.cfg.Exit)
		}

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, s)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	default:
		// Assign, Decl, Send, IncDec, Defer, Go, Empty: plain nodes.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		if c := b.findCtx(label, false); c != nil {
			b.add(s)
			b.jump(c.brk)
		}
	case "continue":
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		if c := b.findCtx(label, true); c != nil {
			b.add(s)
			b.jump(c.cont)
		}
	case "goto":
		b.add(s)
		b.jump(b.labelBlock(s.Label.Name))
	case "fallthrough":
		if c := b.findCtx("", false); c != nil && c.fallthru != nil {
			b.jump(c.fallthru)
		}
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	if head == nil {
		head = b.newBlock("dead")
		b.cur = head
	}
	join := b.newBlock("if.join")

	then := b.newBlock("if.then")
	b.link(head, then)
	b.cur = then
	b.stmt(s.Body)
	b.jump(join)

	if s.Else != nil {
		els := b.newBlock("if.else")
		b.link(head, els)
		b.cur = els
		b.stmt(s.Else)
		b.jump(join)
	} else {
		b.link(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.moveTo(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	join := b.newBlock("for.join")
	body := b.newBlock("for.body")
	b.link(head, body)
	if s.Cond != nil {
		b.link(head, join) // `for {}` has no structural exit
	}

	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}
	b.stack = append(b.stack, loopCtx{label: label, brk: join, cont: cont})
	b.cur = body
	b.stmt(s.Body)
	b.jump(cont)
	b.stack = b.stack[:len(b.stack)-1]

	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.jump(head)
	}
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	b.moveTo(head)
	b.add(s) // shallow: X/Key/Value; body lives in successor blocks
	join := b.newBlock("range.join")
	body := b.newBlock("range.body")
	b.link(head, body)
	b.link(head, join) // iterator exhausted / channel closed
	b.cfg.RangeExit[s] = join

	b.stack = append(b.stack, loopCtx{label: label, brk: join, cont: head})
	b.cur = body
	b.stmt(s.Body)
	b.jump(head)
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = join
}

// switchStmt handles both expression and type switches: exactly one of
// tag (expression switch) and assign (type switch) is non-nil.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, _ ast.Stmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock("dead")
		b.cur = head
	}
	join := b.newBlock("switch.join")

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		clauses = append(clauses, cs.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		bodies[i] = b.newBlock("case")
		b.link(head, bodies[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(head, join) // no case matches
	}

	for i, cc := range clauses {
		var next *Block
		if i+1 < len(bodies) {
			next = bodies[i+1]
		}
		b.stack = append(b.stack, loopCtx{label: label, brk: join, fallthru: next})
		b.cur = bodies[i]
		b.stmts(cc.Body)
		b.jump(join)
		b.stack = b.stack[:len(b.stack)-1]
	}
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	b.add(s) // shallow: marks the (potential) blocking point
	head := b.cur
	join := b.newBlock("select.join")

	if len(s.Body.List) == 0 {
		// select {} blocks forever: no successors.
		b.cur = join // unreachable from entry; kept for symmetry
		return
	}
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		blk := b.newBlock("select.case")
		b.link(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.cfg.SelectComm[cc.Comm] = true
			b.stmt(cc.Comm)
		}
		b.stack = append(b.stack, loopCtx{label: label, brk: join})
		b.stmts(cc.Body)
		b.jump(join)
		b.stack = b.stack[:len(b.stack)-1]
	}
	b.cur = join
}

// callNeverReturns reports whether expr is a call that terminates the
// goroutine or process: panic, os.Exit, runtime.Goexit, log.Fatal*,
// log.Panic*. Matching is syntactic (the builder has no types); local
// shadows of those names would be misread, which the codebase does not
// do and the fixture suites pin.
func callNeverReturns(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit",
			"log.Fatal", "log.Fatalf", "log.Fatalln",
			"log.Panic", "log.Panicf", "log.Panicln":
			return true
		}
	}
	return false
}

// shallowParts returns the sub-nodes of a block node that belong to the
// block itself, excluding any sub-statements that live in successor
// blocks. Analyzers iterate block nodes through this helper so compound
// heads (range, select) are not walked twice.
func shallowParts(n ast.Node) []ast.Node {
	switch n := n.(type) {
	case *ast.RangeStmt:
		parts := []ast.Node{n.X}
		if n.Key != nil {
			parts = append(parts, n.Key)
		}
		if n.Value != nil {
			parts = append(parts, n.Value)
		}
		return parts
	case *ast.SelectStmt:
		return nil // the node itself is the signal; comms live in clause blocks
	default:
		return []ast.Node{n}
	}
}

// Reachable returns the set of blocks reachable from g.Entry.
func (g *CFG) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// String renders the CFG compactly for tests and debugging:
//
//	0 entry -> 2
//	1 exit
//	2 body [assign, if-cond] -> 3 4
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%d %s", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			var kinds []string
			for _, n := range blk.Nodes {
				kinds = append(kinds, nodeKind(n))
			}
			fmt.Fprintf(&sb, " [%s]", strings.Join(kinds, " "))
		}
		if len(blk.Succs) > 0 {
			idx := make([]int, len(blk.Succs))
			for i, s := range blk.Succs {
				idx[i] = s.Index
			}
			sort.Ints(idx)
			sb.WriteString(" ->")
			for _, i := range idx {
				fmt.Fprintf(&sb, " %d", i)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func nodeKind(n ast.Node) string {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return "assign"
	case *ast.DeclStmt:
		return "decl"
	case *ast.ExprStmt:
		return "expr"
	case *ast.SendStmt:
		return "send"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.DeferStmt:
		return "defer"
	case *ast.GoStmt:
		return "go"
	case *ast.ReturnStmt:
		return "return"
	case *ast.BranchStmt:
		return n.Tok.String()
	case *ast.RangeStmt:
		return "range"
	case *ast.SelectStmt:
		return "select"
	case ast.Expr:
		return "cond"
	default:
		return fmt.Sprintf("%T", n)
	}
}
