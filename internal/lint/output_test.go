package lint_test

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"dnstrust/internal/lint"
)

func outputDiags(root string) []lint.Diagnostic {
	return []lint.Diagnostic{
		{
			Analyzer: "locksafety",
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "x", "y.go"), Line: 12, Column: 3},
			Message:  "lock s.mu acquired at y.go:10 is not released on this return path",
		},
		{
			Analyzer: "hotpathalloc",
			Pos:      token.Position{Filename: filepath.Join(root, "cmd", "d", "main.go"), Line: 7, Column: 1},
			Message:  "hotpath Lookup calls fmt.Sprintf (formats and allocates): 100% avoidable,\nsee README",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	root := filepath.FromSlash("/work/mod")
	var sb strings.Builder
	if err := lint.WriteJSON(&sb, root, outputDiags(root)); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d findings, want 2", len(got))
	}
	if got[0].File != "internal/x/y.go" || got[0].Line != 12 || got[0].Col != 3 || got[0].Analyzer != "locksafety" {
		t.Errorf("first finding = %+v, want repo-relative slash path internal/x/y.go:12:3 (locksafety)", got[0])
	}
	if !strings.Contains(got[1].Message, "\n") {
		t.Errorf("JSON must carry the message verbatim (newline included): %q", got[1].Message)
	}
}

func TestWriteJSONEmptyIsAnArray(t *testing.T) {
	var sb strings.Builder
	if err := lint.WriteJSON(&sb, "", nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("clean tree must serialize as [], got %q", sb.String())
	}
}

func TestWriteGitHub(t *testing.T) {
	root := filepath.FromSlash("/work/mod")
	var sb strings.Builder
	if err := lint.WriteGitHub(&sb, root, outputDiags(root)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (escaped newlines must not split a command):\n%s", len(lines), sb.String())
	}
	// The message is command data, not a property: colons stay literal.
	want0 := "::error file=internal/x/y.go,line=12,col=3,title=dnslint/locksafety::" +
		"lock s.mu acquired at y.go:10 is not released on this return path"
	if lines[0] != want0 {
		t.Errorf("line 1 = %q\nwant     %q", lines[0], want0)
	}
	if !strings.Contains(lines[1], "%25 avoidable,%0Asee README") {
		t.Errorf("message data must escape %% and newline: %q", lines[1])
	}
	if !strings.HasPrefix(lines[1], "::error file=cmd/d/main.go,line=7,col=1,title=dnslint/hotpathalloc::") {
		t.Errorf("line 2 header = %q", lines[1])
	}
}

func TestWriteGitHubPathOutsideRoot(t *testing.T) {
	var sb strings.Builder
	d := []lint.Diagnostic{{
		Analyzer: "determinism",
		Pos:      token.Position{Filename: filepath.FromSlash("/elsewhere/z.go"), Line: 1, Column: 1},
		Message:  "m",
	}}
	if err := lint.WriteGitHub(&sb, filepath.FromSlash("/work/mod"), d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "file=/elsewhere/z.go,") {
		t.Errorf("path outside the module root must pass through unchanged: %q", sb.String())
	}
}
