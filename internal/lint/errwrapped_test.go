package lint_test

import (
	"testing"

	"dnstrust/internal/lint"
	"dnstrust/internal/lint/linttest"
)

func TestErrWrappedSeededViolations(t *testing.T) {
	linttest.Run(t, lint.ErrWrapped, "testdata/errwrapped/bad")
}

func TestErrWrappedConformingCode(t *testing.T) {
	linttest.Run(t, lint.ErrWrapped, "testdata/errwrapped/good")
}
