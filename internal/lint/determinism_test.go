package lint_test

import (
	"testing"

	"dnstrust/internal/lint"
	"dnstrust/internal/lint/linttest"
)

func TestDeterminismSeededViolations(t *testing.T) {
	linttest.Run(t, lint.Determinism, "testdata/determinism/bad",
		linttest.AsPackage("dnstrust/internal/transport"))
}

func TestDeterminismConformingCode(t *testing.T) {
	linttest.Run(t, lint.Determinism, "testdata/determinism/good",
		linttest.AsPackage("dnstrust/internal/transport"))
}

// TestDeterminismOutOfScope proves the analyzer is package-scoped: the
// same wall-clock and global-rand constructs are fine outside the
// replay-deterministic packages.
func TestDeterminismOutOfScope(t *testing.T) {
	linttest.Run(t, lint.Determinism, "testdata/determinism/outofscope")
}
