package lint

import (
	"go/token"
	"strconv"
	"strings"
)

// allowPrefix introduces a suppression comment:
//
//	//lint:allow cowsafety reason for why this mutation is safe
//	//lint:allow determinism,ctxflow shared reason
//
// The analyzer list is comma-separated with no spaces; everything after
// it is the mandatory reason. A suppression covers findings on its own
// line (trailing comment) and on the line directly below it (the
// comment standing alone above the flagged statement).
const allowPrefix = "lint:allow"

// allowSite is one parsed //lint:allow comment.
type allowSite struct {
	file      string
	line      int
	analyzers []string
}

// suppress applies //lint:allow comments to diags and appends
// diagnostics for malformed allow comments (missing reason, unknown
// analyzer name). Malformed comments never suppress anything.
func suppress(pkg *Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	// An allow comment may name any analyzer in the suite, not only the
	// ones selected for this run (a dnslint -only invocation must not
	// misreport the other analyzers' allows as unknown).
	known := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// allowed[file][line] -> set of analyzer names suppressed there.
	allowed := make(map[string]map[int]map[string]bool)
	mark := func(file string, line int, name string) {
		if allowed[file] == nil {
			allowed[file] = make(map[int]map[string]bool)
		}
		if allowed[file][line] == nil {
			allowed[file][line] = make(map[string]bool)
		}
		allowed[file][line][name] = true
	}

	var malformed []Diagnostic
	bad := func(pos token.Position, msg string) {
		malformed = append(malformed, Diagnostic{Analyzer: "lint", Pos: pos, Message: msg})
	}

	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				names, reason, _ := strings.Cut(rest, " ")
				if names == "" {
					bad(pos, "lint:allow without an analyzer name")
					continue
				}
				if strings.TrimSpace(reason) == "" {
					bad(pos, "lint:allow needs a non-empty reason after the analyzer list")
					continue
				}
				ok := true
				for _, name := range strings.Split(names, ",") {
					if !known[name] {
						bad(pos, "lint:allow names unknown analyzer "+strconv.Quote(name))
						ok = false
					}
				}
				if !ok {
					continue
				}
				for _, name := range strings.Split(names, ",") {
					// The comment's own line, and the next line when the
					// comment stands alone above the flagged statement.
					mark(pos.Filename, pos.Line, name)
					mark(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if allowed[d.Pos.Filename][d.Pos.Line][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, malformed...)
}
