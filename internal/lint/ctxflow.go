package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow protects the cancellation paths built in PRs 3 and 7
// (mid-crawl cancellation, dnsserver.Shutdown's deadline-slam drain,
// the proxy's SIGTERM sequence): a function that accepts a
// context.Context and then hands context.Background() or context.TODO()
// to a callee has silently cut its caller out of the cancellation tree —
// the operation keeps running after the caller gave up.
//
// Only the statements of the ctx-taking function itself are checked;
// nested function literals are analyzed on their own (a background
// goroutine that deliberately outlives the request builds its lifecycle
// context in a function that does not take one, which this analyzer
// correctly ignores). Deliberate detachment in a ctx-taking function is
// declared with //lint:allow ctxflow and the lifecycle reason.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "function receives a context.Context but passes context.Background()/TODO() onward, severing cancellation",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && hasCtxParam(pass, fn.Type) {
					checkCtxBody(pass, fn.Name.Name, fn.Body)
				}
			case *ast.FuncLit:
				if hasCtxParam(pass, fn.Type) {
					checkCtxBody(pass, "function literal", fn.Body)
				}
			}
			return true
		})
	}
	return nil
}

// hasCtxParam reports whether the function type declares a parameter of
// type context.Context.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pass.TypesInfo.Types[field.Type].Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxBody flags calls in body (excluding nested function literals)
// that pass a fresh Background/TODO context as an argument.
func checkCtxBody(pass *Pass, fname string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed independently; see Doc
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			argCall, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			var which string
			switch {
			case pass.isPkgFunc(argCall, "context", "Background"):
				which = "context.Background()"
			case pass.isPkgFunc(argCall, "context", "TODO"):
				which = "context.TODO()"
			default:
				continue
			}
			pass.Reportf(arg.Pos(), "%s receives a context.Context but passes %s to %s; thread the ctx so cancellation propagates (or //lint:allow ctxflow with the lifecycle reason)", fname, which, calleeName(call))
		}
		return true
	})
}

// calleeName renders the called function for the message, best-effort.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "the callee"
}
