package lint_test

import (
	"testing"

	"dnstrust/internal/lint"
	"dnstrust/internal/lint/linttest"
)

func TestCtxFlowSeededViolations(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "testdata/ctxflow/bad")
}

func TestCtxFlowConformingCode(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "testdata/ctxflow/good")
}
