package lint_test

import (
	"testing"

	"dnstrust/internal/lint"
	"dnstrust/internal/lint/linttest"
)

func TestLockSafetySeededViolations(t *testing.T) {
	linttest.Run(t, lint.LockSafety, "testdata/locksafety/bad")
}

func TestLockSafetyConformingCode(t *testing.T) {
	linttest.Run(t, lint.LockSafety, "testdata/locksafety/good")
}
