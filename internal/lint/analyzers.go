package lint

// All returns the project's analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicWrite,
		CowSafety,
		CtxFlow,
		Determinism,
		ErrWrapped,
	}
}
