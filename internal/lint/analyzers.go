package lint

// All returns the project's analyzer suite in stable order. The first
// five are the statement-level analyzers from PR 8; the last four ride
// the CFG/dataflow engine (PR 9) and are flow-sensitive.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicWrite,
		CowSafety,
		CtxFlow,
		Determinism,
		ErrWrapped,
		GoroutineLeak,
		HotPathAlloc,
		LockSafety,
		ViewImmutable,
	}
}
