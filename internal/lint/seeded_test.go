package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnstrust/internal/lint"
)

// seededSrc plants one violation per flow-sensitive analyzer class the
// issue names: a lock leaked on an early return, a goroutine with no
// termination path, and a fmt call inside a //lint:hotpath function.
const seededSrc = `package seeded

import (
	"fmt"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// leakedLock forgets mu on the early-return path.
func (c *counter) leakedLock(skip bool) int {
	c.mu.Lock()
	if skip {
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// spin starts a goroutine that can never terminate.
func spin() {
	go func() {
		for {
		}
	}()
}

// hot formats on an annotated hot path.
//
//lint:hotpath
func hot(name string) string {
	return fmt.Sprintf("hello %s", name)
}
`

// TestSeededViolationsFailDnslint is the end-to-end proof the suite
// bites: a package written at test time — not a checked-in fixture — is
// loaded through the same path cmd/dnslint uses, and each seeded bug
// must surface as a finding from exactly the analyzer built to catch
// it, with no bycatch from the other seven.
func TestSeededViolationsFailDnslint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seeded.go"), []byte(seededSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.LoadDir(root, dir, "seeded")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Check(pkg, lint.All())
	if err != nil {
		t.Fatal(err)
	}

	perAnalyzer := map[string][]string{}
	for _, d := range diags {
		perAnalyzer[d.Analyzer] = append(perAnalyzer[d.Analyzer], d.String())
	}
	want := map[string]string{
		"locksafety":    "is still held when this path leaves the function",
		"goroutineleak": "goroutine can never terminate",
		"hotpathalloc":  "calls fmt.Sprintf",
	}
	for analyzer, substr := range want {
		msgs := perAnalyzer[analyzer]
		if len(msgs) != 1 {
			t.Errorf("%s: %d finding(s), want exactly 1: %q", analyzer, len(msgs), msgs)
			continue
		}
		if !strings.Contains(msgs[0], substr) {
			t.Errorf("%s finding %q does not mention %q", analyzer, msgs[0], substr)
		}
		delete(perAnalyzer, analyzer)
	}
	for analyzer, msgs := range perAnalyzer {
		if _, expected := want[analyzer]; !expected {
			t.Errorf("unexpected bycatch from %s: %q", analyzer, msgs)
		}
	}
}
