package lint_test

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dnstrust/internal/lint"
)

// allocGateMarker ties a runtime AllocsPerRun test to the hotpath
// function it gates. The comment sits in the gating test's doc comment:
//
//	// alloc-gate: dnstrust/internal/verdict.(*Cache).Lookup
const allocGateMarker = "// alloc-gate: "

// TestHotpathAnnotationsMatchAllocGates proves the static and runtime
// halves of the hot-path contract cover the same set of functions:
// every //lint:hotpath-annotated function has an AllocsPerRun-gated
// test carrying its alloc-gate marker, and every marker names an
// annotated function. An annotation without a gate is an unenforced
// claim (the static check cannot see allocations hidden in callees); a
// gate without an annotation will rot silently when someone adds a
// fmt.Sprintf to a branch the benchmark never executes.
func TestHotpathAnnotationsMatchAllocGates(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}

	annotated := map[string]bool{}
	dirs := map[string]bool{}
	for _, pkg := range pkgs {
		dirs[pkg.Dir] = true
		for _, fn := range lint.HotpathFuncs(pkg) {
			annotated[fn] = true
		}
	}
	if len(annotated) == 0 {
		t.Fatal("no //lint:hotpath annotations found in the module")
	}

	gated := map[string]bool{}
	for dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if name, ok := strings.CutPrefix(line, allocGateMarker); ok {
					gated[strings.TrimSpace(name)] = true
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}

	var missing, orphaned []string
	for fn := range annotated {
		if !gated[fn] {
			missing = append(missing, fn)
		}
	}
	for fn := range gated {
		if !annotated[fn] {
			orphaned = append(orphaned, fn)
		}
	}
	sort.Strings(missing)
	sort.Strings(orphaned)
	for _, fn := range missing {
		t.Errorf("%s is //lint:hotpath but no test carries %q%s", fn, allocGateMarker+fn,
			" (add an AllocsPerRun gate)")
	}
	for _, fn := range orphaned {
		t.Errorf("a test carries %q but %s has no //lint:hotpath annotation", allocGateMarker+fn, fn)
	}
}
