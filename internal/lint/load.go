package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// A Package is one loaded, type-checked package ready for analysis.
// Only non-test files are loaded: the invariants guarded here are about
// production code, and tests legitimately use time.Now, seeded rand,
// bare os.WriteFile for fixtures, and context.Background.
type Package struct {
	// Path is the import path analyzers see via Pass.Pkg.Path(). The
	// testdata loader can override it so package-scoped analyzers (e.g.
	// determinism) can be exercised against fixture directories.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir for the given
// patterns. The -export flag makes the go tool compile (or reuse from
// the build cache) every package and report the path of its export
// data, which is what lets this loader type-check against dependencies
// with no tooling beyond the standard library and no network.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` reported. One instance is shared across all packages of a
// load so type identities agree.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Load loads and type-checks the packages matching patterns (for
// example "./...") relative to dir, which must sit inside a Go module.
// Dependencies are resolved from build-cache export data, so Load works
// without network access.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads the single package formed by every non-test .go file
// directly inside dir, type-checked under the import path asPath. It
// exists for linttest: fixture directories live under testdata (so the
// go tool never builds them) yet still get full type information.
// moduleRoot anchors the `go list` runs that locate export data for the
// fixtures' imports.
func LoadDir(moduleRoot, dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}

	// Resolve the fixtures' imports (stdlib, or this module's packages)
	// through the same export-data path as a normal load.
	importSet := make(map[string]bool)
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || path == "unsafe" {
				continue
			}
			importSet[path] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for p := range importSet {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(moduleRoot, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	pkg, err := typeCheck(fset, imp, asPath, dir, files)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s (%v): %w", dir, names, err)
	}
	return pkg, nil
}

// checkFiles parses and type-checks one listed package.
func checkFiles(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	pkg, err := typeCheck(fset, imp, path, dir, files)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, files []*ast.File) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// ModuleRoot walks upward from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
