package lint

import (
	"go/ast"
	"strings"
)

// AtomicWrite keeps every persisted artifact on the crash-safe path PR
// 6 introduced: internal/atomicio writes to a temporary sibling, fsyncs,
// and renames into place, so an interrupted save never leaves a
// loadable partial snapshot, memo, or query log. Outside that package
// the analyzer reports direct calls to:
//
//   - os.WriteFile and os.Create (truncate-in-place: a crash mid-write
//     leaves a short file that may still parse)
//   - os.Rename (the rename half of the idiom re-implemented locally)
//   - os.OpenFile with an O_CREATE flag in its argument list
//
// A call whose destination-path argument lexically mentions a
// tmp/temp-named identifier (os.TempDir, t.TempDir, tmpPath, ...) is
// exempt: scratch files have no durability contract. Everything else
// either switches to atomicio.WriteFile or carries a //lint:allow
// atomicwrite with the reason the artifact may be torn.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "direct os.WriteFile/os.Create/os.Rename for a durable path outside internal/atomicio (use atomicio.WriteFile: tmp+fsync+rename)",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/atomicio") {
		return nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case pass.isPkgFunc(call, "os", "WriteFile"):
				if len(call.Args) > 0 && !mentionsTemp(call.Args[0]) {
					pass.Reportf(call.Pos(), "os.WriteFile truncates in place; a crash mid-write leaves a partial file — use atomicio.WriteFile (tmp+fsync+rename)")
				}
			case pass.isPkgFunc(call, "os", "Create"):
				if len(call.Args) > 0 && !mentionsTemp(call.Args[0]) {
					pass.Reportf(call.Pos(), "os.Create truncates in place; a crash mid-write leaves a partial file — use atomicio.WriteFile (tmp+fsync+rename)")
				}
			case pass.isPkgFunc(call, "os", "Rename"):
				if len(call.Args) > 1 && !mentionsTemp(call.Args[0]) && !mentionsTemp(call.Args[1]) {
					pass.Reportf(call.Pos(), "bare os.Rename re-implements half of the atomic-write idiom without the fsync; use atomicio.WriteFile")
				}
			case pass.isPkgFunc(call, "os", "OpenFile"):
				if callMentionsCreateFlag(call) && len(call.Args) > 0 && !mentionsTemp(call.Args[0]) {
					pass.Reportf(call.Pos(), "os.OpenFile with O_CREATE writes a durable path directly; use atomicio.WriteFile (tmp+fsync+rename)")
				}
			}
			return true
		})
	}
	return nil
}

// mentionsTemp reports whether the expression tree contains an
// identifier or selector whose name suggests a temporary path
// (tmp/temp, any case). This is a lexical heuristic, but a
// deterministic and reviewable one: scratch paths in this codebase are
// consistently named, and a miss fails safe (a finding, answered with
// an allow comment).
func mentionsTemp(e ast.Expr) bool {
	temp := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		low := strings.ToLower(id.Name)
		if strings.Contains(low, "tmp") || strings.Contains(low, "temp") {
			temp = true
			return false
		}
		return true
	})
	return temp
}

// callMentionsCreateFlag reports whether any argument references
// os.O_CREATE.
func callMentionsCreateFlag(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		found := false
		ast.Inspect(a, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "O_CREATE" {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
