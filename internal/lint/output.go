package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// jsonDiagnostic is the machine-readable finding shape emitted by
// WriteJSON. File is module-root-relative with forward slashes, so
// output is stable across checkouts and operating systems.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// relPath rewrites an absolute diagnostic path relative to the module
// root, in slash form. Paths outside the root (or an empty root) pass
// through unchanged rather than growing ../ chains.
func relPath(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(root, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

// WriteJSON emits diags as one indented JSON array — [] for a clean
// tree, so consumers can always json.Unmarshal the output.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteGitHub emits diags as GitHub Actions workflow commands:
//
//	::error file=internal/x/y.go,line=12,col=3,title=dnslint/locksafety::message
//
// so findings surface as inline annotations on the pull request diff.
// Message data and property values are escaped per the workflow-command
// grammar (%, CR, LF — properties additionally : and ,).
func WriteGitHub(w io.Writer, root string, diags []Diagnostic) error {
	for _, d := range diags {
		_, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=%s::%s\n",
			ghProp(relPath(root, d.Pos.Filename)), d.Pos.Line, d.Pos.Column,
			ghProp("dnslint/"+d.Analyzer), ghData(d.Message))
		if err != nil {
			return err
		}
	}
	return nil
}

// ghData escapes a workflow-command message.
func ghData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// ghProp escapes a workflow-command property value, which additionally
// reserves the property separators.
func ghProp(s string) string {
	s = ghData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
