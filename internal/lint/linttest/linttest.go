// Package linttest runs lint analyzers against fixture directories in
// the style of golang.org/x/tools/go/analysis/analysistest (which is
// not available offline): each fixture is a directory of Go files under
// testdata, fully type-checked, where a comment of the form
//
//	code() // want `regexp` [`regexp` ...]
//
// asserts that the analyzer reports a diagnostic on that line matching
// each regexp. Lines without a want comment must produce no
// diagnostics, so a fixture with no want comments asserts the analyzer
// stays silent (the conforming-code case).
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"dnstrust/internal/lint"
)

type config struct {
	path string
}

// An Option adjusts how a fixture is loaded.
type Option func(*config)

// AsPackage sets the import path the fixture is type-checked under.
// Package-scoped analyzers (determinism, atomicwrite) key off the path,
// so a fixture opts into their scope by declaring itself under, say,
// "dnstrust/internal/transport".
func AsPackage(path string) Option {
	return func(c *config) { c.path = path }
}

var wantRe = regexp.MustCompile("`([^`]*)`")

type want struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture directory, runs the analyzer, and compares the
// resulting diagnostics against the // want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string, opts ...Option) {
	t.Helper()
	cfg := config{path: "a"}
	for _, o := range opts {
		o(&cfg)
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.LoadDir(root, abs, cfg.path)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Check(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		ws := wants[key]
		ok := false
		for _, w := range ws {
			if w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", key, d.Message, d.Analyzer)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s: want match for %q", key, w.re)
			}
		}
	}
}

// collectWants extracts the want expectations, keyed by file:line.
func collectWants(t *testing.T, pkg *lint.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				ms := wantRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment without a `regexp`: %s", key, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}
