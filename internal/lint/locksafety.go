package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSafety is the flow-sensitive mutex discipline analyzer. Over each
// function's CFG it tracks which sync.Mutex/RWMutex values are held and
// reports:
//
//   - a lock still (definitely) held on a path into function exit —
//     an early return, a fall-off-the-end, or a panic — with no
//     deferred Unlock covering it;
//   - a second Lock of a mutex already held on the same path
//     (self-deadlock), including Lock while RLock is held (RWMutex
//     upgrade deadlocks);
//   - releasing with the wrong method (Unlock after RLock, RUnlock
//     after Lock);
//   - a blocking operation — bare channel send/receive, select without
//     default, range over a channel, or a call from the known-blocking
//     list (file/network I/O, time.Sleep, WaitGroup.Wait, Monitor.Add
//     and friends) — while a lock is definitely held;
//   - inconsistent acquisition order: two functions in the package that
//     hold two classed locks (named struct fields or package-level
//     mutexes) in opposite orders.
//
// Locks acquired and released across function boundaries (a Lock here,
// the Unlock in a callee) are outside the intra-procedural model: an
// unmatched Unlock is ignored, and a deliberate locked return needs a
// //lint:allow locksafety with the handoff protocol spelled out.
var LockSafety = &Analyzer{
	Name: "locksafety",
	Doc: "locks are released on every exit path (incl. panics) unless deferred, " +
		"never re-acquired while held, never held across blocking calls, " +
		"and always acquired in a consistent order",
	Run: runLockSafety,
}

// lockState is one held lock in the dataflow fact.
type lockState struct {
	display  string       // source rendering, e.g. "m.mu"
	class    string       // ordering class, e.g. "(Monitor).mu"; "" for locals
	root     types.Object // root variable the lock is reached from
	maybe    bool         // held on some but not all paths into this point
	rlocked  bool         // held via RLock
	deferred bool         // a deferred Unlock/RUnlock covers it
	pos      token.Pos    // acquisition site
}

// lockFact maps lock keys (root object identity + field path) to state.
type lockFact map[string]lockState

func cloneLockFact(f lockFact) lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinLockFacts(a, b lockFact) lockFact {
	out := make(lockFact, len(a))
	for k, sa := range a {
		if sb, ok := b[k]; ok {
			m := sa
			m.maybe = sa.maybe || sb.maybe
			m.deferred = sa.deferred && sb.deferred
			m.rlocked = sa.rlocked || sb.rlocked
			out[k] = m
		} else {
			sa.maybe = true
			out[k] = sa
		}
	}
	for k, sb := range b {
		if _, ok := a[k]; !ok {
			sb.maybe = true
			out[k] = sb
		}
	}
	return out
}

func eqLockFacts(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, sa := range a {
		sb, ok := b[k]
		if !ok || sa.maybe != sb.maybe || sa.rlocked != sb.rlocked || sa.deferred != sb.deferred {
			return false
		}
	}
	return true
}

// orderEdge records "held was locked when acquired was taken" for the
// acquisition-order check.
type orderEdge struct {
	held, acquired string
}

type lockChecker struct {
	pass   *Pass
	report bool // final pass: emit diagnostics and ordering edges
	orders map[orderEdge]token.Pos
}

func runLockSafety(pass *Pass) error {
	lc := &lockChecker{pass: pass, orders: make(map[orderEdge]token.Pos)}
	for _, body := range functionBodies(pass.Files) {
		lc.checkBody(body)
	}

	// Acquisition-order consistency: report each class pair seen in both
	// orders, once, at the later-sorted site.
	type pair struct{ a, b string }
	reported := make(map[pair]bool)
	var edges []orderEdge
	for e := range lc.orders {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].held != edges[j].held {
			return edges[i].held < edges[j].held
		}
		return edges[i].acquired < edges[j].acquired
	})
	for _, e := range edges {
		rev := orderEdge{held: e.acquired, acquired: e.held}
		revPos, ok := lc.orders[rev]
		if !ok {
			continue
		}
		p := pair{e.held, e.acquired}
		if e.held > e.acquired {
			p = pair{e.acquired, e.held}
		}
		if reported[p] {
			continue
		}
		reported[p] = true
		pass.Reportf(lc.orders[e],
			"inconsistent lock order: %s acquired while %s held here, but the opposite order at %s (pick one order to avoid deadlock)",
			e.acquired, e.held, pass.Fset.Position(revPos))
	}
	return nil
}

// functionBodies yields every function body in the files: declarations
// plus each function literal, each analyzed as its own unit (a literal's
// locking discipline is its own; BuildCFG does not descend into them).
func functionBodies(files []*ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, n.Body)
				}
			case *ast.FuncLit:
				out = append(out, n.Body)
			}
			return true
		})
	}
	return out
}

func (lc *lockChecker) checkBody(body *ast.BlockStmt) {
	g := BuildCFG(body)
	lc.report = false
	in, _ := ForwardFlow(g, FlowProblem[lockFact]{
		Init:  lockFact{},
		Join:  joinLockFacts,
		Equal: eqLockFacts,
		Transfer: func(b *Block, f lockFact) lockFact {
			return lc.transferBlock(g, b, f)
		},
	})

	// Reporting pass: re-run each reachable block once from its solved
	// in-fact with diagnostics enabled, then check exits for leaks.
	lc.report = true
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] || b == g.Exit {
			continue
		}
		f, ok := in[b]
		if !ok {
			continue
		}
		out := lc.transferBlock(g, b, f)
		if !blockExits(g, b) {
			continue
		}
		var leaked []lockState
		for _, st := range out {
			if !st.maybe && !st.deferred {
				leaked = append(leaked, st)
			}
		}
		sort.Slice(leaked, func(i, j int) bool { return leaked[i].display < leaked[j].display })
		for _, st := range leaked {
			lc.pass.Reportf(exitPos(body, b),
				"%s (acquired at %s) is still held when this path leaves the function; defer the Unlock or release it on this path",
				st.display, lc.pass.Fset.Position(st.pos))
		}
	}
	lc.report = false
}

func blockExits(g *CFG, b *Block) bool {
	for _, s := range b.Succs {
		if s == g.Exit {
			return true
		}
	}
	return false
}

// exitPos picks a position for an exit-path report: the block's last
// node (the return/panic), falling back to the body's closing brace.
func exitPos(body *ast.BlockStmt, b *Block) token.Pos {
	if n := len(b.Nodes); n > 0 {
		return b.Nodes[n-1].Pos()
	}
	return body.Rbrace
}

// transferBlock pushes a fact through one block. It never mutates its
// input fact.
func (lc *lockChecker) transferBlock(g *CFG, b *Block, f lockFact) lockFact {
	out := cloneLockFact(f)
	for _, n := range b.Nodes {
		lc.transferNode(g, n, out)
	}
	return out
}

func (lc *lockChecker) transferNode(g *CFG, n ast.Node, f lockFact) {
	// Statement-shaped special cases first.
	switch n := n.(type) {
	case *ast.DeferStmt:
		lc.handleDefer(n, f)
		return
	case *ast.GoStmt:
		return // runs elsewhere; the literal is analyzed as its own unit
	case *ast.SelectStmt:
		if !selectHasDefault(n) {
			lc.blocking(n.Pos(), "select without default", f)
		}
		return
	case *ast.RangeStmt:
		if lc.isChanType(n.X) {
			lc.blocking(n.Pos(), "range over channel "+types.ExprString(n.X), f)
		}
		// Fall through to scan X for calls (e.g. range lockedSnapshot()).
	}

	isComm := false
	if stmt, ok := n.(ast.Stmt); ok && g.SelectComm[stmt] {
		isComm = true // select comm clauses block at the select head, not here
	}

	for _, part := range shallowParts(n) {
		ast.Inspect(part, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt:
				if !isComm {
					lc.blocking(n.Pos(), "channel send", f)
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !isComm {
					lc.blocking(n.Pos(), "channel receive", f)
				}
			case *ast.CallExpr:
				lc.handleCall(n, f)
			}
			return true
		})
	}
}

func (lc *lockChecker) handleDefer(d *ast.DeferStmt, f lockFact) {
	markDeferredUnlock := func(call *ast.CallExpr) {
		recv, name, ok := lc.mutexMethod(call)
		if !ok || (name != "Unlock" && name != "RUnlock") {
			return
		}
		key, _, _, _, kok := lc.lockExpr(recv)
		if !kok {
			return
		}
		if st, held := f[key]; held {
			st.deferred = true
			f[key] = st
		}
	}
	markDeferredUnlock(d.Call)
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				markDeferredUnlock(call)
			}
			return true
		})
	}
}

func (lc *lockChecker) handleCall(call *ast.CallExpr, f lockFact) {
	if recv, name, ok := lc.mutexMethod(call); ok {
		lc.lockEvent(call, recv, name, f)
		return
	}
	if why, ok := lc.knownBlocking(call); ok {
		lc.blocking(call.Pos(), why, f)
	}
}

func (lc *lockChecker) lockEvent(call *ast.CallExpr, recv ast.Expr, name string, f lockFact) {
	key, display, class, root, ok := lc.lockExpr(recv)
	if !ok {
		return
	}
	switch name {
	case "Lock", "RLock":
		if st, held := f[key]; held && !st.maybe && lc.report {
			if st.rlocked && name == "Lock" {
				lc.pass.Reportf(call.Pos(),
					"Lock of %s while its RLock (at %s) is still held: RWMutex upgrades deadlock",
					display, lc.pass.Fset.Position(st.pos))
			} else {
				lc.pass.Reportf(call.Pos(),
					"second %s of %s while already held (at %s): self-deadlock",
					name, display, lc.pass.Fset.Position(st.pos))
			}
		}
		if lc.report && class != "" {
			for _, held := range f {
				if held.class != "" && held.class != class {
					e := orderEdge{held: held.class, acquired: class}
					if _, seen := lc.orders[e]; !seen {
						lc.orders[e] = call.Pos()
					}
				}
			}
		}
		f[key] = lockState{
			display: display, class: class, root: root,
			rlocked: name == "RLock", pos: call.Pos(),
		}
	case "Unlock", "RUnlock":
		st, held := f[key]
		if held && lc.report {
			if st.rlocked && name == "Unlock" {
				lc.pass.Reportf(call.Pos(), "%s was RLocked (at %s) but released with Unlock",
					display, lc.pass.Fset.Position(st.pos))
			}
			if !st.rlocked && name == "RUnlock" {
				lc.pass.Reportf(call.Pos(), "%s was Locked (at %s) but released with RUnlock",
					display, lc.pass.Fset.Position(st.pos))
			}
		}
		delete(f, key)
	case "TryLock", "TryRLock":
		// Result-dependent; correlating the bool with the branch is out
		// of scope, so Try acquisitions are not tracked.
	}
}

func (lc *lockChecker) blocking(pos token.Pos, what string, f lockFact) {
	if !lc.report {
		return
	}
	var held []lockState
	for _, st := range f {
		if !st.maybe {
			held = append(held, st)
		}
	}
	sort.Slice(held, func(i, j int) bool { return held[i].display < held[j].display })
	for _, st := range held {
		lc.pass.Reportf(pos, "%s while %s is held (acquired at %s): the lock is pinned for the full wait",
			what, st.display, lc.pass.Fset.Position(st.pos))
	}
}

// mutexMethod reports whether call is a sync.Mutex/RWMutex method and
// returns its receiver expression and method name.
func (lc *lockChecker) mutexMethod(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", false
	}
	fn, isFn := lc.pass.objectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, "", false
	}
	switch named := namedOf(sig.Recv().Type()); {
	case named == nil:
		return nil, "", false
	case named.Obj().Name() == "Mutex", named.Obj().Name() == "RWMutex":
		return sel.X, sel.Sel.Name, true
	}
	return nil, "", false
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// lockExpr resolves the receiver of a mutex method to a stable key
// (root object + field path), a display string, an ordering class, and
// the root object. Locks reached through calls or non-variable roots
// are not tracked.
func (lc *lockChecker) lockExpr(x ast.Expr) (key, display, class string, root types.Object, ok bool) {
	display = types.ExprString(x)

	// Ordering class: named owner type + field for struct fields,
	// package-qualified name for package-level mutexes, "" for locals.
	if sel, isSel := ast.Unparen(x).(*ast.SelectorExpr); isSel {
		if tv, found := lc.pass.TypesInfo.Types[sel.X]; found {
			if named := namedOf(tv.Type); named != nil {
				class = "(" + named.Obj().Name() + ")." + sel.Sel.Name
			}
		}
	}

	var path []string
	cur := ast.Unparen(x)
	for {
		switch e := cur.(type) {
		case *ast.SelectorExpr:
			path = append([]string{e.Sel.Name}, path...)
			cur = ast.Unparen(e.X)
		case *ast.IndexExpr:
			// Distinct indices collapse to one key: the shard loops in
			// this codebase lock one element at a time, and a false
			// "double lock" on two elements is preferable to missing
			// every leak through an indexed shard.
			path = append([]string{"[]"}, path...)
			cur = ast.Unparen(e.X)
		case *ast.StarExpr:
			cur = ast.Unparen(e.X)
		case *ast.Ident:
			obj := lc.pass.objectOf(e)
			if obj == nil {
				return "", "", "", nil, false
			}
			if class == "" {
				if v, isVar := obj.(*types.Var); isVar && len(path) == 0 && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					class = v.Pkg().Name() + "." + v.Name()
				}
			}
			key = fmt.Sprintf("%s@%d/%s", obj.Name(), obj.Pos(), strings.Join(path, "."))
			return key, display, class, obj, true
		default:
			return "", "", "", nil, false
		}
	}
}

func (lc *lockChecker) isChanType(x ast.Expr) bool {
	tv, ok := lc.pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingPkgFuncs are package-level functions that sleep or do I/O:
// holding a shard lock across them pins every reader for the wait.
var blockingPkgFuncs = map[string]string{
	"time.Sleep":                           "time.Sleep",
	"os.ReadFile":                          "file I/O (os.ReadFile)",
	"os.WriteFile":                         "file I/O (os.WriteFile)",
	"os.Open":                              "file I/O (os.Open)",
	"os.Create":                            "file I/O (os.Create)",
	"os.OpenFile":                          "file I/O (os.OpenFile)",
	"os.Rename":                            "file I/O (os.Rename)",
	"os.Remove":                            "file I/O (os.Remove)",
	"os.RemoveAll":                         "file I/O (os.RemoveAll)",
	"os.MkdirAll":                          "file I/O (os.MkdirAll)",
	"net.Dial":                             "network I/O (net.Dial)",
	"net.DialTimeout":                      "network I/O (net.DialTimeout)",
	"net.Listen":                           "network I/O (net.Listen)",
	"net.ListenPacket":                     "network I/O (net.ListenPacket)",
	"dnstrust/internal/atomicio.WriteFile": "file I/O (atomicio.WriteFile)",
}

// blockingMethods are methods that crawl, wait, or persist; keyed
// "pkgpath.(Recv).Name".
var blockingMethods = map[string]string{
	"sync.(WaitGroup).Wait":                            "WaitGroup.Wait",
	"sync.(Cond).Wait":                                 "Cond.Wait",
	"dnstrust.(Monitor).Add":                           "Monitor.Add (crawls the network)",
	"dnstrust.(Monitor).Snapshot":                      "Monitor.Snapshot (file I/O)",
	"dnstrust.(Monitor).SaveSnapshot":                  "Monitor.SaveSnapshot (file I/O)",
	"dnstrust.(Monitor).Close":                         "Monitor.Close (flushes to disk)",
	"dnstrust/internal/crawler.(Engine).Add":           "Engine.Add (crawls the network)",
	"dnstrust/internal/crawler.(Engine).Close":         "Engine.Close (flushes to disk)",
	"dnstrust/internal/crawler.(Engine).WriteSnapshot": "Engine.WriteSnapshot (file I/O)",
	"dnstrust/internal/transport.(Log).SaveFile":       "Log.SaveFile (file I/O)",
	"dnstrust/internal/transport.(Log).LoadFile":       "Log.LoadFile (file I/O)",
}

// lockFactsPerNode solves the lock dataflow for one body and returns
// the fact in force immediately before each reachable block node.
// viewimmutable uses it to accept receiver writes guarded by a
// receiver-field mutex (locked memoization).
func lockFactsPerNode(pass *Pass, body *ast.BlockStmt) map[ast.Node]lockFact {
	lc := &lockChecker{pass: pass, orders: make(map[orderEdge]token.Pos)}
	g := BuildCFG(body)
	in, _ := ForwardFlow(g, FlowProblem[lockFact]{
		Init:  lockFact{},
		Join:  joinLockFacts,
		Equal: eqLockFacts,
		Transfer: func(b *Block, f lockFact) lockFact {
			return lc.transferBlock(g, b, f)
		},
	})
	facts := make(map[ast.Node]lockFact)
	for _, b := range g.Blocks {
		f, ok := in[b]
		if !ok {
			continue
		}
		f = cloneLockFact(f)
		for _, n := range b.Nodes {
			facts[n] = cloneLockFact(f)
			lc.transferNode(g, n, f)
		}
	}
	return facts
}

func (lc *lockChecker) knownBlocking(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := lc.pass.objectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		why, hit := blockingPkgFuncs[fn.Pkg().Path()+"."+fn.Name()]
		return why, hit
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return "", false
	}
	key := fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
	why, hit := blockingMethods[key]
	return why, hit
}
