package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPackages are the packages whose behavior must be a pure
// function of their inputs so that recorded query logs replay
// byte-stably and DiffLogs compares like with like (PR 4 established
// the recording/replay contract, PR 5 the delta equivalence, PR 6 the
// byte-identical snapshot round-trip). Matched by import-path suffix so
// linttest fixtures can opt in by declaring themselves under one of
// these paths.
var deterministicPackages = []string{
	"internal/transport",
	"internal/delta",
	"internal/snapshot",
}

// Determinism keeps the replay-deterministic packages schedule- and
// environment-independent. In those packages it reports:
//
//   - any use of time.Now (call or function value): clocks must be
//     injected so replay and fault schedules do not depend on wall time
//   - package-level math/rand functions (Intn, Shuffle, ...), which
//     draw from the process-global, auto-seeded source; randomness must
//     flow from an explicit rand.New(rand.NewSource(seed))
//   - emitting output from inside a range over a map (Write/Fprint
//     calls in the loop body): map iteration order would leak into
//     bytes that are contractually stable — collect, sort, then emit
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "wall clocks, global rand, or map-iteration-order output in a replay-deterministic package",
	Run:  runDeterminism,
}

func isDeterministicPackage(path string) bool {
	for _, suffix := range deterministicPackages {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand functions that build explicitly
// seeded sources and generators, which are exactly what deterministic
// code should use.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if !isDeterministicPackage(pass.Pkg.Path()) {
		return nil
	}
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" {
				pass.Reportf(id.Pos(), "time.Now in replay-deterministic package %s; inject a clock (see transport.RateLimit's now/sleep seams)", pass.Pkg.Name())
			}
		case "math/rand", "math/rand/v2":
			if !randConstructors[fn.Name()] {
				pass.Reportf(id.Pos(), "package-level rand.%s uses the process-global source; use an explicitly seeded rand.New(rand.NewSource(seed)) so schedules replay", fn.Name())
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if emit := findEmit(pass, rng.Body); emit != nil {
				pass.Reportf(rng.Pos(), "emits output from inside a range over a map (%s in the loop body); iteration order is random — collect into a slice, sort, then emit", emit.name)
			}
			return true
		})
	}
	return nil
}

type emitCall struct{ name string }

// findEmit looks for a call in body that writes output directly: an
// fmt print function or a Write* method. The collect-append-sort-emit
// idiom (e.g. transport.Log.Save) has no such call inside the range and
// passes untouched.
func findEmit(pass *Pass, body *ast.BlockStmt) *emitCall {
	var found *emitCall
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if fn, ok := pass.objectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			if strings.Contains(name, "print") || strings.Contains(name, "Print") {
				found = &emitCall{name: "fmt." + name}
				return false
			}
		}
		// A method call named Write/WriteString/WriteByte/... on
		// anything (io.Writer, bufio.Writer, strings.Builder).
		if strings.HasPrefix(name, "Write") {
			found = &emitCall{name: name}
			return false
		}
		return true
	})
	return found
}
