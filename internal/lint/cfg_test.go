package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

func parseFuncBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "fixture.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatalf("no function in fixture")
	return nil
}

// TestBuildCFGShapes pins the block/edge structure the builder produces
// for each control-flow shape the analyzers rely on. The rendering is
// CFG.String: "index kind [node-kinds] -> sorted-successors".
func TestBuildCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "if-else-chain",
			src: `func f(a, b bool) int {
				if a {
					return 1
				} else if b {
					return 2
				}
				return 3
			}`,
			want: `
0 entry -> 2
1 exit
2 body [cond] -> 4 5
3 if.join [return] -> 1
4 if.then [return] -> 1
5 if.else [cond] -> 6 7
6 if.join -> 3
7 if.then [return] -> 1
`,
		},
		{
			name: "for-with-break-continue",
			src: `func f(n int) int {
				s := 0
				for i := 0; i < n; i++ {
					if i == 3 {
						continue
					}
					if i == 7 {
						break
					}
					s += i
				}
				return s
			}`,
			want: `
0 entry -> 2
1 exit
2 body [assign assign] -> 3
3 for.head [cond] -> 4 5
4 for.join [return] -> 1
5 for.body [cond] -> 7 8
6 for.post [incdec] -> 3
7 if.join [cond] -> 9 10
8 if.then [continue] -> 6
9 if.join [assign] -> 6
10 if.then [break] -> 4
`,
		},
		{
			name: "range-with-defer-in-loop",
			src: `func f(ch chan int) {
				for v := range ch {
					defer println(v)
				}
			}`,
			want: `
0 entry -> 2
1 exit
2 body -> 3
3 range.head [range] -> 4 5
4 range.join -> 1
5 range.body [defer] -> 3
`,
		},
		{
			name: "switch-with-fallthrough",
			src: `func f(x int) int {
				switch x {
				case 1:
					x++
					fallthrough
				case 2:
					return 2
				default:
					x--
				}
				return x
			}`,
			want: `
0 entry -> 2
1 exit
2 body [cond] -> 4 5 6
3 switch.join [return] -> 1
4 case [incdec] -> 5
5 case [return] -> 1
6 case [incdec] -> 3
`,
		},
		{
			name: "select-in-labeled-loop",
			src: `func f(a, b chan int) {
			L:
				for {
					select {
					case v := <-a:
						_ = v
					case b <- 1:
						break L
					default:
						return
					}
				}
			}`,
			want: `
0 entry -> 2
1 exit
2 body -> 3
3 label.L -> 4
4 for.head -> 6
5 for.join -> 1
6 for.body [select] -> 8 9 10
7 select.join -> 4
8 select.case [assign assign] -> 7
9 select.case [send break] -> 5
10 select.case [return] -> 1
`,
		},
		{
			name: "labeled-goto-and-panic",
			src: `func f(x int) int {
				defer func() {
					recover()
				}()
				i := 0
			loop:
				if i < x {
					i++
					goto loop
				}
				if x < 0 {
					panic("neg")
				}
				return i
			}`,
			want: `
0 entry -> 2
1 exit
2 body [defer assign] -> 3
3 label.loop [cond] -> 4 5
4 if.join [cond] -> 6 7
5 if.then [incdec goto] -> 3
6 if.join [return] -> 1
7 if.then [expr] -> 1
`,
		},
		{
			name: "infinite-for-is-a-black-hole",
			src: `func f() {
				for {
					work()
				}
			}`,
			want: `
0 entry -> 2
1 exit
2 body -> 3
3 for.head -> 5
4 for.join -> 1
5 for.body [expr] -> 3
`,
		},
		{
			name: "empty-select-has-no-successors",
			src: `func f() {
				select {}
			}`,
			want: `
0 entry -> 2
1 exit
2 body [select]
3 select.join -> 1
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := BuildCFG(parseFuncBody(t, tc.src))
			got := strings.TrimSpace(g.String())
			want := strings.TrimSpace(tc.want)
			if got != want {
				t.Errorf("CFG mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// assignedNames is the forward may-analysis used to pin dataflow
// fixpoints: the set of variable names possibly assigned on some path
// to a point.
func assignedNames() FlowProblem[map[string]bool] {
	union := func(a, b map[string]bool) map[string]bool {
		out := make(map[string]bool, len(a)+len(b))
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	equal := func(a, b map[string]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	return FlowProblem[map[string]bool]{
		Init:  map[string]bool{},
		Join:  union,
		Equal: equal,
		Transfer: func(b *Block, in map[string]bool) map[string]bool {
			out := union(in, nil)
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
							out[id.Name] = true
						}
					}
				}
			}
			return out
		},
	}
}

func sortedKeys(m map[string]bool) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}

func TestForwardFlowFixpoint(t *testing.T) {
	// The loop body assigns y; the back edge must re-trigger the head
	// so the head's in-fact converges to {x y}, not the first-visit {x}.
	g := BuildCFG(parseFuncBody(t, `func g() {
		x := 0
		for x < 10 {
			y := x
			x = y + 1
		}
		z := x
		_ = z
	}`))
	in, out := ForwardFlow(g, assignedNames())

	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no for.head block in\n%s", g)
	}
	if got := sortedKeys(in[head]); got != "x y" {
		t.Errorf("in[for.head] = {%s}, want {x y} (back edge not propagated)", got)
	}
	if got := sortedKeys(in[g.Exit]); got != "x y z" {
		t.Errorf("in[exit] = {%s}, want {x y z}", got)
	}
	_ = out
}

func TestForwardFlowJoinsBranches(t *testing.T) {
	// The else branch returns early, so its facts reach Exit but not
	// the statements after the if.
	g := BuildCFG(parseFuncBody(t, `func f(c bool) {
		a := 1
		if c {
			b := 2
			_ = b
		} else {
			e := 5
			_ = e
			return
		}
		d := 3
		_, _ = a, d
	}`))
	in, _ := ForwardFlow(g, assignedNames())

	var join *Block
	for _, b := range g.Blocks {
		if b.Kind == "if.join" {
			join = b
		}
	}
	if got := sortedKeys(in[join]); got != "a b" {
		t.Errorf("in[if.join] = {%s}, want {a b} (early return must not leak e)", got)
	}
	if got := sortedKeys(in[g.Exit]); got != "a b d e" {
		t.Errorf("in[exit] = {%s}, want {a b d e}", got)
	}
}

func TestBackwardFlow(t *testing.T) {
	// Backward union of identifiers mentioned downstream: the branch
	// facts {a} and {b} must both reach the head block.
	g := BuildCFG(parseFuncBody(t, `func h(c bool) int {
		a := 1
		b := 2
		if c {
			return a
		}
		return b
	}`))
	idents := FlowProblem[map[string]bool]{
		Init: map[string]bool{},
		Join: func(a, b map[string]bool) map[string]bool {
			out := make(map[string]bool, len(a)+len(b))
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(blk *Block, in map[string]bool) map[string]bool {
			out := make(map[string]bool, len(in))
			for k := range in {
				out[k] = true
			}
			for _, n := range blk.Nodes {
				for _, part := range shallowParts(n) {
					ast.Inspect(part, func(n ast.Node) bool {
						if id, ok := n.(*ast.Ident); ok {
							out[id.Name] = true
						}
						return true
					})
				}
			}
			return out
		},
	}
	_, out := BackwardFlow(g, idents)
	var body *Block
	for _, b := range g.Blocks {
		if b.Kind == "body" {
			body = b
		}
	}
	if got := sortedKeys(out[body]); got != "a b c" {
		t.Errorf("backward out[body] = {%s}, want {a b c}", got)
	}
}

func TestCFGReachable(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `func f() {
		return
		println("dead")
	}`))
	reach := g.Reachable()
	for _, b := range g.Blocks {
		dead := b.Kind == "dead"
		if dead == reach[b] {
			t.Errorf("block %d %s: reachable=%v", b.Index, b.Kind, reach[b])
		}
	}
}
