package lint_test

import (
	"testing"

	"dnstrust/internal/lint"
	"dnstrust/internal/lint/linttest"
)

func TestAtomicWriteSeededViolations(t *testing.T) {
	linttest.Run(t, lint.AtomicWrite, "testdata/atomicwrite/bad")
}

func TestAtomicWriteConformingCode(t *testing.T) {
	linttest.Run(t, lint.AtomicWrite, "testdata/atomicwrite/good")
}

// TestAtomicWriteExemptsAtomicio proves the package implementing the
// idiom may use the raw primitives: the bad fixture, loaded under the
// atomicio import path, produces no findings.
func TestAtomicWriteExemptsAtomicio(t *testing.T) {
	pkg, err := lint.LoadDir(moduleRoot(t), "testdata/atomicwrite/bad", "dnstrust/internal/atomicio")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Check(pkg, []*lint.Analyzer{lint.AtomicWrite})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic inside atomicio scope: %s", d)
	}
}
