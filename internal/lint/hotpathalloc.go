package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathAlloc statically audits functions annotated //lint:hotpath in
// their doc comment — the verdict-cache Lookup hit path, the proxy
// ServeDNS refuse path, the incremental delta diff — for constructs
// that allocate:
//
//   - any fmt or log call (Sprintf in a hit path is the classic smuggle)
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//   - function literals that capture local variables (the closure
//     environment escapes)
//   - interface boxing: passing, assigning, or returning a concrete
//     non-pointer-shaped value where an interface is expected
//   - map and slice composite literals
//   - starting a goroutine
//
// Explicit make/new/append calls are deliberately not flagged: a sized
// make is a visible, intentional allocation, reviewed at the call site
// and caught by the runtime AllocsPerRun gates this check complements
// (the static check catches what a benchmark's happy path never
// executes, e.g. an error branch that formats).
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "functions annotated //lint:hotpath must not use fmt/log, string " +
		"concat/conversion, capturing closures, interface boxing, map/slice " +
		"literals, or go statements",
	Run: runHotPathAlloc,
}

// hotpathMarker in a function's doc comment opts it into the check.
const hotpathMarker = "lint:hotpath"

func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// HotpathFuncs returns the qualified names of the functions annotated
// //lint:hotpath in pkg, e.g. "dnstrust/internal/verdict.(*Cache).Lookup".
// The annotation-vs-alloc-gate matching test uses it to prove every
// annotated function has a runtime AllocsPerRun gate and vice versa.
func HotpathFuncs(pkg *Package) []string {
	var out []string
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hasMarker(fd.Doc, hotpathMarker) {
				continue
			}
			out = append(out, qualifiedFuncName(pkg.Path, fd))
		}
	}
	return out
}

func qualifiedFuncName(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgPath + "." + fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	name := ""
	switch t := ast.Unparen(recv).(type) {
	case *ast.StarExpr:
		if id, ok := ast.Unparen(t.X).(*ast.Ident); ok {
			name = "(*" + id.Name + ")"
		}
	case *ast.Ident:
		name = "(" + t.Name + ")"
	}
	return pkgPath + "." + name + "." + fd.Name.Name
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasMarker(fd.Doc, hotpathMarker) {
				continue
			}
			hc := &hotChecker{pass: pass, fd: fd}
			hc.checkBody(fd.Body)
		}
	}
	return nil
}

type hotChecker struct {
	pass *Pass
	fd   *ast.FuncDecl
}

func (hc *hotChecker) checkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			hc.checkClosure(n)
			return false // the literal's own body runs elsewhere
		case *ast.CallExpr:
			hc.checkCall(n)
		case *ast.BinaryExpr:
			hc.checkConcat(n)
		case *ast.CompositeLit:
			hc.checkCompositeLit(n)
		case *ast.GoStmt:
			hc.pass.Reportf(n.Pos(), "hotpath %s starts a goroutine (allocates a stack)", hc.fd.Name.Name)
		case *ast.AssignStmt:
			hc.checkAssign(n)
		case *ast.ValueSpec:
			hc.checkValueSpec(n)
		case *ast.ReturnStmt:
			hc.checkReturn(n)
		}
		return true
	})
}

func (hc *hotChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := hc.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (hc *hotChecker) checkCall(call *ast.CallExpr) {
	// Conversions first: T(x) parses as a call.
	if tv, ok := hc.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		hc.checkConversion(call, tv.Type)
		return
	}
	fun := ast.Unparen(call.Fun)
	var fnObj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		fnObj = hc.pass.objectOf(fun)
	case *ast.SelectorExpr:
		fnObj = hc.pass.objectOf(fun.Sel)
	}
	if fn, ok := fnObj.(*types.Func); ok && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "log":
			hc.pass.Reportf(call.Pos(), "hotpath %s calls %s.%s (formats and allocates)",
				hc.fd.Name.Name, fn.Pkg().Name(), fn.Name())
			return
		}
	}
	// Interface boxing at the call boundary.
	sigType := hc.typeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case params.Len() > 0:
			pt = params.At(params.Len() - 1).Type()
		}
		if pt != nil {
			hc.checkBoxing(arg, pt, "passing")
		}
	}
}

func (hc *hotChecker) checkConversion(call *ast.CallExpr, target types.Type) {
	src := hc.typeOf(call.Args[0])
	if src == nil {
		return
	}
	toString := isString(target) && isByteOrRuneSlice(src)
	fromString := isByteOrRuneSlice(target) && isString(src)
	if toString || fromString {
		hc.pass.Reportf(call.Pos(), "hotpath %s converts %s to %s (copies and allocates)",
			hc.fd.Name.Name, src, target)
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func (hc *hotChecker) checkConcat(be *ast.BinaryExpr) {
	if be.Op.String() != "+" {
		return
	}
	tv, ok := hc.pass.TypesInfo.Types[be]
	if !ok || tv.Value != nil { // constant-folded concat is free
		return
	}
	if isString(tv.Type) {
		hc.pass.Reportf(be.Pos(), "hotpath %s concatenates strings (allocates)", hc.fd.Name.Name)
	}
}

func (hc *hotChecker) checkCompositeLit(cl *ast.CompositeLit) {
	t := hc.typeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		hc.pass.Reportf(cl.Pos(), "hotpath %s builds a map literal (allocates); hoist it or use a sized make at init", hc.fd.Name.Name)
	case *types.Slice:
		hc.pass.Reportf(cl.Pos(), "hotpath %s builds a slice literal (allocates)", hc.fd.Name.Name)
	}
}

// checkClosure flags literals that capture variables local to the
// hotpath function: the shared environment forces a heap allocation.
func (hc *hotChecker) checkClosure(lit *ast.FuncLit) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := hc.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Declared inside the enclosing function but outside the literal.
		if obj.Pos() >= hc.fd.Pos() && obj.Pos() < hc.fd.End() &&
			(obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			captured = obj.Name()
			return false
		}
		return true
	})
	if captured != "" {
		hc.pass.Reportf(lit.Pos(), "hotpath %s creates a closure capturing %q (environment escapes to the heap)",
			hc.fd.Name.Name, captured)
	}
}

// checkBoxing reports a concrete non-pointer-shaped value flowing into
// an interface: the value is copied to the heap. Pointer-shaped kinds
// (pointers, channels, maps, funcs, unsafe pointers) fit in the
// interface word; nil and existing interfaces convert for free.
func (hc *hotChecker) checkBoxing(arg ast.Expr, target types.Type, verb string) {
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := hc.pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	hc.pass.Reportf(arg.Pos(), "hotpath %s: %s %s boxes a %s into an interface (allocates)",
		hc.fd.Name.Name, verb, types.ExprString(arg), tv.Type)
}

func (hc *hotChecker) checkAssign(as *ast.AssignStmt) {
	if as.Tok.String() != "=" {
		return // := infers a concrete type; no interface target
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break // tuple assignment from one call; conversion is inside the callee
		}
		lt := hc.typeOf(lhs)
		if lt == nil {
			continue
		}
		hc.checkBoxing(as.Rhs[i], lt, "assigning")
	}
}

func (hc *hotChecker) checkValueSpec(vs *ast.ValueSpec) {
	if vs.Type == nil {
		return
	}
	t := hc.typeOf(vs.Type)
	if t == nil {
		return
	}
	for _, v := range vs.Values {
		hc.checkBoxing(v, t, "assigning")
	}
}

func (hc *hotChecker) checkReturn(rs *ast.ReturnStmt) {
	fnObj, ok := hc.pass.TypesInfo.Defs[hc.fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := fnObj.Type().(*types.Signature).Results()
	if len(rs.Results) != results.Len() {
		return // single-call tuple return
	}
	for i, r := range rs.Results {
		hc.checkBoxing(r, results.At(i).Type(), "returning")
	}
}
