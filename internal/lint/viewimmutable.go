package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ViewImmutable codifies the read-side contract PR 5 established by
// hand: a generation-stamped read type (dnstrust.View, a detached
// core.Graph epoch, delta.Delta) is frozen at commit. Types opt in
// with //lint:immutable in their doc comment; every *exported* method
// of a marked type is then checked:
//
//   - it must not write receiver-reachable memory (field assignments,
//     stores through aliases of receiver fields, delete/clear/append
//     on receiver-rooted maps and slices) — with two carve-outs for
//     the repo's memoization idiom: writes inside a receiver-field
//     sync.Once.Do literal, and writes made while a receiver-field
//     mutex is held (checked flow-sensitively via the locksafety
//     dataflow, so the guard must actually cover the write's path);
//   - it must not return a receiver-rooted slice or map directly: the
//     caller could mutate shared backing memory, so internal
//     collections leave through defensive copies
//     (append([]T(nil), ...) / maps.Clone). Types whose accessors
//     deliberately share append-only internal arrays (core.Graph's
//     interned tables) declare //lint:immutable shared-returns, which
//     keeps the write checks but waives the copy rule.
//
// Unexported methods are construction/build-phase helpers and are not
// checked.
var ViewImmutable = &Analyzer{
	Name: "viewimmutable",
	Doc: "exported methods of //lint:immutable types must not write " +
		"receiver-reachable memory (outside Once/mutex-guarded memoization) " +
		"and must return defensive copies of internal slices/maps",
	Run: runViewImmutable,
}

const immutableMarker = "lint:immutable"

type immutableOpts struct {
	sharedReturns bool
}

func runViewImmutable(pass *Pass) error {
	marked := markedTypes(pass)
	if len(marked) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if !fd.Name.IsExported() {
				continue
			}
			recvType := baseTypeName(pass, fd.Recv.List[0].Type)
			opts, isMarked := marked[recvType]
			if !isMarked {
				continue
			}
			checkImmutableMethod(pass, fd, opts)
		}
	}
	return nil
}

// markedTypes finds //lint:immutable type declarations. The marker may
// sit on the TypeSpec or on its enclosing GenDecl.
func markedTypes(pass *Pass) map[*types.TypeName]immutableOpts {
	marked := make(map[*types.TypeName]immutableOpts)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if !hasMarker(doc, immutableMarker) {
					continue
				}
				tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				marked[tn] = immutableOpts{
					sharedReturns: markerHasWord(doc, immutableMarker, "shared-returns"),
				}
			}
		}
	}
	return marked
}

func markerHasWord(doc *ast.CommentGroup, marker, word string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, marker); ok {
			for _, w := range strings.Fields(rest) {
				if w == word {
					return true
				}
			}
		}
	}
	return false
}

func baseTypeName(pass *Pass, recv ast.Expr) *types.TypeName {
	t := ast.Unparen(recv)
	if st, ok := t.(*ast.StarExpr); ok {
		t = ast.Unparen(st.X)
	}
	// Generic receivers (T[P]) do not occur on the marked types.
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil
	}
	tn, _ := pass.objectOf(id).(*types.TypeName)
	return tn
}

func checkImmutableMethod(pass *Pass, fd *ast.FuncDecl, opts immutableOpts) {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return // receiver unnamed: the method cannot reach it
	}
	recvObj := pass.TypesInfo.Defs[names[0]]
	if recvObj == nil {
		return
	}

	ic := &immutChecker{
		pass:    pass,
		fd:      fd,
		recv:    recvObj,
		opts:    opts,
		tainted: map[types.Object]bool{recvObj: true},
	}
	ic.propagateAliases()
	ic.collectOnceRegions()
	ic.lockFacts = lockFactsPerNode(pass, fd.Body)
	ic.check()
}

type immutChecker struct {
	pass      *Pass
	fd        *ast.FuncDecl
	recv      types.Object
	opts      immutableOpts
	tainted   map[types.Object]bool // variables aliasing receiver-reachable memory
	onceLits  []*ast.FuncLit        // literals passed to a receiver-field Once.Do
	lockFacts map[ast.Node]lockFact
}

// propagateAliases runs the cowsafety-style taint fixpoint: a variable
// assigned from a receiver-rooted expression aliases receiver memory.
// Function calls launder taint (their results are fresh values unless
// the callee shares, which the return rule polices at the callee).
func (ic *immutChecker) propagateAliases() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(ic.fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				if !ic.rooted(rhs) {
					continue
				}
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := ic.pass.objectOf(id)
				if obj != nil && !ic.tainted[obj] {
					ic.tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
}

// rooted reports whether expr reads storage reachable from the
// receiver without passing through a function call.
func (ic *immutChecker) rooted(expr ast.Expr) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := ic.pass.objectOf(e)
			return obj != nil && ic.tainted[obj]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.TypeAssertExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// collectOnceRegions finds literals passed to recv-field sync.Once.Do.
func (ic *immutChecker) collectOnceRegions() {
	ast.Inspect(ic.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Do" || len(call.Args) != 1 {
			return true
		}
		fn, ok := ic.pass.objectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		if named := namedOf(fn.Type().(*types.Signature).Recv().Type()); named == nil || named.Obj().Name() != "Once" {
			return true
		}
		if !ic.rooted(sel.X) {
			return true
		}
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
			ic.onceLits = append(ic.onceLits, lit)
		}
		return true
	})
}

func (ic *immutChecker) inOnceRegion(pos token.Pos) bool {
	for _, lit := range ic.onceLits {
		if lit.Pos() <= pos && pos < lit.End() {
			return true
		}
	}
	return false
}

// guardedAt reports whether a receiver-field mutex is definitely held
// at the statement owning the write.
func (ic *immutChecker) guardedAt(stmt ast.Node) bool {
	f, ok := ic.lockFacts[stmt]
	if !ok {
		return false
	}
	for _, st := range f {
		if !st.maybe && st.root == ic.recv {
			return true
		}
	}
	return false
}

func (ic *immutChecker) check() {
	// Walk statement-by-statement so each write can be matched with the
	// lock fact of its enclosing statement node; literals are handled
	// separately (no flow facts inside them: conservative unless Once).
	var walkStmts func(n ast.Node, owner ast.Node)
	checkWrite := func(owner ast.Node, pos token.Pos, what string) {
		if ic.inOnceRegion(pos) {
			return
		}
		if owner != nil && ic.guardedAt(owner) {
			return
		}
		ic.pass.Reportf(pos,
			"%s on immutable %s receiver: generation-stamped read state is frozen at commit (move the write to the builder, or guard it with the type's own Once/mutex memoization)",
			what, types.ExprString(ic.fd.Recv.List[0].Type))
	}

	walkStmts = func(n ast.Node, owner ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Literal bodies have no intra-procedural lock facts;
				// writes inside are checked with owner=nil.
				walkStmts(n.Body, nil)
				return false
			case ast.Stmt:
				if owner == nil || n != owner {
					// Recompute owner at each statement so nested
					// statements map to their own lock facts.
					if _, ok := ic.lockFacts[n]; ok {
						owner = n
					}
				}
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					switch ast.Unparen(lhs).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						if ic.rooted(lhs) {
							checkWrite(owner, lhs.Pos(), "write to "+types.ExprString(lhs))
						}
					}
				}
			case *ast.IncDecStmt:
				switch ast.Unparen(n.X).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					if ic.rooted(n.X) {
						checkWrite(owner, n.Pos(), "increment of "+types.ExprString(n.X))
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
					switch id.Name {
					case "delete", "clear":
						if ic.isBuiltin(id) && ic.rooted(n.Args[0]) {
							checkWrite(owner, n.Pos(), id.Name+" on "+types.ExprString(n.Args[0]))
						}
					case "append":
						if ic.isBuiltin(id) && ic.rooted(n.Args[0]) && len(n.Args) > 1 {
							checkWrite(owner, n.Pos(), "append to "+types.ExprString(n.Args[0])+" (may write its shared backing array)")
						}
					}
				}
			case *ast.ReturnStmt:
				if !ic.opts.sharedReturns && owner != nil { // literals return their own values
					ic.checkReturn(n)
				}
			}
			return true
		})
	}
	walkStmts(ic.fd.Body, nil)
}

func (ic *immutChecker) isBuiltin(id *ast.Ident) bool {
	_, ok := ic.pass.objectOf(id).(*types.Builtin)
	return ok
}

func (ic *immutChecker) checkReturn(rs *ast.ReturnStmt) {
	for _, r := range rs.Results {
		if !ic.rooted(r) {
			continue
		}
		t := ic.pass.TypesInfo.Types[r].Type
		if t == nil {
			continue
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			ic.pass.Reportf(r.Pos(),
				"immutable %s returns internal %s without a defensive copy: the caller can mutate shared memory (append to a nil slice / maps.Clone, or declare //lint:immutable shared-returns)",
				types.ExprString(ic.fd.Recv.List[0].Type), types.ExprString(r))
		}
	}
}
