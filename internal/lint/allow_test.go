package lint_test

import (
	"strings"
	"testing"

	"dnstrust/internal/lint"
	"dnstrust/internal/lint/linttest"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestAllowSuppresses: a fixture full of atomicwrite violations, each
// carrying a well-formed //lint:allow, produces no diagnostics.
func TestAllowSuppresses(t *testing.T) {
	linttest.Run(t, lint.AtomicWrite, "testdata/allow/clean")
}

// TestAllowMalformed: an allow comment with no reason, or naming an
// unknown analyzer, is reported and does not suppress the finding.
func TestAllowMalformed(t *testing.T) {
	pkg, err := lint.LoadDir(moduleRoot(t), "testdata/allow/malformed", "a")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Check(pkg, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"lint:allow needs a non-empty reason",
		`lint:allow names unknown analyzer "nosuchcheck"`,
		"os.WriteFile truncates in place", // under the reason-less allow
		"os.WriteFile truncates in place", // under the unknown-analyzer allow
	}
	var unmatched []lint.Diagnostic
	remaining := append([]lint.Diagnostic(nil), diags...)
	for _, want := range wantSubstrings {
		found := false
		for i, d := range remaining {
			if strings.Contains(d.Message, want) {
				remaining = append(remaining[:i], remaining[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic containing %q", want)
		}
	}
	unmatched = remaining
	for _, d := range unmatched {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
