package lint_test

import (
	"testing"

	"dnstrust/internal/lint"
	"dnstrust/internal/lint/linttest"
)

func TestViewImmutableSeededViolations(t *testing.T) {
	linttest.Run(t, lint.ViewImmutable, "testdata/viewimmutable/bad")
}

func TestViewImmutableConformingCode(t *testing.T) {
	linttest.Run(t, lint.ViewImmutable, "testdata/viewimmutable/good")
}
