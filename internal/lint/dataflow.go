package lint

// Generic worklist dataflow over a CFG. Analyzers describe a lattice
// (Join/Equal) and a per-block Transfer; the solver iterates to a
// fixpoint. Facts must be treated as immutable: Transfer and Join
// return fresh values rather than mutating their arguments, so a fact
// can safely flow into several successors.

// A FlowProblem describes one dataflow analysis over fact type F.
type FlowProblem[F any] struct {
	// Init is the fact at the boundary: Entry for forward problems,
	// Exit for backward ones.
	Init F
	// Join combines facts arriving over multiple edges (lattice join).
	Join func(F, F) F
	// Equal detects the fixpoint.
	Equal func(F, F) bool
	// Transfer pushes a fact through one block's nodes.
	Transfer func(*Block, F) F
}

// ForwardFlow solves p over g in execution order and returns the fact
// at block entry (in) and block exit (out) for every block reachable
// from Entry. Joins only consider predecessors whose out-fact has been
// computed, so facts that hold on every path so far are not weakened
// by edges that have not yet contributed (back edges re-trigger their
// targets when they do).
func ForwardFlow[F any](g *CFG, p FlowProblem[F]) (in, out map[*Block]F) {
	return solve(g, p, false)
}

// BackwardFlow solves p over g against execution order: in holds the
// fact at block exit, out the fact at block entry (the naming follows
// the direction of propagation).
func BackwardFlow[F any](g *CFG, p FlowProblem[F]) (in, out map[*Block]F) {
	return solve(g, p, true)
}

func solve[F any](g *CFG, p FlowProblem[F], backward bool) (in, out map[*Block]F) {
	next := func(b *Block) []*Block { return b.Succs }
	prev := func(b *Block) []*Block { return b.Preds }
	start := g.Entry
	if backward {
		next, prev = prev, next
		start = g.Exit
	}

	in = make(map[*Block]F)
	out = make(map[*Block]F)
	seen := make(map[*Block]bool)

	queue := []*Block{start}
	queued := map[*Block]bool{start: true}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false

		var fact F
		if b == start {
			fact = p.Init
		} else {
			first := true
			for _, pr := range prev(b) {
				o, ok := out[pr]
				if !ok {
					continue // not yet computed; its edge re-triggers us later
				}
				if first {
					fact = o
					first = false
				} else {
					fact = p.Join(fact, o)
				}
			}
			if first {
				continue // unreachable in this direction
			}
		}

		if old, ok := in[b]; ok && seen[b] && p.Equal(old, fact) {
			continue
		}
		seen[b] = true
		in[b] = fact
		out[b] = p.Transfer(b, fact)
		for _, s := range next(b) {
			if !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return in, out
}
