package transport_test

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"dnstrust/internal/dnsclient"
	"dnstrust/internal/dnsserver"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/dnszone"
	"dnstrust/internal/transport"
)

// TestLiveSourceOverRealSocket: the Live terminal source speaks actual
// UDP through dnsclient — an authoritative answer and a version.bind
// probe both come back over the wire, and middleware composes over it
// like over any other source.
func TestLiveSourceOverRealSocket(t *testing.T) {
	ctx := context.Background()
	z := dnszone.New("example.test")
	z.AddNS("ns.example.test")
	if err := z.AddAddress("www.example.test", netip.MustParseAddr("192.0.2.80")); err != nil {
		t.Fatal(err)
	}
	srv, err := dnsserver.Start(ctx, "127.0.0.1:0", dnsserver.Config{
		Zones:         []*dnszone.Zone{z},
		VersionBanner: "BIND 8.3.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	port := uint16(srv.Addr().(*net.UDPAddr).Port)

	counter := transport.NewCounter()
	src := transport.Chain(
		transport.Live(dnsclient.New(dnsclient.Config{Timeout: 2 * time.Second}), port),
		counter.Middleware(),
	)
	defer src.Close()
	server := netip.MustParseAddr("127.0.0.1")

	resp, err := src.Query(ctx, server, "www.example.test", dnswire.TypeA, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Authoritative || len(resp.Answers) != 1 {
		t.Fatalf("live answer = %s", resp)
	}
	if a, ok := resp.Answers[0].Data.(dnswire.A); !ok || a.Addr != netip.MustParseAddr("192.0.2.80") {
		t.Fatalf("live A record = %v", resp.Answers[0].Data)
	}

	banner, err := transport.VersionBind(ctx, src, server)
	if err != nil {
		t.Fatal(err)
	}
	if banner != "BIND 8.3.0" {
		t.Fatalf("live banner = %q", banner)
	}
	if counter.Queries() != 2 {
		t.Fatalf("counter saw %d queries, want 2", counter.Queries())
	}
}
