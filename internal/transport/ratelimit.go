package transport

import (
	"context"
	"net/netip"
	"sync"
	"time"

	"dnstrust/internal/dnswire"
)

// RateConfig tunes the RateLimit middleware.
type RateConfig struct {
	// QueriesPerSec is the default sustained per-server rate; <= 0
	// disables pacing for queries without a per-zone override.
	QueriesPerSec float64
	// ZoneQueriesPerSec overrides QueriesPerSec per queried zone apex
	// (read from the WithZone context tag). TLD and registry servers are
	// provisioned for orders of magnitude more traffic than leaf-zone
	// boxes, so a live crawl typically sets a high override for "com",
	// "net", ... and leaves the conservative default for everything
	// else. Keys are canonical zone apexes ("" is the root); matching is
	// exact. A zone absent from the map uses QueriesPerSec; an override
	// <= 0 disables pacing for that zone.
	ZoneQueriesPerSec map[string]float64
	// Burst is the token-bucket depth (back-to-back queries one server
	// absorbs before pacing kicks in). Values below 1 default to 1.
	Burst int
	// Now and Sleep inject a fake clock for tests; nil selects the real
	// time.Now and a timer-based sleep.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

// rateFor returns the sustained query rate for servers acting for the
// given zone apex: the per-zone override when configured, the default
// otherwise. <= 0 means unpaced.
func (c *RateConfig) rateFor(zone string, tagged bool) float64 {
	if tagged {
		if r, ok := c.ZoneQueriesPerSec[zone]; ok {
			return r
		}
	}
	return c.QueriesPerSec
}

// RateLimit returns pacing middleware: one token bucket per server
// address, so a crawl may hammer its own walk pipeline as hard as it
// likes but no single remote nameserver sees more than the configured
// sustained rate, no matter how many workers share it. The per-call rate
// comes from the query's WithZone tag via cfg.ZoneQueriesPerSec,
// falling back to cfg.QueriesPerSec for untagged queries.
func RateLimit(cfg RateConfig) Middleware {
	l := newRateLimiter(cfg.QueriesPerSec, cfg.Burst, cfg.Now, cfg.Sleep)
	return func(next Source) Source {
		return layer{inner: next, query: func(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
			zone, tagged := ZoneFromContext(ctx)
			if rate := cfg.rateFor(zone, tagged); rate > 0 {
				if err := l.wait(ctx, server, rate); err != nil {
					return nil, err
				}
			}
			return next.Query(ctx, server, name, qtype, class)
		}}
	}
}

// rateLimiter paces transport queries with one token bucket per server
// address. Buckets refill continuously at rate tokens/sec up to burst;
// callers that find the bucket empty reserve the next future token and
// sleep until it matures, so waiters are admitted strictly in arrival
// order per server without a queue.
//
// The sustained rate may vary per call (per-zone overrides: the
// middleware passes the rate of the zone the query is addressed to). A
// bucket's token balance carries across rate changes; accrual and
// reservation both use the current call's rate, so a server that serves
// both a high-rate TLD zone and a low-rate leaf zone is paced by
// whichever etiquette applies to each query.
//
// The clock (now) and the blocking primitive (sleep) are injectable for
// tests; nil selects the real time.Now and a timer-based sleep.
type rateLimiter struct {
	rate  float64 // default tokens per second (calls passing rate 0)
	burst float64
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error

	mu      sync.Mutex
	buckets map[netip.Addr]*bucket
}

type bucket struct {
	tokens float64 // may go negative: reserved future tokens
	last   time.Time
}

func newRateLimiter(rate float64, burst int, now func() time.Time, sleep func(context.Context, time.Duration) error) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		// This is the injectable-clock seam itself: replay and fault
		// tests hand in a fake clock above, live crawls fall back here.
		now = time.Now //lint:allow determinism the default arm of the injected-clock seam; deterministic paths always inject
	}
	if sleep == nil {
		sleep = sleepCtx
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		sleep:   sleep,
		buckets: make(map[netip.Addr]*bucket),
	}
}

// wait blocks until addr's bucket grants a token or ctx is done. rate is
// the sustained rate for this call (a per-zone override); 0 selects the
// limiter's default. The reservation is made under the lock; the sleep
// happens outside it, so waiters on different servers never serialize on
// each other.
func (l *rateLimiter) wait(ctx context.Context, addr netip.Addr, rate float64) error {
	if rate == 0 {
		rate = l.rate
	}
	if rate <= 0 {
		return nil
	}
	l.mu.Lock()
	t := l.now()
	b := l.buckets[addr]
	if b == nil {
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[addr] = b
	}
	b.tokens += t.Sub(b.last).Seconds() * rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = t
	b.tokens--
	var d time.Duration
	if b.tokens < 0 {
		d = time.Duration(-b.tokens / rate * float64(time.Second))
	}
	l.mu.Unlock()
	if d > 0 {
		return l.sleep(ctx, d)
	}
	return nil
}

// sleepCtx is the production sleep: a timer racing ctx cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
