package transport

import (
	"context"
	"net/netip"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
)

// Authority answers one DNS request in process: the registry side of the
// synthetic Internet. *topology.Registry implements it (lame servers and
// unbound addresses surface as errors, exactly like an unresponsive
// network server).
type Authority interface {
	Respond(server netip.Addr, req *dnswire.Message) (*dnswire.Message, error)
}

// Direct is the in-memory terminal source: it answers resolver queries
// straight from an Authority with the exact response semantics of the
// network server, no sockets and no framing. It replaces the old
// topology.DirectTransport; tracing, latency, and wire framing are now
// middleware composed over it.
func Direct(a Authority) Source {
	return directSource{a}
}

type directSource struct{ a Authority }

func (d directSource) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req := dnswire.NewQuery(1, dnsname.Canonical(name), qtype, class)
	return d.a.Respond(server, req)
}

func (d directSource) Close() error { return nil }
