package transport

import (
	"context"
	"errors"
	"fmt"
	"net/netip"

	"dnstrust/internal/dnswire"
)

// ErrInjectedTimeout is the error a Fault middleware returns for a query
// it decided to drop, standing in for an unresponsive server.
var ErrInjectedTimeout = errors.New("transport: injected timeout")

// FaultModel configures probabilistic fault injection. Each probability
// is evaluated independently in order — Timeout, then ServFail, then
// Truncate — against one uniform draw per logical query, so
// Timeout+ServFail+Truncate <= 1 partitions queries into disjoint fault
// classes and the remainder passes through untouched.
//
// Decisions are a pure hash of (Seed, server, name, qtype): the same
// logical query faults identically no matter when it is asked, how many
// workers race to ask it, or how many times a retry loop re-asks it.
// That makes fault scenarios reproducible — rerunning a crawl with the
// same seed injects exactly the same faults — and schedule-invariant,
// like the rest of the survey engine.
type FaultModel struct {
	// Seed selects the fault universe; equal seeds fault identically.
	Seed int64
	// Timeout is the probability a query is dropped with
	// ErrInjectedTimeout.
	Timeout float64
	// ServFail is the probability a query is answered with SERVFAIL.
	ServFail float64
	// Truncate is the probability a (successful) response comes back
	// with the truncation flag set.
	Truncate float64
}

// draw maps one logical query to a uniform float in [0, 1).
func (m FaultModel) draw(server netip.Addr, name string, qtype dnswire.Type) float64 {
	// FNV-1a over the seed and the query identity, finished with a
	// 64-bit mix so nearby seeds decorrelate.
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(m.Seed) >> (8 * i)))
	}
	for _, b := range server.As16() {
		mix(b)
	}
	for i := 0; i < len(name); i++ {
		mix(name[i])
	}
	mix(byte(qtype))
	mix(byte(qtype >> 8))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

// Fault returns middleware that injects the model's faults into the
// query stream. Injected SERVFAILs are synthesized without consulting
// the inner source (the "server" answered, uselessly); injected
// timeouts never reach it (the "server" never answered); truncation
// flags the inner source's real response.
func Fault(m FaultModel) Middleware {
	return func(next Source) Source {
		return layer{inner: next, query: func(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p := m.draw(server, name, qtype)
			if p < m.Timeout {
				return nil, fmt.Errorf("%w: %v refused to answer %s", ErrInjectedTimeout, server, name)
			}
			p -= m.Timeout
			if p < m.ServFail {
				resp := dnswire.NewQuery(1, name, qtype, class).Reply()
				resp.RCode = dnswire.RCodeServFail
				return resp, nil
			}
			p -= m.ServFail
			resp, err := next.Query(ctx, server, name, qtype, class)
			if err != nil {
				return nil, err
			}
			if p < m.Truncate {
				tc := *resp
				tc.Truncated = true
				return &tc, nil
			}
			return resp, nil
		}}
	}
}
