// Package transport is the composable query boundary of the survey: one
// Source interface that every "Internet" the crawler can talk to hides
// behind, plus a middleware chain that layers crosscutting behaviour —
// pacing, tracing, simulated latency, fault injection, recording — over
// any of them.
//
// Four terminal sources cover the spectrum of worlds a crawl can run
// against:
//
//   - Direct serves queries in memory from an Authority (the synthetic
//     topology registry) with the exact response semantics of the
//     network server.
//   - Live speaks real UDP/TCP through dnsclient, so a crawl of the
//     actual Internet is just another source.
//   - Replay serves a crawl entirely from a recorded query log through
//     the wire codec — the offline "crawl from a recording" mode.
//   - Fault (a middleware, composable over any of the above) injects
//     deterministic, seeded timeouts/SERVFAILs/truncation for scenario
//     stress.
//
// Which Internet a crawl sees is then a one-line composition:
//
//	src := transport.Chain(transport.Direct(reg),
//	    transport.RateLimit(rates),
//	    transport.Trace(fn),
//	    transport.Latency(transport.FixedRTT(200*time.Microsecond)),
//	    transport.Fault(model),
//	    transport.Record(log),
//	)
//
// Middleware listed first is outermost: a query passes through the chain
// in the order written before reaching the terminal source.
package transport

import (
	"context"
	"net/netip"

	"dnstrust/internal/dnswire"
)

// Queryer is the minimal query surface — the same single method as
// resolver.Transport, restated here so the two packages need not import
// each other. Any resolver.Transport is a Queryer and vice versa.
type Queryer interface {
	Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error)
}

// Source is the composable transport boundary: a Queryer that can also
// be shut down. Close releases whatever the source holds — sockets for
// live crawls, nothing for in-memory ones — and flushes stateful
// middleware; closing a chain closes through to the terminal.
//
// Every Source is a valid resolver.Transport.
type Source interface {
	Queryer
	Close() error
}

// Middleware wraps a Source with one crosscutting behaviour. The
// returned Source must forward Close to the wrapped one.
type Middleware func(Source) Source

// Chain composes middleware over a terminal source. The middleware
// listed first is outermost: a query passes through mws in the order
// given before reaching src.
func Chain(src Source, mws ...Middleware) Source {
	for i := len(mws) - 1; i >= 0; i-- {
		src = mws[i](src)
	}
	return src
}

// QueryFunc is the signature of one query hop, used by middleware
// implementations.
type queryFunc func(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error)

// layer is the common middleware shape: a query function over an inner
// source, forwarding Close.
type layer struct {
	inner Source
	query queryFunc
}

func (l layer) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	return l.query(ctx, server, name, qtype, class)
}

func (l layer) Close() error { return l.inner.Close() }

// From adapts any plain Queryer (e.g. a resolver.Transport test fake, or
// topology.Live) into a Source. If q already is a Source it is returned
// unchanged; otherwise Close forwards to q's own Close method when it
// has one (with or without an error return) and is a no-op when it does
// not.
func From(q Queryer) Source {
	if s, ok := q.(Source); ok {
		return s
	}
	return adapted{q}
}

type adapted struct{ q Queryer }

func (a adapted) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	return a.q.Query(ctx, server, name, qtype, class)
}

func (a adapted) Close() error {
	switch c := a.q.(type) {
	case interface{ Close() error }:
		return c.Close()
	case interface{ Close() }:
		c.Close()
	}
	return nil
}

// zoneKey carries the queried zone apex through the context, so pacing
// middleware deep in a chain can apply per-zone etiquette without the
// query signature knowing about zones.
type zoneKey struct{}

// WithZone annotates ctx with the apex of the zone the queried servers
// act for ("" is the root). The resolver and walker tag every query they
// issue; RateLimit reads the tag to select per-zone rate overrides.
func WithZone(ctx context.Context, apex string) context.Context {
	return context.WithValue(ctx, zoneKey{}, apex)
}

// ZoneFromContext reports the zone apex a query is addressed to, when
// the issuer tagged it with WithZone.
func ZoneFromContext(ctx context.Context) (string, bool) {
	apex, ok := ctx.Value(zoneKey{}).(string)
	return apex, ok
}

// VersionBind probes a server's version.bind banner through any query
// surface, returning "" when the server hides it (REFUSED or empty
// answers) — the survey's optimistic treatment of hidden servers.
func VersionBind(ctx context.Context, q Queryer, server netip.Addr) (string, error) {
	resp, err := q.Query(ctx, server, "version.bind", dnswire.TypeTXT, dnswire.ClassCHAOS)
	if err != nil {
		return "", err
	}
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
		return "", nil
	}
	if txt, ok := resp.Answers[0].Data.(dnswire.TXT); ok && len(txt.Text) > 0 {
		return txt.Text[0], nil
	}
	return "", nil
}
