package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"dnstrust/internal/atomicio"
	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
)

// ErrNotRecorded is returned by a strict Replay source for a query the
// log has no answer to.
var ErrNotRecorded = errors.New("transport: query not in recorded log")

// Log is a recorded query log: every successful exchange a Record
// middleware observed, keyed by (name, qtype, class), storing responses
// as packed wire messages. A saved log is byte-stable — sorted records,
// response IDs normalized to zero — so two recordings of the same
// corpus are byte-identical and diffable, and a log is all a Replay
// source needs to serve an entire crawl offline.
//
// Record granularity follows the survey's query model, which is what
// makes byte-stability possible at all:
//
//   - INET records are server-agnostic. The walker's answer to a
//     logical (name, qtype) question is a deterministic function of the
//     question — its answering zone is fixed by the descent pattern —
//     but *which server of that zone* happens to be asked varies with
//     the worker schedule, so keying by server would make recordings
//     schedule-dependent.
//   - Non-INET records (CHAOS version.bind probes) are keyed per
//     server: banners genuinely differ per box, and the probe set
//     (every discovered host at its fixed address) is
//     schedule-invariant.
//
// A transient SERVFAIL/REFUSED from one server never shadows the real
// answer: a later successful recording of the same question replaces a
// failed fallback, mirroring the walker's own retry-past-failures
// dispatch.
//
// Load also accepts the walker's query-memo file format
// (resolver.SaveMemo): memo entries carry no server or class, so they
// load as server-agnostic INET records.
//
// The (name, qtype) keying matches the Walker's descent, which asks
// each question of exactly one zone. Plain Resolver.Resolve traffic is
// outside this model — it re-asks the same (name, qtype) at every
// delegation hop, so its recordings are not replayable.
//
// A Log is safe for concurrent use.
type Log struct {
	mu sync.RWMutex
	m  map[logKey]*logEntry
}

type logKey struct {
	name  string
	qtype dnswire.Type
	class dnswire.Class
}

// logEntry holds the packed responses recorded for one question:
// per-server exact answers (CHAOS version.bind banners differ per box)
// plus one server-agnostic fallback (the first recording, or a memo
// import). wildBad marks a fallback whose RCode was a server failure —
// a later successful answer replaces it, so a transient SERVFAIL from
// the first-tried server cannot shadow the real answer the retry found.
type logEntry struct {
	byServer map[netip.Addr][]byte
	wild     []byte
	wildBad  bool
}

// badRCode reports whether a response is the kind the walker's dispatch
// retries past (the server answered, uselessly).
func badRCode(rc dnswire.RCode) bool {
	return rc == dnswire.RCodeServFail || rc == dnswire.RCodeRefused
}

// NewLog returns an empty query log.
func NewLog() *Log {
	return &Log{m: make(map[logKey]*logEntry)}
}

// Len reports how many distinct questions the log has answers for.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.m)
}

// record stores resp for the exchange. Every class keeps a per-server
// exact recording: the same INET question gets different answers at
// different delegation levels (the root refers a leaf query to the TLD,
// the TLD to the zone), so an iterative resolver replaying a log needs
// the per-server answer, and CHAOS version.bind banners differ per box.
// INET additionally keeps a server-agnostic fallback — the first
// recording — so a replay whose retry schedule lands on a server the
// recording never asked still gets the deterministic answer to the
// question. Responses are packed with the ID normalized to zero so
// recorded logs are byte-stable across runs regardless of the client's
// ID sequence.
func (l *Log) record(server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class, resp *dnswire.Message) {
	norm := *resp
	norm.ID = 0
	pkt, err := norm.Pack()
	if err != nil {
		// An unpackable answer (synthetic transports can carry them) is
		// simply not recorded; a replay of this log misses it.
		return
	}
	key := logKey{name: dnsname.Canonical(name), qtype: qtype, class: class}
	l.mu.Lock()
	e := l.m[key]
	if e == nil {
		e = &logEntry{byServer: make(map[netip.Addr][]byte)}
		l.m[key] = e
	}
	// A bad INET RCode is schedule noise (the retry against another
	// server finds the real answer) — keep it out of the per-server
	// map so it cannot shadow that answer on replay.
	if _, ok := e.byServer[server]; !ok && !(class == dnswire.ClassINET && badRCode(resp.RCode)) {
		e.byServer[server] = pkt
	}
	if class == dnswire.ClassINET {
		if e.wild == nil || (e.wildBad && !badRCode(resp.RCode)) {
			e.wild = pkt
			e.wildBad = badRCode(resp.RCode)
		}
	}
	l.mu.Unlock()
}

// lookup returns the packed response for a query: the exact
// (server, question) recording when present, the server-agnostic
// fallback otherwise.
func (l *Log) lookup(server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) ([]byte, bool) {
	key := logKey{name: dnsname.Canonical(name), qtype: qtype, class: class}
	l.mu.RLock()
	defer l.mu.RUnlock()
	e, ok := l.m[key]
	if !ok {
		return nil, false
	}
	if pkt, ok := e.byServer[server]; ok {
		return pkt, true
	}
	if e.wild != nil {
		return e.wild, true
	}
	return nil, false
}

// Log file format (little-endian), one record per recorded exchange:
//
//	u8 addrLen | addr bytes (0 = server-agnostic) | u16 nameLen | name |
//	u16 qtype | u16 class | u32 msgLen | packed DNS message
var logMagic = []byte("DNSQLOG1\n")

// memoMagic mirrors resolver.SaveMemo's header so a walker memo file
// loads as a replayable log.
var memoMagic = []byte("DNSQMEMO1\n")

// Save writes the log to dst in deterministic order — records sorted by
// (name, qtype, class, server) — and returns how many records were
// written. Equal logs serialize byte-identically, so recordings of the
// same corpus are diffable.
func (l *Log) Save(dst io.Writer) (int, error) {
	type rec struct {
		key  logKey
		addr netip.Addr // zero value = server-agnostic
		wild bool
		pkt  []byte
	}
	l.mu.RLock()
	var recs []rec
	for key, e := range l.m {
		for a, pkt := range e.byServer {
			recs = append(recs, rec{key: key, addr: a, pkt: pkt})
		}
		if e.wild != nil {
			recs = append(recs, rec{key: key, wild: true, pkt: e.wild})
		}
	}
	l.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.key.name != b.key.name {
			return a.key.name < b.key.name
		}
		if a.key.qtype != b.key.qtype {
			return a.key.qtype < b.key.qtype
		}
		if a.key.class != b.key.class {
			return a.key.class < b.key.class
		}
		if a.wild != b.wild {
			return a.wild // server-agnostic records sort first
		}
		return a.addr.Less(b.addr)
	})

	bw := bufio.NewWriter(dst)
	if _, err := bw.Write(logMagic); err != nil {
		return 0, err
	}
	n := 0
	var hdr [10]byte
	for _, r := range recs {
		if len(r.key.name) > 0xffff || len(r.pkt) > 0xffff {
			continue
		}
		var addr []byte
		if !r.wild {
			b := r.addr.As16()
			addr = b[:]
		}
		if err := bw.WriteByte(byte(len(addr))); err != nil {
			return n, err
		}
		if _, err := bw.Write(addr); err != nil {
			return n, err
		}
		binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(r.key.name)))
		binary.LittleEndian.PutUint16(hdr[2:4], uint16(r.key.qtype))
		binary.LittleEndian.PutUint16(hdr[4:6], uint16(r.key.class))
		binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(r.pkt)))
		if _, err := bw.Write(hdr[0:2]); err != nil {
			return n, err
		}
		if _, err := bw.WriteString(r.key.name); err != nil {
			return n, err
		}
		if _, err := bw.Write(hdr[2:10]); err != nil {
			return n, err
		}
		if _, err := bw.Write(r.pkt); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// SaveFile writes the log to path, returning how many records were
// written. It is the one shared persistence path for every tool that
// keeps recordings (dnssurvey -record, dnsmonitord). The write is
// atomic (tmp+fsync+rename via atomicio): a crash or SIGTERM mid-save
// leaves the previous recording intact, never a partial log that still
// parses up to the truncation point.
func (l *Log) SaveFile(path string) (int, error) {
	n := 0
	_, err := atomicio.WriteFile(path, func(w io.Writer) error {
		var serr error
		n, serr = l.Save(w)
		return serr
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// LoadFile reads a query-log (or walker memo) file into the log,
// returning how many records were read.
func (l *Log) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return l.Load(f)
}

// Load reads records from src — either the native log format or a
// walker query-memo file — and merges them into the log, returning how
// many records were read. Existing entries win over loaded ones.
func (l *Log) Load(src io.Reader) (int, error) {
	br := bufio.NewReader(src)
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("transport: log header: %w", err)
	}
	switch string(magic) {
	case string(logMagic):
		return l.loadNative(br)
	case string(memoMagic):
		return l.loadMemo(br)
	default:
		return 0, fmt.Errorf("transport: not a query log or memo file")
	}
}

func (l *Log) loadNative(br *bufio.Reader) (int, error) {
	loaded := 0
	var hdr [10]byte
	for {
		addrLen, err := br.ReadByte()
		if err != nil {
			if err == io.EOF {
				return loaded, nil
			}
			return loaded, fmt.Errorf("transport: log record: %w", err)
		}
		var addr netip.Addr
		wild := addrLen == 0
		if !wild {
			if addrLen != 16 {
				return loaded, fmt.Errorf("transport: log record: bad address length %d", addrLen)
			}
			var ab [16]byte
			if _, err := io.ReadFull(br, ab[:]); err != nil {
				return loaded, fmt.Errorf("transport: log record: %w", err)
			}
			addr = netip.AddrFrom16(ab).Unmap()
		}
		if _, err := io.ReadFull(br, hdr[0:2]); err != nil {
			return loaded, fmt.Errorf("transport: log record: %w", err)
		}
		name := make([]byte, binary.LittleEndian.Uint16(hdr[0:2]))
		if _, err := io.ReadFull(br, name); err != nil {
			return loaded, fmt.Errorf("transport: log record: %w", err)
		}
		if _, err := io.ReadFull(br, hdr[2:10]); err != nil {
			return loaded, fmt.Errorf("transport: log record: %w", err)
		}
		qtype := dnswire.Type(binary.LittleEndian.Uint16(hdr[2:4]))
		class := dnswire.Class(binary.LittleEndian.Uint16(hdr[4:6]))
		msgLen := binary.LittleEndian.Uint32(hdr[6:10])
		if msgLen > 0xffff {
			return loaded, fmt.Errorf("transport: log message for %q: implausible length %d", name, msgLen)
		}
		pkt := make([]byte, msgLen)
		if _, err := io.ReadFull(br, pkt); err != nil {
			return loaded, fmt.Errorf("transport: log record: %w", err)
		}
		msg, err := dnswire.Unpack(pkt)
		if err != nil {
			return loaded, fmt.Errorf("transport: log message for %q: %w", name, err)
		}
		l.install(logKey{name: string(name), qtype: qtype, class: class}, addr, wild, pkt, badRCode(msg.RCode))
		loaded++
	}
}

// loadMemo reads resolver.SaveMemo records: (name, qtype) keyed packed
// messages, installed as server-agnostic INET answers.
func (l *Log) loadMemo(br *bufio.Reader) (int, error) {
	loaded := 0
	var hdr [6]byte
	for {
		if _, err := io.ReadFull(br, hdr[0:2]); err != nil {
			if err == io.EOF {
				return loaded, nil
			}
			return loaded, fmt.Errorf("transport: memo record: %w", err)
		}
		name := make([]byte, binary.LittleEndian.Uint16(hdr[0:2]))
		if _, err := io.ReadFull(br, name); err != nil {
			return loaded, fmt.Errorf("transport: memo record: %w", err)
		}
		if _, err := io.ReadFull(br, hdr[0:6]); err != nil {
			return loaded, fmt.Errorf("transport: memo record: %w", err)
		}
		qtype := dnswire.Type(binary.LittleEndian.Uint16(hdr[0:2]))
		msgLen := binary.LittleEndian.Uint32(hdr[2:6])
		if msgLen > 0xffff {
			return loaded, fmt.Errorf("transport: memo message for %q: implausible length %d", name, msgLen)
		}
		pkt := make([]byte, msgLen)
		if _, err := io.ReadFull(br, pkt); err != nil {
			return loaded, fmt.Errorf("transport: memo record: %w", err)
		}
		msg, err := dnswire.Unpack(pkt)
		if err != nil {
			return loaded, fmt.Errorf("transport: memo message for %q: %w", name, err)
		}
		l.install(logKey{name: string(name), qtype: qtype, class: dnswire.ClassINET}, netip.Addr{}, true, pkt, badRCode(msg.RCode))
		loaded++
	}
}

// install merges one loaded record. Unlike live recording, a loaded
// per-server record does not double as the server-agnostic fallback:
// files round-trip exactly (Save∘Load∘Save is the identity on bytes).
func (l *Log) install(key logKey, addr netip.Addr, wild bool, pkt []byte, bad bool) {
	l.mu.Lock()
	e := l.m[key]
	if e == nil {
		e = &logEntry{byServer: make(map[netip.Addr][]byte)}
		l.m[key] = e
	}
	if wild {
		if e.wild == nil {
			e.wild = pkt
			e.wildBad = bad
		}
	} else if _, ok := e.byServer[addr]; !ok {
		e.byServer[addr] = pkt
	}
	l.mu.Unlock()
}

// Record returns middleware that records every successful exchange
// passing through it into log. Errors (timeouts, unreachable servers)
// are not recorded: a replayed crawl re-discovers them as log misses,
// which fail the same retry paths.
func Record(log *Log) Middleware {
	return func(next Source) Source {
		return layer{inner: next, query: func(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
			resp, err := next.Query(ctx, server, name, qtype, class)
			if err == nil && resp != nil {
				log.record(server, name, qtype, class, resp)
			}
			return resp, err
		}}
	}
}

// Replay is the strict offline terminal source: every query is served
// from the recorded log through the wire codec (each answer is unpacked
// fresh, so callers share nothing), and a query the log cannot answer
// fails with ErrNotRecorded. A crawl that completes over a strict
// Replay source provably never touched any other Internet.
func Replay(log *Log) Source {
	return replaySource{log: log}
}

type replaySource struct{ log *Log }

func (r replaySource) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pkt, ok := r.log.lookup(server, name, qtype, class)
	if !ok {
		return nil, fmt.Errorf("%w: %s %v %v", ErrNotRecorded, name, qtype, class)
	}
	return dnswire.Unpack(pkt)
}

func (r replaySource) Close() error { return nil }

// ReplayThrough is the fallthrough replay source: queries the log can
// answer are served offline; misses delegate to inner and the delta is
// recorded back into the log, so the returned source converges toward a
// complete recording. Misses() counts the delegated queries — zero
// proves the log already covered the crawl.
func ReplayThrough(log *Log, inner Source) *FallthroughSource {
	return &FallthroughSource{log: log, inner: inner}
}

// FallthroughSource is the Source returned by ReplayThrough.
type FallthroughSource struct {
	log    *Log
	inner  Source
	misses atomic.Int64
}

// Misses reports how many queries fell through to the inner source.
func (f *FallthroughSource) Misses() int64 { return f.misses.Load() }

// Query implements Source.
func (f *FallthroughSource) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	if pkt, ok := f.log.lookup(server, name, qtype, class); ok {
		return dnswire.Unpack(pkt)
	}
	f.misses.Add(1)
	resp, err := f.inner.Query(ctx, server, name, qtype, class)
	if err == nil && resp != nil {
		f.log.record(server, name, qtype, class, resp)
	}
	return resp, err
}

// Close closes the inner source.
func (f *FallthroughSource) Close() error { return f.inner.Close() }
