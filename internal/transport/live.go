package transport

import (
	"context"
	"net/netip"

	"dnstrust/internal/dnsclient"
	"dnstrust/internal/dnswire"
)

// Live is the real-network terminal source: queries go over actual
// UDP/TCP sockets through dnsclient (retries, truncation fallback,
// response validation), addressed to server:port. A crawl of the real
// Internet — root hints supplied via dnstrust.Options.Roots — is then
// just another source composition; so is a crawl of topology.StartLive's
// loopback fleet (which carries its own address mapping and adapts via
// From).
//
// port 0 selects the standard DNS port 53. client nil selects a client
// with survey defaults.
func Live(client *dnsclient.Client, port uint16) Source {
	if client == nil {
		client = dnsclient.New(dnsclient.Config{})
	}
	if port == 0 {
		port = 53
	}
	return liveSource{client: client, port: port}
}

type liveSource struct {
	client *dnsclient.Client
	port   uint16
}

func (l liveSource) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	return l.client.Query(ctx, netip.AddrPortFrom(server, l.port).String(), name, qtype, class)
}

func (l liveSource) Close() error { return nil }
