package transport

import (
	"context"
	"net/netip"
	"sync/atomic"
	"time"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
)

// TraceFunc observes one transport query. Hooks must be safe for
// concurrent calls; the crawl's dedup tests use them to assert exactly
// which queries crossed the transport.
type TraceFunc func(server netip.Addr, name string, qtype dnswire.Type)

// Trace returns middleware that observes every query passing through it
// with fn, before forwarding.
func Trace(fn TraceFunc) Middleware {
	return func(next Source) Source {
		return layer{inner: next, query: func(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
			fn(server, name, qtype)
			return next.Query(ctx, server, name, qtype, class)
		}}
	}
}

// Counter counts the queries that pass through its middleware — the
// instrument behind every "zero transport queries" assertion. Place it
// directly above the source whose traffic you want to measure.
type Counter struct {
	n atomic.Int64
}

// NewCounter returns a fresh query counter.
func NewCounter() *Counter { return &Counter{} }

// Queries reports how many queries have passed through.
func (c *Counter) Queries() int64 { return c.n.Load() }

// Middleware returns the counting middleware.
func (c *Counter) Middleware() Middleware {
	return func(next Source) Source {
		return layer{inner: next, query: func(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
			c.n.Add(1)
			return next.Query(ctx, server, name, qtype, class)
		}}
	}
}

// LatencyModel maps a queried server to one simulated round-trip time.
type LatencyModel func(server netip.Addr) time.Duration

// FixedRTT is the uniform latency model: every server is rtt away.
func FixedRTT(rtt time.Duration) LatencyModel {
	return func(netip.Addr) time.Duration { return rtt }
}

// Latency returns middleware that delays every query by the model's
// round-trip time for the queried server. Real surveys are network-bound
// — the paper's crawl of 593k names took days of wall-clock, dominated
// by RTTs — so this is the honest substrate for measuring how crawl
// throughput scales with the worker pool: workers overlap round-trips
// exactly as a live crawl's would, independent of host core count.
func Latency(model LatencyModel) Middleware {
	return func(next Source) Source {
		return layer{inner: next, query: func(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
			if rtt := model(server); rtt > 0 {
				timer := time.NewTimer(rtt)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return nil, ctx.Err()
				}
			}
			return next.Query(ctx, server, name, qtype, class)
		}}
	}
}

// WireFramed returns middleware that round-trips every message through
// the full wire codec (pack + unpack on both directions), exercising the
// identical byte path a network crawl would see without socket overhead.
// Used by the transport ablation and Options.WireFramed.
func WireFramed() Middleware {
	return func(next Source) Source {
		return layer{inner: next, query: func(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
			req := dnswire.NewQuery(1, dnsname.Canonical(name), qtype, class)
			pkt, err := req.Pack()
			if err != nil {
				return nil, err
			}
			reqBack, err := dnswire.Unpack(pkt)
			if err != nil {
				return nil, err
			}
			q := reqBack.Questions[0]
			resp, err := next.Query(ctx, server, q.Name, q.Type, q.Class)
			if err != nil {
				return nil, err
			}
			out, err := resp.Pack()
			if err != nil {
				return nil, err
			}
			return dnswire.Unpack(out)
		}}
	}
}
