package transport

import (
	"bytes"
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnstrust/internal/dnswire"
)

// queryCounter is a minimal terminal fake: it counts queries and
// answers each with an authoritative empty success.
type queryCounter struct{ n *int }

func (q queryCounter) Query(_ context.Context, _ netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	*q.n++
	resp := dnswire.NewQuery(1, name, qtype, class).Reply()
	resp.Authoritative = true
	return resp, nil
}

var testAddr = netip.MustParseAddr("192.0.2.1")

// TestChainOrder proves the documented composition order: middleware
// listed first is outermost, so a query passes through the chain in the
// order written.
func TestChainOrder(t *testing.T) {
	var order []string
	tag := func(label string) Middleware {
		return Trace(func(netip.Addr, string, dnswire.Type) {
			order = append(order, label)
		})
	}
	var served int
	src := Chain(From(queryCounter{&served}), tag("outer"), tag("middle"), tag("inner"))
	if _, err := src.Query(context.Background(), testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatal(err)
	}
	want := []string{"outer", "middle", "inner"}
	for i, l := range want {
		if i >= len(order) || order[i] != l {
			t.Fatalf("traversal order = %v, want %v", order, want)
		}
	}
	if served != 1 {
		t.Fatalf("terminal served %d queries, want 1", served)
	}
}

// TestFromCloseForwarding: From adapts both Close() error and Close()
// shapes, and a chain's Close reaches the terminal.
func TestFromCloseForwarding(t *testing.T) {
	closed := 0
	src := Chain(From(&closerFake{n: &closed}), Trace(func(netip.Addr, string, dnswire.Type) {}))
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if closed != 1 {
		t.Fatalf("terminal closed %d times, want 1", closed)
	}
}

type closerFake struct{ n *int }

func (c *closerFake) Query(context.Context, netip.Addr, string, dnswire.Type, dnswire.Class) (*dnswire.Message, error) {
	return nil, errors.New("unused")
}

func (c *closerFake) Close() { *c.n++ }

// TestFaultDeterminism: fault decisions are a pure hash of
// (seed, server, name, qtype) — identical across repeated asks and
// changed by the seed.
func TestFaultDeterminism(t *testing.T) {
	model := FaultModel{Seed: 42, Timeout: 0.5}
	var served int
	src := Chain(From(queryCounter{&served}), Fault(model))
	ctx := context.Background()

	outcome := func(src Source, name string) bool {
		_, err := src.Query(ctx, testAddr, name, dnswire.TypeA, dnswire.ClassINET)
		if err != nil && !errors.Is(err, ErrInjectedTimeout) {
			t.Fatalf("unexpected error: %v", err)
		}
		return err == nil
	}

	names := []string{"a.example", "b.example", "c.example", "d.example", "e.example", "f.example", "g.example", "h.example"}
	first := make([]bool, len(names))
	timeouts := 0
	for i, n := range names {
		first[i] = outcome(src, n)
		if !first[i] {
			timeouts++
		}
	}
	if timeouts == 0 || timeouts == len(names) {
		t.Fatalf("Timeout=0.5 faulted %d of %d queries; expected a mix", timeouts, len(names))
	}
	// Re-asking gives identical decisions (retry loops see a stable world).
	for i, n := range names {
		if outcome(src, n) != first[i] {
			t.Fatalf("fault decision for %s changed between asks", n)
		}
	}
	// A different seed gives a different fault universe.
	other := Chain(From(queryCounter{&served}), Fault(FaultModel{Seed: 43, Timeout: 0.5}))
	same := true
	for i, n := range names {
		if outcome(other, n) != first[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 faulted identically across all probes")
	}
}

// TestFaultServFailAndTruncate covers the non-timeout fault classes.
func TestFaultServFailAndTruncate(t *testing.T) {
	ctx := context.Background()
	var served int
	servfail := Chain(From(queryCounter{&served}), Fault(FaultModel{Seed: 7, ServFail: 1}))
	resp, err := servfail.Query(ctx, testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET)
	if err != nil || resp.RCode != dnswire.RCodeServFail {
		t.Fatalf("ServFail=1 gave %v, %v; want SERVFAIL", resp, err)
	}
	if served != 0 {
		t.Fatalf("injected SERVFAIL consulted the inner source %d times", served)
	}

	trunc := Chain(From(queryCounter{&served}), Fault(FaultModel{Seed: 7, Truncate: 1}))
	resp, err = trunc.Query(ctx, testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET)
	if err != nil || !resp.Truncated {
		t.Fatalf("Truncate=1 gave truncated=%v, %v", resp != nil && resp.Truncated, err)
	}
	if served != 1 {
		t.Fatalf("truncation must flag the real response (served=%d)", served)
	}
}

// TestLogRecordReplay: a recorded exchange replays through the codec;
// unrecorded queries fail strict replay with ErrNotRecorded and fall
// through (once) in fallthrough mode.
func TestLogRecordReplay(t *testing.T) {
	ctx := context.Background()
	log := NewLog()
	var served int
	rec := Chain(From(queryCounter{&served}), Record(log))
	if _, err := rec.Query(ctx, testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatal(err)
	}
	if log.Len() != 1 {
		t.Fatalf("log has %d entries, want 1", log.Len())
	}

	strict := Replay(log)
	resp, err := strict.Query(ctx, testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET)
	if err != nil || !resp.Authoritative {
		t.Fatalf("replayed query = %v, %v", resp, err)
	}
	// A different server still answers (server-agnostic fallback).
	if _, err := strict.Query(ctx, netip.MustParseAddr("192.0.2.99"), "x.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatalf("wildcard replay failed: %v", err)
	}
	if _, err := strict.Query(ctx, testAddr, "miss.example", dnswire.TypeA, dnswire.ClassINET); !errors.Is(err, ErrNotRecorded) {
		t.Fatalf("strict miss = %v, want ErrNotRecorded", err)
	}

	served = 0
	ft := ReplayThrough(log, From(queryCounter{&served}))
	if _, err := ft.Query(ctx, testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatal(err)
	}
	if served != 0 || ft.Misses() != 0 {
		t.Fatalf("recorded query fell through (served=%d misses=%d)", served, ft.Misses())
	}
	if _, err := ft.Query(ctx, testAddr, "miss.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatal(err)
	}
	if served != 1 || ft.Misses() != 1 {
		t.Fatalf("miss not delegated exactly once (served=%d misses=%d)", served, ft.Misses())
	}
	// The delta was recorded: asking again stays offline.
	if _, err := ft.Query(ctx, testAddr, "miss.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatal(err)
	}
	if served != 1 {
		t.Fatalf("recorded delta fell through again (served=%d)", served)
	}
}

// TestLogSuccessReplacesRecordedServFail: when the first-tried server
// answers SERVFAIL and the retry finds the real answer, the log must
// keep the success — otherwise a replayed crawl would see SERVFAIL from
// every server and fail a walk the recorded crawl completed.
func TestLogSuccessReplacesRecordedServFail(t *testing.T) {
	ctx := context.Background()
	log := NewLog()
	var served int
	// Record sits above Fault (as OpenWorld composes it), so it observes
	// the injected SERVFAIL.
	servfail := Chain(From(queryCounter{&served}), Record(log), Fault(FaultModel{Seed: 7, ServFail: 1}))
	if _, err := servfail.Query(ctx, testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatal(err)
	}
	// The retry against another server succeeds and must win.
	ok := Chain(From(queryCounter{&served}), Record(log))
	if _, err := ok.Query(ctx, netip.MustParseAddr("192.0.2.2"), "x.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatal(err)
	}
	resp, err := Replay(log).Query(ctx, testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeSuccess {
		t.Fatalf("replayed RCode = %v, want the successful retry's answer", resp.RCode)
	}
	// The reverse direction: a later SERVFAIL must not displace success.
	if _, err := servfail.Query(ctx, testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatal(err)
	}
	resp, err = Replay(log).Query(ctx, testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET)
	if err != nil || resp.RCode != dnswire.RCodeSuccess {
		t.Fatalf("success displaced by a later SERVFAIL (%v, %v)", resp, err)
	}
}

// bannerSource answers CHAOS version.bind with a per-server banner.
type bannerSource struct{}

func (bannerSource) Query(_ context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	resp := dnswire.NewQuery(1, name, qtype, class).Reply()
	resp.Authoritative = true
	resp.Answers = []dnswire.RR{{
		Name: name, Class: class,
		Data: dnswire.TXT{Text: []string{"BIND on " + server.String()}},
	}}
	return resp, nil
}

// TestLogRecordsChaosPerServer: version.bind banners differ per box, so
// CHAOS records key by server — each server replays its own banner and
// an unprobed server is a strict miss (read back as banner-hidden).
func TestLogRecordsChaosPerServer(t *testing.T) {
	ctx := context.Background()
	log := NewLog()
	rec := Chain(From(bannerSource{}), Record(log))
	a, b := testAddr, netip.MustParseAddr("192.0.2.2")
	for _, s := range []netip.Addr{a, b} {
		if _, err := VersionBind(ctx, rec, s); err != nil {
			t.Fatal(err)
		}
	}
	strict := Replay(log)
	for _, s := range []netip.Addr{a, b} {
		banner, err := VersionBind(ctx, strict, s)
		if err != nil {
			t.Fatal(err)
		}
		if want := "BIND on " + s.String(); banner != want {
			t.Fatalf("replayed banner for %v = %q, want %q", s, banner, want)
		}
	}
	if _, err := VersionBind(ctx, strict, netip.MustParseAddr("192.0.2.99")); !errors.Is(err, ErrNotRecorded) {
		t.Fatalf("unprobed server = %v, want ErrNotRecorded", err)
	}
}

// TestLogSaveLoadRoundTrip: Save∘Load preserves every record and
// re-saving yields byte-identical output (the diffability guarantee).
func TestLogSaveLoadRoundTrip(t *testing.T) {
	ctx := context.Background()
	log := NewLog()
	var served int
	rec := Chain(From(queryCounter{&served}), Record(log))
	servers := []netip.Addr{testAddr, netip.MustParseAddr("192.0.2.2")}
	for _, s := range servers {
		for _, name := range []string{"a.example", "b.example"} {
			if _, err := rec.Query(ctx, s, name, dnswire.TypeA, dnswire.ClassINET); err != nil {
				t.Fatal(err)
			}
		}
	}
	var buf1 bytes.Buffer
	n1, err := log.Save(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("nothing saved")
	}

	loaded := NewLog()
	ln, err := loaded.Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ln != n1 {
		t.Fatalf("loaded %d of %d records", ln, n1)
	}
	var buf2 bytes.Buffer
	if _, err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("Save∘Load∘Save is not byte-stable")
	}

	// The reloaded log replays the per-server and fallback paths.
	strict := Replay(loaded)
	if _, err := strict.Query(ctx, servers[1], "a.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatalf("reloaded replay failed: %v", err)
	}
	if _, err := strict.Query(ctx, netip.MustParseAddr("192.0.2.77"), "b.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatalf("reloaded wildcard replay failed: %v", err)
	}
}

// TestLatencyMiddleware: queries wait the model's RTT and honor
// cancellation mid-wait.
func TestLatencyMiddleware(t *testing.T) {
	var served int
	src := Chain(From(queryCounter{&served}), Latency(FixedRTT(5*time.Millisecond)))
	start := time.Now()
	if _, err := src.Query(context.Background(), testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("query returned after %v, want >= 5ms", d)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := src.Query(ctx, testAddr, "x.example", dnswire.TypeA, dnswire.ClassINET); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled latency wait = %v, want context.Canceled", err)
	}
}
