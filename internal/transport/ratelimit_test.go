package transport

import (
	"context"
	"net/netip"
	"testing"
	"time"
)

// fakeClock drives the rate limiter deterministically: sleep advances
// the clock instead of blocking, and every requested delay is recorded.
type fakeClock struct {
	t      time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) sleep(_ context.Context, d time.Duration) error {
	c.sleeps = append(c.sleeps, d)
	c.t = c.t.Add(d)
	return nil
}

func TestRateLimiterBurstThenPaced(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(10, 2, clk.now, clk.sleep) // 10 qps, burst 2
	addr := netip.MustParseAddr("192.0.2.1")
	ctx := context.Background()

	// The burst passes with no sleep.
	for i := 0; i < 2; i++ {
		if err := l.wait(ctx, addr, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(clk.sleeps) != 0 {
		t.Fatalf("burst slept: %v", clk.sleeps)
	}

	// Subsequent queries are paced at exactly 1/rate = 100ms apart.
	for i := 0; i < 3; i++ {
		if err := l.wait(ctx, addr, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(clk.sleeps) != 3 {
		t.Fatalf("paced queries slept %d times, want 3", len(clk.sleeps))
	}
	for i, d := range clk.sleeps {
		if d < 99*time.Millisecond || d > 101*time.Millisecond {
			t.Errorf("sleep %d = %v, want ~100ms", i, d)
		}
	}
}

func TestRateLimiterRefillsWhileIdle(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(10, 1, clk.now, clk.sleep)
	addr := netip.MustParseAddr("192.0.2.1")
	ctx := context.Background()

	if err := l.wait(ctx, addr, 0); err != nil {
		t.Fatal(err)
	}
	// Idle long enough to mature a fresh token: no sleep needed.
	clk.t = clk.t.Add(time.Second)
	if err := l.wait(ctx, addr, 0); err != nil {
		t.Fatal(err)
	}
	if len(clk.sleeps) != 0 {
		t.Fatalf("refilled bucket slept: %v", clk.sleeps)
	}
}

func TestRateLimiterPerServerIndependence(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(10, 1, clk.now, clk.sleep)
	ctx := context.Background()

	// Draining server A's bucket must not delay server B.
	a := netip.MustParseAddr("192.0.2.1")
	b := netip.MustParseAddr("192.0.2.2")
	if err := l.wait(ctx, a, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.wait(ctx, b, 0); err != nil {
		t.Fatal(err)
	}
	if len(clk.sleeps) != 0 {
		t.Fatalf("independent servers slept: %v", clk.sleeps)
	}
}

func TestRateLimiterBurstFloor(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(100, 0, clk.now, clk.sleep) // burst 0 -> 1
	addr := netip.MustParseAddr("192.0.2.1")
	if err := l.wait(context.Background(), addr, 0); err != nil {
		t.Fatal(err)
	}
	if len(clk.sleeps) != 0 {
		t.Fatal("first query must always pass immediately")
	}
}

// TestRateLimiterPerCallRate verifies the per-zone override mechanism at
// the bucket level: the same server paced under two different rates is
// granted tokens at whichever rate the current call carries.
func TestRateLimiterPerCallRate(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(1, 1, clk.now, clk.sleep) // default 1 qps
	addr := netip.MustParseAddr("192.0.2.1")
	ctx := context.Background()

	// Drain the burst, then pace at a 100 qps override: 10ms, not 1s.
	if err := l.wait(ctx, addr, 100); err != nil {
		t.Fatal(err)
	}
	if err := l.wait(ctx, addr, 100); err != nil {
		t.Fatal(err)
	}
	if len(clk.sleeps) != 1 || clk.sleeps[0] > 11*time.Millisecond {
		t.Fatalf("override-paced sleep = %v, want ~10ms", clk.sleeps)
	}

	// A later call at the default rate on the same bucket paces at 1s.
	clk.sleeps = nil
	if err := l.wait(ctx, addr, 0); err != nil {
		t.Fatal(err)
	}
	if len(clk.sleeps) != 1 || clk.sleeps[0] < 900*time.Millisecond {
		t.Fatalf("default-paced sleep = %v, want ~1s", clk.sleeps)
	}
}

func TestRateLimiterCancellation(t *testing.T) {
	clk := newFakeClock()
	cancelled := context.Canceled
	sleep := func(ctx context.Context, d time.Duration) error { return cancelled }
	l := newRateLimiter(1, 1, clk.now, sleep)
	addr := netip.MustParseAddr("192.0.2.1")
	ctx := context.Background()
	if err := l.wait(ctx, addr, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.wait(ctx, addr, 0); err != cancelled {
		t.Fatalf("paced wait under cancellation = %v, want context.Canceled", err)
	}
}

// TestRateLimitMiddlewareZoneTag checks the middleware end to end: a
// query tagged with a zone carrying a high override paces at that rate,
// an untagged or unlisted-zone query paces at the default, and a
// disabled-zone query is unpaced — all against one chain and fake clock.
func TestRateLimitMiddlewareZoneTag(t *testing.T) {
	clk := newFakeClock()
	var served int
	inner := From(queryCounter{&served})
	src := Chain(inner, RateLimit(RateConfig{
		QueriesPerSec:     1,
		ZoneQueriesPerSec: map[string]float64{"com": 500, "quiet.example": -1},
		Now:               clk.now,
		Sleep:             clk.sleep,
	}))
	bg := context.Background()
	q := func(ctx context.Context, ip string) {
		t.Helper()
		if _, err := src.Query(ctx, netip.MustParseAddr(ip), "x.example", 1, 1); err != nil {
			t.Fatal(err)
		}
	}

	// Zone "com" carries the 500 qps override: the second query to the
	// same box waits ~2ms instead of ~1s.
	q(WithZone(bg, "com"), "192.0.2.1")
	q(WithZone(bg, "com"), "192.0.2.1")
	if len(clk.sleeps) != 1 || clk.sleeps[0] > 3*time.Millisecond {
		t.Fatalf("com-paced sleeps = %v, want one ~2ms wait", clk.sleeps)
	}

	// An unlisted zone falls back to the 1 qps default.
	clk.sleeps = nil
	q(WithZone(bg, "example.net"), "192.0.2.2")
	q(WithZone(bg, "example.net"), "192.0.2.2")
	if len(clk.sleeps) != 1 || clk.sleeps[0] < 500*time.Millisecond {
		t.Fatalf("default-paced sleeps = %v, want one ~1s wait", clk.sleeps)
	}

	// A zone with a non-positive override is unpaced entirely.
	clk.sleeps = nil
	q(WithZone(bg, "quiet.example"), "192.0.2.3")
	q(WithZone(bg, "quiet.example"), "192.0.2.3")
	if len(clk.sleeps) != 0 {
		t.Fatalf("disabled-zone queries slept: %v", clk.sleeps)
	}

	// Untagged queries pace at the default too.
	clk.sleeps = nil
	q(bg, "192.0.2.4")
	q(bg, "192.0.2.4")
	if len(clk.sleeps) != 1 {
		t.Fatalf("untagged queries slept %d times, want 1", len(clk.sleeps))
	}

	if served != 8 {
		t.Fatalf("inner source served %d queries, want 8", served)
	}
}
