// Package delta computes typed trust deltas between two survey
// generations — the longitudinal measurement the paper's warning calls
// for: transitive trust *drifts*, a name's TCB grows silently as
// delegations change, and nobody notices until the added dependency is
// the one that gets hijacked. A Delta answers "what changed, and did my
// trust surface grow?" between any two Views.
//
// Two computation paths produce identical results:
//
//   - Same-store (incremental): generations committed by one Monitor
//     share a copy-on-write epoch store, so chain ids are stable and
//     every chain carries the epoch its dependency structure last
//     changed. The diff reads the builder's per-epoch change journal and
//     the chain stamps — identical chains diff to nothing in O(1), and a
//     small Add diffs a million-name survey by examining only the
//     touched names and late-changed chains.
//
//   - Foreign (by name): generations from unrelated crawls — two
//     recorded query logs replayed at different times, say — share no
//     intern space, so the diff compares name by name and zone by zone.
//     This is also where zombie dependencies surface: hosts still in
//     some name's TCB whose delegation was removed, or that stopped
//     answering, between the recordings.
package delta

import (
	"context"
	"sort"
	"strings"

	"dnstrust/internal/analysis"
	"dnstrust/internal/core"
	"dnstrust/internal/crawler"
	"dnstrust/internal/mincut"
)

// Delta is the typed trust drift between two survey generations. All
// slices are sorted (by name, apex, or host) and nil when empty.
//
//lint:immutable
type Delta struct {
	// FromGen and ToGen identify the compared generations.
	FromGen int64 `json:"from_gen"`
	ToGen   int64 `json:"to_gen"`

	// NamesAdded lists names surveyed in the newer generation only;
	// NamesRemoved lists names that vanished (including names whose walk
	// failed in the newer generation).
	NamesAdded   []string `json:"names_added,omitempty"`
	NamesRemoved []string `json:"names_removed,omitempty"`

	// Changed lists names present in both generations whose trust
	// surface moved: TCB members added or removed, the delegation chain
	// itself re-routed, or the min-cut bottleneck reshaped.
	Changed []NameChange `json:"changed,omitempty"`

	// ZonesAdded and ZonesRemoved list zone apexes present in only one
	// generation's dependency graph.
	ZonesAdded   []string `json:"zones_added,omitempty"`
	ZonesRemoved []string `json:"zones_removed,omitempty"`
	// ZoneChanges lists zones present in both generations whose NS host
	// set changed. Within one monitored session zone cuts are
	// first-observation-wins immutable, so these surface only when
	// diffing independent crawls (DiffLogs).
	ZoneChanges []ZoneChange `json:"zone_changes,omitempty"`

	// ChainsAdded and ChainsRemoved count distinct delegation chains (by
	// zone content) that became, or ceased to be, in use by any surveyed
	// name between the generations.
	ChainsAdded   int `json:"chains_added,omitempty"`
	ChainsRemoved int `json:"chains_removed,omitempty"`

	// Zombies lists stale dependencies in the newer generation: hosts
	// still inside at least one name's TCB whose delegation was removed,
	// or that stopped answering, since the older generation — the
	// dominant real-world failure mode the longitudinal methodology
	// exists to catch.
	Zombies []Zombie `json:"zombies,omitempty"`

	// Compared counts the distinct names surveyed in either generation —
	// the population the delta actually covers. Names that resolved in
	// neither generation (e.g. corpus entries missing from both replayed
	// recordings) are invisible to a diff; callers comparing against an
	// intended corpus size should check this.
	Compared int `json:"compared"`
}

// NameChange describes how one name's trust surface moved.
type NameChange struct {
	Name string `json:"name"`
	// ChainChanged reports that the delegation chain itself re-routed
	// (a different zone sequence, not just different servers).
	ChainChanged bool `json:"chain_changed,omitempty"`
	// TCBAdded and TCBRemoved list the hosts that entered or left the
	// name's trusted computing base, sorted.
	TCBAdded   []string `json:"tcb_added,omitempty"`
	TCBRemoved []string `json:"tcb_removed,omitempty"`
	// OldTCB and NewTCB are the TCB sizes in each generation.
	OldTCB int `json:"old_tcb"`
	NewTCB int `json:"new_tcb"`
	// OldCut/NewCut are the §3.2 min-cut bottleneck widths, and
	// OldSafe/NewSafe the non-vulnerable server counts in the Figure 7
	// cut; -1 when the cut is not computable (empty delegation chain).
	OldCut  int `json:"old_cut"`
	NewCut  int `json:"new_cut"`
	OldSafe int `json:"old_safe"`
	NewSafe int `json:"new_safe"`
}

// Growth returns the TCB size change (positive = the trust surface
// grew).
func (c NameChange) Growth() int { return c.NewTCB - c.OldTCB }

// ZoneChange describes a zone whose NS host set changed between two
// independent crawls.
type ZoneChange struct {
	Apex      string   `json:"apex"`
	NSAdded   []string `json:"ns_added,omitempty"`
	NSRemoved []string `json:"ns_removed,omitempty"`
}

// ZombieKind classifies why a still-trusted dependency is stale.
type ZombieKind uint8

const (
	// DelegationRemoved: the host was dropped from at least one zone's
	// NS set, yet another delegation still routes trust through it.
	DelegationRemoved ZombieKind = iota
	// StoppedAnswering: the host's own address chain resolved in the
	// older generation but not in the newer one.
	StoppedAnswering
)

func (k ZombieKind) String() string {
	switch k {
	case DelegationRemoved:
		return "delegation-removed"
	case StoppedAnswering:
		return "stopped-answering"
	}
	return "unknown"
}

// MarshalText implements encoding.TextMarshaler so JSON output carries
// the symbolic kind.
func (k ZombieKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Zombie is one stale dependency of the newer generation.
type Zombie struct {
	Host string     `json:"host"`
	Kind ZombieKind `json:"kind"`
	// Zones lists the zones that dropped the host from their NS set
	// (DelegationRemoved only), sorted.
	Zones []string `json:"zones,omitempty"`
	// Names counts the newer generation's surveyed names still carrying
	// the host in their TCB.
	Names int `json:"names"`
}

// Options tunes a Compute call.
type Options struct {
	// OldMemo/NewMemo, when non-nil, serve and feed per-chain min-cut
	// results for the respective generation (a Monitor passes its
	// cross-generation chain memo for both sides; DiffLogs passes each
	// replay's own). Results are identical with or without memos.
	OldMemo *analysis.ChainMemo
	NewMemo *analysis.ChainMemo
}

// Empty reports whether nothing changed between the generations.
func (d *Delta) Empty() bool {
	return len(d.NamesAdded) == 0 && len(d.NamesRemoved) == 0 &&
		len(d.Changed) == 0 && len(d.ZonesAdded) == 0 && len(d.ZonesRemoved) == 0 &&
		len(d.ZoneChanges) == 0 && d.ChainsAdded == 0 && d.ChainsRemoved == 0 &&
		len(d.Zombies) == 0
}

// Grew returns the changed names whose TCB grew by at least minGrowth
// hosts, preserving order (sorted by name).
func (d *Delta) Grew(minGrowth int) []NameChange {
	if minGrowth < 1 {
		minGrowth = 1
	}
	var out []NameChange
	for _, c := range d.Changed {
		if c.Growth() >= minGrowth {
			out = append(out, c)
		}
	}
	return out
}

// genOf stamps a survey's generation as the engine committed it (0 for
// the pre-crawl view and for synthetic/batch-built surveys — the graph
// epoch is an internal builder counter and intentionally not used, as it
// can run ahead of the committed generation numbering).
func genOf(s *crawler.Survey) int64 { return s.Stats.Generation }

// Compute diffs two survey generations, older to newer. Same-store
// generations (committed by one Monitor) are diffed incrementally off
// interned ids and epoch stamps; foreign generations are compared by
// name. Both paths produce identical deltas. ctx is honored between
// per-chain min-cut computations.
func Compute(ctx context.Context, old, new *crawler.Survey, opts Options) (*Delta, error) {
	d := &Delta{FromGen: genOf(old), ToGen: genOf(new)}
	e := &evaluator{old: old, new: new, opts: opts,
		cuts: make(map[cutKey]*mincut.Result), tcbs: make(map[[2]int32]tcbDiff)}
	var err error
	if new.Graph.SharesStore(old.Graph) && old.Graph.Epoch() <= new.Graph.Epoch() &&
		new.Graph.JournalComplete(old.Graph.Epoch()) {
		err = computeIncremental(ctx, e, d)
	} else {
		err = computeGeneral(ctx, e, d)
	}
	if err != nil {
		return nil, err
	}
	// |union of both name sets| = the newer generation's names plus the
	// names only the older one had — identical for both paths.
	d.Compared = new.Graph.NumNames() + len(d.NamesRemoved)
	normalize(d)
	return d, nil
}

// cutKey dedups min-cut computations per (generation side, chain id).
type cutKey struct {
	newSide bool
	cid     int32
}

// tcbDiff is the per-(oldCid,newCid) TCB comparison shared by every
// name on the same chain pair: a popular chain changing once costs one
// sort-and-diff, not one per dependent name.
type tcbDiff struct {
	added, removed []string
	oldLen, newLen int
}

// evaluator carries the shared per-name change assessment used by both
// paths, so their outputs are identical by construction.
type evaluator struct {
	old, new *crawler.Survey
	opts     Options
	cuts     map[cutKey]*mincut.Result
	tcbs     map[[2]int32]tcbDiff
}

// cutOf computes (or recalls) the Figure-7 min-cut of a name, keyed by
// its chain so names sharing a delegation chain pay once. A nil result
// means the cut is not computable for this chain.
func (e *evaluator) cutOf(newSide bool, name string, cid int32) *mincut.Result {
	key := cutKey{newSide, cid}
	if res, ok := e.cuts[key]; ok {
		return res
	}
	s, memo := e.old, e.opts.OldMemo
	if newSide {
		s, memo = e.new, e.opts.NewMemo
	}
	res, err := analysis.BottleneckOfMemo(s, name, memo)
	if err != nil {
		res = nil
	}
	e.cuts[key] = res
	return res
}

// assess builds the NameChange for a name present in both generations
// and reports whether anything actually changed.
func (e *evaluator) assess(ctx context.Context, name string, oldCid, newCid int32, chainChanged bool) (NameChange, bool, error) {
	if err := ctx.Err(); err != nil {
		return NameChange{}, false, err
	}
	td, ok := e.tcbs[[2]int32{oldCid, newCid}]
	if !ok {
		oldTCB := hostNames(e.old, e.old.Graph.ChainTCBIDs(oldCid))
		newTCB := hostNames(e.new, e.new.Graph.ChainTCBIDs(newCid))
		added, removed := diffSorted(newTCB, oldTCB)
		td = tcbDiff{added: added, removed: removed, oldLen: len(oldTCB), newLen: len(newTCB)}
		e.tcbs[[2]int32{oldCid, newCid}] = td
	}

	nc := NameChange{
		Name:         name,
		ChainChanged: chainChanged,
		TCBAdded:     td.added,
		TCBRemoved:   td.removed,
		OldTCB:       td.oldLen,
		NewTCB:       td.newLen,
		OldCut:       -1, OldSafe: -1,
		NewCut: -1, NewSafe: -1,
	}
	if res := e.cutOf(false, name, oldCid); res != nil {
		nc.OldCut, nc.OldSafe = res.Size, res.SafeInCut
	}
	if res := e.cutOf(true, name, newCid); res != nil {
		nc.NewCut, nc.NewSafe = res.Size, res.SafeInCut
	}
	changed := nc.ChainChanged || len(td.added) > 0 || len(td.removed) > 0 ||
		nc.OldCut != nc.NewCut || nc.OldSafe != nc.NewSafe
	return nc, changed, nil
}

// computeIncremental is the same-store fast path: the per-epoch change
// journal names every added/removed/re-chained name, and chain stamps
// bound the set of chains whose dependency structure moved — everything
// else is shared storage and diffs to nothing without being read.
//
//lint:hotpath
func computeIncremental(ctx context.Context, e *evaluator, d *Delta) error {
	og, ng := e.old.Graph, e.new.Graph
	oldEpoch := og.Epoch()

	// Zones and chains intern append-only in one store: additions are id
	// ranges, removals impossible.
	if nz := ng.Zones(); len(nz) > og.NumZones() {
		d.ZonesAdded = append([]string(nil), nz[og.NumZones():]...)
		sort.Strings(d.ZonesAdded)
	}

	touched := ng.NamesTouchedSince(oldEpoch)
	touchedSet := make(map[string]bool, len(touched))
	newlyLive := make(map[int32]bool, len(touched))
	ceasedLive := make(map[int32]bool, len(touched))
	for _, name := range touched {
		touchedSet[name] = true
		oldCid, oldOK := og.NameChainID(name)
		newCid, newOK := ng.NameChainID(name)
		switch {
		case !oldOK && newOK:
			d.NamesAdded = append(d.NamesAdded, name)
		case oldOK && !newOK:
			d.NamesRemoved = append(d.NamesRemoved, name)
		case oldOK && newOK:
			nc, changed, err := e.assess(ctx, name, oldCid, newCid, oldCid != newCid)
			if err != nil {
				return err
			}
			if changed {
				d.Changed = append(d.Changed, nc)
			}
		default:
			continue
		}
		// Live-chain transitions ride on the same touched names: a chain
		// becomes live through a name arriving on it, ceases through its
		// last name leaving.
		if newOK {
			newlyLive[newCid] = true
		}
		if oldOK {
			ceasedLive[oldCid] = true
		}
	}
	for cid := range newlyLive {
		if !og.ChainLive(cid) && ng.ChainLive(cid) {
			d.ChainsAdded++
		}
	}
	for cid := range ceasedLive {
		if !ng.ChainLive(cid) {
			d.ChainsRemoved++
		}
	}

	// Chains whose dependency structure changed under unmoved names: the
	// stamp scan is O(chains) over an int64 array; only genuinely
	// changed chains are examined further.
	for _, cid := range ng.ChainsChangedSince(oldEpoch) {
		if int(cid) >= og.NumChains() {
			continue // born after the old epoch: its names are all touched
		}
		for _, name := range ng.NamesOnChain(cid) {
			if touchedSet[name] {
				continue // classified above
			}
			// Untouched name: its mapping is unchanged, so it sits on
			// this same chain in both generations.
			nc, changed, err := e.assess(ctx, name, cid, cid, false)
			if err != nil {
				return err
			}
			if changed {
				d.Changed = append(d.Changed, nc)
			}
		}
	}

	// Zombies are structurally impossible within one store: zone NS sets
	// are first-observation-wins immutable and host chains never detach.
	return nil
}

// computeGeneral is the foreign-graph path — and the reference
// semantics: every name, zone, and host is compared by name across the
// two generations, including the zombie-dependency scan.
func computeGeneral(ctx context.Context, e *evaluator, d *Delta) error {
	og, ng := e.old.Graph, e.new.Graph
	oldNames, newNames := og.Names(), ng.Names()

	// Live-chain content sets, keyed by the chain's zone sequence.
	oldLive := map[string]bool{}
	newLive := map[string]int32{}
	newLiveCount := map[int32]int{}
	for _, n := range oldNames {
		if cid, ok := og.NameChainID(n); ok {
			oldLive[chainKey(og, cid)] = true
		}
	}
	for _, n := range newNames {
		if cid, ok := ng.NameChainID(n); ok {
			newLive[chainKey(ng, cid)] = cid
			newLiveCount[cid]++
		}
	}
	for key := range newLive {
		if !oldLive[key] {
			d.ChainsAdded++
		}
	}
	for key := range oldLive {
		if _, ok := newLive[key]; !ok {
			d.ChainsRemoved++
		}
	}

	// Name-by-name sweep over the two sorted lists.
	i, j := 0, 0
	for i < len(oldNames) || j < len(newNames) {
		switch {
		case j >= len(newNames) || (i < len(oldNames) && oldNames[i] < newNames[j]):
			d.NamesRemoved = append(d.NamesRemoved, oldNames[i])
			i++
		case i >= len(oldNames) || newNames[j] < oldNames[i]:
			d.NamesAdded = append(d.NamesAdded, newNames[j])
			j++
		default:
			name := oldNames[i]
			oldCid, _ := og.NameChainID(name)
			newCid, _ := ng.NameChainID(name)
			nc, changed, err := e.assess(ctx, name, oldCid, newCid,
				chainKey(og, oldCid) != chainKey(ng, newCid))
			if err != nil {
				return err
			}
			if changed {
				d.Changed = append(d.Changed, nc)
			}
			i++
			j++
		}
	}

	// Zones: membership and NS-set drift, plus delegation-removed zombie
	// candidates.
	droppedNS := map[string][]string{} // host -> zones that dropped it
	oldZones, newZones := sortedCopy(og.Zones()), sortedCopy(ng.Zones())
	i, j = 0, 0
	for i < len(oldZones) || j < len(newZones) {
		switch {
		case j >= len(newZones) || (i < len(oldZones) && oldZones[i] < newZones[j]):
			d.ZonesRemoved = append(d.ZonesRemoved, oldZones[i])
			i++
		case i >= len(oldZones) || newZones[j] < oldZones[i]:
			d.ZonesAdded = append(d.ZonesAdded, newZones[j])
			j++
		default:
			apex := oldZones[i]
			oldNS := hostNames(e.old, og.ZoneNS(apex))
			newNS := hostNames(e.new, ng.ZoneNS(apex))
			nsAdded, nsRemoved := diffSorted(newNS, oldNS)
			if len(nsAdded) > 0 || len(nsRemoved) > 0 {
				d.ZoneChanges = append(d.ZoneChanges, ZoneChange{Apex: apex, NSAdded: nsAdded, NSRemoved: nsRemoved})
				for _, h := range nsRemoved {
					droppedNS[h] = append(droppedNS[h], apex)
				}
			}
			i++
			j++
		}
	}

	// Zombie scan: still-trusted hosts whose delegation was removed or
	// that stopped answering.
	trusting := func(host string) int {
		hid, ok := ng.HostID(host)
		if !ok {
			return 0
		}
		total := 0
		for cid, n := range newLiveCount {
			if containsID(ng.ChainTCBIDs(cid), hid) {
				total += n
			}
		}
		return total
	}
	for host, zones := range droppedNS {
		if n := trusting(host); n > 0 {
			sort.Strings(zones)
			d.Zombies = append(d.Zombies, Zombie{Host: host, Kind: DelegationRemoved, Zones: zones, Names: n})
		}
	}
	for _, host := range ng.Hosts() {
		if _, dropped := droppedNS[host]; dropped {
			continue // already classified by the stronger signal
		}
		newID, _ := ng.HostID(host)
		oldID, ok := og.HostID(host)
		if !ok {
			continue
		}
		if og.HostChainIDs(oldID) != nil && ng.HostChainIDs(newID) == nil {
			if n := trusting(host); n > 0 {
				d.Zombies = append(d.Zombies, Zombie{Host: host, Kind: StoppedAnswering, Names: n})
			}
		}
	}
	return ctx.Err()
}

// chainKey renders a chain's zone sequence as a comparable string.
func chainKey(g *core.Graph, cid int32) string {
	ids := g.ChainZoneIDs(cid)
	parts := make([]string, len(ids))
	for i, z := range ids {
		parts[i] = g.Zone(z)
	}
	return strings.Join(parts, "\x00")
}

// hostNames maps interned host ids to sorted host names.
func hostNames(s *crawler.Survey, ids []int32) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.Graph.Host(id))
	}
	sort.Strings(out)
	return out
}

// diffSorted returns newSet−oldSet and oldSet−newSet over two sorted
// string slices (nil when empty).
func diffSorted(newSet, oldSet []string) (added, removed []string) {
	i, j := 0, 0
	for i < len(newSet) || j < len(oldSet) {
		switch {
		case j >= len(oldSet) || (i < len(newSet) && newSet[i] < oldSet[j]):
			added = append(added, newSet[i])
			i++
		case i >= len(newSet) || oldSet[j] < newSet[i]:
			removed = append(removed, oldSet[j])
			j++
		default:
			i++
			j++
		}
	}
	return added, removed
}

// containsID reports membership in a sorted id slice.
func containsID(ids []int32, id int32) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == id
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}

// normalize sorts every output list so both computation paths emit
// byte-identical deltas.
func normalize(d *Delta) {
	sort.Strings(d.NamesAdded)
	sort.Strings(d.NamesRemoved)
	sort.Strings(d.ZonesAdded)
	sort.Strings(d.ZonesRemoved)
	sort.Slice(d.Changed, func(i, j int) bool { return d.Changed[i].Name < d.Changed[j].Name })
	sort.Slice(d.ZoneChanges, func(i, j int) bool { return d.ZoneChanges[i].Apex < d.ZoneChanges[j].Apex })
	sort.Slice(d.Zombies, func(i, j int) bool {
		if d.Zombies[i].Host != d.Zombies[j].Host {
			return d.Zombies[i].Host < d.Zombies[j].Host
		}
		return d.Zombies[i].Kind < d.Zombies[j].Kind
	})
}
