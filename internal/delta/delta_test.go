package delta

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"dnstrust/internal/core"
	"dnstrust/internal/crawler"
	"dnstrust/internal/mincut"
	"dnstrust/internal/vulndb"
)

// computeVia runs one computation path explicitly, bypassing Compute's
// path selection, so the equivalence property can compare them.
func computeVia(t *testing.T, old, new *crawler.Survey, general bool) *Delta {
	t.Helper()
	d := &Delta{FromGen: genOf(old), ToGen: genOf(new)}
	e := &evaluator{old: old, new: new,
		cuts: make(map[cutKey]*mincut.Result), tcbs: make(map[[2]int32]tcbDiff)}
	var err error
	if general {
		err = computeGeneral(context.Background(), e, d)
	} else {
		err = computeIncremental(context.Background(), e, d)
	}
	if err != nil {
		t.Fatalf("compute (general=%v): %v", general, err)
	}
	d.Compared = new.Graph.NumNames() + len(d.NamesRemoved)
	normalize(d)
	return d
}

// vulnify marks a deterministic subset of the survey's hosts vulnerable,
// so SafeInCut varies and cut equivalence is meaningful.
func vulnify(s *crawler.Survey) {
	vuln := vulndb.Default().VulnsForBanner("BIND 8.2.4")
	for _, h := range s.Graph.Hosts() {
		f := fnv.New32a()
		f.Write([]byte(h))
		if f.Sum32()%3 == 0 {
			s.Vulns[h] = vuln
		}
	}
}

// randWorld drives a core.Builder with a random but causally valid event
// stream across epochs: new zones and hosts, chains attaching
// immediately or epochs later (late attach), names completing, failing,
// re-completing, and re-chaining.
type randWorld struct {
	r *rand.Rand
	b *core.Builder

	zones     []string            // observed zone apexes
	zoneChain map[string][]string // apex -> its delegation chain (TLD-first)
	hosts     map[string]bool
	chainless []string          // interned hosts with no chain yet
	live      map[string]string // name -> zone its chain ends at
	failedSet []string

	zc, hc, nc int
}

func newRandWorld(seed int64) *randWorld {
	return &randWorld{
		r:         rand.New(rand.NewSource(seed)),
		b:         core.NewBuilder(0),
		zoneChain: map[string][]string{},
		hosts:     map[string]bool{},
		live:      map[string]string{},
	}
}

// newHosts invents 1..3 host names; each either gets its chain attached
// now or is left chainless for a later epoch (late attach).
func (w *randWorld) newHosts() []string {
	n := 1 + w.r.Intn(3)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(w.hosts) > 0 && w.r.Intn(3) == 0 {
			// Reuse an existing host (shared infrastructure).
			for h := range w.hosts {
				out = append(out, h)
				break
			}
			continue
		}
		w.hc++
		out = append(out, fmt.Sprintf("ns%d.example", w.hc))
	}
	return out
}

func (w *randWorld) chainFor() []string {
	if len(w.zones) == 0 || w.r.Intn(5) == 0 {
		return nil // grounded host / empty chain
	}
	apex := w.zones[w.r.Intn(len(w.zones))]
	return append(append([]string(nil), w.zoneChain[apex]...), apex)
}

func (w *randWorld) addZone() {
	w.zc++
	var apex string
	var chain []string
	if len(w.zones) == 0 || w.r.Intn(3) == 0 {
		apex = fmt.Sprintf("t%d", w.zc)
	} else {
		parent := w.zones[w.r.Intn(len(w.zones))]
		apex = fmt.Sprintf("d%d.%s", w.zc, parent)
		chain = append(append([]string(nil), w.zoneChain[parent]...), parent)
	}
	hosts := w.newHosts()
	w.b.ObserveZone(apex, hosts)
	w.zones = append(w.zones, apex)
	w.zoneChain[apex] = chain
	for _, h := range hosts {
		if w.hosts[h] {
			continue
		}
		w.hosts[h] = true
		if w.r.Intn(2) == 0 {
			w.b.ObserveChain(h, w.chainFor())
		} else {
			w.chainless = append(w.chainless, h)
		}
	}
}

// epoch mutates the world randomly and commits one generation.
func (w *randWorld) epoch(t *testing.T) *crawler.Survey {
	t.Helper()
	for i, n := 0, 1+w.r.Intn(3); i < n; i++ {
		w.addZone()
	}
	// Late attaches: chains arriving for hosts published epochs ago.
	for len(w.chainless) > 0 && w.r.Intn(2) == 0 {
		i := w.r.Intn(len(w.chainless))
		h := w.chainless[i]
		w.chainless = append(w.chainless[:i], w.chainless[i+1:]...)
		w.b.ObserveChain(h, w.chainFor())
	}
	// New names.
	for i, n := 0, 2+w.r.Intn(6); i < n; i++ {
		w.nc++
		apex := w.zones[w.r.Intn(len(w.zones))]
		name := fmt.Sprintf("w%d.%s", w.nc, apex)
		w.b.Complete(name, append(append([]string(nil), w.zoneChain[apex]...), apex))
		w.live[name] = apex
	}
	// Re-chain, fail, and resurrect existing names.
	for name := range w.live {
		switch w.r.Intn(8) {
		case 0:
			apex := w.zones[w.r.Intn(len(w.zones))]
			w.b.Complete(name, append(append([]string(nil), w.zoneChain[apex]...), apex))
			w.live[name] = apex
		case 1:
			w.b.Fail(name, fmt.Errorf("synthetic failure"))
			delete(w.live, name)
			w.failedSet = append(w.failedSet, name)
		}
	}
	if len(w.failedSet) > 0 && w.r.Intn(2) == 0 {
		i := w.r.Intn(len(w.failedSet))
		name := w.failedSet[i]
		w.failedSet = append(w.failedSet[:i], w.failedSet[i+1:]...)
		apex := w.zones[w.r.Intn(len(w.zones))]
		w.b.Complete(name, append(append([]string(nil), w.zoneChain[apex]...), apex))
		w.live[name] = apex
	}
	s := crawler.FromGraph(w.b.FinishEpoch())
	vulnify(s)
	return s
}

// TestIncrementalMatchesBruteForce is the PR's equivalence property: for
// randomized worlds and random Add sequences, the Delta between any two
// generations g1 < g2 is identical whether computed incrementally (the
// chain-id/stamp shortcut over the shared store) or by brute force
// (re-deriving every name's TCB and min-cut from both views and
// comparing by name).
func TestIncrementalMatchesBruteForce(t *testing.T) {
	sawChanged, sawAdded, sawRemoved, sawRechained := false, false, false, false
	for seed := int64(1); seed <= 6; seed++ {
		w := newRandWorld(seed)
		var gens []*crawler.Survey
		for e := 0; e < 6; e++ {
			gens = append(gens, w.epoch(t))
		}
		for i := 0; i < len(gens); i++ {
			for j := i + 1; j < len(gens); j++ {
				inc := computeVia(t, gens[i], gens[j], false)
				brute := computeVia(t, gens[i], gens[j], true)
				if !reflect.DeepEqual(inc, brute) {
					t.Fatalf("seed %d, gens %d->%d: incremental and brute-force deltas differ\nincremental: %+v\nbrute force: %+v",
						seed, i+1, j+1, inc, brute)
				}
				sawChanged = sawChanged || len(inc.Changed) > 0
				sawAdded = sawAdded || len(inc.NamesAdded) > 0
				sawRemoved = sawRemoved || len(inc.NamesRemoved) > 0
				for _, c := range inc.Changed {
					sawRechained = sawRechained || c.ChainChanged
				}
			}
		}
	}
	// The property is vacuous if the random worlds never drift.
	if !sawChanged || !sawAdded || !sawRemoved || !sawRechained {
		t.Fatalf("random worlds did not exercise the delta space: changed=%v added=%v removed=%v rechained=%v",
			sawChanged, sawAdded, sawRemoved, sawRechained)
	}
}

// TestComputeSelectsIncremental checks Compute's path selection: same
// store uses the incremental path (asserted via equality with it), and
// the shortcut diffs identical generations to an empty delta.
func TestComputeSelectsIncremental(t *testing.T) {
	w := newRandWorld(42)
	g1 := w.epoch(t)
	g2 := w.epoch(t)
	got, err := Compute(context.Background(), g1, g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := computeVia(t, g1, g2, false)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Compute = %+v, want incremental %+v", got, want)
	}

	// A generation diffed against itself is empty.
	self, err := Compute(context.Background(), g2, g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !self.Empty() {
		t.Fatalf("self-delta not empty: %+v", self)
	}
}

// buildWorld drives one builder through a fixed scenario and returns its
// finished survey.
func buildWorld(mutate func(b *core.Builder)) *crawler.Survey {
	b := core.NewBuilder(0)
	mutate(b)
	return crawler.FromGraph(b.Finish())
}

// TestZombieDetection exercises the cross-crawl path on a hand-built
// delegation change: host hz is dropped from zone a.t1 between the
// generations but zone b.t1 still delegates through it (a
// delegation-removed zombie), and host h2 stops answering (its chain no
// longer resolves) while names still trust it.
func TestZombieDetection(t *testing.T) {
	old := buildWorld(func(b *core.Builder) {
		b.ObserveZone("t1", []string{"h1"})
		b.ObserveChain("h1", []string{"t1"})
		b.ObserveZone("a.t1", []string{"hz", "h2"})
		b.ObserveChain("hz", []string{"t1"})
		b.ObserveChain("h2", []string{"t1"})
		b.ObserveZone("b.t1", []string{"hz"})
		b.Complete("w.a.t1", []string{"t1", "a.t1"})
		b.Complete("w.b.t1", []string{"t1", "b.t1"})
	})
	new := buildWorld(func(b *core.Builder) {
		b.ObserveZone("t1", []string{"h1"})
		b.ObserveChain("h1", []string{"t1"})
		b.ObserveZone("a.t1", []string{"h2"}) // hz dropped
		// h2's chain no longer resolves: stopped answering.
		b.ObserveZone("b.t1", []string{"hz"})
		b.ObserveChain("hz", []string{"t1"})
		b.Complete("w.a.t1", []string{"t1", "a.t1"})
		b.Complete("w.b.t1", []string{"t1", "b.t1"})
	})

	d, err := Compute(context.Background(), old, new, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Zombies) != 2 {
		t.Fatalf("zombies = %+v, want hz (delegation-removed) and h2 (stopped-answering)", d.Zombies)
	}
	byHost := map[string]Zombie{}
	for _, z := range d.Zombies {
		byHost[z.Host] = z
	}
	hz, ok := byHost["hz"]
	if !ok || hz.Kind != DelegationRemoved || !reflect.DeepEqual(hz.Zones, []string{"a.t1"}) || hz.Names == 0 {
		t.Errorf("hz zombie = %+v, want delegation-removed via a.t1 with trusting names", hz)
	}
	h2, ok := byHost["h2"]
	if !ok || h2.Kind != StoppedAnswering || h2.Names == 0 {
		t.Errorf("h2 zombie = %+v, want stopped-answering with trusting names", h2)
	}

	// The delegation change itself must surface as a zone change and as
	// w.a.t1's TCB losing hz.
	if len(d.ZoneChanges) != 1 || d.ZoneChanges[0].Apex != "a.t1" ||
		!reflect.DeepEqual(d.ZoneChanges[0].NSRemoved, []string{"hz"}) {
		t.Errorf("zone changes = %+v, want a.t1 -hz", d.ZoneChanges)
	}
	var waChange *NameChange
	for i := range d.Changed {
		if d.Changed[i].Name == "w.a.t1" {
			waChange = &d.Changed[i]
		}
	}
	if waChange == nil || !contains(waChange.TCBRemoved, "hz") {
		t.Errorf("w.a.t1 change = %+v, want TCBRemoved to include hz", waChange)
	}
}

func contains(s []string, want string) bool {
	for _, v := range s {
		if v == want {
			return true
		}
	}
	return false
}

// TestGrewFilter checks the /watch primitive: Grew selects names whose
// TCB expanded by at least the threshold.
func TestGrewFilter(t *testing.T) {
	d := &Delta{Changed: []NameChange{
		{Name: "a", OldTCB: 10, NewTCB: 10},
		{Name: "b", OldTCB: 10, NewTCB: 12},
		{Name: "c", OldTCB: 10, NewTCB: 15},
	}}
	if got := d.Grew(3); len(got) != 1 || got[0].Name != "c" {
		t.Errorf("Grew(3) = %+v, want just c", got)
	}
	if got := d.Grew(0); len(got) != 2 {
		t.Errorf("Grew(0) = %+v, want b and c (minimum growth clamps to 1)", got)
	}
}

// TestIncrementalNoChangeAllocGate is the runtime complement of the
// //lint:hotpath annotation on computeIncremental: diffing a generation
// against itself — the steady-state monitor case where nothing drifted —
// must cost a bounded handful of allocations (the evaluator's and
// delta's own headers plus three empty tracking maps), independent of
// how large the survey is.
//
// alloc-gate: dnstrust/internal/delta.computeIncremental
func TestIncrementalNoChangeAllocGate(t *testing.T) {
	w := newRandWorld(7)
	var s *crawler.Survey
	for e := 0; e < 4; e++ {
		s = w.epoch(t)
	}
	allocs := testing.AllocsPerRun(100, func() {
		d := &Delta{FromGen: genOf(s), ToGen: genOf(s)}
		e := &evaluator{old: s, new: s,
			cuts: make(map[cutKey]*mincut.Result), tcbs: make(map[[2]int32]tcbDiff)}
		if err := computeIncremental(context.Background(), e, d); err != nil {
			t.Fatal(err)
		}
		if d.Compared != 0 && len(d.Changed) != 0 {
			t.Fatal("self-diff reported drift")
		}
	})
	if allocs > 10 {
		t.Errorf("no-change incremental diff allocates %.1f objects, want <= 10 (size-independent)", allocs)
	}
}
