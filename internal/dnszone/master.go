package dnszone

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
)

// Parse reads a zone in a subset of RFC 1035 master-file format:
// ';' comments, $ORIGIN and $TTL directives, '@' for the origin, relative
// and absolute owner names, and the record types this package models
// (SOA, NS, A, AAAA, CNAME, MX, TXT, PTR). Parenthesized multi-line SOA
// records are supported.
//
// NS records owned by a name below the apex become delegation cuts, and
// address records below a cut become glue, matching how an authoritative
// server treats such data.
func Parse(r io.Reader, origin string) (*Zone, error) {
	origin = dnsname.Canonical(origin)
	p := &parser{origin: origin, ttl: DefaultTTL}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	var pending []string // accumulates a parenthesized record
	depth := 0
	for sc.Scan() {
		lineno++
		line := stripComment(sc.Text())
		if strings.TrimSpace(line) == "" && depth == 0 {
			continue
		}
		depth += strings.Count(line, "(") - strings.Count(line, ")")
		if depth < 0 {
			return nil, fmt.Errorf("dnszone: line %d: unbalanced parentheses", lineno)
		}
		pending = append(pending, line)
		if depth > 0 {
			continue
		}
		full := strings.Join(pending, " ")
		pending = pending[:0]
		full = strings.NewReplacer("(", " ", ")", " ").Replace(full)
		if err := p.line(full); err != nil {
			return nil, fmt.Errorf("dnszone: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if depth != 0 {
		return nil, fmt.Errorf("dnszone: unclosed parenthesized record")
	}
	return p.build()
}

type parsedRR struct {
	rr dnswire.RR
}

type parser struct {
	origin    string
	ttl       uint32
	lastOwner string
	soa       *dnswire.SOA
	rrs       []parsedRR
}

func stripComment(line string) string {
	// TXT strings may contain ';'; handle quoting.
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case ';':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

func (p *parser) line(line string) error {
	fields := tokenize(line)
	if len(fields) == 0 {
		return nil
	}
	switch strings.ToUpper(fields[0]) {
	case "$ORIGIN":
		if len(fields) != 2 {
			return fmt.Errorf("$ORIGIN wants one argument")
		}
		p.origin = dnsname.Canonical(fields[1])
		return nil
	case "$TTL":
		if len(fields) != 2 {
			return fmt.Errorf("$TTL wants one argument")
		}
		n, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("bad $TTL %q", fields[1])
		}
		p.ttl = uint32(n)
		return nil
	}

	// Owner is present unless the line started with whitespace.
	owner := p.lastOwner
	if !strings.HasPrefix(line, " ") && !strings.HasPrefix(line, "\t") {
		owner = p.absName(fields[0])
		fields = fields[1:]
	}
	if owner == "" && p.origin != "" && p.lastOwner == "" {
		return fmt.Errorf("record with no owner")
	}
	p.lastOwner = owner

	ttl := p.ttl
	class := dnswire.ClassINET
	// Optional TTL and class may appear in either order.
	for len(fields) > 0 {
		f := strings.ToUpper(fields[0])
		if n, err := strconv.ParseUint(fields[0], 10, 32); err == nil {
			ttl = uint32(n)
			fields = fields[1:]
			continue
		}
		if f == "IN" || f == "CH" {
			if f == "CH" {
				class = dnswire.ClassCHAOS
			}
			fields = fields[1:]
			continue
		}
		break
	}
	if len(fields) == 0 {
		return fmt.Errorf("record %q has no type", owner)
	}
	typ := strings.ToUpper(fields[0])
	rdata := fields[1:]
	data, err := p.rdata(typ, rdata)
	if err != nil {
		return err
	}
	rr := dnswire.RR{Name: owner, Class: class, TTL: ttl, Data: data}
	if soa, ok := data.(dnswire.SOA); ok {
		p.soa = &soa
		if owner != p.origin {
			return fmt.Errorf("SOA owner %q is not the origin %q", owner, p.origin)
		}
		return nil
	}
	p.rrs = append(p.rrs, parsedRR{rr: rr})
	return nil
}

// tokenize splits on whitespace but keeps quoted strings whole.
func tokenize(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

func (p *parser) absName(token string) string {
	if token == "@" {
		return p.origin
	}
	if strings.HasSuffix(token, ".") {
		return dnsname.Canonical(token)
	}
	return dnsname.Join(token, p.origin)
}

func (p *parser) rdata(typ string, fields []string) (dnswire.RData, error) {
	need := func(n int) error {
		if len(fields) != n {
			return fmt.Errorf("%s record wants %d fields, got %d", typ, n, len(fields))
		}
		return nil
	}
	switch typ {
	case "A":
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad A address %q", fields[0])
		}
		return dnswire.A{Addr: addr}, nil
	case "AAAA":
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil || !addr.Is6() {
			return nil, fmt.Errorf("bad AAAA address %q", fields[0])
		}
		return dnswire.AAAA{Addr: addr}, nil
	case "NS":
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.NS{Host: p.absName(fields[0])}, nil
	case "CNAME":
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.CNAME{Target: p.absName(fields[0])}, nil
	case "PTR":
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.PTR{Target: p.absName(fields[0])}, nil
	case "MX":
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", fields[0])
		}
		return dnswire.MX{Preference: uint16(pref), Host: p.absName(fields[1])}, nil
	case "TXT":
		if len(fields) == 0 {
			return nil, fmt.Errorf("TXT record wants at least one string")
		}
		return dnswire.TXT{Text: fields}, nil
	case "SOA":
		if err := need(7); err != nil {
			return nil, err
		}
		nums := make([]uint32, 5)
		for i, f := range fields[2:] {
			n, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad SOA field %q", f)
			}
			nums[i] = uint32(n)
		}
		return dnswire.SOA{
			MName: p.absName(fields[0]), RName: p.absName(fields[1]),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2],
			Expire: nums[3], Minimum: nums[4],
		}, nil
	default:
		return nil, fmt.Errorf("unsupported record type %q", typ)
	}
}

// build assembles the Zone, classifying sub-apex NS records as cuts and
// addresses beneath cuts as glue.
func (p *parser) build() (*Zone, error) {
	z := New(p.origin)
	if p.soa != nil {
		z.SetSOA(*p.soa)
	}
	// First pass: find delegation cuts.
	cutHosts := map[string][]string{}
	for _, pr := range p.rrs {
		if ns, ok := pr.rr.Data.(dnswire.NS); ok && pr.rr.Name != p.origin {
			cutHosts[pr.rr.Name] = append(cutHosts[pr.rr.Name], ns.Host)
		}
	}
	for child, hosts := range cutHosts {
		if err := z.Delegate(child, hosts...); err != nil {
			return nil, err
		}
	}
	// Second pass: insert everything else, routing glue appropriately.
	for _, pr := range p.rrs {
		rr := pr.rr
		if _, isNS := rr.Data.(dnswire.NS); isNS && rr.Name != p.origin {
			continue // handled as a cut
		}
		z.mu.RLock()
		cut := z.cutCoveringLocked(rr.Name)
		z.mu.RUnlock()
		if cut != "" {
			switch d := rr.Data.(type) {
			case dnswire.A:
				if err := z.AddGlue(rr.Name, d.Addr); err != nil {
					return nil, err
				}
			case dnswire.AAAA:
				if err := z.AddGlue(rr.Name, d.Addr); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("dnszone: non-address record %q beneath cut %q", rr.Name, cut)
			}
			continue
		}
		if err := z.AddRR(rr); err != nil {
			return nil, err
		}
	}
	return z, nil
}

// WriteMaster serializes the zone in master-file format, deterministically
// ordered, suitable for re-parsing with Parse.
func (z *Zone) WriteMaster(w io.Writer) error {
	z.mu.RLock()
	defer z.mu.RUnlock()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$ORIGIN %s\n$TTL %d\n", presentOrigin(z.origin), DefaultTTL)
	soaRR := dnswire.RR{Name: z.origin, Class: dnswire.ClassINET, TTL: DefaultTTL, Data: z.soa}
	writeRR(bw, soaRR)

	names := make([]string, 0, len(z.records))
	for n := range z.records {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return dnsname.Compare(names[i], names[j]) < 0 })
	for _, n := range names {
		types := make([]int, 0, len(z.records[n]))
		for t := range z.records[n] {
			types = append(types, int(t))
		}
		sort.Ints(types)
		for _, t := range types {
			for _, rr := range z.records[n][dnswire.Type(t)] {
				writeRR(bw, rr)
			}
		}
	}

	cuts := make([]string, 0, len(z.cuts))
	for c := range z.cuts {
		cuts = append(cuts, c)
	}
	sort.Strings(cuts)
	for _, c := range cuts {
		for _, rr := range z.cuts[c] {
			writeRR(bw, rr)
		}
	}
	glues := make([]string, 0, len(z.glue))
	for g := range z.glue {
		glues = append(glues, g)
	}
	sort.Strings(glues)
	for _, g := range glues {
		for _, rr := range z.glue[g] {
			writeRR(bw, rr)
		}
	}
	return bw.Flush()
}

func writeRR(w io.Writer, rr dnswire.RR) {
	fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\n",
		presentOrigin(rr.Name), rr.TTL, rr.Class, rr.Type(), rr.Data)
}
