// Package dnszone models authoritative DNS zones: RRsets, SOA, child
// delegations with glue, and the RFC 1034 §4.3.2 lookup algorithm that
// authoritative servers run (answer, referral, NXDOMAIN, NODATA, CNAME).
package dnszone

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
)

// Zone holds the authoritative data for one zone. A Zone is safe for
// concurrent lookups once built; mutation and lookup must not race.
type Zone struct {
	mu sync.RWMutex

	// origin is the canonical apex name of the zone.
	origin string
	// soa is the zone's SOA record data.
	soa dnswire.SOA
	// records maps owner name -> type -> RRs for authoritative data.
	records map[string]map[dnswire.Type][]dnswire.RR
	// cuts maps a delegated child zone apex -> its NS records. Data at or
	// below a cut is not authoritative in this zone (it is glue).
	cuts map[string][]dnswire.RR
	// glue maps host name -> address RRs attached beneath a cut.
	glue map[string][]dnswire.RR
}

// DefaultTTL is used for records added without an explicit TTL.
const DefaultTTL = 86400

// New creates an empty zone rooted at origin with a conventional SOA.
func New(origin string) *Zone {
	origin = dnsname.Canonical(origin)
	z := &Zone{
		origin:  origin,
		records: make(map[string]map[dnswire.Type][]dnswire.RR),
		cuts:    make(map[string][]dnswire.RR),
		glue:    make(map[string][]dnswire.RR),
	}
	z.soa = dnswire.SOA{
		MName:   dnsname.Join("ns1", origin),
		RName:   dnsname.Join("hostmaster", origin),
		Serial:  2004072200, // the survey snapshot date
		Refresh: 7200, Retry: 1800, Expire: 604800, Minimum: 300,
	}
	return z
}

// Origin returns the canonical zone apex.
func (z *Zone) Origin() string { return z.origin }

// SOA returns the zone's SOA payload.
func (z *Zone) SOA() dnswire.SOA {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.soa
}

// SetSOA replaces the SOA payload.
func (z *Zone) SetSOA(soa dnswire.SOA) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.soa = soa
}

// AddRR adds an authoritative record. The owner must be at or below the
// zone origin and must not lie at or below an existing delegation cut.
func (z *Zone) AddRR(rr dnswire.RR) error {
	rr.Name = dnsname.Canonical(rr.Name)
	if !dnsname.IsSubdomain(rr.Name, z.origin) {
		return fmt.Errorf("dnszone: %q is outside zone %q", rr.Name, z.origin)
	}
	if rr.Data == nil {
		return fmt.Errorf("dnszone: record %q has no data", rr.Name)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	if cut := z.cutCoveringLocked(rr.Name); cut != "" && rr.Name != z.origin {
		return fmt.Errorf("dnszone: %q lies beneath delegation cut %q; add glue instead", rr.Name, cut)
	}
	byType := z.records[rr.Name]
	if byType == nil {
		byType = make(map[dnswire.Type][]dnswire.RR)
		z.records[rr.Name] = byType
	}
	byType[rr.Type()] = append(byType[rr.Type()], rr)
	return nil
}

// MustAddRR adds a record and panics on error; for use in builders whose
// inputs are program constants.
func (z *Zone) MustAddRR(rr dnswire.RR) {
	if err := z.AddRR(rr); err != nil {
		panic(err)
	}
}

// AddNS declares hostname as an authoritative nameserver of this zone
// (an NS record at the apex).
func (z *Zone) AddNS(host string) {
	z.MustAddRR(dnswire.RR{
		Name: z.origin, Class: dnswire.ClassINET, TTL: DefaultTTL,
		Data: dnswire.NS{Host: dnsname.Canonical(host)},
	})
}

// AddAddress attaches an A or AAAA record for an in-zone host.
func (z *Zone) AddAddress(host string, addr netip.Addr) error {
	var data dnswire.RData
	if addr.Is4() {
		data = dnswire.A{Addr: addr}
	} else {
		data = dnswire.AAAA{Addr: addr}
	}
	return z.AddRR(dnswire.RR{
		Name: dnsname.Canonical(host), Class: dnswire.ClassINET,
		TTL: DefaultTTL, Data: data,
	})
}

// Delegate records a zone cut: child (a subdomain of this zone) is served
// by the given nameserver host names. Glue addresses for in-bailiwick
// hosts should be added with AddGlue.
func (z *Zone) Delegate(child string, hosts ...string) error {
	child = dnsname.Canonical(child)
	if child == z.origin || !dnsname.IsSubdomain(child, z.origin) {
		return fmt.Errorf("dnszone: cannot delegate %q from zone %q", child, z.origin)
	}
	if len(hosts) == 0 {
		return fmt.Errorf("dnszone: delegation of %q needs at least one nameserver", child)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	rrs := make([]dnswire.RR, 0, len(hosts))
	for _, h := range hosts {
		rrs = append(rrs, dnswire.RR{
			Name: child, Class: dnswire.ClassINET, TTL: DefaultTTL,
			Data: dnswire.NS{Host: dnsname.Canonical(h)},
		})
	}
	z.cuts[child] = rrs
	return nil
}

// AddGlue attaches a glue address record for a nameserver host that lives
// at or below one of this zone's delegation cuts.
func (z *Zone) AddGlue(host string, addr netip.Addr) error {
	host = dnsname.Canonical(host)
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.cutCoveringLocked(host) == "" {
		return fmt.Errorf("dnszone: glue %q is not beneath any delegation cut of %q", host, z.origin)
	}
	var data dnswire.RData
	if addr.Is4() {
		data = dnswire.A{Addr: addr}
	} else {
		data = dnswire.AAAA{Addr: addr}
	}
	z.glue[host] = append(z.glue[host], dnswire.RR{
		Name: host, Class: dnswire.ClassINET, TTL: DefaultTTL, Data: data,
	})
	return nil
}

// cutCoveringLocked returns the delegation cut at or above name, or "".
func (z *Zone) cutCoveringLocked(name string) string {
	for _, anc := range dnsname.Ancestors(name) {
		if anc == z.origin {
			break
		}
		if !dnsname.IsSubdomain(anc, z.origin) {
			break
		}
		if _, ok := z.cuts[anc]; ok {
			return anc
		}
	}
	return ""
}

// Cuts returns the delegated child apexes in sorted order.
func (z *Zone) Cuts() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]string, 0, len(z.cuts))
	for c := range z.cuts {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// NSHosts returns the host names of this zone's apex NS records, sorted.
func (z *Zone) NSHosts() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []string
	for _, rr := range z.records[z.origin][dnswire.TypeNS] {
		out = append(out, rr.Data.(dnswire.NS).Host)
	}
	sort.Strings(out)
	return out
}

// Names returns every owner name with authoritative data, sorted.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]string, 0, len(z.records))
	for n := range z.records {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders a compact summary for debugging.
func (z *Zone) String() string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "zone %s: %d names, %d cuts", presentOrigin(z.origin), len(z.records), len(z.cuts))
	return sb.String()
}

func presentOrigin(origin string) string {
	if origin == "" {
		return "."
	}
	return origin + "."
}
