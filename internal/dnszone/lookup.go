package dnszone

import (
	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
)

// ResultKind classifies the outcome of an authoritative lookup.
type ResultKind int

const (
	// KindNotInZone means the queried name is not within this zone at all.
	KindNotInZone ResultKind = iota
	// KindAnswer means authoritative records were found (possibly a CNAME
	// the client must chase).
	KindAnswer
	// KindNoData means the name exists but has no records of the type.
	KindNoData
	// KindNXDomain means the name does not exist in the zone.
	KindNXDomain
	// KindDelegation means the name lies beneath a zone cut; the Result
	// carries the referral NS set and available glue.
	KindDelegation
)

func (k ResultKind) String() string {
	switch k {
	case KindAnswer:
		return "answer"
	case KindNoData:
		return "nodata"
	case KindNXDomain:
		return "nxdomain"
	case KindDelegation:
		return "delegation"
	default:
		return "not-in-zone"
	}
}

// Result is the outcome of Zone.Lookup, structured as the three response
// sections an authoritative server would emit.
type Result struct {
	Kind ResultKind
	// Answer holds matching records (KindAnswer).
	Answer []dnswire.RR
	// Authority holds the referral NS set (KindDelegation) or the SOA
	// (negative answers).
	Authority []dnswire.RR
	// Additional holds glue addresses for referral nameservers.
	Additional []dnswire.RR
}

// Lookup runs the RFC 1034 §4.3.2 algorithm for a single question against
// this zone's authoritative data.
func (z *Zone) Lookup(name string, qtype dnswire.Type) Result {
	name = dnsname.Canonical(name)
	if !dnsname.IsSubdomain(name, z.origin) {
		return Result{Kind: KindNotInZone}
	}
	z.mu.RLock()
	defer z.mu.RUnlock()

	// Delegation cut between origin and name: emit a referral, unless the
	// query is for the cut's NS set itself at the apex of the cut... no:
	// NS queries at a cut are also answered with a referral by a purely
	// authoritative parent (the child holds the authoritative set).
	if cut := z.cutCoveringLocked(name); cut != "" {
		return z.referralLocked(cut)
	}

	byType, exists := z.records[name]
	if !exists {
		// The name may still be an "empty non-terminal": an interior name
		// with descendants but no records. Those exist and yield NODATA.
		if z.hasDescendantLocked(name) {
			return z.negativeLocked(KindNoData)
		}
		return z.negativeLocked(KindNXDomain)
	}

	// CNAME handling: if the name owns a CNAME and the query is for a
	// different type, answer with the CNAME for the client to chase.
	if qtype != dnswire.TypeCNAME && qtype != dnswire.TypeANY {
		if cname, ok := byType[dnswire.TypeCNAME]; ok {
			return Result{Kind: KindAnswer, Answer: cloneRRs(cname)}
		}
	}

	if qtype == dnswire.TypeANY {
		var all []dnswire.RR
		for _, rrs := range byType {
			all = append(all, rrs...)
		}
		if len(all) == 0 {
			return z.negativeLocked(KindNoData)
		}
		return Result{Kind: KindAnswer, Answer: cloneRRs(all)}
	}

	rrs, ok := byType[qtype]
	if !ok || len(rrs) == 0 {
		return z.negativeLocked(KindNoData)
	}
	return Result{Kind: KindAnswer, Answer: cloneRRs(rrs)}
}

// referralLocked builds the delegation response for a known cut.
func (z *Zone) referralLocked(cut string) Result {
	res := Result{Kind: KindDelegation, Authority: cloneRRs(z.cuts[cut])}
	for _, rr := range res.Authority {
		host := rr.Data.(dnswire.NS).Host
		if g, ok := z.glue[host]; ok {
			res.Additional = append(res.Additional, cloneRRs(g)...)
		}
	}
	return res
}

// negativeLocked builds an NXDOMAIN/NODATA response carrying the SOA.
func (z *Zone) negativeLocked(kind ResultKind) Result {
	return Result{
		Kind: kind,
		Authority: []dnswire.RR{{
			Name: z.origin, Class: dnswire.ClassINET,
			TTL: z.soa.Minimum, Data: z.soa,
		}},
	}
}

// hasDescendantLocked reports whether any authoritative owner name or cut
// lies strictly beneath name.
func (z *Zone) hasDescendantLocked(name string) bool {
	for owner := range z.records {
		if owner != name && dnsname.IsSubdomain(owner, name) {
			return true
		}
	}
	for cut := range z.cuts {
		if cut != name && dnsname.IsSubdomain(cut, name) {
			return true
		}
	}
	return false
}

func cloneRRs(rrs []dnswire.RR) []dnswire.RR {
	out := make([]dnswire.RR, len(rrs))
	copy(out, rrs)
	return out
}
