package dnszone

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"dnstrust/internal/dnswire"
)

func addr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// cornellZone builds a zone resembling cornell.edu from Figure 1.
func cornellZone(t *testing.T) *Zone {
	t.Helper()
	z := New("cornell.edu")
	z.AddNS("cudns.cit.cornell.edu")
	z.AddNS("bigred.cit.cornell.edu")
	z.AddNS("dns.cit.cornell.edu")
	if err := z.AddAddress("cudns.cit.cornell.edu", addr(t, "192.35.82.50")); err != nil {
		t.Fatal(err)
	}
	if err := z.AddAddress("www.cornell.edu", addr(t, "132.236.56.9")); err != nil {
		t.Fatal(err)
	}
	if err := z.Delegate("cs.cornell.edu",
		"penguin.cs.cornell.edu", "sunup.cs.cornell.edu", "dns.cs.wisc.edu"); err != nil {
		t.Fatal(err)
	}
	if err := z.AddGlue("penguin.cs.cornell.edu", addr(t, "128.84.96.10")); err != nil {
		t.Fatal(err)
	}
	if err := z.AddGlue("sunup.cs.cornell.edu", addr(t, "128.84.96.11")); err != nil {
		t.Fatal(err)
	}
	return z
}

func TestLookupAnswer(t *testing.T) {
	z := cornellZone(t)
	res := z.Lookup("www.cornell.edu", dnswire.TypeA)
	if res.Kind != KindAnswer || len(res.Answer) != 1 {
		t.Fatalf("got %v with %d answers", res.Kind, len(res.Answer))
	}
	if got := res.Answer[0].Data.(dnswire.A).Addr.String(); got != "132.236.56.9" {
		t.Errorf("answer = %s", got)
	}
}

func TestLookupApexNS(t *testing.T) {
	z := cornellZone(t)
	res := z.Lookup("cornell.edu", dnswire.TypeNS)
	if res.Kind != KindAnswer || len(res.Answer) != 3 {
		t.Fatalf("apex NS: got %v with %d answers", res.Kind, len(res.Answer))
	}
}

func TestLookupDelegation(t *testing.T) {
	z := cornellZone(t)
	for _, q := range []string{"cs.cornell.edu", "www.cs.cornell.edu", "deep.www.cs.cornell.edu"} {
		res := z.Lookup(q, dnswire.TypeA)
		if res.Kind != KindDelegation {
			t.Fatalf("Lookup(%q) = %v, want delegation", q, res.Kind)
		}
		if len(res.Authority) != 3 {
			t.Errorf("referral carries %d NS records, want 3", len(res.Authority))
		}
		// Glue must cover the two in-zone servers but not dns.cs.wisc.edu.
		if len(res.Additional) != 2 {
			t.Errorf("referral carries %d glue records, want 2", len(res.Additional))
		}
		for _, g := range res.Additional {
			if g.Name == "dns.cs.wisc.edu" {
				t.Error("out-of-zone server must not get glue")
			}
		}
	}
}

func TestLookupNXDomain(t *testing.T) {
	z := cornellZone(t)
	res := z.Lookup("nonexistent.cornell.edu", dnswire.TypeA)
	if res.Kind != KindNXDomain {
		t.Fatalf("got %v, want NXDOMAIN", res.Kind)
	}
	if len(res.Authority) != 1 || res.Authority[0].Type() != dnswire.TypeSOA {
		t.Error("negative answer must carry the SOA")
	}
}

func TestLookupNoData(t *testing.T) {
	z := cornellZone(t)
	res := z.Lookup("www.cornell.edu", dnswire.TypeMX)
	if res.Kind != KindNoData {
		t.Fatalf("got %v, want NODATA", res.Kind)
	}
}

func TestLookupEmptyNonTerminal(t *testing.T) {
	z := cornellZone(t)
	// cit.cornell.edu has no records itself but cudns.cit.cornell.edu does.
	res := z.Lookup("cit.cornell.edu", dnswire.TypeA)
	if res.Kind != KindNoData {
		t.Fatalf("empty non-terminal: got %v, want NODATA", res.Kind)
	}
}

func TestLookupNotInZone(t *testing.T) {
	z := cornellZone(t)
	if res := z.Lookup("www.rochester.edu", dnswire.TypeA); res.Kind != KindNotInZone {
		t.Fatalf("got %v, want not-in-zone", res.Kind)
	}
}

func TestLookupCNAME(t *testing.T) {
	z := cornellZone(t)
	z.MustAddRR(dnswire.RR{
		Name: "web.cornell.edu", Class: dnswire.ClassINET, TTL: 60,
		Data: dnswire.CNAME{Target: "www.cornell.edu"},
	})
	res := z.Lookup("web.cornell.edu", dnswire.TypeA)
	if res.Kind != KindAnswer || len(res.Answer) != 1 {
		t.Fatalf("CNAME lookup: %v/%d", res.Kind, len(res.Answer))
	}
	if _, ok := res.Answer[0].Data.(dnswire.CNAME); !ok {
		t.Error("want the CNAME itself for an A query")
	}
	// Direct CNAME query returns it too.
	res = z.Lookup("web.cornell.edu", dnswire.TypeCNAME)
	if res.Kind != KindAnswer {
		t.Errorf("explicit CNAME query: %v", res.Kind)
	}
}

func TestLookupANY(t *testing.T) {
	z := cornellZone(t)
	res := z.Lookup("cornell.edu", dnswire.TypeANY)
	if res.Kind != KindAnswer || len(res.Answer) != 3 {
		t.Fatalf("ANY at apex: %v/%d answers", res.Kind, len(res.Answer))
	}
}

func TestAddRRValidation(t *testing.T) {
	z := cornellZone(t)
	err := z.AddRR(dnswire.RR{Name: "www.rochester.edu", Class: dnswire.ClassINET,
		Data: dnswire.A{Addr: addr(t, "10.0.0.1")}})
	if err == nil {
		t.Error("out-of-zone record must be rejected")
	}
	err = z.AddRR(dnswire.RR{Name: "inside.cs.cornell.edu", Class: dnswire.ClassINET,
		Data: dnswire.A{Addr: addr(t, "10.0.0.1")}})
	if err == nil {
		t.Error("record beneath a cut must be rejected")
	}
	if err := z.AddRR(dnswire.RR{Name: "x.cornell.edu"}); err == nil {
		t.Error("record without data must be rejected")
	}
}

func TestDelegateValidation(t *testing.T) {
	z := New("cornell.edu")
	if err := z.Delegate("cornell.edu", "ns.example.com"); err == nil {
		t.Error("cannot delegate the apex")
	}
	if err := z.Delegate("www.rochester.edu", "ns.example.com"); err == nil {
		t.Error("cannot delegate a name outside the zone")
	}
	if err := z.Delegate("cs.cornell.edu"); err == nil {
		t.Error("delegation needs nameservers")
	}
}

func TestAddGlueValidation(t *testing.T) {
	z := cornellZone(t)
	if err := z.AddGlue("www.cornell.edu", addr(t, "10.0.0.1")); err == nil {
		t.Error("glue outside any cut must be rejected")
	}
}

func TestNSHostsAndCuts(t *testing.T) {
	z := cornellZone(t)
	want := []string{"bigred.cit.cornell.edu", "cudns.cit.cornell.edu", "dns.cit.cornell.edu"}
	if got := z.NSHosts(); !reflect.DeepEqual(got, want) {
		t.Errorf("NSHosts = %v", got)
	}
	if got := z.Cuts(); !reflect.DeepEqual(got, []string{"cs.cornell.edu"}) {
		t.Errorf("Cuts = %v", got)
	}
}

func TestRootZone(t *testing.T) {
	z := New("")
	z.AddNS("a.root-servers.net")
	if err := z.Delegate("edu", "a.edu-servers.net"); err != nil {
		t.Fatal(err)
	}
	// The edu servers live under net, so glue for them requires net to be
	// delegated as well — exactly as in the real root zone.
	if err := z.Delegate("net", "a.gtld-servers.net"); err != nil {
		t.Fatal(err)
	}
	if err := z.AddGlue("a.edu-servers.net", addr(t, "192.5.6.30")); err != nil {
		t.Fatal(err)
	}
	res := z.Lookup("www.cs.cornell.edu", dnswire.TypeA)
	if res.Kind != KindDelegation {
		t.Fatalf("root lookup for edu name: %v, want delegation", res.Kind)
	}
	res = z.Lookup("", dnswire.TypeNS)
	if res.Kind != KindAnswer {
		t.Fatalf("root apex NS: %v", res.Kind)
	}
}

func TestParseMaster(t *testing.T) {
	const text = `
$ORIGIN cornell.edu.
$TTL 86400
@	IN	SOA	ns1.cornell.edu. hostmaster.cornell.edu. (
		2004072200 ; serial, survey snapshot day
		7200 1800 604800 300 )
@	IN	NS	cudns.cit.cornell.edu.
@	IN	NS	bigred.cit.cornell.edu.
www	3600	IN	A	132.236.56.9
web	IN	CNAME	www
@	IN	MX	10 mail.cornell.edu.
info	IN	TXT	"Cornell University" "Ithaca; NY"
cudns.cit	IN	A	192.35.82.50
; a delegation with one in-zone (glued) server and one remote
cs	IN	NS	penguin.cs.cornell.edu.
cs	IN	NS	dns.cs.wisc.edu.
penguin.cs	IN	A	128.84.96.10
`
	z, err := Parse(strings.NewReader(text), "cornell.edu")
	if err != nil {
		t.Fatal(err)
	}
	if z.SOA().Serial != 2004072200 {
		t.Errorf("SOA serial = %d", z.SOA().Serial)
	}
	if res := z.Lookup("www.cornell.edu", dnswire.TypeA); res.Kind != KindAnswer {
		t.Errorf("www lookup: %v", res.Kind)
	}
	if res := z.Lookup("x.cs.cornell.edu", dnswire.TypeA); res.Kind != KindDelegation {
		t.Errorf("cs lookup: %v", res.Kind)
	} else if len(res.Additional) != 1 {
		t.Errorf("cs referral glue = %d records, want 1", len(res.Additional))
	}
	res := z.Lookup("info.cornell.edu", dnswire.TypeTXT)
	if res.Kind != KindAnswer {
		t.Fatalf("TXT lookup: %v", res.Kind)
	}
	txt := res.Answer[0].Data.(dnswire.TXT)
	if !reflect.DeepEqual(txt.Text, []string{"Cornell University", "Ithaca; NY"}) {
		t.Errorf("TXT = %q", txt.Text)
	}
	if res := z.Lookup("cornell.edu", dnswire.TypeMX); res.Kind != KindAnswer {
		t.Errorf("MX lookup: %v", res.Kind)
	}
}

func TestMasterRoundTrip(t *testing.T) {
	z := cornellZone(t)
	var sb strings.Builder
	if err := z.WriteMaster(&sb); err != nil {
		t.Fatal(err)
	}
	z2, err := Parse(strings.NewReader(sb.String()), "cornell.edu")
	if err != nil {
		t.Fatalf("re-parse: %v\nzone text:\n%s", err, sb.String())
	}
	if !reflect.DeepEqual(z.NSHosts(), z2.NSHosts()) {
		t.Errorf("NS hosts differ: %v vs %v", z.NSHosts(), z2.NSHosts())
	}
	if !reflect.DeepEqual(z.Cuts(), z2.Cuts()) {
		t.Errorf("cuts differ: %v vs %v", z.Cuts(), z2.Cuts())
	}
	if !reflect.DeepEqual(z.Names(), z2.Names()) {
		t.Errorf("names differ: %v vs %v", z.Names(), z2.Names())
	}
	r1 := z.Lookup("www.cs.cornell.edu", dnswire.TypeA)
	r2 := z2.Lookup("www.cs.cornell.edu", dnswire.TypeA)
	if r1.Kind != r2.Kind || len(r1.Additional) != len(r2.Additional) {
		t.Errorf("lookup results differ after round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"@ IN SOA bad",                    // malformed SOA
		"www IN A not-an-ip",              // bad A
		"www IN AAAA 10.0.0.1",            // v4 in AAAA
		"www IN MX ten mail.example.com.", // bad preference
		"www IN UNKNOWNTYPE data",         // unsupported type
		"$TTL abc",                        // bad TTL
		"$ORIGIN",                         // missing arg
		"www IN SOA ns. rn. 1 2 3 4 5",    // SOA not at origin
		"www IN A 10.0.0.1 (",             // unclosed paren
	}
	for _, text := range cases {
		if _, err := Parse(strings.NewReader(text), "example.com"); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestZoneString(t *testing.T) {
	z := cornellZone(t)
	s := z.String()
	if !strings.Contains(s, "cornell.edu.") {
		t.Errorf("String() = %q", s)
	}
}
