package core

import "maps"

// Builder is the streaming graph assembler: the crawl engine feeds it
// walker events (zone discovered, chain resolved) and per-name walk
// results as they happen, and it absorbs them straight into the Graph's
// intern tables — zones, hosts, and delegation chains become compact
// int32 ids the moment they stream in, with no string-keyed end-of-crawl
// buffer. Finish only runs the Tarjan/closure pass over the already
// compact arrays, so graph construction memory stays flat in the corpus
// size (one map entry per name, one interned chain per *distinct* chain).
//
// Event ordering contract: a zone must be observed before any chain that
// traverses it, and a host's chain before the results that depend on it —
// exactly the causal order the walker emits them in (it publishes each
// event before the discovery becomes visible to other walk goroutines).
// Chains observed for keys that never become NS hosts of any zone
// (surveyed names also flow through the walker's chain cache) are held in
// a small pending set bounded by the number of in-flight walks and
// dropped on Complete/Fail.
//
// A Builder is single-owner: exactly one goroutine (the crawl's
// assembler) calls its methods. Finish may be called once, after the
// last event.
type Builder struct {
	g *Graph

	// chainIDs dedups interned chains: byte-packed zone-id key -> chain
	// id. Identical delegation chains share one []int32 in g.chains.
	chainIDs map[string]int32
	// pending holds chains whose key is not (yet) an interned NS host.
	pending map[string][]string
	// failedChain keeps the interned chain id of failed names whose
	// chain did resolve, so a later zone listing such a name as an NS
	// host can still attach it (bounded by the failure count).
	failedChain map[string]int32
	// failed maps names whose walk failed; mutually exclusive with
	// g.nameChain (last report wins).
	failed map[string]error

	// epochHosts is the host-table length at the last FinishEpoch: hosts
	// below this index already appeared in a finalized Graph.
	epochHosts int
	// lateAttached collects pre-epoch host ids whose address chain was
	// attached after the host had been published in a finalized Graph —
	// the only way an already-finalized zone's dependency structure (and
	// therefore any chain's TCB or min-cut digraph) can change between
	// epochs. Consumers drain it with TakeLateAttached to invalidate
	// per-chain analysis memos precisely.
	lateAttached map[int32]struct{}

	// Scratch buffers reused across interning calls.
	idBuf  []int32
	keyBuf []byte
}

// NewBuilder creates an empty streaming assembler. sizeHint, when
// positive, pre-sizes the name table for the expected corpus.
func NewBuilder(sizeHint int) *Builder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Builder{
		g: &Graph{
			hostID:    make(map[string]int32),
			zoneID:    make(map[string]int32),
			nameChain: make(map[string]int32, sizeHint),
		},
		chainIDs:     make(map[string]int32),
		pending:      make(map[string][]string),
		failedChain:  make(map[string]int32),
		failed:       make(map[string]error),
		lateAttached: make(map[int32]struct{}),
	}
}

// ObserveZone absorbs one discovered zone cut: the apex is interned, its
// NS hosts are interned, and any chain previously observed for a newly
// interned host is attached. The root ("") is excluded, as throughout the
// paper. First observation of an apex wins, matching the walker's
// first-discovery-wins cache.
func (b *Builder) ObserveZone(apex string, nsHosts []string) {
	if apex == "" {
		return
	}
	g := b.g
	if _, known := g.zoneID[apex]; known {
		return
	}
	g.internZone(apex)
	ids := make([]int32, 0, len(nsHosts))
	for _, h := range nsHosts {
		hid, isNew := g.internHost(h)
		if isNew {
			// The host's chain may already be known: waiting in the
			// pending set, or interned through the host doubling as a
			// surveyed name (completed or failed after its chain walk).
			if chain, ok := b.pending[h]; ok {
				delete(b.pending, h)
				g.hostChain[hid] = b.internChain(chain)
			} else if cid, ok := g.nameChain[h]; ok {
				g.hostChain[hid] = b.chainSlice(cid)
			} else if cid, ok := b.failedChain[h]; ok {
				g.hostChain[hid] = b.chainSlice(cid)
			}
		}
		ids = append(ids, hid)
	}
	sortUnique(&ids)
	g.zoneNS = append(g.zoneNS, ids)
}

// ObserveChain absorbs one resolved delegation chain for key (a
// nameserver host, or a surveyed name passing through the walker's chain
// cache). Chains of interned hosts are interned immediately; others wait
// in the pending set until their host is interned by a zone observation,
// or are dropped when the key completes as a surveyed name.
func (b *Builder) ObserveChain(key string, chain []string) {
	g := b.g
	if hid, ok := g.hostID[key]; ok {
		if g.hostChain[hid] == nil {
			g.hostChain[hid] = b.internChain(chain)
			if int(hid) < b.epochHosts {
				b.lateAttached[hid] = struct{}{}
			}
		}
		return
	}
	if _, ok := b.pending[key]; !ok {
		b.pending[key] = chain
	}
}

// Complete records one successfully walked name and its zone chain. It
// supersedes any earlier Fail for the name. The name's chain stays
// reachable through the intern tables, so a later zone observation
// listing the name as an NS host can still attach it.
func (b *Builder) Complete(name string, chain []string) {
	delete(b.failed, name)
	delete(b.failedChain, name)
	delete(b.pending, name)
	b.g.nameChain[name] = b.internChainID(chain)
}

// Fail records one name whose walk failed. It supersedes any earlier
// Complete for the name. If the name's own chain did resolve before the
// failure (the walker stores it even when the subsequent host walk
// fails), the interned chain id is kept so the name can still serve as
// an NS host of a later-observed zone.
func (b *Builder) Fail(name string, err error) {
	if chain, ok := b.pending[name]; ok {
		b.failedChain[name] = b.internChainID(chain)
		delete(b.pending, name)
	} else if cid, ok := b.g.nameChain[name]; ok {
		b.failedChain[name] = cid
	}
	delete(b.g.nameChain, name)
	b.failed[name] = err
}

// Done reports how many names (successes plus failures) have been
// absorbed so far. A name reported both complete and failed counts once.
func (b *Builder) Done() int { return len(b.g.nameChain) + len(b.failed) }

// Names returns the successfully walked names, sorted.
func (b *Builder) Names() []string { return b.g.Names() }

// Failed returns the per-name failure map. The map is shared with the
// builder; callers own it after Finish.
func (b *Builder) Failed() map[string]error { return b.failed }

// internChainID interns chain into the graph's chain table, deduplicating
// against every chain seen so far, and returns its chain id. Zones not
// (yet) interned are skipped, mirroring the batch builder's behavior —
// the walker's event order guarantees chain zones arrive first.
func (b *Builder) internChainID(chain []string) int32 {
	g := b.g
	ids := b.idBuf[:0]
	for _, apex := range chain {
		if apex == "" {
			continue
		}
		if zid, ok := g.zoneID[apex]; ok {
			ids = append(ids, zid)
		}
	}
	b.idBuf = ids

	key := b.keyBuf[:0]
	for _, id := range ids {
		key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	b.keyBuf = key
	if cid, ok := b.chainIDs[string(key)]; ok {
		return cid
	}
	cid := int32(len(g.chains))
	g.chains = append(g.chains, append([]int32(nil), ids...))
	b.chainIDs[string(key)] = cid
	return cid
}

// internChain interns chain and returns the shared zone-id slice.
func (b *Builder) internChain(chain []string) []int32 {
	return b.chainSlice(b.internChainID(chain))
}

// chainSlice returns the shared zone-id slice of an interned chain,
// never nil: a resolved-but-empty chain must stay distinguishable from
// "no chain known" in hostChain.
func (b *Builder) chainSlice(cid int32) []int32 {
	ids := b.g.chains[cid]
	if ids == nil {
		ids = []int32{}
	}
	return ids
}

// Finish runs the closure pass (Tarjan condensation + bottom-up server
// unions + per-chain TCB unions) over the accumulated compact arrays and
// returns the finished Graph. No snapshot re-walk happens here: all
// interning was done as events streamed in. Finish is terminal: the
// builder's intern state is released and no further events may be fed.
// Long-lived consumers that keep absorbing events between reads use
// FinishEpoch instead.
func (b *Builder) Finish() *Graph {
	g := b.g
	b.pending = nil
	b.chainIDs = nil
	b.failedChain = nil
	g.computeClosures()
	g.computeChainTCBs()
	return g
}

// FinishEpoch runs the closure pass over the state accumulated so far and
// returns an immutable snapshot Graph, leaving the builder open: events
// may keep streaming in and FinishEpoch may be called again for the next
// epoch. The snapshot is safe for concurrent readers while the builder
// advances because nothing it references is ever mutated afterwards:
//
//   - hosts/zones/chains/zoneNS are append-only — the snapshot's slice
//     headers pin the epoch's length, and later appends never rewrite
//     occupied elements (inner slices are interned and immutable);
//   - hostChain entries can be assigned later (a pending chain attaching
//     to an existing host), so the id-indexed headers are copied;
//   - the intern maps (hostID, zoneID, nameChain) keep growing, so they
//     are cloned.
//
// The clone cost is O(names + hosts + zones) slice headers and map
// entries per epoch; the closure pass itself is the same one Finish runs.
func (b *Builder) FinishEpoch() *Graph {
	g := b.g
	eg := &Graph{
		hosts:     g.hosts[:len(g.hosts):len(g.hosts)],
		hostID:    maps.Clone(g.hostID),
		zones:     g.zones[:len(g.zones):len(g.zones)],
		zoneID:    maps.Clone(g.zoneID),
		zoneNS:    g.zoneNS[:len(g.zoneNS):len(g.zoneNS)],
		hostChain: append([][]int32(nil), g.hostChain...),
		chains:    g.chains[:len(g.chains):len(g.chains)],
		nameChain: maps.Clone(g.nameChain),
	}
	eg.computeClosures()
	eg.computeChainTCBs()
	b.epochHosts = len(g.hosts)
	return eg
}

// TakeLateAttached returns and clears the set of host ids — all below the
// previous epoch's host count — whose address chain was attached since
// the previous FinishEpoch. These are the only hosts through which an
// already-finalized epoch's dependency structure can differ from the next
// epoch's: a delegation chain whose TCB avoids all of them has an
// identical TCB and min-cut digraph in both epochs, so per-chain analysis
// memos need only invalidate chains whose TCB intersects this set. Call
// it between FinishEpoch and the next batch of events.
func (b *Builder) TakeLateAttached() []int32 {
	if len(b.lateAttached) == 0 {
		return nil
	}
	out := make([]int32, 0, len(b.lateAttached))
	for hid := range b.lateAttached {
		out = append(out, hid)
	}
	clear(b.lateAttached)
	sortUnique(&out)
	return out
}
