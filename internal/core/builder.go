package core

import (
	"sort"

	"dnstrust/internal/resolver"
)

// Builder is the streaming snapshot assembler: the crawl engine feeds it
// per-name walk results as they complete (no end-of-crawl barrier), and
// Finish folds the accumulated name-level state into the walker's
// zone/host snapshot and builds the dependency Graph in one pass.
//
// A Builder is single-owner: exactly one goroutine (the crawl's
// assembler) calls Complete/Fail. Finish may be called once, after the
// last result.
type Builder struct {
	nameChain map[string][]string
	failed    map[string]error
}

// NewBuilder creates an empty streaming assembler. sizeHint, when
// positive, pre-sizes the name table for the expected corpus.
func NewBuilder(sizeHint int) *Builder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Builder{
		nameChain: make(map[string][]string, sizeHint),
		failed:    make(map[string]error),
	}
}

// Complete records one successfully walked name and its zone chain.
func (b *Builder) Complete(name string, chain []string) {
	b.nameChain[name] = chain
}

// Fail records one name whose walk failed.
func (b *Builder) Fail(name string, err error) {
	b.failed[name] = err
}

// Done reports how many names (successes plus failures) have been
// absorbed so far.
func (b *Builder) Done() int { return len(b.nameChain) + len(b.failed) }

// Names returns the successfully walked names, sorted.
func (b *Builder) Names() []string {
	out := make([]string, 0, len(b.nameChain))
	for n := range b.nameChain {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Failed returns the per-name failure map. The map is shared with the
// builder; callers own it after Finish.
func (b *Builder) Failed() map[string]error { return b.failed }

// Finish folds the accumulated name results into snap (which carries the
// walker's zone and host-chain state) and builds the dependency graph.
func (b *Builder) Finish(snap *resolver.Snapshot) *Graph {
	for name, chain := range b.nameChain {
		snap.NameChain[name] = chain
	}
	for name, err := range b.failed {
		snap.Failed[name] = err
	}
	return Build(snap)
}
