package core

import "sort"

// Builder is the streaming graph assembler: the crawl engine feeds it
// walker events (zone discovered, chain resolved) and per-name walk
// results as they happen, and it absorbs them straight into the shared
// epoch store's intern tables — zones, hosts, and delegation chains
// become compact int32 ids the moment they stream in, with no
// string-keyed end-of-crawl buffer. Finish only runs the Tarjan/closure
// pass over the already compact arrays, so graph construction memory
// stays flat in the corpus size (one map entry per name, one interned
// chain per *distinct* chain).
//
// Event ordering contract: a zone must be observed before any chain that
// traverses it, and a host's chain before the results that depend on it —
// exactly the causal order the walker emits them in (it publishes each
// event before the discovery becomes visible to other walk goroutines).
// Chains observed for keys that never become NS hosts of any zone
// (surveyed names also flow through the walker's chain cache) are held in
// a small pending set bounded by the number of in-flight walks and
// dropped on Complete/Fail.
//
// A Builder is single-owner: exactly one goroutine (the crawl's
// assembler) calls its methods. It may keep absorbing events after a
// FinishEpoch — published epochs read the same store copy-on-write, with
// every mutation epoch-stamped so older graphs never see younger writes.
// Finish may be called once, after the last event.
type Builder struct {
	st *store
	// epoch counts FinishEpoch calls; in-flight mutations are stamped
	// epoch+1 (the epoch they will first be visible at).
	epoch int64
	// prev is the last finalized epoch's graph, the copy-on-write donor
	// for the next epoch's closure/TCB tables.
	prev *Graph

	// chainIDs dedups interned chains: byte-packed zone-id key -> chain
	// id. Identical delegation chains share one []int32 in st.chains.
	chainIDs map[string]int32
	// pending holds chains whose key is not (yet) an interned NS host.
	pending map[string][]string
	// failedChain keeps the interned chain id of failed names whose
	// chain did resolve, so a later zone listing such a name as an NS
	// host can still attach it (bounded by the failure count).
	failedChain map[string]int32
	// failed maps names whose walk failed; mutually exclusive with the
	// store's live name mappings (last report wins).
	failed map[string]error

	// versionedPresent counts versioned-table entries whose latest
	// version is present; the live name count is len(store.base) plus
	// this (base entries are always present).
	versionedPresent int
	// touched journals names whose chain mapping changed since the last
	// FinishEpoch, in arrival order (duplicates possible when a name
	// flips twice in one batch; readers dedup). FinishEpoch moves it
	// into the store's per-epoch journal without sorting, so the build
	// hot path pays one append per changed name and nothing at commit.
	// The first live-store epoch is not journaled at all: no older
	// same-store epoch exists to diff it against, so nothing can ever
	// read that journal — and the big initial batch pays nothing.
	touched []string

	// shared flips true once a graph backed by the live store has been
	// published (the first non-empty FinishEpoch): from then on readers
	// can exist and every mutation takes the store lock. Until then the
	// builder writes lock-free — the whole first batch, and any one-shot
	// Build/Finish, never pays for synchronization nobody needs.
	shared bool

	// epochHosts is the host-table length at the last FinishEpoch: hosts
	// below this index already appeared in a finalized Graph.
	epochHosts int
	// lateAttached collects pre-epoch host ids whose address chain was
	// attached after the host had been published in a finalized Graph —
	// the only way an already-finalized zone's dependency structure (and
	// therefore any chain's TCB or min-cut digraph) can change between
	// epochs. Consumers drain it with TakeLateAttached to invalidate
	// per-chain analysis memos precisely.
	lateAttached map[int32]struct{}

	// Scratch buffers reused across interning calls.
	idBuf  []int32
	keyBuf []byte
}

// NewBuilder creates an empty streaming assembler. sizeHint, when
// positive, pre-sizes the name table for the expected corpus.
func NewBuilder(sizeHint int) *Builder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Builder{
		st:           newStore(sizeHint),
		chainIDs:     make(map[string]int32),
		pending:      make(map[string][]string),
		failedChain:  make(map[string]int32),
		failed:       make(map[string]error),
		lateAttached: make(map[int32]struct{}),
	}
}

// lock/unlock guard store mutations, but only once a live-store graph
// has been published — before that no reader exists and the write path
// stays synchronization-free.
func (b *Builder) lock() {
	if b.shared {
		b.st.mu.Lock()
	}
}

func (b *Builder) unlock() {
	if b.shared {
		b.st.mu.Unlock()
	}
}

// ObserveZone absorbs one discovered zone cut: the apex is interned, its
// NS hosts are interned, and any chain previously observed for a newly
// interned host is attached. The root ("") is excluded, as throughout the
// paper. First observation of an apex wins, matching the walker's
// first-discovery-wins cache.
func (b *Builder) ObserveZone(apex string, nsHosts []string) {
	if apex == "" {
		return
	}
	st := b.st
	if _, known := st.zoneID[apex]; known {
		return
	}
	b.lock()
	defer b.unlock()
	zid := int32(len(st.zones))
	st.zones = append(st.zones, apex)
	st.zoneID[apex] = zid
	ids := make([]int32, 0, len(nsHosts))
	for _, h := range nsHosts {
		hid, isNew := b.internHostLocked(h)
		if isNew {
			// The host's chain may already be known: waiting in the
			// pending set, or interned through the host doubling as a
			// surveyed name (completed or failed after its chain walk).
			if chain, ok := b.pending[h]; ok {
				delete(b.pending, h)
				b.attachChainLocked(hid, b.internChainIDLocked(chain))
			} else if vs, ok := st.names[h]; ok && vs.latest().present {
				b.attachChainLocked(hid, vs.latest().cid)
			} else if cid, ok := st.base[h]; ok {
				b.attachChainLocked(hid, cid)
			} else if cid, ok := b.failedChain[h]; ok {
				b.attachChainLocked(hid, cid)
			}
		}
		ids = append(ids, hid)
	}
	sortUnique(&ids)
	st.zoneNS = append(st.zoneNS, ids)
}

// ObserveChain absorbs one resolved delegation chain for key (a
// nameserver host, or a surveyed name passing through the walker's chain
// cache). Chains of interned hosts are interned immediately; others wait
// in the pending set until their host is interned by a zone observation,
// or are dropped when the key completes as a surveyed name.
func (b *Builder) ObserveChain(key string, chain []string) {
	st := b.st
	if hid, ok := st.hostID[key]; ok {
		if st.hostChainAt[hid] == 0 {
			b.lock()
			b.attachChainLocked(hid, b.internChainIDLocked(chain))
			b.unlock()
			if int(hid) < b.epochHosts {
				b.lateAttached[hid] = struct{}{}
			}
		}
		return
	}
	if _, ok := b.pending[key]; !ok {
		b.pending[key] = chain
	}
}

// Complete records one successfully walked name and its zone chain. It
// supersedes any earlier Fail for the name. The name's chain stays
// reachable through the intern tables, so a later zone observation
// listing the name as an NS host can still attach it.
func (b *Builder) Complete(name string, chain []string) {
	delete(b.failed, name)
	delete(b.failedChain, name)
	delete(b.pending, name)
	b.lock()
	cid := b.internChainIDLocked(chain)
	touched := b.completeLocked(name, cid)
	b.unlock()
	if touched {
		b.touched = append(b.touched, name)
	}
}

// completeLocked records name's chain mapping given an already interned
// chain id, shared between the string event path (Complete) and the id
// translation path (CompleteChain). It reports whether the mapping
// changed and must be journaled; callers hold the store lock when
// shared and append to the touched buffer outside it.
func (b *Builder) completeLocked(name string, cid int32) bool {
	st := b.st
	if !b.shared {
		// First live epoch: no reader exists and no history is needed —
		// one compact map assignment, exactly the pre-timeline hot path.
		st.base[name] = cid
		st.chainNames[cid] = append(st.chainNames[cid], name)
		return false
	}
	nv := nameVer{epoch: b.epoch + 1, cid: cid, present: true}
	if vs, ok := st.names[name]; ok {
		lv := vs.latest()
		if lv.present && lv.cid == cid {
			return false // unchanged mapping: no new version, no touch
		}
		b.writeVersionLocked(name, vs, lv, nv)
		if !lv.present {
			b.versionedPresent++
		}
	} else if bcid, ok := st.base[name]; ok {
		if bcid == cid {
			return false // unchanged mapping
		}
		// Re-chained: the base mapping becomes version 0.
		delete(st.base, name)
		m := []nameVer{nv}
		st.names[name] = nameVers{v0: nameVer{epoch: st.baseEpoch, cid: bcid, present: true}, more: &m}
		b.versionedPresent++ // base shrank by one: net live count unchanged
	} else {
		st.names[name] = nameVers{v0: nv}
		b.versionedPresent++
	}
	st.chainNames[cid] = append(st.chainNames[cid], name)
	return true
}

// Fail records one name whose walk failed. It supersedes any earlier
// Complete for the name. If the name's own chain did resolve before the
// failure (the walker stores it even when the subsequent host walk
// fails), the interned chain id is kept so the name can still serve as
// an NS host of a later-observed zone.
func (b *Builder) Fail(name string, err error) {
	st := b.st
	if chain, ok := b.pending[name]; ok {
		b.lock()
		b.failedChain[name] = b.internChainIDLocked(chain)
		b.unlock()
		delete(b.pending, name)
	} else if vs, ok := st.names[name]; ok && vs.latest().present {
		b.failedChain[name] = vs.latest().cid
	} else if bcid, ok := st.base[name]; ok {
		b.failedChain[name] = bcid
	}
	if !b.shared {
		delete(st.base, name)
		b.failed[name] = err
		return
	}
	if vs, ok := st.names[name]; ok {
		if lv := vs.latest(); lv.present {
			b.lock()
			b.writeVersionLocked(name, vs, lv, nameVer{epoch: b.epoch + 1, cid: lv.cid, present: false})
			b.unlock()
			b.versionedPresent--
			b.touched = append(b.touched, name)
		}
	} else if bcid, ok := st.base[name]; ok {
		// A base name stops resolving: its mapping becomes version 0
		// with an absent version on top (old epochs keep seeing it).
		b.lock()
		delete(st.base, name)
		m := []nameVer{{epoch: b.epoch + 1, cid: bcid, present: false}}
		st.names[name] = nameVers{v0: nameVer{epoch: st.baseEpoch, cid: bcid, present: true}, more: &m}
		b.unlock()
		b.touched = append(b.touched, name)
	}
	b.failed[name] = err
}

// writeVersionLocked records nv as the newest version of a name whose
// current entry is vs (with latest version lv). Same-epoch rewrites
// (fail→complete flips within one batch) collapse to a single version so
// histories stay short. Callers hold the store lock when shared.
func (b *Builder) writeVersionLocked(name string, vs nameVers, lv nameVer, nv nameVer) {
	if lv.epoch == nv.epoch {
		if vs.more != nil {
			(*vs.more)[len(*vs.more)-1] = nv
			return // mutated behind the overflow pointer: no map write
		}
		vs.v0 = nv
		b.st.names[name] = vs
		return
	}
	if vs.more == nil {
		vs.more = &[]nameVer{nv}
		b.st.names[name] = vs
		return
	}
	*vs.more = append(*vs.more, nv)
}

// numNames reports the current live (present) name count.
func (b *Builder) numNames() int { return len(b.st.base) + b.versionedPresent }

// Done reports how many names (successes plus failures) have been
// absorbed so far. A name reported both complete and failed counts once.
func (b *Builder) Done() int { return b.numNames() + len(b.failed) }

// Names returns the successfully walked names at the builder's current
// (uncommitted) state, sorted.
func (b *Builder) Names() []string {
	out := make([]string, 0, b.numNames())
	for name := range b.st.base {
		out = append(out, name)
	}
	for name, vs := range b.st.names {
		if vs.latest().present {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Failed returns the per-name failure map. The map is shared with the
// builder; callers own it after Finish.
func (b *Builder) Failed() map[string]error { return b.failed }

// internHostLocked interns a host name and reports whether it was new.
// Callers hold st.mu.
func (b *Builder) internHostLocked(host string) (int32, bool) {
	st := b.st
	if id, ok := st.hostID[host]; ok {
		return id, false
	}
	id := int32(len(st.hosts))
	st.hosts = append(st.hosts, host)
	st.hostID[host] = id
	st.hostChain = append(st.hostChain, nil)
	st.hostChainAt = append(st.hostChainAt, 0)
	return id, true
}

// attachChainLocked assigns host hid's address chain, stamped with the
// epoch it becomes visible at. Callers hold st.mu; entries are assigned
// at most once.
func (b *Builder) attachChainLocked(hid, cid int32) {
	st := b.st
	st.hostChain[hid] = b.chainSliceLocked(cid)
	st.hostChainAt[hid] = b.epoch + 1
}

// internChainIDLocked interns chain into the store's chain table,
// deduplicating against every chain seen so far, and returns its chain
// id. Zones not (yet) interned are skipped, mirroring the batch
// builder's behavior — the walker's event order guarantees chain zones
// arrive first. Callers hold st.mu.
func (b *Builder) internChainIDLocked(chain []string) int32 {
	st := b.st
	ids := b.idBuf[:0]
	for _, apex := range chain {
		if apex == "" {
			continue
		}
		if zid, ok := st.zoneID[apex]; ok {
			ids = append(ids, zid)
		}
	}
	b.idBuf = ids
	return b.internChainFromIDsLocked(ids)
}

// internChainFromIDsLocked interns a chain already expressed as zone
// ids — the tail of the string path above, and the whole path for id
// translation (InternChain). Callers hold st.mu.
func (b *Builder) internChainFromIDsLocked(ids []int32) int32 {
	st := b.st
	key := b.keyBuf[:0]
	for _, id := range ids {
		key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	b.keyBuf = key
	if cid, ok := b.chainIDs[string(key)]; ok {
		return cid
	}
	cid := int32(len(st.chains))
	st.chains = append(st.chains, append([]int32(nil), ids...))
	st.chainNames = append(st.chainNames, nil)
	b.chainIDs[string(key)] = cid
	return cid
}

// chainSliceLocked returns the shared zone-id slice of an interned
// chain, never nil: a resolved-but-empty chain must stay distinguishable
// from "no chain known" in hostChain.
func (b *Builder) chainSliceLocked(cid int32) []int32 {
	ids := b.st.chains[cid]
	if ids == nil {
		ids = []int32{}
	}
	return ids
}

// Finish runs the closure pass (Tarjan condensation + bottom-up server
// unions + per-chain TCB unions) over the accumulated compact arrays and
// returns the finished Graph. No snapshot re-walk happens here: all
// interning was done as events streamed in. Finish is terminal: the
// builder's intern state is released and no further events may be fed.
// Long-lived consumers that keep absorbing events between reads use
// FinishEpoch instead.
func (b *Builder) Finish() *Graph {
	g := b.FinishEpoch()
	b.pending = nil
	b.chainIDs = nil
	b.failedChain = nil
	return g
}

// FinishEpoch runs the closure pass over the state accumulated so far and
// returns an immutable snapshot Graph, leaving the builder open: events
// may keep streaming in and FinishEpoch may be called again for the next
// epoch. The snapshot is safe for concurrent readers while the builder
// advances because every graph of one builder reads the same store
// copy-on-write:
//
//   - hosts/zones/chains/zoneNS are append-only — the snapshot pins the
//     epoch's lengths, and later appends never rewrite occupied elements
//     (inner slices are interned and immutable);
//   - hostChain attachments and name→chain mappings are epoch-stamped
//     (versioned, for names), so an older epoch never observes a younger
//     write;
//   - the intern maps are shared under the store's read-write lock
//     instead of being cloned per epoch.
//
// The per-epoch cost is therefore the closure pass plus O(zones+chains)
// slice headers, with inner closure/TCB slices aliased to the previous
// epoch whenever unchanged — N retained generations of a large survey
// share one copy of almost everything.
func (b *Builder) FinishEpoch() *Graph {
	st := b.st
	b.epoch++

	// An epoch of a still-empty store (the Monitor's pre-crawl
	// generation 0) is backed by its own empty store: the live store
	// then has no readers yet, and the whole first batch — usually the
	// big one — streams in without any locking.
	if !b.shared && len(st.zones) == 0 && len(st.hosts) == 0 && len(st.base) == 0 && len(st.names) == 0 {
		eg := &Graph{st: newStore(0), epoch: b.epoch}
		eg.computeClosures(nil, nil)
		eg.computeChainTCBs(nil, nil)
		return eg
	}

	g := &Graph{
		st:       st,
		epoch:    b.epoch,
		hosts:    st.hosts[:len(st.hosts):len(st.hosts)],
		zones:    st.zones[:len(st.zones):len(st.zones)],
		chains:   st.chains[:len(st.chains):len(st.chains)],
		zoneNS:   st.zoneNS[:len(st.zoneNS):len(st.zoneNS)],
		numNames: b.numNames(),
	}
	g.computeClosures(b.prev, st.hostChain)
	g.computeChainTCBs(b.prev, b.lateAttached)
	if len(b.touched) > 0 {
		b.lock()
		st.touched[b.epoch] = b.touched
		b.unlock()
		b.touched = nil
	}
	b.epochHosts = len(st.hosts)
	b.prev = g
	// The graph is about to be published: later mutations can race its
	// readers and must synchronize, and base entries are frozen as
	// visible from this epoch on.
	if !b.shared {
		st.baseEpoch = b.epoch
		b.shared = true
	}
	return g
}

// PruneJournal discards the per-epoch change journals at and below the
// given epoch. Call it with the oldest epoch still diffable (a Monitor
// passes the oldest retained generation's epoch as views fall off its
// bounded timeline): journals the retained views can read stay intact,
// and a caller still holding an evicted view transparently gets the
// by-name diff path (Graph.JournalComplete gates the shortcut). This
// bounds the store's historic growth to the retention window plus
// per-name version lists, which grow only with genuine churn.
func (b *Builder) PruneJournal(upTo int64) {
	st := b.st
	b.lock()
	for e := st.journalFloor + 1; e <= upTo; e++ {
		delete(st.touched, e)
	}
	if upTo > st.journalFloor {
		st.journalFloor = upTo
	}
	b.unlock()
}

// TakeLateAttached returns and clears the set of host ids — all below the
// previous epoch's host count — whose address chain was attached since
// the previous FinishEpoch. These are the only hosts through which an
// already-finalized epoch's dependency structure can differ from the next
// epoch's: a delegation chain whose TCB avoids all of them has an
// identical TCB and min-cut digraph in both epochs, so per-chain analysis
// memos need only invalidate chains whose TCB intersects this set. Call
// it between FinishEpoch and the next batch of events.
func (b *Builder) TakeLateAttached() []int32 {
	if len(b.lateAttached) == 0 {
		return nil
	}
	out := make([]int32, 0, len(b.lateAttached))
	for hid := range b.lateAttached {
		out = append(out, hid)
	}
	clear(b.lateAttached)
	sortUnique(&out)
	return out
}
