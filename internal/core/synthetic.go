package core

import (
	"fmt"
	"time"
)

// SyntheticBuild streams a synthetic corpus of the given size through a
// fresh Builder and finishes it, returning the graph and the wall time
// Finish took. It is the single measurement body shared by the build
// benchmarks in bench_test.go and cmd/dnsbench, so both report the same
// quantity.
func SyntheticBuild(names int) (*Graph, time.Duration) {
	b := NewBuilder(names)
	FeedSynthetic(b, names)
	start := time.Now()
	g := b.Finish()
	return g, time.Since(start)
}

// FeedSynthetic streams a synthetic corpus of the given size into b,
// exercising the incremental build path exactly the way a crawl does:
// zone-discovered and chain-resolved events interleaved with per-name
// completions, in causal order. It is the shared driver of the
// million-name build benchmarks (bench_test.go, cmd/dnsbench), shaped
// like the paper's survey: a fixed TLD layer, hostingDomains provider
// domains with in-bailiwick nameservers, and names/name-chains riding
// them — so distinct delegation chains number ~hostingDomains while
// names number `names`, and memory growth per name isolates the
// per-name cost of graph construction.
func FeedSynthetic(b *Builder, names int) {
	FeedSyntheticRange(b, 0, names, names)
}

// FeedSyntheticRange streams the [lo, hi) slice of a total-name synthetic
// corpus into b, so a corpus can be fed across several epochs the way a
// Monitor's incremental Adds would deliver it. Feeding every slice of
// [0, total) in order produces exactly the events FeedSynthetic(b, total)
// would: zone and chain observations repeated across slice boundaries are
// deduplicated by the builder's first-observation-wins contract.
func FeedSyntheticRange(b *Builder, lo, hi, total int) {
	const tlds = 12
	const namesPerDomain = 50
	domains := total / namesPerDomain
	if domains < 1 {
		domains = 1
	}

	tld := func(i int) string { return fmt.Sprintf("tld%d", i) }
	// TLD layer: each TLD served by two shared registry hosts whose
	// chains terminate at the TLD layer itself.
	for i := 0; i < tlds; i++ {
		ns1 := fmt.Sprintf("a.reg%d.%s", i%4, tld(i))
		ns2 := fmt.Sprintf("b.reg%d.%s", i%4, tld(i))
		b.ObserveZone(tld(i), []string{ns1, ns2})
		b.ObserveChain(ns1, []string{tld(i)})
		b.ObserveChain(ns2, []string{tld(i)})
	}
	// Hosting domains with two in-bailiwick nameservers each, then the
	// domain's share of surveyed names. Only domains whose name range
	// overlaps [lo, hi) are touched.
	for d := lo / namesPerDomain; d < domains; d++ {
		if d*namesPerDomain >= hi {
			break
		}
		zt := tld(d % tlds)
		dom := fmt.Sprintf("dom%d.%s", d, zt)
		ns1 := "ns1." + dom
		ns2 := "ns2." + dom
		b.ObserveZone(dom, []string{ns1, ns2})
		b.ObserveChain(ns1, []string{zt, dom})
		b.ObserveChain(ns2, []string{zt, dom})
		dhi := (d + 1) * namesPerDomain
		if d == domains-1 || dhi > total {
			dhi = total // the last domain absorbs any remainder
		}
		if dhi > hi {
			dhi = hi
		}
		for n := max(d*namesPerDomain, lo); n < dhi; n++ {
			b.Complete(fmt.Sprintf("www%d.%s", n, dom), []string{zt, dom})
		}
	}
}
