package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"dnstrust/internal/snapshot"
)

// This file persists a Builder — the epoch store plus the builder's own
// resumable state — into the snapshot container, and loads it back. The
// layout mirrors the in-memory design: append-only intern arrays become
// flat sections of int32 ids, aliasing between id slices (SCC closure
// sharing, chain/TCB copy-on-write) is preserved through a shared id
// pool per table, and strings load zero-copy as views into the mapped
// file. Only the hash indexes (hostID, zoneID, chainIDs) are rebuilt on
// load — linear in table size, no transport traffic, no replay.
//
// Sections (all inside the snapshot container, see package snapshot):
//
//	core/meta        epoch, baseEpoch, journalFloor, pinned graph dims, flags
//	core/hosts       string table of interned nameserver hosts
//	core/zones       string table of interned zone apexes
//	core/chains      id table: interned delegation chains (zone ids)
//	core/zonens      id table: per-zone NS host ids
//	core/hostchain   per-host attach epoch + chain id (-1 none, -2 empty)
//	core/closure     id table: last graph's per-zone transitive host sets
//	core/zoneadj     id table: last graph's zone dependency adjacency
//	core/chaintcb    id table: last graph's per-chain TCB host sets
//	core/chainstamp  last graph's per-chain change epochs
//	core/base        name -> chain id for untouched first-epoch names
//	core/names       versioned name -> chain histories
//	core/journal     per-epoch touched-name journals above the pruned floor
//	core/touched     builder's uncommitted touched buffer
//	core/failed      failed names and their error strings
//	core/failedchain name -> chain id retained for failed names
//	core/pending     chains awaiting their host's interning
//	core/late        late-attached host ids not yet drained
//
// hostChainAt is the one array the builder writes in place (a pending
// chain attaching to an existing host), so the loader copies it to the
// heap; every other array may remain a read-only view into the mapping.

const (
	hostChainNone  = -1 // no chain attached
	hostChainEmpty = -2 // attached chain is the empty chain
)

// metaFlags bits.
const (
	metaShared  = 1 << 0 // a live-store graph has been published
	metaHasPrev = 1 << 1 // a previous epoch's graph exists
)

// WriteSnapshot serializes the builder and its epoch store as one
// complete snapshot file on w. The caller must ensure the builder is
// quiescent (no concurrent event feeding) — the crawl engine holds its
// commit lock, exactly like between Adds. Concurrent Graph readers are
// unaffected.
func (b *Builder) WriteSnapshot(w io.Writer) error {
	sw := snapshot.NewWriter(w)
	if err := b.WriteSections(sw); err != nil {
		return err
	}
	return sw.Finish()
}

// WriteSections encodes the builder's sections into an already open
// snapshot writer, letting embedding layers (the crawl engine) append
// their own sections to the same file before Finish.
func (b *Builder) WriteSections(w *snapshot.Writer) error {
	st := b.st

	var flags uint32
	if b.shared {
		flags |= metaShared
	}
	if b.prev != nil {
		flags |= metaHasPrev
	}
	var nH, nZ, nC, numNames int
	var closure, zoneAdj, chainTCB [][]int32
	var chainStamp []int64
	if b.prev != nil && b.prev.st == st {
		g := b.prev
		nH, nZ, nC, numNames = len(g.hosts), len(g.zones), len(g.chains), g.numNames
		closure, zoneAdj, chainTCB, chainStamp = g.closure, g.zoneAdj, g.chainTCB, g.chainStamp
	}

	w.Begin("core/meta")
	w.I64(b.epoch)
	w.I64(st.baseEpoch)
	w.I64(st.journalFloor)
	w.U64(uint64(numNames))
	w.U64(uint64(nH))
	w.U64(uint64(nZ))
	w.U64(uint64(nC))
	w.U64(uint64(b.epochHosts))
	w.U32(flags)
	w.U32(0)

	w.Begin("core/hosts")
	if err := snapshot.WriteStringTable(w, st.hosts); err != nil {
		return err
	}
	w.Begin("core/zones")
	if err := snapshot.WriteStringTable(w, st.zones); err != nil {
		return err
	}
	w.Begin("core/chains")
	writeIDTable(w, st.chains)
	w.Begin("core/zonens")
	writeIDTable(w, st.zoneNS)

	w.Begin("core/hostchain")
	w.U64(uint64(len(st.hostChain)))
	w.I64s(st.hostChainAt)
	rev := make(map[*int32]int32, len(st.chains))
	for cid, s := range st.chains {
		if len(s) > 0 {
			rev[&s[0]] = int32(cid)
		}
	}
	cids := make([]int32, len(st.hostChain))
	for h, s := range st.hostChain {
		switch {
		case s == nil:
			cids[h] = hostChainNone
		case len(s) == 0:
			cids[h] = hostChainEmpty
		default:
			cid, ok := rev[&s[0]]
			if !ok {
				return errors.New("core: snapshot: host chain does not alias the chain table")
			}
			cids[h] = cid
		}
	}
	w.I32s(cids)
	w.Pad8()

	w.Begin("core/closure")
	writeIDTable(w, closure)
	w.Begin("core/zoneadj")
	writeIDTable(w, zoneAdj)
	w.Begin("core/chaintcb")
	writeIDTable(w, chainTCB)
	w.Begin("core/chainstamp")
	w.U64(uint64(len(chainStamp)))
	w.I64s(chainStamp)

	// Map-backed sections are written in sorted key order so identical
	// state always serializes to identical bytes.
	w.Begin("core/base")
	baseNames := sortedKeys(st.base)
	w.U64(uint64(len(baseNames)))
	for _, n := range baseNames {
		w.I32(st.base[n])
	}
	w.Pad8()
	if err := snapshot.WriteStringTable(w, baseNames); err != nil {
		return err
	}

	w.Begin("core/names")
	verNames := sortedKeys(st.names)
	var verTotal uint64
	for _, n := range verNames {
		vs := st.names[n]
		verTotal++
		if vs.more != nil {
			verTotal += uint64(len(*vs.more))
		}
	}
	w.U64(uint64(len(verNames)))
	w.U64(verTotal)
	for _, n := range verNames {
		vs := st.names[n]
		cnt := uint32(1)
		if vs.more != nil {
			cnt += uint32(len(*vs.more))
		}
		w.U32(cnt)
	}
	w.Pad8()
	writeVersion := func(v nameVer) {
		w.I64(v.epoch)
		w.I32(v.cid)
		if v.present {
			w.U32(1)
		} else {
			w.U32(0)
		}
	}
	for _, n := range verNames {
		vs := st.names[n]
		writeVersion(vs.v0)
		if vs.more != nil {
			for _, v := range *vs.more {
				writeVersion(v)
			}
		}
	}
	if err := snapshot.WriteStringTable(w, verNames); err != nil {
		return err
	}

	w.Begin("core/journal")
	epochs := make([]int64, 0, len(st.touched))
	for e := range st.touched {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	w.U64(uint64(len(epochs)))
	w.I64s(epochs)
	var jnames []string
	for _, e := range epochs {
		w.U32(uint32(len(st.touched[e])))
		jnames = append(jnames, st.touched[e]...)
	}
	w.Pad8()
	if err := snapshot.WriteStringTable(w, jnames); err != nil {
		return err
	}

	w.Begin("core/touched")
	if err := snapshot.WriteStringTable(w, b.touched); err != nil {
		return err
	}

	w.Begin("core/failed")
	failedNames := sortedKeys(b.failed)
	if err := snapshot.WriteStringTable(w, failedNames); err != nil {
		return err
	}
	errStrs := make([]string, len(failedNames))
	for i, n := range failedNames {
		errStrs[i] = b.failed[n].Error()
	}
	if err := snapshot.WriteStringTable(w, errStrs); err != nil {
		return err
	}

	w.Begin("core/failedchain")
	fcNames := sortedKeys(b.failedChain)
	w.U64(uint64(len(fcNames)))
	for _, n := range fcNames {
		w.I32(b.failedChain[n])
	}
	w.Pad8()
	if err := snapshot.WriteStringTable(w, fcNames); err != nil {
		return err
	}

	w.Begin("core/pending")
	pKeys := sortedKeys(b.pending)
	w.U64(uint64(len(pKeys)))
	var pElems []string
	for _, k := range pKeys {
		w.U32(uint32(len(b.pending[k])))
		pElems = append(pElems, b.pending[k]...)
	}
	w.Pad8()
	if err := snapshot.WriteStringTable(w, pKeys); err != nil {
		return err
	}
	if err := snapshot.WriteStringTable(w, pElems); err != nil {
		return err
	}

	w.Begin("core/late")
	late := make([]int32, 0, len(b.lateAttached))
	for hid := range b.lateAttached {
		late = append(late, hid)
	}
	sortUnique(&late)
	w.U64(uint64(len(late)))
	w.I32s(late)
	w.Pad8()

	return w.Err()
}

// OpenSnapshot opens a snapshot file (memory-mapped where possible) and
// reconstructs the builder it was written from. The returned builder
// owns the file for the life of the process — hot arrays are views into
// the mapping, so the mapping is never released.
func OpenSnapshot(path string) (*Builder, error) {
	f, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	b, err := LoadSnapshot(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return b, nil
}

// ReadSnapshot reconstructs a builder from a snapshot on any io.Reader —
// the pure-portability fallback path, behaviorally identical to
// OpenSnapshot minus the shared mapping.
func ReadSnapshot(r io.Reader) (*Builder, error) {
	f, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	return LoadSnapshot(f)
}

// LoadSnapshot reconstructs a builder from an opened snapshot file. Hash
// indexes are rebuilt (linear in table sizes); everything else loads as
// views over the file's sections. The store keeps a reference to f, so
// callers must not Close it while the builder or any of its graphs live.
func LoadSnapshot(f *snapshot.File) (*Builder, error) {
	md := snapshot.NewSectionReader(f, "core/meta")
	epoch := md.I64()
	baseEpoch := md.I64()
	journalFloor := md.I64()
	numNames := md.Int()
	nH := md.Int()
	nZ := md.Int()
	nC := md.Int()
	epochHosts := md.Int()
	flags := md.U32()
	if err := md.Err(); err != nil {
		return nil, err
	}

	hd := snapshot.NewSectionReader(f, "core/hosts")
	hosts := hd.Strings()
	zd := snapshot.NewSectionReader(f, "core/zones")
	zones := zd.Strings()
	cd := snapshot.NewSectionReader(f, "core/chains")
	chains := readIDTable(cd)
	nd := snapshot.NewSectionReader(f, "core/zonens")
	zoneNS := readIDTable(nd)
	if err := firstErr(hd, zd, cd, nd); err != nil {
		return nil, err
	}
	if len(zoneNS) != len(zones) {
		return nil, corruptf("core/zonens", "%d entries for %d zones", len(zoneNS), len(zones))
	}
	if nH > len(hosts) || nZ > len(zones) || nC > len(chains) {
		return nil, corruptf("core/meta", "pinned dims exceed table sizes")
	}

	hc := snapshot.NewSectionReader(f, "core/hostchain")
	nHosts := hc.Count(12)
	// hostChainAt is builder-mutable (chains attach in place), so it is
	// copied off the mapping rather than viewed.
	hostChainAt := append([]int64(nil), hc.I64s(nHosts)...)
	hcCids := hc.I32s(nHosts)
	if err := hc.Err(); err != nil {
		return nil, err
	}
	if nHosts != len(hosts) {
		return nil, corruptf("core/hostchain", "%d entries for %d hosts", nHosts, len(hosts))
	}
	hostChain := make([][]int32, nHosts)
	for h, cid := range hcCids {
		switch {
		case cid == hostChainNone:
		case cid == hostChainEmpty:
			hostChain[h] = []int32{}
		case int(cid) < len(chains) && len(chains[cid]) > 0:
			hostChain[h] = chains[cid]
		default:
			return nil, corruptf("core/hostchain", "host %d references chain %d", h, cid)
		}
	}

	cld := snapshot.NewSectionReader(f, "core/closure")
	closure := readIDTable(cld)
	ad := snapshot.NewSectionReader(f, "core/zoneadj")
	zoneAdj := readIDTable(ad)
	td := snapshot.NewSectionReader(f, "core/chaintcb")
	chainTCB := readIDTable(td)
	sd := snapshot.NewSectionReader(f, "core/chainstamp")
	chainStamp := sd.I64s(sd.Count(8))
	if err := firstErr(cld, ad, td, sd); err != nil {
		return nil, err
	}
	shared := flags&metaShared != 0
	if shared && (len(closure) != nZ || len(zoneAdj) != nZ || len(chainTCB) != nC || len(chainStamp) != nC) {
		return nil, corruptf("core/closure", "graph table dims do not match pinned dims")
	}

	bd := snapshot.NewSectionReader(f, "core/base")
	nBase := bd.Count(4)
	baseCids := bd.I32s(nBase)
	bd.Pad8()
	baseNames := bd.Strings()
	if err := bd.Err(); err != nil {
		return nil, err
	}
	if len(baseNames) != nBase {
		return nil, corruptf("core/base", "%d names for %d ids", len(baseNames), nBase)
	}

	vd := snapshot.NewSectionReader(f, "core/names")
	nVer := vd.Count(4)
	verTotal := vd.Count(16)
	verCounts := vd.I32s(nVer)
	vd.Pad8()
	verPool := vd.Take(16 * verTotal)
	verNames := vd.Strings()
	if err := vd.Err(); err != nil {
		return nil, err
	}
	if len(verNames) != nVer {
		return nil, corruptf("core/names", "%d names for %d histories", len(verNames), nVer)
	}

	jd := snapshot.NewSectionReader(f, "core/journal")
	nEpochs := jd.Count(12)
	jEpochs := jd.I64s(nEpochs)
	jCounts := jd.I32s(nEpochs)
	jd.Pad8()
	jNames := jd.Strings()
	if err := jd.Err(); err != nil {
		return nil, err
	}

	ud := snapshot.NewSectionReader(f, "core/touched")
	touchedBuf := ud.Strings()

	fd := snapshot.NewSectionReader(f, "core/failed")
	failedNames := fd.Strings()
	failedErrs := fd.Strings()
	if fd.Err() == nil && len(failedErrs) != len(failedNames) {
		return nil, corruptf("core/failed", "%d errors for %d names", len(failedErrs), len(failedNames))
	}

	fcd := snapshot.NewSectionReader(f, "core/failedchain")
	nFC := fcd.Count(4)
	fcCids := fcd.I32s(nFC)
	fcd.Pad8()
	fcNames := fcd.Strings()
	if fcd.Err() == nil && len(fcNames) != nFC {
		return nil, corruptf("core/failedchain", "%d names for %d ids", len(fcNames), nFC)
	}

	pd := snapshot.NewSectionReader(f, "core/pending")
	nPend := pd.Count(4)
	pendCounts := pd.I32s(nPend)
	pd.Pad8()
	pendKeys := pd.Strings()
	pendElems := pd.Strings()
	if pd.Err() == nil && len(pendKeys) != nPend {
		return nil, corruptf("core/pending", "%d keys for %d counts", len(pendKeys), nPend)
	}

	ld := snapshot.NewSectionReader(f, "core/late")
	lateIDs := ld.I32s(ld.Count(4))

	if err := firstErr(ud, fd, fcd, pd, ld); err != nil {
		return nil, err
	}

	// Assemble the store and rebuild the hash indexes.
	st := &store{
		hostID:       make(map[string]int32, len(hosts)),
		zoneID:       make(map[string]int32, len(zones)),
		hosts:        hosts,
		zones:        zones,
		chains:       chains,
		zoneNS:       zoneNS,
		hostChain:    hostChain,
		hostChainAt:  hostChainAt,
		base:         make(map[string]int32, nBase),
		baseEpoch:    baseEpoch,
		names:        make(map[string]nameVers, nVer),
		chainNames:   make([][]string, len(chains)),
		touched:      make(map[int64][]string, nEpochs),
		journalFloor: journalFloor,
		snap:         f,
	}
	for i, h := range hosts {
		st.hostID[h] = int32(i)
	}
	for i, z := range zones {
		st.zoneID[z] = int32(i)
	}
	addChainName := func(cid int32, name string) error {
		if int(cid) >= len(chains) || cid < 0 {
			return corruptf("core/base", "name %q references chain %d of %d", name, cid, len(chains))
		}
		st.chainNames[cid] = append(st.chainNames[cid], name)
		return nil
	}
	for i, n := range baseNames {
		st.base[n] = baseCids[i]
		if err := addChainName(baseCids[i], n); err != nil {
			return nil, err
		}
	}
	versionedPresent := 0
	vp := 0
	for i, n := range verNames {
		cnt := int(verCounts[i])
		if cnt < 1 || vp+cnt > verTotal {
			return nil, corruptf("core/names", "history of %q overruns the version pool", n)
		}
		readVer := func(j int) nameVer {
			rec := verPool[16*j:]
			return nameVer{
				epoch:   int64(binary.LittleEndian.Uint64(rec)),
				cid:     int32(binary.LittleEndian.Uint32(rec[8:])),
				present: binary.LittleEndian.Uint32(rec[12:]) != 0,
			}
		}
		vs := nameVers{v0: readVer(vp)}
		if cnt > 1 {
			more := make([]nameVer, cnt-1)
			for j := 1; j < cnt; j++ {
				more[j-1] = readVer(vp + j)
			}
			vs.more = &more
		}
		vp += cnt
		st.names[n] = vs
		lv := vs.latest()
		if lv.present {
			versionedPresent++
		}
		if err := addChainName(vs.v0.cid, n); err != nil && vs.v0.present {
			return nil, err
		}
		if vs.more != nil {
			for _, v := range *vs.more {
				if v.present {
					if err := addChainName(v.cid, n); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	ji := 0
	for i, e := range jEpochs {
		cnt := int(jCounts[i])
		if cnt < 0 || ji+cnt > len(jNames) {
			return nil, corruptf("core/journal", "epoch %d overruns the name list", e)
		}
		st.touched[e] = jNames[ji : ji+cnt : ji+cnt]
		ji += cnt
	}

	b := &Builder{
		st:               st,
		epoch:            epoch,
		chainIDs:         make(map[string]int32, len(chains)),
		pending:          make(map[string][]string, nPend),
		failedChain:      make(map[string]int32, nFC),
		failed:           make(map[string]error, len(failedNames)),
		versionedPresent: versionedPresent,
		touched:          touchedBuf,
		shared:           shared,
		epochHosts:       epochHosts,
		lateAttached:     make(map[int32]struct{}, len(lateIDs)),
	}
	key := make([]byte, 0, 64)
	for cid, ids := range chains {
		key = key[:0]
		for _, id := range ids {
			key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		b.chainIDs[string(key)] = int32(cid)
	}
	for i, n := range failedNames {
		b.failed[n] = errors.New(failedErrs[i])
	}
	for i, n := range fcNames {
		b.failedChain[n] = fcCids[i]
	}
	pi := 0
	for i, k := range pendKeys {
		cnt := int(pendCounts[i])
		if cnt < 0 || pi+cnt > len(pendElems) {
			return nil, corruptf("core/pending", "chain of %q overruns the element list", k)
		}
		b.pending[k] = pendElems[pi : pi+cnt : pi+cnt]
		pi += cnt
	}
	for _, hid := range lateIDs {
		b.lateAttached[hid] = struct{}{}
	}

	if flags&metaHasPrev != 0 {
		if shared {
			b.prev = &Graph{
				st:         st,
				epoch:      epoch,
				hosts:      hosts[:nH:nH],
				zones:      zones[:nZ:nZ],
				chains:     chains[:nC:nC],
				zoneNS:     zoneNS[:nZ:nZ],
				numNames:   numNames,
				closure:    closure,
				zoneAdj:    zoneAdj,
				chainTCB:   chainTCB,
				chainStamp: chainStamp,
			}
		} else {
			// The last committed epoch predates any live-store content:
			// reconstruct the builder's empty-store graph.
			eg := &Graph{st: newStore(0), epoch: epoch}
			eg.computeClosures(nil, nil)
			eg.computeChainTCBs(nil, nil)
			b.prev = eg
		}
	}
	return b, nil
}

// LastGraph returns the graph of the last committed epoch — after a
// load, the graph the snapshot was taken at — or nil when no epoch has
// been finished. It is the same immutable value FinishEpoch returned.
func (b *Builder) LastGraph() *Graph { return b.prev }

// Epoch reports the builder's current committed epoch count.
func (b *Builder) Epoch() int64 { return b.epoch }

// --- encoding helpers ---

// The id-table codec lives in package snapshot (WriteIDTable /
// ReadIDTable) so remapping readers — the fleet coordinator — can decode
// these sections without reconstructing a store; thin wrappers keep the
// call sites here short.
func writeIDTable(w *snapshot.Writer, table [][]int32) { snapshot.WriteIDTable(w, table) }

func readIDTable(d *snapshot.SectionReader) [][]int32 { return snapshot.ReadIDTable(d) }

// corruptf wraps snapshot.ErrCorrupt with section context: the file's
// checksums passed but its contents are not a consistent store.
func corruptf(sec, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", snapshot.ErrCorrupt, sec, fmt.Sprintf(format, args...))
}

func firstErr(ds ...*snapshot.SectionReader) error {
	for _, d := range ds {
		if err := d.Err(); err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys returns a map's string keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
