package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildEpochs feeds a synthetic corpus across several epochs with some
// churn (failures, re-completions, a pending chain) so every store and
// builder table is populated.
func buildEpochs(total, epochs int) *Builder {
	b := NewBuilder(total)
	per := total / epochs
	for e := 0; e < epochs; e++ {
		lo, hi := e*per, (e+1)*per
		if e == epochs-1 {
			hi = total
		}
		FeedSyntheticRange(b, lo, hi, total)
		if e == 1 {
			// Churn: one name fails, one re-chains, one fails then heals.
			b.Fail("www0.dom0.tld0", errors.New("walk timed out"))
			b.Complete("www1.dom0.tld0", []string{"tld1", "dom1.tld1"})
			b.Fail("www2.dom0.tld0", errors.New("transient"))
			b.Complete("www2.dom0.tld0", []string{"tld0", "dom0.tld0"})
		}
		if e == 2 {
			b.Complete("www0.dom0.tld0", []string{"tld0", "dom0.tld0"})
		}
		b.FinishEpoch()
	}
	// A chain for a key that is not an interned host stays pending; a
	// failure with a resolved chain lands in failedChain.
	b.ObserveChain("orphan.example", []string{"tld0", "dom0.tld0"})
	b.ObserveChain("doomed.example", []string{"tld1", "dom1.tld1"})
	b.Fail("doomed.example", errors.New("no address"))
	return b
}

// compareGraphs asserts got answers every read API identically to want.
func compareGraphs(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.Epoch() != want.Epoch() {
		t.Fatalf("epoch = %d, want %d", got.Epoch(), want.Epoch())
	}
	if got.NumNames() != want.NumNames() || got.NumZones() != want.NumZones() ||
		got.NumHosts() != want.NumHosts() || got.NumChains() != want.NumChains() {
		t.Fatalf("dims = (%d names, %d zones, %d hosts, %d chains), want (%d, %d, %d, %d)",
			got.NumNames(), got.NumZones(), got.NumHosts(), got.NumChains(),
			want.NumNames(), want.NumZones(), want.NumHosts(), want.NumChains())
	}
	if !reflect.DeepEqual(got.Names(), want.Names()) {
		t.Fatal("Names() differ")
	}
	if !reflect.DeepEqual(got.Hosts(), want.Hosts()) || !reflect.DeepEqual(got.Zones(), want.Zones()) {
		t.Fatal("intern tables differ")
	}
	for z := range want.zones {
		zid := int32(z)
		if !int32sEqual(got.ZoneNSIDs(zid), want.ZoneNSIDs(zid)) {
			t.Fatalf("zoneNS[%d] = %v, want %v", z, got.ZoneNSIDs(zid), want.ZoneNSIDs(zid))
		}
		if !int32sEqual(got.closure[z], want.closure[z]) {
			t.Fatalf("closure[%d] differs", z)
		}
		if !int32sEqual(got.zoneAdj[z], want.zoneAdj[z]) {
			t.Fatalf("zoneAdj[%d] differs", z)
		}
	}
	for c := range want.chains {
		cid := int32(c)
		if !int32sEqual(got.ChainZoneIDs(cid), want.ChainZoneIDs(cid)) {
			t.Fatalf("chain %d differs", c)
		}
		if !int32sEqual(got.ChainTCBIDs(cid), want.ChainTCBIDs(cid)) {
			t.Fatalf("chainTCB[%d] differs", c)
		}
		if got.ChainStamp(cid) != want.ChainStamp(cid) {
			t.Fatalf("chainStamp[%d] = %d, want %d", c, got.ChainStamp(cid), want.ChainStamp(cid))
		}
		if !reflect.DeepEqual(got.NamesOnChain(cid), want.NamesOnChain(cid)) {
			t.Fatalf("NamesOnChain(%d) differs", c)
		}
	}
	for h := range want.hosts {
		hid := int32(h)
		if !int32sEqual(got.HostChainIDs(hid), want.HostChainIDs(hid)) {
			t.Fatalf("hostChain[%d] differs", h)
		}
		if (got.HostChainIDs(hid) == nil) != (want.HostChainIDs(hid) == nil) {
			t.Fatalf("hostChain[%d] nilness differs", h)
		}
	}
	for _, name := range want.Names() {
		wt, _ := want.TCBIDs(name)
		gt, err := got.TCBIDs(name)
		if err != nil || !int32sEqual(gt, wt) {
			t.Fatalf("TCB(%q) differs (%v)", name, err)
		}
	}
	for e := int64(0); e <= want.Epoch(); e++ {
		if !reflect.DeepEqual(got.NamesTouchedSince(e), want.NamesTouchedSince(e)) {
			t.Fatalf("NamesTouchedSince(%d) differs", e)
		}
		if got.JournalComplete(e) != want.JournalComplete(e) {
			t.Fatalf("JournalComplete(%d) differs", e)
		}
		if !reflect.DeepEqual(got.ChainsChangedSince(e), want.ChainsChangedSince(e)) {
			t.Fatalf("ChainsChangedSince(%d) differs", e)
		}
	}
}

// compareBuilders asserts the resumable builder state survived.
func compareBuilders(t *testing.T, want, got *Builder) {
	t.Helper()
	if got.epoch != want.epoch || got.shared != want.shared ||
		got.epochHosts != want.epochHosts || got.versionedPresent != want.versionedPresent {
		t.Fatalf("builder scalars differ: got (%d %v %d %d), want (%d %v %d %d)",
			got.epoch, got.shared, got.epochHosts, got.versionedPresent,
			want.epoch, want.shared, want.epochHosts, want.versionedPresent)
	}
	if len(got.failed) != len(want.failed) {
		t.Fatalf("failed count = %d, want %d", len(got.failed), len(want.failed))
	}
	for n, err := range want.failed {
		if g, ok := got.failed[n]; !ok || g.Error() != err.Error() {
			t.Fatalf("failed[%q] = %v, want %v", n, got.failed[n], err)
		}
	}
	if !reflect.DeepEqual(got.failedChain, want.failedChain) {
		t.Fatalf("failedChain differs: %v vs %v", got.failedChain, want.failedChain)
	}
	if !reflect.DeepEqual(got.pending, want.pending) {
		t.Fatalf("pending differs: %v vs %v", got.pending, want.pending)
	}
	if !reflect.DeepEqual(got.chainIDs, want.chainIDs) {
		t.Fatal("rebuilt chainIDs index differs")
	}
	if !reflect.DeepEqual(got.lateAttached, want.lateAttached) {
		t.Fatal("lateAttached differs")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	b := buildEpochs(500, 3)
	var buf bytes.Buffer
	if err := b.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Determinism: identical state serializes to identical bytes.
	var buf2 bytes.Buffer
	if err := b.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two saves of the same state differ")
	}

	lb, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	compareBuilders(t, b, lb)
	compareGraphs(t, b.LastGraph(), lb.LastGraph())

	// A loaded builder re-serializes to the exact original bytes.
	var buf3 bytes.Buffer
	if err := lb.WriteSnapshot(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf3.Bytes()) {
		t.Fatal("save-load-save is not byte-identical")
	}
}

func TestSnapshotOpenMmap(t *testing.T) {
	b := buildEpochs(300, 2)
	path := filepath.Join(t.TempDir(), "core.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	lb, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	compareGraphs(t, b.LastGraph(), lb.LastGraph())
}

// TestSnapshotContinueBuilding is the property that makes restarts real:
// a restored builder absorbing the same events as the original produces
// an equivalent next epoch — including journal diffs and copy-on-write
// chain stamps spanning the restart boundary.
func TestSnapshotContinueBuilding(t *testing.T) {
	const total = 600
	orig := buildEpochs(total, 3)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	before := restored.LastGraph().Epoch()
	for _, b := range []*Builder{orig, restored} {
		FeedSyntheticRange(b, total, total+100, total+100)
		b.Fail("www5.dom0.tld0", errors.New("late failure"))
		b.ObserveZone("dom0.tld0", []string{"late.example"}) // dup zone: ignored
		b.FinishEpoch()
	}
	g1, g2 := orig.LastGraph(), restored.LastGraph()
	compareGraphs(t, g1, g2)
	compareBuilders(t, orig, restored)

	// The post-restart epoch diffs incrementally against the restored one.
	if !g2.JournalComplete(before) {
		t.Fatal("journal broken across the restart boundary")
	}
	if got := g2.NamesTouchedSince(before); len(got) == 0 {
		t.Fatal("no touched names across restart epoch")
	}
	if !reflect.DeepEqual(g2.NamesTouchedSince(before), g1.NamesTouchedSince(before)) {
		t.Fatal("touched journals diverge after restart")
	}
	// Unchanged chains keep their pre-restart stamps (copy-on-write held).
	var kept bool
	for c := 0; c < g2.NumChains(); c++ {
		if g2.ChainStamp(int32(c)) <= before && g2.ChainStamp(int32(c)) == g1.ChainStamp(int32(c)) {
			kept = true
		}
	}
	if !kept {
		t.Fatal("no chain kept its pre-restart stamp")
	}
}

func TestSnapshotEmptyBuilder(t *testing.T) {
	b := NewBuilder(0)
	b.FinishEpoch() // the Monitor's pre-crawl empty generation
	var buf bytes.Buffer
	if err := b.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	lb, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// An empty-store FinishEpoch does not publish a live-store graph, so
	// the restored builder faithfully has none either.
	if lb.Epoch() != 1 || lb.LastGraph() != b.LastGraph() && (lb.LastGraph() == nil) != (b.LastGraph() == nil) {
		t.Fatalf("empty builder restored wrong: epoch %d, graph %v", lb.Epoch(), lb.LastGraph())
	}
	FeedSynthetic(lb, 100)
	if g := lb.FinishEpoch(); g.NumNames() != 100 {
		t.Fatalf("post-restore epoch has %d names", g.NumNames())
	}
}

func TestSnapshotLargeIDs(t *testing.T) {
	// Exercise id widths beyond a byte so the packed chain keys and int32
	// views cover multi-byte values.
	b := NewBuilder(0)
	for i := 0; i < 300; i++ {
		z := fmt.Sprintf("zone%d", i)
		b.ObserveZone(z, []string{"ns." + z})
		b.ObserveChain("ns."+z, []string{z})
		b.Complete("name."+z, []string{z})
	}
	b.FinishEpoch()
	var buf bytes.Buffer
	if err := b.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	lb, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	compareBuilders(t, b, lb)
	compareGraphs(t, b.LastGraph(), lb.LastGraph())
}
