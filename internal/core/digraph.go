package core

import (
	"fmt"
	"sort"
	"strings"

	"dnstrust/internal/dnsname"
)

// Digraph is the per-name, server-level delegation digraph of the paper's
// Figure 1, in the form consumed by the min-cut bottleneck analysis:
//
//   - node Source stands for the surveyed name;
//   - node Sink stands for the trust ground (the root, whose servers the
//     paper excludes and whose referral glue bootstraps all resolution);
//   - one node per nameserver host in the name's TCB;
//   - Source points at the NS hosts of the name's authoritative zone;
//   - a host points at every NS host of every zone on its address chain —
//     any of those servers could be involved in resolving the host;
//   - hosts serving a top-level domain point at Sink: their addresses
//     come from root referral glue, the bootstrap every resolution uses.
//
// A directed path Source→…→Sink is a way resolution can reach ground; a
// vertex cut over host nodes is a server set whose compromise intercepts
// every such path — a complete hijack.
type Digraph struct {
	// Name is the surveyed name this digraph belongs to.
	Name string
	// Hosts maps local node index -> host name. Local indices run
	// 0..len(Hosts)-1; Source and Sink are virtual nodes beyond them.
	Hosts []string
	// Source and Sink are the virtual node indices.
	Source, Sink int
	// Adj is the adjacency list over all nodes (hosts + Source + Sink).
	Adj [][]int
	// hostIndex maps host name -> local node index.
	hostIndex map[string]int
}

// NumNodes returns the total node count including Source and Sink.
func (d *Digraph) NumNodes() int { return len(d.Hosts) + 2 }

// HostNode returns the node index of a host, or -1.
func (d *Digraph) HostNode(host string) int {
	if i, ok := d.hostIndex[dnsname.Canonical(host)]; ok {
		return i
	}
	return -1
}

// ReachableZoneIDs returns every zone id reachable from name's delegation
// chain over the zone dependency graph (the zones of Figure 1's boxes).
func (g *Graph) ReachableZoneIDs(name string) ([]int32, error) {
	cid, ok := g.NameChainID(name)
	if !ok {
		return nil, fmt.Errorf("core: name %q not in survey", name)
	}
	chain := g.chains[cid]
	seen := map[int32]bool{}
	var queue []int32
	for _, z := range chain {
		if !seen[z] {
			seen[z] = true
			queue = append(queue, z)
		}
	}
	for i := 0; i < len(queue); i++ {
		for _, w := range g.zoneAdj[queue[i]] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	return queue, nil
}

// isTLDZone reports whether zone id z is a top-level domain.
func (g *Graph) isTLDZone(z int32) bool {
	return dnsname.CountLabels(g.zones[z]) == 1
}

// Digraph builds the per-name delegation digraph for min-cut analysis.
func (g *Graph) Digraph(name string) (*Digraph, error) {
	name = dnsname.Canonical(name)
	cid, ok := g.NameChainID(name)
	if !ok {
		return nil, fmt.Errorf("core: name %q not in survey", name)
	}
	chain := g.chains[cid]
	if len(chain) == 0 {
		return nil, fmt.Errorf("core: name %q has an empty delegation chain", name)
	}
	tcb := g.chainTCB[cid]

	// Materialize the TCB members' address chains at this epoch in one
	// locked pass (entries can attach in later epochs; the stamp check
	// hides those writes from this graph).
	memberChain := make(map[int32][]int32, len(tcb))
	g.st.mu.RLock()
	for _, hid := range tcb {
		memberChain[hid] = g.hostChainOfLocked(hid)
	}
	g.st.mu.RUnlock()

	d := &Digraph{Name: name, hostIndex: make(map[string]int, len(tcb))}
	local := make(map[int32]int, len(tcb))
	for _, hid := range tcb {
		idx := len(d.Hosts)
		local[hid] = idx
		d.Hosts = append(d.Hosts, g.hosts[hid])
		d.hostIndex[g.hosts[hid]] = idx
	}
	d.Source = len(d.Hosts)
	d.Sink = len(d.Hosts) + 1
	d.Adj = make([][]int, d.NumNodes())

	// Grounded hosts: servers of any TLD zone reachable here.
	grounded := map[int32]bool{}
	zoneIDs, err := g.ReachableZoneIDs(name)
	if err != nil {
		return nil, err
	}
	for _, z := range zoneIDs {
		if g.isTLDZone(z) {
			for _, h := range g.zoneNS[z] {
				grounded[h] = true
			}
		}
	}

	addEdge := func(from, to int) {
		d.Adj[from] = append(d.Adj[from], to)
	}

	// Source -> NS(authoritative zone of name).
	authZone := chain[len(chain)-1]
	for _, h := range g.zoneNS[authZone] {
		if idx, ok := local[h]; ok {
			addEdge(d.Source, idx)
		}
	}

	// Host edges.
	for _, hid := range tcb {
		from := local[hid]
		chain := memberChain[hid]
		// Glue waiver: in-bailiwick servers of their own zone are reached
		// through parent referral glue, so their own zone is not an
		// address dependency.
		if len(chain) > 0 {
			az := chain[len(chain)-1]
			for _, ns := range g.zoneNS[az] {
				if ns == hid {
					chain = chain[:len(chain)-1]
					break
				}
			}
		}
		if grounded[hid] || len(chain) == 0 {
			// TLD servers are root-glue-grounded; hosts with unknown
			// chains are grounded optimistically (the paper treats
			// unknowns optimistically throughout).
			addEdge(from, d.Sink)
			continue
		}
		targets := map[int]bool{}
		for _, z := range chain {
			for _, h2 := range g.zoneNS[z] {
				if idx, ok := local[h2]; ok && idx != from {
					targets[idx] = true
				}
			}
		}
		sorted := make([]int, 0, len(targets))
		for t := range targets {
			sorted = append(sorted, t)
		}
		sort.Ints(sorted)
		for _, t := range sorted {
			addEdge(from, t)
		}
	}
	return d, nil
}

// DOT renders the name's delegation graph in Graphviz format at the zone
// level, mirroring Figure 1 of the paper: one box (cluster) per zone
// listing its nameservers, and an arrow from zone to zone for each
// dependency. Self-loops are omitted for clarity, as in the figure.
func (g *Graph) DOT(name string) (string, error) {
	name = dnsname.Canonical(name)
	zoneIDs, err := g.ReachableZoneIDs(name)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=BT;\n  node [shape=plaintext, fontsize=10];\n")
	fmt.Fprintf(&sb, "  %q [shape=ellipse];\n", name)

	for _, z := range zoneIDs {
		apex := g.zones[z]
		fmt.Fprintf(&sb, "  subgraph \"cluster_%s\" {\n    label=%q;\n", apex, apex)
		for _, h := range g.zoneNS[z] {
			fmt.Fprintf(&sb, "    %q;\n", g.hosts[h])
		}
		sb.WriteString("  }\n")
	}

	// Name -> its chain zones' first servers (visual anchor to each box).
	var chain []int32
	if cid, ok := g.NameChainID(name); ok {
		chain = g.chains[cid]
	}
	if len(chain) > 0 {
		az := chain[len(chain)-1]
		if len(g.zoneNS[az]) > 0 {
			fmt.Fprintf(&sb, "  %q -> %q [lhead=\"cluster_%s\"];\n",
				name, g.hosts[g.zoneNS[az][0]], g.zones[az])
		}
	}

	// Zone -> zone dependency edges (deduplicated, self-loops dropped).
	for _, z := range zoneIDs {
		seen := map[int32]bool{}
		for _, w := range g.zoneAdj[z] {
			if w == z || seen[w] {
				continue
			}
			seen[w] = true
			if len(g.zoneNS[z]) == 0 || len(g.zoneNS[w]) == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  %q -> %q [ltail=\"cluster_%s\", lhead=\"cluster_%s\"];\n",
				g.hosts[g.zoneNS[z][0]], g.hosts[g.zoneNS[w][0]], g.zones[z], g.zones[w])
		}
	}
	sb.WriteString("}\n")
	return sb.String(), nil
}
