package core_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	"dnstrust/internal/core"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

// crawl walks the given names in a registry and builds the graph.
func crawl(t *testing.T, reg *topology.Registry, names ...string) *core.Graph {
	t.Helper()
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	w := resolver.NewWalker(r)
	chains := map[string][]string{}
	for _, n := range names {
		chain, err := w.WalkName(context.Background(), n)
		if err != nil {
			t.Fatalf("WalkName(%q): %v", n, err)
		}
		chains[n] = chain
	}
	return core.Build(w.Snapshot(chains, nil))
}

func TestFigure1TCB(t *testing.T) {
	g := crawl(t, topology.Figure1World(), "www.cs.cornell.edu")
	tcb, err := g.TCB("www.cs.cornell.edu")
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, h := range tcb {
		set[h] = true
	}
	// The paper: "In addition to the top-level domain nameservers, the
	// resolution of this name depends on twenty other nameservers".
	// Check the signature dependencies from Figure 1.
	for _, want := range []string{
		"penguin.cs.cornell.edu", "cudns.cit.cornell.edu",
		"cayuga.cs.rochester.edu", "dns.cs.wisc.edu",
		"dns2.itd.umich.edu", "dns.itd.umich.edu", // the surprising umich dependency
		"a.gtld-servers.net", "a2.nstld.com", // TLD infrastructure
	} {
		if !set[want] {
			t.Errorf("TCB missing %q; got %d hosts: %v", want, len(tcb), tcb)
		}
	}
	// Root servers must be excluded.
	for h := range set {
		if strings.HasSuffix(h, "root-servers.net") {
			t.Errorf("root server %q must not be in the TCB", h)
		}
	}
	// Figure 1 has 13 gtld + 4 nstld + 20 others = TCB well over 30.
	if len(tcb) < 30 {
		t.Errorf("TCB size = %d, expected the full Figure 1 fan-out", len(tcb))
	}
}

func TestFigure1NonTCBExcluded(t *testing.T) {
	reg := topology.Figure1World()
	g := crawl(t, reg, "www.cs.cornell.edu")
	// Every TCB host must be a discovered host of the graph, and TCB must
	// not contain the surveyed name itself.
	tcb, err := g.TCB("www.cs.cornell.edu")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range tcb {
		if h == "www.cs.cornell.edu" {
			t.Error("the surveyed name is not a nameserver")
		}
	}
}

func TestTCBDeterministic(t *testing.T) {
	reg := topology.Figure1World()
	g1 := crawl(t, reg, "www.cs.cornell.edu")
	g2 := crawl(t, reg, "www.cs.cornell.edu")
	t1, _ := g1.TCB("www.cs.cornell.edu")
	t2, _ := g2.TCB("www.cs.cornell.edu")
	if len(t1) != len(t2) {
		t.Fatalf("TCB sizes differ across crawls: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("TCB differs at %d: %q vs %q", i, t1[i], t2[i])
		}
	}
}

func TestFBIWorldTCB(t *testing.T) {
	g := crawl(t, topology.FBIWorld(), "www.fbi.gov")
	tcb, err := g.TCB("www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, h := range tcb {
		set[h] = true
	}
	// The §3.2 chain: sprintip servers, then telemail servers.
	for _, want := range []string{
		"dns.sprintip.com", "dns2.sprintip.com",
		"reston-ns1.telemail.net", "reston-ns2.telemail.net", "reston-ns3.telemail.net",
	} {
		if !set[want] {
			t.Errorf("TCB missing %q", want)
		}
	}
}

func TestOwnedServers(t *testing.T) {
	g := crawl(t, topology.FBIWorld(), "www.fbi.gov")
	owned, external, err := g.OwnedServers("www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	// fbi.gov runs no nameservers of its own: everything is external —
	// exactly the paper's point about outsourced trust.
	if len(owned) != 0 {
		t.Errorf("owned = %v, want none", owned)
	}
	if len(external) == 0 {
		t.Error("external should cover the whole TCB")
	}
}

func TestOwnedServersCornell(t *testing.T) {
	g := crawl(t, topology.Figure1World(), "www.cs.cornell.edu")
	owned, _, err := g.OwnedServers("www.cs.cornell.edu")
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1: nine cornell.edu servers serve Cornell's chain.
	wantOwned := map[string]bool{
		"penguin.cs.cornell.edu": true, "sunup.cs.cornell.edu": true,
		"sundown.cs.cornell.edu": true, "sunburn.cs.cornell.edu": true,
		"iago.cs.cornell.edu": true, "dns.cit.cornell.edu": true,
		"bigred.cit.cornell.edu": true, "cudns.cit.cornell.edu": true,
		"simon.cs.cornell.edu": true,
	}
	if len(owned) != len(wantOwned) {
		t.Errorf("owned = %v (%d), want %d cornell.edu servers", owned, len(owned), len(wantOwned))
	}
	for _, h := range owned {
		if !wantOwned[h] {
			t.Errorf("unexpected owned server %q", h)
		}
	}
}

func TestZoneClosureSubsetOfTCB(t *testing.T) {
	g := crawl(t, topology.Figure1World(), "www.cs.cornell.edu")
	tcb, err := g.TCBIDs("www.cs.cornell.edu")
	if err != nil {
		t.Fatal(err)
	}
	inTCB := map[int32]bool{}
	for _, id := range tcb {
		inTCB[id] = true
	}
	for _, apex := range g.NameChainZones("www.cs.cornell.edu") {
		for _, id := range g.ZoneClosure(apex) {
			if !inTCB[id] {
				t.Errorf("zone %q closure member %q missing from TCB", apex, g.Host(id))
			}
		}
	}
}

func TestClosureMonotoneUnderChain(t *testing.T) {
	// closure(child) must contain NS(child); closure(zone) must contain
	// the closure contribution of every zone its hosts depend on.
	g := crawl(t, topology.UkraineWorld(), "www.rkc.lviv.ua")
	for _, apex := range g.Zones() {
		cl := g.ZoneClosure(apex)
		set := map[int32]bool{}
		for _, id := range cl {
			set[id] = true
		}
		for _, id := range g.ZoneNS(apex) {
			if !set[id] {
				t.Errorf("zone %q closure missing its own NS host %q", apex, g.Host(id))
			}
		}
	}
}

func TestClosureHandlesCycles(t *testing.T) {
	// UkraineWorld has mutual dependencies (net.ua <-> lucky.net.ua).
	g := crawl(t, topology.UkraineWorld(), "www.rkc.lviv.ua")
	a := g.ZoneClosure("net.ua")
	b := g.ZoneClosure("lucky.net.ua")
	// Zones in the same dependency SCC have identical closures.
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("closures empty")
	}
	inA := map[int32]bool{}
	for _, id := range a {
		inA[id] = true
	}
	for _, id := range b {
		if !inA[id] {
			t.Errorf("cyclic zones should share closure; %q missing from net.ua", g.Host(id))
		}
	}
}

func TestTCBIDsSortedUnique(t *testing.T) {
	g := crawl(t, topology.UkraineWorld(), "www.rkc.lviv.ua")
	ids, err := g.TCBIDs("www.rkc.lviv.ua")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("TCB ids not sorted/unique at %d", i)
		}
	}
}

func TestUnknownName(t *testing.T) {
	g := crawl(t, topology.FBIWorld(), "www.fbi.gov")
	if _, err := g.TCB("unknown.example.com"); err == nil {
		t.Error("TCB of unsurveyed name must error")
	}
	if g.TCBSize("unknown.example.com") != -1 {
		t.Error("TCBSize of unsurveyed name must be -1")
	}
	if _, err := g.Digraph("unknown.example.com"); err == nil {
		t.Error("Digraph of unsurveyed name must error")
	}
	if _, err := g.DOT("unknown.example.com"); err == nil {
		t.Error("DOT of unsurveyed name must error")
	}
}

func TestDigraphStructure(t *testing.T) {
	g := crawl(t, topology.FBIWorld(), "www.fbi.gov")
	d, err := g.Digraph("www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != len(d.Hosts)+2 {
		t.Error("node count mismatch")
	}
	// Source must point exactly at fbi.gov's two nameservers.
	var sourceTargets []string
	for _, to := range d.Adj[d.Source] {
		sourceTargets = append(sourceTargets, d.Hosts[to])
	}
	sort.Strings(sourceTargets)
	want := []string{"dns.sprintip.com", "dns2.sprintip.com"}
	if len(sourceTargets) != 2 || sourceTargets[0] != want[0] || sourceTargets[1] != want[1] {
		t.Errorf("source targets = %v, want %v", sourceTargets, want)
	}
	// gov TLD servers must be grounded at the sink.
	govNode := d.HostNode("a.gov-servers.net")
	if govNode < 0 {
		t.Fatal("a.gov-servers.net missing from digraph")
	}
	grounded := false
	for _, to := range d.Adj[govNode] {
		if to == d.Sink {
			grounded = true
		}
	}
	if !grounded {
		t.Error("TLD server must have an edge to the sink")
	}
	// A path Source -> ... -> Sink must exist.
	if !reachable(d.Adj, d.Source, d.Sink) {
		t.Error("no path from source to sink")
	}
}

func reachable(adj [][]int, from, to int) bool {
	seen := make([]bool, len(adj))
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == to {
			return true
		}
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

func TestDOTOutput(t *testing.T) {
	g := crawl(t, topology.Figure1World(), "www.cs.cornell.edu")
	dot, err := g.DOT("www.cs.cornell.edu")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"digraph", "cluster_cs.cornell.edu", "cluster_umich.edu",
		"penguin.cs.cornell.edu", "dns.cs.wisc.edu", "->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestReachableZones(t *testing.T) {
	g := crawl(t, topology.Figure1World(), "www.cs.cornell.edu")
	ids, err := g.ReachableZoneIDs("www.cs.cornell.edu")
	if err != nil {
		t.Fatal(err)
	}
	apexes := map[string]bool{}
	for _, id := range ids {
		apexes[g.Zones()[id]] = true
	}
	for _, want := range []string{"edu", "cornell.edu", "cs.cornell.edu", "umich.edu", "nstld.com"} {
		if !apexes[want] {
			t.Errorf("reachable zones missing %q", want)
		}
	}
}

func TestGraphAccessors(t *testing.T) {
	g := crawl(t, topology.FBIWorld(), "www.fbi.gov")
	if g.NumZones() == 0 || g.NumHosts() == 0 {
		t.Fatal("empty graph")
	}
	if _, ok := g.HostID("dns.sprintip.com"); !ok {
		t.Error("HostID lookup failed")
	}
	if len(g.Names()) != 1 || g.Names()[0] != "www.fbi.gov" {
		t.Errorf("Names = %v", g.Names())
	}
	chain := g.NameChainZones("www.fbi.gov")
	if len(chain) != 2 || chain[0] != "gov" || chain[1] != "fbi.gov" {
		t.Errorf("chain = %v", chain)
	}
	hc := g.HostChainZones("dns.sprintip.com")
	if len(hc) != 2 || hc[0] != "com" || hc[1] != "sprintip.com" {
		t.Errorf("host chain = %v", hc)
	}
}
