package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// replayByID rebuilds src's graph into dst through the id-translation
// hooks, exactly the way a fleet coordinator replays a shard epoch:
// walk each intern table in id order, translate references through the
// remap tables built so far, and re-complete every name.
func replayByID(dst *Builder, src *Builder, g *Graph) {
	hostMap := make([]int32, g.NumHosts())
	for h := range hostMap {
		hostMap[h] = dst.InternHost(g.Host(int32(h)))
	}
	zoneMap := make([]int32, g.NumZones())
	for z := range zoneMap {
		ns := g.ZoneNSIDs(int32(z))
		mapped := make([]int32, len(ns))
		for i, h := range ns {
			mapped[i] = hostMap[h]
		}
		zoneMap[z] = dst.InternZone(g.Zone(int32(z)), mapped)
	}
	chainMap := make([]int32, g.NumChains())
	for c := range chainMap {
		ids := g.ChainZoneIDs(int32(c))
		mapped := make([]int32, len(ids))
		for i, z := range ids {
			mapped[i] = zoneMap[z]
		}
		chainMap[c] = dst.InternChain(mapped)
	}
	for h := 0; h < g.NumHosts(); h++ {
		ids := g.HostChainIDs(int32(h))
		if ids == nil {
			continue
		}
		mapped := make([]int32, len(ids))
		for i, z := range ids {
			mapped[i] = zoneMap[z]
		}
		dst.AttachHostChain(hostMap[h], dst.InternChain(mapped))
	}
	for _, name := range g.Names() {
		cid, ok := g.NameChainID(name)
		if !ok {
			continue
		}
		dst.CompleteChain(name, chainMap[cid])
	}
	for name, err := range src.Failed() {
		dst.Fail(name, err)
	}
}

// TestTranslateEquivalence proves the id-path hooks assemble the same
// graph as the string event path: a synthetic corpus built via
// ObserveZone/ObserveChain/Complete, replayed id-by-id into a second
// builder, yields identical intern tables and identical per-name TCBs.
func TestTranslateEquivalence(t *testing.T) {
	const names = 500
	src := NewBuilder(names)
	FeedSynthetic(src, names)
	src.Fail("broken.example", errors.New("walk failed"))
	g := src.FinishEpoch()

	dst := NewBuilder(0)
	replayByID(dst, src, g)
	g2 := dst.FinishEpoch()

	// Replay preserves id order, so the tables must match exactly.
	if !reflect.DeepEqual(g.Hosts(), g2.Hosts()) {
		t.Fatalf("host tables differ: %d vs %d entries", g.NumHosts(), g2.NumHosts())
	}
	if !reflect.DeepEqual(g.Zones(), g2.Zones()) {
		t.Fatalf("zone tables differ: %d vs %d entries", g.NumZones(), g2.NumZones())
	}
	if g.NumChains() != g2.NumChains() {
		t.Fatalf("chain tables differ: %d vs %d entries", g.NumChains(), g2.NumChains())
	}
	for c := int32(0); int(c) < g.NumChains(); c++ {
		a, b := g.ChainZoneIDs(c), g2.ChainZoneIDs(c)
		if len(a) != len(b) || (len(a) > 0 && !reflect.DeepEqual(a, b)) {
			t.Fatalf("chain %d differs: %v vs %v", c, a, b)
		}
	}
	if !reflect.DeepEqual(g.Names(), g2.Names()) {
		t.Fatalf("name sets differ: %d vs %d names", g.NumNames(), g2.NumNames())
	}
	for _, name := range g.Names() {
		want, err := g.TCB(name)
		if err != nil {
			t.Fatalf("TCB(%q): %v", name, err)
		}
		got, err := g2.TCB(name)
		if err != nil {
			t.Fatalf("replayed TCB(%q): %v", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("TCB(%q) differs:\n want %v\n  got %v", name, want, got)
		}
	}
	if len(dst.Failed()) != len(src.Failed()) {
		t.Fatalf("failed sets differ: %d vs %d", len(src.Failed()), len(dst.Failed()))
	}
}

// TestTranslateIdempotent proves re-replaying an unchanged epoch is a
// no-op: no new versions, no journal touches, no table growth — the
// property that lets a coordinator re-apply a shard's full name table
// on every commit without churning the union store.
func TestTranslateIdempotent(t *testing.T) {
	const names = 200
	src := NewBuilder(names)
	FeedSynthetic(src, names)
	g := src.FinishEpoch()

	dst := NewBuilder(0)
	replayByID(dst, src, g)
	g2 := dst.FinishEpoch() // publish: later mutations are journaled

	replayByID(dst, src, g)
	if got := len(dst.touched); got != 0 {
		t.Fatalf("re-replay touched %d names, want 0", got)
	}
	g3 := dst.FinishEpoch()
	if g3.NumNames() != g2.NumNames() || g3.NumChains() != g2.NumChains() ||
		g3.NumHosts() != g2.NumHosts() || g3.NumZones() != g2.NumZones() {
		t.Fatalf("re-replay changed dims: %v vs %v",
			[]int{g3.NumNames(), g3.NumChains(), g3.NumHosts(), g3.NumZones()},
			[]int{g2.NumNames(), g2.NumChains(), g2.NumHosts(), g2.NumZones()})
	}
	if names := g3.NamesTouchedSince(g2.Epoch()); len(names) != 0 {
		t.Fatalf("re-replay journaled %d names, want 0", len(names))
	}
}

// TestCompleteChainSupersedesFail mirrors the string-path contract on
// the id path: a name that failed in one shard epoch and completed in a
// later one ends up present exactly once.
func TestCompleteChainSupersedesFail(t *testing.T) {
	b := NewBuilder(0)
	zid := b.InternZone("tld0", nil)
	cid := b.InternChain([]int32{zid})
	b.Fail("flappy.tld0", fmt.Errorf("timeout"))
	b.CompleteChain("flappy.tld0", cid)
	g := b.FinishEpoch()
	if g.NumNames() != 1 {
		t.Fatalf("NumNames = %d, want 1", g.NumNames())
	}
	if len(b.Failed()) != 0 {
		t.Fatalf("failed set not cleared: %v", b.Failed())
	}
	if _, ok := g.NameChainID("flappy.tld0"); !ok {
		t.Fatalf("name not present after CompleteChain")
	}
}
