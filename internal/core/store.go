package core

import (
	"sync"

	"dnstrust/internal/snapshot"
)

// store is the shared, copy-on-write backing of every Graph a Builder
// produces. One builder owns one store; each FinishEpoch pins a Graph to
// the store at an epoch number, and all live epochs share the same
// append-only intern arrays instead of each pinning a full clone of the
// tables — the retention cost of holding N generations of a million-name
// survey collapses from N copies of every map to N sets of array
// headers plus whatever genuinely changed between epochs.
//
// Mutability is confined to three places, each epoch-stamped so an older
// Graph never observes a younger write:
//
//   - the intern maps (hostID, zoneID) only grow, and an id is visible
//     to an epoch only when it is below that epoch's pinned array
//     length;
//   - hostChain entries are assigned at most once (a pending chain
//     attaching to an existing host), stamped with the attaching epoch;
//   - name→chain mappings are versioned: Complete/Fail append a new
//     version instead of overwriting, and a reader resolves the newest
//     version at or below its own epoch.
//
// Concurrency: the builder is the only writer and serializes its writes
// under mu; Graph readers of the mutable parts take mu.RLock. The
// append-only inner arrays (hosts, zones, chains, zoneNS and their
// interned element slices) are never rewritten below a published
// epoch's pinned length, so Graphs read them lock-free through their
// own pinned slice headers.
type store struct {
	mu sync.RWMutex

	// Interned nameserver hosts and zones (append-only).
	hosts  []string
	hostID map[string]int32
	zones  []string
	zoneID map[string]int32

	// chains is the interned chain table: every distinct delegation
	// chain appears exactly once as an immutable zone-id list.
	chains [][]int32
	// zoneNS[z] lists the NS host ids of zone z, sorted (append-only;
	// first observation of a zone wins, so entries are never rewritten).
	zoneNS [][]int32

	// hostChain[h] is host h's address chain (aliasing the interned
	// chain table); hostChainAt[h] is the epoch that attached it, 0 when
	// no chain is known yet. Entries are assigned at most once.
	hostChain   [][]int32
	hostChainAt []int64

	// base maps names completed in the first live epoch — and never
	// touched since — straight to their chain id: the compact common
	// case (one 4-byte value, no version list), and the only table the
	// big initial batch writes. baseEpoch is the epoch base entries are
	// visible from; every published graph of this store has an epoch at
	// or above it, so a base hit is visible to every reader. A name that
	// later re-chains or fails moves to the versioned table (its base
	// mapping becomes version 0 there) and is deleted here.
	base      map[string]int32
	baseEpoch int64
	// names maps each surveyed name that has been touched after the
	// first live epoch to its version history.
	names map[string]nameVers
	// chainNames[c] lists every name that ever mapped to chain c,
	// indexed densely by chain id (append-only, parallel to chains). It
	// may carry stale entries for names that since re-chained or failed,
	// and names mapped later than a reader's epoch; readers filter by
	// the version visible at their epoch.
	chainNames [][]string
	// touched[e] journals the names whose chain mapping changed at epoch
	// e, in arrival order with possible duplicates — the per-epoch
	// change journal the timeline diff reads instead of rescanning the
	// whole name table (readers sort and dedup; the build hot path only
	// appends). Journals at or below journalFloor have been pruned
	// (Builder.PruneJournal): incremental diffs from epochs below the
	// floor are impossible and fall back to the by-name path, so a
	// bounded timeline keeps the store's history bounded too.
	touched      map[int64][]string
	journalFloor int64

	// snap pins the snapshot file this store was loaded from, when it
	// was. Hot arrays are views into the file's mapping, so the mapping
	// must outlive every graph of this store — it is simply never
	// released for the life of the process.
	snap *snapshot.File
}

func newStore(sizeHint int) *store {
	return &store{
		hostID:  make(map[string]int32),
		zoneID:  make(map[string]int32),
		base:    make(map[string]int32, sizeHint),
		names:   make(map[string]nameVers),
		touched: make(map[int64][]string),
	}
}

// nameVer is one version of a name's chain mapping: at epoch, the name
// either mapped to chain cid (present) or left the survey (a walk
// failure superseding an earlier success).
type nameVer struct {
	epoch   int64
	cid     int32
	present bool
}

// nameVers is a name's version history with the first version inlined
// and later versions behind an overflow pointer: almost every name is
// completed once and never touched again, so the common case is a
// compact map value with no extra allocation.
type nameVers struct {
	v0   nameVer
	more *[]nameVer
}

// at returns the newest version visible at epoch.
func (v nameVers) at(epoch int64) (nameVer, bool) {
	if v.more != nil {
		m := *v.more
		for i := len(m) - 1; i >= 0; i-- {
			if m[i].epoch <= epoch {
				return m[i], true
			}
		}
	}
	if v.v0.epoch <= epoch {
		return v.v0, true
	}
	return nameVer{}, false
}

// latest returns the newest version regardless of epoch.
func (v nameVers) latest() nameVer {
	if v.more != nil {
		if m := *v.more; len(m) > 0 {
			return m[len(m)-1]
		}
	}
	return v.v0
}

// int32sEqual reports whether two id slices hold the same elements.
func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// copyAliased deep-copies a table of id slices, preserving the aliasing
// structure: entries sharing one backing slice in src share one copy in
// the result. Used by Detach to materialize a store-independent epoch
// without flattening the per-SCC and per-chain sharing.
func copyAliased(src [][]int32) [][]int32 {
	type sliceKey struct {
		p *int32
		n int
	}
	seen := make(map[sliceKey][]int32)
	out := make([][]int32, len(src))
	for i, s := range src {
		if s == nil {
			continue
		}
		if len(s) == 0 {
			out[i] = []int32{}
			continue
		}
		k := sliceKey{&s[0], len(s)}
		c, ok := seen[k]
		if !ok {
			c = append([]int32(nil), s...)
			seen[k] = c
		}
		out[i] = c
	}
	return out
}
