// Package core implements the paper's primary contribution: delegation
// graphs and transitive trust analysis. From a crawl's streamed walk
// results it builds the zone-level dependency graph, computes each name's
// trusted computing base (TCB) — the transitive closure of every
// nameserver that could participate in resolving the name — and
// materializes per-name server-level delegation digraphs for bottleneck
// (min-cut) analysis and Figure-1-style visualization.
//
// Closures are computed once per *zone*, not per name: the zone dependency
// digraph is condensed with Tarjan's SCC algorithm (cross-domain NS cycles
// are real in DNS) and server sets are unioned bottom-up over the
// condensation DAG. Delegation chains are interned too: every distinct
// chain appears once as a compact zone-id list, names reference chains by
// id, and the TCB of each chain is unioned exactly once — a survey of half
// a million names touches each zone closure and each chain once.
//
// Graphs produced by one Builder share a copy-on-write epoch store:
// holding many generations of a monitored survey live costs array
// headers per generation, not full table clones, and every per-chain
// result carries the epoch at which it last changed — the stamp the
// timeline diff uses to skip unchanged chains in O(1).
package core

import (
	"fmt"
	"sort"
	"sync"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/resolver"
)

// Graph is the zone-level dependency structure extracted from a crawl at
// one committed epoch. Build one incrementally with a Builder (or from a
// snapshot with Build); it is immutable (and safe for concurrent use)
// afterwards — later epochs of the same builder share its storage
// copy-on-write instead of mutating it. Accessors deliberately share
// the append-only interned tables instead of copying (shared-returns).
//
//lint:immutable shared-returns
type Graph struct {
	// st is the shared epoch store; epoch selects which writes are
	// visible to this graph.
	st    *store
	epoch int64

	// Pinned append-only array headers: lock-free reads, content below
	// the pinned length never changes.
	hosts  []string
	zones  []string
	chains [][]int32
	zoneNS [][]int32

	numNames int

	// closure[z] is the sorted set of host ids transitively reachable
	// from zone z (z's NS hosts, their chains' NS hosts, and so on).
	closure [][]int32
	// zoneAdj[z] lists the zones z depends on (the chains of its NS
	// hosts), deduplicated.
	zoneAdj [][]int32
	// chainTCB[c] is the sorted host-id union of the closures of every
	// zone on chain c — the TCB shared by every name on that chain.
	chainTCB [][]int32
	// chainStamp[c] is the epoch at which chain c's dependency structure
	// (its TCB, or the address chain of any TCB member) last changed.
	// Inner slices of all three tables alias the previous epoch's when
	// unchanged, so retained generations share almost everything.
	chainStamp []int64

	namesOnce sync.Once
	names     []string
}

// Build constructs the dependency graph from a crawl snapshot. It is the
// batch-mode compatibility path over the incremental Builder: the
// snapshot's zones, host chains, and name chains are replayed as events
// and finished in one pass.
func Build(snap *resolver.Snapshot) *Graph {
	b := NewBuilder(len(snap.NameChain))

	// Zones are replayed in sorted apex order so batch-built graphs have
	// deterministic intern ids (streamed graphs intern in arrival order).
	apexes := make([]string, 0, len(snap.Zones))
	for apex := range snap.Zones {
		if apex == "" {
			continue
		}
		apexes = append(apexes, apex)
	}
	sort.Strings(apexes)
	for _, apex := range apexes {
		b.ObserveZone(apex, snap.Zones[apex].NSHosts)
	}
	for host, chain := range snap.HostChain {
		b.ObserveChain(host, chain)
	}
	for name, chain := range snap.NameChain {
		b.Complete(name, chain)
	}
	return b.Finish()
}

// Epoch reports the builder epoch this graph was finalized at (1 for the
// first FinishEpoch or a one-shot Finish, increasing per epoch).
func (g *Graph) Epoch() int64 { return g.epoch }

// SharesStore reports whether two graphs are epochs of the same builder,
// i.e. share one copy-on-write store. Same-store graphs with ordered
// epochs can be diffed incrementally off interned ids; foreign graphs
// must be compared by name.
func (g *Graph) SharesStore(o *Graph) bool { return o != nil && g.st == o.st }

// NumZones reports the number of zones in the graph (root excluded).
func (g *Graph) NumZones() int { return len(g.zones) }

// NumHosts reports the number of distinct nameserver hosts.
func (g *Graph) NumHosts() int { return len(g.hosts) }

// NumChains reports the number of distinct interned delegation chains.
func (g *Graph) NumChains() int { return len(g.chains) }

// NumNames reports the number of surveyed names in the graph.
func (g *Graph) NumNames() int { return g.numNames }

// Hosts returns all nameserver host names; the slice is shared, do not
// modify.
func (g *Graph) Hosts() []string { return g.hosts }

// Host returns the host name for an interned id.
func (g *Graph) Host(id int32) string { return g.hosts[id] }

// HostID returns the interned id of host and whether it exists.
func (g *Graph) HostID(host string) (int32, bool) {
	g.st.mu.RLock()
	id, ok := g.st.hostID[dnsname.Canonical(host)]
	g.st.mu.RUnlock()
	if !ok || int(id) >= len(g.hosts) {
		return 0, false
	}
	return id, true
}

// zoneIDOf resolves a canonical apex to a zone id visible at this epoch.
func (g *Graph) zoneIDOf(apex string) (int32, bool) {
	g.st.mu.RLock()
	id, ok := g.st.zoneID[apex]
	g.st.mu.RUnlock()
	if !ok || int(id) >= len(g.zones) {
		return 0, false
	}
	return id, true
}

// nameVersion resolves a canonical name to its chain mapping at this
// epoch; ok is false when the name is absent (never surveyed, surveyed
// later than this epoch, or failed by this epoch).
func (g *Graph) nameVersion(name string) (int32, bool) {
	g.st.mu.RLock()
	cid, ok := g.nameAtLocked(name)
	g.st.mu.RUnlock()
	return cid, ok
}

// nameAtLocked is nameVersion with the store lock held by the caller. A
// name lives in exactly one of the two tables: the versioned table when
// it was ever touched after the first live epoch, the compact base
// table otherwise (base entries are visible to every published epoch).
func (g *Graph) nameAtLocked(name string) (int32, bool) {
	if vs, ok := g.st.names[name]; ok {
		v, ok := vs.at(g.epoch)
		if !ok || !v.present {
			return 0, false
		}
		return v.cid, true
	}
	if cid, ok := g.st.base[name]; ok {
		return cid, true
	}
	return 0, false
}

// hostChainOfLocked returns host h's address chain as visible at this
// epoch (nil while unattached). Callers hold st.mu.
func (g *Graph) hostChainOfLocked(h int32) []int32 {
	if at := g.st.hostChainAt[h]; at == 0 || at > g.epoch {
		return nil
	}
	return g.st.hostChain[h]
}

// hostChainOf is hostChainOfLocked with its own lock.
func (g *Graph) hostChainOf(h int32) []int32 {
	g.st.mu.RLock()
	defer g.st.mu.RUnlock()
	return g.hostChainOfLocked(h)
}

// Zones returns all zone apexes; the slice is shared, do not modify.
func (g *Graph) Zones() []string { return g.zones }

// Zone returns the zone apex for an interned id.
func (g *Graph) Zone(id int32) string { return g.zones[id] }

// ZoneNS returns the NS host ids of a zone apex.
func (g *Graph) ZoneNS(apex string) []int32 {
	id, ok := g.zoneIDOf(dnsname.Canonical(apex))
	if !ok {
		return nil
	}
	return g.zoneNS[id]
}

// ZoneNSIDs returns the NS host ids of an interned zone id; the slice is
// shared, do not modify.
func (g *Graph) ZoneNSIDs(z int32) []int32 { return g.zoneNS[z] }

// HostChainIDs returns the zone ids on an interned host's address chain;
// the slice is shared, do not modify.
func (g *Graph) HostChainIDs(h int32) []int32 { return g.hostChainOf(h) }

// HostChainZones returns the zone apexes on host's address chain.
func (g *Graph) HostChainZones(host string) []string {
	id, ok := g.HostID(host)
	if !ok {
		return nil
	}
	chain := g.hostChainOf(id)
	out := make([]string, 0, len(chain))
	for _, zid := range chain {
		out = append(out, g.zones[zid])
	}
	return out
}

// Names returns the surveyed names in sorted order. The slice is
// computed once per graph and shared; do not modify.
func (g *Graph) Names() []string {
	g.namesOnce.Do(func() {
		out := make([]string, 0, g.numNames)
		g.st.mu.RLock()
		for name := range g.st.base {
			out = append(out, name)
		}
		for name, vs := range g.st.names {
			if v, ok := vs.at(g.epoch); ok && v.present {
				out = append(out, name)
			}
		}
		g.st.mu.RUnlock()
		sort.Strings(out)
		g.names = out
	})
	return g.names
}

// NameChainID returns the interned chain id of a surveyed name and
// whether the name is in the survey. Names sharing a delegation chain
// share a chain id, so per-chain analysis results (TCBs, min-cuts) can be
// memoized by id instead of re-joining zone strings.
func (g *Graph) NameChainID(name string) (int32, bool) {
	return g.nameVersion(dnsname.Canonical(name))
}

// ChainZoneIDs returns the zone ids of an interned chain, TLD-first; the
// slice is shared, do not modify.
func (g *Graph) ChainZoneIDs(cid int32) []int32 { return g.chains[cid] }

// ChainTCBIDs returns the sorted host ids of the TCB shared by every name
// on the interned chain; the slice is shared, do not modify.
func (g *Graph) ChainTCBIDs(cid int32) []int32 { return g.chainTCB[cid] }

// ChainStamp reports the epoch at which the chain's dependency structure
// last changed: its TCB set, or the address chain of a TCB member (which
// can reshape the min-cut digraph without changing the TCB set). A chain
// whose stamp is at or below an older same-store epoch is structurally
// identical in both epochs.
func (g *Graph) ChainStamp(cid int32) int64 { return g.chainStamp[cid] }

// ChainsChangedSince returns the interned chain ids whose dependency
// structure changed after the given epoch, in id order. With epoch equal
// to an older same-store graph's Epoch, the result is exactly the set of
// chains a timeline diff must examine — everything else diffs to nothing
// in O(1).
func (g *Graph) ChainsChangedSince(epoch int64) []int32 {
	var out []int32
	for ci, st := range g.chainStamp {
		if st > epoch {
			out = append(out, int32(ci))
		}
	}
	return out
}

// NamesTouchedSince returns, sorted and deduplicated, the names whose
// chain mapping changed after the given epoch (completed, failed, or
// re-chained) — the per-epoch journal kept by the builder, so a small
// Add's touched set is read without scanning the name table.
func (g *Graph) NamesTouchedSince(epoch int64) []string {
	var out []string
	g.st.mu.RLock()
	for e := epoch + 1; e <= g.epoch; e++ {
		out = append(out, g.st.touched[e]...)
	}
	g.st.mu.RUnlock()
	if len(out) == 0 {
		return nil
	}
	sort.Strings(out)
	dst := out[:1]
	for _, n := range out[1:] {
		if n != dst[len(dst)-1] {
			dst = append(dst, n)
		}
	}
	return dst
}

// JournalComplete reports whether the per-epoch change journal is
// intact for every epoch after the given one, i.e. whether an
// incremental diff from that epoch is possible. Journals below the
// pruned floor are gone (Builder.PruneJournal); a diff from an evicted
// generation falls back to the by-name path instead.
func (g *Graph) JournalComplete(since int64) bool {
	g.st.mu.RLock()
	defer g.st.mu.RUnlock()
	return since >= g.st.journalFloor
}

// TouchedSince reports whether any name's chain mapping changed after
// the given epoch — the O(#epochs) fast path behind "this batch changed
// nothing", without materializing the journal.
func (g *Graph) TouchedSince(epoch int64) bool {
	g.st.mu.RLock()
	defer g.st.mu.RUnlock()
	for e := epoch + 1; e <= g.epoch; e++ {
		if len(g.st.touched[e]) > 0 {
			return true
		}
	}
	return false
}

// ChainLive reports whether at least one surveyed name maps to the
// interned chain at this epoch — NamesOnChain's emptiness test without
// materializing or sorting the name list (stops at the first live hit).
func (g *Graph) ChainLive(cid int32) bool {
	if int(cid) >= len(g.chains) {
		return false
	}
	g.st.mu.RLock()
	defer g.st.mu.RUnlock()
	for _, n := range g.st.chainNames[cid] {
		if c, ok := g.nameAtLocked(n); ok && c == cid {
			return true
		}
	}
	return false
}

// NamesOnChain returns, sorted, the surveyed names mapped to the interned
// chain at this epoch.
func (g *Graph) NamesOnChain(cid int32) []string {
	if int(cid) >= len(g.chains) {
		return nil
	}
	g.st.mu.RLock()
	cand := g.st.chainNames[cid]
	out := make([]string, 0, len(cand))
	for _, n := range cand {
		if c, ok := g.nameAtLocked(n); ok && c == cid {
			out = append(out, n)
		}
	}
	g.st.mu.RUnlock()
	sort.Strings(out)
	dst := out[:0]
	for i, n := range out {
		if i == 0 || n != out[i-1] {
			dst = append(dst, n)
		}
	}
	return dst
}

// NameChainZones returns the zone apexes on a surveyed name's chain.
func (g *Graph) NameChainZones(name string) []string {
	cid, ok := g.NameChainID(name)
	if !ok {
		return nil
	}
	chain := g.chains[cid]
	out := make([]string, 0, len(chain))
	for _, zid := range chain {
		out = append(out, g.zones[zid])
	}
	return out
}

// Detach materializes a store-independent copy of this epoch: cloned
// intern maps, flattened name versions, and deep-copied (but still
// internally aliased) closure/TCB tables. A detached graph answers every
// query identically but shares nothing mutable with the builder — it is
// also the "pin a full epoch" baseline the retention benchmarks compare
// the copy-on-write store against.
func (g *Graph) Detach() *Graph {
	src := g.st
	src.mu.RLock()
	defer src.mu.RUnlock()

	st := newStore(g.numNames)
	st.hosts = g.hosts
	st.zones = g.zones
	st.chains = g.chains
	st.zoneNS = g.zoneNS
	for h, id := range src.hostID {
		if int(id) < len(g.hosts) {
			st.hostID[h] = id
		}
	}
	for z, id := range src.zoneID {
		if int(id) < len(g.zones) {
			st.zoneID[z] = id
		}
	}
	st.hostChain = make([][]int32, len(g.hosts))
	st.hostChainAt = make([]int64, len(g.hosts))
	for h := range st.hostChain {
		if c := g.hostChainOfLocked(int32(h)); c != nil {
			st.hostChain[h] = append([]int32(nil), c...)
			st.hostChainAt[h] = src.hostChainAt[h]
		}
	}
	st.baseEpoch = src.baseEpoch
	for name, cid := range src.base {
		st.base[name] = cid
	}
	st.chainNames = make([][]string, len(g.chains))
	for name, cid := range st.base {
		st.chainNames[cid] = append(st.chainNames[cid], name)
	}
	for name, vs := range src.names {
		if v, ok := vs.at(g.epoch); ok {
			st.names[name] = nameVers{v0: v}
			if v.present {
				st.chainNames[v.cid] = append(st.chainNames[v.cid], name)
			}
		}
	}

	return &Graph{
		st:         st,
		epoch:      g.epoch,
		hosts:      g.hosts,
		zones:      g.zones,
		chains:     g.chains,
		zoneNS:     g.zoneNS,
		numNames:   g.numNames,
		closure:    copyAliased(g.closure),
		zoneAdj:    copyAliased(g.zoneAdj),
		chainTCB:   copyAliased(g.chainTCB),
		chainStamp: append([]int64(nil), g.chainStamp...),
	}
}

// computeClosures condenses the zone dependency digraph with Tarjan's
// algorithm and unions server sets bottom-up over the condensation DAG.
// hostChain is the builder's current chain table (every attach is
// visible to the epoch being finalized). When prev is the previous
// epoch's graph, closure and adjacency slices equal to the previous
// epoch's alias them, so retained generations share storage.
func (g *Graph) computeClosures(prev *Graph, hostChain [][]int32) {
	n := len(g.zones)
	g.closure = make([][]int32, n)
	if n == 0 {
		g.zoneAdj = make([][]int32, 0)
		return
	}

	zoneDeps := func(z int32) []int32 {
		var deps []int32
		for _, h := range g.zoneNS[z] {
			deps = append(deps, hostChain[h]...)
		}
		sortUnique(&deps)
		return deps
	}

	// Iterative Tarjan SCC.
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	adj := make([][]int32, n)
	for z := 0; z < n; z++ {
		adj[z] = zoneDeps(int32(z))
		if prev != nil && z < len(prev.zoneAdj) && int32sEqual(prev.zoneAdj[z], adj[z]) {
			adj[z] = prev.zoneAdj[z]
		}
	}
	g.zoneAdj = adj

	var stack []int32
	var sccCount int32
	var sccMembers [][]int32

	type frame struct {
		v    int32
		edge int
	}
	var next int32
	var callStack []frame
	for start := int32(0); start < int32(n); start++ {
		if index[start] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{v: start})
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.edge < len(adj[f.v]) {
				w := adj[f.v][f.edge]
				f.edge++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && low[f.v] > index[w] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[p.v] > low[v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var members []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = sccCount
					members = append(members, w)
					if w == v {
						break
					}
				}
				sccMembers = append(sccMembers, members)
				sccCount++
			}
		}
	}

	// Tarjan emits SCCs in reverse topological order: successors of an
	// SCC always have smaller component ids, so one forward pass suffices.
	sccClosure := make([][]int32, sccCount)
	for c := int32(0); c < sccCount; c++ {
		var set []int32
		for _, z := range sccMembers[c] {
			set = append(set, g.zoneNS[z]...)
		}
		// Successor SCCs.
		succ := map[int32]bool{}
		for _, z := range sccMembers[c] {
			for _, w := range adj[z] {
				if comp[w] != c {
					succ[comp[w]] = true
				}
			}
		}
		for sc := range succ {
			set = append(set, sccClosure[sc]...)
		}
		sortUnique(&set)
		// Copy-on-write: when the set is unchanged from the previous
		// epoch, every member zone aliases the previous slice.
		if z0 := sccMembers[c][0]; prev != nil && int(z0) < len(prev.closure) && int32sEqual(prev.closure[z0], set) {
			set = prev.closure[z0]
		}
		sccClosure[c] = set
	}
	for z := 0; z < n; z++ {
		g.closure[z] = sccClosure[comp[int32(z)]]
	}
}

// computeChainTCBs unions zone closures into one TCB per interned chain.
// Every name on the chain shares the resulting slice, so the per-name
// Figure 2/5/6 passes become O(1) lookups. TCBs equal to the previous
// epoch's alias its slices, and each chain's stamp records the epoch it
// last changed — unchanged meaning both an identical TCB set and no TCB
// member whose address chain attached late this epoch (a late attach
// reshapes the min-cut digraph even when the TCB set is stable).
func (g *Graph) computeChainTCBs(prev *Graph, late map[int32]struct{}) {
	g.chainTCB = make([][]int32, len(g.chains))
	g.chainStamp = make([]int64, len(g.chains))
	for ci, chain := range g.chains {
		var tcb []int32
		for _, z := range chain {
			tcb = append(tcb, g.closure[z]...)
		}
		sortUnique(&tcb)
		if prev != nil && ci < len(prev.chainTCB) && int32sEqual(prev.chainTCB[ci], tcb) {
			g.chainTCB[ci] = prev.chainTCB[ci]
			if tcbIntersects(prev.chainTCB[ci], late) {
				g.chainStamp[ci] = g.epoch
			} else {
				g.chainStamp[ci] = prev.chainStamp[ci]
			}
		} else {
			g.chainTCB[ci] = tcb
			g.chainStamp[ci] = g.epoch
		}
	}
}

// tcbIntersects reports whether any TCB member is in the late set.
func tcbIntersects(tcb []int32, late map[int32]struct{}) bool {
	if len(late) == 0 {
		return false
	}
	for _, h := range tcb {
		if _, ok := late[h]; ok {
			return true
		}
	}
	return false
}

// ZoneClosure returns the sorted host ids transitively reachable from a
// zone apex (its full server dependency set).
func (g *Graph) ZoneClosure(apex string) []int32 {
	id, ok := g.zoneIDOf(dnsname.Canonical(apex))
	if !ok {
		return nil
	}
	return g.closure[id]
}

// TCBIDs returns the sorted host ids of name's trusted computing base:
// the union of the closures of every zone on its delegation chain. Root
// servers are excluded (chains never include the root). The slice is
// shared with every name on the same chain; do not modify.
func (g *Graph) TCBIDs(name string) ([]int32, error) {
	cid, ok := g.NameChainID(name)
	if !ok {
		return nil, fmt.Errorf("core: name %q not in survey", name)
	}
	return g.chainTCB[cid], nil
}

// TCB returns the host names of name's trusted computing base, sorted.
func (g *Graph) TCB(name string) ([]string, error) {
	ids, err := g.TCBIDs(name)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.hosts[id])
	}
	sort.Strings(out)
	return out, nil
}

// TCBSize returns |TCB(name)|, or -1 for unknown names.
func (g *Graph) TCBSize(name string) int {
	ids, err := g.TCBIDs(name)
	if err != nil {
		return -1
	}
	return len(ids)
}

// DirectNS returns the nameserver hosts of name's authoritative zone —
// the servers the name's owner directly chose and trusts (the paper's
// "only 2.2 servers are administered by the nameowner"; everything else
// in the TCB is transitive).
func (g *Graph) DirectNS(name string) ([]string, error) {
	cid, ok := g.NameChainID(name)
	if !ok || len(g.chains[cid]) == 0 {
		return nil, fmt.Errorf("core: name %q not in survey", name)
	}
	chain := g.chains[cid]
	az := chain[len(chain)-1]
	out := make([]string, 0, len(g.zoneNS[az]))
	for _, id := range g.zoneNS[az] {
		out = append(out, g.hosts[id])
	}
	sort.Strings(out)
	return out, nil
}

// OwnedServers splits name's TCB into servers administered by the name's
// owner (same registered domain) and external servers — the paper's
// "only 2.2 servers are administered by the nameowner on average".
func (g *Graph) OwnedServers(name string) (owned, external []string, err error) {
	tcb, err := g.TCB(name)
	if err != nil {
		return nil, nil, err
	}
	rd, rdErr := dnsname.RegisteredDomain(name)
	for _, h := range tcb {
		hrd, err2 := dnsname.RegisteredDomain(h)
		if rdErr == nil && err2 == nil && hrd == rd {
			owned = append(owned, h)
		} else {
			external = append(external, h)
		}
	}
	return owned, external, nil
}

// sortUnique sorts and deduplicates a slice of ids in place.
func sortUnique(ids *[]int32) {
	s := *ids
	if len(s) < 2 {
		return
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	*ids = out
}
