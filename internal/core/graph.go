// Package core implements the paper's primary contribution: delegation
// graphs and transitive trust analysis. From a crawl's streamed walk
// results it builds the zone-level dependency graph, computes each name's
// trusted computing base (TCB) — the transitive closure of every
// nameserver that could participate in resolving the name — and
// materializes per-name server-level delegation digraphs for bottleneck
// (min-cut) analysis and Figure-1-style visualization.
//
// Closures are computed once per *zone*, not per name: the zone dependency
// digraph is condensed with Tarjan's SCC algorithm (cross-domain NS cycles
// are real in DNS) and server sets are unioned bottom-up over the
// condensation DAG. Delegation chains are interned too: every distinct
// chain appears once as a compact zone-id list, names reference chains by
// id, and the TCB of each chain is unioned exactly once — a survey of half
// a million names touches each zone closure and each chain once.
package core

import (
	"fmt"
	"sort"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/resolver"
)

// Graph is the zone-level dependency structure extracted from a crawl.
// Build one incrementally with a Builder (or from a snapshot with Build);
// it is immutable (and safe for concurrent use) afterwards.
type Graph struct {
	// Interned nameserver hosts.
	hosts  []string
	hostID map[string]int32

	// Interned zones ("" excluded: the paper excludes root servers).
	zones  []string
	zoneID map[string]int32

	// zoneNS[z] lists the NS host ids of zone z, sorted.
	zoneNS [][]int32
	// hostChain[h] lists the zone ids on host h's address chain
	// (TLD-first). Hosts whose chain walk failed have nil chains: they
	// are still TCB members but contribute no further dependencies.
	// Entries alias the interned chain table: hosts sharing a delegation
	// chain share one []int32.
	hostChain [][]int32

	// chains is the interned chain table: every distinct delegation
	// chain appears exactly once as a zone-id list (TLD-first).
	chains [][]int32
	// nameChain maps each surveyed name to its interned chain id.
	nameChain map[string]int32

	// closure[z] is the sorted set of host ids transitively reachable
	// from zone z (z's NS hosts, their chains' NS hosts, and so on).
	closure [][]int32
	// chainTCB[c] is the sorted host-id union of the closures of every
	// zone on chain c — the TCB shared by every name on that chain.
	chainTCB [][]int32
	// zoneAdj[z] lists the zones z depends on (the chains of its NS
	// hosts), deduplicated.
	zoneAdj [][]int32
}

// Build constructs the dependency graph from a crawl snapshot. It is the
// batch-mode compatibility path over the incremental Builder: the
// snapshot's zones, host chains, and name chains are replayed as events
// and finished in one pass.
func Build(snap *resolver.Snapshot) *Graph {
	b := NewBuilder(len(snap.NameChain))

	// Zones are replayed in sorted apex order so batch-built graphs have
	// deterministic intern ids (streamed graphs intern in arrival order).
	apexes := make([]string, 0, len(snap.Zones))
	for apex := range snap.Zones {
		if apex == "" {
			continue
		}
		apexes = append(apexes, apex)
	}
	sort.Strings(apexes)
	for _, apex := range apexes {
		b.ObserveZone(apex, snap.Zones[apex].NSHosts)
	}
	for host, chain := range snap.HostChain {
		b.ObserveChain(host, chain)
	}
	for name, chain := range snap.NameChain {
		b.Complete(name, chain)
	}
	return b.Finish()
}

func (g *Graph) internZone(apex string) int32 {
	if id, ok := g.zoneID[apex]; ok {
		return id
	}
	id := int32(len(g.zones))
	g.zones = append(g.zones, apex)
	g.zoneID[apex] = id
	return id
}

// internHost interns a host name and reports whether it was new.
func (g *Graph) internHost(host string) (int32, bool) {
	if id, ok := g.hostID[host]; ok {
		return id, false
	}
	id := int32(len(g.hosts))
	g.hosts = append(g.hosts, host)
	g.hostID[host] = id
	g.hostChain = append(g.hostChain, nil)
	return id, true
}

// NumZones reports the number of zones in the graph (root excluded).
func (g *Graph) NumZones() int { return len(g.zones) }

// NumHosts reports the number of distinct nameserver hosts.
func (g *Graph) NumHosts() int { return len(g.hosts) }

// NumChains reports the number of distinct interned delegation chains.
func (g *Graph) NumChains() int { return len(g.chains) }

// NumNames reports the number of surveyed names in the graph.
func (g *Graph) NumNames() int { return len(g.nameChain) }

// Hosts returns all nameserver host names; the slice is shared, do not
// modify.
func (g *Graph) Hosts() []string { return g.hosts }

// Host returns the host name for an interned id.
func (g *Graph) Host(id int32) string { return g.hosts[id] }

// HostID returns the interned id of host and whether it exists.
func (g *Graph) HostID(host string) (int32, bool) {
	id, ok := g.hostID[dnsname.Canonical(host)]
	return id, ok
}

// Zones returns all zone apexes; the slice is shared, do not modify.
func (g *Graph) Zones() []string { return g.zones }

// Zone returns the zone apex for an interned id.
func (g *Graph) Zone(id int32) string { return g.zones[id] }

// ZoneNS returns the NS host ids of a zone apex.
func (g *Graph) ZoneNS(apex string) []int32 {
	id, ok := g.zoneID[dnsname.Canonical(apex)]
	if !ok {
		return nil
	}
	return g.zoneNS[id]
}

// ZoneNSIDs returns the NS host ids of an interned zone id; the slice is
// shared, do not modify.
func (g *Graph) ZoneNSIDs(z int32) []int32 { return g.zoneNS[z] }

// HostChainIDs returns the zone ids on an interned host's address chain;
// the slice is shared, do not modify.
func (g *Graph) HostChainIDs(h int32) []int32 { return g.hostChain[h] }

// HostChainZones returns the zone apexes on host's address chain.
func (g *Graph) HostChainZones(host string) []string {
	id, ok := g.hostID[dnsname.Canonical(host)]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.hostChain[id]))
	for _, zid := range g.hostChain[id] {
		out = append(out, g.zones[zid])
	}
	return out
}

// Names returns the surveyed names in sorted order.
func (g *Graph) Names() []string {
	out := make([]string, 0, len(g.nameChain))
	for n := range g.nameChain {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NameChainID returns the interned chain id of a surveyed name and
// whether the name is in the survey. Names sharing a delegation chain
// share a chain id, so per-chain analysis results (TCBs, min-cuts) can be
// memoized by id instead of re-joining zone strings.
func (g *Graph) NameChainID(name string) (int32, bool) {
	id, ok := g.nameChain[dnsname.Canonical(name)]
	return id, ok
}

// ChainZoneIDs returns the zone ids of an interned chain, TLD-first; the
// slice is shared, do not modify.
func (g *Graph) ChainZoneIDs(cid int32) []int32 { return g.chains[cid] }

// ChainTCBIDs returns the sorted host ids of the TCB shared by every name
// on the interned chain; the slice is shared, do not modify.
func (g *Graph) ChainTCBIDs(cid int32) []int32 { return g.chainTCB[cid] }

// NameChainZones returns the zone apexes on a surveyed name's chain.
func (g *Graph) NameChainZones(name string) []string {
	cid, ok := g.nameChain[dnsname.Canonical(name)]
	if !ok {
		return nil
	}
	chain := g.chains[cid]
	out := make([]string, 0, len(chain))
	for _, zid := range chain {
		out = append(out, g.zones[zid])
	}
	return out
}

// zoneDeps returns the zone-level dependency targets of zone z: every
// zone on the address chain of every NS host of z.
func (g *Graph) zoneDeps(z int32) []int32 {
	var deps []int32
	for _, h := range g.zoneNS[z] {
		deps = append(deps, g.hostChain[h]...)
	}
	sortUnique(&deps)
	return deps
}

// computeClosures condenses the zone dependency digraph with Tarjan's
// algorithm and unions server sets bottom-up over the condensation DAG.
func (g *Graph) computeClosures() {
	n := len(g.zones)
	g.closure = make([][]int32, n)
	if n == 0 {
		return
	}

	// Iterative Tarjan SCC.
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	adj := make([][]int32, n)
	for z := 0; z < n; z++ {
		adj[z] = g.zoneDeps(int32(z))
	}
	g.zoneAdj = adj

	var stack []int32
	var sccCount int32
	var sccMembers [][]int32

	type frame struct {
		v    int32
		edge int
	}
	var next int32
	var callStack []frame
	for start := int32(0); start < int32(n); start++ {
		if index[start] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{v: start})
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.edge < len(adj[f.v]) {
				w := adj[f.v][f.edge]
				f.edge++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && low[f.v] > index[w] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[p.v] > low[v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var members []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = sccCount
					members = append(members, w)
					if w == v {
						break
					}
				}
				sccMembers = append(sccMembers, members)
				sccCount++
			}
		}
	}

	// Tarjan emits SCCs in reverse topological order: successors of an
	// SCC always have smaller component ids, so one forward pass suffices.
	sccClosure := make([][]int32, sccCount)
	for c := int32(0); c < sccCount; c++ {
		var set []int32
		for _, z := range sccMembers[c] {
			set = append(set, g.zoneNS[z]...)
		}
		// Successor SCCs.
		succ := map[int32]bool{}
		for _, z := range sccMembers[c] {
			for _, w := range adj[z] {
				if comp[w] != c {
					succ[comp[w]] = true
				}
			}
		}
		for sc := range succ {
			set = append(set, sccClosure[sc]...)
		}
		sortUnique(&set)
		sccClosure[c] = set
	}
	for z := 0; z < n; z++ {
		g.closure[z] = sccClosure[comp[int32(z)]]
	}
}

// computeChainTCBs unions zone closures into one TCB per interned chain.
// Every name on the chain shares the resulting slice, so the per-name
// Figure 2/5/6 passes become O(1) lookups.
func (g *Graph) computeChainTCBs() {
	g.chainTCB = make([][]int32, len(g.chains))
	for ci, chain := range g.chains {
		var tcb []int32
		for _, z := range chain {
			tcb = append(tcb, g.closure[z]...)
		}
		sortUnique(&tcb)
		g.chainTCB[ci] = tcb
	}
}

// ZoneClosure returns the sorted host ids transitively reachable from a
// zone apex (its full server dependency set).
func (g *Graph) ZoneClosure(apex string) []int32 {
	id, ok := g.zoneID[dnsname.Canonical(apex)]
	if !ok {
		return nil
	}
	return g.closure[id]
}

// TCBIDs returns the sorted host ids of name's trusted computing base:
// the union of the closures of every zone on its delegation chain. Root
// servers are excluded (chains never include the root). The slice is
// shared with every name on the same chain; do not modify.
func (g *Graph) TCBIDs(name string) ([]int32, error) {
	cid, ok := g.nameChain[dnsname.Canonical(name)]
	if !ok {
		return nil, fmt.Errorf("core: name %q not in survey", name)
	}
	return g.chainTCB[cid], nil
}

// TCB returns the host names of name's trusted computing base, sorted.
func (g *Graph) TCB(name string) ([]string, error) {
	ids, err := g.TCBIDs(name)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.hosts[id])
	}
	sort.Strings(out)
	return out, nil
}

// TCBSize returns |TCB(name)|, or -1 for unknown names.
func (g *Graph) TCBSize(name string) int {
	ids, err := g.TCBIDs(name)
	if err != nil {
		return -1
	}
	return len(ids)
}

// DirectNS returns the nameserver hosts of name's authoritative zone —
// the servers the name's owner directly chose and trusts (the paper's
// "only 2.2 servers are administered by the nameowner"; everything else
// in the TCB is transitive).
func (g *Graph) DirectNS(name string) ([]string, error) {
	cid, ok := g.nameChain[dnsname.Canonical(name)]
	if !ok || len(g.chains[cid]) == 0 {
		return nil, fmt.Errorf("core: name %q not in survey", name)
	}
	chain := g.chains[cid]
	az := chain[len(chain)-1]
	out := make([]string, 0, len(g.zoneNS[az]))
	for _, id := range g.zoneNS[az] {
		out = append(out, g.hosts[id])
	}
	sort.Strings(out)
	return out, nil
}

// OwnedServers splits name's TCB into servers administered by the name's
// owner (same registered domain) and external servers — the paper's
// "only 2.2 servers are administered by the nameowner on average".
func (g *Graph) OwnedServers(name string) (owned, external []string, err error) {
	tcb, err := g.TCB(name)
	if err != nil {
		return nil, nil, err
	}
	rd, rdErr := dnsname.RegisteredDomain(name)
	for _, h := range tcb {
		hrd, err2 := dnsname.RegisteredDomain(h)
		if rdErr == nil && err2 == nil && hrd == rd {
			owned = append(owned, h)
		} else {
			external = append(external, h)
		}
	}
	return owned, external, nil
}

// sortUnique sorts and deduplicates a slice of ids in place.
func sortUnique(ids *[]int32) {
	s := *ids
	if len(s) < 2 {
		return
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	*ids = out
}
