package core_test

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"dnstrust/internal/core"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

// TestBuilderDoneExclusive is the regression test for the old
// double-counting bug: a name reported both Complete and Fail counted
// twice in Done(). The maps must be mutually exclusive, last report wins.
func TestBuilderDoneExclusive(t *testing.T) {
	b := core.NewBuilder(0)
	b.ObserveZone("com", []string{"a.ns.com"})
	b.ObserveChain("a.ns.com", []string{"com"})

	// Fail then Complete: the success wins.
	b.Fail("www.x.com", errors.New("transient"))
	b.Complete("www.x.com", []string{"com"})
	if got := b.Done(); got != 1 {
		t.Fatalf("Done after Fail+Complete = %d, want 1", got)
	}
	if len(b.Failed()) != 0 {
		t.Errorf("Failed = %v, want empty after Complete superseded the failure", b.Failed())
	}
	if names := b.Names(); len(names) != 1 || names[0] != "www.x.com" {
		t.Errorf("Names = %v", names)
	}

	// Complete then Fail: the failure wins.
	b.Complete("www.y.com", []string{"com"})
	b.Fail("www.y.com", errors.New("lame"))
	if got := b.Done(); got != 2 {
		t.Fatalf("Done after Complete+Fail = %d, want 2", got)
	}
	if _, ok := b.Failed()["www.y.com"]; !ok {
		t.Error("www.y.com must be in Failed after the failure superseded the success")
	}
	for _, n := range b.Names() {
		if n == "www.y.com" {
			t.Error("www.y.com must not be in Names after Fail")
		}
	}
}

// TestBuilderChainDedup verifies that identical delegation chains intern
// to one shared chain id and one []int32, and distinct chains do not.
func TestBuilderChainDedup(t *testing.T) {
	b := core.NewBuilder(0)
	b.ObserveZone("com", []string{"a.ns.com"})
	b.ObserveZone("x.com", []string{"ns.x.com"})
	b.ObserveZone("y.com", []string{"ns.y.com"})
	b.ObserveChain("a.ns.com", []string{"com"})
	b.ObserveChain("ns.x.com", []string{"com", "x.com"})
	b.ObserveChain("ns.y.com", []string{"com", "y.com"})

	b.Complete("www.x.com", []string{"com", "x.com"})
	b.Complete("mail.x.com", []string{"com", "x.com"})
	b.Complete("www.y.com", []string{"com", "y.com"})
	g := b.Finish()

	c1, ok1 := g.NameChainID("www.x.com")
	c2, ok2 := g.NameChainID("mail.x.com")
	c3, ok3 := g.NameChainID("www.y.com")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("names missing from graph")
	}
	if c1 != c2 {
		t.Errorf("identical chains interned to different ids: %d vs %d", c1, c2)
	}
	if c1 == c3 {
		t.Error("distinct chains share a chain id")
	}
	// The chain table holds exactly the distinct chains seen (the two
	// name chains plus the NS hosts' chains: "com", and the two domain
	// chains are shared with the names').
	if got := g.NumChains(); got != 3 {
		t.Errorf("NumChains = %d, want 3 (com | com,x.com | com,y.com)", got)
	}
	// Names on the same chain share the TCB slice, not just its content.
	t1, _ := g.TCBIDs("www.x.com")
	t2, _ := g.TCBIDs("mail.x.com")
	if len(t1) > 0 && len(t2) > 0 && &t1[0] != &t2[0] {
		t.Error("names on one chain must share one TCB slice")
	}
}

// TestBuilderPendingChainAttach covers the streaming race the pending
// set exists for: a host's chain event arriving before any zone lists
// the host as a nameserver must still attach once the zone shows up.
func TestBuilderPendingChainAttach(t *testing.T) {
	b := core.NewBuilder(0)
	b.ObserveZone("com", []string{"a.ns.com"})
	b.ObserveChain("a.ns.com", []string{"com"})
	// Chain first, zone second.
	b.ObserveChain("ns.late.com", []string{"com", "late.com"})
	b.ObserveZone("late.com", []string{"ns.late.com"})
	b.Complete("www.late.com", []string{"com", "late.com"})
	g := b.Finish()

	got := g.HostChainZones("ns.late.com")
	want := []string{"com", "late.com"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HostChainZones(ns.late.com) = %v, want %v", got, want)
	}
	// The chain must feed the dependency closure: www.late.com's TCB
	// includes com's registry server through ns.late.com's chain.
	tcb, err := g.TCB("www.late.com")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range tcb {
		if h == "a.ns.com" {
			found = true
		}
	}
	if !found {
		t.Errorf("TCB %v missing transitive dependency a.ns.com", tcb)
	}
}

// TestBuilderNameAlsoNSHost covers the corner where a surveyed name is
// itself later listed as an NS host of a zone: the name's chain must
// still attach to the host, whether the name completed or failed, even
// though its chain event fired (exactly once) before the zone was
// observed.
func TestBuilderNameAlsoNSHost(t *testing.T) {
	for _, outcome := range []string{"complete", "fail"} {
		t.Run(outcome, func(t *testing.T) {
			b := core.NewBuilder(0)
			b.ObserveZone("com", []string{"a.ns.com"})
			b.ObserveChain("a.ns.com", []string{"com"})
			b.ObserveZone("example.com", []string{"ns1.example.com"})
			b.ObserveChain("ns1.example.com", []string{"com", "example.com"})

			// The surveyed name's chain streams in, then its result —
			// all before any zone lists it as a nameserver.
			b.ObserveChain("dual.example.com", []string{"com", "example.com"})
			if outcome == "complete" {
				b.Complete("dual.example.com", []string{"com", "example.com"})
			} else {
				b.Fail("dual.example.com", errors.New("host walk failed"))
			}

			// Only now does a zone reveal the name as its NS host.
			b.ObserveZone("org", []string{"dual.example.com"})
			b.Complete("www.org-site.org", []string{"org"})
			g := b.Finish()

			want := []string{"com", "example.com"}
			if got := g.HostChainZones("dual.example.com"); !reflect.DeepEqual(got, want) {
				t.Fatalf("HostChainZones(dual.example.com) = %v, want %v", got, want)
			}
			// The attached chain must feed the dependency closure: org's
			// closure (and thus www.org-site.org's TCB) reaches
			// example.com's servers through dual.example.com's chain.
			tcb, err := g.TCB("www.org-site.org")
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, h := range tcb {
				if h == "ns1.example.com" {
					found = true
				}
			}
			if !found {
				t.Errorf("TCB %v missing transitive dependency ns1.example.com", tcb)
			}
		})
	}
}

// TestBuilderStreamingMatchesBatch drives a real walker with a
// synchronous observer feeding a Builder — the exact event order a crawl
// produces — and checks the streamed graph equals the batch Build of the
// same walker's snapshot.
func TestBuilderStreamingMatchesBatch(t *testing.T) {
	reg := topology.Figure1World()
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	w := resolver.NewWalker(r)
	b := core.NewBuilder(1)
	w.SetObserver(builderObserver{b})

	const name = "www.cs.cornell.edu"
	chain, err := w.WalkName(context.Background(), name)
	if err != nil {
		t.Fatal(err)
	}
	b.Complete(name, chain)
	streamed := b.Finish()
	batch := core.Build(w.Snapshot(map[string][]string{name: chain}, nil))

	if streamed.NumZones() != batch.NumZones() || streamed.NumHosts() != batch.NumHosts() {
		t.Fatalf("shape differs: %d/%d zones, %d/%d hosts",
			streamed.NumZones(), batch.NumZones(), streamed.NumHosts(), batch.NumHosts())
	}
	st, err := streamed.TCB(name)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := batch.TCB(name)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, bt) {
		t.Errorf("TCBs differ:\nstreamed %v\nbatch    %v", st, bt)
	}
	for _, apex := range batch.Zones() {
		sc := closureHosts(streamed, apex)
		bc := closureHosts(batch, apex)
		if !reflect.DeepEqual(sc, bc) {
			t.Errorf("closure(%s) differs:\nstreamed %v\nbatch    %v", apex, sc, bc)
		}
	}
}

// builderObserver feeds walker events straight into a Builder. The test
// walk is single-goroutine, so no channel hand-off is needed.
type builderObserver struct{ b *core.Builder }

func (o builderObserver) ZoneDiscovered(apex, _ string, nsHosts []string) {
	o.b.ObserveZone(apex, nsHosts)
}

func (o builderObserver) ChainResolved(key string, chain []string) {
	o.b.ObserveChain(key, chain)
}

// TestFinishEpochSnapshotIsolation is the contract the Monitor's View
// rests on: a Graph returned by FinishEpoch must be immutable — later
// events absorbed by the same builder, and later epochs, must not change
// anything the earlier snapshot reports.
func TestFinishEpochSnapshotIsolation(t *testing.T) {
	b := core.NewBuilder(0)
	b.ObserveZone("com", []string{"a.ns.com"})
	b.ObserveChain("a.ns.com", []string{"com"})
	b.ObserveZone("x.com", []string{"ns.x.com"})
	b.ObserveChain("ns.x.com", []string{"com", "x.com"})
	b.Complete("www.x.com", []string{"com", "x.com"})

	g1 := b.FinishEpoch()
	tcb1, err := g1.TCB("www.x.com")
	if err != nil {
		t.Fatal(err)
	}
	want1 := append([]string(nil), tcb1...)
	if g1.NumNames() != 1 || g1.NumZones() != 2 {
		t.Fatalf("epoch 1: %d names, %d zones", g1.NumNames(), g1.NumZones())
	}

	// Epoch 2 adds a zone whose dependencies reach back through x.com and
	// attaches a chain to a pre-epoch host (a.ns.com has one already; use
	// a fresh pending host to exercise the late-attach path).
	b.ObserveZone("late.com", []string{"srv.x.com"})
	b.ObserveChain("srv.x.com", []string{"com", "x.com"})
	b.Complete("www.late.com", []string{"com", "late.com"})
	g2 := b.FinishEpoch()

	// The first snapshot is untouched: same name set, same TCB.
	if g1.NumNames() != 1 {
		t.Errorf("epoch-1 graph gained names: %d", g1.NumNames())
	}
	if _, err := g1.TCB("www.late.com"); err == nil {
		t.Error("epoch-1 graph resolves a name added in epoch 2")
	}
	got1, err := g1.TCB("www.x.com")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, want1) {
		t.Errorf("epoch-1 TCB changed after later events: %v -> %v", want1, got1)
	}
	if g2.NumNames() != 2 {
		t.Errorf("epoch-2 graph has %d names, want 2", g2.NumNames())
	}
	if _, err := g2.TCB("www.late.com"); err != nil {
		t.Errorf("epoch-2 graph missing new name: %v", err)
	}
}

// TestTakeLateAttached verifies that only chain attachments to hosts
// already published in a finalized epoch are reported — brand-new hosts,
// and attachments before the first epoch, are not "late".
func TestTakeLateAttached(t *testing.T) {
	b := core.NewBuilder(0)
	b.ObserveZone("com", []string{"a.ns.com"})
	b.ObserveChain("a.ns.com", []string{"com"})
	// A zone listing a host whose chain is not yet known: the host is
	// interned chain-less.
	b.ObserveZone("x.com", []string{"ns.elsewhere.net"})
	b.Complete("www.x.com", []string{"com", "x.com"})
	g1 := b.FinishEpoch()
	if late := b.TakeLateAttached(); late != nil {
		t.Fatalf("pre-epoch attachments reported late: %v", late)
	}

	// Epoch 2: the missing chain arrives for the pre-epoch host.
	b.ObserveZone("net", []string{"a.gtld.net"})
	b.ObserveChain("a.gtld.net", []string{"net"})
	b.ObserveChain("ns.elsewhere.net", []string{"net", "elsewhere.net"})
	_ = b.FinishEpoch()
	late := b.TakeLateAttached()
	if len(late) != 1 {
		t.Fatalf("late = %v, want exactly the pre-epoch host", late)
	}
	id, ok := g1.HostID("ns.elsewhere.net")
	if !ok || late[0] != id {
		t.Errorf("late = %v, want [%d] (ns.elsewhere.net)", late, id)
	}
	if b.TakeLateAttached() != nil {
		t.Error("TakeLateAttached must clear the set")
	}
}

// closureHosts returns a zone's closure as sorted host names.
func closureHosts(g *core.Graph, apex string) []string {
	ids := g.ZoneClosure(apex)
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.Host(id))
	}
	sort.Strings(out)
	return out
}
