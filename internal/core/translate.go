package core

// This file is the id-path mirror of the builder's string event API.
// A fleet coordinator replays a shard's already-interned tables into a
// union builder by walking the shard's hosts/zones/chains arrays in id
// order, interning each element here, and recording the returned union
// id in a per-shard remap table; chain zone ids and zone NS host ids
// are translated through those tables before interning. Each hook
// shares its implementation with the string event path, so a graph
// assembled from translated ids is indistinguishable from one
// assembled from the original walker event stream.
//
// Like the rest of the Builder API these methods are single-owner:
// exactly one goroutine (the coordinator's commit path) calls them.

// InternHost interns one nameserver host name and returns its union
// id. Unlike ObserveZone's host interning it never attaches a chain —
// the caller replays the shard's host→chain table explicitly through
// AttachHostChain.
func (b *Builder) InternHost(host string) int32 {
	b.lock()
	defer b.unlock()
	id, _ := b.internHostLocked(host)
	return id
}

// InternZone interns one zone apex with its NS hosts given as already
// translated union host ids, returning the union zone id. First
// observation of an apex wins, matching ObserveZone; the root ("") is
// excluded as throughout the paper and reports -1.
func (b *Builder) InternZone(apex string, nsHosts []int32) int32 {
	if apex == "" {
		return -1
	}
	st := b.st
	b.lock()
	defer b.unlock()
	if zid, ok := st.zoneID[apex]; ok {
		return zid
	}
	zid := int32(len(st.zones))
	st.zones = append(st.zones, apex)
	st.zoneID[apex] = zid
	ids := make([]int32, 0, len(nsHosts))
	ids = append(ids, nsHosts...)
	sortUnique(&ids)
	st.zoneNS = append(st.zoneNS, ids)
	return zid
}

// InternChain interns one delegation chain given as already translated
// union zone ids (in traversal order), deduplicating against every
// chain seen so far, and returns the union chain id. An empty slice
// interns the empty chain.
func (b *Builder) InternChain(zoneIDs []int32) int32 {
	b.lock()
	defer b.unlock()
	return b.internChainFromIDsLocked(zoneIDs)
}

// AttachHostChain assigns host hid's address chain by interned chain
// id. The first attachment wins, matching ObserveChain; attachments to
// hosts already published in a finalized graph are tracked as late so
// TakeLateAttached keeps memo invalidation precise.
func (b *Builder) AttachHostChain(hid, cid int32) {
	if b.st.hostChainAt[hid] != 0 {
		return
	}
	b.lock()
	b.attachChainLocked(hid, cid)
	b.unlock()
	if int(hid) < b.epochHosts {
		b.lateAttached[hid] = struct{}{}
	}
}

// CompleteChain records one successfully walked name by interned chain
// id — Complete with the interning already done. It supersedes any
// earlier Fail for the name, and is a no-op (no journal touch, no new
// version) when the mapping is unchanged, which makes replaying a
// shard's full name table idempotent.
func (b *Builder) CompleteChain(name string, cid int32) {
	delete(b.failed, name)
	delete(b.failedChain, name)
	delete(b.pending, name)
	b.lock()
	touched := b.completeLocked(name, cid)
	b.unlock()
	if touched {
		b.touched = append(b.touched, name)
	}
}
