package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := os.WriteFile(path, []byte("old content"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new content!"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len("new content!")) {
		t.Fatalf("reported %d bytes, want %d", n, len("new content!"))
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new content!" {
		t.Fatalf("read %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestWriteFileFailureKeepsOld simulates dying partway through a save (a
// write error after bytes already flowed): the previous file must be
// untouched and no partial temp file may remain — the invariant that
// makes an interrupted snapshot save unloadable rather than corrupt.
func TestWriteFileFailureKeepsOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("interrupted")
	_, err := WriteFile(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial garbage")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Fatalf("previous content clobbered: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("partial temp file left behind: %v", err)
	}
}

func TestWriteFileNoPriorFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.bin")
	boom := errors.New("interrupted")
	if _, err := WriteFile(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed write created the target: %v", err)
	}
	if _, err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("ok"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "ok" {
		t.Fatalf("read %q", got)
	}
}
