// Package atomicio implements the write-to-temp-then-rename idiom shared
// by every on-disk artifact that must never be observable half-written:
// query-memo files and epoch-store snapshots. The content is produced
// into a temporary sibling of the target, synced, and renamed into place
// — a crash or SIGTERM at any point leaves either the previous complete
// file or no file, never a loadable partial one.
package atomicio

import (
	"fmt"
	"io"
	"os"
)

// WriteFile atomically replaces path with the bytes write produces. The
// data is written to path+".tmp" in the same directory (so the final
// rename cannot cross filesystems), fsynced, and renamed over path only
// after write returned nil and the file is durably on disk. On any
// failure the temporary file is removed and the previous content of path
// is untouched. It returns the number of bytes written.
func WriteFile(path string, write func(io.Writer) error) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("atomicio: %w", err)
	}
	cw := &countingWriter{w: f}
	if err := write(cw); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("atomicio: %s: %w", tmp, err)
	}
	// Sync before rename: otherwise a crash shortly after could replace
	// the old file with a new one whose blocks never hit the disk.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("atomicio: %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("atomicio: %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("atomicio: %w", err)
	}
	return cw.n, nil
}

// countingWriter tracks how many bytes passed through.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
