package dnsserver

import (
	"context"
	"errors"
	"io"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnstrust/internal/dnsclient"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/dnszone"
)

func testZone(t *testing.T) *dnszone.Zone {
	t.Helper()
	z := dnszone.New("fbi.gov")
	z.AddNS("dns.sprintip.com")
	z.AddNS("dns2.sprintip.com")
	if err := z.AddAddress("www.fbi.gov", netip.MustParseAddr("32.97.253.16")); err != nil {
		t.Fatal(err)
	}
	return z
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := Start(context.Background(), "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, s.Addr().String()
}

func TestServeAuthoritativeAnswer(t *testing.T) {
	_, addr := startServer(t, Config{Zones: []*dnszone.Zone{testZone(t)}, VersionBanner: "BIND 8.2.4"})
	c := dnsclient.New(dnsclient.Config{Timeout: time.Second})
	resp, err := c.Query(context.Background(), addr, "www.fbi.gov", dnswire.TypeA, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Authoritative || resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("unexpected response: %s", resp)
	}
	if got := resp.Answers[0].Data.(dnswire.A).Addr.String(); got != "32.97.253.16" {
		t.Errorf("answer = %s", got)
	}
}

func TestServeNXDomainAndNoData(t *testing.T) {
	_, addr := startServer(t, Config{Zones: []*dnszone.Zone{testZone(t)}})
	c := dnsclient.New(dnsclient.Config{Timeout: time.Second})
	resp, err := c.Query(context.Background(), addr, "missing.fbi.gov", dnswire.TypeA, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("RCode = %v, want NXDOMAIN", resp.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type() != dnswire.TypeSOA {
		t.Error("negative answer must carry SOA")
	}
	resp, err = c.Query(context.Background(), addr, "www.fbi.gov", dnswire.TypeMX, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 0 {
		t.Errorf("NODATA response wrong: %s", resp)
	}
}

func TestServeReferral(t *testing.T) {
	z := dnszone.New("gov")
	z.AddNS("a.gov-servers.net")
	if err := z.Delegate("fbi.gov", "dns.sprintip.com", "dns2.sprintip.com"); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, Config{Zones: []*dnszone.Zone{z}})
	c := dnsclient.New(dnsclient.Config{Timeout: time.Second})
	resp, err := c.Query(context.Background(), addr, "www.fbi.gov", dnswire.TypeA, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Authoritative {
		t.Error("referral must not be authoritative")
	}
	if len(resp.Authority) != 2 {
		t.Errorf("referral NS count = %d, want 2", len(resp.Authority))
	}
}

func TestVersionBind(t *testing.T) {
	_, addr := startServer(t, Config{Zones: []*dnszone.Zone{testZone(t)}, VersionBanner: "BIND 8.2.4"})
	c := dnsclient.New(dnsclient.Config{Timeout: time.Second})
	banner, err := c.VersionBind(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if banner != "BIND 8.2.4" {
		t.Errorf("banner = %q", banner)
	}
}

func TestVersionBindHidden(t *testing.T) {
	_, addr := startServer(t, Config{Zones: []*dnszone.Zone{testZone(t)}})
	c := dnsclient.New(dnsclient.Config{Timeout: time.Second})
	banner, err := c.VersionBind(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if banner != "" {
		t.Errorf("hidden server returned banner %q", banner)
	}
}

func TestRefusesForeignZone(t *testing.T) {
	_, addr := startServer(t, Config{Zones: []*dnszone.Zone{testZone(t)}})
	c := dnsclient.New(dnsclient.Config{Timeout: time.Second})
	resp, err := c.Query(context.Background(), addr, "www.cornell.edu", dnswire.TypeA, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("RCode = %v, want REFUSED", resp.RCode)
	}
}

func TestTruncationAndTCPFallback(t *testing.T) {
	// Build a zone whose answer exceeds 512 bytes: many TXT records.
	z := dnszone.New("big.test")
	z.AddNS("ns1.big.test")
	for i := 0; i < 40; i++ {
		z.MustAddRR(dnswire.RR{
			Name: "fat.big.test", Class: dnswire.ClassINET, TTL: 60,
			Data: dnswire.TXT{Text: []string{strings.Repeat("x", 200)}},
		})
	}
	_, addr := startServer(t, Config{Zones: []*dnszone.Zone{z}})

	// Without fallback we must see the TC bit.
	noFallback := dnsclient.New(dnsclient.Config{Timeout: time.Second, DisableTCPFallback: true})
	resp, err := noFallback.Query(context.Background(), addr, "fat.big.test", dnswire.TypeTXT, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatal("expected truncated UDP response")
	}
	if len(resp.Answers) != 0 {
		t.Error("truncated response should carry no answers")
	}

	// With fallback the client must transparently retry over TCP.
	c := dnsclient.New(dnsclient.Config{Timeout: time.Second})
	resp, err = c.Query(context.Background(), addr, "fat.big.test", dnswire.TypeTXT, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Error("TCP response still truncated")
	}
	if len(resp.Answers) != 40 {
		t.Errorf("TCP answers = %d, want 40", len(resp.Answers))
	}
}

func TestMalformedPacketsDropped(t *testing.T) {
	_, addr := startServer(t, Config{Zones: []*dnszone.Zone{testZone(t)}})
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 512)
	if n, err := conn.Read(buf); err == nil {
		t.Errorf("server answered %d bytes to garbage; must drop", n)
	}
	// The server must still answer well-formed queries afterwards.
	c := dnsclient.New(dnsclient.Config{Timeout: time.Second})
	if _, err := c.Query(context.Background(), addr, "www.fbi.gov", dnswire.TypeA, dnswire.ClassINET); err != nil {
		t.Fatalf("server wedged after garbage: %v", err)
	}
}

func TestNotImplOpcodeAndClass(t *testing.T) {
	_, addr := startServer(t, Config{Zones: []*dnszone.Zone{testZone(t)}})
	c := dnsclient.New(dnsclient.Config{Timeout: time.Second})
	msg := dnswire.NewQuery(42, "www.fbi.gov", dnswire.TypeA, dnswire.ClassINET)
	msg.Opcode = dnswire.OpcodeStatus
	resp, err := c.Exchange(context.Background(), addr, msg)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNotImpl {
		t.Errorf("STATUS opcode: RCode = %v, want NOTIMP", resp.RCode)
	}
	resp, err = c.Query(context.Background(), addr, "www.fbi.gov", dnswire.TypeA, dnswire.Class(4))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNotImpl {
		t.Errorf("HS class: RCode = %v, want NOTIMP", resp.RCode)
	}
}

func TestChaosNonVersionRefused(t *testing.T) {
	_, addr := startServer(t, Config{Zones: []*dnszone.Zone{testZone(t)}, VersionBanner: "BIND 9.2.3"})
	c := dnsclient.New(dnsclient.Config{Timeout: time.Second})
	resp, err := c.Query(context.Background(), addr, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("hostname.bind: RCode = %v, want REFUSED", resp.RCode)
	}
}

func TestConcurrentQueries(t *testing.T) {
	_, addr := startServer(t, Config{Zones: []*dnszone.Zone{testZone(t)}, VersionBanner: "BIND 9.2.3"})
	c := dnsclient.New(dnsclient.Config{Timeout: 2 * time.Second, Retries: 3})
	const n = 50
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.Query(context.Background(), addr, "www.fbi.gov", dnswire.TypeA, dnswire.ClassINET)
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent query failed: %v", err)
		}
	}
}

func TestGracefulClose(t *testing.T) {
	s, addr := startServer(t, Config{Zones: []*dnszone.Zone{testZone(t)}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	c := dnsclient.New(dnsclient.Config{Timeout: 200 * time.Millisecond, Retries: 1})
	if _, err := c.Query(context.Background(), addr, "www.fbi.gov", dnswire.TypeA, dnswire.ClassINET); err == nil {
		t.Error("closed server still answering")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := Start(ctx, "127.0.0.1:0", Config{Zones: []*dnszone.Zone{testZone(t)}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	c := dnsclient.New(dnsclient.Config{Timeout: 100 * time.Millisecond, Retries: 1})
	for time.Now().Before(deadline) {
		if _, err := c.Query(context.Background(), s.Addr().String(), "www.fbi.gov", dnswire.TypeA, dnswire.ClassINET); err != nil {
			return // server went down as expected
		}
	}
	t.Error("server still answering after context cancellation")
}

func TestZoneSet(t *testing.T) {
	parent := dnszone.New("gov")
	child := dnszone.New("fbi.gov")
	zs, err := NewZoneSet([]*dnszone.Zone{parent, child})
	if err != nil {
		t.Fatal(err)
	}
	if z := zs.Match("www.fbi.gov"); z != child {
		t.Error("longest match must pick the child zone")
	}
	if z := zs.Match("usdoj.gov"); z != parent {
		t.Error("fallback to parent zone failed")
	}
	if z := zs.Match("example.com"); z != nil {
		t.Error("unrelated name matched a zone")
	}
	if _, err := NewZoneSet([]*dnszone.Zone{parent, dnszone.New("gov")}); err == nil {
		t.Error("duplicate zone origins must be rejected")
	}
	if got := zs.Origins(); len(got) != 2 || got[0] != "fbi.gov" {
		t.Errorf("Origins = %v", got)
	}
}

func TestZoneSetRootZone(t *testing.T) {
	root := dnszone.New("")
	zs, err := NewZoneSet([]*dnszone.Zone{root})
	if err != nil {
		t.Fatal(err)
	}
	if z := zs.Match("anything.at.all"); z != root {
		t.Error("root zone must match every name")
	}
}

// slowEcho is a Handler that sleeps before answering, long enough for a
// test to start a shutdown while the query is in flight.
type slowEcho struct {
	delay time.Duration
	text  string
}

func (h *slowEcho) ServeDNS(ctx context.Context, req *dnswire.Message) *dnswire.Message {
	select {
	case <-time.After(h.delay):
	case <-ctx.Done():
		return nil
	}
	resp := req.Reply()
	resp.Authoritative = true
	resp.Answers = []dnswire.RR{{
		Name: req.Questions[0].Name, Class: dnswire.ClassINET, TTL: 0,
		Data: dnswire.TXT{Text: []string{h.text}},
	}}
	return resp
}

func TestHandlerServesQueries(t *testing.T) {
	_, addr := startServer(t, Config{Handler: &slowEcho{text: "hello"}})
	c := dnsclient.New(dnsclient.Config{Timeout: time.Second})
	resp, err := c.Query(context.Background(), addr, "any.example.com", dnswire.TypeTXT, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("unexpected response: %s", resp)
	}
	if got := resp.Answers[0].Data.(dnswire.TXT).Text[0]; got != "hello" {
		t.Errorf("answer = %q", got)
	}
}

// TestShutdownDrainsInFlightUDP is the regression test for the old
// Close race: a query whose handler is still running when the stop
// begins must still get its response. Close slams the UDP socket, so
// the response was silently lost; Shutdown keeps the socket open until
// the handler finishes.
func TestShutdownDrainsInFlightUDP(t *testing.T) {
	s, addr := startServer(t, Config{Handler: &slowEcho{delay: 150 * time.Millisecond, text: "drained"}})
	c := dnsclient.New(dnsclient.Config{Timeout: 2 * time.Second})

	type result struct {
		resp *dnswire.Message
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := c.Query(context.Background(), addr, "slow.example.com", dnswire.TypeTXT, dnswire.ClassINET)
		ch <- result{resp, err}
	}()

	time.Sleep(40 * time.Millisecond) // let the query reach the handler
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	r := <-ch
	if r.err != nil {
		t.Fatalf("in-flight query lost its response across Shutdown: %v", r.err)
	}
	if got := r.resp.Answers[0].Data.(dnswire.TXT).Text[0]; got != "drained" {
		t.Errorf("answer = %q", got)
	}

	// The sockets are released: new queries fail fast.
	c2 := dnsclient.New(dnsclient.Config{Timeout: 200 * time.Millisecond})
	if _, err := c2.Query(context.Background(), addr, "late.example.com", dnswire.TypeTXT, dnswire.ClassINET); err == nil {
		t.Error("query after Shutdown should not be answered")
	}
}

// TestShutdownDrainsInFlightTCP covers the same drain guarantee for a
// connection mid-exchange: the response is written before the server
// stops, and the connection is then closed instead of being reused.
func TestShutdownDrainsInFlightTCP(t *testing.T) {
	s, addr := startServer(t, Config{Handler: &slowEcho{delay: 150 * time.Millisecond, text: "tcp-drained"}})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(7, "slow.example.com", dnswire.TypeTXT, dnswire.ClassINET)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	framed := append([]byte{byte(len(pkt) >> 8), byte(len(pkt))}, pkt...)
	if _, err := conn.Write(framed); err != nil {
		t.Fatal(err)
	}

	time.Sleep(40 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	conn.SetReadDeadline(time.Now().Add(time.Second))
	var lenbuf [2]byte
	if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
		t.Fatalf("in-flight TCP query lost its response across Shutdown: %v", err)
	}
	body := make([]byte, int(lenbuf[0])<<8|int(lenbuf[1]))
	if _, err := io.ReadFull(conn, body); err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(body)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Answers[0].Data.(dnswire.TXT).Text[0]; got != "tcp-drained" {
		t.Errorf("answer = %q", got)
	}
	// The server hung up after the drained exchange.
	if _, err := io.ReadFull(conn, lenbuf[:]); err == nil {
		t.Error("connection should be closed after a drained exchange")
	}
}

func TestShutdownTimeoutFallsBackToClose(t *testing.T) {
	s, addr := startServer(t, Config{Handler: &slowEcho{delay: 5 * time.Second, text: "never"}})
	c := dnsclient.New(dnsclient.Config{Timeout: 100 * time.Millisecond})
	go c.Query(context.Background(), addr, "stuck.example.com", dnswire.TypeTXT, dnswire.ClassINET)
	time.Sleep(30 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timed-out Shutdown must not wait for the handler")
	}
	// Idempotent: a second Shutdown after Close is a no-op.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown = %v", err)
	}
}

func TestShutdownQuiescentServer(t *testing.T) {
	s, _ := startServer(t, Config{Zones: []*dnszone.Zone{testZone(t)}})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown of idle server: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close after Shutdown = %v", err)
	}
}
