// Package dnsserver implements a concurrent authoritative DNS server over
// UDP and TCP on the standard net package. Each server instance plays the
// role of one nameserver of the synthetic Internet: it serves a set of
// zones authoritatively and answers CHAOS version.bind probes with a
// configurable BIND banner, which is how the survey fingerprinting works.
package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/dnszone"
)

// Handler computes the response to one parsed DNS request. Returning nil
// drops the request. The context is the server's lifetime context: it is
// cancelled on abrupt Close, but stays live through a graceful Shutdown so
// in-flight handlers can finish and their responses still reach the wire.
// Handlers run concurrently and must be safe for concurrent use.
type Handler interface {
	ServeDNS(ctx context.Context, req *dnswire.Message) *dnswire.Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, req *dnswire.Message) *dnswire.Message

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(ctx context.Context, req *dnswire.Message) *dnswire.Message {
	return f(ctx, req)
}

// Config configures a Server.
type Config struct {
	// Zones lists the zones this server answers for authoritatively.
	Zones []*dnszone.Zone
	// Handler, when non-nil, answers all well-formed queries instead of
	// the authoritative zone logic. This turns the listener into a
	// general DNS frontend (the trust-aware proxy runs this way); Zones
	// may then be empty.
	Handler Handler
	// VersionBanner is returned for CH TXT version.bind queries.
	// Empty means the probe is REFUSED (a "hidden" server).
	VersionBanner string
	// Logger receives per-request diagnostics; nil disables logging.
	Logger *log.Logger
	// ReadTimeout bounds TCP reads; zero means 5s.
	ReadTimeout time.Duration
}

// Server is a running authoritative nameserver bound to one UDP and one
// TCP socket on the same address.
type Server struct {
	cfg   Config
	zones *ZoneSet

	udp *net.UDPConn
	tcp *net.TCPListener

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	closed   bool
	draining bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// ZoneSet indexes zones for longest-suffix matching.
type ZoneSet struct {
	byOrigin map[string]*dnszone.Zone
}

// NewZoneSet builds an index over the given zones. Duplicate origins are
// an error: one server must not serve two copies of a zone.
func NewZoneSet(zones []*dnszone.Zone) (*ZoneSet, error) {
	zs := &ZoneSet{byOrigin: make(map[string]*dnszone.Zone, len(zones))}
	for _, z := range zones {
		if _, dup := zs.byOrigin[z.Origin()]; dup {
			return nil, fmt.Errorf("dnsserver: duplicate zone %q", z.Origin())
		}
		zs.byOrigin[z.Origin()] = z
	}
	return zs, nil
}

// Match returns the zone with the longest origin that is an ancestor of
// name, or nil.
func (zs *ZoneSet) Match(name string) *dnszone.Zone {
	name = dnsname.Canonical(name)
	for {
		if z, ok := zs.byOrigin[name]; ok {
			return z
		}
		if name == "" {
			// Check for a root zone before giving up happens above; done.
			return nil
		}
		p, _ := dnsname.Parent(name)
		name = p
	}
}

// Origins returns the zone origins in sorted order.
func (zs *ZoneSet) Origins() []string {
	out := make([]string, 0, len(zs.byOrigin))
	for o := range zs.byOrigin {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Start binds addr (host:port; port 0 picks an ephemeral port shared by
// UDP and TCP) and begins serving until Close or ctx cancellation.
func Start(ctx context.Context, addr string, cfg Config) (*Server, error) {
	zs, err := NewZoneSet(cfg.Zones)
	if err != nil {
		return nil, err
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 5 * time.Second
	}
	s := &Server{cfg: cfg, zones: zs, conns: make(map[net.Conn]struct{})}
	// The server's lifetime is bound to Close/Shutdown, not to the Start
	// ctx: callers hand in request-scoped contexts, and tying s.ctx to
	// one would tear down every accepted connection when it expires. The
	// Start ctx still stops the server — via the watcher goroutine below
	// that calls Close on ctx.Done().
	//lint:allow ctxflow server lifecycle is Close/Shutdown-driven; the Start ctx only triggers Close via the watcher goroutine
	s.ctx, s.cancel = context.WithCancel(context.Background())

	tcpL, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: tcp listen: %w", err)
	}
	// Bind UDP on the port TCP got, so both share an address.
	tcpAddr := tcpL.Addr().(*net.TCPAddr)
	udpConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: tcpAddr.IP, Port: tcpAddr.Port})
	if err != nil {
		tcpL.Close()
		return nil, fmt.Errorf("dnsserver: udp listen: %w", err)
	}
	s.tcp = tcpL.(*net.TCPListener)
	s.udp = udpConn

	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	if ctx != nil && ctx.Done() != nil {
		go func() {
			<-ctx.Done()
			s.Close()
		}()
	}
	return s, nil
}

// Addr returns the bound address (identical for UDP and TCP).
func (s *Server) Addr() net.Addr { return s.udp.LocalAddr() }

// Close stops the listeners abruptly and waits for goroutines to exit.
// In-flight UDP responses race the socket close and may be lost; callers
// that need every accepted query answered should use Shutdown instead.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.cancel()
	s.udp.Close()
	s.tcp.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// Shutdown gracefully stops the server: it stops reading new queries but
// keeps both sockets open until every in-flight query has been answered,
// so no accepted query loses its response (Close, by contrast, races the
// handler against the socket close). New TCP sessions are rejected and
// idle ones unblocked; a connection mid-request finishes its exchange.
// If ctx expires before the drain completes, Shutdown falls back to an
// abrupt Close and returns ctx.Err(). Shutdown is idempotent and safe to
// race with Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if !s.draining {
		s.draining = true
		// Kick the UDP read loop out of its blocking read without
		// closing the socket: responses still need it.
		s.udp.SetReadDeadline(time.Now())
		// Stop accepting; established connections drain below.
		s.tcp.Close()
		for c := range s.conns {
			// Unblocks idle connections; one mid-request still gets
			// its response written before the loop exits.
			c.SetReadDeadline(time.Now())
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.Close() // nothing in flight; release the sockets
	case <-ctx.Done():
		s.Close()
		return ctx.Err()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) isStopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.draining
}

// track registers a TCP connection for shutdown accounting. It reports
// false when the server is already closed (the connection should be
// dropped); during a drain the connection is admitted but has its read
// deadline slammed so it cannot start another exchange.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	if s.draining {
		conn.SetReadDeadline(time.Now())
	}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			if s.isStopping() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("udp read: %v", err)
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		s.wg.Add(1)
		go func(pkt []byte, peer *net.UDPAddr) {
			defer s.wg.Done()
			resp := s.handle(pkt, true)
			if resp == nil {
				return
			}
			if _, err := s.udp.WriteToUDP(resp, peer); err != nil && !s.isClosed() {
				s.logf("udp write to %v: %v", peer, err)
			}
		}(pkt, peer)
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			if s.isStopping() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("tcp accept: %v", err)
			continue
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveTCPConn(conn)
		}(conn)
	}
}

// serveTCPConn handles length-prefixed DNS messages on one connection
// (RFC 1035 §4.2.2), allowing multiple queries per connection.
func (s *Server) serveTCPConn(conn net.Conn) {
	for {
		if s.isStopping() {
			// Do not refresh the read deadline Shutdown slammed: the
			// finished exchange was the connection's last.
			return
		}
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
			return
		}
		var lenbuf [2]byte
		if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
			return // EOF or timeout ends the conversation
		}
		msglen := int(lenbuf[0])<<8 | int(lenbuf[1])
		if msglen == 0 {
			return
		}
		pkt := make([]byte, msglen)
		if _, err := io.ReadFull(conn, pkt); err != nil {
			return
		}
		resp := s.handle(pkt, false)
		if resp == nil {
			return
		}
		out := make([]byte, 2+len(resp))
		out[0], out[1] = byte(len(resp)>>8), byte(len(resp))
		copy(out[2:], resp)
		if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
			return
		}
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

// handle processes one raw request and returns the packed response, or nil
// to drop the request (unparseable queries are dropped, as real servers
// drop noise rather than amplify it).
func (s *Server) handle(pkt []byte, udp bool) []byte {
	req, err := dnswire.Unpack(pkt)
	if err != nil {
		return nil
	}
	if req.Response || len(req.Questions) != 1 {
		return nil
	}
	resp := s.respond(req)
	if resp == nil {
		return nil
	}
	out, err := resp.Pack()
	if err != nil {
		s.logf("pack response: %v", err)
		return nil
	}
	if udp && len(out) > dnswire.MaxUDPSize {
		// Truncate: header + question only, TC set, client retries on TCP.
		trunc := req.Reply()
		trunc.RCode = resp.RCode
		trunc.Truncated = true
		out, err = trunc.Pack()
		if err != nil {
			return nil
		}
	}
	return out
}

// respond builds the full response message for a single-question query,
// dispatching to the configured Handler when one is set.
func (s *Server) respond(req *dnswire.Message) *dnswire.Message {
	if s.cfg.Handler != nil {
		return s.cfg.Handler.ServeDNS(s.ctx, req)
	}
	return Respond(s.zones, s.cfg.VersionBanner, req)
}

// Respond computes the authoritative response a server with the given zone
// set and version banner gives to req. It is exported so that in-memory
// transports can reuse the exact semantics of the network server.
func Respond(zones *ZoneSet, banner string, req *dnswire.Message) *dnswire.Message {
	q := req.Questions[0]
	resp := req.Reply()

	if req.Opcode != dnswire.OpcodeQuery {
		resp.RCode = dnswire.RCodeNotImpl
		return resp
	}

	// CHAOS class: version.bind fingerprinting.
	if q.Class == dnswire.ClassCHAOS {
		name := dnsname.Canonical(q.Name)
		if (q.Type == dnswire.TypeTXT || q.Type == dnswire.TypeANY) && name == "version.bind" {
			if banner == "" {
				resp.RCode = dnswire.RCodeRefused
				return resp
			}
			resp.Authoritative = true
			resp.Answers = []dnswire.RR{{
				Name: "version.bind", Class: dnswire.ClassCHAOS, TTL: 0,
				Data: dnswire.TXT{Text: []string{banner}},
			}}
			return resp
		}
		resp.RCode = dnswire.RCodeRefused
		return resp
	}

	if q.Class != dnswire.ClassINET {
		resp.RCode = dnswire.RCodeNotImpl
		return resp
	}

	zone := zones.Match(q.Name)
	if zone == nil {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}
	res := zone.Lookup(q.Name, q.Type)
	switch res.Kind {
	case dnszone.KindAnswer:
		resp.Authoritative = true
		resp.Answers = res.Answer
	case dnszone.KindNoData:
		resp.Authoritative = true
		resp.Authority = res.Authority
	case dnszone.KindNXDomain:
		resp.Authoritative = true
		resp.RCode = dnswire.RCodeNXDomain
		resp.Authority = res.Authority
	case dnszone.KindDelegation:
		resp.Authority = res.Authority
		resp.Additional = res.Additional
	default:
		resp.RCode = dnswire.RCodeRefused
	}
	return resp
}
