package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"testing"

	"dnstrust/internal/dnswire"
)

// errTransport fails every query with a fixed error.
type errTransport struct{ err error }

func (t errTransport) Query(context.Context, netip.Addr, string, dnswire.Type, dnswire.Class) (*dnswire.Message, error) {
	return nil, t.err
}

// TestRetryBudgetPreservesErrorChain guards the never-memoize-cancellation
// invariant: when the retry budget trips, the underlying error — possibly
// a wrapped context cancellation — must stay reachable through errors.Is,
// or queryAny would cache the cancellation as a permanent failure.
func TestRetryBudgetPreservesErrorChain(t *testing.T) {
	underlying := fmt.Errorf("transport: %w", context.DeadlineExceeded)
	r, err := New(errTransport{err: underlying}, Config{
		Roots:       []ServerAddr{{Host: "a.root.test", Addr: netip.MustParseAddr("198.41.0.4")}},
		RetryBudget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(r)
	servers := []ServerAddr{
		{Host: "s1", Addr: netip.MustParseAddr("192.0.2.1")},
		{Host: "s2", Addr: netip.MustParseAddr("192.0.2.2")},
	}
	_, err = w.dispatch(context.Background(), "test", servers, "example.test", dnswire.TypeA)
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("dispatch error = %v, want ErrRetryBudget in chain", err)
	}
	if !isCtxErr(err) {
		t.Fatalf("dispatch error %v hides the wrapped cancellation from isCtxErr", err)
	}
}

// TestRetryBudgetCapsAttempts verifies the budget actually bounds how
// many servers one logical query tries.
func TestRetryBudgetCapsAttempts(t *testing.T) {
	r, err := New(errTransport{err: errors.New("refused")}, Config{
		Roots:       []ServerAddr{{Host: "a.root.test", Addr: netip.MustParseAddr("198.41.0.4")}},
		RetryBudget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(r)
	servers := make([]ServerAddr, 5)
	for i := range servers {
		servers[i] = ServerAddr{Host: fmt.Sprintf("s%d", i), Addr: netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", i+1))}
	}
	if _, err := w.dispatch(context.Background(), "test", servers, "example.test", dnswire.TypeA); !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("dispatch error = %v, want ErrRetryBudget", err)
	}
	if got := w.Queries(); got != 2 {
		t.Fatalf("dispatch issued %d queries, want the budget of 2", got)
	}
}
