package resolver

import (
	"net/netip"
	"sync"

	"dnstrust/internal/dnswire"
)

// numShards is the walker's cache shard count. Keys (zone apexes, host
// names) hash across shards so concurrent walks contend only when they
// touch the same slice of the namespace, not on one global lock. A power
// of two keeps the index computation a mask.
const numShards = 64

// fnv1a hashes a cache key (FNV-1a, 32-bit).
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// cacheShard is one shard of the walker's discovery state. Entries are
// first-write-wins and logically immutable once stored, so readers may
// share returned values without copying (Snapshot copies defensively at
// extraction time).
type cacheShard struct {
	mu sync.RWMutex
	// zones caches discovered delegations by apex.
	zones map[string]*ZoneInfo
	// servers caches resolved, usable server addresses per zone apex.
	servers map[string][]ServerAddr
	// addrs caches resolved nameserver host addresses.
	addrs map[string][]netip.Addr
	// chains caches full zone chains per resolved name/host.
	chains map[string][]string
	// hostErr caches hosts whose address resolution failed.
	hostErr map[string]error
}

func (s *cacheShard) init() {
	s.zones = make(map[string]*ZoneInfo)
	s.servers = make(map[string][]ServerAddr)
	s.addrs = make(map[string][]netip.Addr)
	s.chains = make(map[string][]string)
	s.hostErr = make(map[string]error)
}

// queryKey identifies one logical walker query. The answering zone is a
// deterministic function of (name, qtype) for the walker's descent
// pattern — NS probes are always addressed to the zone immediately above
// the probed label, address lookups to the host's authoritative zone —
// so the server list does not participate in the key.
type queryKey struct {
	name  string
	qtype dnswire.Type
}

// queryEntry is a memoized (possibly still in-flight) query result.
// Waiters block on done; resp/err are immutable once done is closed.
type queryEntry struct {
	done chan struct{}
	resp *dnswire.Message
	err  error
}

// queryShard is one shard of the walker's query memo table. The memo
// gives the engine its strongest guarantee: each logical query crosses
// the transport exactly once per walker lifetime, no matter how many
// workers race to ask it, which makes total transport work invariant
// across worker counts.
type queryShard struct {
	mu sync.Mutex
	m  map[queryKey]*queryEntry
}
