package resolver_test

import (
	"context"
	"errors"
	"testing"

	"dnstrust/internal/dnswire"
	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
)

func fbiResolver(t *testing.T) (*topology.Registry, *resolver.Resolver) {
	t.Helper()
	reg := topology.FBIWorld()
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	return reg, r
}

func TestResolveSimple(t *testing.T) {
	_, r := fbiResolver(t)
	res, err := r.Resolve(context.Background(), "www.fbi.gov", dnswire.TypeA)
	if err != nil {
		t.Fatalf("Resolve: %v\ntrace: %+v", err, res.Trace)
	}
	if len(res.Addrs) != 1 {
		t.Fatalf("got %d addresses", len(res.Addrs))
	}
	if res.AuthZone != "fbi.gov" {
		t.Errorf("auth zone = %q, want fbi.gov", res.AuthZone)
	}
}

func TestResolveTraceShowsChain(t *testing.T) {
	_, r := fbiResolver(t)
	res, err := r.Resolve(context.Background(), "www.fbi.gov", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	// The trace must show the walk: root -> gov -> fbi.gov, and inside it
	// the address resolution of dns.sprintip.com (through com/sprintip.com).
	zonesSeen := map[string]bool{}
	for _, step := range res.Trace {
		zonesSeen[step.Zone] = true
	}
	for _, want := range []string{"", "gov", "fbi.gov"} {
		if !zonesSeen[want] {
			t.Errorf("trace never contacted zone %q; trace: %+v", want, res.Trace)
		}
	}
}

func TestResolveNXDomain(t *testing.T) {
	_, r := fbiResolver(t)
	_, err := r.Resolve(context.Background(), "nonexistent.fbi.gov", dnswire.TypeA)
	if !errors.Is(err, resolver.ErrNXDomain) {
		t.Errorf("got %v, want ErrNXDomain", err)
	}
}

func TestResolveNoData(t *testing.T) {
	_, r := fbiResolver(t)
	_, err := r.Resolve(context.Background(), "www.fbi.gov", dnswire.TypeMX)
	if !errors.Is(err, resolver.ErrNoData) {
		t.Errorf("got %v, want ErrNoData", err)
	}
}

func TestResolveCNAME(t *testing.T) {
	reg := topology.FBIWorld()
	z := reg.Zone("fbi.gov")
	z.MustAddRR(dnswire.RR{
		Name: "web.fbi.gov", Class: dnswire.ClassINET, TTL: 60,
		Data: dnswire.CNAME{Target: "www.fbi.gov"},
	})
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Resolve(context.Background(), "web.fbi.gov", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.CanonicalName != "www.fbi.gov" {
		t.Errorf("canonical name = %q", res.CanonicalName)
	}
	if len(res.Addrs) != 1 {
		t.Errorf("got %d addresses", len(res.Addrs))
	}
}

func TestResolveCNAMELoop(t *testing.T) {
	reg := topology.FBIWorld()
	z := reg.Zone("fbi.gov")
	z.MustAddRR(dnswire.RR{
		Name: "a.fbi.gov", Class: dnswire.ClassINET, TTL: 60,
		Data: dnswire.CNAME{Target: "b.fbi.gov"},
	})
	z.MustAddRR(dnswire.RR{
		Name: "b.fbi.gov", Class: dnswire.ClassINET, TTL: 60,
		Data: dnswire.CNAME{Target: "a.fbi.gov"},
	})
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(context.Background(), "a.fbi.gov", dnswire.TypeA); !errors.Is(err, resolver.ErrCNAMELoop) {
		t.Errorf("got %v, want ErrCNAMELoop", err)
	}
}

func TestResolveFigure1(t *testing.T) {
	reg := topology.Figure1World()
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Resolve(context.Background(), "www.cs.cornell.edu", dnswire.TypeA)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if res.AuthZone != "cs.cornell.edu" {
		t.Errorf("auth zone = %q", res.AuthZone)
	}
	if len(res.Addrs) != 1 {
		t.Errorf("addresses = %v", res.Addrs)
	}
}

func TestResolveLameServerFallback(t *testing.T) {
	reg := topology.FBIWorld()
	// Knock out one fbi.gov server; resolution must still succeed via the
	// other.
	if err := reg.SetLame("dns.sprintip.com", true); err != nil {
		t.Fatal(err)
	}
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Resolve(context.Background(), "www.fbi.gov", dnswire.TypeA)
	if err != nil {
		t.Fatalf("Resolve with one lame server: %v", err)
	}
	sawFailure := false
	for _, step := range res.Trace {
		if step.Kind == resolver.StepFailure {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Error("trace should record the failed server contact")
	}
}

func TestResolveAllServersLame(t *testing.T) {
	reg := topology.FBIWorld()
	for _, h := range []string{"dns.sprintip.com", "dns2.sprintip.com"} {
		if err := reg.SetLame(h, true); err != nil {
			t.Fatal(err)
		}
	}
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(context.Background(), "www.fbi.gov", dnswire.TypeA); err == nil {
		t.Error("resolution should fail when every zone server is down")
	}
}

func TestResolveContextCancelled(t *testing.T) {
	_, r := fbiResolver(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Resolve(ctx, "www.fbi.gov", dnswire.TypeA); err == nil {
		t.Error("cancelled context must abort resolution")
	}
}

func TestNewRequiresRoots(t *testing.T) {
	if _, err := resolver.New(nil, resolver.Config{}); err == nil {
		t.Error("New without roots must fail")
	}
}

func TestStepKindString(t *testing.T) {
	kinds := map[resolver.StepKind]string{
		resolver.StepReferral: "referral",
		resolver.StepAnswer:   "answer",
		resolver.StepCNAME:    "cname",
		resolver.StepFailure:  "failure",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("StepKind(%d) = %q, want %q", k, k.String(), want)
		}
	}
}
