package resolver

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"dnstrust/internal/dnswire"
)

// Query-memo persistence: the walker's (name, qtype) memo — the layer
// that makes every logical query cross the transport exactly once — can
// be serialized to disk and reloaded into a fresh walker, so an
// interrupted large crawl resumes without re-asking questions it already
// answered. Only completed, successful answers are persisted: failures
// and in-flight entries must be retried by the resumed crawl.
//
// Format (little-endian): the magic header, then one record per entry:
//
//	uint16 nameLen | name bytes | uint16 qtype | uint32 msgLen | packed DNS message
var memoMagic = []byte("DNSQMEMO1\n")

// SaveMemo writes every completed, successful memo entry to dst and
// returns how many records were written. Call it only when no walks are
// in flight (after the crawl's workers have stopped).
//
// Output is deterministic: records are sorted by (name, qtype) and
// response IDs are normalized to zero before packing (a live crawl's
// dnsclient stamps random IDs), so two crawls of the same corpus over
// the same world serialize byte-identically — memo files double as
// diffable, replayable query logs (transport.Log loads them).
func (w *Walker) SaveMemo(dst io.Writer) (int, error) {
	type rec struct {
		key  queryKey
		resp *dnswire.Message
	}
	var recs []rec
	for i := range w.qmemo {
		qs := &w.qmemo[i]
		qs.mu.Lock()
		for key, e := range qs.m {
			select {
			case <-e.done:
			default:
				continue // still in flight: not resumable state
			}
			if e.err != nil || e.resp == nil {
				continue
			}
			recs = append(recs, rec{key: key, resp: e.resp})
		}
		qs.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].key.name != recs[j].key.name {
			return recs[i].key.name < recs[j].key.name
		}
		return recs[i].key.qtype < recs[j].key.qtype
	})

	bw := bufio.NewWriter(dst)
	if _, err := bw.Write(memoMagic); err != nil {
		return 0, err
	}
	n := 0
	var hdr [8]byte
	for _, r := range recs {
		// Shallow-copy to zero the ID without touching the shared,
		// possibly still-referenced memo entry.
		norm := *r.resp
		norm.ID = 0
		msg, err := norm.Pack()
		if err != nil {
			// An unpackable answer (synthetic transports can carry
			// them) is simply not persisted; the resumed crawl re-asks.
			continue
		}
		if len(r.key.name) > 0xffff {
			continue
		}
		binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(r.key.name)))
		if _, err := bw.Write(hdr[0:2]); err != nil {
			return n, err
		}
		if _, err := bw.WriteString(r.key.name); err != nil {
			return n, err
		}
		binary.LittleEndian.PutUint16(hdr[0:2], uint16(r.key.qtype))
		binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(msg)))
		if _, err := bw.Write(hdr[0:6]); err != nil {
			return n, err
		}
		if _, err := bw.Write(msg); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// LoadMemo reads records written by SaveMemo from src and installs them
// as completed memo entries, returning how many were loaded. Entries
// already present (loaded or queried earlier) are kept, not overwritten.
// Call it before the first walk.
func (w *Walker) LoadMemo(src io.Reader) (int, error) {
	br := bufio.NewReader(src)
	magic := make([]byte, len(memoMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("resolver: memo header: %w", err)
	}
	if string(magic) != string(memoMagic) {
		return 0, fmt.Errorf("resolver: not a query-memo file")
	}
	loaded := 0
	var hdr [6]byte
	for {
		if _, err := io.ReadFull(br, hdr[0:2]); err != nil {
			if err == io.EOF {
				return loaded, nil
			}
			return loaded, fmt.Errorf("resolver: memo record: %w", err)
		}
		nameLen := binary.LittleEndian.Uint16(hdr[0:2])
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return loaded, fmt.Errorf("resolver: memo record: %w", err)
		}
		if _, err := io.ReadFull(br, hdr[0:6]); err != nil {
			return loaded, fmt.Errorf("resolver: memo record: %w", err)
		}
		qtype := dnswire.Type(binary.LittleEndian.Uint16(hdr[0:2]))
		msgLen := binary.LittleEndian.Uint32(hdr[2:6])
		// Packed DNS messages top out at the 16-bit TCP length; anything
		// larger is corruption — reject before trusting it as an
		// allocation size.
		if msgLen > 0xffff {
			return loaded, fmt.Errorf("resolver: memo message for %q: implausible length %d", name, msgLen)
		}
		msg := make([]byte, msgLen)
		if _, err := io.ReadFull(br, msg); err != nil {
			return loaded, fmt.Errorf("resolver: memo record: %w", err)
		}
		resp, err := dnswire.Unpack(msg)
		if err != nil {
			return loaded, fmt.Errorf("resolver: memo message for %q: %w", name, err)
		}
		key := queryKey{name: string(name), qtype: qtype}
		qs := &w.qmemo[fnv1a(key.name)&(numShards-1)]
		done := make(chan struct{})
		close(done)
		qs.mu.Lock()
		if _, ok := qs.m[key]; !ok {
			qs.m[key] = &queryEntry{done: done, resp: resp}
			loaded++
		}
		qs.mu.Unlock()
	}
}
