package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync/atomic"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/transport"
)

// ZoneInfo is what the walker learns about one zone from the delegation
// chain: its apex, its parent zone, and the nameserver hosts the parent
// referral (or the zone's own apex NS set) lists — the paper's "physical
// delegation chain".
type ZoneInfo struct {
	// Apex is the canonical zone apex ("" for the root).
	Apex string
	// Parent is the apex of the delegating zone.
	Parent string
	// NSHosts are the zone's nameserver host names, sorted.
	NSHosts []string
}

// Snapshot is the walker's accumulated view of the DNS dependency
// structure: every zone discovered, and the delegation chain of every
// surveyed name and every nameserver host. It is the input to the
// delegation-graph analyses in internal/core.
type Snapshot struct {
	// Zones maps zone apex to its delegation information.
	Zones map[string]*ZoneInfo
	// NameChain maps a surveyed name to the apexes of the zones on its
	// delegation chain, shallowest (TLD) first, root excluded.
	NameChain map[string][]string
	// HostChain maps a nameserver host name to the zone chain of its
	// address resolution, same shape as NameChain.
	HostChain map[string][]string
	// Failed maps names that could not be resolved to their error.
	Failed map[string]error
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Zones:     make(map[string]*ZoneInfo),
		NameChain: make(map[string][]string),
		HostChain: make(map[string][]string),
		Failed:    make(map[string]error),
	}
}

// Hosts returns every nameserver host mentioned by any discovered zone
// except the root, sorted. This is the survey's "nameservers discovered"
// set (the paper excludes root servers throughout).
func (s *Snapshot) Hosts() []string {
	seen := map[string]bool{}
	for apex, zi := range s.Zones {
		if apex == "" {
			continue
		}
		for _, h := range zi.NSHosts {
			seen[h] = true
		}
	}
	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes a walker's work: how much crossed the transport and
// how much was absorbed by the memo and single-flight layers.
type Stats struct {
	// Queries is the number of transport queries issued.
	Queries int64
	// MemoHits counts queries answered from the query memo (including
	// waits on another worker's in-flight query) without touching the
	// transport.
	MemoHits int64
	// SharedWalks counts chain/address walks that attached to another
	// worker's in-flight walk instead of duplicating it.
	SharedWalks int64
	// InlineWalks counts walks computed inline because waiting on the
	// in-flight owner would have deadlocked (mutual glue-less
	// dependencies); these are correctness fallbacks, not duplicated
	// transport work — queries stay deduplicated by the memo.
	InlineWalks int64
}

// WalkObserver receives walker discovery events as they stream in, so a
// consumer (the crawl's graph assembler) can absorb the dependency
// structure incrementally instead of extracting a full Snapshot at the
// end. Callbacks fire exactly once per zone/chain, from whichever walk
// goroutine made the discovery, and crucially *before* the discovery
// becomes visible to any other walk goroutine: an implementation that
// forwards events into one FIFO channel therefore observes every zone
// before any chain that traverses it, and every chain before any walk
// result that depends on it.
//
// Callbacks run while a cache shard lock is held; they must not call back
// into the Walker and should hand off quickly (a channel send to a
// dedicated consumer is the intended shape). The slices passed are shared
// with the walker's caches and must not be modified.
type WalkObserver interface {
	// ZoneDiscovered reports a newly discovered zone cut.
	ZoneDiscovered(apex, parent string, nsHosts []string)
	// ChainResolved reports the first-resolved zone chain of a key: a
	// nameserver host, or a surveyed name (both flow through the chain
	// cache; consumers that care tell them apart by which keys later
	// appear as NS hosts).
	ChainResolved(key string, chain []string)
}

// Walker performs exhaustive dependency walks with global memoization:
// each zone cut is discovered once, each nameserver host's address chain
// is walked once, no matter how many surveyed names share them. It
// discovers zone cuts label by label with NS queries, so cuts hidden by
// shared parent/child servers (where no referral is ever emitted) are
// still found — the same methodology the survey's crawler used.
//
// A Walker is safe for concurrent use and built for it: discovery state
// is sharded by key so parallel walks contend only within a namespace
// slice, whole-zone/host walks deduplicate through per-key single-flight
// (see flightGroup), and every logical query is memoized so it crosses
// the transport exactly once regardless of worker count or schedule.
type Walker struct {
	r *Resolver

	shards  [numShards]cacheShard
	qmemo   [numShards]queryShard
	flights *flightGroup
	obs     WalkObserver

	// nextOwner allocates walk identities for deadlock detection.
	nextOwner atomic.Int64

	queries     atomic.Int64
	memoHits    atomic.Int64
	sharedWalks atomic.Int64
	inlineWalks atomic.Int64
}

// NewWalker creates a Walker over r. The root servers from r's config are
// pre-seeded as the root zone.
func NewWalker(r *Resolver) *Walker {
	w := &Walker{r: r, flights: newFlightGroup()}
	for i := range w.shards {
		w.shards[i].init()
	}
	for i := range w.qmemo {
		w.qmemo[i].m = make(map[queryKey]*queryEntry)
	}
	rootHosts := make([]string, 0, len(r.cfg.Roots))
	for _, s := range r.cfg.Roots {
		rootHosts = append(rootHosts, s.Host)
	}
	sort.Strings(rootHosts)
	rootShard := w.shardOf("")
	rootShard.zones[""] = &ZoneInfo{Apex: "", Parent: "", NSHosts: rootHosts}
	rootShard.servers[""] = append([]ServerAddr(nil), r.cfg.Roots...)
	return w
}

// SetObserver installs the discovery event sink. It must be called
// before the first walk and at most once; events for the pre-seeded root
// zone are not replayed (the root is excluded from the dependency graph
// throughout the paper).
func (w *Walker) SetObserver(obs WalkObserver) { w.obs = obs }

// Queries reports how many transport queries the walker has issued.
func (w *Walker) Queries() int { return int(w.queries.Load()) }

// ForgetFailures evicts every memoized failure — errored query-memo
// entries and cached host walk errors — while keeping all successful
// discoveries. It is the longitudinal counterpart of the memo's
// exactly-once guarantee: within one batch a failed question is asked
// exactly once, but a resident session that monitors drift must re-ask
// it on the next batch, or a dependency that was lame yesterday (and
// answers today) stays invisible forever. The crawl engine calls it at
// each generation boundary; re-adding a fully successful corpus still
// crosses the transport zero times, because only failures are evicted.
// In-flight entries are left alone (their walk owns them). It returns
// the number of evicted failures.
func (w *Walker) ForgetFailures() int {
	n := 0
	for i := range w.qmemo {
		qs := &w.qmemo[i]
		qs.mu.Lock()
		for key, e := range qs.m {
			select {
			case <-e.done:
				if e.err != nil {
					delete(qs.m, key)
					n++
				}
			default:
			}
		}
		qs.mu.Unlock()
	}
	for i := range w.shards {
		s := &w.shards[i]
		s.mu.Lock()
		n += len(s.hostErr)
		clear(s.hostErr)
		s.mu.Unlock()
	}
	return n
}

// ReleaseQueryMemo drops the (name, qtype) query memo, freeing the
// cached response messages — O(total queries) of memory a finished crawl
// no longer needs. Call it only once all walks are done (and after
// SaveMemo, if persisting): later walks would re-query the transport.
// The discovery caches (zones, chains, addresses) are unaffected.
func (w *Walker) ReleaseQueryMemo() {
	for i := range w.qmemo {
		qs := &w.qmemo[i]
		qs.mu.Lock()
		qs.m = make(map[queryKey]*queryEntry)
		qs.mu.Unlock()
	}
}

// Stats reports the walker's cumulative work counters.
func (w *Walker) Stats() Stats {
	return Stats{
		Queries:     w.queries.Load(),
		MemoHits:    w.memoHits.Load(),
		SharedWalks: w.sharedWalks.Load(),
		InlineWalks: w.inlineWalks.Load(),
	}
}

// --- sharded cache accessors ---

func (w *Walker) shardOf(key string) *cacheShard {
	return &w.shards[fnv1a(key)&(numShards-1)]
}

func (w *Walker) cachedChain(name string) ([]string, bool) {
	s := w.shardOf(name)
	s.mu.RLock()
	chain, ok := s.chains[name]
	s.mu.RUnlock()
	return chain, ok
}

func (w *Walker) storeChain(name string, chain []string) {
	s := w.shardOf(name)
	s.mu.Lock()
	if _, ok := s.chains[name]; !ok {
		s.chains[name] = chain
		// Emitted under the shard lock so the event is enqueued before
		// any other goroutine can read the chain from the cache — the
		// ordering guarantee WalkObserver documents.
		if w.obs != nil {
			w.obs.ChainResolved(name, chain)
		}
	}
	s.mu.Unlock()
}

func (w *Walker) zoneInfo(apex string) *ZoneInfo {
	s := w.shardOf(apex)
	s.mu.RLock()
	zi := s.zones[apex]
	s.mu.RUnlock()
	return zi
}

// recordZone stores a newly discovered cut (first discovery wins).
func (w *Walker) recordZone(parent, child string, hosts []string) {
	s := w.shardOf(child)
	s.mu.Lock()
	if _, known := s.zones[child]; !known {
		s.zones[child] = &ZoneInfo{Apex: child, Parent: parent, NSHosts: hosts}
		// Emitted under the shard lock: the zone event is enqueued
		// before any goroutine can observe the zone and walk its hosts.
		if w.obs != nil {
			w.obs.ZoneDiscovered(child, parent, hosts)
		}
	}
	s.mu.Unlock()
}

// cachedServers returns the cached usable servers of apex, if any.
func (w *Walker) cachedServers(apex string) []ServerAddr {
	s := w.shardOf(apex)
	s.mu.RLock()
	srv := s.servers[apex]
	s.mu.RUnlock()
	return srv
}

// storeServers caches the usable servers of apex (first store wins).
func (w *Walker) storeServers(apex string, servers []ServerAddr) {
	s := w.shardOf(apex)
	s.mu.Lock()
	if len(s.servers[apex]) == 0 && len(servers) > 0 {
		s.servers[apex] = servers
	}
	s.mu.Unlock()
}

func (w *Walker) cachedAddrs(host string) ([]netip.Addr, bool) {
	s := w.shardOf(host)
	s.mu.RLock()
	addrs, ok := s.addrs[host]
	s.mu.RUnlock()
	return addrs, ok
}

func (w *Walker) storeAddrs(host string, addrs []netip.Addr) {
	s := w.shardOf(host)
	s.mu.Lock()
	if _, ok := s.addrs[host]; !ok {
		s.addrs[host] = addrs
	}
	s.mu.Unlock()
}

func (w *Walker) cachedHostErr(host string) (error, bool) {
	s := w.shardOf(host)
	s.mu.RLock()
	err, ok := s.hostErr[host]
	s.mu.RUnlock()
	return err, ok
}

func (w *Walker) storeHostErr(host string, err error) {
	s := w.shardOf(host)
	s.mu.Lock()
	if _, ok := s.hostErr[host]; !ok {
		s.hostErr[host] = err
	}
	s.mu.Unlock()
}

// isCtxErr reports whether err is (or wraps) a context cancellation.
// Cancellation is never cached and never shared across walks: a result
// poisoned by one walk's deadline must not fail a concurrent walk whose
// context is still live.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// walkCtx carries one walk's identity (for cross-goroutine deadlock
// detection) and its recursion stack (for glue-less cycle detection).
type walkCtx struct {
	owner    int64
	visiting visitSet
}

func (w *Walker) newWalkCtx() *walkCtx {
	return &walkCtx{owner: w.nextOwner.Add(1), visiting: newVisitSet()}
}

// WalkName discovers the complete dependency structure of name: its own
// delegation chain plus, transitively, the chains of every nameserver
// host involved. Results accumulate in the walker's caches; use Snapshot
// to extract them. It returns the name's own zone chain.
func (w *Walker) WalkName(ctx context.Context, name string) ([]string, error) {
	name = dnsname.Canonical(name)
	wc := w.newWalkCtx()
	chain, err := w.chainOf(ctx, name, wc)
	if err != nil {
		return nil, err
	}
	if err := w.walkHosts(ctx, chain, wc); err != nil {
		return chain, err
	}
	return chain, nil
}

// walkHosts walks the address chains of all NS hosts of the given zones,
// then of the zones those chains reveal, until closure.
func (w *Walker) walkHosts(ctx context.Context, seedZones []string, wc *walkCtx) error {
	pending := append([]string(nil), seedZones...)
	seenZone := map[string]bool{}
	seenHost := map[string]bool{}
	for len(pending) > 0 {
		apex := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		if seenZone[apex] || apex == "" {
			continue
		}
		seenZone[apex] = true
		zi := w.zoneInfo(apex)
		if zi == nil {
			continue
		}
		for _, host := range zi.NSHosts {
			if seenHost[host] {
				continue
			}
			seenHost[host] = true
			chain, err := w.chainOf(ctx, host, wc)
			if err != nil {
				if isCtxErr(err) {
					// The crawl is being torn down, not a lame host:
					// never record cancellation as a host failure.
					return err
				}
				// A lame nameserver host: record and continue. The zone is
				// still served by its other servers.
				w.storeHostErr(host, err)
				continue
			}
			pending = append(pending, chain...)
		}
	}
	return ctx.Err()
}

// visitSet tracks the hosts on the current recursion stack to detect
// glue-less resolution cycles; it is per-walk, not global, so concurrent
// walks do not interfere.
type visitSet map[string]bool

func newVisitSet() visitSet { return make(visitSet) }

// chainOf returns the zone chain of name (TLD-first, root excluded),
// walking the delegation tree under per-name single-flight: concurrent
// walks of the same undiscovered name block on one in-flight computation.
func (w *Walker) chainOf(ctx context.Context, name string, wc *walkCtx) ([]string, error) {
	if chain, ok := w.cachedChain(name); ok {
		return chain, nil
	}
	v, shared, err := w.flights.do(ctx, wc.owner, "chain\x00"+name, func() (any, error) {
		return w.computeChain(ctx, name, wc)
	})
	if errors.Is(err, errWouldCycle) {
		w.inlineWalks.Add(1)
		return w.computeChain(ctx, name, wc)
	}
	if shared && err != nil && isCtxErr(err) && ctx.Err() == nil {
		// The flight's owner was cancelled, not us: recompute with our
		// live context (cancelled results are never cached).
		return w.computeChain(ctx, name, wc)
	}
	if err != nil {
		return nil, err
	}
	if shared {
		w.sharedWalks.Add(1)
	}
	return v.([]string), nil
}

func (w *Walker) computeChain(ctx context.Context, name string, wc *walkCtx) ([]string, error) {
	if chain, ok := w.cachedChain(name); ok {
		return chain, nil
	}
	az, _, err := w.descendToZone(ctx, name, wc)
	if err != nil {
		return nil, err
	}
	chain := w.reconstructChain(az)
	w.storeChain(name, chain)
	return chain, nil
}

// reconstructChain follows parent pointers from apex to the root and
// returns the chain TLD-first with the root excluded.
func (w *Walker) reconstructChain(apex string) []string {
	var rev []string
	for apex != "" {
		rev = append(rev, apex)
		zi := w.zoneInfo(apex)
		if zi == nil {
			break
		}
		apex = zi.Parent
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// descendToZone walks label by label from the deepest cached zone down to
// the zone authoritative for name, discovering every zone cut on the way.
// At each ancestor it issues an NS query:
//
//   - a referral reveals a classic cut (and carries glue);
//   - an authoritative NS answer reveals a cut hosted on servers shared
//     with the parent (no referral is ever seen for these);
//   - authoritative NODATA means the label is interior to the zone;
//   - NXDOMAIN means the name does not exist.
//
// It returns the authoritative zone's apex and usable servers.
func (w *Walker) descendToZone(ctx context.Context, name string, wc *walkCtx) (string, []ServerAddr, error) {
	apex, servers := w.deepestKnown(name)
	if len(servers) == 0 {
		return apex, nil, ErrNoServers
	}
	// Candidate cut points: ancestors of name strictly deeper than apex,
	// shallowest first.
	all := dnsname.Ancestors(name) // deepest first
	var candidates []string
	for i := len(all) - 1; i >= 0; i-- {
		anc := all[i]
		if anc != apex && dnsname.IsSubdomain(anc, apex) {
			candidates = append(candidates, anc)
		}
	}
	for _, anc := range candidates {
		if err := ctx.Err(); err != nil {
			return apex, nil, err
		}
		if !dnsname.IsSubdomain(anc, apex) {
			continue // a referral jumped past this candidate
		}
		resp, err := w.queryAny(ctx, apex, servers, anc, dnswire.TypeNS)
		if err != nil {
			return apex, nil, fmt.Errorf("zone %q: %w", apex, err)
		}
		switch {
		case resp.RCode == dnswire.RCodeNXDomain:
			return apex, nil, ErrNXDomain
		case resp.RCode != dnswire.RCodeSuccess:
			return apex, nil, fmt.Errorf("resolver: %v for %q", resp.RCode, anc)
		case len(resp.Answers) > 0:
			hosts := nsHosts(resp.Answers)
			if len(hosts) == 0 {
				// An answer without NS data (e.g. a CNAME): terminal.
				return apex, servers, nil
			}
			next, err := w.enterZoneAnswer(ctx, apex, anc, hosts, servers, wc)
			if err != nil {
				return apex, nil, err
			}
			apex, servers = anc, next
		case resp.Authoritative:
			// NODATA: anc exists inside the current zone; not a cut.
			continue
		case len(resp.Authority) > 0:
			child := dnsname.Canonical(resp.Authority[0].Name)
			if child == apex || !dnsname.IsSubdomain(child, apex) || !dnsname.IsSubdomain(name, child) {
				return apex, nil, fmt.Errorf("resolver: bogus referral %q from zone %q", child, apex)
			}
			next, err := w.enterZoneReferral(ctx, apex, child, resp, wc)
			if err != nil {
				return apex, nil, err
			}
			apex, servers = child, next
		default:
			return apex, nil, fmt.Errorf("%w: empty response for %q from zone %q", ErrLameDelegation, anc, apex)
		}
	}
	return apex, servers, nil
}

func nsHosts(rrs []dnswire.RR) []string {
	var hosts []string
	for _, rr := range rrs {
		if ns, ok := rr.Data.(dnswire.NS); ok {
			hosts = append(hosts, dnsname.Canonical(ns.Host))
		}
	}
	sort.Strings(hosts)
	return hosts
}

// deepestKnown returns the deepest cached zone that is an ancestor of
// name along with its usable servers. The root is always known.
func (w *Walker) deepestKnown(name string) (string, []ServerAddr) {
	apex := name
	for {
		if srv := w.cachedServers(apex); len(srv) > 0 {
			return apex, append([]ServerAddr(nil), srv...)
		}
		if apex == "" {
			return "", append([]ServerAddr(nil), w.cachedServers("")...)
		}
		p, _ := dnsname.Parent(apex)
		apex = p
	}
}

// enterZoneReferral enters a cut revealed by a referral: harvest glue,
// resolve glue-less server addresses recursively.
func (w *Walker) enterZoneReferral(ctx context.Context, parent, child string, resp *dnswire.Message, wc *walkCtx) ([]ServerAddr, error) {
	hosts := nsHosts(resp.Authority)
	glue := map[string][]netip.Addr{}
	for _, rr := range resp.Additional {
		owner := dnsname.Canonical(rr.Name)
		switch d := rr.Data.(type) {
		case dnswire.A:
			glue[owner] = append(glue[owner], d.Addr)
		case dnswire.AAAA:
			glue[owner] = append(glue[owner], d.Addr)
		}
	}
	w.recordZone(parent, child, hosts)
	if cached := w.cachedServers(child); len(cached) > 0 {
		return cached, nil
	}

	var out []ServerAddr
	var lastErr error
	for _, host := range hosts {
		if addrs, ok := glue[host]; ok && len(addrs) > 0 {
			// Glue bootstraps this referral's server list only; it is not
			// authoritative, so it never enters the global address cache.
			// (That also keeps the transport query set schedule-invariant:
			// whether a host needs an authoritative A query can never
			// depend on which walk harvested glue first.)
			out = append(out, ServerAddr{Host: host, Addr: addrs[0]})
			continue
		}
		addrs, err := w.resolveHostAddr(ctx, host, wc)
		if err != nil {
			lastErr = err
			continue
		}
		if len(addrs) > 0 {
			out = append(out, ServerAddr{Host: host, Addr: addrs[0]})
		}
	}
	if len(out) == 0 {
		if lastErr == nil {
			lastErr = ErrNoServers
		}
		return nil, fmt.Errorf("%w: zone %q unreachable: %w", ErrLameDelegation, child, lastErr)
	}
	w.storeServers(child, out)
	return out, nil
}

// enterZoneAnswer enters a cut revealed by an authoritative NS answer
// (parent and child share servers, so no referral exists). In-bailiwick
// server addresses are fetched from the answering servers themselves —
// they are authoritative for the child; out-of-bailiwick hosts resolve
// through their own chains.
func (w *Walker) enterZoneAnswer(ctx context.Context, parent, child string, hosts []string, parentServers []ServerAddr, wc *walkCtx) ([]ServerAddr, error) {
	w.recordZone(parent, child, hosts)
	if cached := w.cachedServers(child); len(cached) > 0 {
		return cached, nil
	}
	var out []ServerAddr
	var lastErr error
	for _, host := range hosts {
		if cached, ok := w.cachedAddrs(host); ok && len(cached) > 0 {
			out = append(out, ServerAddr{Host: host, Addr: cached[0]})
			continue
		}
		if dnsname.IsSubdomain(host, child) {
			addrs, err := w.queryAddr(ctx, parent, parentServers, host)
			if err != nil {
				lastErr = err
				continue
			}
			w.storeAddrs(host, addrs)
			out = append(out, ServerAddr{Host: host, Addr: addrs[0]})
			continue
		}
		addrs, err := w.resolveHostAddr(ctx, host, wc)
		if err != nil {
			lastErr = err
			continue
		}
		if len(addrs) > 0 {
			out = append(out, ServerAddr{Host: host, Addr: addrs[0]})
		}
	}
	if len(out) == 0 {
		if lastErr == nil {
			lastErr = ErrNoServers
		}
		return nil, fmt.Errorf("%w: zone %q unreachable: %w", ErrLameDelegation, child, lastErr)
	}
	w.storeServers(child, out)
	return out, nil
}

// queryAddr fetches A records for host from the given servers, which act
// for the given zone apex (its rate etiquette applies).
func (w *Walker) queryAddr(ctx context.Context, zone string, servers []ServerAddr, host string) ([]netip.Addr, error) {
	resp, err := w.queryAny(ctx, zone, servers, host, dnswire.TypeA)
	if err != nil {
		return nil, err
	}
	if resp.RCode != dnswire.RCodeSuccess {
		return nil, fmt.Errorf("resolver: %v resolving %q", resp.RCode, host)
	}
	var addrs []netip.Addr
	for _, rr := range resp.Answers {
		if a, ok := rr.Data.(dnswire.A); ok {
			addrs = append(addrs, a.Addr)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: host %q has no address", ErrLameDelegation, host)
	}
	return addrs, nil
}

// resolveHostAddr resolves a nameserver host's address through its own
// delegation chain under per-host single-flight, guarding against
// glue-less cycles.
func (w *Walker) resolveHostAddr(ctx context.Context, host string, wc *walkCtx) ([]netip.Addr, error) {
	if addrs, ok := w.cachedAddrs(host); ok {
		return addrs, nil
	}
	if err, ok := w.cachedHostErr(host); ok {
		return nil, err
	}
	if wc.visiting[host] {
		return nil, fmt.Errorf("%w: glue-less cycle through %q", ErrLameDelegation, host)
	}
	v, shared, err := w.flights.do(ctx, wc.owner, "addr\x00"+host, func() (any, error) {
		return w.computeHostAddr(ctx, host, wc)
	})
	if errors.Is(err, errWouldCycle) {
		w.inlineWalks.Add(1)
		return w.computeHostAddr(ctx, host, wc)
	}
	if shared && err != nil && isCtxErr(err) && ctx.Err() == nil {
		// The flight's owner was cancelled, not us: recompute with our
		// live context (cancelled results are never cached).
		return w.computeHostAddr(ctx, host, wc)
	}
	if err != nil {
		return nil, err
	}
	if shared {
		w.sharedWalks.Add(1)
	}
	return v.([]netip.Addr), nil
}

func (w *Walker) computeHostAddr(ctx context.Context, host string, wc *walkCtx) ([]netip.Addr, error) {
	if addrs, ok := w.cachedAddrs(host); ok {
		return addrs, nil
	}
	wc.visiting[host] = true
	defer delete(wc.visiting, host)

	az, servers, err := w.descendToZone(ctx, host, wc)
	if err != nil {
		return nil, err
	}
	addrs, err := w.queryAddr(ctx, az, servers, host)
	if err != nil {
		return nil, err
	}
	chain := w.reconstructChain(az)
	w.storeAddrs(host, addrs)
	w.storeChain(host, chain)
	return addrs, nil
}

// queryAny answers (name, qtype) through the query memo: the first
// caller performs the real server round-robin, concurrent callers block
// on that in-flight attempt, and later callers are served from memory.
// Every logical query therefore crosses the transport exactly once per
// walker, making total transport work independent of worker count. zone
// is the apex the servers act for; its rate etiquette paces the attempt.
func (w *Walker) queryAny(ctx context.Context, zone string, servers []ServerAddr, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	key := queryKey{name: name, qtype: qtype}
	qs := &w.qmemo[fnv1a(name)&(numShards-1)]
	qs.mu.Lock()
	if e, ok := qs.m[key]; ok {
		qs.mu.Unlock()
		select {
		case <-e.done:
			if e.err != nil && isCtxErr(e.err) && ctx.Err() == nil {
				// The in-flight owner was cancelled, not us; its entry
				// was removed before done closed, so retry fresh.
				return w.queryAny(ctx, zone, servers, name, qtype)
			}
			w.memoHits.Add(1)
			return e.resp, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &queryEntry{done: make(chan struct{})}
	qs.m[key] = e
	qs.mu.Unlock()

	e.resp, e.err = w.dispatch(ctx, zone, servers, name, qtype)
	if e.err != nil && isCtxErr(e.err) {
		// Never memoize cancellation: a later walk with a live context
		// must be able to retry.
		qs.mu.Lock()
		delete(qs.m, key)
		qs.mu.Unlock()
	}
	close(e.done)
	return e.resp, e.err
}

// dispatch tries servers in order until one gives a usable response,
// stopping once the retry budget is spent. Pacing is no longer its
// concern: each attempt carries the queried zone as a context tag, and
// the transport.RateLimit middleware (installed by resolver.New when the
// config enables pacing, or composed into any custom source chain)
// paces the attempt at that zone's etiquette.
func (w *Walker) dispatch(ctx context.Context, zone string, servers []ServerAddr, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	qctx := transport.WithZone(ctx, zone)
	var lastErr error = ErrNoServers
	for attempt, srv := range servers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if w.r.cfg.RetryBudget > 0 && attempt >= w.r.cfg.RetryBudget {
			// Double-%w keeps lastErr in the chain: a wrapped context
			// cancellation must stay visible to isCtxErr so it is never
			// memoized as a permanent failure.
			return nil, fmt.Errorf("%w after %d attempts: %w", ErrRetryBudget, attempt, lastErr)
		}
		w.queries.Add(1)
		resp, err := w.r.tr.Query(qctx, srv.Addr, name, qtype, dnswire.ClassINET)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.RCode == dnswire.RCodeRefused || resp.RCode == dnswire.RCodeServFail {
			lastErr = fmt.Errorf("resolver: %v from %s", resp.RCode, srv.Host)
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// Snapshot extracts the accumulated dependency structure from the
// sharded caches. nameChains maps each surveyed name to its chain
// (collected from WalkName calls); failed maps names whose walk failed.
func (w *Walker) Snapshot(nameChains map[string][]string, failed map[string]error) *Snapshot {
	s := NewSnapshot()
	for i := range w.shards {
		sh := &w.shards[i]
		sh.mu.RLock()
		for apex, zi := range sh.zones {
			cp := *zi
			cp.NSHosts = append([]string(nil), zi.NSHosts...)
			s.Zones[apex] = &cp
		}
		for host, chain := range sh.chains {
			s.HostChain[host] = append([]string(nil), chain...)
		}
		for host, err := range sh.hostErr {
			s.Failed[host] = err
		}
		sh.mu.RUnlock()
	}
	for name, chain := range nameChains {
		s.NameChain[name] = append([]string(nil), chain...)
	}
	for name, err := range failed {
		s.Failed[name] = err
	}
	return s
}
