package resolver

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
)

// ZoneInfo is what the walker learns about one zone from the delegation
// chain: its apex, its parent zone, and the nameserver hosts the parent
// referral (or the zone's own apex NS set) lists — the paper's "physical
// delegation chain".
type ZoneInfo struct {
	// Apex is the canonical zone apex ("" for the root).
	Apex string
	// Parent is the apex of the delegating zone.
	Parent string
	// NSHosts are the zone's nameserver host names, sorted.
	NSHosts []string
}

// Snapshot is the walker's accumulated view of the DNS dependency
// structure: every zone discovered, and the delegation chain of every
// surveyed name and every nameserver host. It is the input to the
// delegation-graph analyses in internal/core.
type Snapshot struct {
	// Zones maps zone apex to its delegation information.
	Zones map[string]*ZoneInfo
	// NameChain maps a surveyed name to the apexes of the zones on its
	// delegation chain, shallowest (TLD) first, root excluded.
	NameChain map[string][]string
	// HostChain maps a nameserver host name to the zone chain of its
	// address resolution, same shape as NameChain.
	HostChain map[string][]string
	// Failed maps names that could not be resolved to their error.
	Failed map[string]error
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Zones:     make(map[string]*ZoneInfo),
		NameChain: make(map[string][]string),
		HostChain: make(map[string][]string),
		Failed:    make(map[string]error),
	}
}

// Hosts returns every nameserver host mentioned by any discovered zone
// except the root, sorted. This is the survey's "nameservers discovered"
// set (the paper excludes root servers throughout).
func (s *Snapshot) Hosts() []string {
	seen := map[string]bool{}
	for apex, zi := range s.Zones {
		if apex == "" {
			continue
		}
		for _, h := range zi.NSHosts {
			seen[h] = true
		}
	}
	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Walker performs exhaustive dependency walks with global memoization:
// each zone cut is discovered once, each nameserver host's address chain
// is walked once, no matter how many surveyed names share them. It
// discovers zone cuts label by label with NS queries, so cuts hidden by
// shared parent/child servers (where no referral is ever emitted) are
// still found — the same methodology the survey's crawler used. A Walker
// is safe for concurrent use.
type Walker struct {
	r *Resolver

	mu sync.RWMutex
	// zones caches discovered delegations by apex.
	zones map[string]*ZoneInfo
	// servers caches resolved, usable server addresses per zone apex.
	servers map[string][]ServerAddr
	// addrs caches resolved nameserver host addresses.
	addrs map[string][]netip.Addr
	// chains caches full zone chains per resolved name/host.
	chains map[string][]string
	// hostErr caches hosts whose address resolution failed.
	hostErr map[string]error
	// queries counts transport queries issued (for ablation benches).
	queries int
}

// NewWalker creates a Walker over r. The root servers from r's config are
// pre-seeded as the root zone.
func NewWalker(r *Resolver) *Walker {
	w := &Walker{
		r:       r,
		zones:   make(map[string]*ZoneInfo),
		servers: make(map[string][]ServerAddr),
		addrs:   make(map[string][]netip.Addr),
		chains:  make(map[string][]string),
		hostErr: make(map[string]error),
	}
	rootHosts := make([]string, 0, len(r.cfg.Roots))
	for _, s := range r.cfg.Roots {
		rootHosts = append(rootHosts, s.Host)
	}
	sort.Strings(rootHosts)
	w.zones[""] = &ZoneInfo{Apex: "", Parent: "", NSHosts: rootHosts}
	w.servers[""] = append([]ServerAddr(nil), r.cfg.Roots...)
	return w
}

// Queries reports how many transport queries the walker has issued.
func (w *Walker) Queries() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.queries
}

// WalkName discovers the complete dependency structure of name: its own
// delegation chain plus, transitively, the chains of every nameserver
// host involved. Results accumulate in the walker's caches; use Snapshot
// to extract them. It returns the name's own zone chain.
func (w *Walker) WalkName(ctx context.Context, name string) ([]string, error) {
	name = dnsname.Canonical(name)
	chain, err := w.chainOf(ctx, name, newVisitSet())
	if err != nil {
		return nil, err
	}
	if err := w.walkHosts(ctx, chain); err != nil {
		return chain, err
	}
	return chain, nil
}

// walkHosts walks the address chains of all NS hosts of the given zones,
// then of the zones those chains reveal, until closure.
func (w *Walker) walkHosts(ctx context.Context, seedZones []string) error {
	pending := append([]string(nil), seedZones...)
	seenZone := map[string]bool{}
	seenHost := map[string]bool{}
	for len(pending) > 0 {
		apex := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		if seenZone[apex] || apex == "" {
			continue
		}
		seenZone[apex] = true
		w.mu.RLock()
		zi := w.zones[apex]
		w.mu.RUnlock()
		if zi == nil {
			continue
		}
		for _, host := range zi.NSHosts {
			if seenHost[host] {
				continue
			}
			seenHost[host] = true
			chain, err := w.chainOf(ctx, host, newVisitSet())
			if err != nil {
				// A lame nameserver host: record and continue. The zone is
				// still served by its other servers.
				w.mu.Lock()
				w.hostErr[host] = err
				w.mu.Unlock()
				continue
			}
			pending = append(pending, chain...)
		}
	}
	return ctx.Err()
}

// visitSet tracks the hosts on the current recursion stack to detect
// glue-less resolution cycles; it is per-call, not global, so concurrent
// walks do not interfere.
type visitSet map[string]bool

func newVisitSet() visitSet { return make(visitSet) }

// chainOf returns the zone chain of name (TLD-first, root excluded),
// walking the delegation tree and caching every step.
func (w *Walker) chainOf(ctx context.Context, name string, visiting visitSet) ([]string, error) {
	w.mu.RLock()
	if chain, ok := w.chains[name]; ok {
		w.mu.RUnlock()
		return chain, nil
	}
	w.mu.RUnlock()

	az, _, err := w.descendToZone(ctx, name, visiting)
	if err != nil {
		return nil, err
	}
	chain := w.reconstructChain(az)
	w.mu.Lock()
	w.chains[name] = chain
	w.mu.Unlock()
	return chain, nil
}

// reconstructChain follows parent pointers from apex to the root and
// returns the chain TLD-first with the root excluded.
func (w *Walker) reconstructChain(apex string) []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var rev []string
	for apex != "" {
		rev = append(rev, apex)
		zi := w.zones[apex]
		if zi == nil {
			break
		}
		apex = zi.Parent
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// descendToZone walks label by label from the deepest cached zone down to
// the zone authoritative for name, discovering every zone cut on the way.
// At each ancestor it issues an NS query:
//
//   - a referral reveals a classic cut (and carries glue);
//   - an authoritative NS answer reveals a cut hosted on servers shared
//     with the parent (no referral is ever seen for these);
//   - authoritative NODATA means the label is interior to the zone;
//   - NXDOMAIN means the name does not exist.
//
// It returns the authoritative zone's apex and usable servers.
func (w *Walker) descendToZone(ctx context.Context, name string, visiting visitSet) (string, []ServerAddr, error) {
	apex, servers := w.deepestKnown(name)
	if len(servers) == 0 {
		return apex, nil, ErrNoServers
	}
	// Candidate cut points: ancestors of name strictly deeper than apex,
	// shallowest first.
	all := dnsname.Ancestors(name) // deepest first
	var candidates []string
	for i := len(all) - 1; i >= 0; i-- {
		anc := all[i]
		if anc != apex && dnsname.IsSubdomain(anc, apex) {
			candidates = append(candidates, anc)
		}
	}
	for _, anc := range candidates {
		if err := ctx.Err(); err != nil {
			return apex, nil, err
		}
		if !dnsname.IsSubdomain(anc, apex) {
			continue // a referral jumped past this candidate
		}
		resp, err := w.queryAny(ctx, servers, anc, dnswire.TypeNS)
		if err != nil {
			return apex, nil, fmt.Errorf("zone %q: %w", apex, err)
		}
		switch {
		case resp.RCode == dnswire.RCodeNXDomain:
			return apex, nil, ErrNXDomain
		case resp.RCode != dnswire.RCodeSuccess:
			return apex, nil, fmt.Errorf("resolver: %v for %q", resp.RCode, anc)
		case len(resp.Answers) > 0:
			hosts := nsHosts(resp.Answers)
			if len(hosts) == 0 {
				// An answer without NS data (e.g. a CNAME): terminal.
				return apex, servers, nil
			}
			next, err := w.enterZoneAnswer(ctx, apex, anc, hosts, servers, visiting)
			if err != nil {
				return apex, nil, err
			}
			apex, servers = anc, next
		case resp.Authoritative:
			// NODATA: anc exists inside the current zone; not a cut.
			continue
		case len(resp.Authority) > 0:
			child := dnsname.Canonical(resp.Authority[0].Name)
			if child == apex || !dnsname.IsSubdomain(child, apex) || !dnsname.IsSubdomain(name, child) {
				return apex, nil, fmt.Errorf("resolver: bogus referral %q from zone %q", child, apex)
			}
			next, err := w.enterZoneReferral(ctx, apex, child, resp, visiting)
			if err != nil {
				return apex, nil, err
			}
			apex, servers = child, next
		default:
			return apex, nil, fmt.Errorf("%w: empty response for %q from zone %q", ErrLameDelegation, anc, apex)
		}
	}
	return apex, servers, nil
}

func nsHosts(rrs []dnswire.RR) []string {
	var hosts []string
	for _, rr := range rrs {
		if ns, ok := rr.Data.(dnswire.NS); ok {
			hosts = append(hosts, dnsname.Canonical(ns.Host))
		}
	}
	sort.Strings(hosts)
	return hosts
}

// deepestKnown returns the deepest cached zone that is an ancestor of
// name along with its usable servers. The root is always known.
func (w *Walker) deepestKnown(name string) (string, []ServerAddr) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	apex := name
	for {
		if srv, ok := w.servers[apex]; ok && len(srv) > 0 {
			return apex, append([]ServerAddr(nil), srv...)
		}
		if apex == "" {
			return "", append([]ServerAddr(nil), w.servers[""]...)
		}
		p, _ := dnsname.Parent(apex)
		apex = p
	}
}

// recordZone stores a newly discovered cut (first discovery wins).
func (w *Walker) recordZone(parent, child string, hosts []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, known := w.zones[child]; !known {
		w.zones[child] = &ZoneInfo{Apex: child, Parent: parent, NSHosts: hosts}
	}
}

// cachedServers returns the cached usable servers of apex, if any.
func (w *Walker) cachedServers(apex string) []ServerAddr {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.servers[apex]
}

// storeServers caches the usable servers of apex (first store wins).
func (w *Walker) storeServers(apex string, servers []ServerAddr) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.servers[apex]) == 0 && len(servers) > 0 {
		w.servers[apex] = servers
	}
}

// enterZoneReferral enters a cut revealed by a referral: harvest glue,
// resolve glue-less server addresses recursively.
func (w *Walker) enterZoneReferral(ctx context.Context, parent, child string, resp *dnswire.Message, visiting visitSet) ([]ServerAddr, error) {
	hosts := nsHosts(resp.Authority)
	glue := map[string][]netip.Addr{}
	for _, rr := range resp.Additional {
		owner := dnsname.Canonical(rr.Name)
		switch d := rr.Data.(type) {
		case dnswire.A:
			glue[owner] = append(glue[owner], d.Addr)
		case dnswire.AAAA:
			glue[owner] = append(glue[owner], d.Addr)
		}
	}
	w.recordZone(parent, child, hosts)
	if cached := w.cachedServers(child); len(cached) > 0 {
		return cached, nil
	}

	var out []ServerAddr
	var lastErr error
	for _, host := range hosts {
		if addrs, ok := glue[host]; ok && len(addrs) > 0 {
			// Remember glue addresses; dependency walking still resolves
			// the host authoritatively later (glue is not authoritative).
			w.mu.Lock()
			if _, ok := w.addrs[host]; !ok {
				w.addrs[host] = addrs
			}
			w.mu.Unlock()
			out = append(out, ServerAddr{Host: host, Addr: addrs[0]})
			continue
		}
		addrs, err := w.resolveHostAddr(ctx, host, visiting)
		if err != nil {
			lastErr = err
			continue
		}
		if len(addrs) > 0 {
			out = append(out, ServerAddr{Host: host, Addr: addrs[0]})
		}
	}
	if len(out) == 0 {
		if lastErr == nil {
			lastErr = ErrNoServers
		}
		return nil, fmt.Errorf("%w: zone %q unreachable: %v", ErrLameDelegation, child, lastErr)
	}
	w.storeServers(child, out)
	return out, nil
}

// enterZoneAnswer enters a cut revealed by an authoritative NS answer
// (parent and child share servers, so no referral exists). In-bailiwick
// server addresses are fetched from the answering servers themselves —
// they are authoritative for the child; out-of-bailiwick hosts resolve
// through their own chains.
func (w *Walker) enterZoneAnswer(ctx context.Context, parent, child string, hosts []string, parentServers []ServerAddr, visiting visitSet) ([]ServerAddr, error) {
	w.recordZone(parent, child, hosts)
	if cached := w.cachedServers(child); len(cached) > 0 {
		return cached, nil
	}
	var out []ServerAddr
	var lastErr error
	for _, host := range hosts {
		w.mu.RLock()
		cached, haveAddr := w.addrs[host]
		w.mu.RUnlock()
		if haveAddr && len(cached) > 0 {
			out = append(out, ServerAddr{Host: host, Addr: cached[0]})
			continue
		}
		if dnsname.IsSubdomain(host, child) {
			addrs, err := w.queryAddr(ctx, parentServers, host)
			if err != nil {
				lastErr = err
				continue
			}
			w.mu.Lock()
			w.addrs[host] = addrs
			w.mu.Unlock()
			out = append(out, ServerAddr{Host: host, Addr: addrs[0]})
			continue
		}
		addrs, err := w.resolveHostAddr(ctx, host, visiting)
		if err != nil {
			lastErr = err
			continue
		}
		if len(addrs) > 0 {
			out = append(out, ServerAddr{Host: host, Addr: addrs[0]})
		}
	}
	if len(out) == 0 {
		if lastErr == nil {
			lastErr = ErrNoServers
		}
		return nil, fmt.Errorf("%w: zone %q unreachable: %v", ErrLameDelegation, child, lastErr)
	}
	w.storeServers(child, out)
	return out, nil
}

// queryAddr fetches A records for host from the given servers.
func (w *Walker) queryAddr(ctx context.Context, servers []ServerAddr, host string) ([]netip.Addr, error) {
	resp, err := w.queryAny(ctx, servers, host, dnswire.TypeA)
	if err != nil {
		return nil, err
	}
	if resp.RCode != dnswire.RCodeSuccess {
		return nil, fmt.Errorf("resolver: %v resolving %q", resp.RCode, host)
	}
	var addrs []netip.Addr
	for _, rr := range resp.Answers {
		if a, ok := rr.Data.(dnswire.A); ok {
			addrs = append(addrs, a.Addr)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: host %q has no address", ErrLameDelegation, host)
	}
	return addrs, nil
}

// resolveHostAddr resolves a nameserver host's address through its own
// delegation chain, guarding against glue-less cycles.
func (w *Walker) resolveHostAddr(ctx context.Context, host string, visiting visitSet) ([]netip.Addr, error) {
	w.mu.RLock()
	if addrs, ok := w.addrs[host]; ok {
		w.mu.RUnlock()
		return addrs, nil
	}
	if err, ok := w.hostErr[host]; ok {
		w.mu.RUnlock()
		return nil, err
	}
	w.mu.RUnlock()
	if visiting[host] {
		return nil, fmt.Errorf("%w: glue-less cycle through %q", ErrLameDelegation, host)
	}
	visiting[host] = true
	defer delete(visiting, host)

	az, servers, err := w.descendToZone(ctx, host, visiting)
	if err != nil {
		return nil, err
	}
	addrs, err := w.queryAddr(ctx, servers, host)
	if err != nil {
		return nil, err
	}
	chain := w.reconstructChain(az)
	w.mu.Lock()
	w.addrs[host] = addrs
	w.chains[host] = chain
	w.mu.Unlock()
	return addrs, nil
}

// queryAny tries servers in order until one gives a usable response.
func (w *Walker) queryAny(ctx context.Context, servers []ServerAddr, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	var lastErr error = ErrNoServers
	for _, srv := range servers {
		w.mu.Lock()
		w.queries++
		w.mu.Unlock()
		resp, err := w.r.tr.Query(ctx, srv.Addr, name, qtype, dnswire.ClassINET)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.RCode == dnswire.RCodeRefused || resp.RCode == dnswire.RCodeServFail {
			lastErr = fmt.Errorf("resolver: %v from %s", resp.RCode, srv.Host)
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// Snapshot extracts the accumulated dependency structure. nameChains maps
// each surveyed name to its chain (collected from WalkName calls); failed
// maps names whose walk failed.
func (w *Walker) Snapshot(nameChains map[string][]string, failed map[string]error) *Snapshot {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s := NewSnapshot()
	for apex, zi := range w.zones {
		cp := *zi
		cp.NSHosts = append([]string(nil), zi.NSHosts...)
		s.Zones[apex] = &cp
	}
	for name, chain := range nameChains {
		s.NameChain[name] = append([]string(nil), chain...)
	}
	for host, chain := range w.chains {
		s.HostChain[host] = append([]string(nil), chain...)
	}
	for name, err := range failed {
		s.Failed[name] = err
	}
	for host, err := range w.hostErr {
		s.Failed[host] = err
	}
	return s
}
