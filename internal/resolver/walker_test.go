package resolver_test

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"dnstrust/internal/resolver"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

func newWalker(t *testing.T, reg *topology.Registry) *resolver.Walker {
	t.Helper()
	r, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	return resolver.NewWalker(r)
}

func TestWalkNameChain(t *testing.T) {
	reg := topology.FBIWorld()
	w := newWalker(t, reg)
	chain, err := w.WalkName(context.Background(), "www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"gov", "fbi.gov"}
	if !reflect.DeepEqual(chain, want) {
		t.Errorf("chain = %v, want %v", chain, want)
	}
}

func TestWalkDiscoversTransitiveZones(t *testing.T) {
	reg := topology.FBIWorld()
	w := newWalker(t, reg)
	if _, err := w.WalkName(context.Background(), "www.fbi.gov"); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot(map[string][]string{}, nil)
	// The walk must discover the full dependency tail:
	// fbi.gov -> sprintip.com (com) -> telemail.net (net) -> gtld/gov-servers.
	for _, apex := range []string{"gov", "fbi.gov", "com", "sprintip.com", "net", "telemail.net", "gov-servers.net", "gtld-servers.net"} {
		if _, ok := snap.Zones[apex]; !ok {
			t.Errorf("zone %q not discovered; have %v", apex, keys(snap.Zones))
		}
	}
}

func keys(m map[string]*resolver.ZoneInfo) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestWalkHostChains(t *testing.T) {
	reg := topology.FBIWorld()
	w := newWalker(t, reg)
	if _, err := w.WalkName(context.Background(), "www.fbi.gov"); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot(nil, nil)
	// dns.sprintip.com's address chain runs through com then sprintip.com.
	chain, ok := snap.HostChain["dns.sprintip.com"]
	if !ok {
		t.Fatalf("no host chain for dns.sprintip.com; have %v", snap.HostChain)
	}
	if !reflect.DeepEqual(chain, []string{"com", "sprintip.com"}) {
		t.Errorf("chain = %v", chain)
	}
	// reston-ns2.telemail.net's chain runs through net then telemail.net.
	chain, ok = snap.HostChain["reston-ns2.telemail.net"]
	if !ok {
		t.Fatal("no host chain for reston-ns2.telemail.net")
	}
	if !reflect.DeepEqual(chain, []string{"net", "telemail.net"}) {
		t.Errorf("chain = %v", chain)
	}
}

func TestWalkMemoization(t *testing.T) {
	reg := topology.FBIWorld()
	w := newWalker(t, reg)
	ctx := context.Background()
	if _, err := w.WalkName(ctx, "www.fbi.gov"); err != nil {
		t.Fatal(err)
	}
	q1 := w.Queries()
	// Walking a sibling name must reuse every cached zone: only the final
	// leaf queries are new.
	if err := reg.AddHostAddress("tips.fbi.gov"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.WalkName(ctx, "tips.fbi.gov"); err != nil {
		t.Fatal(err)
	}
	q2 := w.Queries()
	if q2-q1 > 3 {
		t.Errorf("second walk issued %d queries; memoization is broken", q2-q1)
	}
	// Walking the same name again costs nothing.
	if _, err := w.WalkName(ctx, "www.fbi.gov"); err != nil {
		t.Fatal(err)
	}
	if w.Queries() != q2 {
		t.Errorf("re-walk issued %d extra queries", w.Queries()-q2)
	}
}

func TestWalkFigure1Dependencies(t *testing.T) {
	reg := topology.Figure1World()
	w := newWalker(t, reg)
	if _, err := w.WalkName(context.Background(), "www.cs.cornell.edu"); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot(nil, nil)
	// The paper's headline example: www.cs.cornell.edu depends indirectly
	// on a nameserver in umich.edu via rochester -> wisc -> umich.
	for _, apex := range []string{
		"edu", "cornell.edu", "cs.cornell.edu", "cit.cornell.edu",
		"cs.rochester.edu", "rochester.edu", "cc.rochester.edu", "utd.rochester.edu",
		"cs.wisc.edu", "wisc.edu", "itd.umich.edu", "umich.edu",
		"nstld.com", "gtld-servers.net",
	} {
		if _, ok := snap.Zones[apex]; !ok {
			t.Errorf("zone %q missing from the dependency walk", apex)
		}
	}
	hosts := snap.Hosts()
	found := false
	for _, h := range hosts {
		if h == "dns2.itd.umich.edu" {
			found = true
		}
	}
	if !found {
		t.Error("umich nameserver missing from discovered hosts")
	}
}

func TestWalkUkraineWorstCase(t *testing.T) {
	reg := topology.UkraineWorld()
	w := newWalker(t, reg)
	if _, err := w.WalkName(context.Background(), "www.rkc.lviv.ua"); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot(nil, nil)
	// The Ukrainian chain reaches US universities and Australia.
	for _, apex := range []string{"ua", "lviv.ua", "rkc.lviv.ua", "berkeley.edu", "monash.edu.au", "telstra.net"} {
		if _, ok := snap.Zones[apex]; !ok {
			t.Errorf("zone %q missing", apex)
		}
	}
	if len(snap.Hosts()) < 15 {
		t.Errorf("only %d hosts discovered; the Ukraine scenario should fan out wide", len(snap.Hosts()))
	}
	// The paper's point: a Ukrainian name depends on servers in the US and
	// Australia.
	hostSet := map[string]bool{}
	for _, h := range snap.Hosts() {
		hostSet[h] = true
	}
	for _, h := range []string{"ns.berkeley.edu", "ns.monash.edu.au", "ns1.stanford.edu", "ns.telstra.net"} {
		if !hostSet[h] {
			t.Errorf("expected global dependency %q in TCB", h)
		}
	}
}

func TestWalkNXDomainName(t *testing.T) {
	reg := topology.FBIWorld()
	w := newWalker(t, reg)
	if _, err := w.WalkName(context.Background(), "www.nonexistent.gov"); err == nil {
		t.Error("walking a nonexistent name should fail")
	}
}

func TestWalkConcurrent(t *testing.T) {
	reg := topology.Figure1World()
	w := newWalker(t, reg)
	names := []string{
		"www.cs.cornell.edu", "www.cs.cornell.edu", "www.cs.cornell.edu",
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(names)*8)
	for i := 0; i < 8; i++ {
		for _, n := range names {
			wg.Add(1)
			go func(n string) {
				defer wg.Done()
				if _, err := w.WalkName(context.Background(), n); err != nil {
					errs <- err
				}
			}(n)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent walk: %v", err)
	}
}

// TestWalkStressOverlappingCorpus hammers one walker from many
// goroutines over an overlapping corpus (every goroutine walks every
// name, in a different rotation) and checks the single-flight/memo
// guarantee: the concurrent walk issues exactly as many transport
// queries as a fresh serial walker over the same world.
func TestWalkStressOverlappingCorpus(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 7, Names: 120})
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference.
	serial := newWalker(t, world.Registry)
	for _, n := range world.Corpus {
		if _, err := serial.WalkName(context.Background(), n); err != nil {
			t.Fatalf("serial walk %s: %v", n, err)
		}
	}

	concurrent := newWalker(t, world.Registry)
	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(rot int) {
			defer wg.Done()
			for i := range world.Corpus {
				name := world.Corpus[(i+rot)%len(world.Corpus)]
				if _, err := concurrent.WalkName(context.Background(), name); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent walk: %v", err)
	}

	if sq, cq := serial.Queries(), concurrent.Queries(); sq != cq {
		t.Errorf("transport queries: serial=%d concurrent=%d — single-flight dedup is leaking", sq, cq)
	}
	stats := concurrent.Stats()
	if stats.MemoHits == 0 {
		t.Error("no query-memo hits under a 32-goroutine overlapping walk")
	}

	// The discovered worlds must be identical.
	ss, cs := serial.Snapshot(nil, nil), concurrent.Snapshot(nil, nil)
	if !reflect.DeepEqual(ss.Hosts(), cs.Hosts()) {
		t.Error("serial and concurrent walks discovered different host sets")
	}
	if len(ss.Zones) != len(cs.Zones) {
		t.Errorf("zone counts differ: serial=%d concurrent=%d", len(ss.Zones), len(cs.Zones))
	}
}

// TestWalkCancellationIsolation: one walk's cancelled context must not
// poison a shared walker — no cancellation error may be cached as a
// host failure, and later walks with live contexts must succeed.
func TestWalkCancellationIsolation(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 9, Names: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Slow queries down so cancellation reliably lands mid-walk.
	tr := transport.Chain(world.Registry.Source(), transport.Latency(transport.FixedRTT(500*time.Microsecond)))
	r, err := world.Registry.Resolver(tr)
	if err != nil {
		t.Fatal(err)
	}
	w := resolver.NewWalker(r)

	ctx1, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(rot int) {
			defer wg.Done()
			for i := range world.Corpus {
				if _, err := w.WalkName(ctx1, world.Corpus[(i+rot)%len(world.Corpus)]); err != nil {
					return
				}
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	cancel()
	wg.Wait()

	// Every name must still walk cleanly on the same walker.
	for _, n := range world.Corpus {
		if _, err := w.WalkName(context.Background(), n); err != nil {
			t.Fatalf("walk %s after unrelated cancellation: %v", n, err)
		}
	}
	for host, err := range w.Snapshot(nil, nil).Failed {
		t.Errorf("cancellation leaked into cached failure: %s: %v", host, err)
	}
}

func TestWalkLameHostRecorded(t *testing.T) {
	reg := topology.FBIWorld()
	// reston-ns3 goes dark: fbi.gov still resolves (other servers exist),
	// and the walker records nothing fatal.
	if err := reg.SetLame("reston-ns3.telemail.net", true); err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, reg)
	if _, err := w.WalkName(context.Background(), "www.fbi.gov"); err != nil {
		t.Fatalf("walk should survive a lame host: %v", err)
	}
}

func TestSnapshotHostsSorted(t *testing.T) {
	reg := topology.FBIWorld()
	w := newWalker(t, reg)
	if _, err := w.WalkName(context.Background(), "www.fbi.gov"); err != nil {
		t.Fatal(err)
	}
	hosts := w.Snapshot(nil, nil).Hosts()
	for i := 1; i < len(hosts); i++ {
		if hosts[i-1] >= hosts[i] {
			t.Errorf("hosts not sorted at %d: %q >= %q", i, hosts[i-1], hosts[i])
		}
	}
}
