// Package resolver implements an iterative DNS resolver that follows
// delegation chains from the root, records complete resolution traces, and
// — for the survey — walks the full transitive dependency structure of a
// name: every zone and nameserver that could participate in its
// resolution. It speaks through a pluggable Transport so the same code
// runs against real sockets or an in-memory synthetic Internet.
package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/transport"
)

// Transport delivers a single question to a nameserver address. It is
// the one-method core of transport.Source: any Source is a Transport,
// and a plain Transport adapts into the composable source stack with
// transport.From.
type Transport interface {
	Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error)
}

// ServerAddr pairs a nameserver host name with one of its addresses.
type ServerAddr struct {
	Host string
	Addr netip.Addr
}

// Errors surfaced by resolution.
var (
	// ErrNoServers means a zone had no reachable, non-lame nameserver.
	ErrNoServers = errors.New("resolver: no usable nameservers")
	// ErrDepthExceeded guards against delegation chains and NS-address
	// recursions deeper than any legitimate deployment.
	ErrDepthExceeded = errors.New("resolver: resolution depth exceeded")
	// ErrCNAMELoop guards against circular CNAME chains.
	ErrCNAMELoop = errors.New("resolver: CNAME loop")
	// ErrNXDomain is returned when the authoritative server denies the name.
	ErrNXDomain = errors.New("resolver: no such domain")
	// ErrNoData is returned when the name exists without the queried type.
	ErrNoData = errors.New("resolver: no data of requested type")
	// ErrLameDelegation is returned when a chain dead-ends: the delegated
	// servers cannot be addressed or refuse to answer.
	ErrLameDelegation = errors.New("resolver: lame delegation")
	// ErrRetryBudget is returned when a query exhausts Config.RetryBudget
	// server attempts without a usable response.
	ErrRetryBudget = errors.New("resolver: retry budget exhausted")
)

// Config tunes a Resolver.
type Config struct {
	// Roots are the root nameserver hints (host + address). Required.
	Roots []ServerAddr
	// MaxDepth bounds the NS-address recursion depth; default 16.
	MaxDepth int
	// MaxChainLen bounds one delegation chain's length; default 16.
	MaxChainLen int
	// MaxCNAME bounds CNAME chases; default 8.
	MaxCNAME int
	// QueriesPerSec, when positive, paces the survey walker's transport
	// queries through a per-server token bucket: no single nameserver
	// sees more than this sustained rate from a crawl, no matter how
	// many workers share it. 0 disables pacing (synthetic worlds).
	QueriesPerSec float64
	// ZoneQueriesPerSec overrides QueriesPerSec per queried zone apex:
	// while a query is addressed to servers acting for that zone, its
	// token bucket paces at the override instead of the default. TLD and
	// registry servers are provisioned for orders of magnitude more
	// traffic than leaf-zone boxes, so a live crawl typically sets a
	// high override for "com", "net", ... and leaves the conservative
	// default for everything else. Keys are canonical zone apexes ("" is
	// the root); matching is exact. A zone absent from the map uses
	// QueriesPerSec; an override <= 0 disables pacing for that zone.
	ZoneQueriesPerSec map[string]float64
	// RateBurst is the token-bucket depth (the number of back-to-back
	// queries one server may absorb before pacing kicks in). Values
	// below 1 default to 1. Only meaningful with QueriesPerSec or
	// ZoneQueriesPerSec.
	RateBurst int
	// RetryBudget, when positive, bounds how many servers the walker
	// tries for one logical query before giving up with ErrRetryBudget.
	// 0 tries every known server of the zone (the paper's behavior).
	RetryBudget int

	// rateNow and rateSleep inject a fake clock into the pacing
	// middleware for in-package tests; nil selects real time.
	rateNow   func() time.Time
	rateSleep func(context.Context, time.Duration) error
}

// paced reports whether the config enables pacing anywhere.
func (c *Config) paced() bool {
	if c.QueriesPerSec > 0 {
		return true
	}
	for _, r := range c.ZoneQueriesPerSec {
		if r > 0 {
			return true
		}
	}
	return false
}

func (c *Config) applyDefaults() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 16
	}
	if c.MaxChainLen == 0 {
		c.MaxChainLen = 16
	}
	if c.MaxCNAME == 0 {
		c.MaxCNAME = 8
	}
}

// StepKind classifies one step of a resolution trace.
type StepKind int

const (
	// StepReferral means the server handed back a delegation.
	StepReferral StepKind = iota
	// StepAnswer means the server answered authoritatively.
	StepAnswer
	// StepCNAME means the answer was an alias that was then chased.
	StepCNAME
	// StepFailure means the server could not be used (error, refusal).
	StepFailure
)

func (k StepKind) String() string {
	switch k {
	case StepReferral:
		return "referral"
	case StepAnswer:
		return "answer"
	case StepCNAME:
		return "cname"
	default:
		return "failure"
	}
}

// Step records one server contact during resolution.
type Step struct {
	// Zone is the apex of the zone the contacted server was serving
	// ("" for the root).
	Zone string
	// Server is the contacted nameserver.
	Server ServerAddr
	// Name and Type are the question asked.
	Name string
	Type dnswire.Type
	// Kind classifies the outcome.
	Kind StepKind
	// ChildZone is the delegated apex for StepReferral.
	ChildZone string
	// Err carries the failure for StepFailure.
	Err error
}

// Trace is the ordered list of server contacts one resolution performed.
type Trace []Step

// Result is a completed iterative resolution.
type Result struct {
	// Name is the canonical name resolved (after CNAME chasing, the final
	// canonical target is CanonicalName).
	Name string
	// CanonicalName is the end of the CNAME chain (== Name when no alias).
	CanonicalName string
	// Addrs are the resolved addresses (for TypeA/TypeAAAA queries).
	Addrs []netip.Addr
	// Records are the final answer records.
	Records []dnswire.RR
	// AuthZone is the apex of the zone that answered authoritatively.
	AuthZone string
	// Trace lists every server contact made, including for intermediate
	// nameserver-address resolutions.
	Trace Trace
}

// Resolver performs iterative resolution over a Transport. It is
// stateless between calls except for configuration; the survey's caching
// lives in Walker.
type Resolver struct {
	cfg Config
	tr  Transport
}

// New creates a Resolver. When the config enables pacing
// (QueriesPerSec / ZoneQueriesPerSec), the transport is wrapped in the
// transport.RateLimit middleware: every query the resolver or its
// walkers issue is paced per server, with the queried zone's etiquette
// carried by context tag. The wrapper is private to the resolver —
// queries other components send through the same underlying source
// (fingerprint probes, say) bypass it; a chain that should pace all of
// its traffic composes transport.RateLimit into the chain itself.
func New(tr Transport, cfg Config) (*Resolver, error) {
	if len(cfg.Roots) == 0 {
		return nil, errors.New("resolver: at least one root server required")
	}
	cfg.applyDefaults()
	if cfg.paced() {
		tr = transport.Chain(transport.From(tr), transport.RateLimit(transport.RateConfig{
			QueriesPerSec:     cfg.QueriesPerSec,
			ZoneQueriesPerSec: cfg.ZoneQueriesPerSec,
			Burst:             cfg.RateBurst,
			Now:               cfg.rateNow,
			Sleep:             cfg.rateSleep,
		}))
	}
	return &Resolver{cfg: cfg, tr: tr}, nil
}

// Resolve iteratively resolves (name, qtype) starting from the root.
func (r *Resolver) Resolve(ctx context.Context, name string, qtype dnswire.Type) (*Result, error) {
	name = dnsname.Canonical(name)
	res := &Result{Name: name, CanonicalName: name}
	seen := map[string]bool{}
	target := name
	for hop := 0; hop <= r.cfg.MaxCNAME; hop++ {
		if seen[target] {
			return res, ErrCNAMELoop
		}
		seen[target] = true
		rrs, authZone, err := r.resolveOnce(ctx, target, qtype, &res.Trace, 0)
		if err != nil {
			return res, err
		}
		res.AuthZone = authZone
		// Split CNAMEs from the payload records.
		var cname string
		res.Records = res.Records[:0]
		for _, rr := range rrs {
			if c, ok := rr.Data.(dnswire.CNAME); ok && qtype != dnswire.TypeCNAME {
				cname = c.Target
				continue
			}
			res.Records = append(res.Records, rr)
		}
		if cname != "" && len(res.Records) == 0 {
			res.CanonicalName = cname
			target = cname
			continue
		}
		for _, rr := range res.Records {
			switch d := rr.Data.(type) {
			case dnswire.A:
				res.Addrs = append(res.Addrs, d.Addr)
			case dnswire.AAAA:
				res.Addrs = append(res.Addrs, d.Addr)
			}
		}
		return res, nil
	}
	return res, ErrCNAMELoop
}

// resolveOnce walks one delegation chain root->auth zone for (name,qtype).
// depth counts nested NS-address resolutions.
func (r *Resolver) resolveOnce(ctx context.Context, name string, qtype dnswire.Type, trace *Trace, depth int) ([]dnswire.RR, string, error) {
	if depth > r.cfg.MaxDepth {
		return nil, "", ErrDepthExceeded
	}
	zone := "" // current zone apex (root)
	servers := append([]ServerAddr(nil), r.cfg.Roots...)
	for hop := 0; hop < r.cfg.MaxChainLen; hop++ {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		resp, used, err := r.queryAny(ctx, zone, servers, name, qtype, trace)
		if err != nil {
			return nil, zone, err
		}
		_ = used
		switch {
		case resp.RCode == dnswire.RCodeNXDomain:
			return nil, zone, ErrNXDomain
		case resp.RCode != dnswire.RCodeSuccess:
			return nil, zone, fmt.Errorf("resolver: server returned %v", resp.RCode)
		case len(resp.Answers) > 0:
			return resp.Answers, zone, nil
		case resp.Authoritative:
			// Authoritative empty answer: NODATA.
			return nil, zone, ErrNoData
		case len(resp.Authority) > 0:
			// Referral: descend into the child zone.
			child, next, err := r.followReferral(ctx, resp, trace, depth)
			if err != nil {
				return nil, zone, err
			}
			if !dnsname.IsSubdomain(child, zone) || child == zone {
				return nil, zone, fmt.Errorf("resolver: bogus referral from %q to %q", zone, child)
			}
			zone = child
			servers = next
		default:
			return nil, zone, ErrLameDelegation
		}
	}
	return nil, zone, ErrDepthExceeded
}

// queryAny tries the zone's servers in order until one responds usefully.
func (r *Resolver) queryAny(ctx context.Context, zone string, servers []ServerAddr, name string, qtype dnswire.Type, trace *Trace) (*dnswire.Message, ServerAddr, error) {
	qctx := transport.WithZone(ctx, zone)
	var lastErr error = ErrNoServers
	for _, srv := range servers {
		resp, err := r.tr.Query(qctx, srv.Addr, name, qtype, dnswire.ClassINET)
		if err != nil {
			*trace = append(*trace, Step{Zone: zone, Server: srv, Name: name, Type: qtype, Kind: StepFailure, Err: err})
			lastErr = err
			continue
		}
		if resp.RCode == dnswire.RCodeRefused || resp.RCode == dnswire.RCodeServFail {
			err := fmt.Errorf("resolver: %v from %s", resp.RCode, srv.Host)
			*trace = append(*trace, Step{Zone: zone, Server: srv, Name: name, Type: qtype, Kind: StepFailure, Err: err})
			lastErr = err
			continue
		}
		kind := StepAnswer
		child := ""
		if len(resp.Answers) == 0 && !resp.Authoritative && len(resp.Authority) > 0 {
			kind = StepReferral
			child = dnsname.Canonical(resp.Authority[0].Name)
		}
		*trace = append(*trace, Step{Zone: zone, Server: srv, Name: name, Type: qtype, Kind: kind, ChildZone: child})
		return resp, srv, nil
	}
	return nil, ServerAddr{}, lastErr
}

// followReferral extracts the child zone and its servers from a referral,
// resolving nameserver addresses (using glue when offered, recursing when
// not) so the descent can continue.
func (r *Resolver) followReferral(ctx context.Context, resp *dnswire.Message, trace *Trace, depth int) (string, []ServerAddr, error) {
	child := dnsname.Canonical(resp.Authority[0].Name)
	glue := map[string][]netip.Addr{}
	for _, rr := range resp.Additional {
		switch d := rr.Data.(type) {
		case dnswire.A:
			glue[dnsname.Canonical(rr.Name)] = append(glue[rr.Name], d.Addr)
		case dnswire.AAAA:
			glue[dnsname.Canonical(rr.Name)] = append(glue[rr.Name], d.Addr)
		}
	}
	var out []ServerAddr
	var lastErr error
	for _, rr := range resp.Authority {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			continue
		}
		host := dnsname.Canonical(ns.Host)
		if addrs, ok := glue[host]; ok && len(addrs) > 0 {
			out = append(out, ServerAddr{Host: host, Addr: addrs[0]})
			continue
		}
		// No glue: resolve the server's address through its own chain.
		sub, _, err := r.resolveOnce(ctx, host, dnswire.TypeA, trace, depth+1)
		if err != nil {
			lastErr = err
			continue
		}
		for _, srr := range sub {
			if a, ok := srr.Data.(dnswire.A); ok {
				out = append(out, ServerAddr{Host: host, Addr: a.Addr})
				break
			}
		}
	}
	if len(out) == 0 {
		if lastErr != nil {
			return child, nil, fmt.Errorf("%w: %w", ErrLameDelegation, lastErr)
		}
		return child, nil, ErrLameDelegation
	}
	return child, out, nil
}
