package resolver

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightDedup: concurrent do() calls for one key run fn exactly once
// and every caller observes the same result.
func TestFlightDedup(t *testing.T) {
	g := newFlightGroup()
	var execs atomic.Int64
	gate := make(chan struct{})

	const callers = 16
	var wg sync.WaitGroup
	vals := make([]any, callers)
	shared := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, sh, err := g.do(context.Background(), int64(i+1), "k", func() (any, error) {
				execs.Add(1)
				<-gate // hold the flight open so everyone piles up
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			vals[i], shared[i] = v, sh
		}(i)
	}
	// Let the waiters accumulate, then release the owner.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	nShared := 0
	for i := range vals {
		if vals[i] != 42 {
			t.Errorf("caller %d got %v", i, vals[i])
		}
		if shared[i] {
			nShared++
		}
	}
	if nShared != callers-1 {
		t.Errorf("%d callers shared the flight, want %d", nShared, callers-1)
	}
}

// TestFlightCrossWaitFallsBack: two owners each holding a flight and
// needing the other's must not deadlock — the one that would close the
// wait cycle gets errWouldCycle and computes inline.
func TestFlightCrossWaitFallsBack(t *testing.T) {
	g := newFlightGroup()
	ctx := context.Background()

	aStarted := make(chan struct{})
	bStarted := make(chan struct{})
	innerErr := make(chan error, 1)
	done := make(chan struct{})

	// Owner 2: opens flight "B", then blocks waiting on owner 1's "A".
	go func() {
		<-aStarted
		_, _, _ = g.do(ctx, 2, "B", func() (any, error) {
			close(bStarted)
			v, sh, err := g.do(ctx, 2, "A", func() (any, error) {
				return nil, errors.New("owner 2 must not run A")
			})
			if err != nil || !sh || v != "a" {
				t.Errorf("owner 2 wait on A: v=%v shared=%v err=%v", v, sh, err)
			}
			return "b", nil
		})
		close(done)
	}()

	// Owner 1: opens flight "A"; once owner 2 is provably blocked on it,
	// tries to wait on "B" — that edge would close a cycle.
	_, _, err := g.do(ctx, 1, "A", func() (any, error) {
		close(aStarted)
		<-bStarted
		for { // wait until owner 2 has registered its wait on "A"
			g.mu.Lock()
			blocked := g.waiting[2] == "A"
			g.mu.Unlock()
			if blocked {
				break
			}
			time.Sleep(time.Millisecond)
		}
		_, _, err := g.do(ctx, 1, "B", func() (any, error) {
			return nil, errors.New("must not run: cycle expected")
		})
		innerErr <- err
		return "a", nil
	})
	if err != nil {
		t.Fatalf("owner 1 flight A: %v", err)
	}
	if err := <-innerErr; !errors.Is(err, errWouldCycle) {
		t.Fatalf("owner 1 wait on B = %v, want errWouldCycle", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("owner 2 deadlocked")
	}
}

// TestFlightWaiterCancellation: a waiter whose context dies while the
// owner is still working unblocks with the context error; the owner's
// result is unaffected.
func TestFlightWaiterCancellation(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	ownerDone := make(chan error, 1)

	go func() {
		_, _, err := g.do(context.Background(), 1, "k", func() (any, error) {
			<-gate
			return "v", nil
		})
		ownerDone <- err
	}()
	for { // wait until the flight is registered
		g.mu.Lock()
		_, ok := g.flights["k"]
		g.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := g.do(ctx, 2, "k", func() (any, error) { return nil, nil })
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: shared=%v err=%v", shared, err)
	}
	// The owner's wait entry must be gone so it is not seen as blocked.
	g.mu.Lock()
	if _, ok := g.waiting[2]; ok {
		t.Error("cancelled waiter left a dangling wait edge")
	}
	g.mu.Unlock()

	close(gate)
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner: %v", err)
	}
}
