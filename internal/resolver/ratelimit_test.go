package resolver

import (
	"context"
	"net/netip"
	"testing"
	"time"
)

// fakeClock drives the rate limiter deterministically: sleep advances
// the clock instead of blocking, and every requested delay is recorded.
type fakeClock struct {
	t      time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) sleep(_ context.Context, d time.Duration) error {
	c.sleeps = append(c.sleeps, d)
	c.t = c.t.Add(d)
	return nil
}

func TestRateLimiterBurstThenPaced(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(10, 2, clk.now, clk.sleep) // 10 qps, burst 2
	addr := netip.MustParseAddr("192.0.2.1")
	ctx := context.Background()

	// The burst passes with no sleep.
	for i := 0; i < 2; i++ {
		if err := l.wait(ctx, addr); err != nil {
			t.Fatal(err)
		}
	}
	if len(clk.sleeps) != 0 {
		t.Fatalf("burst slept: %v", clk.sleeps)
	}

	// Subsequent queries are paced at exactly 1/rate = 100ms apart.
	for i := 0; i < 3; i++ {
		if err := l.wait(ctx, addr); err != nil {
			t.Fatal(err)
		}
	}
	if len(clk.sleeps) != 3 {
		t.Fatalf("paced queries slept %d times, want 3", len(clk.sleeps))
	}
	for i, d := range clk.sleeps {
		if d < 99*time.Millisecond || d > 101*time.Millisecond {
			t.Errorf("sleep %d = %v, want ~100ms", i, d)
		}
	}
}

func TestRateLimiterRefillsWhileIdle(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(10, 1, clk.now, clk.sleep)
	addr := netip.MustParseAddr("192.0.2.1")
	ctx := context.Background()

	if err := l.wait(ctx, addr); err != nil {
		t.Fatal(err)
	}
	// Idle long enough to mature a fresh token: no sleep needed.
	clk.t = clk.t.Add(time.Second)
	if err := l.wait(ctx, addr); err != nil {
		t.Fatal(err)
	}
	if len(clk.sleeps) != 0 {
		t.Fatalf("refilled bucket slept: %v", clk.sleeps)
	}
}

func TestRateLimiterPerServerIndependence(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(10, 1, clk.now, clk.sleep)
	ctx := context.Background()

	// Draining server A's bucket must not delay server B.
	a := netip.MustParseAddr("192.0.2.1")
	b := netip.MustParseAddr("192.0.2.2")
	if err := l.wait(ctx, a); err != nil {
		t.Fatal(err)
	}
	if err := l.wait(ctx, b); err != nil {
		t.Fatal(err)
	}
	if len(clk.sleeps) != 0 {
		t.Fatalf("independent servers slept: %v", clk.sleeps)
	}
}

func TestRateLimiterBurstFloor(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(100, 0, clk.now, clk.sleep) // burst 0 -> 1
	addr := netip.MustParseAddr("192.0.2.1")
	if err := l.wait(context.Background(), addr); err != nil {
		t.Fatal(err)
	}
	if len(clk.sleeps) != 0 {
		t.Fatal("first query must always pass immediately")
	}
}

func TestRateLimiterCancellation(t *testing.T) {
	clk := newFakeClock()
	cancelled := context.Canceled
	sleep := func(ctx context.Context, d time.Duration) error { return cancelled }
	l := newRateLimiter(1, 1, clk.now, sleep)
	addr := netip.MustParseAddr("192.0.2.1")
	ctx := context.Background()
	if err := l.wait(ctx, addr); err != nil {
		t.Fatal(err)
	}
	if err := l.wait(ctx, addr); err != cancelled {
		t.Fatalf("paced wait under cancellation = %v, want context.Canceled", err)
	}
}
