package resolver

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnstrust/internal/dnswire"
)

// fakeClock drives the pacing middleware deterministically: sleep
// advances the clock instead of blocking, recording every delay.
type fakeClock struct {
	t      time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) sleep(_ context.Context, d time.Duration) error {
	c.sleeps = append(c.sleeps, d)
	c.t = c.t.Add(d)
	return nil
}

// TestDispatchZoneRateOverride checks the walker wiring end to end: the
// walker no longer paces itself — it tags each dispatch with the queried
// zone and the transport.RateLimit middleware (installed by New from the
// rate config) paces at that zone's etiquette — so a dispatch addressed
// to a zone with a high override waits at the override rate while the
// default zone waits at the conservative default, on one fake clock.
func TestDispatchZoneRateOverride(t *testing.T) {
	clk := newFakeClock()
	r, err := New(errTransport{err: errors.New("refused")}, Config{
		Roots:             []ServerAddr{{Host: "a.root.test", Addr: netip.MustParseAddr("198.41.0.4")}},
		QueriesPerSec:     1,
		ZoneQueriesPerSec: map[string]float64{"com": 500, "quiet.example": -1},
		rateNow:           clk.now,
		rateSleep:         clk.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(r)
	ctx := context.Background()
	// Each case queries one box twice (two ServerAddr entries sharing an
	// address drain one bucket); a fresh address per case keeps the
	// buckets independent.
	serversAt := func(ip string) []ServerAddr {
		return []ServerAddr{
			{Host: "s1", Addr: netip.MustParseAddr(ip)},
			{Host: "s2", Addr: netip.MustParseAddr(ip)},
		}
	}

	// Zone "com" carries the 500 qps override: the second attempt waits
	// ~2ms instead of ~1s.
	w.dispatch(ctx, "com", serversAt("192.0.2.1"), "x.com", dnswire.TypeA)
	if len(clk.sleeps) != 1 || clk.sleeps[0] > 3*time.Millisecond {
		t.Fatalf("com-paced sleeps = %v, want one ~2ms wait", clk.sleeps)
	}

	// An unlisted zone falls back to the 1 qps default.
	clk.sleeps = nil
	w.dispatch(ctx, "example.net", serversAt("192.0.2.2"), "x.example.net", dnswire.TypeA)
	if len(clk.sleeps) != 1 || clk.sleeps[0] < 500*time.Millisecond {
		t.Fatalf("default-paced sleeps = %v, want one ~1s wait", clk.sleeps)
	}

	// A zone with a non-positive override is unpaced entirely.
	clk.sleeps = nil
	w.dispatch(ctx, "quiet.example", serversAt("192.0.2.3"), "x.quiet.example", dnswire.TypeA)
	if len(clk.sleeps) != 0 {
		t.Fatalf("disabled-zone dispatch slept: %v", clk.sleeps)
	}
}
