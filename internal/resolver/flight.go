package resolver

import (
	"context"
	"errors"
	"sync"
)

// errWouldCycle reports that waiting on an in-flight computation would
// deadlock: the flight's owner is itself (transitively) blocked on a
// flight owned by the caller. The caller must compute inline instead;
// per-goroutine visit sets then detect any true resolution cycle exactly
// as a single-threaded walk would.
var errWouldCycle = errors.New("resolver: single-flight wait would deadlock")

// flightGroup provides per-key single-flight deduplication for the
// walker: when several walk goroutines need the same undiscovered
// zone/host, one performs the work and the rest block on its result
// instead of duplicating transport queries or serializing on a global
// lock.
//
// Unlike x/sync/singleflight, walker flights nest — the function running
// under one key recursively acquires other keys (a zone walk resolves
// nameserver hosts, whose address chains walk further zones). Two
// goroutines can therefore wait on each other's flights (host A's chain
// needs host B's and vice versa, the glue-less mutual dependency the
// paper's crawler had to tolerate). The group tracks, per owner, which
// key it is currently blocked on; before a caller blocks, it follows the
// owner→key wait chain and refuses (errWouldCycle) if waiting would close
// a loop. Wait edges are registered under the group mutex before
// blocking, so the goroutine adding the final edge of any loop always
// observes it.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	// waiting maps an owner id to the key it is currently blocked on.
	// An owner is a single synchronous walk (one goroutine), so it waits
	// on at most one key at a time.
	waiting map[int64]string
}

type flight struct {
	owner int64
	done  chan struct{}
	val   any
	err   error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{
		flights: make(map[string]*flight),
		waiting: make(map[int64]string),
	}
}

// do executes fn under single-flight for key on behalf of owner. If the
// key is already in flight, do blocks until that flight completes and
// returns its result with shared=true — unless blocking would deadlock,
// in which case it returns errWouldCycle without running fn.
func (g *flightGroup) do(ctx context.Context, owner int64, key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		if f.owner == owner || g.wouldCycleLocked(owner, f) {
			g.mu.Unlock()
			return nil, false, errWouldCycle
		}
		g.waiting[owner] = key
		g.mu.Unlock()
		select {
		case <-f.done:
			g.clearWait(owner)
			return f.val, true, f.err
		case <-ctx.Done():
			g.clearWait(owner)
			return nil, true, ctx.Err()
		}
	}
	f := &flight{owner: owner, done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

func (g *flightGroup) clearWait(owner int64) {
	g.mu.Lock()
	delete(g.waiting, owner)
	g.mu.Unlock()
}

// wouldCycleLocked follows the wait chain starting at f's owner and
// reports whether it leads back to owner. Called with g.mu held.
func (g *flightGroup) wouldCycleLocked(owner int64, f *flight) bool {
	for hops := 0; hops <= len(g.waiting); hops++ {
		key, ok := g.waiting[f.owner]
		if !ok {
			return false // f's owner is running, not blocked
		}
		next, ok := g.flights[key]
		if !ok {
			return false // that flight just completed
		}
		if next.owner == owner {
			return true
		}
		f = next
	}
	return true // chain longer than the wait set: refuse conservatively
}
