package mincut

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceKill exhaustively searches compromise subsets to find the
// true minimum complete-kill cost of a target zone, evaluating the
// AND/OR semantics by fixpoint for each candidate set.
func bruteForceKill(in ANDORInput, target int32) int64 {
	nh := len(in.HostWeight)
	best := Inf
	for mask := 0; mask < 1<<nh; mask++ {
		var cost int64
		for h := 0; h < nh; h++ {
			if mask&(1<<h) != 0 {
				cost += in.HostWeight[h]
			}
		}
		if cost >= best {
			continue
		}
		if zoneDead(in, target, mask) {
			best = cost
		}
	}
	return best
}

// zoneDead evaluates, under compromise set mask, whether the target zone
// is completely unusable: every NS host is compromised or has some chain
// zone dead. Computed as a least fixpoint of "usable".
func zoneDead(in ANDORInput, target int32, mask int) bool {
	nh, nz := len(in.HostWeight), len(in.ZoneNS)
	usable := make([]bool, nh)
	zoneClean := make([]bool, nz)
	for changed := true; changed; {
		changed = false
		for h := 0; h < nh; h++ {
			if usable[h] || mask&(1<<h) != 0 {
				continue
			}
			ok := true
			if in.Grounded == nil || !in.Grounded[h] {
				for _, z := range in.HostChain[h] {
					if !zoneClean[z] {
						ok = false
						break
					}
				}
				if len(in.HostChain[h]) == 0 {
					ok = true
				}
			}
			if ok {
				usable[h] = true
				changed = true
			}
		}
		for z := 0; z < nz; z++ {
			if zoneClean[z] {
				continue
			}
			for _, h := range in.ZoneNS[z] {
				if usable[h] {
					zoneClean[z] = true
					changed = true
					break
				}
			}
		}
	}
	return !zoneClean[target]
}

// TestSolveANDORUpperBound checks, on random small instances (shared
// structure and cycles included), that the tree-cost fixpoint is always
// a valid upper bound on the true minimum complete-kill cost: the
// attacker can always achieve the kill at the fixpoint price, possibly
// cheaper when one compromise serves several branches.
func TestSolveANDORUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nz := 2 + r.Intn(3) // 2..4 zones
		nh := 3 + r.Intn(5) // 3..7 hosts
		in := ANDORInput{
			HostWeight: make([]int64, nh),
			ZoneNS:     make([][]int32, nz),
			HostChain:  make([][]int32, nh),
			Grounded:   make([]bool, nh),
		}
		for h := 0; h < nh; h++ {
			in.HostWeight[h] = int64(1 + r.Intn(5))
			// Random chain: 0-2 zones (possibly creating cycles).
			for k := 0; k < r.Intn(3); k++ {
				in.HostChain[h] = append(in.HostChain[h], int32(r.Intn(nz)))
			}
			if r.Intn(4) == 0 {
				in.Grounded[h] = true
			}
		}
		for z := 0; z < nz; z++ {
			// Every zone gets 1..3 hosts.
			n := 1 + r.Intn(3)
			for k := 0; k < n; k++ {
				in.ZoneNS[z] = append(in.ZoneNS[z], int32(r.Intn(nh)))
			}
		}
		res := SolveANDOR(in)
		for z := 0; z < nz; z++ {
			want := bruteForceKill(in, int32(z))
			if res.KillZone[z] < want {
				t.Logf("seed %d zone %d: fixpoint %d BELOW true optimum %d (unsound!) input %+v",
					seed, z, res.KillZone[z], want, in)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSolveANDORExactOnTrees checks exactness when the dependency
// structure is a tree: each host serves exactly one zone and each zone
// is referenced by at most one host chain — no sharing, so the
// independent-branch sum is the true optimum.
func TestSolveANDORExactOnTrees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build a random tree of zones: zone 0 is the target root; each
		// further zone hangs off exactly one host of an earlier zone.
		nz := 2 + r.Intn(3)
		var in ANDORInput
		in.ZoneNS = make([][]int32, nz)
		hostZone := []int32{} // owning zone per host
		newHost := func(z int32) int32 {
			h := int32(len(in.HostWeight))
			in.HostWeight = append(in.HostWeight, int64(1+r.Intn(5)))
			in.HostChain = append(in.HostChain, nil)
			in.Grounded = append(in.Grounded, true)
			in.ZoneNS[z] = append(in.ZoneNS[z], h)
			hostZone = append(hostZone, z)
			return h
		}
		for k := 0; k < 1+r.Intn(3); k++ {
			newHost(0)
		}
		for z := int32(1); z < int32(nz); z++ {
			for k := 0; k < 1+r.Intn(3); k++ {
				newHost(z)
			}
			// Attach zone z to one host of an earlier zone (unique chain).
			var candidates []int32
			for h, hz := range hostZone {
				if hz < z && len(in.HostChain[h]) == 0 {
					candidates = append(candidates, int32(h))
				}
			}
			if len(candidates) == 0 {
				return true // degenerate shape; skip
			}
			parent := candidates[r.Intn(len(candidates))]
			in.HostChain[parent] = []int32{z}
			in.Grounded[parent] = false
		}
		res := SolveANDOR(in)
		want := bruteForceKill(in, 0)
		if res.KillZone[0] != want {
			t.Logf("seed %d: fixpoint %d != optimum %d on tree input %+v",
				seed, res.KillZone[0], want, in)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
