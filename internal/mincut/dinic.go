// Package mincut implements the bottleneck analyses of §3.2 of the paper:
//
//   - minimum vertex cuts of per-name delegation digraphs via Dinic
//     max-flow with node splitting (the method the paper names), with a
//     weighted variant that finds the cut containing the fewest
//     non-vulnerable ("safe") servers — Figure 7's quantity; and
//
//   - an exact minimum complete-hijack computation on the AND/OR
//     structure of delegation (falsify one zone per chain level), solved
//     with Knuth's generalization of Dijkstra to superior-function
//     grammars. The digraph min-cut is always a valid attack set; the
//     AND/OR answer is the true optimum. The two are compared in the
//     ablation benchmarks.
package mincut

import "math"

// Inf is the capacity used for uncuttable nodes and structural edges.
const Inf = int64(math.MaxInt64 / 4)

// edge is one directed edge of the flow network with a residual twin.
type edge struct {
	to  int
	cap int64
	rev int // index of the reverse edge in graph[to]
}

// maxflow is a Dinic max-flow solver.
type maxflow struct {
	graph [][]edge
	level []int
	iter  []int
}

func newMaxflow(n int) *maxflow {
	return &maxflow{graph: make([][]edge, n)}
}

// addEdge inserts a directed edge with the given capacity.
func (m *maxflow) addEdge(from, to int, cap int64) {
	m.graph[from] = append(m.graph[from], edge{to: to, cap: cap, rev: len(m.graph[to])})
	m.graph[to] = append(m.graph[to], edge{to: from, cap: 0, rev: len(m.graph[from]) - 1})
}

// bfs builds the level graph; returns false when sink is unreachable.
func (m *maxflow) bfs(s, t int) bool {
	m.level = make([]int, len(m.graph))
	for i := range m.level {
		m.level[i] = -1
	}
	queue := []int{s}
	m.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range m.graph[v] {
			if e.cap > 0 && m.level[e.to] < 0 {
				m.level[e.to] = m.level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return m.level[t] >= 0
}

// dfs finds one blocking-flow augmenting path.
func (m *maxflow) dfs(v, t int, f int64) int64 {
	if v == t {
		return f
	}
	for ; m.iter[v] < len(m.graph[v]); m.iter[v]++ {
		e := &m.graph[v][m.iter[v]]
		if e.cap > 0 && m.level[v] < m.level[e.to] {
			d := m.dfs(e.to, t, min64(f, e.cap))
			if d > 0 {
				e.cap -= d
				m.graph[e.to][e.rev].cap += d
				return d
			}
		}
	}
	return 0
}

// run computes the max flow from s to t.
func (m *maxflow) run(s, t int) int64 {
	var flow int64
	for m.bfs(s, t) {
		m.iter = make([]int, len(m.graph))
		for {
			f := m.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			flow += f
			if flow >= Inf {
				return Inf
			}
		}
	}
	return flow
}

// residualReach marks nodes reachable from s in the residual network.
func (m *maxflow) residualReach(s int) []bool {
	seen := make([]bool, len(m.graph))
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range m.graph[v] {
			if e.cap > 0 && !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
