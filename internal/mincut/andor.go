package mincut

import (
	"container/heap"
	"math"
)

// The AND/OR model of complete hijack. A resolution for a name is clean
// when, for EVERY zone on its delegation chain, SOME nameserver of that
// zone is cleanly usable: not compromised, and its own address chain
// clean in the same sense. An attacker achieves a complete hijack by
// falsifying the formula: pick any zone on the chain and "kill" all of
// its servers, where killing a server means either compromising it
// (paying its weight) or completely hijacking its address resolution
// (recursively). The tree-cost relaxation satisfies
//
//	killHost(h) = min(weight(h), minOverChain(h))
//	minOverChain(h) = min over z in chain(h) of killZone(z)   (Inf if grounded)
//	killZone(z) = sum over h in NS(z) of killHost(h)
//
// All functions are superior (each value >= every argument), so Knuth's
// grammar-problem generalization of Dijkstra computes the least fixpoint
// in O(E log V) despite the cyclic zone dependencies.
//
// Semantics note: the sum prices each branch independently, so a single
// compromise that serves two branches (shared substructure) is paid
// twice. The result is therefore an UPPER BOUND on the true minimum
// complete-hijack cost, tight on tree-shaped dependency structures; the
// exact shared-structure optimum is a monotone-formula falsification
// problem and NP-hard in general. On survey-shaped inputs the bound
// still never exceeds the per-name digraph min-cut (property-tested).
//
// The values are global — independent of the surveyed name — so one run
// prices every zone, and a name's answer is the cheapest zone on its own
// chain.

// ANDORInput describes the global delegation structure.
type ANDORInput struct {
	// HostWeight is the cost of compromising each host.
	HostWeight []int64
	// ZoneNS lists, per zone, the interned host ids of its nameservers.
	ZoneNS [][]int32
	// HostChain lists, per host, the zone ids of its address chain.
	// An empty chain means the host is grounded (root/TLD glue): its
	// address resolution cannot be hijacked.
	HostChain [][]int32
	// Grounded marks hosts whose addresses come from root glue even
	// though they have a chain (TLD servers).
	Grounded []bool
}

// ANDORResult carries the fixpoint values.
type ANDORResult struct {
	// KillHost[h] is the minimum cost to make host h unusable.
	KillHost []int64
	// KillZone[z] is the minimum cost to make zone z completely
	// unusable (falsify its entire NS set).
	KillZone []int64
}

// KillName returns the tree-relaxed complete-hijack cost bound for a
// name with the given chain zone ids: the cheapest zone on the chain.
func (r *ANDORResult) KillName(chain []int32) int64 {
	best := Inf
	for _, z := range chain {
		if r.KillZone[z] < best {
			best = r.KillZone[z]
		}
	}
	return best
}

// pqItem is a priority-queue entry for Knuth's algorithm.
type pqItem struct {
	value int64
	node  int32 // host id (>= 0) or ^zone id (< 0)
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].value < p[j].value }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// SolveANDOR computes the least fixpoint of the kill equations.
// Duplicate entries in ZoneNS lists are treated as sets.
func SolveANDOR(in ANDORInput) *ANDORResult {
	nh, nz := len(in.HostWeight), len(in.ZoneNS)
	// Deduplicate NS lists: killZone sums each member once.
	dedupedNS := make([][]int32, nz)
	for z, hosts := range in.ZoneNS {
		seen := make(map[int32]bool, len(hosts))
		for _, h := range hosts {
			if !seen[h] {
				seen[h] = true
				dedupedNS[z] = append(dedupedNS[z], h)
			}
		}
	}
	in.ZoneNS = dedupedNS

	// Hosts caught in glue-less dependency cycles are unusable even with
	// no attacker at all (their address can never be resolved cleanly);
	// their kill cost is zero. Compute inherent usability as a least
	// fixpoint before pricing attacks. Real survey inputs ground such
	// hosts optimistically, but the solver must be correct regardless.
	usable := make([]bool, nh)
	zoneClean := make([]bool, nz)
	for changed := true; changed; {
		changed = false
		for h := 0; h < nh; h++ {
			if usable[h] {
				continue
			}
			ok := true
			if in.Grounded == nil || !in.Grounded[h] {
				for _, z := range in.HostChain[h] {
					if !zoneClean[z] {
						ok = false
						break
					}
				}
			}
			if ok {
				usable[h] = true
				changed = true
			}
		}
		for z := 0; z < nz; z++ {
			if zoneClean[z] {
				continue
			}
			for _, h := range in.ZoneNS[z] {
				if usable[h] {
					zoneClean[z] = true
					changed = true
					break
				}
			}
		}
	}
	weights := make([]int64, nh)
	copy(weights, in.HostWeight)
	for h := 0; h < nh; h++ {
		if !usable[h] {
			weights[h] = 0
		}
	}
	in.HostWeight = weights
	killHost := make([]int64, nh)
	killZone := make([]int64, nz)
	hostFinal := make([]bool, nh)
	zoneFinal := make([]bool, nz)
	for i := range killHost {
		killHost[i] = in.HostWeight[i] // always achievable by compromise
	}
	for z := range killZone {
		killZone[z] = math.MaxInt64
	}

	// Reverse indices.
	// hostToZones[h]: zones whose killZone sums over h.
	hostToZones := make([][]int32, nh)
	for z, hosts := range in.ZoneNS {
		for _, h := range hosts {
			hostToZones[h] = append(hostToZones[h], int32(z))
		}
	}
	// zoneToHosts[z]: hosts whose chain includes z (killHost may improve
	// when killZone[z] finalizes).
	zoneToHosts := make([][]int32, nz)
	for h, chain := range in.HostChain {
		if in.Grounded != nil && in.Grounded[h] {
			continue
		}
		for _, z := range chain {
			zoneToHosts[z] = append(zoneToHosts[z], int32(h))
		}
	}
	// Remaining unfinalized NS hosts per zone; zone value computable only
	// once every member host is final (sum rule).
	remaining := make([]int, nz)
	partial := make([]int64, nz)
	for z, hosts := range in.ZoneNS {
		remaining[z] = len(hosts)
		if len(hosts) == 0 {
			// A zone with no nameservers is already dead: cost 0.
			partial[z] = 0
		}
	}

	h := &pq{}
	for i := 0; i < nh; i++ {
		heap.Push(h, pqItem{value: killHost[i], node: int32(i)})
	}
	for z := 0; z < nz; z++ {
		if remaining[z] == 0 {
			killZone[z] = 0
			heap.Push(h, pqItem{value: 0, node: ^int32(z)})
		}
	}

	finalizeZoneInto := func(z int32) {
		// killZone[z] became final: hosts whose chains include z may now
		// have a cheaper kill via hijacking that zone.
		for _, hid := range zoneToHosts[z] {
			if hostFinal[hid] {
				continue
			}
			if killZone[z] < killHost[hid] {
				killHost[hid] = killZone[z]
				heap.Push(h, pqItem{value: killHost[hid], node: hid})
			}
		}
	}

	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.node >= 0 {
			hid := it.node
			if hostFinal[hid] || it.value != killHost[hid] {
				continue
			}
			hostFinal[hid] = true
			for _, z := range hostToZones[hid] {
				if zoneFinal[z] {
					continue
				}
				partial[z] = capAdd(partial[z] + killHost[hid])
				remaining[z]--
				if remaining[z] == 0 {
					killZone[z] = capAdd(partial[z])
					heap.Push(h, pqItem{value: killZone[z], node: ^z})
				}
			}
		} else {
			z := ^it.node
			if zoneFinal[z] || it.value != killZone[z] {
				continue
			}
			zoneFinal[z] = true
			finalizeZoneInto(z)
		}
	}

	// Zones never finalized sit in dependency cycles whose hosts are all
	// grounded elsewhere; their kill cost is the (now final) sum anyway.
	for z := 0; z < nz; z++ {
		if !zoneFinal[z] {
			var sum int64
			for _, hid := range in.ZoneNS[z] {
				sum = capAdd(sum + killHost[hid])
			}
			killZone[z] = sum
		}
	}
	return &ANDORResult{KillHost: killHost, KillZone: killZone}
}

// capAdd saturates additions at Inf to avoid overflow.
func capAdd(v int64) int64 {
	if v > Inf || v < 0 {
		return Inf
	}
	return v
}
