package mincut

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// diamond builds: s(0) -> a(1) -> t(3), s -> b(2) -> t.
func diamond() [][]int {
	return [][]int{{1, 2}, {3}, {3}, {}}
}

func TestVertexCutDiamond(t *testing.T) {
	adj := diamond()
	cut, total, err := VertexCut(adj, []int64{1, 1, 1, 1}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || len(cut) != 2 {
		t.Fatalf("cut = %v (weight %d), want both middle nodes", cut, total)
	}
	sort.Ints(cut)
	if cut[0] != 1 || cut[1] != 2 {
		t.Errorf("cut = %v, want [1 2]", cut)
	}
}

func TestVertexCutChain(t *testing.T) {
	// s -> a -> b -> t: min vertex cut is one node.
	adj := [][]int{{1}, {2}, {3}, {}}
	cut, total, err := VertexCut(adj, []int64{1, 1, 1, 1}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 || len(cut) != 1 {
		t.Fatalf("cut = %v (weight %d), want single node", cut, total)
	}
}

func TestVertexCutWeighted(t *testing.T) {
	// Two parallel 2-node paths; weights force the cut through the cheap
	// pair even though both cuts have 2 nodes.
	// s(0) -> a(1) -> b(2) -> t(5); s -> c(3) -> d(4) -> t.
	adj := [][]int{{1, 3}, {2}, {5}, {4}, {5}, {}}
	weights := []int64{1, 100, 100, 1, 1, 1}
	cut, total, err := VertexCut(adj, weights, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Min weight: cut a-or-b from first path (100) + c-or-d (1) = 101.
	if total != 101 {
		t.Fatalf("total = %d, want 101 (cut %v)", total, cut)
	}
}

func TestVertexCutUnreachable(t *testing.T) {
	adj := [][]int{{1}, {}, {3}, {}}
	cut, total, err := VertexCut(adj, []int64{1, 1, 1, 1}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 || len(cut) != 0 {
		t.Errorf("disconnected graph: cut = %v weight %d, want empty", cut, total)
	}
}

func TestVertexCutSourceAdjacentSink(t *testing.T) {
	adj := [][]int{{1}, {}}
	if _, _, err := VertexCut(adj, []int64{1, 1}, 0, 1); err == nil {
		t.Error("direct source->sink edge has no finite vertex cut; want error")
	}
}

func TestVertexCutValidation(t *testing.T) {
	adj := diamond()
	if _, _, err := VertexCut(adj, []int64{1}, 0, 3); err == nil {
		t.Error("weight length mismatch must error")
	}
	if _, _, err := VertexCut(adj, []int64{1, 1, 1, 1}, 0, 9); err == nil {
		t.Error("sink out of range must error")
	}
	if _, _, err := VertexCut(adj, []int64{1, 1, 1, 1}, 2, 2); err == nil {
		t.Error("source == sink must error")
	}
}

// TestVertexCutIsActuallyACut property-checks on random DAGs that the
// returned set disconnects source from sink and is minimal in weight
// against brute force.
func TestVertexCutIsActuallyACut(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(5) // 4..8 nodes, node 0 = s, n-1 = t
		adj := make([][]int, n)
		for v := 0; v < n-1; v++ {
			for w := v + 1; w < n; w++ {
				if v == 0 && w == n-1 {
					continue // keep a finite cut possible
				}
				if r.Intn(3) > 0 {
					adj[v] = append(adj[v], w)
				}
			}
		}
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(1 + r.Intn(4))
		}
		cut, total, err := VertexCut(adj, weights, 0, n-1)
		if err != nil {
			return false
		}
		// Check the cut disconnects.
		if pathAvoiding(adj, 0, n-1, cut) {
			return false
		}
		// Check optimality by brute force over subsets of middle nodes.
		best := bruteForceCut(adj, weights, 0, n-1)
		return total == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func pathAvoiding(adj [][]int, s, t int, cut []int) bool {
	blocked := map[int]bool{}
	for _, v := range cut {
		blocked[v] = true
	}
	seen := make([]bool, len(adj))
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == t {
			return true
		}
		for _, w := range adj[v] {
			if !seen[w] && !blocked[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

func bruteForceCut(adj [][]int, weights []int64, s, t int) int64 {
	n := len(adj)
	if !pathAvoiding(adj, s, t, nil) {
		return 0
	}
	var middles []int
	for v := 0; v < n; v++ {
		if v != s && v != t {
			middles = append(middles, v)
		}
	}
	best := Inf
	for mask := 0; mask < 1<<len(middles); mask++ {
		var cut []int
		var w int64
		for i, v := range middles {
			if mask&(1<<i) != 0 {
				cut = append(cut, v)
				w += weights[v]
			}
		}
		if w < best && !pathAvoiding(adj, s, t, cut) {
			best = w
		}
	}
	return best
}

func TestSolveANDORSimple(t *testing.T) {
	// One zone (0) with two hosts (0, 1), both grounded.
	in := ANDORInput{
		HostWeight: []int64{3, 5},
		ZoneNS:     [][]int32{{0, 1}},
		HostChain:  [][]int32{nil, nil},
	}
	res := SolveANDOR(in)
	if res.KillZone[0] != 8 {
		t.Errorf("killZone = %d, want 8", res.KillZone[0])
	}
	if got := res.KillName([]int32{0}); got != 8 {
		t.Errorf("KillName = %d, want 8", got)
	}
}

func TestSolveANDORHijackCheaperThanCompromise(t *testing.T) {
	// Zone 0 (the name's zone): hosts 0,1 with weight 100 each, both of
	// whose chains run through zone 1; zone 1 has a single cheap host 2.
	// Killing host 2 (cost 1) hijacks zone 1, which kills hosts 0 and 1's
	// address resolution: total 1, far cheaper than 200.
	in := ANDORInput{
		HostWeight: []int64{100, 100, 1},
		ZoneNS:     [][]int32{{0, 1}, {2}},
		HostChain:  [][]int32{{1}, {1}, nil},
	}
	res := SolveANDOR(in)
	if res.KillHost[0] != 1 || res.KillHost[1] != 1 {
		t.Errorf("killHost = %v, want hijack via zone 1 at cost 1", res.KillHost)
	}
	if res.KillZone[0] != 2 {
		t.Errorf("killZone[0] = %d, want 2", res.KillZone[0])
	}
	if got := res.KillName([]int32{0}); got != 2 {
		t.Errorf("KillName = %d, want 2", got)
	}
	// A chain passing through both zones: zone 1 alone costs 1.
	if got := res.KillName([]int32{0, 1}); got != 1 {
		t.Errorf("KillName over both zones = %d, want 1", got)
	}
}

func TestSolveANDORPureCycleIsFree(t *testing.T) {
	// Mutual glue-less dependency with no grounding anywhere: neither
	// host's address can EVER be resolved (no base case), so both zones
	// are dead without any attacker effort — kill cost zero.
	in := ANDORInput{
		HostWeight: []int64{4, 6},
		ZoneNS:     [][]int32{{0}, {1}},
		HostChain:  [][]int32{{1}, {0}},
	}
	res := SolveANDOR(in)
	if res.KillHost[0] != 0 || res.KillHost[1] != 0 {
		t.Errorf("killHost = %v, want zeros: a glue-less cycle is inherently unusable", res.KillHost)
	}
	if res.KillZone[0] != 0 || res.KillZone[1] != 0 {
		t.Errorf("killZone = %v, want zeros", res.KillZone)
	}
}

func TestSolveANDORGroundedCycle(t *testing.T) {
	// The same mutual dependency, but host 1 is grounded (glue): now the
	// cycle is resolvable, and killing it costs real compromises.
	in := ANDORInput{
		HostWeight: []int64{4, 6},
		ZoneNS:     [][]int32{{0}, {1}},
		HostChain:  [][]int32{{1}, {0}},
		Grounded:   []bool{false, true},
	}
	res := SolveANDOR(in)
	// killHost(1) = 6 (grounded). killZone(1) = 6.
	// killHost(0) = min(4, killZone(1)=6) = 4. killZone(0) = 4.
	if res.KillHost[1] != 6 {
		t.Errorf("killHost[1] = %d, want 6", res.KillHost[1])
	}
	if res.KillHost[0] != 4 {
		t.Errorf("killHost[0] = %d, want 4", res.KillHost[0])
	}
	if res.KillZone[0] != 4 {
		t.Errorf("killZone[0] = %d, want 4", res.KillZone[0])
	}
}

func TestSolveANDORGroundedFlag(t *testing.T) {
	// Host 0 has a chain through zone 1 but is marked grounded (a TLD
	// server): the chain must be ignored.
	in := ANDORInput{
		HostWeight: []int64{7, 1},
		ZoneNS:     [][]int32{{0}, {1}},
		HostChain:  [][]int32{{1}, nil},
		Grounded:   []bool{true, false},
	}
	res := SolveANDOR(in)
	if res.KillHost[0] != 7 {
		t.Errorf("grounded host killHost = %d, want its direct weight 7", res.KillHost[0])
	}
}

func TestSolveANDOREmptyZone(t *testing.T) {
	// A zone with no nameservers is already dead (cost 0); any host
	// chaining through it is hijackable for free.
	in := ANDORInput{
		HostWeight: []int64{9},
		ZoneNS:     [][]int32{{0}, {}},
		HostChain:  [][]int32{{1}},
	}
	res := SolveANDOR(in)
	if res.KillZone[1] != 0 {
		t.Errorf("empty zone kill = %d, want 0", res.KillZone[1])
	}
	if res.KillHost[0] != 0 {
		t.Errorf("killHost = %d, want 0 via dead zone", res.KillHost[0])
	}
}
