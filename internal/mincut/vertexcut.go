package mincut

import (
	"fmt"

	"dnstrust/internal/core"
)

// VertexCut computes a minimum-weight vertex cut separating source from
// sink in the digraph given by adj. weights[v] is the cost of removing
// node v; source and sink are unremovable. It returns the cut members and
// the total weight (0 and an empty cut when sink is already unreachable).
//
// Classic node splitting: v becomes v_in -> v_out with capacity
// weights[v]; an original edge u->v becomes u_out -> v_in with infinite
// capacity. A max-flow then saturates exactly a minimum vertex cut, and
// the cut members are the nodes whose in-half is residually reachable
// from the source while their out-half is not.
func VertexCut(adj [][]int, weights []int64, source, sink int) ([]int, int64, error) {
	n := len(adj)
	if source < 0 || source >= n || sink < 0 || sink >= n {
		return nil, 0, fmt.Errorf("mincut: source/sink out of range")
	}
	if source == sink {
		return nil, 0, fmt.Errorf("mincut: source equals sink")
	}
	if len(weights) != n {
		return nil, 0, fmt.Errorf("mincut: %d weights for %d nodes", len(weights), n)
	}
	in := func(v int) int { return 2 * v }
	out := func(v int) int { return 2*v + 1 }

	m := newMaxflow(2 * n)
	for v := 0; v < n; v++ {
		c := weights[v]
		if v == source || v == sink {
			c = Inf
		}
		m.addEdge(in(v), out(v), c)
		for _, w := range adj[v] {
			if w == v {
				continue
			}
			m.addEdge(out(v), in(w), Inf)
		}
	}
	total := m.run(out(source), in(sink))
	if total == 0 {
		return nil, 0, nil
	}
	if total >= Inf {
		return nil, 0, fmt.Errorf("mincut: no finite vertex cut (source adjacent to sink?)")
	}
	reach := m.residualReach(out(source))
	var cut []int
	for v := 0; v < n; v++ {
		if v == source || v == sink {
			continue
		}
		if reach[in(v)] && !reach[out(v)] {
			cut = append(cut, v)
		}
	}
	return cut, total, nil
}

// Result is the bottleneck analysis of one name's delegation digraph.
type Result struct {
	// Cut lists the cut's nameserver hosts.
	Cut []string
	// Size is the number of servers in the minimum cut (unit weights).
	Size int
	// SafeInCut is the number of non-vulnerable servers in the cut that
	// minimizes that number (the Figure 7 quantity).
	SafeInCut int
	// VulnInCut is the number of vulnerable servers in that same cut.
	VulnInCut int
}

// Clone returns a deep copy of the result with a caller-owned Cut
// slice. Memoization layers (analysis.ChainMemo) hand out clones so the
// cached copy can never be mutated through a returned result.
func (r *Result) Clone() *Result {
	cp := *r
	cp.Cut = append([]string(nil), r.Cut...)
	return &cp
}

// safeWeight is the weighted-cut coefficient for safe servers. With
// vulnerable servers costing 1, any cut with fewer safe servers always
// wins, and the vulnerable count breaks ties. It bounds the supported
// digraph size (cut weight must stay below Inf).
const safeWeight = int64(1) << 32

// Analyze runs both cut computations on a per-name delegation digraph.
// vulnerable reports whether a host has a known exploit.
func Analyze(d *core.Digraph, vulnerable func(host string) bool) (*Result, error) {
	n := d.NumNodes()
	unit := make([]int64, n)
	weighted := make([]int64, n)
	for i, h := range d.Hosts {
		unit[i] = 1
		if vulnerable(h) {
			weighted[i] = 1
		} else {
			weighted[i] = safeWeight
		}
	}

	cut, size, err := VertexCut(d.Adj, unit, d.Source, d.Sink)
	if err != nil {
		return nil, fmt.Errorf("unit cut for %q: %w", d.Name, err)
	}
	res := &Result{Size: int(size)}
	for _, v := range cut {
		res.Cut = append(res.Cut, d.Hosts[v])
	}

	wcut, wtotal, err := VertexCut(d.Adj, weighted, d.Source, d.Sink)
	if err != nil {
		return nil, fmt.Errorf("weighted cut for %q: %w", d.Name, err)
	}
	res.SafeInCut = int(wtotal / safeWeight)
	res.VulnInCut = len(wcut) - res.SafeInCut
	return res, nil
}
