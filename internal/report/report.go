// Package report renders survey analyses as aligned ASCII tables, CSV
// series (gnuplot-ready), and paper-versus-measured comparison rows for
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case float32:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}

// WriteCSV renders the table as CSV (RFC-4180 quoting for commas/quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Comparison is one paper-vs-measured row of EXPERIMENTS.md.
type Comparison struct {
	// Experiment identifies the figure/table ("Figure 2", "T-A").
	Experiment string
	// Quantity names the compared statistic.
	Quantity string
	// Paper is the value the paper reports.
	Paper string
	// Measured is this reproduction's value.
	Measured string
	// Holds reports whether the qualitative claim survives.
	Holds bool
}

// ComparisonTable renders comparisons as a table.
func ComparisonTable(title string, rows []Comparison) *Table {
	t := NewTable(title, "experiment", "quantity", "paper", "measured", "shape holds")
	for _, c := range rows {
		holds := "yes"
		if !c.Holds {
			holds = "NO"
		}
		t.AddRow(c.Experiment, c.Quantity, c.Paper, c.Measured, holds)
	}
	return t
}

// Markdown renders comparisons as a Markdown table for EXPERIMENTS.md.
func Markdown(rows []Comparison) string {
	var sb strings.Builder
	sb.WriteString("| Experiment | Quantity | Paper | Measured | Shape holds |\n")
	sb.WriteString("|---|---|---|---|---|\n")
	for _, c := range rows {
		holds := "yes"
		if !c.Holds {
			holds = "**NO**"
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s |\n",
			c.Experiment, c.Quantity, c.Paper, c.Measured, holds)
	}
	return sb.String()
}
