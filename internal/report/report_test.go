package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure 2: TCB sizes", "tld", "names", "mean")
	tb.AddRow("com", 100, 26.04)
	tb.AddRow("ua", 3, 463.5)
	out := tb.String()
	for _, want := range []string{"Figure 2", "tld", "com", "463.5", "26.0", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines", len(lines))
	}
	// Columns must align: header and rows share the first column width.
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator line wrong: %q", lines[2])
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "host", "names")
	tb.AddRow("a,b.example", 7)
	tb.AddRow(`quote"host`, 8)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"a,b.example",7`) {
		t.Errorf("comma quoting broken:\n%s", out)
	}
	if !strings.Contains(out, `"quote""host",8`) {
		t.Errorf("quote escaping broken:\n%s", out)
	}
	if !strings.HasPrefix(out, "host,names\n") {
		t.Errorf("header missing:\n%s", out)
	}
}

func TestComparisonTable(t *testing.T) {
	rows := []Comparison{
		{Experiment: "Figure 2", Quantity: "mean TCB", Paper: "46", Measured: "52.1", Holds: true},
		{Experiment: "T-B", Quantity: "affected names", Paper: "45%", Measured: "12%", Holds: false},
	}
	out := ComparisonTable("Reproduction", rows).String()
	if !strings.Contains(out, "yes") || !strings.Contains(out, "NO") {
		t.Errorf("holds column wrong:\n%s", out)
	}
	md := Markdown(rows)
	if !strings.Contains(md, "| Figure 2 | mean TCB | 46 | 52.1 | yes |") {
		t.Errorf("markdown row wrong:\n%s", md)
	}
	if !strings.Contains(md, "**NO**") {
		t.Errorf("markdown NO highlight missing:\n%s", md)
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("empty", "a")
	out := tb.String()
	if !strings.Contains(out, "empty") || !strings.Contains(out, "a") {
		t.Errorf("empty table render:\n%s", out)
	}
}
