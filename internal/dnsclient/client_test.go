package dnsclient

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"dnstrust/internal/dnswire"
)

func TestValidate(t *testing.T) {
	q := dnswire.NewQuery(77, "example.com", dnswire.TypeA, dnswire.ClassINET)

	good := q.Reply()
	if err := validate(q, good); err != nil {
		t.Errorf("valid reply rejected: %v", err)
	}

	badID := q.Reply()
	badID.ID = 78
	if err := validate(q, badID); err != ErrIDMismatch {
		t.Errorf("got %v, want ErrIDMismatch", err)
	}

	notResponse := q.Reply()
	notResponse.Response = false
	if err := validate(q, notResponse); err != ErrQuestionMismatch {
		t.Errorf("got %v, want ErrQuestionMismatch", err)
	}

	wrongQ := q.Reply()
	wrongQ.Questions[0].Name = "evil.com"
	if err := validate(q, wrongQ); err != ErrQuestionMismatch {
		t.Errorf("got %v, want ErrQuestionMismatch", err)
	}

	noQ := q.Reply()
	noQ.Questions = nil
	if err := validate(q, noQ); err != ErrQuestionMismatch {
		t.Errorf("got %v, want ErrQuestionMismatch", err)
	}
}

func TestExchangeTimeout(t *testing.T) {
	// A bound-but-silent UDP socket: queries must time out after retries.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := New(Config{Timeout: 100 * time.Millisecond, Retries: 2})
	start := time.Now()
	_, err = c.Query(context.Background(), conn.LocalAddr().String(), "example.com", dnswire.TypeA, dnswire.ClassINET)
	if err == nil {
		t.Fatal("query against silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("gave up after %v; retries not attempted", elapsed)
	}
}

func TestExchangeContextCancelled(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(Config{Timeout: time.Second})
	if _, err := c.Query(ctx, conn.LocalAddr().String(), "example.com", dnswire.TypeA, dnswire.ClassINET); err == nil {
		t.Fatal("cancelled context should abort the query")
	}
}

// TestExchangeMidFlightCancellation: cancelling the context while the
// client is blocked on a dead server must abort promptly — interrupting
// the in-flight read and skipping the remaining retry budget — and the
// error must be the cancellation, not a timeout wrap.
func TestExchangeMidFlightCancellation(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A generous per-attempt timeout and a deep retry budget: without
	// cancellation this exchange would block for ~10s.
	c := New(Config{Timeout: time.Second, Retries: 10})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Query(ctx, conn.LocalAddr().String(), "example.com", dnswire.TypeA, dnswire.ClassINET)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled exchange = %v, want context.Canceled in chain", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancelled exchange took %v; retries kept burning after cancellation", elapsed)
	}
}

func TestIgnoresForgedResponses(t *testing.T) {
	// A server that first sends a response with the wrong ID, then the
	// real answer: the client must skip the forgery and accept the real one.
	srv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		buf := make([]byte, 4096)
		n, peer, err := srv.ReadFrom(buf)
		if err != nil {
			return
		}
		q, err := dnswire.Unpack(buf[:n])
		if err != nil {
			return
		}
		forged := q.Reply()
		forged.ID ^= 0xFFFF
		fp, _ := forged.Pack()
		srv.WriteTo(fp, peer)

		real := q.Reply()
		real.Answers = []dnswire.RR{{
			Name: q.Questions[0].Name, Class: dnswire.ClassINET, TTL: 60,
			Data: dnswire.TXT{Text: []string{"genuine"}},
		}}
		rp, _ := real.Pack()
		srv.WriteTo(rp, peer)
	}()
	c := New(Config{Timeout: time.Second})
	resp, err := c.Query(context.Background(), srv.LocalAddr().String(), "example.com", dnswire.TypeTXT, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("got %d answers", len(resp.Answers))
	}
	if txt := resp.Answers[0].Data.(dnswire.TXT).Text[0]; txt != "genuine" {
		t.Errorf("accepted %q", txt)
	}
}

func TestNextIDVaries(t *testing.T) {
	c := New(Config{})
	seen := map[uint16]bool{}
	for i := 0; i < 64; i++ {
		seen[c.nextID()] = true
	}
	if len(seen) < 32 {
		t.Errorf("nextID produced only %d distinct values in 64 draws", len(seen))
	}
}
