// Package dnsclient implements a DNS query client: UDP with retries and
// timeouts, automatic TCP fallback on truncation, and response sanity
// checks (ID match, question echo). It is the transport the survey
// crawler uses when talking to real sockets.
package dnsclient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnswire"
)

// Errors surfaced by Exchange.
var (
	// ErrIDMismatch indicates a response whose ID differs from the query;
	// the response is discarded and the read retried until the deadline.
	ErrIDMismatch = errors.New("dnsclient: response ID mismatch")
	// ErrQuestionMismatch indicates a response echoing a different question.
	ErrQuestionMismatch = errors.New("dnsclient: response question mismatch")
	// ErrTimeout indicates all retries were exhausted.
	ErrTimeout = errors.New("dnsclient: query timed out")
)

// Config tunes a Client. The zero value gets sensible survey defaults.
type Config struct {
	// Timeout bounds one query attempt; default 2s.
	Timeout time.Duration
	// Retries is the number of UDP attempts before giving up; default 2.
	Retries int
	// DisableTCPFallback turns off the RFC-mandated retry-over-TCP on
	// truncation (useful for testing truncation behaviour itself).
	DisableTCPFallback bool
}

// Client issues DNS queries. It is safe for concurrent use.
type Client struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// New creates a Client.
func New(cfg Config) *Client {
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	return &Client{
		cfg: cfg,
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (c *Client) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return uint16(c.rng.Intn(1 << 16))
}

// Query sends a single question to addr and returns the validated reply.
func (c *Client) Query(ctx context.Context, addr, name string, typ dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	msg := dnswire.NewQuery(c.nextID(), dnsname.Canonical(name), typ, class)
	return c.Exchange(ctx, addr, msg)
}

// VersionBind probes addr for its version.bind banner. It returns the
// banner, or "" when the server hides it (REFUSED or empty answers) —
// matching the survey's optimistic treatment of hidden servers.
func (c *Client) VersionBind(ctx context.Context, addr string) (string, error) {
	resp, err := c.Query(ctx, addr, "version.bind", dnswire.TypeTXT, dnswire.ClassCHAOS)
	if err != nil {
		return "", err
	}
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
		return "", nil
	}
	if txt, ok := resp.Answers[0].Data.(dnswire.TXT); ok && len(txt.Text) > 0 {
		return txt.Text[0], nil
	}
	return "", nil
}

// Exchange performs the UDP query/response round trip for msg against
// addr, retrying on timeouts and falling back to TCP when the response
// arrives truncated.
//
// Cancellation is honored between and during attempts: the context is
// re-checked before every UDP retry — a cancelled crawl stops burning
// the retry budget on a dead server — an in-flight read is interrupted
// the moment the context is cancelled, and a cancelled exchange reports
// the context's error rather than masquerading as ErrTimeout.
func (c *Client) Exchange(ctx context.Context, addr string, msg *dnswire.Message) (*dnswire.Message, error) {
	pkt, err := msg.Pack()
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := c.exchangeUDP(ctx, addr, msg, pkt)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Truncated && !c.cfg.DisableTCPFallback {
			tcpResp, err := c.exchangeTCP(ctx, addr, msg, pkt)
			if err != nil {
				lastErr = err
				continue
			}
			return tcpResp, nil
		}
		return resp, nil
	}
	if err := ctx.Err(); err != nil {
		// The final attempt died of cancellation, not of a slow server.
		return nil, err
	}
	if lastErr == nil {
		lastErr = ErrTimeout
	}
	return nil, fmt.Errorf("%w (after %d attempts): %w", ErrTimeout, c.cfg.Retries, lastErr)
}

// watchCancel interrupts conn's blocked reads/writes when ctx is
// cancelled by slamming the deadline to the past. The returned stop
// function releases the watcher; call it before closing the conn.
func watchCancel(ctx context.Context, conn net.Conn) (stop func()) {
	cancel := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Unix(1, 0))
	})
	return func() { cancel() }
}

func (c *Client) exchangeUDP(ctx context.Context, addr string, msg *dnswire.Message, pkt []byte) (*dnswire.Message, error) {
	d := net.Dialer{Timeout: c.cfg.Timeout}
	conn, err := d.DialContext(ctx, "udp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(c.cfg.Timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	// Armed after the deadline is set: a cancellation landing in between
	// would otherwise be overwritten by the future deadline. (An
	// already-cancelled ctx fires the watcher immediately, leaving the
	// past deadline in place.)
	defer watchCancel(ctx, conn)()
	if _, err := conn.Write(pkt); err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue // garbage datagram; keep listening until deadline
		}
		if err := validate(msg, resp); err != nil {
			continue // mismatched ID/question: not our answer
		}
		return resp, nil
	}
}

func (c *Client) exchangeTCP(ctx context.Context, addr string, msg *dnswire.Message, pkt []byte) (*dnswire.Message, error) {
	d := net.Dialer{Timeout: c.cfg.Timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(c.cfg.Timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	// See exchangeUDP: armed after the deadline so cancellation wins.
	defer watchCancel(ctx, conn)()
	out := make([]byte, 2+len(pkt))
	out[0], out[1] = byte(len(pkt)>>8), byte(len(pkt))
	copy(out[2:], pkt)
	if _, err := conn.Write(out); err != nil {
		return nil, err
	}
	var lenbuf [2]byte
	if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
		return nil, err
	}
	msglen := int(lenbuf[0])<<8 | int(lenbuf[1])
	body := make([]byte, msglen)
	if _, err := io.ReadFull(conn, body); err != nil {
		return nil, err
	}
	resp, err := dnswire.Unpack(body)
	if err != nil {
		return nil, err
	}
	if err := validate(msg, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// validate enforces that resp answers msg: matching ID, QR set, and the
// question echoed verbatim.
func validate(msg, resp *dnswire.Message) error {
	if resp.ID != msg.ID {
		return ErrIDMismatch
	}
	if !resp.Response {
		return ErrQuestionMismatch
	}
	if len(resp.Questions) != len(msg.Questions) {
		return ErrQuestionMismatch
	}
	for i := range msg.Questions {
		if resp.Questions[i] != msg.Questions[i] {
			return ErrQuestionMismatch
		}
	}
	return nil
}
