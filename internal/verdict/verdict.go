// Package verdict turns the monitor's transitive-trust measurements into
// wire-speed policy decisions. A Verdict classifies one name as allow,
// flag, or refuse based on the size of its trusted computing base, the
// width of its delegation bottleneck, and the presence of vulnerable or
// outright hijackable servers in its chain — the enforcement point the
// paper's offline measurement implies: somewhere a resolver must turn
// "this chain is too trusting" into an answer-path decision.
//
// Evaluate computes a single verdict against a survey; Cache (cache.go)
// memoizes verdicts per name behind a lock-free read path and keeps them
// consistent across generation commits.
package verdict

import (
	"strings"

	"dnstrust/internal/analysis"
	"dnstrust/internal/crawler"
	"dnstrust/internal/dnsname"
)

// Level is the policy outcome for a name.
type Level uint8

const (
	// Allow serves the answer silently.
	Allow Level = iota
	// Flag serves the answer but logs the concern.
	Flag
	// Refuse answers REFUSED without contacting upstream.
	Refuse
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case Allow:
		return "allow"
	case Flag:
		return "flag"
	case Refuse:
		return "refuse"
	}
	return "invalid"
}

// Reason is a bitmask of the findings behind a verdict.
type Reason uint16

const (
	// ReasonUnknown marks a name the monitor has never surveyed; the
	// verdict is provisional and the name is queued for a crawl.
	ReasonUnknown Reason = 1 << iota
	// ReasonUnresolved marks a name the crawler tried and failed to walk.
	ReasonUnresolved
	// ReasonExcessiveTCB marks a trusted computing base above Policy.MaxTCB.
	ReasonExcessiveTCB
	// ReasonNarrowCut marks a delegation bottleneck of Policy.NarrowCut
	// or fewer servers.
	ReasonNarrowCut
	// ReasonVulnerable marks a DoS-class vulnerable server in the TCB.
	ReasonVulnerable
	// ReasonCompromisable marks a hijackable (exec- or poison-class
	// vulnerable) server in the TCB.
	ReasonCompromisable
	// ReasonVulnerableCut marks a minimum cut made up entirely of
	// vulnerable servers: one exploit sweep controls the name.
	ReasonVulnerableCut
)

var reasonNames = []struct {
	bit  Reason
	name string
}{
	{ReasonUnknown, "unknown"},
	{ReasonUnresolved, "unresolved"},
	{ReasonExcessiveTCB, "excessive-tcb"},
	{ReasonNarrowCut, "narrow-cut"},
	{ReasonVulnerable, "vulnerable-dependency"},
	{ReasonCompromisable, "compromisable-dependency"},
	{ReasonVulnerableCut, "vulnerable-cut"},
}

// Strings expands the bitmask into stable reason labels.
func (r Reason) Strings() []string {
	var out []string
	for _, rn := range reasonNames {
		if r&rn.bit != 0 {
			out = append(out, rn.name)
		}
	}
	return out
}

// String joins the reason labels with commas ("" for an empty mask).
func (r Reason) String() string { return strings.Join(r.Strings(), ",") }

// Policy sets the thresholds that map measurements to levels.
//
// The level logic mirrors the audit package's severity taxonomy:
// hijackable dependencies and all-vulnerable cuts refuse (an attacker
// who runs the listed exploit controls the answer), while size and
// width concerns — and names the monitor cannot yet vouch for — only
// flag, because they measure exposure, not a live compromise.
type Policy struct {
	// MaxTCB flags names whose trusted computing base exceeds this many
	// servers. Zero means the paper-calibrated default (100, the tail
	// the paper calls out); negative disables the check.
	MaxTCB int
	// NarrowCut flags names whose minimum delegation cut is this many
	// servers or fewer. Zero means the default (1: a single point of
	// subversion); negative disables the check.
	NarrowCut int
	// FlagOnly downgrades every Refuse to Flag — monitor mode for
	// operators who want the log stream before they trust the policy
	// with user traffic.
	FlagOnly bool
}

func (p Policy) withDefaults() Policy {
	if p.MaxTCB == 0 {
		p.MaxTCB = 100
	}
	if p.NarrowCut == 0 {
		p.NarrowCut = 1
	}
	return p
}

// Verdict is one immutable policy decision. Instances are shared across
// goroutines by the cache and must never be mutated after Evaluate.
type Verdict struct {
	// Name is the canonical name the verdict is for.
	Name string
	// Level is the policy outcome.
	Level Level
	// Reasons is the bitmask of findings behind the level.
	Reasons Reason
	// Generation stamps the survey generation the verdict was computed
	// from.
	Generation int64
	// TCBSize is the trusted computing base size, -1 when unknown.
	TCBSize int
	// Cut is the minimum delegation cut size, -1 when not computable.
	Cut int
	// SafeInCut is the number of non-vulnerable servers in that cut,
	// -1 when not computable.
	SafeInCut int
	// Provisional marks a verdict issued before the name was ever
	// surveyed; a crawl has been queued and the next lookup after it
	// lands sees the real verdict.
	Provisional bool
}

// Evaluate computes the verdict for name against one survey. The memo
// amortizes min-cut computations across names sharing a chain and across
// generations; it must be safe for concurrent use (analysis.ChainMemo is).
func Evaluate(s *crawler.Survey, memo *analysis.ChainMemo, p Policy, name string) *Verdict {
	p = p.withDefaults()
	name = dnsname.Canonical(name)
	v := &Verdict{
		Name:       name,
		Generation: s.Stats.Generation,
		TCBSize:    -1,
		Cut:        -1,
		SafeInCut:  -1,
	}

	tcb, err := s.Graph.TCBIDs(name)
	if err != nil {
		if _, failed := s.Failed[name]; failed {
			v.Reasons |= ReasonUnresolved
		} else {
			v.Reasons |= ReasonUnknown
			v.Provisional = true
		}
		v.Level = Flag
		return v
	}

	v.TCBSize = len(tcb)
	for _, hid := range tcb {
		host := s.Graph.Host(hid)
		if s.Compromisable(host) {
			v.Reasons |= ReasonCompromisable
		} else if s.Vulnerable(host) {
			v.Reasons |= ReasonVulnerable
		}
	}
	if p.MaxTCB > 0 && v.TCBSize > p.MaxTCB {
		v.Reasons |= ReasonExcessiveTCB
	}
	if res, err := analysis.BottleneckOfMemo(s, name, memo); err == nil {
		v.Cut = res.Size
		v.SafeInCut = res.SafeInCut
		if p.NarrowCut > 0 && res.Size <= p.NarrowCut {
			v.Reasons |= ReasonNarrowCut
		}
		if res.Size > 0 && res.SafeInCut == 0 && res.VulnInCut > 0 {
			v.Reasons |= ReasonVulnerableCut
		}
	}

	switch {
	case v.Reasons&(ReasonCompromisable|ReasonVulnerableCut) != 0:
		v.Level = Refuse
		if p.FlagOnly {
			v.Level = Flag
		}
	case v.Reasons != 0:
		v.Level = Flag
	default:
		v.Level = Allow
	}
	return v
}
