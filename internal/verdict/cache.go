package verdict

import (
	"context"
	"fmt"
	"maps"
	"sync"
	"sync/atomic"
	"time"

	"dnstrust/internal/analysis"
	"dnstrust/internal/core"
	"dnstrust/internal/crawler"
	"dnstrust/internal/dnsname"
)

// Config configures a Cache.
type Config struct {
	// Policy sets the verdict thresholds (zero value = defaults).
	Policy Policy
	// TTL bounds how long a cached verdict is served before it is
	// recomputed against the current survey. Zero means one minute.
	// Generation commits invalidate changed names immediately
	// regardless of TTL; the TTL only ages verdicts whose inputs the
	// journal never touched (e.g. a failed walk that might now succeed).
	TTL time.Duration
	// Add, when non-nil, is called from a background goroutine with
	// batches of never-seen names so the monitor can crawl them. Wire it
	// to Monitor.Add. Lookups never wait on it: they return a
	// provisional Flag verdict immediately.
	Add func(ctx context.Context, names ...string) error
	// MaxQueue bounds the background Add queue; when full, new names
	// are dropped (counted in Stats.Dropped) and retried on a later
	// miss. Zero means 1024.
	MaxQueue int
	// AddBatch caps how many queued names are handed to one Add call.
	// Zero means 256.
	AddBatch int
	// AddLinger is how long the add worker waits to fill a batch after
	// the first queued name. Zero means 25ms.
	AddLinger time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.TTL == 0 {
		cfg.TTL = time.Minute
	}
	// Clamp so exp = now + TTL cannot overflow the monotonic clock.
	if max := 100 * 365 * 24 * time.Hour; cfg.TTL > max {
		cfg.TTL = max
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 1024
	}
	if cfg.AddBatch == 0 {
		cfg.AddBatch = 256
	}
	if cfg.AddLinger == 0 {
		cfg.AddLinger = 25 * time.Millisecond
	}
	return cfg
}

const numShards = 64 // power of two; shardFor masks into it

// entry is one cached verdict with its expiry (nanoseconds on the
// cache's monotonic clock).
type entry struct {
	v   *Verdict
	exp int64
}

type entryMap = map[string]*entry

// flightCall deduplicates concurrent miss computations for one name.
type flightCall struct {
	done chan struct{}
	v    *Verdict
	g    uint64 // commit sequence the computation started under
}

// shard is one lock striped slice of the cache. Reads go through ptr
// only; writers clone the map under mu and publish the clone, so the
// hit path never takes a lock and never observes a partial update.
type shard struct {
	ptr    atomic.Pointer[entryMap]
	mu     sync.Mutex
	flight map[string]*flightCall
}

// Cache memoizes per-name verdicts behind a lock-free, zero-allocation
// hit path. It is the serving-side counterpart of the Monitor: reads
// scale across cores while Advance — called at each generation commit —
// swaps in the new survey and evicts exactly the names whose chains the
// commit's change journal touched, never the whole cache.
type Cache struct {
	cfg  Config
	memo *analysis.ChainMemo
	base time.Time

	// cur is the survey verdicts are computed against. seq counts
	// Advance calls; a miss records seq before loading cur and only
	// publishes its verdict if seq is unchanged after the computation,
	// so a verdict computed against a pre-commit survey can never be
	// inserted after that commit's eviction pass already ran. Ordering:
	// Advance stores cur before bumping seq, and misses read seq before
	// cur — observing the new seq therefore implies loading the new
	// survey.
	cur atomic.Pointer[crawler.Survey]
	seq atomic.Uint64

	shards [numShards]shard

	advMu sync.Mutex // serializes Advance

	// Background add queue for never-seen names.
	queue     chan string
	pendMu    sync.Mutex
	pending   map[string]struct{}
	stopc     chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	hits        atomic.Uint64
	misses      atomic.Uint64
	provisional atomic.Uint64
	evicted     atomic.Uint64
	flushes     atomic.Uint64
	staleSkips  atomic.Uint64
	enqueued    atomic.Uint64
	dropped     atomic.Uint64
	addBatches  atomic.Uint64
	addFailures atomic.Uint64
}

// NewCache builds a cache serving verdicts against the given survey
// (typically Monitor.At().Survey() at boot). Call Advance from the
// monitor's commit hook to keep it consistent, and Close to stop the
// background add worker.
func NewCache(initial *crawler.Survey, cfg Config) (*Cache, error) {
	if initial == nil {
		return nil, fmt.Errorf("verdict: initial survey is nil")
	}
	cfg = cfg.withDefaults()
	c := &Cache{
		cfg:     cfg,
		memo:    analysis.NewChainMemo(),
		base:    time.Now(),
		pending: make(map[string]struct{}),
		stopc:   make(chan struct{}),
	}
	c.cur.Store(initial)
	for i := range c.shards {
		m := make(entryMap)
		c.shards[i].ptr.Store(&m)
		c.shards[i].flight = make(map[string]*flightCall)
	}
	if cfg.Add != nil {
		c.queue = make(chan string, cfg.MaxQueue)
		c.wg.Add(1)
		go c.runAdder()
	}
	return c, nil
}

// Close stops the background add worker. It does not wait for lookups.
func (c *Cache) Close() error {
	c.closeOnce.Do(func() {
		close(c.stopc)
		c.wg.Wait()
	})
	return nil
}

// now is the cache's monotonic clock in nanoseconds.
func (c *Cache) now() int64 { return int64(time.Since(c.base)) }

// shardIndex hashes a canonical name onto a shard (inlined FNV-1a so
// the hit path does not allocate).
func shardIndex(name string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int(h & (numShards - 1))
}

func (c *Cache) shardFor(name string) *shard { return &c.shards[shardIndex(name)] }

// Lookup returns the verdict for name, computing and caching it on a
// miss. The hit path is lock-free and allocation-free: an atomic map
// load, one hash, and an expiry check. Lookup never blocks on crawling —
// unknown names get a provisional Flag verdict and a queued crawl.
//
//lint:hotpath
func (c *Cache) Lookup(name string) *Verdict {
	name = dnsname.Canonical(name)
	sh := c.shardFor(name)
	if e := (*sh.ptr.Load())[name]; e != nil && e.exp > c.now() {
		c.hits.Add(1)
		return e.v
	}
	return c.miss(sh, name)
}

// miss computes the verdict for name with single-flight deduplication
// and publishes it unless a generation commit happened mid-computation.
func (c *Cache) miss(sh *shard, name string) *Verdict {
	c.misses.Add(1)
	for {
		sh.mu.Lock()
		// Recheck under the lock: another flight may have landed.
		if e := (*sh.ptr.Load())[name]; e != nil && e.exp > c.now() {
			sh.mu.Unlock()
			return e.v
		}
		if fc, ok := sh.flight[name]; ok {
			sh.mu.Unlock()
			<-fc.done
			if fc.g == c.seq.Load() {
				return fc.v
			}
			// The flight computed against a survey that was replaced
			// while we waited; its verdict may predate an eviction we
			// must respect. Recompute.
			c.staleSkips.Add(1)
			continue
		}
		fc := &flightCall{done: make(chan struct{})}
		sh.flight[name] = fc
		sh.mu.Unlock()

		// seq before cur: seeing the post-commit seq implies cur is the
		// post-commit survey (Advance stores cur first).
		fc.g = c.seq.Load()
		sv := c.cur.Load()
		v := Evaluate(sv, c.memo, c.cfg.Policy, name)
		fc.v = v
		if v.Provisional {
			c.provisional.Add(1)
			c.enqueue(name)
		}

		sh.mu.Lock()
		delete(sh.flight, name)
		if fc.g == c.seq.Load() {
			old := sh.ptr.Load()
			nm := maps.Clone(*old)
			nm[name] = &entry{v: v, exp: c.now() + int64(c.cfg.TTL)}
			sh.ptr.Store(&nm)
		} else {
			// A commit ran while we computed: serve the verdict to this
			// caller but do not publish it past the eviction pass.
			c.staleSkips.Add(1)
		}
		sh.mu.Unlock()
		close(fc.done)
		return v
	}
}

// Advance swaps the cache onto a freshly committed survey and evicts the
// names the commit changed. When the new survey shares its interned
// store with the old one and the change journal is complete (the normal
// monitor path), eviction is precise: only names whose chain mapping
// changed, or that sit on a chain whose membership or host set changed,
// are dropped. Otherwise — a different store entirely, or a pruned
// journal — the whole cache is flushed (counted in Stats.Flushes).
//
// Call it from the monitor's commit hook. Concurrent lookups are safe:
// a lookup that starts after Advance returns is guaranteed not to serve
// a verdict computed against the pre-commit survey for any evicted name.
func (c *Cache) Advance(next *crawler.Survey) {
	if next == nil {
		return
	}
	c.advMu.Lock()
	defer c.advMu.Unlock()
	prev := c.cur.Load()
	if next == prev {
		return
	}
	// The memo must be valid for next before any miss computes from it.
	c.memo.Advance(prev, next)
	c.cur.Store(next)
	c.seq.Add(1)

	og, ng := prev.Graph, next.Graph
	if og != nil && ng != nil && ng.SharesStore(og) &&
		og.Epoch() <= ng.Epoch() && ng.JournalComplete(og.Epoch()) {
		c.evict(c.changedNames(og.Epoch(), ng))
		return
	}
	c.flush()
}

// changedNames collects every name the journal marks as changed since
// epoch: names whose chain mapping moved plus every name riding a chain
// whose membership or host set changed.
func (c *Cache) changedNames(epoch int64, ng *core.Graph) []string {
	names := ng.NamesTouchedSince(epoch)
	seen := make(map[string]struct{}, len(names))
	for _, n := range names {
		seen[n] = struct{}{}
	}
	for _, cid := range ng.ChainsChangedSince(epoch) {
		for _, n := range ng.NamesOnChain(cid) {
			if _, ok := seen[n]; !ok {
				seen[n] = struct{}{}
				names = append(names, n)
			}
		}
	}
	return names
}

// evict drops the given names, cloning each touched shard map once.
func (c *Cache) evict(names []string) {
	if len(names) == 0 {
		return
	}
	var byShard [numShards][]string
	for _, n := range names {
		i := shardIndex(n)
		byShard[i] = append(byShard[i], n)
	}
	for i := range byShard {
		victims := byShard[i]
		if len(victims) == 0 {
			continue
		}
		sh := &c.shards[i]
		sh.mu.Lock()
		old := *sh.ptr.Load()
		hit := 0
		for _, n := range victims {
			if _, ok := old[n]; ok {
				hit++
			}
		}
		if hit > 0 {
			nm := make(entryMap, len(old)-hit)
			drop := make(map[string]struct{}, len(victims))
			for _, n := range victims {
				drop[n] = struct{}{}
			}
			for k, e := range old {
				if _, gone := drop[k]; !gone {
					nm[k] = e
				}
			}
			sh.ptr.Store(&nm)
			c.evicted.Add(uint64(hit))
		}
		sh.mu.Unlock()
	}
}

// flush drops every entry (survey store changed or journal incomplete).
func (c *Cache) flush() {
	c.flushes.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n := len(*sh.ptr.Load())
		m := make(entryMap)
		sh.ptr.Store(&m)
		c.evicted.Add(uint64(n))
		sh.mu.Unlock()
	}
}

// enqueue hands a never-seen name to the background add worker without
// blocking; duplicates already queued or in flight are suppressed.
func (c *Cache) enqueue(name string) {
	if c.queue == nil {
		return
	}
	c.pendMu.Lock()
	if _, ok := c.pending[name]; ok {
		c.pendMu.Unlock()
		return
	}
	select {
	case c.queue <- name:
		c.pending[name] = struct{}{}
		c.pendMu.Unlock()
		c.enqueued.Add(1)
	default:
		c.pendMu.Unlock()
		c.dropped.Add(1)
	}
}

// runAdder drains the queue in batches and hands them to cfg.Add.
func (c *Cache) runAdder() {
	defer c.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-c.stopc
		cancel()
	}()
	for {
		var first string
		select {
		case <-c.stopc:
			return
		case first = <-c.queue:
		}
		batch := []string{first}
		linger := time.NewTimer(c.cfg.AddLinger)
	gather:
		for len(batch) < c.cfg.AddBatch {
			select {
			case n := <-c.queue:
				batch = append(batch, n)
			case <-linger.C:
				break gather
			case <-c.stopc:
				linger.Stop()
				return
			}
		}
		linger.Stop()
		if err := c.cfg.Add(ctx, batch...); err != nil {
			c.addFailures.Add(1)
		} else {
			c.addBatches.Add(1)
			// The commit's change journal only covers names that walked;
			// a name whose crawl failed outright never appears in it, so
			// its provisional entry would outlive the commit until TTL.
			// Evict the whole batch: Add's commit hook has already run
			// (hooks fire inside Add), so the next lookup recomputes
			// against the committed survey and failed names turn into
			// definitive "unresolved" flags.
			c.evict(batch)
		}
		c.pendMu.Lock()
		for _, n := range batch {
			delete(c.pending, n)
		}
		c.pendMu.Unlock()
	}
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Size is the number of cached verdicts (including expired ones not
	// yet overwritten).
	Size int
	// Generation is the survey generation verdicts are computed against.
	Generation int64
	// Hits and Misses count Lookup outcomes on the fast path.
	Hits, Misses uint64
	// Provisional counts verdicts issued for never-seen names.
	Provisional uint64
	// Evicted counts entries dropped by Advance; Flushes counts the
	// full-cache drops (0 on the normal shared-store monitor path).
	Evicted, Flushes uint64
	// StaleSkips counts miss computations discarded because a commit
	// landed mid-computation.
	StaleSkips uint64
	// Enqueued, Dropped, AddBatches, AddFailures describe the
	// background crawl queue.
	Enqueued, Dropped, AddBatches, AddFailures uint64
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Generation:  c.cur.Load().Stats.Generation,
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Provisional: c.provisional.Load(),
		Evicted:     c.evicted.Load(),
		Flushes:     c.flushes.Load(),
		StaleSkips:  c.staleSkips.Load(),
		Enqueued:    c.enqueued.Load(),
		Dropped:     c.dropped.Load(),
		AddBatches:  c.addBatches.Load(),
		AddFailures: c.addFailures.Load(),
	}
	for i := range c.shards {
		st.Size += len(*c.shards[i].ptr.Load())
	}
	return st
}

// Survey returns the survey verdicts are currently computed against.
func (c *Cache) Survey() *crawler.Survey { return c.cur.Load() }
