package verdict_test

import (
	"context"
	"testing"
	"time"

	"dnstrust/internal/analysis"
	"dnstrust/internal/crawler"
	"dnstrust/internal/topology"
	"dnstrust/internal/verdict"
)

// policyWorld is a hand-built world with one name per policy outcome:
// www.fbi.gov rides the paper's §3.2 chain with a hijackable BIND 8.2.4
// server (refuse), www.example.com has a clean two-server chain (allow),
// and www.solo.com hangs off a single-server zone (flag: narrow cut).
func policyWorld(t *testing.T) *topology.World {
	t.Helper()
	b := topology.NewWorld()
	gov := []string{"a.gov-servers.net", "b.gov-servers.net"}
	gtld := []string{"a.gtld-servers.net", "b.gtld-servers.net", "c.gtld-servers.net"}
	b.Zone("com", gtld...)
	b.Zone("net", gtld...)
	b.Zone("gov", gov...)
	b.Zone("gov-servers.net", gov...)
	b.Zone("gtld-servers.net", gtld...)

	b.Zone("fbi.gov", "dns.sprintip.com", "dns2.sprintip.com")
	b.Zone("sprintip.com",
		"reston-ns1.telemail.net", "reston-ns2.telemail.net", "reston-ns3.telemail.net")
	b.Zone("telemail.net",
		"reston-ns1.telemail.net", "reston-ns2.telemail.net", "reston-ns3.telemail.net")
	b.SetBanner("dns.sprintip.com", "BIND 9.2.2")
	b.SetBanner("dns2.sprintip.com", "BIND 9.2.2")
	b.SetBanner("reston-ns1.telemail.net", "BIND 9.2.3")
	b.SetBanner("reston-ns2.telemail.net", "BIND 8.2.4") // hijackable
	b.Host("www.fbi.gov")

	b.Zone("example.com", "ns1.example.com", "ns2.example.com")
	b.SetBanner("ns1.example.com", "BIND 9.2.3")
	b.SetBanner("ns2.example.com", "BIND 9.2.3")
	b.Host("www.example.com")

	b.Zone("solo.com", "ns1.solo.com")
	b.SetBanner("ns1.solo.com", "BIND 9.2.3")
	b.Host("www.solo.com")

	return &topology.World{
		Registry: b.Finalize(),
		Corpus:   []string{"www.fbi.gov", "www.example.com", "www.solo.com"},
	}
}

func openEngine(t *testing.T, world *topology.World) *crawler.Engine {
	t.Helper()
	tr := world.Registry.Source()
	r, err := world.Registry.Resolver(tr)
	if err != nil {
		t.Fatal(err)
	}
	e, err := crawler.NewEngine(r, world.Registry.ProbeFunc(tr), crawler.Config{Workers: 4, Source: tr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestEvaluateLevels(t *testing.T) {
	world := policyWorld(t)
	e := openEngine(t, world)
	s, err := e.Add(context.Background(), world.Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	memo := analysis.NewChainMemo()

	v := verdict.Evaluate(s, memo, verdict.Policy{}, "www.fbi.gov")
	if v.Level != verdict.Refuse || v.Reasons&verdict.ReasonCompromisable == 0 {
		t.Errorf("www.fbi.gov = %s (%s), want refuse/compromisable", v.Level, v.Reasons)
	}
	if v.TCBSize < 1 || v.Generation != s.Stats.Generation {
		t.Errorf("www.fbi.gov tcb=%d gen=%d", v.TCBSize, v.Generation)
	}

	v = verdict.Evaluate(s, memo, verdict.Policy{}, "www.example.com")
	if v.Level != verdict.Allow || v.Reasons != 0 {
		t.Errorf("www.example.com = %s (%s), want allow", v.Level, v.Reasons)
	}

	v = verdict.Evaluate(s, memo, verdict.Policy{}, "www.solo.com")
	if v.Level != verdict.Flag || v.Reasons&verdict.ReasonNarrowCut == 0 {
		t.Errorf("www.solo.com = %s (%s), want flag/narrow-cut", v.Level, v.Reasons)
	}
	if v.Cut != 1 {
		t.Errorf("www.solo.com cut = %d, want 1", v.Cut)
	}

	// A tight TCB budget flags even the clean chain.
	v = verdict.Evaluate(s, memo, verdict.Policy{MaxTCB: 2}, "www.example.com")
	if v.Level != verdict.Flag || v.Reasons&verdict.ReasonExcessiveTCB == 0 {
		t.Errorf("tight MaxTCB: %s (%s), want flag/excessive-tcb", v.Level, v.Reasons)
	}

	// FlagOnly downgrades the refuse to a flag, keeping the reasons.
	v = verdict.Evaluate(s, memo, verdict.Policy{FlagOnly: true}, "www.fbi.gov")
	if v.Level != verdict.Flag || v.Reasons&verdict.ReasonCompromisable == 0 {
		t.Errorf("FlagOnly: %s (%s), want flag/compromisable", v.Level, v.Reasons)
	}

	// Never-seen names are provisional flags; failed walks are not.
	v = verdict.Evaluate(s, memo, verdict.Policy{}, "www.never-seen.org")
	if v.Level != verdict.Flag || !v.Provisional || v.Reasons&verdict.ReasonUnknown == 0 {
		t.Errorf("unknown name: %s (%s, provisional=%v)", v.Level, v.Reasons, v.Provisional)
	}
	if s, err = e.Add(context.Background(), "www.no-such-tld.zzz"); err != nil {
		t.Fatal(err)
	}
	v = verdict.Evaluate(s, memo, verdict.Policy{}, "www.no-such-tld.zzz")
	if v.Level != verdict.Flag || v.Provisional || v.Reasons&verdict.ReasonUnresolved == 0 {
		t.Errorf("failed name: %s (%s, provisional=%v), want flag/unresolved", v.Level, v.Reasons, v.Provisional)
	}
}

func newCache(t *testing.T, s *crawler.Survey, cfg verdict.Config) *verdict.Cache {
	t.Helper()
	c, err := verdict.NewCache(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCacheHitAndTTL(t *testing.T) {
	world := policyWorld(t)
	e := openEngine(t, world)
	s, err := e.Add(context.Background(), world.Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	c := newCache(t, s, verdict.Config{TTL: 50 * time.Millisecond})

	v1 := c.Lookup("www.example.com")
	v2 := c.Lookup("www.example.com")
	if v1 != v2 {
		t.Error("second lookup should serve the cached verdict")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
	// Case-insensitive: hits the same entry without recomputing.
	if got := c.Lookup("WWW.Example.COM."); got != v1 {
		t.Error("lookup must canonicalize before hashing")
	}

	time.Sleep(60 * time.Millisecond)
	v3 := c.Lookup("www.example.com")
	if v3 == v1 {
		t.Error("expired verdict must be recomputed")
	}
	if got := c.Stats().Misses; got != 2 {
		t.Errorf("misses after TTL expiry = %d, want 2", got)
	}
}

// TestCacheHitPathZeroAlloc is the acceptance gate on the hot path: a
// warm lookup must not allocate.
//
// alloc-gate: dnstrust/internal/verdict.(*Cache).Lookup
func TestCacheHitPathZeroAlloc(t *testing.T) {
	world := policyWorld(t)
	e := openEngine(t, world)
	s, err := e.Add(context.Background(), world.Corpus...)
	if err != nil {
		t.Fatal(err)
	}
	c := newCache(t, s, verdict.Config{TTL: time.Hour})
	for _, n := range world.Corpus {
		c.Lookup(n)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if c.Lookup("www.example.com") == nil {
			t.Fatal("nil verdict")
		}
	})
	if allocs != 0 {
		t.Errorf("hit path allocates %.1f objects per lookup, want 0", allocs)
	}
}

// TestAdvancePreciseInvalidation checks that a generation commit evicts
// exactly the names the change journal touched: the warm verdict for an
// untouched name survives by pointer identity (no full flush), while a
// provisional verdict for a name the commit surveyed is dropped and
// replaced on the next lookup.
func TestAdvancePreciseInvalidation(t *testing.T) {
	world := policyWorld(t)
	e := openEngine(t, world)
	ctx := context.Background()
	s, err := e.Add(ctx, "www.fbi.gov", "www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	c := newCache(t, s, verdict.Config{TTL: time.Hour})

	warm := c.Lookup("www.example.com")
	prov := c.Lookup("www.solo.com")
	if !prov.Provisional {
		t.Fatalf("www.solo.com before its crawl should be provisional, got %+v", prov)
	}

	s2, err := e.Add(ctx, "www.solo.com")
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(s2)

	if got := c.Lookup("www.example.com"); got != warm {
		t.Error("untouched name was evicted — invalidation is not precise")
	}
	real := c.Lookup("www.solo.com")
	if real.Provisional || real.Level != verdict.Flag || real.Reasons&verdict.ReasonNarrowCut == 0 {
		t.Errorf("post-commit www.solo.com = %s (%s, provisional=%v), want real flag/narrow-cut",
			real.Level, real.Reasons, real.Provisional)
	}
	st := c.Stats()
	if st.Flushes != 0 {
		t.Errorf("flushes = %d, want 0 (same store, complete journal)", st.Flushes)
	}
	if st.Evicted == 0 {
		t.Error("commit should have evicted the surveyed name")
	}
}

// TestProvisionalAddLoop exercises the full never-seen-name loop: the
// first lookup answers provisionally and queues a crawl; once the crawl
// commits and Advance runs, lookups serve the real verdict.
func TestProvisionalAddLoop(t *testing.T) {
	world := policyWorld(t)
	e := openEngine(t, world)
	ctx := context.Background()
	s, err := e.Add(ctx, "www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	var c *verdict.Cache
	c = newCache(t, s, verdict.Config{
		TTL:       time.Hour,
		AddLinger: time.Millisecond,
		Add: func(ctx context.Context, names ...string) error {
			s, err := e.Add(ctx, names...)
			if err == nil {
				c.Advance(s)
			}
			return err
		},
	})

	v := c.Lookup("www.example.com")
	if !v.Provisional || v.Level != verdict.Flag {
		t.Fatalf("first lookup = %s (provisional=%v), want provisional flag", v.Level, v.Provisional)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		v = c.Lookup("www.example.com")
		if !v.Provisional {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("crawl never landed; still provisional (stats %+v)", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v.Level != verdict.Allow {
		t.Errorf("post-crawl verdict = %s (%s), want allow", v.Level, v.Reasons)
	}
	if st := c.Stats(); st.AddBatches == 0 || st.Enqueued == 0 {
		t.Errorf("add queue never ran: %+v", st)
	}
}

// TestProvisionalFailedNameUpgrades covers the journal blind spot: a name
// whose queued crawl fails outright never appears in the commit's change
// journal, so only the adder's explicit batch eviction can retire its
// provisional entry. The verdict must turn into a definitive (non-
// provisional) unresolved flag well before the TTL.
func TestProvisionalFailedNameUpgrades(t *testing.T) {
	world := policyWorld(t)
	e := openEngine(t, world)
	ctx := context.Background()
	s, err := e.Add(ctx, "www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	var c *verdict.Cache
	c = newCache(t, s, verdict.Config{
		TTL:       time.Hour,
		AddLinger: time.Millisecond,
		Add: func(ctx context.Context, names ...string) error {
			s, err := e.Add(ctx, names...)
			if err == nil {
				c.Advance(s)
			}
			return err
		},
	})

	const name = "www.no-such-tld.zzz"
	if v := c.Lookup(name); !v.Provisional {
		t.Fatalf("first lookup: want provisional, got %s (%s)", v.Level, v.Reasons)
	}
	deadline := time.Now().Add(5 * time.Second)
	v := c.Lookup(name)
	for v.Provisional {
		if time.Now().After(deadline) {
			t.Fatalf("failed-name verdict never upgraded (stats %+v)", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
		v = c.Lookup(name)
	}
	if v.Level != verdict.Flag || v.Reasons&verdict.ReasonUnresolved == 0 {
		t.Errorf("post-crawl verdict = %s (%s), want unresolved flag", v.Level, v.Reasons)
	}
}
