package verdict_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnstrust/internal/topology"
	"dnstrust/internal/verdict"
)

// TestPostCommitLookupNeverStale is the invalidation property test: run
// it under -race. While readers hammer Lookup across the corpus, a
// writer commits generations batch by batch; after every commit (Add +
// Advance), a lookup for any name the delta journal marked changed must
// return a verdict stamped with the post-commit generation — never one
// computed from the chain the journal said changed. Untouched warm names
// must meanwhile survive by pointer identity, proving the eviction was
// precise rather than a flush.
func TestPostCommitLookupNeverStale(t *testing.T) {
	world, err := topology.Generate(topology.GenParams{Seed: 77, Names: 300})
	if err != nil {
		t.Fatal(err)
	}
	e := openEngine(t, world)
	ctx := context.Background()

	half := len(world.Corpus) / 2
	s, err := e.Add(ctx, world.Corpus[:half]...)
	if err != nil {
		t.Fatal(err)
	}
	c := newCache(t, s, verdict.Config{TTL: 24 * time.Hour}) // no TTL aging within the test
	for _, n := range world.Corpus {
		c.Lookup(n) // warm, including provisional entries for the unadded half
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	var reads atomic.Uint64
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := g; ; i += 7 {
				select {
				case <-stop:
					return
				default:
				}
				if v := c.Lookup(world.Corpus[i%len(world.Corpus)]); v == nil {
					t.Error("nil verdict")
					return
				}
				reads.Add(1)
			}
		}(g)
	}

	const batch = 25
	commits := 0
	for i := half; i < len(world.Corpus); i += batch {
		end := i + batch
		if end > len(world.Corpus) {
			end = len(world.Corpus)
		}
		prevEpoch := c.Survey().Graph.Epoch()
		next, err := e.Add(ctx, world.Corpus[i:end]...)
		if err != nil {
			t.Fatal(err)
		}
		c.Advance(next)
		commits++

		// The property: every name the journal marked changed gets a
		// post-commit verdict from a post-commit lookup.
		changed := next.Graph.NamesTouchedSince(prevEpoch)
		for _, cid := range next.Graph.ChainsChangedSince(prevEpoch) {
			changed = append(changed, next.Graph.NamesOnChain(cid)...)
		}
		if len(changed) == 0 {
			t.Fatalf("commit %d touched no names — the property is vacuous", commits)
		}
		for _, n := range changed {
			v := c.Lookup(n)
			if v.Generation != next.Stats.Generation {
				t.Fatalf("commit %d: post-commit lookup of changed name %q served generation %d, want %d",
					commits, n, v.Generation, next.Stats.Generation)
			}
			if v.Provisional {
				t.Fatalf("commit %d: changed name %q still provisional after its crawl landed", commits, n)
			}
		}
	}
	close(stop)
	readers.Wait()

	st := c.Stats()
	if st.Flushes != 0 {
		t.Errorf("flushes = %d, want 0: every commit shares the store and has a complete journal", st.Flushes)
	}
	if st.Evicted == 0 {
		t.Error("no evictions across commits — invalidation never ran")
	}
	t.Logf("commits=%d reads=%d stats=%+v", commits, reads.Load(), st)
}
