package dnsname

import "testing"

func TestKindOf(t *testing.T) {
	cases := []struct {
		name string
		want Kind
	}{
		{"cornell.edu", KindGeneric},
		{"example.com", KindGeneric},
		{"www.rkc.lviv.ua", KindCountry},
		{"monash.edu.au", KindCountry},
		{"in-addr.arpa", KindInfra},
		{"example.invalidtld", KindUnknown},
		{"", KindUnknown},
	}
	for _, c := range cases {
		if got := KindOf(c.name); got != c.want {
			t.Errorf("KindOf(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindGeneric: "gTLD", KindCountry: "ccTLD", KindInfra: "infra", KindUnknown: "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestIsTLD(t *testing.T) {
	for name, want := range map[string]bool{
		"com": true, "ua": true, "arpa": true,
		"cornell.edu": false, "": false, "notatld": false,
	} {
		if got := IsTLD(name); got != want {
			t.Errorf("IsTLD(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestTLDTableConsistency(t *testing.T) {
	seen := map[string]bool{}
	for _, tld := range append(append([]string{}, GenericTLDs...), CountryTLDs...) {
		if seen[tld] {
			t.Errorf("TLD %q appears twice", tld)
		}
		seen[tld] = true
		if err := Check(tld); err != nil {
			t.Errorf("TLD %q fails Check: %v", tld, err)
		}
	}
	// The paper's corpus spanned 196 distinct TLDs; our tables must offer
	// at least that many to draw from.
	if total := len(GenericTLDs) + len(CountryTLDs); total < 196 {
		t.Errorf("TLD tables list %d TLDs, need >= 196", total)
	}
}

func TestEffectiveTLD(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"com", "com"},
		{"example.com", "com"},
		{"bbc.co.uk", "co.uk"},
		{"www.bbc.co.uk", "co.uk"},
		{"rkc.lviv.ua", "lviv.ua"},
		{"www.rkc.lviv.ua", "lviv.ua"},
		{"monash.edu.au", "edu.au"},
		{"plain.ua", "ua"},
		{"co.uk", "co.uk"},
	}
	for _, c := range cases {
		if got := EffectiveTLD(c.in); got != c.want {
			t.Errorf("EffectiveTLD(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRegisteredDomain(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{"www.cs.cornell.edu", "cornell.edu", false},
		{"cornell.edu", "cornell.edu", false},
		{"www.rkc.lviv.ua", "rkc.lviv.ua", false},
		{"www.bbc.co.uk", "bbc.co.uk", false},
		{"a.gtld-servers.net", "gtld-servers.net", false},
		{"edu", "", true},
		{"co.uk", "", true},
		{"lviv.ua", "", true},
		{"", "", true},
	}
	for _, c := range cases {
		got, err := RegisteredDomain(c.in)
		if (err != nil) != c.wantErr || got != c.want {
			t.Errorf("RegisteredDomain(%q) = %q,%v want %q,err=%v", c.in, got, err, c.want, c.wantErr)
		}
	}
}

func TestSameBailiwick(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"www.cs.cornell.edu", "cudns.cit.cornell.edu", true},
		{"www.cs.cornell.edu", "cayuga.cs.rochester.edu", false},
		{"dns.sprintip.com", "www.fbi.gov", false},
		{"edu", "edu", false}, // TLDs have no bailiwick
		{"", "", false},
	}
	for _, c := range cases {
		if got := SameBailiwick(c.a, c.b); got != c.want {
			t.Errorf("SameBailiwick(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRegisteredDomainIsSubdomainOfEffectiveTLD(t *testing.T) {
	names := []string{
		"www.cs.cornell.edu", "www.rkc.lviv.ua", "a.b.c.d.example.com",
		"x.bbc.co.uk", "deep.sub.domain.monash.edu.au",
	}
	for _, n := range names {
		rd, err := RegisteredDomain(n)
		if err != nil {
			t.Fatalf("RegisteredDomain(%q): %v", n, err)
		}
		etld := EffectiveTLD(n)
		if !IsSubdomain(rd, etld) {
			t.Errorf("registered domain %q not under effective TLD %q", rd, etld)
		}
		if CountLabels(rd) != CountLabels(etld)+1 {
			t.Errorf("registered domain %q should be exactly one label under %q", rd, etld)
		}
		if !IsSubdomain(n, rd) {
			t.Errorf("name %q not under its registered domain %q", n, rd)
		}
	}
}
