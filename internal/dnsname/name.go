// Package dnsname implements the domain-name algebra used throughout the
// survey: canonicalization, label manipulation, ancestry tests, and
// registered-domain ("bailiwick") extraction against a 2004-era TLD table.
//
// Names are represented in canonical form: lower case, no trailing dot,
// labels separated by single dots. The DNS root is the empty string "".
package dnsname

import (
	"errors"
	"strings"
)

// MaxNameLength is the maximum length of a domain name in presentation
// format (RFC 1035 §2.3.4 limits wire names to 255 octets; presentation
// format without the trailing dot is bounded by 253 bytes).
const MaxNameLength = 253

// MaxLabelLength is the maximum length of a single label (RFC 1035 §2.3.4).
const MaxLabelLength = 63

// Errors returned by Check.
var (
	ErrEmptyLabel    = errors.New("dnsname: empty label")
	ErrLabelTooLong  = errors.New("dnsname: label exceeds 63 octets")
	ErrNameTooLong   = errors.New("dnsname: name exceeds 253 octets")
	ErrBadCharacter  = errors.New("dnsname: invalid character in label")
	ErrHyphenEdge    = errors.New("dnsname: label starts or ends with hyphen")
	ErrNotSubdomain  = errors.New("dnsname: not a subdomain")
	ErrNoRegisteredD = errors.New("dnsname: no registered domain (name is a TLD or the root)")
)

// Canonical returns the canonical form of name: lower-cased, with any
// trailing dot removed. The root name ("." or "") canonicalizes to "".
func Canonical(name string) string {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return ""
	}
	// Fast path: already lower case.
	lower := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return name
	}
	return strings.ToLower(name)
}

// Check validates a canonical name against RFC 1035 host-name rules,
// extended with underscore (seen in real DNS, e.g. service labels).
// The root name "" is valid.
func Check(name string) error {
	if name == "" {
		return nil
	}
	if len(name) > MaxNameLength {
		return ErrNameTooLong
	}
	for _, label := range strings.Split(name, ".") {
		if err := checkLabel(label); err != nil {
			return err
		}
	}
	return nil
}

func checkLabel(label string) error {
	if label == "" {
		return ErrEmptyLabel
	}
	if len(label) > MaxLabelLength {
		return ErrLabelTooLong
	}
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-':
			if i == 0 || i == len(label)-1 {
				return ErrHyphenEdge
			}
		case c == '_':
		case c >= 'A' && c <= 'Z':
			// Canonical names are lower case; treat upper case as invalid
			// so that Check doubles as a canonicalization check.
			return ErrBadCharacter
		default:
			return ErrBadCharacter
		}
	}
	return nil
}

// Labels splits a canonical name into its labels, least significant first
// is NOT applied: labels appear in presentation order (www, cs, cornell,
// edu). The root name yields a nil slice.
func Labels(name string) []string {
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CountLabels reports the number of labels in the canonical name.
// The root has zero labels.
func CountLabels(name string) int {
	if name == "" {
		return 0
	}
	return strings.Count(name, ".") + 1
}

// Parent returns the immediate parent domain of a canonical name and true,
// or "", false when name is the root.
func Parent(name string) (string, bool) {
	if name == "" {
		return "", false
	}
	i := strings.IndexByte(name, '.')
	if i < 0 {
		return "", true // TLD's parent is the root
	}
	return name[i+1:], true
}

// TLD returns the top-level domain of a canonical name, or "" for the root.
func TLD(name string) string {
	if name == "" {
		return ""
	}
	i := strings.LastIndexByte(name, '.')
	if i < 0 {
		return name
	}
	return name[i+1:]
}

// IsSubdomain reports whether child is equal to or lies underneath parent.
// Every name is a subdomain of the root "".
func IsSubdomain(child, parent string) bool {
	if parent == "" {
		return true
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// Ancestors returns every ancestor of name from the name itself down to the
// TLD, excluding the root. For "www.cs.cornell.edu" it returns
// ["www.cs.cornell.edu", "cs.cornell.edu", "cornell.edu", "edu"].
func Ancestors(name string) []string {
	if name == "" {
		return nil
	}
	out := make([]string, 0, CountLabels(name))
	for {
		out = append(out, name)
		p, ok := Parent(name)
		if !ok || p == "" {
			return out
		}
		name = p
	}
}

// CommonSuffix returns the longest common domain suffix of two canonical
// names (label-aligned), or "" when they share none.
func CommonSuffix(a, b string) string {
	la, lb := Labels(a), Labels(b)
	i, j := len(la)-1, len(lb)-1
	n := 0
	for i >= 0 && j >= 0 && la[i] == lb[j] {
		n++
		i--
		j--
	}
	if n == 0 {
		return ""
	}
	return strings.Join(la[len(la)-n:], ".")
}

// Join concatenates a relative label sequence onto a domain, producing a
// canonical name. Join("www", "cornell.edu") == "www.cornell.edu".
// Joining onto the root returns the relative part itself.
func Join(relative, domain string) string {
	relative = Canonical(relative)
	domain = Canonical(domain)
	switch {
	case relative == "":
		return domain
	case domain == "":
		return relative
	default:
		return relative + "." + domain
	}
}

// Compare orders two canonical names by DNS canonical ordering
// (RFC 4034 §6.1): by reversed label sequence, comparing labels
// byte-wise. It returns -1, 0 or +1.
func Compare(a, b string) int {
	la, lb := Labels(a), Labels(b)
	i, j := len(la)-1, len(lb)-1
	for i >= 0 && j >= 0 {
		if c := strings.Compare(la[i], lb[j]); c != 0 {
			return c
		}
		i--
		j--
	}
	switch {
	case i >= 0:
		return 1
	case j >= 0:
		return -1
	default:
		return 0
	}
}

// WireLength returns the encoded length of the canonical name in DNS wire
// format (sum of label lengths plus one length octet each, plus the
// terminating zero octet).
func WireLength(name string) int {
	if name == "" {
		return 1
	}
	n := 1 // terminating zero octet
	for _, label := range Labels(name) {
		n += 1 + len(label)
	}
	return n
}
