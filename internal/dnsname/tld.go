package dnsname

// TLD classification tables for the July-2004 DNS snapshot the paper
// surveyed. The survey spanned 196 distinct TLDs: the generic TLDs active
// at the time plus the ISO 3166 country-code TLDs.

// Kind classifies a top-level domain.
type Kind int

const (
	// KindUnknown marks a label that was not a delegated TLD in 2004.
	KindUnknown Kind = iota
	// KindGeneric marks a generic TLD (com, net, edu, ...).
	KindGeneric
	// KindCountry marks an ISO 3166 country-code TLD.
	KindCountry
	// KindInfra marks the infrastructure TLD (arpa).
	KindInfra
)

func (k Kind) String() string {
	switch k {
	case KindGeneric:
		return "gTLD"
	case KindCountry:
		return "ccTLD"
	case KindInfra:
		return "infra"
	default:
		return "unknown"
	}
}

// GenericTLDs lists the generic TLDs delegated as of July 2004, in the
// order used by Figure 3 of the paper (aero and int have the largest TCBs).
var GenericTLDs = []string{
	"aero", "int", "name", "mil", "info", "edu", "biz", "gov",
	"org", "net", "com", "coop", "museum", "pro",
}

// CountryTLDs lists ISO 3166 ccTLDs delegated as of 2004 (the paper's
// corpus covered 196 TLDs total across both classes).
var CountryTLDs = []string{
	"ac", "ad", "ae", "af", "ag", "ai", "al", "am", "an", "ao", "aq", "ar",
	"as", "at", "au", "aw", "az", "ba", "bb", "bd", "be", "bf", "bg", "bh",
	"bi", "bj", "bm", "bn", "bo", "br", "bs", "bt", "bv", "bw", "by", "bz",
	"ca", "cc", "cd", "cf", "cg", "ch", "ci", "ck", "cl", "cm", "cn", "co",
	"cr", "cu", "cv", "cx", "cy", "cz", "de", "dj", "dk", "dm", "do", "dz",
	"ec", "ee", "eg", "er", "es", "et", "fi", "fj", "fk", "fm", "fo", "fr",
	"ga", "gd", "ge", "gf", "gg", "gh", "gi", "gl", "gm", "gn", "gp", "gq",
	"gr", "gs", "gt", "gu", "gw", "gy", "hk", "hm", "hn", "hr", "ht", "hu",
	"id", "ie", "il", "im", "in", "io", "iq", "ir", "is", "it", "je", "jm",
	"jo", "jp", "ke", "kg", "kh", "ki", "km", "kn", "kp", "kr", "kw", "ky",
	"kz", "la", "lb", "lc", "li", "lk", "lr", "ls", "lt", "lu", "lv", "ly",
	"ma", "mc", "md", "mg", "mh", "mk", "ml", "mm", "mn", "mo", "mp", "mq",
	"mr", "ms", "mt", "mu", "mv", "mw", "mx", "my", "mz", "na", "nc", "ne",
	"nf", "ng", "ni", "nl", "no", "np", "nr", "nu", "nz", "om", "pa", "pe",
	"pf", "pg", "ph", "pk", "pl", "pm", "pn", "pr", "ps", "pt", "pw", "py",
	"qa", "re", "ro", "ru", "rw", "sa", "sb", "sc", "sd", "se", "sg", "sh",
	"si", "sj", "sk", "sl", "sm", "sn", "so", "sr", "st", "sv", "sy", "sz",
	"tc", "td", "tf", "tg", "th", "tj", "tk", "tm", "tn", "to", "tp", "tr",
	"tt", "tv", "tw", "tz", "ua", "ug", "uk", "um", "us", "uy", "uz", "va",
	"vc", "ve", "vg", "vi", "vn", "vu", "wf", "ws", "ye", "yt", "yu", "za",
	"zm", "zw",
}

var tldKind = func() map[string]Kind {
	m := make(map[string]Kind, len(GenericTLDs)+len(CountryTLDs)+1)
	for _, t := range GenericTLDs {
		m[t] = KindGeneric
	}
	for _, t := range CountryTLDs {
		m[t] = KindCountry
	}
	m["arpa"] = KindInfra
	return m
}()

// KindOf classifies the TLD of a canonical name (or a bare TLD label).
func KindOf(name string) Kind {
	return tldKind[TLD(name)]
}

// IsTLD reports whether the canonical name is exactly a known 2004 TLD.
func IsTLD(name string) bool {
	if name == "" || CountLabels(name) != 1 {
		return false
	}
	return tldKind[name] != KindUnknown
}

// ccSecondLevel lists the well-known "effective TLD" second-level zones
// used under ccTLDs in 2004: registrations happen beneath them, so the
// registered domain is three labels deep (bbc.co.uk, rkc.lviv.ua).
// This plays the role the public-suffix list plays today.
var ccSecondLevel = map[string]map[string]bool{
	"uk": setOf("co", "org", "ac", "gov", "net", "sch", "me", "ltd", "plc", "nhs", "mod"),
	"au": setOf("com", "net", "org", "edu", "gov", "asn", "id"),
	"nz": setOf("co", "net", "org", "ac", "govt", "school", "gen", "maori"),
	"jp": setOf("co", "ne", "or", "ac", "ad", "ed", "go", "gr", "lg"),
	"kr": setOf("co", "ne", "or", "ac", "go", "re", "pe"),
	"br": setOf("com", "net", "org", "gov", "edu", "mil", "art", "adv"),
	"ar": setOf("com", "net", "org", "gov", "edu", "mil", "int"),
	"mx": setOf("com", "net", "org", "gob", "edu"),
	"tr": setOf("com", "net", "org", "gov", "edu", "mil", "k12", "av", "bel"),
	"za": setOf("co", "net", "org", "gov", "ac", "edu", "web"),
	"cn": setOf("com", "net", "org", "gov", "edu", "ac", "bj", "sh"),
	"tw": setOf("com", "net", "org", "gov", "edu", "idv"),
	"hk": setOf("com", "net", "org", "gov", "edu", "idv"),
	"in": setOf("co", "net", "org", "gov", "ac", "res", "ernet", "nic"),
	"th": setOf("co", "net", "or", "go", "ac", "in"),
	"sg": setOf("com", "net", "org", "gov", "edu", "per"),
	"my": setOf("com", "net", "org", "gov", "edu", "mil", "name"),
	"id": setOf("co", "net", "or", "go", "ac", "web", "sch"),
	"ph": setOf("com", "net", "org", "gov", "edu", "mil"),
	"il": setOf("co", "net", "org", "gov", "ac", "muni", "idf", "k12"),
	"ua": setOf("com", "net", "org", "gov", "edu", "in",
		// Ukrainian regional second-level zones; the paper's most
		// vulnerable name, www.rkc.lviv.ua, registers under one of these.
		"lviv", "kiev", "kharkov", "odessa", "dnepropetrovsk", "donetsk",
		"crimea", "cherkassy", "chernigov", "lutsk", "poltava", "rovno",
		"sumy", "ternopil", "uzhgorod", "vinnica", "zaporizhzhe", "zhitomir"),
	"ru": setOf("com", "net", "org", "msk", "spb", "nov"),
	"pl": setOf("com", "net", "org", "gov", "edu", "waw", "wroc", "krakow"),
	"by": setOf("com", "net", "org", "gov", "minsk"),
	"it": setOf("gov", "edu"),
	"us": setOf("dni", "fed", "isa", "kids", "nsn"),
}

func setOf(labels ...string) map[string]bool {
	m := make(map[string]bool, len(labels))
	for _, l := range labels {
		m[l] = true
	}
	return m
}

// EffectiveTLD returns the effective public suffix of a canonical name:
// either its TLD, or a registered second-level zone such as "co.uk" or
// "lviv.ua". The root returns "".
func EffectiveTLD(name string) string {
	if name == "" {
		return ""
	}
	labels := Labels(name)
	tld := labels[len(labels)-1]
	if len(labels) >= 2 {
		if sl, ok := ccSecondLevel[tld]; ok && sl[labels[len(labels)-2]] {
			return labels[len(labels)-2] + "." + tld
		}
	}
	return tld
}

// RegisteredDomain returns the registered ("bailiwick") domain of a
// canonical name: one label beneath its effective TLD. Names that are
// themselves a TLD or public suffix have no registered domain.
//
//	RegisteredDomain("www.cs.cornell.edu") == "cornell.edu"
//	RegisteredDomain("www.rkc.lviv.ua")    == "rkc.lviv.ua"
func RegisteredDomain(name string) (string, error) {
	if name == "" {
		return "", ErrNoRegisteredD
	}
	etld := EffectiveTLD(name)
	if name == etld {
		return "", ErrNoRegisteredD
	}
	labels := Labels(name)
	suffixLabels := CountLabels(etld)
	if len(labels) <= suffixLabels {
		return "", ErrNoRegisteredD
	}
	keep := labels[len(labels)-suffixLabels-1:]
	out := keep[0]
	for _, l := range keep[1:] {
		out += "." + l
	}
	return out, nil
}

// SameBailiwick reports whether two canonical names share a registered
// domain. Names without a registered domain are never in any bailiwick.
func SameBailiwick(a, b string) bool {
	ra, errA := RegisteredDomain(a)
	rb, errB := RegisteredDomain(b)
	return errA == nil && errB == nil && ra == rb
}
