package dnsname

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{".", ""},
		{"com", "com"},
		{"com.", "com"},
		{"WWW.CS.Cornell.EDU", "www.cs.cornell.edu"},
		{"www.cs.cornell.edu.", "www.cs.cornell.edu"},
		{"a.gtld-servers.net", "a.gtld-servers.net"},
	}
	for _, c := range cases {
		if got := Canonical(c.in); got != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Canonical(s)
		return Canonical(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheck(t *testing.T) {
	valid := []string{
		"", "com", "cornell.edu", "www.cs.cornell.edu",
		"a1.nstld.com", "reston-ns2.telemail.net", "_tcp.example.com",
		"xn--80ak6aa92e.ua", "1.2.3.com",
	}
	for _, n := range valid {
		if err := Check(n); err != nil {
			t.Errorf("Check(%q) = %v, want nil", n, err)
		}
	}
	invalid := []struct {
		name string
		want error
	}{
		{"a..b", ErrEmptyLabel},
		{".leading", ErrEmptyLabel},
		{strings.Repeat("a", 64) + ".com", ErrLabelTooLong},
		{strings.Repeat("abcdefgh.", 30) + "com", ErrNameTooLong},
		{"UPPER.com", ErrBadCharacter},
		{"sp ace.com", ErrBadCharacter},
		{"-lead.com", ErrHyphenEdge},
		{"trail-.com", ErrHyphenEdge},
		{"bang!.com", ErrBadCharacter},
	}
	for _, c := range invalid {
		if err := Check(c.name); err != c.want {
			t.Errorf("Check(%q) = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestLabelsAndCount(t *testing.T) {
	if got := Labels(""); got != nil {
		t.Errorf("Labels(root) = %v, want nil", got)
	}
	got := Labels("www.cs.cornell.edu")
	want := []string{"www", "cs", "cornell", "edu"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Labels = %v, want %v", got, want)
	}
	for name, n := range map[string]int{"": 0, "edu": 1, "cornell.edu": 2, "www.cs.cornell.edu": 4} {
		if got := CountLabels(name); got != n {
			t.Errorf("CountLabels(%q) = %d, want %d", name, got, n)
		}
	}
}

func TestParent(t *testing.T) {
	cases := []struct {
		in, parent string
		ok         bool
	}{
		{"", "", false},
		{"edu", "", true},
		{"cornell.edu", "edu", true},
		{"www.cs.cornell.edu", "cs.cornell.edu", true},
	}
	for _, c := range cases {
		p, ok := Parent(c.in)
		if p != c.parent || ok != c.ok {
			t.Errorf("Parent(%q) = %q,%v want %q,%v", c.in, p, ok, c.parent, c.ok)
		}
	}
}

func TestTLD(t *testing.T) {
	for in, want := range map[string]string{
		"":                   "",
		"com":                "com",
		"cornell.edu":        "edu",
		"www.rkc.lviv.ua":    "ua",
		"a.gtld-servers.net": "net",
	} {
		if got := TLD(in); got != want {
			t.Errorf("TLD(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"www.cs.cornell.edu", "cornell.edu", true},
		{"cornell.edu", "cornell.edu", true},
		{"cornell.edu", "", true},
		{"", "", true},
		{"mycornell.edu", "cornell.edu", false},
		{"cornell.edu", "cs.cornell.edu", false},
		{"edu", "com", false},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q,%q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestAncestors(t *testing.T) {
	got := Ancestors("www.cs.cornell.edu")
	want := []string{"www.cs.cornell.edu", "cs.cornell.edu", "cornell.edu", "edu"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ancestors = %v, want %v", got, want)
	}
	if got := Ancestors(""); got != nil {
		t.Errorf("Ancestors(root) = %v, want nil", got)
	}
	if got := Ancestors("com"); !reflect.DeepEqual(got, []string{"com"}) {
		t.Errorf("Ancestors(com) = %v", got)
	}
}

func TestCommonSuffix(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"www.cs.cornell.edu", "cit.cornell.edu", "cornell.edu"},
		{"a.com", "b.net", ""},
		{"x.y.z", "x.y.z", "x.y.z"},
		{"cornell.edu", "edu", "edu"},
		{"", "a.com", ""},
	}
	for _, c := range cases {
		if got := CommonSuffix(c.a, c.b); got != c.want {
			t.Errorf("CommonSuffix(%q,%q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

func TestJoin(t *testing.T) {
	cases := []struct{ rel, dom, want string }{
		{"www", "cornell.edu", "www.cornell.edu"},
		{"", "cornell.edu", "cornell.edu"},
		{"www", "", "www"},
		{"A.B", "C.d", "a.b.c.d"},
	}
	for _, c := range cases {
		if got := Join(c.rel, c.dom); got != c.want {
			t.Errorf("Join(%q,%q) = %q, want %q", c.rel, c.dom, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	// RFC 4034 canonical ordering sorts by reversed labels.
	ordered := []string{"", "com", "example.com", "www.example.com", "net", "a.net"}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%q,%q) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareProperties(t *testing.T) {
	gen := randomNameGen()
	antisym := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	reflexive := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := gen(r)
		return Compare(a, a) == 0
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
}

func TestWireLength(t *testing.T) {
	for in, want := range map[string]int{
		"":            1,
		"com":         5,  // 3com0
		"cornell.edu": 13, // 7cornell3edu0
	} {
		if got := WireLength(in); got != want {
			t.Errorf("WireLength(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestIsSubdomainAncestorsAgree(t *testing.T) {
	gen := randomNameGen()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		name := gen(r)
		for _, anc := range Ancestors(name) {
			if !IsSubdomain(name, anc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomNameGen returns a generator of random valid canonical names.
func randomNameGen() func(*rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	return func(r *rand.Rand) string {
		n := 1 + r.Intn(5)
		labels := make([]string, n)
		for i := range labels {
			l := make([]byte, 1+r.Intn(8))
			for j := range l {
				l[j] = alphabet[r.Intn(len(alphabet))]
			}
			labels[i] = string(l)
		}
		return strings.Join(labels, ".")
	}
}
