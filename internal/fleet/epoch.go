// Package fleet turns N shard monitors into one logical survey: a
// Coordinator ingests per-shard engine snapshots (Engine.WriteSnapshot
// exports, fetched over HTTP from dnsmonitord or handed in directly),
// remaps each shard's interned zone/host/chain ids into a unioned
// intern space, and commits the merged result as a generation-stamped
// FleetView exposing the single-monitor read API — Summary, TCB,
// bottlenecks, change journal, diffs. cmd/dnsfleetd wraps it in a thin
// router that consistent-hashes names to shards for /add fan-out and
// serves the merged view.
package fleet

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dnstrust/internal/snapshot"
)

// Host-chain sentinels, matching the core/hostchain section encoding.
const (
	chainNone  = -1 // no chain attached to the host
	chainEmpty = -2 // attached chain is the empty chain
)

// NameChain is one surveyed name and its delegation chain id in the
// shard's intern space.
type NameChain struct {
	Name  string
	Chain int32
}

// NameError is one failed name and its error text.
type NameError struct {
	Name string
	Err  string
}

// Epoch is one shard's committed state, decoded from an engine
// snapshot into the raw id tables a merge needs — no store, no graph,
// no hash indexes. All ids are in the shard's own intern space; the
// Coordinator translates them through per-shard remap tables. An Epoch
// is immutable once decoded; its strings are zero-copy views pinned by
// the retained snapshot file.
type Epoch struct {
	// Generation is the shard engine's committed generation.
	Generation int64
	// Shard metadata from the optional shard/meta section; HasMeta
	// reports whether the snapshot carried one.
	Shard      string
	CorpusHash uint64
	HasMeta    bool

	// Intern tables, indexed by shard-local id.
	Hosts  []string
	Zones  []string
	Chains [][]int32 // per-chain zone ids, in traversal order
	ZoneNS [][]int32 // per-zone NS host ids, sorted

	// HostChain maps each host id to its address chain id, or the
	// chainNone/chainEmpty sentinels.
	HostChain []int32

	// Names lists the resolved names with their chain ids, sorted by
	// name; Failed lists the failed names, sorted.
	Failed []NameError
	Names  []NameChain

	// Banner pairs (sorted by host) from the probe phase.
	BannerHosts []string
	Banners     []string

	file *snapshot.File // pins the zero-copy string views
}

// DecodeEpoch decodes a shard engine snapshot into its raw tables. The
// returned Epoch keeps a reference to f; callers must not Close f
// while the Epoch (or anything remapped from its strings) is live.
func DecodeEpoch(f *snapshot.File) (*Epoch, error) {
	ep := &Epoch{file: f}

	md := snapshot.NewSectionReader(f, "crawler/meta")
	ep.Generation = md.I64()
	if err := md.Err(); err != nil {
		return nil, fmt.Errorf("fleet: decode shard epoch: %w", err)
	}

	meta, ok, err := snapshot.ReadShardMeta(f)
	if err != nil {
		return nil, fmt.Errorf("fleet: decode shard epoch: %w", err)
	}
	if ok {
		ep.Shard, ep.CorpusHash, ep.HasMeta = meta.Shard, meta.CorpusHash, true
	}

	hd := snapshot.NewSectionReader(f, "core/hosts")
	ep.Hosts = hd.Strings()
	zd := snapshot.NewSectionReader(f, "core/zones")
	ep.Zones = zd.Strings()
	cd := snapshot.NewSectionReader(f, "core/chains")
	ep.Chains = snapshot.ReadIDTable(cd)
	nd := snapshot.NewSectionReader(f, "core/zonens")
	ep.ZoneNS = snapshot.ReadIDTable(nd)
	if err := firstErr(hd, zd, cd, nd); err != nil {
		return nil, fmt.Errorf("fleet: decode shard epoch: %w", err)
	}
	if len(ep.ZoneNS) != len(ep.Zones) {
		return nil, corruptf("core/zonens", "%d entries for %d zones", len(ep.ZoneNS), len(ep.Zones))
	}
	for z, ns := range ep.ZoneNS {
		for _, h := range ns {
			if int(h) >= len(ep.Hosts) || h < 0 {
				return nil, corruptf("core/zonens", "zone %d references host %d of %d", z, h, len(ep.Hosts))
			}
		}
	}
	for c, ids := range ep.Chains {
		for _, z := range ids {
			if int(z) >= len(ep.Zones) || z < 0 {
				return nil, corruptf("core/chains", "chain %d references zone %d of %d", c, z, len(ep.Zones))
			}
		}
	}

	hc := snapshot.NewSectionReader(f, "core/hostchain")
	nHosts := hc.Count(12)
	hc.I64s(nHosts) // attach epochs: merge-irrelevant, skipped
	ep.HostChain = hc.I32s(nHosts)
	if err := hc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: decode shard epoch: %w", err)
	}
	if nHosts != len(ep.Hosts) {
		return nil, corruptf("core/hostchain", "%d entries for %d hosts", nHosts, len(ep.Hosts))
	}
	for h, cid := range ep.HostChain {
		if cid != chainNone && cid != chainEmpty && (cid < 0 || int(cid) >= len(ep.Chains)) {
			return nil, corruptf("core/hostchain", "host %d references chain %d of %d", h, cid, len(ep.Chains))
		}
	}

	// Resolved names: the base table (first-epoch names, all present)
	// plus the latest present version of each versioned name.
	bd := snapshot.NewSectionReader(f, "core/base")
	nBase := bd.Count(4)
	baseCids := bd.I32s(nBase)
	bd.Pad8()
	baseNames := bd.Strings()
	if err := bd.Err(); err != nil {
		return nil, fmt.Errorf("fleet: decode shard epoch: %w", err)
	}
	if len(baseNames) != nBase {
		return nil, corruptf("core/base", "%d names for %d ids", len(baseNames), nBase)
	}
	ep.Names = make([]NameChain, 0, nBase)
	for i, n := range baseNames {
		if int(baseCids[i]) >= len(ep.Chains) || baseCids[i] < 0 {
			return nil, corruptf("core/base", "name %q references chain %d of %d", n, baseCids[i], len(ep.Chains))
		}
		ep.Names = append(ep.Names, NameChain{Name: n, Chain: baseCids[i]})
	}

	vd := snapshot.NewSectionReader(f, "core/names")
	nVer := vd.Count(4)
	verTotal := vd.Count(16)
	verCounts := vd.I32s(nVer)
	vd.Pad8()
	verPool := vd.Take(16 * verTotal)
	verNames := vd.Strings()
	if err := vd.Err(); err != nil {
		return nil, fmt.Errorf("fleet: decode shard epoch: %w", err)
	}
	if len(verNames) != nVer {
		return nil, corruptf("core/names", "%d names for %d histories", len(verNames), nVer)
	}
	vp := 0
	for i, n := range verNames {
		cnt := int(verCounts[i])
		if cnt < 1 || vp+cnt > verTotal {
			return nil, corruptf("core/names", "history of %q overruns the version pool", n)
		}
		// Only the newest version matters for a merge: the shard's
		// history is already linearized in its own store.
		rec := verPool[16*(vp+cnt-1):]
		cid := int32(binary.LittleEndian.Uint32(rec[8:]))
		present := binary.LittleEndian.Uint32(rec[12:]) != 0
		vp += cnt
		if !present {
			continue
		}
		if int(cid) >= len(ep.Chains) || cid < 0 {
			return nil, corruptf("core/names", "name %q references chain %d of %d", n, cid, len(ep.Chains))
		}
		ep.Names = append(ep.Names, NameChain{Name: n, Chain: cid})
	}
	sort.Slice(ep.Names, func(i, j int) bool { return ep.Names[i].Name < ep.Names[j].Name })

	fd := snapshot.NewSectionReader(f, "core/failed")
	failedNames := fd.Strings()
	failedErrs := fd.Strings()
	if err := fd.Err(); err != nil {
		return nil, fmt.Errorf("fleet: decode shard epoch: %w", err)
	}
	if len(failedErrs) != len(failedNames) {
		return nil, corruptf("core/failed", "%d errors for %d names", len(failedErrs), len(failedNames))
	}
	ep.Failed = make([]NameError, len(failedNames))
	for i, n := range failedNames {
		ep.Failed[i] = NameError{Name: n, Err: failedErrs[i]}
	}

	bnd := snapshot.NewSectionReader(f, "crawler/banner")
	ep.BannerHosts = bnd.Strings()
	ep.Banners = bnd.Strings()
	if err := bnd.Err(); err != nil {
		return nil, fmt.Errorf("fleet: decode shard epoch: %w", err)
	}
	if len(ep.Banners) != len(ep.BannerHosts) {
		return nil, corruptf("crawler/banner", "%d banners for %d hosts", len(ep.Banners), len(ep.BannerHosts))
	}

	return ep, nil
}

// corruptf wraps snapshot.ErrCorrupt with section context, mirroring
// the core loader's convention.
func corruptf(sec, format string, args ...any) error {
	return fmt.Errorf("fleet: decode shard epoch: %w: %s: %s",
		snapshot.ErrCorrupt, sec, fmt.Sprintf(format, args...))
}

func firstErr(ds ...*snapshot.SectionReader) error {
	for _, d := range ds {
		if err := d.Err(); err != nil {
			return err
		}
	}
	return nil
}
