package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"

	"dnstrust/internal/dnsname"
)

// Ring assigns names to shards by consistent hashing: each shard owns
// a set of virtual points on a 64-bit circle, and a name belongs to
// the shard owning the first point at or after the name's hash. The
// assignment is deterministic in the shard-name set alone — routers
// built independently from the same shard list agree on every name —
// and adding or removing one shard moves only ~1/N of the names.
type Ring struct {
	shards []string
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int32
}

// DefaultReplicas is the virtual-node count per shard when NewRing is
// given zero: enough for <10% load spread at small fleet sizes.
const DefaultReplicas = 64

// NewRing builds a ring over the given shard names (order does not
// matter; ties are broken deterministically).
func NewRing(shards []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	sorted := append([]string(nil), shards...)
	sort.Strings(sorted)
	r := &Ring{shards: sorted, points: make([]ringPoint, 0, len(sorted)*replicas)}
	for si, s := range sorted {
		for i := 0; i < replicas; i++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", s, i)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), shard: int32(si)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the ring's shard names, sorted.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// OwnerIndex returns the index (into Shards()) of the shard owning a
// name. Names are canonicalized first, so "WWW.Example." and
// "www.example" land on the same shard.
func (r *Ring) OwnerIndex(name string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := fnv.New64a()
	h.Write([]byte(dnsname.Canonical(name)))
	hv := h.Sum64()
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hv })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return int(r.points[i].shard)
}

// Owner returns the name of the shard owning a name, or "" for an
// empty ring.
func (r *Ring) Owner(name string) string {
	i := r.OwnerIndex(name)
	if i < 0 {
		return ""
	}
	return r.shards[i]
}

// Assign groups names by owning shard, returned as one slice per
// shard index (aligned with Shards()); names keep their relative
// order within each group.
func (r *Ring) Assign(names []string) [][]string {
	out := make([][]string, len(r.shards))
	for _, n := range names {
		i := r.OwnerIndex(n)
		if i >= 0 {
			out[i] = append(out[i], n)
		}
	}
	return out
}
