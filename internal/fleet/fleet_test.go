package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"dnstrust/internal/analysis"
	"dnstrust/internal/crawler"
	"dnstrust/internal/fleet"
	"dnstrust/internal/snapshot"
	"dnstrust/internal/topology"
	"dnstrust/internal/transport"
)

func genWorld(t testing.TB, seed int64, names int) *topology.World {
	t.Helper()
	world, err := topology.Generate(topology.GenParams{Seed: seed, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	return world
}

// newShardEngine opens a crawl engine over the world behind a counted
// transport, labeled as one fleet shard (unlabeled when name is "").
func newShardEngine(t testing.TB, world *topology.World, name string) (*crawler.Engine, *transport.Counter) {
	t.Helper()
	counter := transport.NewCounter()
	tr := transport.Chain(world.Registry.Source(), counter.Middleware())
	r, err := world.Registry.Resolver(tr)
	if err != nil {
		t.Fatal(err)
	}
	e, err := crawler.NewEngine(r, world.Registry.ProbeFunc(tr), crawler.Config{Workers: 4, ShardName: name})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, counter
}

// epochOf exports the engine's current snapshot and decodes it as a
// shard epoch.
func epochOf(t testing.TB, e *crawler.Engine) *fleet.Epoch {
	t.Helper()
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := fleet.DecodeEpoch(f)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

// crawlShards partitions the corpus over the ring, crawls each
// partition on its own engine, and returns the shard set plus the
// transport counters (one per shard, aligned with ring.Shards()).
func crawlShards(t testing.TB, world *topology.World, ring *fleet.Ring) ([]fleet.Shard, []*transport.Counter) {
	t.Helper()
	parts := ring.Assign(world.Corpus)
	names := ring.Shards()
	shards := make([]fleet.Shard, len(names))
	counters := make([]*transport.Counter, len(names))
	for i, name := range names {
		if len(parts[i]) == 0 {
			t.Fatalf("shard %s owns no names; pick a bigger corpus", name)
		}
		e, counter := newShardEngine(t, world, name)
		if _, err := e.Add(context.Background(), parts[i]...); err != nil {
			t.Fatal(err)
		}
		shards[i] = fleet.Shard{Name: name, Source: &fleet.FixedSource{Epoch: epochOf(t, e)}}
		counters[i] = counter
	}
	return shards, counters
}

// TestFleetEquivalence is the tentpole acceptance test: a 3-shard
// fleet's merged view must be indistinguishable — summary, TCBs,
// banner table — from one monitor crawling the union corpus, and the
// merge itself must cost zero transport queries.
func TestFleetEquivalence(t *testing.T) {
	world := genWorld(t, 33, 180)
	ring := fleet.NewRing([]string{"s0", "s1", "s2"}, 0)
	shards, counters := crawlShards(t, world, ring)

	var queriesBefore int64
	for _, c := range counters {
		queriesBefore += c.Queries()
	}

	c, err := fleet.New(shards, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fv, err := c.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var queriesAfter int64
	for _, ct := range counters {
		queriesAfter += ct.Queries()
	}
	if queriesAfter != queriesBefore {
		t.Fatalf("merge issued %d transport queries, want 0", queriesAfter-queriesBefore)
	}

	if fv.Generation() != 1 {
		t.Fatalf("first commit minted generation %d, want 1", fv.Generation())
	}
	if fv.Stale() || len(fv.StaleShards()) != 0 {
		t.Fatalf("all-healthy commit marked stale: %v", fv.StaleShards())
	}

	// The reference: one monitor crawling every name.
	se, _ := newShardEngine(t, world, "")
	if _, err := se.Add(context.Background(), world.Corpus...); err != nil {
		t.Fatal(err)
	}
	single := se.View()

	gotNames, wantNames := fv.Names(), append([]string(nil), single.Names...)
	sort.Strings(wantNames)
	if !reflect.DeepEqual(gotNames, wantNames) {
		t.Fatalf("merged view has %d names, single monitor %d (or ordering differs)", len(gotNames), len(wantNames))
	}

	gotSum := fv.Summary()
	wantSum := analysis.SummarizeMemo(single, wantNames, nil)
	if !reflect.DeepEqual(gotSum, wantSum) {
		t.Fatalf("merged summary diverges:\n got %+v\nwant %+v", gotSum, wantSum)
	}
	gotJSON, err := json.Marshal(gotSum)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(wantSum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("summary JSON diverges:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// Spot-check transitive trust sets across the whole corpus.
	for i, n := range wantNames {
		if i%7 != 0 {
			continue
		}
		got, err := fv.TCB(n)
		if err != nil {
			t.Fatalf("TCB(%s): %v", n, err)
		}
		want, err := single.Graph.TCB(n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TCB(%s) = %v, want %v", n, got, want)
		}
	}

	if !reflect.DeepEqual(fv.Survey().Banner, single.Banner) {
		t.Fatal("merged banner table diverges from the single-monitor crawl")
	}
	if !reflect.DeepEqual(fv.Survey().Vulns, single.Vulns) {
		t.Fatal("merged vulnerability table diverges from the single-monitor crawl")
	}

	// The first generation's change journal covers every name.
	if got := fv.Changed(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("first-generation journal has %d names, want all %d", len(got), len(wantNames))
	}
}

// stuckSource never answers: it parks on ctx like a shard whose
// process is wedged mid-accept.
type stuckSource struct{}

func (stuckSource) Fetch(ctx context.Context, _ int64) (*fleet.Epoch, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestFleetDeadShard starts a 3-shard fleet with one shard that never
// responds. With quorum 2 the round must still commit — a partial view
// marked stale — within the round deadline, and the collector
// goroutines must all exit.
func TestFleetDeadShard(t *testing.T) {
	world := genWorld(t, 34, 150)
	ring := fleet.NewRing([]string{"s0", "s1", "s2"}, 0)
	shards, _ := crawlShards(t, world, ring)
	deadNames := map[string]bool{}
	parts := ring.Assign(world.Corpus)
	for _, n := range parts[2] {
		deadNames[n] = true
	}
	shards[2].Source = stuckSource{}

	goroutinesBefore := runtime.NumGoroutine()

	c, err := fleet.New(shards, fleet.Config{Timeout: 300 * time.Millisecond, Quorum: 2, Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	fv, err := c.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("commit took %v, want bounded by the round deadline", d)
	}

	if !fv.Stale() {
		t.Fatal("partial view not marked stale")
	}
	if got := fv.StaleShards(); !reflect.DeepEqual(got, []string{"s2"}) {
		t.Fatalf("stale shards = %v, want [s2]", got)
	}
	for _, n := range fv.Names() {
		if deadNames[n] {
			t.Fatalf("name %s belongs to the dead shard but appears in the merged view", n)
		}
	}
	if len(fv.Names()) == 0 {
		t.Fatal("partial view is empty")
	}
	st := fv.Shards()
	if len(st) != 3 || !st[2].Stale || st[2].Err == "" || st[2].Generation != -1 {
		t.Fatalf("shard status = %+v, want s2 stale with an error at generation -1", st)
	}

	// No leaked collectors: the goroutine count settles back.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > goroutinesBefore {
		t.Fatalf("%d goroutines after commit, %d before: collector leaked", got, goroutinesBefore)
	}
}

// TestFleetQuorum proves that losing more shards than quorum allows
// fails the round and leaves the previous view standing.
func TestFleetQuorum(t *testing.T) {
	world := genWorld(t, 35, 120)
	ring := fleet.NewRing([]string{"s0", "s1", "s2"}, 0)
	shards, _ := crawlShards(t, world, ring)
	shards[1].Source = stuckSource{}
	shards[2].Source = stuckSource{}

	// Majority quorum (2 of 3) with two dead shards: no commit.
	c, err := fleet.New(shards, fleet.Config{Timeout: 200 * time.Millisecond, Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(context.Background()); err == nil {
		t.Fatal("commit succeeded below quorum")
	}
	if c.Current() != nil {
		t.Fatal("failed round published a view")
	}
	if c.Generation() != 0 {
		t.Fatalf("failed round advanced the generation to %d", c.Generation())
	}
	st := c.Status()
	if len(st) != 3 || !st[1].Stale || !st[2].Stale || st[1].Failures == 0 {
		t.Fatalf("status after failed round = %+v", st)
	}
}

// countingSource serves a swappable epoch and counts how commits hit
// it, distinguishing full transfers from cheap "unchanged" answers.
type countingSource struct {
	mu        sync.Mutex
	ep        *fleet.Epoch
	fetches   int
	unchanged int
}

func (s *countingSource) Fetch(_ context.Context, haveGen int64) (*fleet.Epoch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fetches++
	if s.ep == nil || haveGen >= s.ep.Generation {
		s.unchanged++
		return nil, nil
	}
	return s.ep, nil
}

func (s *countingSource) set(ep *fleet.Epoch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ep = ep
}

func (s *countingSource) counts() (fetches, unchanged int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetches, s.unchanged
}

// TestFleetIncremental drives two commit rounds: after the first, only
// shard s0 grows. The second round must confirm the other shards
// unchanged without re-transferring them, mint a new generation whose
// change journal names only the new arrivals, and serve the extended
// partition.
func TestFleetIncremental(t *testing.T) {
	world := genWorld(t, 36, 180)
	ring := fleet.NewRing([]string{"s0", "s1", "s2"}, 0)
	parts := ring.Assign(world.Corpus)
	names := ring.Shards()

	engines := make([]*crawler.Engine, 3)
	sources := make([]*countingSource, 3)
	shards := make([]fleet.Shard, 3)
	// s0 holds back the second half of its partition for round two.
	half := len(parts[0]) / 2
	if half == 0 || len(parts[0])-half == 0 {
		t.Fatalf("s0 owns %d names; pick a bigger corpus", len(parts[0]))
	}
	for i, name := range names {
		e, _ := newShardEngine(t, world, name)
		engines[i] = e
		first := parts[i]
		if i == 0 {
			first = parts[0][:half]
		}
		if _, err := e.Add(context.Background(), first...); err != nil {
			t.Fatal(err)
		}
		sources[i] = &countingSource{ep: epochOf(t, e)}
		shards[i] = fleet.Shard{Name: name, Source: sources[i]}
	}

	c, err := fleet.New(shards, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fv1, err := c.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fv1.Generation() != 1 {
		t.Fatalf("generation %d after first commit, want 1", fv1.Generation())
	}

	// An unchanged round: same epochs everywhere, no new generation.
	fv1b, err := c.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fv1b != fv1 {
		t.Fatalf("unchanged round minted generation %d", fv1b.Generation())
	}

	// Shard s0 grows; the fleet re-commits.
	extra := parts[0][half:]
	if _, err := engines[0].Add(context.Background(), extra...); err != nil {
		t.Fatal(err)
	}
	sources[0].set(epochOf(t, engines[0]))
	fv2, err := c.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fv2.Generation() != 2 {
		t.Fatalf("generation %d after growth commit, want 2", fv2.Generation())
	}
	for i := 1; i < 3; i++ {
		fetches, unchanged := sources[i].counts()
		if fetches != 3 || unchanged != 2 {
			t.Fatalf("shard %s: %d fetches / %d unchanged, want 3/2 (conditional refresh only)", names[i], fetches, unchanged)
		}
	}

	want := append([]string(nil), world.Corpus...)
	sort.Strings(want)
	if got := fv2.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("grown view has %d names, want the full corpus (%d)", len(got), len(want))
	}
	wantChanged := append([]string(nil), extra...)
	sort.Strings(wantChanged)
	if got := fv2.Changed(); !reflect.DeepEqual(got, wantChanged) {
		t.Fatalf("change journal has %d names, want exactly the %d new arrivals", len(got), len(wantChanged))
	}

	// The two generations diff along the journal: only the new names.
	d, err := c.Between(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.NamesAdded); got != len(extra) {
		t.Fatalf("delta reports %d added names, want %d", got, len(extra))
	}
}

// TestFleetDeterminism: two coordinators fed the same shard snapshot
// set (declared in different orders) converge on byte-identical merged
// snapshots.
func TestFleetDeterminism(t *testing.T) {
	world := genWorld(t, 37, 150)
	ring := fleet.NewRing([]string{"s0", "s1", "s2"}, 0)
	shards, _ := crawlShards(t, world, ring)

	shuffled := []fleet.Shard{shards[2], shards[0], shards[1]}
	var snaps [2][]byte
	for i, decl := range [][]fleet.Shard{shards, shuffled} {
		c, err := fleet.New(decl, fleet.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Commit(context.Background()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := c.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		snaps[i] = buf.Bytes()
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Fatalf("merged snapshots diverge: %d vs %d bytes", len(snaps[0]), len(snaps[1]))
	}
}

// TestHTTPSourceConditional exercises the HTTP pull path end to end:
// full transfer on first fetch, 304 on the conditional refetch, full
// transfer again after the shard grows.
func TestHTTPSourceConditional(t *testing.T) {
	world := genWorld(t, 38, 120)
	e, _ := newShardEngine(t, world, "s0")
	if _, err := e.Add(context.Background(), world.Corpus[:60]...); err != nil {
		t.Fatal(err)
	}

	var served, notModified int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/snapshot" {
			http.NotFound(w, r)
			return
		}
		etag := fmt.Sprintf(`"%d"`, e.View().Stats.Generation)
		if r.Header.Get("If-None-Match") == etag {
			notModified++
			w.WriteHeader(http.StatusNotModified)
			return
		}
		served++
		w.Header().Set("ETag", etag)
		if err := e.WriteSnapshot(w); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	c, err := fleet.New([]fleet.Shard{{Name: "s0", Source: &fleet.HTTPSource{URL: srv.URL}}}, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fv1, err := c.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fv1.NumNames() != 60 {
		t.Fatalf("first commit merged %d names, want 60", fv1.NumNames())
	}
	fv1b, err := c.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fv1b != fv1 {
		t.Fatal("304 round minted a new generation")
	}
	if served != 1 || notModified != 1 {
		t.Fatalf("served=%d notModified=%d, want 1/1", served, notModified)
	}

	if _, err := e.Add(context.Background(), world.Corpus[60:]...); err != nil {
		t.Fatal(err)
	}
	fv2, err := c.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fv2.NumNames() != len(world.Corpus) {
		t.Fatalf("grown commit merged %d names, want %d", fv2.NumNames(), len(world.Corpus))
	}
	if served != 2 {
		t.Fatalf("served=%d after growth, want 2", served)
	}
}

// TestFleetShardMismatch: a source answering with another shard's
// label is treated as a fetch failure, not silently merged.
func TestFleetShardMismatch(t *testing.T) {
	world := genWorld(t, 39, 100)
	e, _ := newShardEngine(t, world, "other")
	if _, err := e.Add(context.Background(), world.Corpus[:40]...); err != nil {
		t.Fatal(err)
	}
	c, err := fleet.New([]fleet.Shard{{Name: "s0", Source: &fleet.FixedSource{Epoch: epochOf(t, e)}}}, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(context.Background()); err == nil {
		t.Fatal("misrouted shard committed")
	}
	st := c.Status()
	if len(st) != 1 || !st[0].Stale || st[0].Err == "" {
		t.Fatalf("status = %+v, want a stale shard with a mismatch error", st)
	}
}

func TestRing(t *testing.T) {
	shards := []string{"s1", "s0", "s2"}
	r1 := fleet.NewRing(shards, 0)
	r2 := fleet.NewRing([]string{"s2", "s1", "s0"}, 0)
	if got := r1.Shards(); !reflect.DeepEqual(got, []string{"s0", "s1", "s2"}) {
		t.Fatalf("Shards() = %v", got)
	}

	names := make([]string, 0, 300)
	for i := 0; i < 300; i++ {
		names = append(names, fmt.Sprintf("www%d.dom%d.tld%d", i, i%40, i%7))
	}
	owned := map[string]int{}
	for _, n := range names {
		o1, o2 := r1.Owner(n), r2.Owner(n)
		if o1 == "" || o1 != o2 {
			t.Fatalf("owner of %s: %q vs %q (declaration order leaked)", n, o1, o2)
		}
		owned[o1]++
	}
	if len(owned) != 3 {
		t.Fatalf("300 names landed on %d of 3 shards: %v", len(owned), owned)
	}

	if a, b := r1.Owner("WWW.Example.COM."), r1.Owner("www.example.com"); a != b {
		t.Fatalf("canonicalization leak: %q vs %q", a, b)
	}

	parts := r1.Assign(names)
	total := 0
	for i, p := range parts {
		total += len(p)
		for _, n := range p {
			if r1.OwnerIndex(n) != i {
				t.Fatalf("Assign put %s in partition %d, Owner says %d", n, i, r1.OwnerIndex(n))
			}
		}
	}
	if total != len(names) {
		t.Fatalf("Assign placed %d of %d names", total, len(names))
	}

	if fleet.NewRing(nil, 0).Owner("x") != "" {
		t.Fatal("empty ring claims an owner")
	}
}

// BenchmarkFleetMerge exercises the cold three-shard merge at test
// scale so the bench smoke keeps the path compiling and running; the
// gated full-corpus measurement lives in cmd/dnsbench (FleetMerge/...).
func BenchmarkFleetMerge(b *testing.B) {
	world := genWorld(b, 33, 120)
	ring := fleet.NewRing([]string{"s0", "s1", "s2"}, 0)
	shards, _ := crawlShards(b, world, ring)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := fleet.New(shards, fleet.Config{})
		if err != nil {
			b.Fatal(err)
		}
		fv, err := c.Commit(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if fv.NumNames() != len(world.Corpus) {
			b.Fatalf("merged %d of %d names", fv.NumNames(), len(world.Corpus))
		}
	}
}
