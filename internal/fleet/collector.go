package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"dnstrust/internal/snapshot"
)

// Source fetches one shard's current epoch. haveGen is the generation
// the caller has already applied, or -1 when nothing has been applied
// yet; a source that can answer "nothing newer" cheaply (the HTTP
// source's conditional fetch) returns (nil, nil) then, and the caller
// reuses its previous remap tables — the incremental half of the merge
// contract. Implementations must honor ctx: a shard that never
// responds must not outlive the commit round's deadline.
type Source interface {
	Fetch(ctx context.Context, haveGen int64) (*Epoch, error)
}

// HTTPSource pulls snapshots from a dnsmonitord shard's GET /snapshot
// endpoint, using If-None-Match against the generation ETag so an
// unchanged shard costs one conditional request and zero bytes of
// snapshot transfer.
type HTTPSource struct {
	// URL is the shard's base URL (e.g. "http://shard0:8061").
	URL string
	// Client overrides http.DefaultClient. Commit deadlines arrive via
	// ctx, so a custom client is only needed for transport tuning.
	Client *http.Client
}

// Fetch implements Source.
func (s *HTTPSource) Fetch(ctx context.Context, haveGen int64) (*Epoch, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.URL+"/snapshot", nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: fetch %s: %w", s.URL, err)
	}
	if haveGen >= 0 {
		req.Header.Set("If-None-Match", fmt.Sprintf(`"%d"`, haveGen))
	}
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: fetch %s: %w", s.URL, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, nil
	case http.StatusOK:
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("fleet: fetch %s: unexpected status %s", s.URL, resp.Status)
	}
	f, err := snapshot.Read(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fleet: fetch %s: %w", s.URL, err)
	}
	return DecodeEpoch(f)
}

// FixedSource serves one pre-decoded epoch — in-process fleets, tests,
// and benchmarks. It reports unchanged once the caller has applied the
// epoch's generation.
type FixedSource struct {
	Epoch *Epoch
}

// Fetch implements Source.
func (s *FixedSource) Fetch(_ context.Context, haveGen int64) (*Epoch, error) {
	if s.Epoch == nil {
		return nil, fmt.Errorf("fleet: fixed source holds no epoch")
	}
	if haveGen >= s.Epoch.Generation {
		return nil, nil
	}
	return s.Epoch, nil
}

// fetchWithRetry drives one shard's fetch for one commit round:
// bounded attempts with doubling backoff, every wait cancellable by
// ctx so a dead shard costs at most the round deadline.
func fetchWithRetry(ctx context.Context, src Source, haveGen int64, attempts int, backoff time.Duration) (*Epoch, error) {
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			t := time.NewTimer(backoff << (i - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("fleet: fetch retry abandoned: %w", ctx.Err())
			case <-t.C:
			}
		}
		var ep *Epoch
		ep, err = src.Fetch(ctx, haveGen)
		if err == nil {
			return ep, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, err
}
