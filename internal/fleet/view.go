package fleet

import (
	"context"
	"sync"

	"dnstrust/internal/analysis"
	"dnstrust/internal/crawler"
	"dnstrust/internal/delta"
	"dnstrust/internal/mincut"
)

// ShardStatus is one shard's health as observed at a commit.
type ShardStatus struct {
	// Name is the shard's configured name.
	Name string `json:"name"`
	// Generation is the last shard generation merged into the view
	// (-1 when the shard has never been fetched successfully).
	Generation int64 `json:"generation"`
	// Stale reports that the shard's fetch failed at this commit, so
	// its contribution is from an earlier round (or missing entirely).
	Stale bool `json:"stale"`
	// Err is the last fetch error ("" when healthy).
	Err string `json:"err,omitempty"`
	// Fetches and Failures count fetch attempts over the coordinator's
	// lifetime.
	Fetches  int64 `json:"fetches"`
	Failures int64 `json:"failures"`
}

// FleetView is one committed fleet generation: the merged survey of
// every shard's last applied epoch, frozen at the commit point. Like
// the single-monitor View it is immutable — analyses are memoized
// behind a Once or a private mutex, collections leave through
// defensive copies — and stays valid (and cheap, via copy-on-write
// store sharing) after newer generations commit.
//
//lint:immutable
type FleetView struct {
	survey *crawler.Survey
	memo   *analysis.ChainMemo

	// stale lists the shards (sorted) whose fetch failed at this
	// commit; shards holds every shard's status at the commit.
	stale  []string
	shards []ShardStatus

	// changed lists the names (sorted) whose mapping moved since the
	// previous committed view — the journal feeding blast/delta reads.
	changed []string

	summaryOnce sync.Once
	summary     *analysis.Summary

	botMu    sync.Mutex
	botStats *analysis.BottleneckStats
}

// Generation returns the fleet generation this view was committed at.
func (v *FleetView) Generation() int64 { return v.survey.Stats.Generation }

// Survey exposes the merged survey dataset for analyses beyond the
// view's own accessors. Treat it as read-only, like the view.
func (v *FleetView) Survey() *crawler.Survey { return v.survey }

// Names returns the merged resolved names, sorted.
func (v *FleetView) Names() []string { return append([]string(nil), v.survey.Names...) }

// NumNames reports the merged resolved-name count.
func (v *FleetView) NumNames() int { return v.survey.Graph.NumNames() }

// Stale reports whether any shard's contribution is stale: at least
// one fetch failed at this commit, so the view is a quorum-approved
// partial merge rather than a full one.
func (v *FleetView) Stale() bool { return len(v.stale) > 0 }

// StaleShards returns the names of the shards serving stale data at
// this commit, sorted.
func (v *FleetView) StaleShards() []string { return append([]string(nil), v.stale...) }

// Shards returns every shard's status at the commit.
func (v *FleetView) Shards() []ShardStatus { return append([]ShardStatus(nil), v.shards...) }

// Changed returns the names whose chain mapping changed since the
// previous committed fleet generation, sorted — the fleet's change
// journal, ready for blast-radius and push-delta consumers. The first
// generation reports every name.
func (v *FleetView) Changed() []string { return append([]string(nil), v.changed...) }

// TCB returns a name's transitive trusted computing base, sorted.
func (v *FleetView) TCB(name string) ([]string, error) {
	return v.survey.Graph.TCB(name)
}

// Summary computes (once) the paper's headline numbers over the merged
// survey.
func (v *FleetView) Summary() *analysis.Summary {
	v.summaryOnce.Do(func() {
		v.summary = analysis.SummarizeMemo(v.survey, v.survey.Names, v.memo)
	})
	return v.summary
}

// Bottleneck computes the minimum-cut bottleneck of one name's trust
// graph, served from the fleet's cross-generation chain memo.
func (v *FleetView) Bottleneck(name string) (*mincut.Result, error) {
	return analysis.BottleneckOfMemo(v.survey, name, v.memo)
}

// Bottlenecks computes (once, on success) bottleneck statistics over
// the whole merged corpus. Errors — cancellation — are returned and
// never cached.
func (v *FleetView) Bottlenecks(ctx context.Context) (*analysis.BottleneckStats, error) {
	v.botMu.Lock()
	defer v.botMu.Unlock()
	if v.botStats != nil {
		return v.botStats, nil
	}
	st, err := analysis.BottlenecksMemo(ctx, v.survey, v.survey.Names, 0, v.memo)
	if err != nil {
		return nil, err
	}
	v.botStats = st
	return st, nil
}

// Diff computes the typed trust delta from older to v. Both views
// share the coordinator's union store, so retained-window diffs take
// the journal-backed incremental path.
func (v *FleetView) Diff(ctx context.Context, older *FleetView) (*delta.Delta, error) {
	return delta.Compute(ctx, older.survey, v.survey, delta.Options{
		OldMemo: older.memo,
		NewMemo: v.memo,
	})
}
