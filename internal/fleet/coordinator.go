package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"maps"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnstrust/internal/analysis"
	"dnstrust/internal/atomicio"
	"dnstrust/internal/core"
	"dnstrust/internal/crawler"
	"dnstrust/internal/delta"
	"dnstrust/internal/snapshot"
	"dnstrust/internal/vulndb"
)

// Shard names one member of the fleet and the source its epochs are
// fetched from.
type Shard struct {
	Name   string
	Source Source
}

// Config tunes the Coordinator. The zero value is usable.
type Config struct {
	// Quorum is the minimum number of shards that must answer a commit
	// round (fresh data or a confirmed "unchanged") for the round to
	// commit; shards below quorum fail the round and the previous view
	// stands. 0 means a majority: len(shards)/2 + 1.
	Quorum int
	// Timeout bounds one commit round end to end: a shard that never
	// responds costs at most this long before the round proceeds
	// without it. 0 means 30s.
	Timeout time.Duration
	// Attempts is the per-shard fetch attempt budget per round (0 = 3);
	// Backoff is the first retry delay, doubling per attempt (0 = 200ms).
	Attempts int
	Backoff  time.Duration
	// Retain bounds the committed-generation timeline (0 = 8). Older
	// views fall off and their change journals are pruned.
	Retain int
	// SnapshotFile, when set, persists the merged snapshot there (via
	// atomic rename) after every commit that produced a new generation.
	SnapshotFile string
	// Logf, when set, receives one line per commit round.
	Logf func(format string, args ...any)
}

func (c Config) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 30 * time.Second
	}
	return c.Timeout
}

func (c Config) attempts() int {
	if c.Attempts <= 0 {
		return 3
	}
	return c.Attempts
}

func (c Config) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 200 * time.Millisecond
	}
	return c.Backoff
}

func (c Config) retain() int {
	if c.Retain <= 0 {
		return 8
	}
	return c.Retain
}

func (c Config) quorum(n int) int {
	if c.Quorum <= 0 {
		return n/2 + 1
	}
	return c.Quorum
}

// remapTable translates one shard's intern space into the union's:
// remap.hosts[shardHostID] is the union host id, and likewise for
// zones and chains. Shard intern tables are append-only across a
// monitor session, so the tables only ever extend at the tail — an
// unchanged prefix is reused verbatim commit after commit, which is
// what makes re-merging an N-shard fleet incremental.
type remapTable struct {
	hosts  []int32
	zones  []int32
	chains []int32
}

// shardState is the coordinator's per-shard bookkeeping. It is only
// mutated inside a commit round (serialized by commitSem), never by
// the fetch goroutines, which work on copied values.
type shardState struct {
	name  string
	src   Source
	gen   int64 // last applied shard generation, -1 before the first
	remap remapTable

	stale    bool
	lastErr  string
	fetches  int64
	failures int64
}

// Coordinator merges N shard monitors into one logical survey. Each
// Commit round pulls every shard's current epoch concurrently (an
// unchanged shard answers with a cheap conditional fetch), translates
// new shard ids into the unioned intern space through per-shard remap
// tables, and commits the merged graph as a generation-stamped
// FleetView. Shards share nothing: each one crawls its own name
// partition against its own store, and only snapshot bytes cross the
// wire.
type Coordinator struct {
	cfg    Config
	shards []*shardState // sorted by name; stable for the lifetime

	// commitSem serializes commit rounds (and snapshot writes, which
	// need a quiescent builder). It is a capacity-1 channel rather than
	// a mutex because a round legitimately spans shard I/O — fetches,
	// retries, the merged-snapshot save — and blocking operations must
	// never run under a mutex.
	commitSem chan struct{}

	// mu is the merge lock: held only for the in-memory merge and view
	// publication, never across I/O or channel operations.
	mu     sync.Mutex
	b      *core.Builder
	banner map[string]string
	vulns  map[string][]vulndb.Vuln
	db     *vulndb.DB
	memo   *analysis.ChainMemo
	gen    int64

	view atomic.Pointer[FleetView]

	tlMu     sync.Mutex
	timeline []*FleetView

	stMu   sync.Mutex
	status []ShardStatus
}

// New builds a Coordinator over the given shards. Shard names must be
// unique and non-empty; order does not matter (merges apply in sorted
// name order, so two coordinators over the same shard set converge on
// byte-identical merged snapshots).
func New(shards []Shard, cfg Config) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, errors.New("fleet: no shards configured")
	}
	c := &Coordinator{
		cfg:       cfg,
		commitSem: make(chan struct{}, 1),
		b:         core.NewBuilder(0),
		banner:    make(map[string]string),
		vulns:     make(map[string][]vulndb.Vuln),
		db:        vulndb.Default(),
		memo:      analysis.NewChainMemo(),
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s.Name == "" {
			return nil, errors.New("fleet: shard with empty name")
		}
		if s.Source == nil {
			return nil, fmt.Errorf("fleet: shard %s has no source", s.Name)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("fleet: duplicate shard name %s", s.Name)
		}
		seen[s.Name] = true
		c.shards = append(c.shards, &shardState{name: s.Name, src: s.Source, gen: -1})
	}
	sort.Slice(c.shards, func(i, j int) bool { return c.shards[i].name < c.shards[j].name })
	c.status = c.statusSnapshot()
	return c, nil
}

// ShardNames returns the fleet's shard names, sorted.
func (c *Coordinator) ShardNames() []string {
	out := make([]string, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.name
	}
	return out
}

// Current returns the latest committed FleetView, or nil before the
// first successful Commit. It never blocks behind an in-flight commit.
func (c *Coordinator) Current() *FleetView { return c.view.Load() }

// Generation reports the latest committed fleet generation (0 before
// the first Commit).
func (c *Coordinator) Generation() int64 {
	if v := c.view.Load(); v != nil {
		return v.Generation()
	}
	return 0
}

// Timeline returns the retained committed generations, oldest to
// newest. Retained views share the union store copy-on-write.
func (c *Coordinator) Timeline() []*FleetView {
	c.tlMu.Lock()
	defer c.tlMu.Unlock()
	return append([]*FleetView(nil), c.timeline...)
}

// Between computes the typed trust delta from fleet generation from to
// generation to; both must still be retained.
func (c *Coordinator) Between(ctx context.Context, from, to int64) (*delta.Delta, error) {
	if from > to {
		return nil, fmt.Errorf("fleet: Between(%d, %d): from exceeds to", from, to)
	}
	var vf, vt *FleetView
	c.tlMu.Lock()
	lo, hi := int64(-1), int64(-1)
	for _, v := range c.timeline {
		g := v.Generation()
		if lo < 0 {
			lo = g
		}
		hi = g
		if g == from {
			vf = v
		}
		if g == to {
			vt = v
		}
	}
	c.tlMu.Unlock()
	if vf == nil || vt == nil {
		return nil, fmt.Errorf("fleet: generations %d..%d not retained (timeline holds %d..%d; raise Config.Retain)", from, to, lo, hi)
	}
	return vt.Diff(ctx, vf)
}

// Status returns every shard's health as of the last commit round.
func (c *Coordinator) Status() []ShardStatus {
	c.stMu.Lock()
	defer c.stMu.Unlock()
	return append([]ShardStatus(nil), c.status...)
}

func (c *Coordinator) statusSnapshot() []ShardStatus {
	out := make([]ShardStatus, len(c.shards))
	for i, s := range c.shards {
		out[i] = ShardStatus{
			Name:       s.name,
			Generation: s.gen,
			Stale:      s.stale,
			Err:        s.lastErr,
			Fetches:    s.fetches,
			Failures:   s.failures,
		}
	}
	return out
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// fetchResult is one shard's answer to a commit round.
type fetchResult struct {
	idx int
	ep  *Epoch // nil when the shard is unchanged
	err error
}

// Commit runs one fleet round: fetch every shard's current epoch
// concurrently, merge what changed, and publish a new FleetView. A
// shard that fails its fetch keeps its previous contribution and is
// marked stale in the view; if fewer than the quorum answer, nothing
// commits and the previous view stands. A round in which no shard
// changed (and the stale set did not move) returns the current view
// without minting a generation. Rounds are serialized; concurrent
// Commits queue.
func (c *Coordinator) Commit(ctx context.Context) (*FleetView, error) {
	select {
	case c.commitSem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("fleet: commit: %w", ctx.Err())
	}
	defer func() { <-c.commitSem }()

	// Phase 1: fetch. One goroutine per shard, each sending exactly one
	// result into a buffered channel (so the send never blocks and the
	// goroutine always exits); the round deadline unblocks fetches to
	// shards that never respond.
	rctx, cancel := context.WithTimeout(ctx, c.cfg.timeout())
	defer cancel()
	attempts, backoff := c.cfg.attempts(), c.cfg.backoff()
	results := make(chan fetchResult, len(c.shards))
	for i, st := range c.shards {
		src, haveGen := st.src, st.gen
		go func(idx int) {
			ep, err := fetchWithRetry(rctx, src, haveGen, attempts, backoff)
			results <- fetchResult{idx: idx, ep: ep, err: err}
		}(i)
	}
	eps := make([]*Epoch, len(c.shards))
	fresh := 0
	for range c.shards {
		r := <-results
		st := c.shards[r.idx]
		st.fetches++
		if r.err == nil && r.ep != nil && r.ep.HasMeta && r.ep.Shard != st.name {
			// The source answered for a different shard: a misrouted URL
			// would silently double-count a partition, so treat it as a
			// fetch failure.
			r.err = fmt.Errorf("fleet: shard %s answered as %q", st.name, r.ep.Shard)
			r.ep = nil
		}
		if r.err != nil {
			st.failures++
			st.stale = true
			st.lastErr = r.err.Error()
			continue
		}
		st.stale = false
		st.lastErr = ""
		fresh++
		eps[r.idx] = r.ep
	}

	if q := c.cfg.quorum(len(c.shards)); fresh < q {
		c.publishStatus()
		c.logf("fleet: commit aborted: %d/%d shards answered, quorum is %d", fresh, len(c.shards), q)
		return nil, fmt.Errorf("fleet: quorum not met: %d of %d shards answered (need %d)", fresh, len(c.shards), q)
	}

	staleNames := make([]string, 0)
	for _, st := range c.shards {
		if st.stale {
			staleNames = append(staleNames, st.name)
		}
	}

	changedShards := 0
	for _, ep := range eps {
		if ep != nil {
			changedShards++
		}
	}
	if changedShards == 0 {
		if prev := c.view.Load(); prev != nil && stringSlicesEqual(prev.stale, staleNames) {
			c.publishStatus()
			return prev, nil
		}
	}

	// Phase 2: merge, under the merge lock — pure in-memory work only.
	c.mu.Lock()
	for i, st := range c.shards {
		if eps[i] == nil {
			continue
		}
		c.applyEpochLocked(st, eps[i])
		st.gen = eps[i].Generation
	}
	prev := c.view.Load()
	var prevSurvey *crawler.Survey
	if prev != nil {
		prevSurvey = prev.survey
	}
	g := c.b.FinishEpoch()
	late := c.b.TakeLateAttached()
	c.gen++
	gen := c.gen
	sv := &crawler.Survey{
		Graph:  g,
		Names:  g.Names(),
		Failed: maps.Clone(c.b.Failed()),
		Banner: maps.Clone(c.banner),
		Vulns:  maps.Clone(c.vulns),
		DB:     c.db,
		Stats: crawler.CrawlStats{
			Generation:        gen,
			LateAttachedHosts: late,
		},
	}
	if prevSurvey != nil {
		c.memo.Advance(prevSurvey, sv)
	}
	changed := sv.Names
	if prevSurvey != nil {
		pg := prevSurvey.Graph
		if g.SharesStore(pg) && pg.Epoch() <= g.Epoch() && g.JournalComplete(pg.Epoch()) {
			changed = g.NamesTouchedSince(pg.Epoch())
		}
	}
	fv := &FleetView{
		survey:  sv,
		memo:    c.memo,
		stale:   staleNames,
		shards:  c.statusSnapshot(),
		changed: changed,
	}
	// View pointer and timeline commit inside one critical section, as
	// in the single-monitor path: a reader who saw the new generation
	// via Current() finds it in the timeline.
	c.tlMu.Lock()
	c.view.Store(fv)
	c.timeline = append(c.timeline, fv)
	evicted := len(c.timeline) > c.cfg.retain()
	if evicted {
		c.timeline = append([]*FleetView(nil), c.timeline[len(c.timeline)-c.cfg.retain():]...)
	}
	oldest := c.timeline[0]
	c.tlMu.Unlock()
	if evicted {
		c.b.PruneJournal(oldest.survey.Graph.Epoch())
	}
	c.mu.Unlock()

	c.publishStatus()
	c.logf("fleet: committed generation %d: %d/%d shards changed, %d stale, %d names",
		gen, changedShards, len(c.shards), len(staleNames), len(sv.Names))

	// Phase 3: durability, outside the merge lock (the commit semaphore
	// keeps the builder quiescent while the sections stream out).
	if c.cfg.SnapshotFile != "" {
		if _, err := atomicio.WriteFile(c.cfg.SnapshotFile, c.writeSnapshotQuiesced); err != nil {
			return fv, fmt.Errorf("fleet: generation %d committed, snapshot save failed: %w", gen, err)
		}
	}
	return fv, nil
}

func (c *Coordinator) publishStatus() {
	st := c.statusSnapshot()
	c.stMu.Lock()
	c.status = st
	c.stMu.Unlock()
}

// applyEpochLocked merges one shard epoch into the union builder,
// extending the shard's remap tables from their current length — the
// already-translated prefix is reused untouched. Caller holds c.mu.
func (c *Coordinator) applyEpochLocked(st *shardState, ep *Epoch) {
	rm := &st.remap
	if ep.Generation < st.gen ||
		len(ep.Hosts) < len(rm.hosts) || len(ep.Zones) < len(rm.zones) || len(ep.Chains) < len(rm.chains) {
		// The shard restarted from scratch: its intern tables no longer
		// extend the ones we translated. Drop the remap and re-translate
		// fully — re-interning is idempotent against the union store.
		st.remap = remapTable{}
		rm = &st.remap
	}
	for i := len(rm.hosts); i < len(ep.Hosts); i++ {
		rm.hosts = append(rm.hosts, c.b.InternHost(ep.Hosts[i]))
	}
	for i := len(rm.zones); i < len(ep.Zones); i++ {
		ns := ep.ZoneNS[i]
		mapped := make([]int32, len(ns))
		for j, h := range ns {
			mapped[j] = rm.hosts[h]
		}
		rm.zones = append(rm.zones, c.b.InternZone(ep.Zones[i], mapped))
	}
	for i := len(rm.chains); i < len(ep.Chains); i++ {
		ids := ep.Chains[i]
		mapped := make([]int32, len(ids))
		for j, z := range ids {
			mapped[j] = rm.zones[z]
		}
		rm.chains = append(rm.chains, c.b.InternChain(mapped))
	}
	for h, cid := range ep.HostChain {
		switch cid {
		case chainNone:
		case chainEmpty:
			c.b.AttachHostChain(rm.hosts[h], c.b.InternChain(nil))
		default:
			c.b.AttachHostChain(rm.hosts[h], rm.chains[cid])
		}
	}
	for _, nc := range ep.Names {
		c.b.CompleteChain(nc.Name, rm.chains[nc.Chain])
	}
	for _, fe := range ep.Failed {
		c.b.Fail(fe.Name, errors.New(fe.Err))
	}
	for i, h := range ep.BannerHosts {
		if old, ok := c.banner[h]; ok && old == ep.Banners[i] {
			continue
		}
		c.banner[h] = ep.Banners[i]
		if vs := c.db.VulnsForBanner(ep.Banners[i]); len(vs) > 0 {
			c.vulns[h] = vs
		} else {
			delete(c.vulns, h)
		}
	}
}

// WriteSnapshot serializes the merged union state — the builder's
// sections plus fleet metadata and the merged banner table — as one
// snapshot file on w. It waits for any in-flight commit round to
// finish; merges from the same shard snapshot set produce
// byte-identical output regardless of fetch timing.
func (c *Coordinator) WriteSnapshot(w io.Writer) error {
	c.commitSem <- struct{}{}
	defer func() { <-c.commitSem }()
	return c.writeSnapshotQuiesced(w)
}

// SaveSnapshot writes the merged snapshot to path via atomic rename.
func (c *Coordinator) SaveSnapshot(path string) error {
	c.commitSem <- struct{}{}
	defer func() { <-c.commitSem }()
	_, err := atomicio.WriteFile(path, c.writeSnapshotQuiesced)
	return err
}

// writeSnapshotQuiesced streams the merged snapshot; the caller must
// hold the commit semaphore so no round mutates the builder mid-write.
func (c *Coordinator) writeSnapshotQuiesced(w io.Writer) error {
	sw := snapshot.NewWriter(w)
	if err := c.b.WriteSections(sw); err != nil {
		return err
	}

	sw.Begin("fleet/meta")
	sw.I64(c.gen)
	sw.U64(uint64(len(c.shards)))
	gens := make([]int64, len(c.shards))
	names := make([]string, len(c.shards))
	for i, s := range c.shards {
		gens[i] = s.gen
		names[i] = s.name
	}
	sw.I64s(gens)
	if err := snapshot.WriteStringTable(sw, names); err != nil {
		return err
	}

	sw.Begin("fleet/banner")
	hosts := make([]string, 0, len(c.banner))
	for h := range c.banner {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	banners := make([]string, len(hosts))
	for i, h := range hosts {
		banners[i] = c.banner[h]
	}
	if err := snapshot.WriteStringTable(sw, hosts); err != nil {
		return err
	}
	if err := snapshot.WriteStringTable(sw, banners); err != nil {
		return err
	}

	return sw.Finish()
}

func stringSlicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
