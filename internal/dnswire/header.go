package dnswire

import "fmt"

// Header is the 12-octet DNS message header (RFC 1035 §4.1.1), with the
// flag bits broken out and the section counts kept implicit (they are
// derived from the message's slices when packing).
type Header struct {
	ID                 uint16
	Response           bool // QR
	Opcode             Opcode
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	RCode              RCode
}

const headerLen = 12

// appendHeader packs the header with explicit section counts.
func (h Header) appendHeader(buf []byte, qd, an, ns, ar int) ([]byte, error) {
	for _, n := range [...]int{qd, an, ns, ar} {
		if n > int(^uint16(0)) {
			return nil, ErrTooManyRecords
		}
	}
	var flags uint16
	if h.Response {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xF) << 11
	if h.Authoritative {
		flags |= 1 << 10
	}
	if h.Truncated {
		flags |= 1 << 9
	}
	if h.RecursionDesired {
		flags |= 1 << 8
	}
	if h.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(h.RCode & 0xF)
	buf = appendUint16(buf, h.ID)
	buf = appendUint16(buf, flags)
	buf = appendUint16(buf, uint16(qd))
	buf = appendUint16(buf, uint16(an))
	buf = appendUint16(buf, uint16(ns))
	buf = appendUint16(buf, uint16(ar))
	return buf, nil
}

// unpackHeader decodes the header and returns it with the section counts.
func unpackHeader(msg []byte) (h Header, qd, an, ns, ar int, err error) {
	if len(msg) < headerLen {
		return Header{}, 0, 0, 0, 0, ErrShortMessage
	}
	h.ID = uint16(msg[0])<<8 | uint16(msg[1])
	flags := uint16(msg[2])<<8 | uint16(msg[3])
	h.Response = flags&(1<<15) != 0
	h.Opcode = Opcode(flags >> 11 & 0xF)
	h.Authoritative = flags&(1<<10) != 0
	h.Truncated = flags&(1<<9) != 0
	h.RecursionDesired = flags&(1<<8) != 0
	h.RecursionAvailable = flags&(1<<7) != 0
	h.RCode = RCode(flags & 0xF)
	qd = int(uint16(msg[4])<<8 | uint16(msg[5]))
	an = int(uint16(msg[6])<<8 | uint16(msg[7]))
	ns = int(uint16(msg[8])<<8 | uint16(msg[9]))
	ar = int(uint16(msg[10])<<8 | uint16(msg[11]))
	return h, qd, an, ns, ar, nil
}

func (h Header) String() string {
	return fmt.Sprintf("id=%d %s %s qr=%t aa=%t tc=%t rd=%t ra=%t",
		h.ID, h.Opcode, h.RCode, h.Response, h.Authoritative, h.Truncated,
		h.RecursionDesired, h.RecursionAvailable)
}

func appendUint16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

func appendUint32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readUint16(msg []byte, off int) (uint16, int, error) {
	if off+2 > len(msg) {
		return 0, 0, ErrShortMessage
	}
	return uint16(msg[off])<<8 | uint16(msg[off+1]), off + 2, nil
}

func readUint32(msg []byte, off int) (uint32, int, error) {
	if off+4 > len(msg) {
		return 0, 0, ErrShortMessage
	}
	v := uint32(msg[off])<<24 | uint32(msg[off+1])<<16 |
		uint32(msg[off+2])<<8 | uint32(msg[off+3])
	return v, off + 4, nil
}
