package dnswire

import "errors"

// Decoding and encoding errors. Unpack functions return these wrapped with
// positional context via fmt.Errorf("...: %w", err) where useful.
var (
	// ErrShortMessage indicates the buffer ended before a complete field.
	ErrShortMessage = errors.New("dnswire: message too short")
	// ErrNameTooLong indicates a domain name exceeding 255 wire octets.
	ErrNameTooLong = errors.New("dnswire: domain name exceeds 255 octets")
	// ErrLabelTooLong indicates a label exceeding 63 octets.
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	// ErrCompressionLoop indicates a compression pointer cycle or a pointer
	// that does not strictly decrease, which malicious messages use to make
	// naive decoders spin.
	ErrCompressionLoop = errors.New("dnswire: compression pointer loop")
	// ErrBadPointer indicates a compression pointer outside the message.
	ErrBadPointer = errors.New("dnswire: compression pointer out of range")
	// ErrBadLabelType indicates a label type other than literal (00) or
	// pointer (11); the obsolete 01/10 types are rejected.
	ErrBadLabelType = errors.New("dnswire: unsupported label type")
	// ErrTrailingBytes indicates bytes remaining after the counted records.
	ErrTrailingBytes = errors.New("dnswire: trailing bytes after message")
	// ErrBadRDLength indicates an RDLENGTH inconsistent with its RDATA.
	ErrBadRDLength = errors.New("dnswire: RDLENGTH mismatch")
	// ErrMessageTooLarge indicates a message that cannot fit the transport.
	ErrMessageTooLarge = errors.New("dnswire: message exceeds 64 KiB")
	// ErrTooManyRecords indicates section counts exceeding sane bounds.
	ErrTooManyRecords = errors.New("dnswire: implausible section count")
	// ErrBadStringLength indicates a character-string that overruns RDATA.
	ErrBadStringLength = errors.New("dnswire: character-string overruns data")
)
