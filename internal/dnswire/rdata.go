package dnswire

import (
	"fmt"
	"net/netip"
	"strings"
)

// RData is the typed payload of a resource record. Implementations pack
// themselves into wire format and render presentation format via String.
//
// Host-name fields inside RDATA (NS, CNAME, PTR, MX, SOA) are packed with
// compression when a Compressor is supplied, as RFC 1035 permits for these
// well-known types.
type RData interface {
	// RType returns the RR type this RDATA belongs to.
	RType() Type
	// appendRData appends the packed RDATA (without the RDLENGTH prefix).
	appendRData(buf []byte, c *Compressor) ([]byte, error)
	// String renders the RDATA in presentation format.
	String() string
}

// A is an IPv4 address record payload (RFC 1035 §3.4.1).
type A struct {
	Addr netip.Addr
}

func (A) RType() Type { return TypeA }

func (a A) appendRData(buf []byte, _ *Compressor) ([]byte, error) {
	if !a.Addr.Is4() {
		return nil, fmt.Errorf("dnswire: A record address %v is not IPv4", a.Addr)
	}
	b := a.Addr.As4()
	return append(buf, b[:]...), nil
}

func (a A) String() string { return a.Addr.String() }

// AAAA is an IPv6 address record payload (RFC 3596).
type AAAA struct {
	Addr netip.Addr
}

func (AAAA) RType() Type { return TypeAAAA }

func (a AAAA) appendRData(buf []byte, _ *Compressor) ([]byte, error) {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return nil, fmt.Errorf("dnswire: AAAA record address %v is not IPv6", a.Addr)
	}
	b := a.Addr.As16()
	return append(buf, b[:]...), nil
}

func (a AAAA) String() string { return a.Addr.String() }

// NS is a nameserver record payload (RFC 1035 §3.3.11). Host is the
// canonical host name of the authoritative server.
type NS struct {
	Host string
}

func (NS) RType() Type { return TypeNS }

func (n NS) appendRData(buf []byte, c *Compressor) ([]byte, error) {
	return AppendName(buf, n.Host, c)
}

func (n NS) String() string { return presentName(n.Host) }

// CNAME is a canonical-name record payload (RFC 1035 §3.3.1).
type CNAME struct {
	Target string
}

func (CNAME) RType() Type { return TypeCNAME }

func (r CNAME) appendRData(buf []byte, c *Compressor) ([]byte, error) {
	return AppendName(buf, r.Target, c)
}

func (r CNAME) String() string { return presentName(r.Target) }

// PTR is a pointer record payload (RFC 1035 §3.3.12).
type PTR struct {
	Target string
}

func (PTR) RType() Type { return TypePTR }

func (r PTR) appendRData(buf []byte, c *Compressor) ([]byte, error) {
	return AppendName(buf, r.Target, c)
}

func (r PTR) String() string { return presentName(r.Target) }

// MX is a mail-exchanger record payload (RFC 1035 §3.3.9).
type MX struct {
	Preference uint16
	Host       string
}

func (MX) RType() Type { return TypeMX }

func (m MX) appendRData(buf []byte, c *Compressor) ([]byte, error) {
	buf = appendUint16(buf, m.Preference)
	return AppendName(buf, m.Host, c)
}

func (m MX) String() string { return fmt.Sprintf("%d %s", m.Preference, presentName(m.Host)) }

// SOA is a start-of-authority record payload (RFC 1035 §3.3.13).
type SOA struct {
	MName   string // primary nameserver
	RName   string // responsible mailbox, encoded as a domain name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

func (SOA) RType() Type { return TypeSOA }

func (s SOA) appendRData(buf []byte, c *Compressor) ([]byte, error) {
	var err error
	if buf, err = AppendName(buf, s.MName, c); err != nil {
		return nil, err
	}
	if buf, err = AppendName(buf, s.RName, c); err != nil {
		return nil, err
	}
	buf = appendUint32(buf, s.Serial)
	buf = appendUint32(buf, s.Refresh)
	buf = appendUint32(buf, s.Retry)
	buf = appendUint32(buf, s.Expire)
	buf = appendUint32(buf, s.Minimum)
	return buf, nil
}

func (s SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		presentName(s.MName), presentName(s.RName),
		s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

// TXT is a text record payload (RFC 1035 §3.3.14): one or more
// character-strings of at most 255 octets each. version.bind answers
// travel as CH-class TXT records.
type TXT struct {
	Text []string
}

func (TXT) RType() Type { return TypeTXT }

func (t TXT) appendRData(buf []byte, _ *Compressor) ([]byte, error) {
	if len(t.Text) == 0 {
		// RFC 1035 requires at least one character-string; emit an empty one.
		return append(buf, 0), nil
	}
	for _, s := range t.Text {
		if len(s) > 255 {
			return nil, ErrBadStringLength
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

func (t TXT) String() string {
	parts := make([]string, len(t.Text))
	for i, s := range t.Text {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// Raw carries RDATA of a type this package does not model (including OPT).
// It round-trips opaque bytes so unknown records survive unpack/pack.
type Raw struct {
	Type Type
	Data []byte
}

func (r Raw) RType() Type { return r.Type }

func (r Raw) appendRData(buf []byte, _ *Compressor) ([]byte, error) {
	return append(buf, r.Data...), nil
}

func (r Raw) String() string { return fmt.Sprintf("\\# %d %x", len(r.Data), r.Data) }

func presentName(name string) string {
	if name == "" {
		return "."
	}
	return name + "."
}

// unpackRData decodes the RDATA of the given type from msg[off:off+rdlen].
// Compressed names inside RDATA are resolved against the whole message.
func unpackRData(msg []byte, off, rdlen int, typ Type) (RData, error) {
	end := off + rdlen
	if end > len(msg) {
		return nil, ErrShortMessage
	}
	switch typ {
	case TypeA:
		if rdlen != 4 {
			return nil, ErrBadRDLength
		}
		return A{Addr: netip.AddrFrom4([4]byte(msg[off:end]))}, nil
	case TypeAAAA:
		if rdlen != 16 {
			return nil, ErrBadRDLength
		}
		return AAAA{Addr: netip.AddrFrom16([16]byte(msg[off:end]))}, nil
	case TypeNS, TypeCNAME, TypePTR:
		host, next, err := UnpackName(msg, off)
		if err != nil {
			return nil, err
		}
		if next != end {
			return nil, ErrBadRDLength
		}
		switch typ {
		case TypeNS:
			return NS{Host: host}, nil
		case TypeCNAME:
			return CNAME{Target: host}, nil
		default:
			return PTR{Target: host}, nil
		}
	case TypeMX:
		pref, noff, err := readUint16(msg, off)
		if err != nil {
			return nil, err
		}
		host, next, err := UnpackName(msg, noff)
		if err != nil {
			return nil, err
		}
		if next != end {
			return nil, ErrBadRDLength
		}
		return MX{Preference: pref, Host: host}, nil
	case TypeSOA:
		mname, noff, err := UnpackName(msg, off)
		if err != nil {
			return nil, err
		}
		rname, noff, err := UnpackName(msg, noff)
		if err != nil {
			return nil, err
		}
		var s SOA
		s.MName, s.RName = mname, rname
		if s.Serial, noff, err = readUint32(msg, noff); err != nil {
			return nil, err
		}
		if s.Refresh, noff, err = readUint32(msg, noff); err != nil {
			return nil, err
		}
		if s.Retry, noff, err = readUint32(msg, noff); err != nil {
			return nil, err
		}
		if s.Expire, noff, err = readUint32(msg, noff); err != nil {
			return nil, err
		}
		if s.Minimum, noff, err = readUint32(msg, noff); err != nil {
			return nil, err
		}
		if noff != end {
			return nil, ErrBadRDLength
		}
		return s, nil
	case TypeTXT:
		var texts []string
		p := off
		for p < end {
			n := int(msg[p])
			p++
			if p+n > end {
				return nil, ErrBadStringLength
			}
			texts = append(texts, string(msg[p:p+n]))
			p += n
		}
		return TXT{Text: texts}, nil
	default:
		data := make([]byte, rdlen)
		copy(data, msg[off:end])
		return Raw{Type: typ, Data: data}, nil
	}
}
