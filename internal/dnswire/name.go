package dnswire

import (
	"strings"
)

// maxWireName is the RFC 1035 §3.1 limit on encoded name length.
const maxWireName = 255

// Compressor tracks name offsets while packing a message so later names can
// be encoded as compression pointers (RFC 1035 §4.1.4). The zero value
// disables compression; use NewCompressor to enable it.
type Compressor struct {
	offsets map[string]int
}

// NewCompressor returns a Compressor that emits compression pointers.
func NewCompressor() *Compressor {
	return &Compressor{offsets: make(map[string]int)}
}

// AppendName appends the wire encoding of the canonical name to buf,
// compressing against previously packed names when c is non-nil and was
// created by NewCompressor. The name must already be canonical (lower-case,
// no trailing dot); the root is "".
func AppendName(buf []byte, name string, c *Compressor) ([]byte, error) {
	if name == "" {
		return append(buf, 0), nil
	}
	if wireNameLen(name) > maxWireName {
		return nil, ErrNameTooLong
	}
	rest := name
	for rest != "" {
		// Compression pointers can only address the first 16 KiB - 1.
		if c != nil && c.offsets != nil {
			if off, ok := c.offsets[rest]; ok && off < 0x3FFF {
				return append(buf, 0xC0|byte(off>>8), byte(off)), nil
			}
			if len(buf) < 0x3FFF {
				c.offsets[rest] = len(buf)
			}
		}
		label := rest
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			label, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if len(label) == 0 {
			return nil, ErrShortMessage // empty label: malformed canonical name
		}
		if len(label) > 63 {
			return nil, ErrLabelTooLong
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

func wireNameLen(name string) int {
	if name == "" {
		return 1
	}
	return len(name) + 2
}

// UnpackName decodes a (possibly compressed) domain name starting at off in
// msg. It returns the canonical name and the offset just past the name's
// representation at its original location (pointers are followed for
// content but do not advance the caller's offset past the pointer itself).
//
// Decompression is loop-safe: each pointer must target an offset strictly
// below the position where the pointer occurred, which both matches how
// legitimate encoders emit pointers and bounds the walk.
func UnpackName(msg []byte, off int) (name string, next int, err error) {
	var sb strings.Builder
	ptrBudget := 0 // offset ceiling once we have followed a pointer; 0 = none yet
	next = -1
	length := 0
	for iter := 0; ; iter++ {
		if iter > 255 { // generous upper bound; a valid name has <= 127 labels
			return "", 0, ErrCompressionLoop
		}
		if off >= len(msg) {
			return "", 0, ErrShortMessage
		}
		b := int(msg[off])
		switch b & 0xC0 {
		case 0x00: // literal label
			if b == 0 {
				if next < 0 {
					next = off + 1
				}
				return sb.String(), next, nil
			}
			if off+1+b > len(msg) {
				return "", 0, ErrShortMessage
			}
			length += b + 1
			if length+1 > maxWireName {
				return "", 0, ErrNameTooLong
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			for _, c := range msg[off+1 : off+1+b] {
				if c >= 'A' && c <= 'Z' {
					c += 'a' - 'A'
				}
				sb.WriteByte(c)
			}
			off += 1 + b
		case 0xC0: // compression pointer
			if off+2 > len(msg) {
				return "", 0, ErrShortMessage
			}
			target := (b&0x3F)<<8 | int(msg[off+1])
			if next < 0 {
				next = off + 2
			}
			// Pointers must strictly decrease to guarantee termination.
			limit := off
			if ptrBudget > 0 && ptrBudget < limit {
				limit = ptrBudget
			}
			if target >= limit {
				if target >= len(msg) {
					return "", 0, ErrBadPointer
				}
				return "", 0, ErrCompressionLoop
			}
			ptrBudget = target
			off = target
		default:
			return "", 0, ErrBadLabelType
		}
	}
}
