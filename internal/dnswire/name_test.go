package dnswire

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppendNameRoot(t *testing.T) {
	buf, err := AppendName(nil, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0}) {
		t.Errorf("root encodes to %v, want [0]", buf)
	}
}

func TestAppendNameSimple(t *testing.T) {
	buf, err := AppendName(nil, "www.cs.cornell.edu", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("\x03www\x02cs\x07cornell\x03edu\x00")
	if !bytes.Equal(buf, want) {
		t.Errorf("got %q, want %q", buf, want)
	}
}

func TestNameRoundTrip(t *testing.T) {
	names := []string{
		"", "com", "cornell.edu", "www.cs.cornell.edu",
		"a.gtld-servers.net", "reston-ns2.telemail.net",
		strings.Repeat("a", 63) + ".example.com",
	}
	for _, name := range names {
		buf, err := AppendName(nil, name, nil)
		if err != nil {
			t.Fatalf("AppendName(%q): %v", name, err)
		}
		got, next, err := UnpackName(buf, 0)
		if err != nil {
			t.Fatalf("UnpackName(%q): %v", name, err)
		}
		if got != name {
			t.Errorf("round trip of %q gave %q", name, got)
		}
		if next != len(buf) {
			t.Errorf("next offset = %d, want %d", next, len(buf))
		}
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		name := randomWireName(r)
		buf, err := AppendName(nil, name, nil)
		if err != nil {
			return false
		}
		got, _, err := UnpackName(buf, 0)
		return err == nil && got == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAppendNameTooLong(t *testing.T) {
	long := strings.Repeat("abcdefgh.", 31) + "com" // > 255 wire octets
	if _, err := AppendName(nil, long, nil); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("got %v, want ErrNameTooLong", err)
	}
}

func TestAppendNameLabelTooLong(t *testing.T) {
	bad := strings.Repeat("a", 64) + ".com"
	if _, err := AppendName(nil, bad, nil); !errors.Is(err, ErrLabelTooLong) {
		t.Errorf("got %v, want ErrLabelTooLong", err)
	}
}

func TestCompression(t *testing.T) {
	c := NewCompressor()
	buf, err := AppendName(nil, "ns1.cornell.edu", c)
	if err != nil {
		t.Fatal(err)
	}
	first := len(buf)
	buf, err = AppendName(buf, "ns2.cornell.edu", c)
	if err != nil {
		t.Fatal(err)
	}
	// Second name should be "ns2" + pointer: 1+3+2 = 6 bytes.
	if len(buf)-first != 6 {
		t.Errorf("compressed name used %d bytes, want 6", len(buf)-first)
	}
	got1, next, err := UnpackName(buf, 0)
	if err != nil || got1 != "ns1.cornell.edu" {
		t.Fatalf("first = %q, %v", got1, err)
	}
	got2, _, err := UnpackName(buf, next)
	if err != nil || got2 != "ns2.cornell.edu" {
		t.Fatalf("second = %q, %v", got2, err)
	}
}

func TestCompressionExactRepeat(t *testing.T) {
	c := NewCompressor()
	buf, _ := AppendName(nil, "cornell.edu", c)
	first := len(buf)
	buf, _ = AppendName(buf, "cornell.edu", c)
	if len(buf)-first != 2 {
		t.Errorf("repeated name used %d bytes, want a 2-byte pointer", len(buf)-first)
	}
	got, _, err := UnpackName(buf, first)
	if err != nil || got != "cornell.edu" {
		t.Errorf("got %q, %v", got, err)
	}
}

func TestUnpackNameUppercaseFolds(t *testing.T) {
	buf := []byte("\x03WWW\x07Cornell\x03EDU\x00")
	got, _, err := UnpackName(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != "www.cornell.edu" {
		t.Errorf("got %q, want lower-cased name", got)
	}
}

func TestUnpackNamePointerLoop(t *testing.T) {
	// A name that is a pointer to itself.
	self := []byte{0xC0, 0x00}
	if _, _, err := UnpackName(self, 0); !errors.Is(err, ErrCompressionLoop) {
		t.Errorf("self-pointer: got %v, want ErrCompressionLoop", err)
	}
	// Two pointers pointing at each other.
	mutual := []byte{0xC0, 0x02, 0xC0, 0x00}
	if _, _, err := UnpackName(mutual, 2); !errors.Is(err, ErrCompressionLoop) {
		t.Errorf("mutual pointers: got %v, want ErrCompressionLoop", err)
	}
	// Forward pointer (never valid: targets must precede the pointer).
	fwd := []byte{0xC0, 0x02, 0x01, 'a', 0x00}
	if _, _, err := UnpackName(fwd, 0); !errors.Is(err, ErrCompressionLoop) {
		t.Errorf("forward pointer: got %v, want ErrCompressionLoop", err)
	}
}

func TestUnpackNamePointerOutOfRange(t *testing.T) {
	buf := []byte{0x01, 'a', 0x00, 0xC0, 0x7F}
	if _, _, err := UnpackName(buf, 3); !errors.Is(err, ErrBadPointer) {
		t.Errorf("got %v, want ErrBadPointer", err)
	}
}

func TestUnpackNameShort(t *testing.T) {
	cases := [][]byte{
		{},          // empty
		{0x03, 'a'}, // truncated label
		{0x05},      // length with no data
		{0xC0},      // truncated pointer
		{0x01, 'a'}, // missing terminator
	}
	for _, buf := range cases {
		if _, _, err := UnpackName(buf, 0); !errors.Is(err, ErrShortMessage) {
			t.Errorf("UnpackName(%v): got %v, want ErrShortMessage", buf, err)
		}
	}
}

func TestUnpackNameBadLabelType(t *testing.T) {
	for _, b := range []byte{0x40, 0x80} {
		buf := []byte{b, 0x00}
		if _, _, err := UnpackName(buf, 0); !errors.Is(err, ErrBadLabelType) {
			t.Errorf("label type %#x: got %v, want ErrBadLabelType", b, err)
		}
	}
}

func TestUnpackNameNeverPanics(t *testing.T) {
	f := func(raw []byte, off uint8) bool {
		// Must return cleanly (error or not) on arbitrary input.
		_, _, _ = UnpackName(raw, int(off))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// randomWireName generates a random valid canonical name bounded to fit in
// wire format.
func randomWireName(r *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	n := 1 + r.Intn(6)
	labels := make([]string, n)
	for i := range labels {
		l := make([]byte, 1+r.Intn(20))
		for j := range l {
			l[j] = alphabet[r.Intn(len(alphabet))]
		}
		labels[i] = string(l)
	}
	return strings.Join(labels, ".")
}
