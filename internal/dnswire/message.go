package dnswire

import (
	"fmt"
	"strings"
)

// Question is a single entry of the question section (RFC 1035 §4.1.2).
type Question struct {
	Name  string
	Type  Type
	Class Class
}

func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", presentName(q.Name), q.Class, q.Type)
}

// RR is a resource record: the shared preamble plus typed RDATA.
type RR struct {
	Name  string
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the RR type, derived from the RDATA payload.
func (r RR) Type() Type {
	if r.Data == nil {
		return TypeNone
	}
	return r.Data.RType()
}

func (r RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s",
		presentName(r.Name), r.TTL, r.Class, r.Type(), r.Data)
}

// Message is a complete DNS message.
type Message struct {
	Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard query for one question.
func NewQuery(id uint16, name string, typ Type, class Class) *Message {
	return &Message{
		Header:    Header{ID: id, Opcode: OpcodeQuery},
		Questions: []Question{{Name: name, Type: typ, Class: class}},
	}
}

// Reply builds a response skeleton for m: same ID, question echoed,
// QR set, and the RD flag copied as RFC 1035 requires.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:               m.ID,
			Response:         true,
			Opcode:           m.Opcode,
			RecursionDesired: m.RecursionDesired,
		},
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// Pack encodes the message with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack encodes the message with name compression, appending to buf.
// buf must be empty (compression offsets are message-relative).
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	if len(buf) != 0 {
		return nil, fmt.Errorf("dnswire: AppendPack requires an empty buffer, got %d bytes", len(buf))
	}
	c := NewCompressor()
	buf, err := m.appendHeader(buf, len(m.Questions), len(m.Answers), len(m.Authority), len(m.Additional))
	if err != nil {
		return nil, err
	}
	for _, q := range m.Questions {
		if buf, err = appendQuestion(buf, q, c); err != nil {
			return nil, err
		}
	}
	for _, section := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if buf, err = appendRR(buf, rr, c); err != nil {
				return nil, err
			}
		}
	}
	if len(buf) > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	return buf, nil
}

func appendQuestion(buf []byte, q Question, c *Compressor) ([]byte, error) {
	buf, err := AppendName(buf, q.Name, c)
	if err != nil {
		return nil, err
	}
	buf = appendUint16(buf, uint16(q.Type))
	buf = appendUint16(buf, uint16(q.Class))
	return buf, nil
}

func appendRR(buf []byte, rr RR, c *Compressor) ([]byte, error) {
	if rr.Data == nil {
		return nil, fmt.Errorf("dnswire: RR %q has no RDATA", rr.Name)
	}
	buf, err := AppendName(buf, rr.Name, c)
	if err != nil {
		return nil, err
	}
	buf = appendUint16(buf, uint16(rr.Type()))
	buf = appendUint16(buf, uint16(rr.Class))
	buf = appendUint32(buf, rr.TTL)
	// Reserve RDLENGTH, pack RDATA, then patch the length in.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	buf, err = rr.Data.appendRData(buf, c)
	if err != nil {
		return nil, err
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > int(^uint16(0)) {
		return nil, ErrMessageTooLarge
	}
	buf[lenAt] = byte(rdlen >> 8)
	buf[lenAt+1] = byte(rdlen)
	return buf, nil
}

// Unpack decodes a complete DNS message. It rejects trailing garbage,
// implausible counts, and malformed names (including compression loops).
func Unpack(msg []byte) (*Message, error) {
	h, qd, an, ns, ar, err := unpackHeader(msg)
	if err != nil {
		return nil, err
	}
	// Each question needs >= 5 bytes and each RR >= 11; reject counts that
	// cannot possibly fit to avoid large allocations from hostile headers.
	if qd*5+(an+ns+ar)*11 > len(msg)-headerLen {
		return nil, ErrTooManyRecords
	}
	m := &Message{Header: h}
	off := headerLen
	m.Questions = make([]Question, 0, qd)
	for i := 0; i < qd; i++ {
		var q Question
		if q, off, err = unpackQuestion(msg, off); err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range []struct {
		name  string
		count int
		out   *[]RR
	}{
		{"answer", an, &m.Answers},
		{"authority", ns, &m.Authority},
		{"additional", ar, &m.Additional},
	} {
		if sec.count == 0 {
			continue
		}
		*sec.out = make([]RR, 0, sec.count)
		for i := 0; i < sec.count; i++ {
			var rr RR
			if rr, off, err = unpackRR(msg, off); err != nil {
				return nil, fmt.Errorf("%s %d: %w", sec.name, i, err)
			}
			*sec.out = append(*sec.out, rr)
		}
	}
	if off != len(msg) {
		return nil, ErrTrailingBytes
	}
	return m, nil
}

func unpackQuestion(msg []byte, off int) (Question, int, error) {
	var q Question
	var err error
	if q.Name, off, err = UnpackName(msg, off); err != nil {
		return Question{}, 0, err
	}
	var v uint16
	if v, off, err = readUint16(msg, off); err != nil {
		return Question{}, 0, err
	}
	q.Type = Type(v)
	if v, off, err = readUint16(msg, off); err != nil {
		return Question{}, 0, err
	}
	q.Class = Class(v)
	return q, off, nil
}

func unpackRR(msg []byte, off int) (RR, int, error) {
	var rr RR
	var err error
	if rr.Name, off, err = UnpackName(msg, off); err != nil {
		return RR{}, 0, err
	}
	var typ, class, rdlen uint16
	if typ, off, err = readUint16(msg, off); err != nil {
		return RR{}, 0, err
	}
	if class, off, err = readUint16(msg, off); err != nil {
		return RR{}, 0, err
	}
	rr.Class = Class(class)
	if rr.TTL, off, err = readUint32(msg, off); err != nil {
		return RR{}, 0, err
	}
	if rdlen, off, err = readUint16(msg, off); err != nil {
		return RR{}, 0, err
	}
	if rr.Data, err = unpackRData(msg, off, int(rdlen), Type(typ)); err != nil {
		return RR{}, 0, err
	}
	return rr, off + int(rdlen), nil
}

func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; %s\n", m.Header)
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";; question: %s\n", q)
	}
	for _, sec := range []struct {
		name string
		rrs  []RR
	}{
		{"answer", m.Answers}, {"authority", m.Authority}, {"additional", m.Additional},
	} {
		for _, rr := range sec.rrs {
			fmt.Fprintf(&sb, "%s\t; %s\n", rr, sec.name)
		}
	}
	return sb.String()
}
