package dnswire

import (
	"errors"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sampleMessage(t *testing.T) *Message {
	m := NewQuery(0x1234, "www.cs.cornell.edu", TypeA, ClassINET)
	m.Response = true
	m.Authoritative = true
	m.Answers = []RR{
		{Name: "www.cs.cornell.edu", Class: ClassINET, TTL: 3600,
			Data: A{Addr: mustAddr(t, "128.84.154.137")}},
	}
	m.Authority = []RR{
		{Name: "cs.cornell.edu", Class: ClassINET, TTL: 86400, Data: NS{Host: "penguin.cs.cornell.edu"}},
		{Name: "cs.cornell.edu", Class: ClassINET, TTL: 86400, Data: NS{Host: "sunup.cs.cornell.edu"}},
		{Name: "cs.cornell.edu", Class: ClassINET, TTL: 86400, Data: NS{Host: "dns.cs.wisc.edu"}},
	}
	m.Additional = []RR{
		{Name: "penguin.cs.cornell.edu", Class: ClassINET, TTL: 86400,
			Data: A{Addr: mustAddr(t, "128.84.96.10")}},
	}
	return m
}

func TestMessageRoundTrip(t *testing.T) {
	m := sampleMessage(t)
	buf, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestMessageCompressionShrinks(t *testing.T) {
	m := sampleMessage(t)
	buf, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Rough uncompressed size: each of the 7 owner/target names would cost
	// ~20 bytes; with compression the message must be far smaller.
	if len(buf) > 180 {
		t.Errorf("packed size %d suggests compression is not working", len(buf))
	}
}

func TestRoundTripAllRDataTypes(t *testing.T) {
	m := &Message{Header: Header{ID: 7, Response: true}}
	m.Questions = []Question{{Name: "example.com", Type: TypeANY, Class: ClassINET}}
	m.Answers = []RR{
		{Name: "example.com", Class: ClassINET, TTL: 1, Data: A{Addr: mustAddr(t, "10.0.0.1")}},
		{Name: "example.com", Class: ClassINET, TTL: 2, Data: AAAA{Addr: mustAddr(t, "2001:db8::1")}},
		{Name: "example.com", Class: ClassINET, TTL: 3, Data: NS{Host: "ns1.example.com"}},
		{Name: "alias.example.com", Class: ClassINET, TTL: 4, Data: CNAME{Target: "example.com"}},
		{Name: "1.0.0.10.in-addr.arpa", Class: ClassINET, TTL: 5, Data: PTR{Target: "example.com"}},
		{Name: "example.com", Class: ClassINET, TTL: 6, Data: MX{Preference: 10, Host: "mail.example.com"}},
		{Name: "example.com", Class: ClassINET, TTL: 7, Data: SOA{
			MName: "ns1.example.com", RName: "hostmaster.example.com",
			Serial: 2004072200, Refresh: 7200, Retry: 1800, Expire: 604800, Minimum: 300}},
		{Name: "version.bind", Class: ClassCHAOS, TTL: 0, Data: TXT{Text: []string{"BIND 8.2.4"}}},
		{Name: "example.com", Class: ClassINET, TTL: 9, Data: Raw{Type: Type(99), Data: []byte{1, 2, 3}}},
	}
	buf, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	f := func(id uint16, qr, aa, tc, rd, ra bool, op, rc uint8) bool {
		h := Header{
			ID: id, Response: qr, Authoritative: aa, Truncated: tc,
			RecursionDesired: rd, RecursionAvailable: ra,
			Opcode: Opcode(op & 0xF), RCode: RCode(rc & 0xF),
		}
		m := &Message{Header: h}
		buf, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(buf)
		return err == nil && got.Header == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnpackRejectsTrailingBytes(t *testing.T) {
	m := NewQuery(1, "example.com", TypeA, ClassINET)
	buf, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0xAB)
	if _, err := Unpack(buf); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("got %v, want ErrTrailingBytes", err)
	}
}

func TestUnpackRejectsHostileCounts(t *testing.T) {
	// Header claiming 65535 answers with no body.
	buf := make([]byte, headerLen)
	buf[6], buf[7] = 0xFF, 0xFF
	if _, err := Unpack(buf); !errors.Is(err, ErrTooManyRecords) {
		t.Errorf("got %v, want ErrTooManyRecords", err)
	}
}

func TestUnpackShortHeader(t *testing.T) {
	if _, err := Unpack([]byte{1, 2, 3}); !errors.Is(err, ErrShortMessage) {
		t.Errorf("got %v, want ErrShortMessage", err)
	}
}

func TestUnpackTruncatedRR(t *testing.T) {
	m := sampleMessage(t)
	buf, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for cut := headerLen + 1; cut < len(buf); cut += 7 {
		if _, err := Unpack(buf[:cut]); err == nil {
			t.Errorf("Unpack accepted message truncated to %d bytes", cut)
		}
	}
}

func TestUnpackNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Unpack(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestUnpackFuzzedMutations(t *testing.T) {
	// Bit-flip a valid message at every byte position; Unpack must either
	// succeed or fail cleanly, never panic, and re-packing a successful
	// result must succeed.
	m := sampleMessage(t)
	buf, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < len(buf); i++ {
		mut := make([]byte, len(buf))
		copy(mut, buf)
		mut[i] ^= byte(1 << r.Intn(8))
		got, err := Unpack(mut)
		if err != nil {
			continue
		}
		if _, err := got.Pack(); err != nil {
			t.Errorf("re-pack of mutated-but-accepted message failed: %v", err)
		}
	}
}

func TestRDLengthMismatch(t *testing.T) {
	// Hand-build an NS record whose RDLENGTH is longer than the name.
	var buf []byte
	h := Header{ID: 1, Response: true}
	m := &Message{Header: h}
	buf, err := m.appendHeader(nil, 0, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ = AppendName(buf, "x.com", nil)
	buf = appendUint16(buf, uint16(TypeNS))
	buf = appendUint16(buf, uint16(ClassINET))
	buf = appendUint32(buf, 60)
	name, _ := AppendName(nil, "ns.x.com", nil)
	buf = appendUint16(buf, uint16(len(name)+3)) // lie: 3 extra bytes
	buf = append(buf, name...)
	buf = append(buf, 0, 0, 0)
	if _, err := Unpack(buf); !errors.Is(err, ErrBadRDLength) {
		t.Errorf("got %v, want ErrBadRDLength", err)
	}
}

func TestADataValidation(t *testing.T) {
	rr := RR{Name: "x.com", Class: ClassINET, Data: A{Addr: mustAddr(t, "2001:db8::1")}}
	m := &Message{Answers: []RR{rr}}
	if _, err := m.Pack(); err == nil {
		t.Error("packing A record with IPv6 address should fail")
	}
	rr = RR{Name: "x.com", Class: ClassINET, Data: AAAA{Addr: mustAddr(t, "10.0.0.1")}}
	m = &Message{Answers: []RR{rr}}
	if _, err := m.Pack(); err == nil {
		t.Error("packing AAAA record with IPv4 address should fail")
	}
}

func TestTXTRoundTripMulti(t *testing.T) {
	data := TXT{Text: []string{"BIND 8.2.4", strings.Repeat("x", 255), ""}}
	m := &Message{Answers: []RR{{Name: "version.bind", Class: ClassCHAOS, Data: data}}}
	buf, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	gotTXT := got.Answers[0].Data.(TXT)
	// The empty trailing string is preserved as a zero-length
	// character-string on the wire.
	if !reflect.DeepEqual(gotTXT, data) {
		t.Errorf("got %+v, want %+v", gotTXT, data)
	}
	over := TXT{Text: []string{strings.Repeat("x", 256)}}
	m = &Message{Answers: []RR{{Name: "v", Class: ClassCHAOS, Data: over}}}
	if _, err := m.Pack(); !errors.Is(err, ErrBadStringLength) {
		t.Errorf("got %v, want ErrBadStringLength", err)
	}
}

func TestReply(t *testing.T) {
	q := NewQuery(77, "www.fbi.gov", TypeA, ClassINET)
	q.RecursionDesired = true
	r := q.Reply()
	if !r.Response || r.ID != 77 || !r.RecursionDesired {
		t.Errorf("Reply header wrong: %+v", r.Header)
	}
	if len(r.Questions) != 1 || r.Questions[0] != q.Questions[0] {
		t.Errorf("Reply must echo the question")
	}
}

func TestStringRendering(t *testing.T) {
	m := sampleMessage(t)
	s := m.String()
	for _, want := range []string{"www.cs.cornell.edu.", "NS", "128.84.154.137", "NOERROR"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
	rr := RR{Name: "version.bind", Class: ClassCHAOS, TTL: 0, Data: TXT{Text: []string{"BIND 8.2.4"}}}
	if got := rr.String(); !strings.Contains(got, `"BIND 8.2.4"`) || !strings.Contains(got, "CH") {
		t.Errorf("TXT RR string = %q", got)
	}
}

func TestTypeClassStrings(t *testing.T) {
	if TypeNS.String() != "NS" || Type(4242).String() != "TYPE4242" {
		t.Error("Type.String misbehaves")
	}
	if ClassCHAOS.String() != "CH" || Class(9).String() != "CLASS9" {
		t.Error("Class.String misbehaves")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(14).String() != "RCODE14" {
		t.Error("RCode.String misbehaves")
	}
	if OpcodeQuery.String() != "QUERY" || Opcode(7).String() != "OPCODE7" {
		t.Error("Opcode.String misbehaves")
	}
}

func TestAppendPackRequiresEmptyBuffer(t *testing.T) {
	m := NewQuery(1, "example.com", TypeA, ClassINET)
	if _, err := m.AppendPack(make([]byte, 3)); err == nil {
		t.Error("AppendPack should reject non-empty buffers")
	}
}

func TestRRWithoutData(t *testing.T) {
	m := &Message{Answers: []RR{{Name: "x.com", Class: ClassINET}}}
	if _, err := m.Pack(); err == nil {
		t.Error("packing RR without RDATA should fail")
	}
	if (RR{}).Type() != TypeNone {
		t.Error("zero RR should report TypeNone")
	}
}
