// Package dnswire implements the DNS wire format of RFC 1034/1035 from
// scratch on the standard library: message header, questions, resource
// records, RDATA for the record types the survey needs, and domain-name
// compression (encode and decode, loop-safe).
//
// The package follows the allocation-conscious decoding style of layered
// packet libraries: unpacking walks a []byte with explicit offsets and
// never re-slices past bounds without checking, and packing appends into a
// caller-provided buffer.
package dnswire

import "fmt"

// Type is a DNS RR type (RFC 1035 §3.2.2 and successors).
type Type uint16

// RR types used by the survey. The crawler needs A/NS/CNAME/SOA for
// delegation walking, TXT for version.bind, and AAAA/MX/PTR for realism.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeNone: "NONE", TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME",
	TypeSOA: "SOA", TypePTR: "PTR", TypeMX: "MX", TypeTXT: "TXT",
	TypeAAAA: "AAAA", TypeOPT: "OPT", TypeANY: "ANY",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class. The survey uses IN for ordinary resolution and
// CH (CHAOS) for version.bind probes.
type Class uint16

const (
	ClassINET  Class = 1
	ClassCHAOS Class = 3
	ClassANY   Class = 255
)

func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassCHAOS:
		return "CH"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// Opcode is the kind of query (RFC 1035 §4.1.1).
type Opcode uint8

const (
	OpcodeQuery  Opcode = 0
	OpcodeIQuery Opcode = 1
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeIQuery:
		return "IQUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	default:
		return fmt.Sprintf("OPCODE%d", uint8(o))
	}
}

// RCode is a response code (RFC 1035 §4.1.1).
type RCode uint8

const (
	RCodeSuccess  RCode = 0 // NOERROR
	RCodeFormat   RCode = 1 // FORMERR
	RCodeServFail RCode = 2 // SERVFAIL
	RCodeNXDomain RCode = 3 // NXDOMAIN
	RCodeNotImpl  RCode = 4 // NOTIMP
	RCodeRefused  RCode = 5 // REFUSED
)

func (r RCode) String() string {
	switch r {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormat:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImpl:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// MaxUDPSize is the classic maximum DNS/UDP payload (RFC 1035 §2.3.4).
// Messages longer than this must be truncated over UDP and retried on TCP.
const MaxUDPSize = 512

// MaxMessageSize bounds any DNS message (TCP length prefix is 16 bits).
const MaxMessageSize = 1<<16 - 1
