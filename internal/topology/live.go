package topology

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dnstrust/internal/dnsclient"
	"dnstrust/internal/dnsserver"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/dnszone"
	"dnstrust/internal/resolver"
)

// Live runs every nameserver of a registry as a real DNS server on
// loopback sockets (UDP+TCP), with a resolver transport that maps the
// registry's synthetic addresses onto the live listeners. It turns the
// synthetic Internet into an actual one for end-to-end crawls over the
// wire.
type Live struct {
	reg     *Registry
	servers map[string]*dnsserver.Server
	// addrMap maps synthetic address -> live socket address.
	addrMap map[netip.Addr]string
	client  *dnsclient.Client

	mu     sync.Mutex
	closed bool
}

// StartLive boots one real DNS server per registry nameserver. The
// registry must be finalized. Close the returned Live when done.
func StartLive(ctx context.Context, reg *Registry) (*Live, error) {
	l := &Live{
		reg:     reg,
		servers: make(map[string]*dnsserver.Server),
		addrMap: make(map[netip.Addr]string),
		client:  dnsclient.New(dnsclient.Config{Timeout: 2 * time.Second}),
	}
	for _, host := range reg.Servers() {
		si := reg.Server(host)
		zs := reg.ZoneSetOf(host)
		if zs == nil {
			l.Close()
			return nil, fmt.Errorf("topology: server %q has no zone set (not finalized?)", host)
		}
		zones := make([]*dnszone.Zone, 0, len(si.Zones))
		seen := map[string]bool{}
		for _, o := range si.Zones {
			if !seen[o] {
				seen[o] = true
				zones = append(zones, reg.Zone(o))
			}
		}
		srv, err := dnsserver.Start(ctx, "127.0.0.1:0", dnsserver.Config{
			Zones:         zones,
			VersionBanner: si.Banner,
		})
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("topology: starting %q: %w", host, err)
		}
		l.servers[host] = srv
		l.addrMap[si.Addr] = srv.Addr().String()
	}
	return l, nil
}

// NumServers reports how many live servers are running.
func (l *Live) NumServers() int { return len(l.servers) }

// Addr returns the live socket address of a server host, or "".
func (l *Live) Addr(host string) string {
	srv, ok := l.servers[host]
	if !ok {
		return ""
	}
	return srv.Addr().String()
}

// Close shuts every live server down.
func (l *Live) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	for _, srv := range l.servers {
		srv.Close()
	}
}

// Query implements resolver.Transport over the live sockets: the
// resolver keeps speaking in synthetic addresses and Live translates to
// the loopback listeners — exactly the role routing plays for a real
// crawler.
func (l *Live) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	target, ok := l.addrMap[server]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchServer, server)
	}
	return l.client.Query(ctx, target, name, qtype, class)
}

// VersionBind probes a server's banner over the wire.
func (l *Live) VersionBind(ctx context.Context, host string) (string, error) {
	addr := l.Addr(host)
	if addr == "" {
		return "", fmt.Errorf("topology: unknown live server %q", host)
	}
	return l.client.VersionBind(ctx, addr)
}

// Resolver builds an iterative resolver over the live transport.
func (l *Live) Resolver() (*resolver.Resolver, error) {
	roots := l.reg.RootServers()
	if len(roots) == 0 {
		return nil, fmt.Errorf("topology: no root servers")
	}
	return resolver.New(l, resolver.Config{Roots: roots})
}

var _ resolver.Transport = (*Live)(nil)
