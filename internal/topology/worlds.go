package topology

import (
	"fmt"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnszone"
)

// WorldBuilder is a fluent helper for assembling registries by hand. It
// panics on programming errors (its inputs are compile-time scenario
// constants), keeping scenario definitions readable.
type WorldBuilder struct {
	reg *Registry
}

// NewWorld starts a world with a root zone served by the given hosts
// (conventionally under root-servers.net).
func NewWorld(rootServers ...string) *WorldBuilder {
	if len(rootServers) == 0 {
		rootServers = []string{
			"a.root-servers.net", "b.root-servers.net", "c.root-servers.net",
		}
	}
	b := &WorldBuilder{reg: NewRegistry()}
	root := dnszone.New("")
	for _, h := range rootServers {
		root.AddNS(h)
	}
	b.must(b.reg.AddZone(root))
	for _, h := range rootServers {
		b.addServerIfNew(h, "")
		b.must(b.reg.Assign(h, ""))
	}
	// root-servers.net must itself exist so the root hosts resolve; it is
	// served by the root servers, mirroring reality.
	b.Zone("root-servers.net", rootServers...)
	return b
}

func (b *WorldBuilder) must(err error) {
	if err != nil {
		panic(fmt.Sprintf("topology.WorldBuilder: %v", err))
	}
}

func (b *WorldBuilder) addServerIfNew(host, banner string) {
	if b.reg.Server(host) == nil {
		_, err := b.reg.AddServer(host, banner)
		b.must(err)
	}
}

// Registry returns the underlying registry (call Finalize when done).
func (b *WorldBuilder) Registry() *Registry { return b.reg }

// Zone creates a zone with the given apex, served by hosts, and delegates
// it from the nearest existing ancestor zone. Server hosts are registered
// on first use (with hidden banners; use SetBanner to fingerprint them).
// It returns the builder for chaining.
func (b *WorldBuilder) Zone(apex string, hosts ...string) *WorldBuilder {
	apex = dnsname.Canonical(apex)
	z := dnszone.New(apex)
	for _, h := range hosts {
		z.AddNS(h)
	}
	b.must(b.reg.AddZone(z))
	// Delegate from the nearest ancestor zone that exists.
	parent, ok := dnsname.Parent(apex)
	for ; ok; parent, ok = dnsname.Parent(parent) {
		if pz := b.reg.Zone(parent); pz != nil {
			b.must(pz.Delegate(apex, hosts...))
			break
		}
		if parent == "" {
			break
		}
	}
	for _, h := range hosts {
		b.addServerIfNew(h, "")
		b.must(b.reg.Assign(h, apex))
	}
	return b
}

// SetBanner sets a server's version.bind banner.
func (b *WorldBuilder) SetBanner(host, banner string) *WorldBuilder {
	si := b.reg.Server(host)
	if si == nil {
		panic(fmt.Sprintf("topology.WorldBuilder: unknown server %q", host))
	}
	si.Banner = banner
	return b
}

// Host adds an ordinary (non-nameserver) host record; Finalize gives
// nameserver hosts their addresses automatically, but web hosts like
// www.cs.cornell.edu need explicit creation.
func (b *WorldBuilder) Host(name string) *WorldBuilder {
	b.must(b.reg.AddHostAddress(name))
	return b
}

// Finalize validates the world and returns the registry.
func (b *WorldBuilder) Finalize() *Registry {
	b.must(b.reg.Finalize())
	return b.reg
}

// Figure1World reproduces the delegation graph of Figure 1 in the paper:
// the dependency structure of www.cs.cornell.edu as of July 2004,
// spanning cornell.edu, rochester.edu, wisc.edu and umich.edu.
func Figure1World() *Registry {
	b := NewWorld()

	// gTLD infrastructure: com, net, edu are served by the thirteen
	// gtld-servers.net hosts, which depend on nstld.com (a2..m3.nstld.com),
	// exactly as the figure's top box shows.
	gtld := make([]string, 0, 13)
	for c := 'a'; c <= 'm'; c++ {
		gtld = append(gtld, fmt.Sprintf("%c.gtld-servers.net", c))
	}
	nstld := []string{"a2.nstld.com", "m2.nstld.com", "a3.nstld.com", "m3.nstld.com"}

	b.Zone("com", gtld...)
	b.Zone("net", gtld...)
	b.Zone("edu", gtld...)
	b.Zone("gtld-servers.net", nstld...)
	b.Zone("nstld.com", nstld...)

	// Cornell: cornell.edu is served by cit hosts plus one cs.rochester
	// host; cs.cornell.edu by its own hosts plus dns.cs.wisc.edu.
	b.Zone("cornell.edu",
		"dns.cit.cornell.edu", "bigred.cit.cornell.edu", "cudns.cit.cornell.edu",
		"cayuga.cs.rochester.edu", "simon.cs.cornell.edu")
	b.Zone("cs.cornell.edu",
		"penguin.cs.cornell.edu", "sunup.cs.cornell.edu", "sundown.cs.cornell.edu",
		"sunburn.cs.cornell.edu", "iago.cs.cornell.edu")
	b.Zone("cit.cornell.edu",
		"dns.cit.cornell.edu", "bigred.cit.cornell.edu", "cudns.cit.cornell.edu")

	// Rochester: rochester.edu and its sub-zones, depending on wisc.
	b.Zone("rochester.edu",
		"galileo.cc.rochester.edu", "ns1.utd.rochester.edu", "ns2.utd.rochester.edu",
		"dns.itd.umich.edu", "dns2.itd.umich.edu")
	b.Zone("cs.rochester.edu",
		"cayuga.cs.rochester.edu", "slate.cs.rochester.edu", "cc.rochester.edu")
	b.Zone("utd.rochester.edu", "ns1.utd.rochester.edu", "ns2.utd.rochester.edu",
		"galileo.cc.rochester.edu")
	b.Zone("cc.rochester.edu",
		"galileo.cc.rochester.edu", "simon.cs.cornell.edu", "dns.cs.wisc.edu",
		"ns1.utd.rochester.edu", "ns2.utd.rochester.edu")

	// Wisconsin and Michigan.
	b.Zone("wisc.edu", "dns.cs.wisc.edu", "dns2.itd.umich.edu")
	b.Zone("cs.wisc.edu", "dns.cs.wisc.edu", "dns2.cs.wisc.edu", "dns2.itd.umich.edu")
	b.Zone("umich.edu", "dns.itd.umich.edu", "dns2.itd.umich.edu", "dns.cs.wisc.edu")
	b.Zone("itd.umich.edu", "dns.itd.umich.edu", "dns2.itd.umich.edu")

	// The surveyed web server.
	b.Host("www.cs.cornell.edu")

	return b.Finalize()
}

// FBIWorld reproduces the §3.2 case study: fbi.gov served by
// dns{,2}.sprintip.com; sprintip.com served by reston-ns[123].telemail.net;
// reston-ns2 runs BIND 8.2.4 with four known exploits.
func FBIWorld() *Registry {
	b := NewWorld()
	gov := []string{"a.gov-servers.net", "b.gov-servers.net"}
	gtld := []string{"a.gtld-servers.net", "b.gtld-servers.net", "c.gtld-servers.net"}
	b.Zone("com", gtld...)
	b.Zone("net", gtld...)
	b.Zone("gov", gov...)
	b.Zone("gov-servers.net", gov...)
	b.Zone("gtld-servers.net", gtld...)

	b.Zone("fbi.gov", "dns.sprintip.com", "dns2.sprintip.com")
	b.Zone("sprintip.com",
		"reston-ns1.telemail.net", "reston-ns2.telemail.net", "reston-ns3.telemail.net")
	b.Zone("telemail.net",
		"reston-ns1.telemail.net", "reston-ns2.telemail.net", "reston-ns3.telemail.net")

	b.SetBanner("dns.sprintip.com", "BIND 9.2.2")
	b.SetBanner("dns2.sprintip.com", "BIND 9.2.2")
	b.SetBanner("reston-ns1.telemail.net", "BIND 9.2.3")
	b.SetBanner("reston-ns2.telemail.net", "BIND 8.2.4") // the vulnerable one
	b.SetBanner("reston-ns3.telemail.net", "")           // hidden

	b.Host("www.fbi.gov")
	return b.Finalize()
}

// UkraineWorld reproduces the §3.1 worst case: www.rkc.lviv.ua, whose
// delegation chain fans out to nameservers across universities and ISPs
// worldwide, giving it a TCB of hundreds of servers.
func UkraineWorld() *Registry {
	b := NewWorld()
	gtld := []string{"a.gtld-servers.net", "b.gtld-servers.net"}
	b.Zone("com", gtld...)
	b.Zone("net", gtld...)
	b.Zone("edu", gtld...)
	b.Zone("gtld-servers.net", gtld...)

	// The ua TLD is served by hosts scattered across the globe — each in a
	// university or ISP domain with its own dependency tail.
	uaServers := []string{
		"ns.berkeley.edu", "ns.nyu.edu", "ns.ucla.edu", "ns.monash.edu.au",
		"ns.ripe.net", "dns.net.ua", "ns.lucky.net.ua", "ns.uar.net.ua",
	}
	b.Zone("au", "ns.telstra.net", "munnari.oz.au")
	b.Zone("oz.au", "munnari.oz.au", "ns.telstra.net")
	b.Zone("ua", uaServers...)
	b.Zone("edu.au", "ns.telstra.net", "ns.monash.edu.au")

	// University domains with cross-dependencies (the small world).
	b.Zone("berkeley.edu", "ns.berkeley.edu", "ns.ucla.edu", "ns1.stanford.edu")
	b.Zone("nyu.edu", "ns.nyu.edu", "ns.columbia.edu")
	b.Zone("ucla.edu", "ns.ucla.edu", "ns.berkeley.edu", "ns.usc.edu")
	b.Zone("stanford.edu", "ns1.stanford.edu", "ns2.stanford.edu")
	b.Zone("columbia.edu", "ns.columbia.edu", "ns.nyu.edu")
	b.Zone("usc.edu", "ns.usc.edu", "ns.ucla.edu")
	b.Zone("monash.edu.au", "ns.monash.edu.au", "ns.telstra.net")
	b.Zone("telstra.net", "ns.telstra.net")
	b.Zone("ripe.net", "ns.ripe.net", "ns2.ripe.net")

	// Ukrainian infrastructure.
	b.Zone("net.ua", "dns.net.ua", "ns.lucky.net.ua")
	b.Zone("lucky.net.ua", "ns.lucky.net.ua", "dns.net.ua")
	b.Zone("uar.net.ua", "ns.uar.net.ua", "dns.net.ua")
	b.Zone("lviv.ua", "dns.net.ua", "ns.lucky.net.ua", "ns.berkeley.edu", "ns.ripe.net")
	b.Zone("rkc.lviv.ua", "ns.rkc.lviv.ua", "dns.net.ua", "ns.monash.edu.au")

	// Old BIND all over the Ukrainian chain.
	b.SetBanner("dns.net.ua", "BIND 8.2.2-P5")
	b.SetBanner("ns.lucky.net.ua", "BIND 4.9.5")
	b.SetBanner("ns.rkc.lviv.ua", "BIND 8.2.1")
	b.SetBanner("ns.monash.edu.au", "BIND 8.2.4")
	b.SetBanner("ns.berkeley.edu", "BIND 9.2.2")

	b.Host("www.rkc.lviv.ua")
	return b.Finalize()
}
