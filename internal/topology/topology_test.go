package topology

import (
	"context"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"dnstrust/internal/dnswire"
	"dnstrust/internal/dnszone"
	"dnstrust/internal/transport"
)

func TestRegistryBasics(t *testing.T) {
	reg := NewRegistry()
	z := dnszone.New("")
	z.AddNS("a.root-servers.net")
	if err := reg.AddZone(z); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddZone(dnszone.New("")); err == nil {
		t.Error("duplicate zone must be rejected")
	}
	si, err := reg.AddServer("a.root-servers.net", "BIND 9.2.2")
	if err != nil {
		t.Fatal(err)
	}
	if !si.Addr.IsValid() {
		t.Error("no address allocated")
	}
	if _, err := reg.AddServer("a.root-servers.net", ""); err == nil {
		t.Error("duplicate server must be rejected")
	}
	if reg.Server("A.ROOT-SERVERS.NET") != si {
		t.Error("server lookup must canonicalize")
	}
	if reg.ServerByAddr(si.Addr) != si {
		t.Error("address lookup failed")
	}
	if err := reg.Assign("a.root-servers.net", ""); err != nil {
		t.Fatal(err)
	}
	if err := reg.Assign("unknown.host", ""); err == nil {
		t.Error("assigning unknown server must fail")
	}
	if err := reg.Assign("a.root-servers.net", "unknown.zone"); err == nil {
		t.Error("assigning unknown zone must fail")
	}
}

func TestRegistryFinalizeValidation(t *testing.T) {
	// A zone listing an unregistered nameserver must fail Finalize.
	reg := NewRegistry()
	root := dnszone.New("")
	root.AddNS("a.root-servers.net")
	if err := reg.AddZone(root); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddServer("a.root-servers.net", ""); err != nil {
		t.Fatal(err)
	}
	if err := reg.Assign("a.root-servers.net", ""); err != nil {
		t.Fatal(err)
	}
	z := dnszone.New("example.com")
	z.AddNS("ns.unregistered.com")
	if err := reg.AddZone(z); err != nil {
		t.Fatal(err)
	}
	if err := reg.Finalize(); err == nil {
		t.Error("Finalize must reject zones with unknown nameservers")
	}
}

func TestWorldBuilderPanicsOnUnknownBanner(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetBanner on unknown server must panic")
		}
	}()
	NewWorld().SetBanner("nonexistent.example", "BIND 8.2.4")
}

func TestScenarioWorldsFinalize(t *testing.T) {
	for name, build := range map[string]func() *Registry{
		"figure1": Figure1World,
		"fbi":     FBIWorld,
		"ukraine": UkraineWorld,
	} {
		reg := build()
		if reg.NumServers() == 0 {
			t.Errorf("%s: no servers", name)
		}
		if len(reg.RootServers()) == 0 {
			t.Errorf("%s: no root servers", name)
		}
	}
}

func TestDirectTransportSemantics(t *testing.T) {
	reg := FBIWorld()
	counter := transport.NewCounter()
	tr := transport.Chain(reg.Source(), counter.Middleware())
	ctx := context.Background()

	si := reg.Server("dns.sprintip.com")
	resp, err := tr.Query(ctx, si.Addr, "www.fbi.gov", dnswire.TypeA, dnswire.ClassINET)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Authoritative || len(resp.Answers) != 1 {
		t.Errorf("authoritative answer expected, got %s", resp)
	}

	// Unknown address.
	if _, err := tr.Query(ctx, netip.MustParseAddr("192.0.2.1"), "x", dnswire.TypeA, dnswire.ClassINET); err == nil {
		t.Error("unknown address must error")
	}

	// Lame server.
	if err := reg.SetLame("dns.sprintip.com", true); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Query(ctx, si.Addr, "www.fbi.gov", dnswire.TypeA, dnswire.ClassINET); err == nil {
		t.Error("lame server must error")
	}
	if err := reg.SetLame("unknown.host", true); err == nil {
		t.Error("SetLame on unknown host must error")
	}
	if counter.Queries() < 2 {
		t.Error("query counter not advancing")
	}
}

func TestVersionBindProbe(t *testing.T) {
	reg := FBIWorld()
	probe := reg.ProbeFunc(nil)
	banner, err := probe(context.Background(), "reston-ns2.telemail.net")
	if err != nil {
		t.Fatal(err)
	}
	if banner != "BIND 8.2.4" {
		t.Errorf("banner = %q", banner)
	}
	// Hidden server.
	banner, err = probe(context.Background(), "reston-ns3.telemail.net")
	if err != nil || banner != "" {
		t.Errorf("hidden banner = %q, %v", banner, err)
	}
	if _, err := probe(context.Background(), "unknown.example"); err == nil {
		t.Error("probing unknown server must error")
	}
}

func TestWireTransportEquivalence(t *testing.T) {
	reg := FBIWorld()
	direct := reg.Source()
	wire := transport.Chain(reg.Source(), transport.WireFramed())
	ctx := context.Background()
	si := reg.Server("a.gov-servers.net")
	for _, q := range []struct {
		name string
		typ  dnswire.Type
	}{
		{"www.fbi.gov", dnswire.TypeA},
		{"fbi.gov", dnswire.TypeNS},
		{"missing.gov", dnswire.TypeA},
	} {
		d, err1 := direct.Query(ctx, si.Addr, q.name, q.typ, dnswire.ClassINET)
		x, err2 := wire.Query(ctx, si.Addr, q.name, q.typ, dnswire.ClassINET)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch for %s: %v vs %v", q.name, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if d.RCode != x.RCode || len(d.Answers) != len(x.Answers) ||
			len(d.Authority) != len(x.Authority) || len(d.Additional) != len(x.Additional) {
			t.Errorf("direct and wire transports disagree for %s:\n%s\nvs\n%s", q.name, d, x)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(GenParams{Seed: 7, Names: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenParams{Seed: 7, Names: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Corpus, b.Corpus) {
		t.Fatal("corpora differ across identical seeds")
	}
	if !reflect.DeepEqual(a.Registry.Servers(), b.Registry.Servers()) {
		t.Fatal("server sets differ across identical seeds")
	}
	for _, h := range a.Registry.Servers() {
		if a.Registry.Server(h).Banner != b.Registry.Server(h).Banner {
			t.Fatalf("banner of %s differs across identical seeds", h)
		}
	}
	c, err := Generate(GenParams{Seed: 8, Names: 500})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Corpus, c.Corpus) {
		t.Error("different seeds gave identical corpora")
	}
}

func TestGenerateCorpusProperties(t *testing.T) {
	w, err := Generate(GenParams{Seed: 1, Names: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Corpus) != 3000 {
		t.Errorf("corpus = %d names", len(w.Corpus))
	}
	seen := map[string]bool{}
	tlds := map[string]bool{}
	for _, n := range w.Corpus {
		if seen[n] {
			t.Fatalf("duplicate corpus name %s", n)
		}
		seen[n] = true
		lab := n[strings.LastIndexByte(n, '.')+1:]
		tlds[lab] = true
	}
	if len(tlds) < 40 {
		t.Errorf("corpus spans only %d TLDs", len(tlds))
	}
	if len(w.Popular) == 0 || len(w.Popular) > 500 {
		t.Errorf("popular subset = %d", len(w.Popular))
	}
	for _, p := range w.Popular {
		if !seen[p] {
			t.Fatalf("popular name %s not in corpus", p)
		}
	}
}

func TestGenerateBannersPlausible(t *testing.T) {
	w, err := Generate(GenParams{Seed: 1, Names: 2000})
	if err != nil {
		t.Fatal(err)
	}
	hidden, vulnerable, safe := 0, 0, 0
	for _, h := range w.Registry.Servers() {
		b := w.Registry.Server(h).Banner
		switch {
		case b == "":
			hidden++
		case strings.Contains(b, "8.2.") || strings.Contains(b, "4.9.5") ||
			strings.Contains(b, "8.3.1") || strings.Contains(b, "8.3.3") ||
			strings.Contains(b, "9.2.0") || strings.Contains(b, "4.9.6") ||
			strings.Contains(b, "8.2.1"):
			vulnerable++
		default:
			safe++
		}
	}
	total := hidden + vulnerable + safe
	if hidden == 0 || vulnerable == 0 || safe == 0 {
		t.Fatalf("degenerate banner mix: hidden=%d vulnerable=%d safe=%d", hidden, vulnerable, safe)
	}
	if frac := float64(hidden) / float64(total); frac < 0.1 || frac > 0.5 {
		t.Errorf("hidden fraction %.2f implausible", frac)
	}
}

func TestGenerateSmallWorld(t *testing.T) {
	// Tiny corpora must still produce valid worlds.
	w, err := Generate(GenParams{Seed: 1, Names: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Corpus) == 0 {
		t.Fatal("empty corpus")
	}
	r, err := w.Registry.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Resolve(context.Background(), w.Corpus[0], dnswire.TypeA)
	if err != nil {
		t.Fatalf("resolve %s: %v", w.Corpus[0], err)
	}
	if len(res.Addrs) == 0 {
		t.Error("no address for corpus name")
	}
}

func TestAddHostAddress(t *testing.T) {
	reg := FBIWorld()
	if err := reg.AddHostAddress("tips.fbi.gov"); err != nil {
		t.Fatal(err)
	}
	// A name under an undelegated TLD falls through to the root zone,
	// which exists in every world — so it is accepted there.
	if err := reg.AddHostAddress("outside.unknown-tld-xyz"); err != nil {
		t.Errorf("root zone should absorb undelegated names: %v", err)
	}
	z := reg.Zone("fbi.gov")
	res := z.Lookup("tips.fbi.gov", dnswire.TypeA)
	if res.Kind != dnszone.KindAnswer {
		t.Errorf("lookup after AddHostAddress: %v", res.Kind)
	}
}

func TestDeepestZone(t *testing.T) {
	reg := FBIWorld()
	if z := reg.DeepestZone("www.fbi.gov"); z == nil || z.Origin() != "fbi.gov" {
		t.Errorf("DeepestZone = %v", z)
	}
	if z := reg.DeepestZone("a.gov-servers.net"); z == nil || z.Origin() != "gov-servers.net" {
		t.Errorf("DeepestZone = %v", z)
	}
}
