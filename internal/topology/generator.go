package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dnstrust/internal/dnsname"
)

// World is a generated synthetic Internet plus its survey corpus.
type World struct {
	// Registry is the finalized zone/server registry.
	Registry *Registry
	// Corpus lists the surveyed names (the paper's 593160 web names).
	Corpus []string
	// Popular is the redundancy-seeking "popular site" subset (the
	// paper's Alexa top 500).
	Popular []string
	// Params records the generation parameters.
	Params GenParams
}

// Generate builds a synthetic Internet calibrated to the paper's
// aggregate statistics. Identical params produce identical worlds.
func Generate(p GenParams) (*World, error) {
	p.applyDefaults()
	g := &genState{
		p:         p,
		rng:       rand.New(rand.NewSource(p.Seed)),
		b:         NewWorld("a.root-servers.net", "b.root-servers.net", "c.root-servers.net"),
		classes:   map[string]serverClass{},
		corpusSet: map[string]bool{},
	}
	g.planPools()
	g.buildInfra()
	g.buildTLDs()
	g.buildBackbone()
	g.buildUniversities()
	g.buildProviders()
	g.buildNICs()
	g.buildCustomers()
	g.assignBanners()
	if err := g.b.Registry().Finalize(); err != nil {
		return nil, fmt.Errorf("topology: generated world invalid: %w", err)
	}
	return &World{
		Registry: g.b.Registry(),
		Corpus:   g.corpus,
		Popular:  g.popular,
		Params:   p,
	}, nil
}

// serverClass drives banner/vulnerability assignment.
type serverClass int

const (
	classInfra serverClass = iota // root/gTLD/registry: well-run, visible
	classBackbone
	classTLDLocal
	classUniversity
	classProvider
	classSelfHost
	classWS // the pathological ws ccTLD: everything old and exploitable
)

type uniDesc struct {
	domain string
	hosts  []string
	group  int
}

type provDesc struct {
	domain string
	hosts  []string
}

type bbDesc struct {
	domain string
	hosts  []string
}

type genState struct {
	p   GenParams
	rng *rand.Rand
	b   *WorldBuilder

	gtldHosts  []string
	nstldHosts []string
	unis       []uniDesc
	provs      []provDesc
	provCum    []float64 // cumulative Zipf weights for provider popularity
	backbone   []bbDesc

	// tldVulnBias remembers each TLD's extra vulnerability for its local
	// infrastructure and self-hosted customers.
	tldVulnBias map[string]float64

	classes   map[string]serverClass
	corpus    []string
	corpusSet map[string]bool
	popular   []string
}

// planPools decides every pool member's names up front so zones can
// reference hosts before those hosts' zones exist.
func (g *genState) planPools() {
	// gTLD registry infrastructure.
	for c := 'a'; c <= 'm'; c++ {
		g.gtldHosts = append(g.gtldHosts, fmt.Sprintf("%c.gtld-servers.net", c))
	}
	for _, h := range []string{"a2", "b2", "c2", "a3", "b3", "c3"} {
		g.nstldHosts = append(g.nstldHosts, h+".nstld.com")
	}

	// Backbone: tier-1 ISP infrastructure that top providers and spread-out
	// TLDs slave to. Their mutual dependencies concentrate control — the
	// source of Figure 8's high-leverage servers.
	bbNames := []string{
		"uu.net", "psi.net", "sprintlink.net", "bbnplanet.net",
		"cw.net", "level3.net", "alter.net", "genuity.net",
		"exodus.net", "qwestip.net", "abovenet.com", "savvis.net",
	}
	for _, dom := range bbNames {
		bb := bbDesc{domain: dom}
		for i := 1; i <= 4; i++ {
			bb.hosts = append(bb.hosts, fmt.Sprintf("ns%d.%s", i, dom))
		}
		g.backbone = append(g.backbone, bb)
	}

	// Universities: 70% under edu, the rest spread over foreign academia.
	foreignAcademia := []string{"ac.uk", "edu.au", "de", "ca", "se", "nl", "jp", "fr"}
	for i := 0; i < g.p.Universities; i++ {
		var dom string
		if i%10 < 7 {
			dom = fmt.Sprintf("univ%d.edu", i)
		} else {
			dom = fmt.Sprintf("univ%d.%s", i, foreignAcademia[i%len(foreignAcademia)])
		}
		u := uniDesc{domain: dom, group: i / g.p.UniversityGroupSize}
		n := 2 + g.rng.Intn(2)
		for k := 1; k <= n; k++ {
			u.hosts = append(u.hosts, fmt.Sprintf("ns%d.%s", k, dom))
		}
		g.unis = append(g.unis, u)
	}

	// Hosting providers with Zipf popularity.
	domains := g.estimatedDomains()
	nProv := domains / g.p.ProviderCountDivisor
	if nProv < 24 {
		nProv = 24
	}
	var cum float64
	for i := 0; i < nProv; i++ {
		tld := "com"
		if i%4 == 3 {
			tld = "net"
		}
		dom := fmt.Sprintf("hostpro%d.%s", i, tld)
		pr := provDesc{domain: dom}
		n := 2 + g.rng.Intn(3)
		for k := 1; k <= n; k++ {
			pr.hosts = append(pr.hosts, fmt.Sprintf("ns%d.%s", k, dom))
		}
		g.provs = append(g.provs, pr)
		cum += 1 / math.Pow(float64(i+1), g.p.ProviderZipf)
		g.provCum = append(g.provCum, cum)
	}

	g.tldVulnBias = map[string]float64{}
	for _, ts := range corpusTLDs {
		g.tldVulnBias[ts.tld] = ts.vulnBias
	}
}

// estimatedDomains approximates the registered-domain count implied by
// the corpus size (names per domain averages ~1.45).
func (g *genState) estimatedDomains() int {
	d := int(float64(g.p.Names) / 1.45)
	if d < 50 {
		d = 50
	}
	return d
}

// pickProvider draws a provider index by Zipf popularity.
func (g *genState) pickProvider() int {
	total := g.provCum[len(g.provCum)-1]
	x := g.rng.Float64() * total
	i := sort.SearchFloat64s(g.provCum, x)
	if i >= len(g.provs) {
		i = len(g.provs) - 1
	}
	return i
}

func (g *genState) class(host string, c serverClass) { g.classes[host] = c }

func (g *genState) buildInfra() {
	// com and net carry the whole registry bootstrap.
	g.b.Zone("com", g.gtldHosts...)
	g.b.Zone("net", g.gtldHosts...)
	g.b.Zone("gtld-servers.net", g.nstldHosts...)
	g.b.Zone("nstld.com", g.nstldHosts...)
	for _, h := range g.gtldHosts {
		g.class(h, classInfra)
	}
	for _, h := range g.nstldHosts {
		g.class(h, classInfra)
	}
	for _, h := range []string{"a.root-servers.net", "b.root-servers.net", "c.root-servers.net"} {
		g.class(h, classInfra)
	}
}

// distinctGroupUniHosts picks one nameserver host from each of k distinct
// university communities. Sampling communities (not universities) keeps
// the union of their dependency closures large and its size predictable —
// how far-flung TLD server sets actually behave.
func (g *genState) distinctGroupUniHosts(k int) []string {
	nGroups := (len(g.unis) + g.p.UniversityGroupSize - 1) / g.p.UniversityGroupSize
	if k > nGroups {
		k = nGroups
	}
	perm := g.rng.Perm(nGroups)[:k]
	var hosts []string
	for _, grp := range perm {
		start := grp * g.p.UniversityGroupSize
		end := start + g.p.UniversityGroupSize
		if end > len(g.unis) {
			end = len(g.unis)
		}
		u := g.unis[start+g.rng.Intn(end-start)]
		hosts = append(hosts, u.hosts[g.rng.Intn(len(u.hosts))])
	}
	return hosts
}

// tldHosts returns the planned NS host names for one TLD.
func (g *genState) tldHosts(ts tldShare) []string {
	if ts.tld == "com" || ts.tld == "net" {
		return g.gtldHosts
	}
	nForeign := int(math.Round(float64(ts.spread) * ts.foreignFrac))
	nLocal := ts.spread - nForeign
	if nLocal < 1 {
		nLocal = 1
		nForeign = ts.spread - 1
	}
	var hosts []string
	for k := 1; k <= nLocal; k++ {
		h := fmt.Sprintf("ns%d.nic.%s", k, ts.tld)
		hosts = append(hosts, h)
		if ts.tld == "ws" {
			g.class(h, classWS)
		} else {
			g.class(h, classTLDLocal)
		}
	}
	// Most foreign servers sit at universities in distinct communities;
	// a few at backbones or providers.
	nUni := nForeign
	for k := 0; k < nForeign; k++ {
		switch g.rng.Intn(8) {
		case 0:
			bb := g.backbone[g.rng.Intn(len(g.backbone))]
			hosts = append(hosts, bb.hosts[g.rng.Intn(len(bb.hosts))])
			nUni--
		case 1:
			pr := g.provs[g.pickProvider()]
			hosts = append(hosts, pr.hosts[0])
			nUni--
		}
	}
	hosts = append(hosts, g.distinctGroupUniHosts(nUni)...)
	// A host may have been drawn twice; dedupe preserving order.
	seen := map[string]bool{}
	out := hosts[:0]
	for _, h := range hosts {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

func (g *genState) buildTLDs() {
	for _, ts := range corpusTLDs {
		if ts.tld == "com" || ts.tld == "net" {
			continue // built in buildInfra
		}
		g.b.Zone(ts.tld, g.tldHosts(ts)...)
	}
}

func (g *genState) buildBackbone() {
	for i, bb := range g.backbone {
		hosts := append([]string(nil), bb.hosts...)
		// A few backbones slave to a peer; sparse links keep their
		// closures moderate while still concentrating control.
		if i%4 == 0 {
			peer := g.backbone[(i+1)%len(g.backbone)]
			hosts = append(hosts, peer.hosts[0])
		}
		g.b.Zone(bb.domain, hosts...)
		for _, h := range bb.hosts {
			g.class(h, classBackbone)
		}
	}
}

func (g *genState) buildUniversities() {
	for i, u := range g.unis {
		hosts := append([]string(nil), u.hosts...)
		// Secondaries at sister universities: usually in the same
		// community, sometimes bridging to another community — the
		// cornell -> rochester -> wisc -> umich web.
		nSec := 1
		if g.rng.Float64() < 0.25 {
			nSec = 2
		}
		for k := 0; k < nSec; k++ {
			var other uniDesc
			if g.rng.Float64() < g.p.UniversityBridgeFrac {
				other = g.unis[g.rng.Intn(len(g.unis))]
			} else {
				groupStart := u.group * g.p.UniversityGroupSize
				groupEnd := groupStart + g.p.UniversityGroupSize
				if groupEnd > len(g.unis) {
					groupEnd = len(g.unis)
				}
				other = g.unis[groupStart+g.rng.Intn(groupEnd-groupStart)]
			}
			if other.domain == u.domain {
				continue
			}
			hosts = append(hosts, other.hosts[0])
		}
		hosts = dedupe(hosts)
		g.b.Zone(u.domain, hosts...)
		for _, h := range u.hosts {
			g.class(h, classUniversity)
		}
		_ = i
	}
}

func (g *genState) buildProviders() {
	for i, pr := range g.provs {
		hosts := append([]string(nil), pr.hosts...)
		if g.rng.Float64() < g.p.ProviderSecondaryFrac {
			switch g.rng.Intn(10) {
			case 0:
				u := g.unis[g.rng.Intn(len(g.unis))]
				hosts = append(hosts, u.hosts[0])
			case 1, 2, 3:
				bb := g.backbone[g.rng.Intn(len(g.backbone))]
				hosts = append(hosts, bb.hosts[g.rng.Intn(len(bb.hosts))])
			default:
				other := g.provs[g.pickProvider()]
				if other.domain != pr.domain {
					hosts = append(hosts, other.hosts[0])
				}
			}
		}
		// The most popular providers slave to the backbone: their huge
		// customer bases inherit the dependency.
		if i < 6 {
			bb := g.backbone[i%len(g.backbone)]
			hosts = append(hosts, bb.hosts[0])
		}
		hosts = dedupe(hosts)
		g.b.Zone(pr.domain, hosts...)
		for _, h := range pr.hosts {
			g.class(h, classProvider)
		}
	}
}

// buildNICs creates the nic.<tld> registry domains that host each TLD's
// local servers.
func (g *genState) buildNICs() {
	for _, ts := range corpusTLDs {
		if ts.tld == "com" || ts.tld == "net" {
			continue
		}
		dom := "nic." + ts.tld
		var hosts []string
		for _, h := range g.b.Registry().Zone(ts.tld).NSHosts() {
			if g.classes[h] == classTLDLocal || g.classes[h] == classWS {
				hosts = append(hosts, h)
			}
		}
		if len(hosts) == 0 {
			hosts = []string{fmt.Sprintf("ns1.nic.%s", ts.tld)}
			g.class(hosts[0], classTLDLocal)
		}
		g.b.Zone(dom, hosts...)
	}
}

// ccRegistrationPoint returns where customer domains register under a
// ccTLD with second-level conventions.
func ccRegistrationPoint(tld string, rng *rand.Rand) string {
	switch tld {
	case "uk":
		return "co.uk"
	case "au":
		return "com.au"
	case "nz":
		return "co.nz"
	case "jp":
		return "co.jp"
	case "br":
		return "com.br"
	case "il":
		return "co.il"
	case "in":
		return "co.in"
	case "ua":
		return []string{"com.ua", "kiev.ua", "lviv.ua"}[rng.Intn(3)]
	default:
		return tld
	}
}

func (g *genState) buildCustomers() {
	domains := g.estimatedDomains()

	// TLD assignment by corpus weights.
	var totalW float64
	for _, ts := range corpusTLDs {
		totalW += ts.weight
	}

	type hosting int
	const (
		hostProvider hosting = iota
		hostSelf
		hostUniversity
		hostNIC
	)

	popularLeft := g.p.PopularNames
	for i := 0; len(g.corpus) < g.p.Names && i < domains*3; i++ {
		// Draw the TLD.
		x := g.rng.Float64() * totalW
		var ts tldShare
		for _, cand := range corpusTLDs {
			x -= cand.weight
			if x <= 0 {
				ts = cand
				break
			}
		}
		if ts.tld == "" {
			ts = corpusTLDs[0]
		}

		// edu customer names live at universities, not fresh domains.
		if ts.tld == "edu" {
			u := g.unis[g.rng.Intn(len(g.unis))]
			g.addCorpusNames(u.domain, false)
			continue
		}

		reg := ccRegistrationPoint(ts.tld, g.rng)
		dom := fmt.Sprintf("site%d.%s", i, reg)

		// Popular sites skew toward com, as the Alexa list did, but the
		// popular set also contains national portals in pathological
		// ccTLDs — the source of its heavier TCB tail.
		popRate := 1.5 * float64(g.p.PopularNames) / float64(domains)
		if ts.tld == "com" {
			popRate *= 3
		}
		if ts.vulnBias >= 0.1 {
			popRate *= 2.5
		}
		popular := popularLeft > 0 && g.rng.Float64() < popRate
		var hosts []string
		mode := hostProvider
		switch {
		case ts.tld == "ws":
			mode = hostNIC
		case ts.vulnBias >= 0.1 && g.rng.Float64() < 0.6:
			// Pathological ccTLDs: local registry/ISP hosting dominates.
			mode = hostNIC
		case g.rng.Float64() < g.p.SelfHostFrac:
			mode = hostSelf
		case g.rng.Float64() < g.p.UniversityHostFrac/(1-g.p.SelfHostFrac):
			mode = hostUniversity
		}
		if popular {
			// Popular sites chase availability: several providers, and
			// sometimes a university secondary — the paper's explanation
			// for their larger TCBs.
			nProv := 3 + g.rng.Intn(2)
			seen := map[int]bool{}
			for k := 0; k < nProv; k++ {
				pi := g.pickProvider()
				if seen[pi] {
					continue
				}
				seen[pi] = true
				hosts = append(hosts, g.provs[pi].hosts...)
			}
			// Availability-chasing: secondaries at universities, exactly
			// the pattern the paper blames for popular sites' big TCBs.
			if g.rng.Float64() < 0.5 {
				nUni := 1 + g.rng.Intn(2)
				for k := 0; k < nUni; k++ {
					u := g.unis[g.rng.Intn(len(g.unis))]
					hosts = append(hosts, u.hosts[0])
				}
			}
		} else {
			switch mode {
			case hostSelf:
				n := 2
				if g.rng.Float64() < 0.2 {
					n = 3
				}
				for k := 1; k <= n; k++ {
					h := fmt.Sprintf("ns%d.%s", k, dom)
					hosts = append(hosts, h)
					g.class(h, classSelfHost)
					if ts.tld == "ws" {
						g.class(h, classWS)
					}
				}
			case hostUniversity:
				u := g.unis[g.rng.Intn(len(g.unis))]
				hosts = append(hosts, u.hosts...)
			case hostNIC:
				nic := g.b.Registry().Zone("nic." + ts.tld).NSHosts()
				n := 2 + g.rng.Intn(2)
				if n > len(nic) {
					n = len(nic)
				}
				hosts = append(hosts, nic[:n]...)
			default:
				pr := g.provs[g.pickProvider()]
				hosts = append(hosts, pr.hosts...)
			}
		}
		hosts = dedupe(hosts)
		g.b.Zone(dom, hosts...)
		g.addCorpusNames(dom, popular)
		if popular {
			popularLeft--
		}
	}
}

// addCorpusNames emits the surveyed names of one domain: www plus
// occasional extras, mirroring web-directory contents.
func (g *genState) addCorpusNames(dom string, popular bool) {
	add := func(label string) {
		if len(g.corpus) >= g.p.Names {
			return
		}
		name := label + "." + dom
		if label == "" {
			name = dom
		}
		if g.corpusSet[name] {
			return // already surveyed (shared domains draw repeatedly)
		}
		if err := g.b.Registry().AddHostAddress(name); err != nil {
			return // name collides with existing record; skip
		}
		g.corpusSet[name] = true
		g.corpus = append(g.corpus, name)
		if popular && len(g.popular) < g.p.PopularNames {
			g.popular = append(g.popular, name)
		}
	}
	add("www")
	if g.rng.Float64() < 0.25 {
		add("")
	}
	if g.rng.Float64() < 0.2 {
		add([]string{"mail", "web", "news", "shop", "forum"}[g.rng.Intn(5)])
	}
}

// assignBanners gives every server a version.bind banner. Versions are
// correlated per operator (registered domain): the admin who leaves ns1
// on BIND 8.2.4 leaves ns2 there too. This correlation is what makes
// entire NS sets exploitable at once — the paper's 30% fully-vulnerable
// bottlenecks (Figure 7).
func (g *genState) assignBanners() {
	reg := g.b.Registry()
	type profile struct {
		vulnerable bool
		hidden     bool
		banner     string
	}
	operatorProfile := map[string]profile{}
	for _, h := range reg.Servers() {
		class := g.classes[h]
		var pVuln float64
		switch class {
		case classInfra:
			pVuln = 0
		case classBackbone:
			pVuln = 0.10
		case classUniversity:
			pVuln = g.p.UniversityVulnFrac
		case classProvider:
			pVuln = 0.32
		case classTLDLocal:
			pVuln = g.p.BaseVulnFrac + g.tldVulnBiasOf(h)
		case classWS:
			pVuln = 1.0
		default: // self-host and anything unclassified: small leaf
			// operators ran the oldest BIND fleets in 2004
			pVuln = g.p.BaseVulnFrac + 0.125
		}
		operator, err := dnsname.RegisteredDomain(h)
		if err != nil {
			operator = h
		}
		prof, ok := operatorProfile[operator]
		if !ok {
			prof = profile{}
			switch {
			case g.rng.Float64() < pVuln:
				prof.vulnerable = true
				prof.banner = vulnerableBanners[g.rng.Intn(len(vulnerableBanners))]
			case class != classInfra && g.rng.Float64() < g.p.HiddenBannerFrac:
				prof.hidden = true
			default:
				prof.banner = safeBanners[g.rng.Intn(len(safeBanners))]
			}
			operatorProfile[operator] = prof
		}
		si := reg.Server(h)
		// 15% of an operator's boxes deviate from the fleet image — the
		// one box the admin upgraded (or forgot to).
		if g.rng.Float64() < 0.15 {
			if g.rng.Float64() < pVuln {
				si.Banner = vulnerableBanners[g.rng.Intn(len(vulnerableBanners))]
			} else {
				si.Banner = safeBanners[g.rng.Intn(len(safeBanners))]
			}
			continue
		}
		switch {
		case prof.hidden:
			si.Banner = ""
		default:
			si.Banner = prof.banner
		}
	}
}

func (g *genState) tldVulnBiasOf(host string) float64 {
	// Local TLD hosts are named ns<k>.nic.<tld>.
	for tld, bias := range g.tldVulnBias {
		if len(host) > len(tld)+5 && host[len(host)-len(tld)-5:] == ".nic."+tld {
			return bias
		}
	}
	return 0
}

func dedupe(hosts []string) []string {
	seen := map[string]bool{}
	out := hosts[:0]
	for _, h := range hosts {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}
