package topology

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnsserver"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/resolver"
)

// Transport errors.
var (
	// ErrNoSuchServer means no server is bound to the queried address.
	ErrNoSuchServer = errors.New("topology: no server at address")
	// ErrServerDown simulates an unresponsive (lame) server.
	ErrServerDown = errors.New("topology: server does not respond")
)

// TraceFunc observes one transport query. Hooks must be safe for
// concurrent calls; the crawl's dedup tests use them to assert exactly
// which queries crossed the transport.
type TraceFunc func(server netip.Addr, name string, qtype dnswire.Type)

// DirectTransport answers resolver queries in memory with the exact
// response semantics of the network server (it shares dnsserver.Respond).
// It implements resolver.Transport. The query path is contention-free:
// registry lookups are lock-free after Finalize and the counters are
// atomics.
type DirectTransport struct {
	reg *Registry
	// queries counts transport calls, for ablation benchmarks.
	queries atomic.Int64
	// trace, when set, observes every query served.
	trace atomic.Pointer[TraceFunc]
}

// NewDirectTransport wraps a finalized registry.
func NewDirectTransport(reg *Registry) *DirectTransport {
	return &DirectTransport{reg: reg}
}

// Queries reports the number of queries served.
func (t *DirectTransport) Queries() int64 { return t.queries.Load() }

// SetTrace installs (or, with nil, removes) a query-trace hook. Safe to
// call while queries are in flight.
func (t *DirectTransport) SetTrace(fn TraceFunc) {
	if fn == nil {
		t.trace.Store(nil)
		return
	}
	t.trace.Store(&fn)
}

// Query implements resolver.Transport.
func (t *DirectTransport) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.queries.Add(1)
	if fn := t.trace.Load(); fn != nil {
		(*fn)(server, name, qtype)
	}
	si := t.reg.ServerByAddr(server)
	if si == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchServer, server)
	}
	if t.reg.isLame(si) {
		return nil, fmt.Errorf("%w: %s", ErrServerDown, si.Host)
	}
	zs := t.reg.ZoneSetOf(si.Host)
	if zs == nil {
		return nil, fmt.Errorf("topology: server %q has no zones (registry not finalized?)", si.Host)
	}
	req := dnswire.NewQuery(1, dnsname.Canonical(name), qtype, class)
	return dnsserver.Respond(zs, si.Banner, req), nil
}

// VersionBind probes a server's banner through the same code path the
// network prober uses.
func (t *DirectTransport) VersionBind(ctx context.Context, server netip.Addr) (string, error) {
	resp, err := t.Query(ctx, server, "version.bind", dnswire.TypeTXT, dnswire.ClassCHAOS)
	if err != nil {
		return "", err
	}
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
		return "", nil
	}
	if txt, ok := resp.Answers[0].Data.(dnswire.TXT); ok && len(txt.Text) > 0 {
		return txt.Text[0], nil
	}
	return "", nil
}

// WireTransport is a DirectTransport variant that round-trips every
// message through the full wire codec (pack + unpack on both directions),
// exercising the identical byte path a network crawl would see without
// socket overhead. Used by the transport ablation.
type WireTransport struct {
	inner *DirectTransport
}

// NewWireTransport wraps a finalized registry with wire-format framing.
func NewWireTransport(reg *Registry) *WireTransport {
	return &WireTransport{inner: NewDirectTransport(reg)}
}

// Query implements resolver.Transport with full pack/unpack framing.
func (t *WireTransport) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	req := dnswire.NewQuery(1, dnsname.Canonical(name), qtype, class)
	pkt, err := req.Pack()
	if err != nil {
		return nil, err
	}
	reqBack, err := dnswire.Unpack(pkt)
	if err != nil {
		return nil, err
	}
	resp, err := t.inner.Query(ctx, server, reqBack.Questions[0].Name, reqBack.Questions[0].Type, reqBack.Questions[0].Class)
	if err != nil {
		return nil, err
	}
	out, err := resp.Pack()
	if err != nil {
		return nil, err
	}
	return dnswire.Unpack(out)
}

// LatencyTransport wraps a transport with a fixed simulated round-trip
// time per query. Real surveys are network-bound — the paper's crawl of
// 593k names took days of wall-clock, dominated by RTTs — so this is the
// honest substrate for measuring how crawl throughput scales with the
// worker pool: workers overlap round-trips exactly as a live crawl's
// would, independent of how many cores the host happens to have.
type LatencyTransport struct {
	inner resolver.Transport
	rtt   time.Duration
}

// NewLatencyTransport wraps inner, delaying every query by rtt.
func NewLatencyTransport(inner resolver.Transport, rtt time.Duration) *LatencyTransport {
	return &LatencyTransport{inner: inner, rtt: rtt}
}

// Query implements resolver.Transport with simulated network delay.
func (t *LatencyTransport) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	if t.rtt > 0 {
		timer := time.NewTimer(t.rtt)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	return t.inner.Query(ctx, server, name, qtype, class)
}

// ProbeFunc returns a version.bind prober keyed by host name, for the
// crawler's fingerprinting pass.
func (r *Registry) ProbeFunc(tr *DirectTransport) func(ctx context.Context, host string) (string, error) {
	if tr == nil {
		tr = NewDirectTransport(r)
	}
	return func(ctx context.Context, host string) (string, error) {
		si := r.Server(host)
		if si == nil {
			return "", fmt.Errorf("topology: unknown server %q", host)
		}
		return tr.VersionBind(ctx, si.Addr)
	}
}

// Resolver builds an iterative resolver over this registry's root servers
// using the given transport (nil means a fresh DirectTransport).
func (r *Registry) Resolver(tr resolver.Transport) (*resolver.Resolver, error) {
	if tr == nil {
		tr = NewDirectTransport(r)
	}
	roots := r.RootServers()
	if len(roots) == 0 {
		return nil, errors.New("topology: registry has no root servers")
	}
	return resolver.New(tr, resolver.Config{Roots: roots})
}

// SetLame marks a server lame (unresponsive) for failure injection. The
// flag lives in an atomic overlay rather than on the shared ServerInfo,
// so flipping it while queries are in flight is race-free. Note that a
// crawl's Walker memoizes every (name, qtype) result for its lifetime:
// a mid-crawl flip only affects questions that walker has not yet
// asked. Flip lameness between crawls (each crawl builds a fresh
// walker) for deterministic failure injection.
func (r *Registry) SetLame(host string, lame bool) error {
	host = dnsname.Canonical(host)
	if r.Server(host) == nil {
		return fmt.Errorf("topology: unknown server %q", host)
	}
	r.lame.Store(host, lame)
	return nil
}

// isLame reports whether si is currently lame: the SetLame overlay wins,
// falling back to the build-time ServerInfo.Lame default.
func (r *Registry) isLame(si *ServerInfo) bool {
	if v, ok := r.lame.Load(si.Host); ok {
		return v.(bool)
	}
	return si.Lame
}

var _ resolver.Transport = (*DirectTransport)(nil)
var _ resolver.Transport = (*WireTransport)(nil)
var _ resolver.Transport = (*LatencyTransport)(nil)
