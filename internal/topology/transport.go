package topology

import (
	"context"
	"errors"
	"fmt"
	"net/netip"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnsserver"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/resolver"
	"dnstrust/internal/transport"
)

// Transport errors.
var (
	// ErrNoSuchServer means no server is bound to the queried address.
	ErrNoSuchServer = errors.New("topology: no server at address")
	// ErrServerDown simulates an unresponsive (lame) server.
	ErrServerDown = errors.New("topology: server does not respond")
)

// Respond answers one DNS request in memory with the exact response
// semantics of the network server (it shares dnsserver.Respond). It
// implements transport.Authority, so a registry plugs straight into the
// composable source stack: transport.Direct(reg) is the in-memory
// terminal, and tracing/latency/fault/record behaviour layers over it as
// middleware. The path is contention-free: registry lookups are
// lock-free after Finalize and the lame overlay is atomic.
func (r *Registry) Respond(server netip.Addr, req *dnswire.Message) (*dnswire.Message, error) {
	si := r.ServerByAddr(server)
	if si == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchServer, server)
	}
	if r.isLame(si) {
		return nil, fmt.Errorf("%w: %s", ErrServerDown, si.Host)
	}
	zs := r.ZoneSetOf(si.Host)
	if zs == nil {
		return nil, fmt.Errorf("topology: server %q has no zones (registry not finalized?)", si.Host)
	}
	return dnsserver.Respond(zs, si.Banner, req), nil
}

// Source returns the registry's in-memory terminal source,
// transport.Direct over this registry.
func (r *Registry) Source() transport.Source {
	return transport.Direct(r)
}

// ProbeFunc returns a version.bind prober keyed by host name, for the
// crawler's fingerprinting pass. Probes flow through the given query
// surface — pass the crawl's composed source so fingerprinting shares
// its pacing, recording, and replay behaviour; nil selects a fresh
// direct source over this registry.
func (r *Registry) ProbeFunc(tr resolver.Transport) func(ctx context.Context, host string) (string, error) {
	if tr == nil {
		tr = r.Source()
	}
	return func(ctx context.Context, host string) (string, error) {
		si := r.Server(host)
		if si == nil {
			return "", fmt.Errorf("topology: unknown server %q", host)
		}
		return transport.VersionBind(ctx, tr, si.Addr)
	}
}

// Resolver builds an iterative resolver over this registry's root
// servers using the given transport (nil means a fresh direct source).
func (r *Registry) Resolver(tr resolver.Transport) (*resolver.Resolver, error) {
	if tr == nil {
		tr = r.Source()
	}
	roots := r.RootServers()
	if len(roots) == 0 {
		return nil, errors.New("topology: registry has no root servers")
	}
	return resolver.New(tr, resolver.Config{Roots: roots})
}

// SetLame marks a server lame (unresponsive) for failure injection. The
// flag lives in an atomic overlay rather than on the shared ServerInfo,
// so flipping it while queries are in flight is race-free. Note that a
// crawl's Walker memoizes every (name, qtype) result for its lifetime:
// a mid-crawl flip only affects questions that walker has not yet
// asked. Flip lameness between crawls (each crawl builds a fresh
// walker) for deterministic failure injection.
func (r *Registry) SetLame(host string, lame bool) error {
	host = dnsname.Canonical(host)
	if r.Server(host) == nil {
		return fmt.Errorf("topology: unknown server %q", host)
	}
	r.lame.Store(host, lame)
	return nil
}

// isLame reports whether si is currently lame: the SetLame overlay wins,
// falling back to the build-time ServerInfo.Lame default.
func (r *Registry) isLame(si *ServerInfo) bool {
	if v, ok := r.lame.Load(si.Host); ok {
		return v.(bool)
	}
	return si.Lame
}

var _ transport.Authority = (*Registry)(nil)
