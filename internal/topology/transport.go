package topology

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnsserver"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/resolver"
)

// Transport errors.
var (
	// ErrNoSuchServer means no server is bound to the queried address.
	ErrNoSuchServer = errors.New("topology: no server at address")
	// ErrServerDown simulates an unresponsive (lame) server.
	ErrServerDown = errors.New("topology: server does not respond")
)

// DirectTransport answers resolver queries in memory with the exact
// response semantics of the network server (it shares dnsserver.Respond).
// It implements resolver.Transport.
type DirectTransport struct {
	reg *Registry
	// queries counts transport calls, for ablation benchmarks.
	queries atomic.Int64
}

// NewDirectTransport wraps a finalized registry.
func NewDirectTransport(reg *Registry) *DirectTransport {
	return &DirectTransport{reg: reg}
}

// Queries reports the number of queries served.
func (t *DirectTransport) Queries() int64 { return t.queries.Load() }

// Query implements resolver.Transport.
func (t *DirectTransport) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.queries.Add(1)
	si := t.reg.ServerByAddr(server)
	if si == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchServer, server)
	}
	if si.Lame {
		return nil, fmt.Errorf("%w: %s", ErrServerDown, si.Host)
	}
	zs := t.reg.ZoneSetOf(si.Host)
	if zs == nil {
		return nil, fmt.Errorf("topology: server %q has no zones (registry not finalized?)", si.Host)
	}
	req := dnswire.NewQuery(1, dnsname.Canonical(name), qtype, class)
	return dnsserver.Respond(zs, si.Banner, req), nil
}

// VersionBind probes a server's banner through the same code path the
// network prober uses.
func (t *DirectTransport) VersionBind(ctx context.Context, server netip.Addr) (string, error) {
	resp, err := t.Query(ctx, server, "version.bind", dnswire.TypeTXT, dnswire.ClassCHAOS)
	if err != nil {
		return "", err
	}
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
		return "", nil
	}
	if txt, ok := resp.Answers[0].Data.(dnswire.TXT); ok && len(txt.Text) > 0 {
		return txt.Text[0], nil
	}
	return "", nil
}

// WireTransport is a DirectTransport variant that round-trips every
// message through the full wire codec (pack + unpack on both directions),
// exercising the identical byte path a network crawl would see without
// socket overhead. Used by the transport ablation.
type WireTransport struct {
	inner *DirectTransport
}

// NewWireTransport wraps a finalized registry with wire-format framing.
func NewWireTransport(reg *Registry) *WireTransport {
	return &WireTransport{inner: NewDirectTransport(reg)}
}

// Query implements resolver.Transport with full pack/unpack framing.
func (t *WireTransport) Query(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type, class dnswire.Class) (*dnswire.Message, error) {
	req := dnswire.NewQuery(1, dnsname.Canonical(name), qtype, class)
	pkt, err := req.Pack()
	if err != nil {
		return nil, err
	}
	reqBack, err := dnswire.Unpack(pkt)
	if err != nil {
		return nil, err
	}
	resp, err := t.inner.Query(ctx, server, reqBack.Questions[0].Name, reqBack.Questions[0].Type, reqBack.Questions[0].Class)
	if err != nil {
		return nil, err
	}
	out, err := resp.Pack()
	if err != nil {
		return nil, err
	}
	return dnswire.Unpack(out)
}

// ProbeFunc returns a version.bind prober keyed by host name, for the
// crawler's fingerprinting pass.
func (r *Registry) ProbeFunc(tr *DirectTransport) func(ctx context.Context, host string) (string, error) {
	if tr == nil {
		tr = NewDirectTransport(r)
	}
	return func(ctx context.Context, host string) (string, error) {
		si := r.Server(host)
		if si == nil {
			return "", fmt.Errorf("topology: unknown server %q", host)
		}
		return tr.VersionBind(ctx, si.Addr)
	}
}

// Resolver builds an iterative resolver over this registry's root servers
// using the given transport (nil means a fresh DirectTransport).
func (r *Registry) Resolver(tr resolver.Transport) (*resolver.Resolver, error) {
	if tr == nil {
		tr = NewDirectTransport(r)
	}
	roots := r.RootServers()
	if len(roots) == 0 {
		return nil, errors.New("topology: registry has no root servers")
	}
	return resolver.New(tr, resolver.Config{Roots: roots})
}

// SetLame marks a server lame (unresponsive) for failure injection.
func (r *Registry) SetLame(host string, lame bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	si := r.servers[dnsname.Canonical(host)]
	if si == nil {
		return fmt.Errorf("topology: unknown server %q", host)
	}
	si.Lame = lame
	return nil
}

var _ resolver.Transport = (*DirectTransport)(nil)
var _ resolver.Transport = (*WireTransport)(nil)
