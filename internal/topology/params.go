package topology

// GenParams tunes the synthetic-Internet generator. Zero fields take the
// calibrated defaults from DefaultParams, which target the paper's
// aggregate statistics (TCB median 26 / mean 46, 17% vulnerable servers,
// per-TLD orderings of Figures 3 and 4).
type GenParams struct {
	// Seed drives all randomness; equal seeds give identical worlds.
	Seed int64
	// Names is the corpus size (the paper surveyed 593160).
	Names int
	// PopularNames is the size of the "popular site" subset with
	// redundancy-seeking multi-provider hosting (the paper's Alexa 500).
	PopularNames int

	// SelfHostFrac is the fraction of customer domains running their own
	// in-bailiwick nameservers.
	SelfHostFrac float64
	// UniversityHostFrac is the fraction of customer domains hosted on
	// university nameservers.
	UniversityHostFrac float64
	// ProviderCountDivisor sets the hosting-provider pool size:
	// max(24, domains/divisor).
	ProviderCountDivisor int
	// ProviderZipf shapes provider popularity (larger = more skew).
	ProviderZipf float64
	// ProviderSecondaryFrac is the fraction of providers that slave their
	// zones to another provider (adding a dependency hop).
	ProviderSecondaryFrac float64

	// Universities is the university pool size.
	Universities int
	// UniversityGroupSize clusters universities into mutual-secondary
	// communities (the cornell->rochester->wisc->umich web).
	UniversityGroupSize int
	// UniversityBridgeFrac is the probability a university's secondary
	// crosses into another group, chaining communities together.
	UniversityBridgeFrac float64

	// HiddenBannerFrac is the fraction of servers refusing version.bind.
	HiddenBannerFrac float64
	// BaseVulnFrac is the target fraction of servers running exploitable
	// BIND versions (the paper measured 27141/166771 = 16.3%).
	BaseVulnFrac float64
	// UniversityVulnFrac overrides BaseVulnFrac for university servers
	// (educational institutions ran older BIND).
	UniversityVulnFrac float64
}

// DefaultParams returns the calibrated defaults at a given corpus size.
func DefaultParams(names int) GenParams {
	return GenParams{
		Seed:                  1,
		Names:                 names,
		PopularNames:          500,
		SelfHostFrac:          0.12,
		UniversityHostFrac:    0.04,
		ProviderCountDivisor:  40,
		ProviderZipf:          1.15,
		ProviderSecondaryFrac: 0.08,
		Universities:          320,
		UniversityGroupSize:   10,
		UniversityBridgeFrac:  0.02,
		HiddenBannerFrac:      0.30,
		BaseVulnFrac:          0.155,
		UniversityVulnFrac:    0.08,
	}
}

func (p *GenParams) applyDefaults() {
	d := DefaultParams(p.Names)
	if p.Names == 0 {
		p.Names = 20000
	}
	if p.PopularNames == 0 {
		p.PopularNames = min(d.PopularNames, p.Names/4)
	}
	if p.SelfHostFrac == 0 {
		p.SelfHostFrac = d.SelfHostFrac
	}
	if p.UniversityHostFrac == 0 {
		p.UniversityHostFrac = d.UniversityHostFrac
	}
	if p.ProviderCountDivisor == 0 {
		p.ProviderCountDivisor = d.ProviderCountDivisor
	}
	if p.ProviderZipf == 0 {
		p.ProviderZipf = d.ProviderZipf
	}
	if p.ProviderSecondaryFrac == 0 {
		p.ProviderSecondaryFrac = d.ProviderSecondaryFrac
	}
	if p.Universities == 0 {
		p.Universities = d.Universities
	}
	if p.UniversityGroupSize == 0 {
		p.UniversityGroupSize = d.UniversityGroupSize
	}
	if p.UniversityBridgeFrac == 0 {
		p.UniversityBridgeFrac = d.UniversityBridgeFrac
	}
	if p.HiddenBannerFrac == 0 {
		p.HiddenBannerFrac = d.HiddenBannerFrac
	}
	if p.BaseVulnFrac == 0 {
		p.BaseVulnFrac = d.BaseVulnFrac
	}
	if p.UniversityVulnFrac == 0 {
		p.UniversityVulnFrac = d.UniversityVulnFrac
	}
}

// tldShare describes one TLD's slice of the corpus and its hosting
// pathology. Spread is the number of TLD nameservers; ForeignFrac is the
// fraction of those hosted in far-away domains with deep dependency
// chains (the Figure 4 pathology); VulnBias adds to the local servers'
// vulnerability probability.
type tldShare struct {
	tld         string
	weight      float64
	spread      int
	foreignFrac float64
	vulnBias    float64
}

// corpusTLDs is the TLD mix of the synthetic corpus: the gTLDs of
// Figure 3, the fifteen worst ccTLDs of Figure 4 in their published
// order (ua worst), a set of large well-run ccTLDs, and the pathological
// ws (whose entire TCB runs old BIND — the Figure 6 tail).
var corpusTLDs = []tldShare{
	// Generic TLDs, Figure 3 order: aero and int have far-flung server
	// sets; com/coop are tight.
	{tld: "com", weight: 46, spread: 13, foreignFrac: 0, vulnBias: 0},
	{tld: "net", weight: 7, spread: 13, foreignFrac: 0, vulnBias: 0},
	{tld: "org", weight: 6.5, spread: 9, foreignFrac: 0.15, vulnBias: 0.02},
	{tld: "edu", weight: 4, spread: 9, foreignFrac: 0.33, vulnBias: 0.05},
	{tld: "gov", weight: 1.2, spread: 7, foreignFrac: 0.28, vulnBias: 0},
	{tld: "biz", weight: 1.6, spread: 8, foreignFrac: 0.38, vulnBias: 0},
	{tld: "info", weight: 2.2, spread: 9, foreignFrac: 0.45, vulnBias: 0},
	{tld: "mil", weight: 0.5, spread: 9, foreignFrac: 0.48, vulnBias: 0},
	{tld: "name", weight: 0.4, spread: 11, foreignFrac: 0.50, vulnBias: 0},
	{tld: "int", weight: 0.25, spread: 16, foreignFrac: 0.80, vulnBias: 0.05},
	{tld: "aero", weight: 0.25, spread: 19, foreignFrac: 0.85, vulnBias: 0},
	{tld: "coop", weight: 0.3, spread: 4, foreignFrac: 0, vulnBias: 0},
	{tld: "museum", weight: 0.15, spread: 6, foreignFrac: 0.40, vulnBias: 0},
	{tld: "pro", weight: 0.1, spread: 4, foreignFrac: 0.1, vulnBias: 0},

	// The fifteen most vulnerable ccTLDs (Figure 4, descending TCB).
	{tld: "ua", weight: 0.45, spread: 42, foreignFrac: 0.80, vulnBias: 0.25},
	{tld: "by", weight: 0.25, spread: 38, foreignFrac: 0.78, vulnBias: 0.25},
	{tld: "sm", weight: 0.1, spread: 34, foreignFrac: 0.76, vulnBias: 0.20},
	{tld: "mt", weight: 0.12, spread: 31, foreignFrac: 0.74, vulnBias: 0.18},
	{tld: "my", weight: 0.35, spread: 29, foreignFrac: 0.72, vulnBias: 0.15},
	{tld: "pl", weight: 0.9, spread: 23, foreignFrac: 0.66, vulnBias: 0.15},
	{tld: "it", weight: 1.2, spread: 20, foreignFrac: 0.62, vulnBias: 0.12},
	{tld: "mo", weight: 0.12, spread: 22, foreignFrac: 0.60, vulnBias: 0.12},
	{tld: "am", weight: 0.15, spread: 20, foreignFrac: 0.55, vulnBias: 0.12},
	{tld: "ie", weight: 0.5, spread: 18, foreignFrac: 0.50, vulnBias: 0.08},
	{tld: "tp", weight: 0.06, spread: 16, foreignFrac: 0.48, vulnBias: 0.10},
	{tld: "mk", weight: 0.08, spread: 15, foreignFrac: 0.45, vulnBias: 0.10},
	{tld: "hk", weight: 0.6, spread: 14, foreignFrac: 0.42, vulnBias: 0.08},
	{tld: "tw", weight: 0.8, spread: 13, foreignFrac: 0.40, vulnBias: 0.08},
	{tld: "cn", weight: 1.1, spread: 12, foreignFrac: 0.38, vulnBias: 0.08},

	// Large, well-run ccTLDs: modest spread, mostly local.
	{tld: "de", weight: 6, spread: 6, foreignFrac: 0.05, vulnBias: 0},
	{tld: "uk", weight: 5, spread: 6, foreignFrac: 0.05, vulnBias: 0},
	{tld: "jp", weight: 3, spread: 6, foreignFrac: 0.05, vulnBias: 0},
	{tld: "fr", weight: 2, spread: 5, foreignFrac: 0.06, vulnBias: 0},
	{tld: "nl", weight: 1.8, spread: 5, foreignFrac: 0.06, vulnBias: 0},
	{tld: "ca", weight: 1.6, spread: 5, foreignFrac: 0.08, vulnBias: 0},
	{tld: "au", weight: 1.6, spread: 5, foreignFrac: 0.10, vulnBias: 0},
	{tld: "ru", weight: 1.5, spread: 12, foreignFrac: 0.45, vulnBias: 0.10},
	{tld: "se", weight: 1.0, spread: 5, foreignFrac: 0.05, vulnBias: 0},
	{tld: "ch", weight: 0.9, spread: 5, foreignFrac: 0.05, vulnBias: 0},
	{tld: "es", weight: 0.9, spread: 9, foreignFrac: 0.38, vulnBias: 0.03},
	{tld: "br", weight: 1.1, spread: 10, foreignFrac: 0.40, vulnBias: 0.05},
	{tld: "kr", weight: 0.9, spread: 10, foreignFrac: 0.40, vulnBias: 0.05},
	{tld: "dk", weight: 0.6, spread: 4, foreignFrac: 0.05, vulnBias: 0},
	{tld: "at", weight: 0.6, spread: 4, foreignFrac: 0.05, vulnBias: 0},
	{tld: "be", weight: 0.6, spread: 4, foreignFrac: 0.05, vulnBias: 0},
	{tld: "no", weight: 0.5, spread: 4, foreignFrac: 0.05, vulnBias: 0},
	{tld: "fi", weight: 0.5, spread: 4, foreignFrac: 0.05, vulnBias: 0},
	{tld: "nz", weight: 0.4, spread: 4, foreignFrac: 0.08, vulnBias: 0},
	{tld: "il", weight: 0.4, spread: 8, foreignFrac: 0.38, vulnBias: 0.05},
	{tld: "in", weight: 0.5, spread: 9, foreignFrac: 0.40, vulnBias: 0.08},
	{tld: "za", weight: 0.4, spread: 8, foreignFrac: 0.38, vulnBias: 0.05},
	{tld: "mx", weight: 0.4, spread: 8, foreignFrac: 0.38, vulnBias: 0.05},
	{tld: "ar", weight: 0.4, spread: 8, foreignFrac: 0.38, vulnBias: 0.05},
	{tld: "gr", weight: 0.4, spread: 9, foreignFrac: 0.40, vulnBias: 0.05},
	{tld: "tr", weight: 0.4, spread: 9, foreignFrac: 0.40, vulnBias: 0.05},
	{tld: "cz", weight: 0.4, spread: 7, foreignFrac: 0.32, vulnBias: 0.03},
	{tld: "hu", weight: 0.4, spread: 7, foreignFrac: 0.32, vulnBias: 0.03},
	{tld: "pt", weight: 0.3, spread: 7, foreignFrac: 0.32, vulnBias: 0.03},
	{tld: "sg", weight: 0.3, spread: 4, foreignFrac: 0.08, vulnBias: 0.03},
	{tld: "th", weight: 0.3, spread: 9, foreignFrac: 0.42, vulnBias: 0.05},
	{tld: "id", weight: 0.25, spread: 9, foreignFrac: 0.45, vulnBias: 0.08},
	{tld: "ph", weight: 0.2, spread: 9, foreignFrac: 0.45, vulnBias: 0.08},
	{tld: "vn", weight: 0.2, spread: 9, foreignFrac: 0.45, vulnBias: 0.08},
	{tld: "ro", weight: 0.3, spread: 9, foreignFrac: 0.42, vulnBias: 0.08},
	{tld: "bg", weight: 0.25, spread: 8, foreignFrac: 0.42, vulnBias: 0.08},
	{tld: "hr", weight: 0.2, spread: 4, foreignFrac: 0.10, vulnBias: 0.05},
	{tld: "si", weight: 0.2, spread: 4, foreignFrac: 0.10, vulnBias: 0.05},
	{tld: "sk", weight: 0.2, spread: 4, foreignFrac: 0.10, vulnBias: 0.05},
	{tld: "lt", weight: 0.15, spread: 4, foreignFrac: 0.10, vulnBias: 0.05},
	{tld: "lv", weight: 0.15, spread: 4, foreignFrac: 0.10, vulnBias: 0.05},
	{tld: "ee", weight: 0.15, spread: 4, foreignFrac: 0.10, vulnBias: 0.05},

	// ws: the ccTLD the paper singles out — its names' entire TCBs run
	// old, exploitable BIND.
	{tld: "ws", weight: 0.12, spread: 3, foreignFrac: 0, vulnBias: 1.0},
}

// vulnerableBanners are era-accurate exploitable version.bind strings
// (all match the Feb-2004 matrix in internal/vulndb).
var vulnerableBanners = []string{
	"BIND 8.2.4", "BIND 8.2.2-P5", "BIND 8.2.3", "BIND 8.3.1",
	"BIND 8.2.1", "BIND 8.3.3", "BIND 4.9.5", "BIND 8.2.6",
	"BIND 9.2.0", "BIND 8.2.2-P7", "BIND 4.9.6",
}

// safeBanners are era-accurate non-exploitable version strings.
var safeBanners = []string{
	"BIND 9.2.2", "BIND 9.2.3", "BIND 8.3.4", "BIND 8.4.4",
	"BIND 9.2.2-P3", "BIND 9.3.0", "BIND 4.9.11",
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
