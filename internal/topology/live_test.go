package topology

import (
	"context"
	"testing"

	"dnstrust/internal/dnswire"
	"dnstrust/internal/resolver"
)

// TestLiveEndToEnd boots the FBI world on real loopback sockets, crawls
// it over the wire, and checks the result matches the in-memory crawl.
func TestLiveEndToEnd(t *testing.T) {
	reg := FBIWorld()
	live, err := StartLive(context.Background(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if live.NumServers() == 0 {
		t.Fatal("no live servers")
	}

	r, err := live.Resolver()
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Resolve(context.Background(), "www.fbi.gov", dnswire.TypeA)
	if err != nil {
		t.Fatalf("live resolve: %v", err)
	}
	if len(res.Addrs) != 1 {
		t.Fatalf("live resolve addrs: %v", res.Addrs)
	}

	// Walk dependencies over the wire.
	w := resolver.NewWalker(r)
	chain, err := w.WalkName(context.Background(), "www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	liveSnap := w.Snapshot(map[string][]string{"www.fbi.gov": chain}, nil)

	// Compare against the direct in-memory walk.
	dr, err := reg.Resolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	dw := resolver.NewWalker(dr)
	dchain, err := dw.WalkName(context.Background(), "www.fbi.gov")
	if err != nil {
		t.Fatal(err)
	}
	directSnap := dw.Snapshot(map[string][]string{"www.fbi.gov": dchain}, nil)

	liveHosts := liveSnap.Hosts()
	directHosts := directSnap.Hosts()
	if len(liveHosts) != len(directHosts) {
		t.Fatalf("live crawl found %d hosts, direct %d", len(liveHosts), len(directHosts))
	}
	for i := range liveHosts {
		if liveHosts[i] != directHosts[i] {
			t.Fatalf("host %d differs: %s vs %s", i, liveHosts[i], directHosts[i])
		}
	}

	// version.bind over the wire.
	banner, err := live.VersionBind(context.Background(), "reston-ns2.telemail.net")
	if err != nil {
		t.Fatal(err)
	}
	if banner != "BIND 8.2.4" {
		t.Errorf("live banner = %q", banner)
	}
}
