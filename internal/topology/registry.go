// Package topology builds and hosts the synthetic Internet the survey
// crawls: a registry of zones, nameservers (with version.bind banners and
// synthetic addresses), an in-memory transport with exact authoritative-
// server semantics, plus hand-built scenario worlds reproducing the
// paper's running examples and a statistical generator calibrated to the
// paper's aggregate numbers.
package topology

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"dnstrust/internal/dnsname"
	"dnstrust/internal/dnsserver"
	"dnstrust/internal/dnswire"
	"dnstrust/internal/dnszone"
	"dnstrust/internal/resolver"
)

// ServerInfo describes one nameserver of the synthetic Internet.
type ServerInfo struct {
	// Host is the server's canonical host name.
	Host string
	// Addr is the server's synthetic address (unique per server).
	Addr netip.Addr
	// Banner is the version.bind answer; empty hides the version.
	Banner string
	// Zones lists the origins this server is authoritative for.
	Zones []string
	// Lame, when true, makes the server unresponsive (failure injection).
	// This is the build-time default; post-Finalize toggling goes through
	// Registry.SetLame, which overrides this field race-free.
	Lame bool
}

// Registry is the synthetic Internet: zones, servers, and addressing.
// Build it single-threaded, then Finalize; afterwards it is safe for
// concurrent reads and queries. Finalize publishes an immutable view of
// the lookup tables, so the crawl-time read path (address → server,
// server → zone set) is lock-free: parallel workers never contend on the
// registry mutex.
type Registry struct {
	mu      sync.RWMutex
	zones   map[string]*dnszone.Zone
	servers map[string]*ServerInfo
	byAddr  map[netip.Addr]*ServerInfo
	zoneSet map[string]*dnsserver.ZoneSet // per server host
	nextIP  uint32
	final   bool

	// view is the immutable post-Finalize lookup structure; nil until
	// Finalize succeeds.
	view atomic.Pointer[registryView]
	// lame overlays ServerInfo.Lame with post-Finalize failure injection
	// (SetLame) without racing the lock-free query path.
	lame sync.Map // host string -> bool
}

// registryView is the frozen read-side of a finalized registry. It is
// never mutated after construction, so readers need no locks.
type registryView struct {
	zones   map[string]*dnszone.Zone
	servers map[string]*ServerInfo
	byAddr  map[netip.Addr]*ServerInfo
	zoneSet map[string]*dnsserver.ZoneSet
	roots   []resolver.ServerAddr
}

// NewRegistry creates an empty registry. Synthetic server addresses are
// allocated sequentially from 10.0.0.0/8.
func NewRegistry() *Registry {
	return &Registry{
		zones:   make(map[string]*dnszone.Zone),
		servers: make(map[string]*ServerInfo),
		byAddr:  make(map[netip.Addr]*ServerInfo),
		zoneSet: make(map[string]*dnsserver.ZoneSet),
		nextIP:  10<<24 + 1, // 10.0.0.1
	}
}

// AddZone registers a zone. The zone's apex must be unique.
func (r *Registry) AddZone(z *dnszone.Zone) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.zones[z.Origin()]; dup {
		return fmt.Errorf("topology: duplicate zone %q", z.Origin())
	}
	r.zones[z.Origin()] = z
	return nil
}

// Zone returns the zone with the given apex, or nil.
func (r *Registry) Zone(apex string) *dnszone.Zone {
	if v := r.view.Load(); v != nil {
		return v.zones[dnsname.Canonical(apex)]
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.zones[dnsname.Canonical(apex)]
}

// Zones returns all zone apexes, sorted.
func (r *Registry) Zones() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.zones))
	for apex := range r.zones {
		out = append(out, apex)
	}
	sort.Strings(out)
	return out
}

// AddServer registers a nameserver host with a version banner and
// allocates it a synthetic address.
func (r *Registry) AddServer(host, banner string) (*ServerInfo, error) {
	host = dnsname.Canonical(host)
	r.mu.Lock()
	defer r.mu.Unlock()
	if si, dup := r.servers[host]; dup {
		return si, fmt.Errorf("topology: duplicate server %q", host)
	}
	ip := r.nextIP
	r.nextIP++
	addr := netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)})
	si := &ServerInfo{Host: host, Addr: addr, Banner: banner}
	r.servers[host] = si
	r.byAddr[addr] = si
	return si, nil
}

// AddHostAddress allocates a synthetic address for an ordinary host (a
// web server, not a nameserver) and records its A record in the deepest
// zone containing it.
func (r *Registry) AddHostAddress(name string) error {
	name = dnsname.Canonical(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	z := r.deepestZoneLocked(name)
	if z == nil {
		return fmt.Errorf("topology: no zone contains host %q", name)
	}
	ip := r.nextIP
	r.nextIP++
	addr := netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)})
	return z.AddAddress(name, addr)
}

// Server returns the server with the given host name, or nil.
func (r *Registry) Server(host string) *ServerInfo {
	if v := r.view.Load(); v != nil {
		return v.servers[dnsname.Canonical(host)]
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.servers[dnsname.Canonical(host)]
}

// ServerByAddr returns the server bound to addr, or nil. After Finalize
// this is a lock-free lookup — it sits on the hot path of every
// in-memory transport query.
func (r *Registry) ServerByAddr(addr netip.Addr) *ServerInfo {
	if v := r.view.Load(); v != nil {
		return v.byAddr[addr]
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byAddr[addr]
}

// Servers returns all server host names, sorted.
func (r *Registry) Servers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.servers))
	for h := range r.servers {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// NumServers reports the number of registered servers.
func (r *Registry) NumServers() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.servers)
}

// Assign makes the server authoritative for the given zone origins.
func (r *Registry) Assign(host string, origins ...string) error {
	host = dnsname.Canonical(host)
	r.mu.Lock()
	defer r.mu.Unlock()
	si := r.servers[host]
	if si == nil {
		return fmt.Errorf("topology: unknown server %q", host)
	}
	for _, o := range origins {
		o = dnsname.Canonical(o)
		if _, ok := r.zones[o]; !ok {
			return fmt.Errorf("topology: unknown zone %q", o)
		}
		si.Zones = append(si.Zones, o)
	}
	return nil
}

// RootServers returns the root zone's servers as resolver hints.
func (r *Registry) RootServers() []resolver.ServerAddr {
	if v := r.view.Load(); v != nil {
		return append([]resolver.ServerAddr(nil), v.roots...)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rootServersLocked()
}

func (r *Registry) rootServersLocked() []resolver.ServerAddr {
	root := r.zones[""]
	if root == nil {
		return nil
	}
	var out []resolver.ServerAddr
	for _, host := range root.NSHosts() {
		if si := r.servers[host]; si != nil {
			out = append(out, resolver.ServerAddr{Host: host, Addr: si.Addr})
		}
	}
	return out
}

// Finalize validates and completes the world:
//
//   - every NS host referenced by any zone must be a registered server;
//   - every server host gets an authoritative A record in the deepest
//     zone containing it, so nameserver addresses resolve;
//   - parent zones get glue for delegation NS hosts ("courtesy glue" is
//     placed for out-of-bailiwick hosts too, as 2004 registries commonly
//     did; the survey ignores glue when computing dependencies, so this
//     only affects crawlability, not results);
//   - per-server zone sets are built for query answering.
func (r *Registry) Finalize() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.final {
		return nil
	}

	// Authoritative A records for every server host.
	for host, si := range r.servers {
		z := r.deepestZoneLocked(host)
		if z == nil {
			return fmt.Errorf("topology: no zone contains server host %q", host)
		}
		if res := z.Lookup(host, dnswire.TypeA); res.Kind != dnszone.KindAnswer {
			if err := z.AddAddress(host, si.Addr); err != nil {
				return fmt.Errorf("topology: adding address for %q: %w", host, err)
			}
		}
	}

	// NS host existence + glue in parents.
	for apex, z := range r.zones {
		for _, host := range z.NSHosts() {
			if r.servers[host] == nil {
				return fmt.Errorf("topology: zone %q lists unknown nameserver %q", apex, host)
			}
		}
		for _, child := range z.Cuts() {
			childZone := r.zones[child]
			if childZone == nil {
				return fmt.Errorf("topology: zone %q delegates %q but that zone does not exist", apex, child)
			}
			res := z.Lookup(child, dnswire.TypeNS)
			if res.Kind != dnszone.KindDelegation {
				continue
			}
			for _, rr := range res.Authority {
				ns, ok := rr.Data.(dnswire.NS)
				if !ok {
					continue
				}
				si := r.servers[ns.Host]
				if si == nil {
					return fmt.Errorf("topology: delegation %q lists unknown nameserver %q", child, ns.Host)
				}
				if dnsname.IsSubdomain(ns.Host, child) {
					if err := z.AddGlue(ns.Host, si.Addr); err != nil {
						return fmt.Errorf("topology: glue %q in %q: %w", ns.Host, apex, err)
					}
				}
			}
		}
	}

	// Courtesy glue at the root for TLD servers regardless of bailiwick:
	// this is the bootstrap, exactly as the real root zone works.
	if root := r.zones[""]; root != nil {
		for _, child := range root.Cuts() {
			res := root.Lookup(child, dnswire.TypeNS)
			for _, rr := range res.Authority {
				if ns, ok := rr.Data.(dnswire.NS); ok {
					if si := r.servers[ns.Host]; si != nil {
						_ = root.AddGlue(ns.Host, si.Addr)
					}
				}
			}
		}
	}

	// Build per-server zone sets.
	for host, si := range r.servers {
		zones := make([]*dnszone.Zone, 0, len(si.Zones))
		seen := map[string]bool{}
		for _, o := range si.Zones {
			if seen[o] {
				continue
			}
			seen[o] = true
			zones = append(zones, r.zones[o])
		}
		zs, err := dnsserver.NewZoneSet(zones)
		if err != nil {
			return fmt.Errorf("topology: server %q: %w", host, err)
		}
		r.zoneSet[host] = zs
	}
	r.final = true

	// Publish the immutable read view. The maps are copied so later
	// builder-side mutations (none are expected post-Finalize, but the
	// mutex path still exists) cannot race lock-free readers; the zone
	// and server values themselves are shared.
	v := &registryView{
		zones:   make(map[string]*dnszone.Zone, len(r.zones)),
		servers: make(map[string]*ServerInfo, len(r.servers)),
		byAddr:  make(map[netip.Addr]*ServerInfo, len(r.byAddr)),
		zoneSet: make(map[string]*dnsserver.ZoneSet, len(r.zoneSet)),
	}
	for k, z := range r.zones {
		v.zones[k] = z
	}
	for k, si := range r.servers {
		v.servers[k] = si
	}
	for k, si := range r.byAddr {
		v.byAddr[k] = si
	}
	for k, zs := range r.zoneSet {
		v.zoneSet[k] = zs
	}
	v.roots = r.rootServersLocked()
	r.view.Store(v)
	return nil
}

// deepestZoneLocked returns the deepest zone whose apex is an ancestor of
// name, or nil.
func (r *Registry) deepestZoneLocked(name string) *dnszone.Zone {
	cur := name
	for {
		if z, ok := r.zones[cur]; ok {
			return z
		}
		if cur == "" {
			return nil
		}
		p, _ := dnsname.Parent(cur)
		cur = p
	}
}

// DeepestZone returns the deepest zone containing name, or nil.
func (r *Registry) DeepestZone(name string) *dnszone.Zone {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.deepestZoneLocked(dnsname.Canonical(name))
}

// ZoneSetOf returns the zone set served by host (after Finalize). Like
// ServerByAddr, the finalized lookup is lock-free.
func (r *Registry) ZoneSetOf(host string) *dnsserver.ZoneSet {
	if v := r.view.Load(); v != nil {
		return v.zoneSet[dnsname.Canonical(host)]
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.zoneSet[dnsname.Canonical(host)]
}
