package vulndb

import "sort"

// AttackClass categorizes what an exploit yields an attacker. The paper's
// hijack analysis needs compromise-class bugs (code execution or cache
// poisoning divert resolution); DoS-class bugs only silence a server.
type AttackClass int

const (
	// ClassDoS denies service without giving the attacker control.
	ClassDoS AttackClass = iota
	// ClassPoison lets the attacker inject forged records.
	ClassPoison
	// ClassExec yields remote code execution on the nameserver.
	ClassExec
)

func (c AttackClass) String() string {
	switch c {
	case ClassExec:
		return "remote-exec"
	case ClassPoison:
		return "cache-poison"
	default:
		return "denial-of-service"
	}
}

// Range is an inclusive interval of affected BIND versions.
type Range struct {
	Min, Max Version
}

// Contains reports whether v lies inside the range.
func (r Range) Contains(v Version) bool {
	return v.Compare(r.Min) >= 0 && v.Compare(r.Max) <= 0
}

// Vuln is one entry of the BIND vulnerability matrix.
type Vuln struct {
	// Name is the ISC matrix short name ("libbind", "negcache", ...).
	Name string
	// CVE is the assigned identifier where one exists.
	CVE string
	// Year the advisory was published.
	Year int
	// Class is what exploitation yields.
	Class AttackClass
	// Affected lists the version ranges subject to the bug.
	Affected []Range
	// Summary is a one-line description.
	Summary string
}

// Matches reports whether the vulnerability affects version v.
func (vu Vuln) Matches(v Version) bool {
	for _, r := range vu.Affected {
		if r.Contains(v) {
			return true
		}
	}
	return false
}

// DB is a queryable vulnerability matrix.
type DB struct {
	vulns []Vuln
}

// New builds a DB from an explicit set of entries (used by tests and
// what-if analyses); Default returns the historical matrix.
func New(vulns []Vuln) *DB {
	cp := make([]Vuln, len(vulns))
	copy(cp, vulns)
	return &DB{vulns: cp}
}

// Default returns the ISC BIND vulnerability matrix as of February 2004,
// the snapshot the paper consulted. Ranges reproduce the matrix closely
// enough that the paper's running example holds: BIND 8.2.4 matches
// exactly {libbind, negcache, sigrec, DoS multi}.
func Default() *DB {
	return New(historicalMatrix)
}

// All returns the entries in deterministic (name) order.
func (db *DB) All() []Vuln {
	out := make([]Vuln, len(db.vulns))
	copy(out, db.vulns)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of entries.
func (db *DB) Len() int { return len(db.vulns) }

// VulnsFor returns every matrix entry affecting version v, in name order.
func (db *DB) VulnsFor(v Version) []Vuln {
	var out []Vuln
	for _, vu := range db.vulns {
		if vu.Matches(v) {
			out = append(out, vu)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// VulnsForBanner parses a version.bind banner and returns its matrix
// matches. Unparseable banners yield nil (optimistically safe).
func (db *DB) VulnsForBanner(banner string) []Vuln {
	v, ok := ParseBanner(banner)
	if !ok {
		return nil
	}
	return db.VulnsFor(v)
}

// IsVulnerable reports whether the banner matches any matrix entry.
func (db *DB) IsVulnerable(banner string) bool {
	return len(db.VulnsForBanner(banner)) > 0
}

// Compromisable reports whether the banner matches an exploit that yields
// control of resolution (code execution or poisoning), as opposed to DoS.
func (db *DB) Compromisable(banner string) bool {
	for _, vu := range db.VulnsForBanner(banner) {
		if vu.Class == ClassExec || vu.Class == ClassPoison {
			return true
		}
	}
	return false
}

// historicalMatrix is the Feb-2004 ISC "BIND Vulnerabilities" page
// rendered as ranges. Version bounds follow the advisories: a bug "fixed
// in 8.2.7 and 8.3.4" affects 8.x through 8.2.6 and 8.3.0-8.3.3.
var historicalMatrix = []Vuln{
	{
		Name: "libbind", CVE: "CVE-2002-0029", Year: 2002, Class: ClassExec,
		Summary: "buffer overflow in libbind/resolver DNS stub handling",
		Affected: []Range{
			{V(4, 9, 2), VP(4, 9, 10, 999)},
			{V(8, 1, 0), VP(8, 2, 6, 999)},
			{V(8, 3, 0), VP(8, 3, 3, 999)},
		},
	},
	{
		Name: "negcache", CVE: "CVE-2003-0914", Year: 2003, Class: ClassPoison,
		Summary: "negative cache poisoning permits denial and misdirection",
		Affected: []Range{
			{V(8, 2, 0), VP(8, 2, 6, 999)},
			{V(8, 3, 0), VP(8, 3, 3, 999)},
		},
	},
	{
		Name: "sigrec", CVE: "CVE-2002-1219", Year: 2002, Class: ClassExec,
		Summary: "buffer overflow processing cached SIG records",
		Affected: []Range{
			{V(8, 1, 0), VP(8, 2, 6, 999)},
			{V(8, 3, 0), VP(8, 3, 3, 999)},
		},
	},
	{
		Name: "DoS multi", CVE: "CVE-2002-1220", Year: 2002, Class: ClassDoS,
		Summary: "multiple denial-of-service paths via malformed responses",
		Affected: []Range{
			{V(8, 1, 0), VP(8, 2, 6, 999)},
			{V(8, 3, 0), VP(8, 3, 3, 999)},
		},
	},
	{
		Name: "tsig", CVE: "CVE-2001-0010", Year: 2001, Class: ClassExec,
		Summary: "transaction signature handling buffer overflow",
		Affected: []Range{
			{V(8, 2, 0), VP(8, 2, 3, 999)},
		},
	},
	{
		Name: "nxt", CVE: "CVE-1999-0833", Year: 1999, Class: ClassExec,
		Summary: "NXT record processing buffer overflow",
		Affected: []Range{
			{V(8, 2, 0), VP(8, 2, 1, 999)},
		},
	},
	{
		Name: "zxfr", CVE: "CVE-2000-0887", Year: 2000, Class: ClassDoS,
		Summary: "compressed zone transfer request crashes named",
		Affected: []Range{
			{V(8, 2, 2), VP(8, 2, 2, 6)},
		},
	},
	{
		Name: "srv", CVE: "CVE-2000-0888", Year: 2000, Class: ClassDoS,
		Summary: "SRV record DoS against BIND 8.2.2 patch levels",
		Affected: []Range{
			{V(8, 2, 2), VP(8, 2, 2, 6)},
		},
	},
	{
		Name: "infoleak", CVE: "CVE-2001-0012", Year: 2001, Class: ClassPoison,
		Summary: "inverse-query information leak exposes memory",
		Affected: []Range{
			{V(4, 9, 3), VP(4, 9, 5, 999)},
			{V(8, 2, 0), VP(8, 2, 3, 999)},
		},
	},
	{
		Name: "sigdiv0", CVE: "CVE-2001-0011", Year: 2001, Class: ClassDoS,
		Summary: "division by zero handling SIG records",
		Affected: []Range{
			{V(4, 9, 5), VP(4, 9, 5, 999)},
		},
	},
	{
		Name: "maxdname", CVE: "CVE-1999-0835", Year: 1999, Class: ClassExec,
		Summary: "maxdname buffer overflow in name expansion",
		Affected: []Range{
			{V(4, 9, 0), VP(4, 9, 6, 999)},
			{V(8, 0, 0), VP(8, 2, 1, 999)},
		},
	},
	{
		Name: "naptr", CVE: "CVE-1999-0837", Year: 1999, Class: ClassDoS,
		Summary: "malformed NAPTR zone data crashes named",
		Affected: []Range{
			{V(4, 9, 5), VP(4, 9, 7, 999)},
			{V(8, 2, 0), VP(8, 2, 2, 999)},
		},
	},
	{
		Name: "solinger", CVE: "CVE-1999-0838", Year: 1999, Class: ClassDoS,
		Summary: "SO_LINGER abuse wedges the TCP listener",
		Affected: []Range{
			{V(8, 1, 0), VP(8, 2, 2, 999)},
		},
	},
	{
		Name: "fdmax", CVE: "CVE-1999-0836", Year: 1999, Class: ClassDoS,
		Summary: "file descriptor exhaustion crashes named",
		Affected: []Range{
			{V(8, 1, 0), VP(8, 2, 2, 999)},
		},
	},
	{
		Name: "bind9 rdataset", CVE: "CVE-2002-0400", Year: 2002, Class: ClassDoS,
		Summary: "assertion failure on malformed rdataset shuts down named",
		Affected: []Range{
			{V(9, 0, 0), VP(9, 2, 0, 999)},
		},
	},
	{
		Name: "bind9 negcache", CVE: "CVE-2003-0690", Year: 2003, Class: ClassDoS,
		Summary: "cached negative response assertion failure",
		Affected: []Range{
			{V(9, 2, 1), V(9, 2, 1)},
		},
	},
	{
		Name: "bind4 q_usedns", CVE: "CVE-1999-0009", Year: 1998, Class: ClassExec,
		Summary: "inverse query buffer overflow (the original BIND worm hole)",
		Affected: []Range{
			{V(4, 9, 0), VP(4, 9, 1, 999)},
		},
	},
}
