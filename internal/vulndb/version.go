// Package vulndb encodes the ISC BIND vulnerability matrix as it stood in
// early 2004 (the paper's reference [4]) and matches version.bind banners
// against it. Names whose servers match at least one entry are what the
// paper calls "vulnerable"; banners that cannot be parsed are treated
// optimistically as safe, exactly as the survey did.
package vulndb

import (
	"fmt"
	"strconv"
	"strings"
)

// Version is a parsed BIND version: major.minor.patch plus an optional
// patch level ("-P5") and pre-release marker ("b1", "rc2", "-T1B").
type Version struct {
	Major, Minor, Patch int
	// PatchLevel is the numeric N of a "-PN" suffix, or 0.
	PatchLevel int
	// Pre is true for beta/release-candidate/test builds, which sort
	// before the corresponding release.
	Pre bool
	// Raw preserves the banner substring the version was parsed from.
	Raw string
}

func (v Version) String() string {
	if v.Raw != "" {
		return v.Raw
	}
	s := fmt.Sprintf("%d.%d.%d", v.Major, v.Minor, v.Patch)
	if v.PatchLevel > 0 {
		s += fmt.Sprintf("-P%d", v.PatchLevel)
	}
	return s
}

// key orders versions totally: pre-releases sort immediately before their
// release, patch levels after it.
func (v Version) key() int64 {
	// Field widths: patch level needs 2*999+1 < 10^4, so each field above
	// it gets four decimal digits of slack.
	k := int64(v.Major)*1e12 + int64(v.Minor)*1e8 + int64(v.Patch)*1e4
	k += int64(v.PatchLevel) * 2
	if !v.Pre {
		k++ // release sorts after its own pre-release builds
	}
	return k
}

// Compare orders two versions; it returns -1, 0 or +1.
func (v Version) Compare(o Version) int {
	a, b := v.key(), o.key()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// V builds a release version for range tables.
func V(major, minor, patch int) Version {
	return Version{Major: major, Minor: minor, Patch: patch}
}

// VP builds a patch-level version (e.g. VP(8,2,2,5) is 8.2.2-P5).
func VP(major, minor, patch, pl int) Version {
	return Version{Major: major, Minor: minor, Patch: patch, PatchLevel: pl}
}

// ParseBanner extracts a BIND version from a version.bind TXT banner.
// Real banners look like "BIND 8.2.4", "8.2.2-P5", "9.2.3rc2",
// "BIND 4.9.6-REL" or "named 8.3.1". It returns ok=false for hidden or
// non-BIND banners ("refused", "surely you must be joking", dnsmasq, ...),
// which the survey treats as non-vulnerable.
func ParseBanner(banner string) (Version, bool) {
	s := strings.TrimSpace(strings.ToLower(banner))
	if s == "" {
		return Version{}, false
	}
	for _, prefix := range []string{"bind", "named"} {
		if rest, ok := strings.CutPrefix(s, prefix); ok {
			s = strings.TrimSpace(rest)
			break
		}
	}
	// The remainder must start with a digit to be a version.
	if s == "" || s[0] < '0' || s[0] > '9' {
		return Version{}, false
	}
	// Cut at first whitespace: "8.2.4 (our build)" -> "8.2.4".
	if i := strings.IndexAny(s, " \t("); i >= 0 {
		s = s[:i]
	}
	v := Version{Raw: s}
	num := func(t string) (int, bool) {
		n, err := strconv.Atoi(t)
		return n, err == nil && n >= 0
	}

	// Split off suffixes: -P5, -REL, b1, rc2, -T1B.
	core := s
	for _, marker := range []string{"-p", "_p"} {
		if i := strings.LastIndex(core, marker); i >= 0 {
			if pl, ok := num(strings.TrimRight(core[i+len(marker):], "abcdefghijklmnopqrstuvwxyz")); ok {
				v.PatchLevel = pl
				core = core[:i]
			}
			break
		}
	}
	core = strings.TrimSuffix(core, "-rel")
	for _, pre := range []string{"rc", "b", "-t", "a"} {
		if i := strings.Index(core, pre); i > 0 {
			// Only treat as pre-release if what precedes is the version core
			// and what follows begins with a digit or is empty-ish.
			head, tail := core[:i], core[i+len(pre):]
			if isVersionCore(head) && (tail == "" || (tail[0] >= '0' && tail[0] <= '9')) {
				v.Pre = true
				core = head
				break
			}
		}
	}
	core = strings.TrimSuffix(core, "-")

	parts := strings.Split(core, ".")
	if len(parts) < 2 || len(parts) > 4 {
		return Version{}, false
	}
	var ok bool
	if v.Major, ok = num(parts[0]); !ok {
		return Version{}, false
	}
	if v.Minor, ok = num(parts[1]); !ok {
		return Version{}, false
	}
	if len(parts) >= 3 {
		if v.Patch, ok = num(parts[2]); !ok {
			return Version{}, false
		}
	}
	// BIND majors in the wild: 4, 8, 9.
	if v.Major != 4 && v.Major != 8 && v.Major != 9 {
		return Version{}, false
	}
	return v, true
}

func isVersionCore(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && c != '.' {
			return false
		}
	}
	return true
}
